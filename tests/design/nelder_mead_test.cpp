#include "design/nelder_mead.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace prlc::design {
namespace {

TEST(NelderMead, MinimizesQuadratic) {
  const auto f = [](const std::vector<double>& x) {
    double s = 0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i + 1);
      s += d * d;
    }
    return s;
  };
  const auto result = nelder_mead(f, {0.0, 0.0, 0.0});
  EXPECT_LT(result.value, 1e-8);
  EXPECT_NEAR(result.x[0], 1.0, 1e-3);
  EXPECT_NEAR(result.x[1], 2.0, 1e-3);
  EXPECT_NEAR(result.x[2], 3.0, 1e-3);
}

TEST(NelderMead, MinimizesRosenbrock2D) {
  const auto f = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  NelderMeadOptions opt;
  opt.max_evaluations = 5000;
  const auto result = nelder_mead(f, {-1.2, 1.0}, opt);
  EXPECT_NEAR(result.x[0], 1.0, 0.01);
  EXPECT_NEAR(result.x[1], 1.0, 0.02);
}

TEST(NelderMead, OneDimensional) {
  const auto f = [](const std::vector<double>& x) { return std::cos(x[0]) + 2.0; };
  const auto result = nelder_mead(f, {2.5});
  EXPECT_NEAR(result.value, 1.0, 1e-6);
  EXPECT_NEAR(result.x[0], M_PI, 1e-3);
}

TEST(NelderMead, EarlyStopPredicateFires) {
  const auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
  const auto result =
      nelder_mead(f, {10.0}, {}, [](double best) { return best < 1.0; });
  EXPECT_TRUE(result.early_stopped);
  EXPECT_LT(result.value, 1.0);
  // Early stop should save most of the evaluation budget.
  EXPECT_LT(result.evaluations, 100u);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  std::size_t calls = 0;
  const auto f = [&](const std::vector<double>& x) {
    ++calls;
    return x[0] * x[0] + x[1] * x[1];
  };
  NelderMeadOptions opt;
  opt.max_evaluations = 40;
  const auto result = nelder_mead(f, {5.0, -3.0}, opt);
  EXPECT_LE(result.evaluations, 40u + 3u);  // a step may finish in flight
  EXPECT_EQ(calls, result.evaluations);
}

TEST(NelderMead, ReturnsBestEverSeen) {
  // A function where later steps could wander: the reported value must be
  // the global best of all evaluations.
  std::vector<double> seen;
  const auto f = [&](const std::vector<double>& x) {
    const double v = std::abs(x[0] - 3.0);
    seen.push_back(v);
    return v;
  };
  const auto result = nelder_mead(f, {0.0});
  double best = seen[0];
  for (double v : seen) best = std::min(best, v);
  EXPECT_DOUBLE_EQ(result.value, best);
}

TEST(NelderMead, ValidatesInputs) {
  EXPECT_THROW(nelder_mead(nullptr, {1.0}), PreconditionError);
  const auto f = [](const std::vector<double>&) { return 0.0; };
  EXPECT_THROW(nelder_mead(f, {}), PreconditionError);
}

}  // namespace
}  // namespace prlc::design
