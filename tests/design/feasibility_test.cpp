#include "design/feasibility.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/check.h"

namespace prlc::design {
namespace {

using codes::PrioritySpec;
using codes::Scheme;

TEST(Feasibility, EvaluateConstraintsReportsAchievedValues) {
  FeasibilityProblem problem;
  problem.scheme = Scheme::kPlc;
  problem.spec = PrioritySpec({2, 3});
  problem.decoding = {{4, 1.0}, {10, 2.0}};
  const auto report = evaluate_constraints(problem, {0.5, 0.5});
  ASSERT_EQ(report.achieved_levels.size(), 2u);
  EXPECT_GE(report.achieved_levels[0], 0.0);
  EXPECT_LE(report.achieved_levels[0], 2.0);
  EXPECT_GT(report.achieved_levels[1], report.achieved_levels[0]);
  EXPECT_FALSE(report.achieved_full_recovery.has_value());
}

TEST(Feasibility, ViolationZeroWhenTriviallySatisfied) {
  FeasibilityProblem problem;
  problem.scheme = Scheme::kPlc;
  problem.spec = PrioritySpec({2, 3});
  problem.decoding = {{20, 0.5}};  // 20 blocks for 5 unknowns: easy
  const auto report = evaluate_constraints(problem, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(report.violation, 0.0);
}

TEST(Feasibility, SolvesEasyProblemFromUniformStart) {
  // Feasible by construction: p = (0.45, 0.15, 0.40) satisfies both
  // constraints with slack (checked against the exact analysis).
  FeasibilityProblem problem;
  problem.scheme = Scheme::kPlc;
  problem.spec = PrioritySpec({5, 10, 15});
  problem.decoding = {{14, 0.7}, {60, 2.4}};
  FeasibilityOptions opt;
  opt.restarts = 2;
  const auto result = solve_feasibility(problem, opt);
  EXPECT_TRUE(result.feasible);
  EXPECT_NEAR(std::accumulate(result.distribution.begin(), result.distribution.end(), 0.0),
              1.0, 1e-9);
  for (double p : result.distribution) EXPECT_GE(p, 0.0);
  ASSERT_EQ(result.report.achieved_levels.size(), 2u);
  EXPECT_GE(result.report.achieved_levels[0] + 1e-6, 0.7);
  EXPECT_GE(result.report.achieved_levels[1] + 1e-6, 2.4);
}

TEST(Feasibility, SolvesWithFullRecoveryConstraint) {
  FeasibilityProblem problem;
  problem.scheme = Scheme::kPlc;
  problem.spec = PrioritySpec({5, 10, 15});  // N = 30
  problem.decoding = {{14, 0.7}};
  problem.full_recovery = FullRecoveryConstraint{2.0, 0.1};
  FeasibilityOptions opt;
  opt.restarts = 3;
  const auto result = solve_feasibility(problem, opt);
  EXPECT_TRUE(result.feasible);
  ASSERT_TRUE(result.report.achieved_full_recovery.has_value());
  EXPECT_GT(*result.report.achieved_full_recovery + 1e-6, 0.9);
}

TEST(Feasibility, DetectsInfeasibleProblem) {
  FeasibilityProblem problem;
  problem.scheme = Scheme::kPlc;
  problem.spec = PrioritySpec({5, 10});
  // Impossible: decode the whole first level from 2 blocks (b_1 = 5).
  problem.decoding = {{2, 1.0}};
  FeasibilityOptions opt;
  opt.restarts = 1;
  opt.max_evaluations_per_start = 100;
  const auto result = solve_feasibility(problem, opt);
  EXPECT_FALSE(result.feasible);
  EXPECT_GT(result.report.violation, 0.0);
}

TEST(Feasibility, WorksForSlcScheme) {
  FeasibilityProblem problem;
  problem.scheme = Scheme::kSlc;
  problem.spec = PrioritySpec({5, 10, 15});
  problem.decoding = {{15, 1.0}};
  const auto result = solve_feasibility(problem);
  EXPECT_TRUE(result.feasible);
}

TEST(Feasibility, SingleLevelProblem) {
  FeasibilityProblem problem;
  problem.scheme = Scheme::kPlc;
  problem.spec = PrioritySpec({4});
  problem.decoding = {{6, 0.9}};
  const auto result = solve_feasibility(problem);
  EXPECT_TRUE(result.feasible);
  ASSERT_EQ(result.distribution.size(), 1u);
  EXPECT_DOUBLE_EQ(result.distribution[0], 1.0);
}

TEST(Feasibility, ValidatesProblem) {
  FeasibilityProblem problem;
  problem.spec = PrioritySpec({2, 2});
  EXPECT_THROW(solve_feasibility(problem), PreconditionError);  // no constraints
  problem.decoding = {{5, 3.0}};  // asks for 3 levels of a 2-level spec
  EXPECT_THROW(solve_feasibility(problem), PreconditionError);
}

TEST(Feasibility, EvaluateChecksDistributionWidth) {
  FeasibilityProblem problem;
  problem.spec = PrioritySpec({2, 2});
  problem.decoding = {{5, 1.0}};
  EXPECT_THROW(evaluate_constraints(problem, {1.0}), PreconditionError);
}

TEST(Feasibility, DeterministicAcrossRuns) {
  FeasibilityProblem problem;
  problem.scheme = Scheme::kPlc;
  problem.spec = PrioritySpec({5, 10, 15});
  problem.decoding = {{12, 1.0}};
  const auto a = solve_feasibility(problem);
  const auto b = solve_feasibility(problem);
  ASSERT_EQ(a.distribution.size(), b.distribution.size());
  for (std::size_t i = 0; i < a.distribution.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.distribution[i], b.distribution[i]);
  }
}

}  // namespace
}  // namespace prlc::design
