#include "design/utility_optimizer.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/check.h"

namespace prlc::design {
namespace {

using codes::PrioritySpec;
using codes::Scheme;

UtilityProblem base_problem() {
  UtilityProblem p;
  p.scheme = Scheme::kPlc;
  p.spec = PrioritySpec({5, 10, 15});
  p.marginal_utility = {10.0, 3.0, 1.0};
  p.scenarios = {{12, 0.5}, {35, 0.5}};
  return p;
}

TEST(UtilityOptimizer, ExpectedUtilityBounds) {
  const auto p = base_problem();
  const double u = expected_utility(p, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  EXPECT_GE(u, 0.0);
  EXPECT_LE(u, 14.0);  // sum of marginal utilities
}

TEST(UtilityOptimizer, UtilityIncreasesWithMoreSurvivors) {
  auto p = base_problem();
  p.scenarios = {{10, 1.0}};
  const double low = expected_utility(p, {0.4, 0.3, 0.3});
  p.scenarios = {{40, 1.0}};
  const double high = expected_utility(p, {0.4, 0.3, 0.3});
  EXPECT_GT(high, low);
}

TEST(UtilityOptimizer, OptimizerBeatsUniform) {
  const auto p = base_problem();
  const double uniform = expected_utility(p, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  const auto result = maximize_utility(p);
  EXPECT_GE(result.expected_utility, uniform - 1e-9);
  EXPECT_NEAR(std::accumulate(result.distribution.begin(), result.distribution.end(), 0.0),
              1.0, 1e-9);
}

TEST(UtilityOptimizer, SkewedUtilityPullsMassToLevelOne) {
  // When only level 1 has utility and the severe scenario dominates, the
  // optimum parks (almost) all coded blocks on level 1.
  UtilityProblem p;
  p.scheme = Scheme::kPlc;
  p.spec = PrioritySpec({5, 10, 15});
  p.marginal_utility = {1.0, 0.0, 0.0};
  p.scenarios = {{10, 1.0}};
  const auto result = maximize_utility(p);
  EXPECT_GT(result.distribution[0], 0.8);
}

TEST(UtilityOptimizer, FlatUtilityGenerousScenarioDecodesEverything) {
  // Equal utilities with 2N survivors: PLC can decode everything whp
  // (e.g. by weighting the last level, whose blocks span all sources), so
  // the optimum utility approaches the total. The optimal distribution is
  // not unique — assert the achieved utility, not the point.
  UtilityProblem p;
  p.scheme = Scheme::kPlc;
  p.spec = PrioritySpec({10, 10, 10});
  p.marginal_utility = {1.0, 1.0, 1.0};
  p.scenarios = {{60, 1.0}};
  const auto result = maximize_utility(p);
  EXPECT_GT(result.expected_utility, 2.8);
}

TEST(UtilityOptimizer, WorksForSlc) {
  auto p = base_problem();
  p.scheme = Scheme::kSlc;
  const auto result = maximize_utility(p);
  EXPECT_GT(result.expected_utility, 0.0);
}

TEST(UtilityOptimizer, SingleLevelShortCircuits) {
  UtilityProblem p;
  p.scheme = Scheme::kPlc;
  p.spec = PrioritySpec({8});
  p.marginal_utility = {1.0};
  p.scenarios = {{10, 1.0}};
  const auto result = maximize_utility(p);
  ASSERT_EQ(result.distribution.size(), 1u);
  EXPECT_DOUBLE_EQ(result.distribution[0], 1.0);
  EXPECT_GT(result.expected_utility, 0.9);
}

TEST(UtilityOptimizer, Validation) {
  auto p = base_problem();
  p.marginal_utility = {1.0};  // wrong width
  EXPECT_THROW(expected_utility(p, {0.3, 0.3, 0.4}), PreconditionError);
  p = base_problem();
  p.marginal_utility[1] = -1.0;
  EXPECT_THROW(maximize_utility(p), PreconditionError);
  p = base_problem();
  p.scenarios.clear();
  EXPECT_THROW(maximize_utility(p), PreconditionError);
  p = base_problem();
  p.scenarios = {{10, 0.0}};
  EXPECT_THROW(maximize_utility(p), PreconditionError);
  p = base_problem();
  EXPECT_THROW(expected_utility(p, {0.5, 0.5}), PreconditionError);
}

TEST(UtilityOptimizer, PlcDominatesSlcInUtilityToo) {
  auto plc = base_problem();
  auto slc = base_problem();
  slc.scheme = Scheme::kSlc;
  const std::vector<double> dist = {0.4, 0.3, 0.3};
  EXPECT_GE(expected_utility(plc, dist) + 1e-9, expected_utility(slc, dist));
}

}  // namespace
}  // namespace prlc::design
