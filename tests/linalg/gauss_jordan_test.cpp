#include "linalg/gauss_jordan.h"

#include <gtest/gtest.h>

#include "gf/gf2m.h"
#include "gf/gf256.h"
#include "util/random.h"

namespace prlc::linalg {
namespace {

using F = gf::Gf256;
using M = Matrix<F>;

/// Validate the structural RREF invariants: unit pivots, strictly
/// increasing pivot columns, pivot columns clear elsewhere, zero rows at
/// the bottom.
template <gf::FieldPolicy Field>
void expect_is_rref(const Matrix<Field>& m, const RrefInfo& info) {
  ASSERT_EQ(info.pivot_cols.size(), info.rank);
  for (std::size_t i = 0; i < info.rank; ++i) {
    const std::size_t col = info.pivot_cols[i];
    if (i > 0) {
      EXPECT_GT(col, info.pivot_cols[i - 1]);
    }
    EXPECT_EQ(m.at(i, col), 1);
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r != i) {
        EXPECT_EQ(m.at(r, col), 0) << "col " << col << " row " << r;
      }
    }
    // Leading zeros before the pivot.
    for (std::size_t c = 0; c < col; ++c) EXPECT_EQ(m.at(i, c), 0);
  }
  for (std::size_t r = info.rank; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) EXPECT_EQ(m.at(r, c), 0);
  }
}

TEST(GaussJordan, IdentityIsFixedPoint) {
  M id = M::identity(5);
  const auto info = rref(id);
  EXPECT_EQ(info.rank, 5u);
  EXPECT_EQ(id, M::identity(5));
}

TEST(GaussJordan, RandomSquareIsFullRankWithHighProbability) {
  Rng rng(61);
  std::size_t full = 0;
  for (int t = 0; t < 50; ++t) {
    if (rank(M::random(20, 20, rng)) == 20) ++full;
  }
  // Pr(full rank) over GF(256) is prod (1 - 256^-k) > 0.996.
  EXPECT_GE(full, 47u);
}

TEST(GaussJordan, RrefStructureOnRandomRectangular) {
  Rng rng(62);
  for (int t = 0; t < 20; ++t) {
    M m = M::random(8, 12, rng);
    const auto info = rref(m);
    expect_is_rref(m, info);
  }
}

TEST(GaussJordan, RrefIsIdempotent) {
  Rng rng(63);
  M m = M::random(6, 9, rng);
  rref(m);
  M again = m;
  rref(again);
  EXPECT_EQ(again, m);
}

TEST(GaussJordan, RrefInvariantToRowShuffle) {
  // The paper leans on RREF uniqueness ("the RREFs of two matrices are
  // identical if they differ only in row orders").
  Rng rng(64);
  M m = M::random(7, 10, rng);
  M shuffled(7, 10);
  std::vector<std::size_t> perm = {3, 1, 6, 0, 5, 2, 4};
  for (std::size_t r = 0; r < 7; ++r) {
    for (std::size_t c = 0; c < 10; ++c) shuffled.at(r, c) = m.at(perm[r], c);
  }
  rref(m);
  rref(shuffled);
  EXPECT_EQ(m, shuffled);
}

TEST(GaussJordan, DuplicateRowsReduceRank) {
  Rng rng(65);
  M m = M::random(1, 6, rng);
  const auto row = m.row(0);
  M stacked;
  stacked.append_row(row);
  stacked.append_row(row);
  M third = M::random(1, 6, rng);
  stacked.append_row(third.row(0));
  EXPECT_EQ(rank(stacked), 2u);
}

TEST(GaussJordan, RankOfZeroMatrixIsZero) {
  M z(4, 4);
  EXPECT_EQ(rank(z), 0u);
}

TEST(GaussJordan, InvertRoundTrip) {
  Rng rng(66);
  for (int t = 0; t < 20; ++t) {
    const M a = M::random(10, 10, rng);
    const auto inv = invert(a);
    if (!inv.has_value()) continue;  // rare singular draw
    EXPECT_EQ(a.multiply(*inv), M::identity(10));
    EXPECT_EQ(inv->multiply(a), M::identity(10));
  }
}

TEST(GaussJordan, InvertSingularReturnsNullopt) {
  M s(3, 3);
  s.at(0, 0) = 1;
  s.at(1, 0) = 1;  // rows 0 and 1 identical in column 0, zero elsewhere
  EXPECT_EQ(invert(s), std::nullopt);
}

TEST(GaussJordan, InvertRequiresSquare) {
  M r(2, 3);
  EXPECT_THROW(invert(r), PreconditionError);
}

TEST(GaussJordan, RhsTracksRowOperations) {
  // Solving A X = I via rhs gives the inverse.
  Rng rng(67);
  M a = M::random(8, 8, rng);
  const M original = a;
  M rhs = M::identity(8);
  const auto info = rref(a, &rhs);
  if (info.rank == 8) {
    EXPECT_EQ(original.multiply(rhs), M::identity(8));
  }
}

TEST(GaussJordan, SolvedPrefixFullSystem) {
  Rng rng(68);
  M m = M::random(6, 6, rng);
  const auto info = rref(m);
  if (info.rank == 6) {
    EXPECT_EQ(solved_prefix(m, info), 6u);
  }
}

TEST(GaussJordan, SolvedPrefixPartialTriangular) {
  // Three equations over five unknowns: x0 known, x1+x2 mixed, x3 known.
  M m(3, 5);
  m.at(0, 0) = 1;
  m.at(1, 1) = 1;
  m.at(1, 2) = 5;
  m.at(2, 3) = 1;
  const auto info = rref(m);
  EXPECT_EQ(info.rank, 3u);
  // Only x0 is a decoded prefix: x1 is entangled with x2.
  EXPECT_EQ(solved_prefix(m, info), 1u);
}

TEST(GaussJordan, SolvedPrefixPaperFigure2) {
  // Fig. 2 of the paper: five coded blocks over five unknowns where the
  // first three unknowns decode. Construct an analogous matrix:
  // rows with supports {1}, {1,2}, {1..3}, {1..5}, {1..5}.
  Rng rng(69);
  M m(5, 5);
  auto fill = [&](std::size_t row, std::size_t width) {
    for (std::size_t c = 0; c < width; ++c) {
      m.at(row, c) = static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
  };
  fill(0, 1);
  fill(1, 2);
  fill(2, 3);
  fill(3, 5);
  fill(4, 5);
  const auto info = rref(m);
  // Generic coefficients: ranks are full, the 3x3 corner inverts, and the
  // two wide rows cannot separate unknowns 4 and 5.
  ASSERT_EQ(info.rank, 5u);
  EXPECT_EQ(solved_prefix(m, info), 5u);
}

TEST(GaussJordan, SolvedPrefixUnderdetermined) {
  Rng rng(70);
  M m(4, 5);
  auto fill = [&](std::size_t row, std::size_t width) {
    for (std::size_t c = 0; c < width; ++c) {
      m.at(row, c) = static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
  };
  fill(0, 1);
  fill(1, 2);
  fill(2, 3);
  fill(3, 5);  // only one equation touching unknowns 4,5 -> they stay coupled
  const auto info = rref(m);
  ASSERT_EQ(info.rank, 4u);
  EXPECT_EQ(solved_prefix(m, info), 3u);
}

TEST(GaussJordan, WorksOverGf2) {
  using F2 = gf::Gf2;
  Matrix<F2> m(3, 3);
  // [[1,1,0],[0,1,1],[1,0,1]] over GF(2) is singular (rows sum to 0).
  m.at(0, 0) = 1;
  m.at(0, 1) = 1;
  m.at(1, 1) = 1;
  m.at(1, 2) = 1;
  m.at(2, 0) = 1;
  m.at(2, 2) = 1;
  EXPECT_EQ(rank(m), 2u);
}

}  // namespace
}  // namespace prlc::linalg
