// Differential fuzz of the hybrid peeling/GE decoder.
//
// Three implementations of the same linear algebra are driven with the
// same equation stream and must agree everywhere:
//   * ProgressiveDecoder fed dense coefficient vectors (which internally
//     routes sparse content through the gathered path),
//   * ProgressiveDecoder fed the equations in sparse (index, value) form,
//   * batch Gauss-Jordan rref as the ground-truth dense-only reference.
// Payloads are generated from a known solution x, so recovered payload
// bytes are checked against the truth, not just cross-checked. Mixes of
// peelable singletons, O(ln n)-sparse rows, PLC-style prefix rows, and
// dense rows exercise peeling, fill-in, densification, and the batched
// back-elimination paths; unaligned payload sizes exercise the SIMD
// kernels' scalar tails.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "gf/gf256.h"
#include "gf/gf2m.h"
#include "linalg/gauss_jordan.h"
#include "linalg/matrix.h"
#include "linalg/progressive_decoder.h"
#include "util/random.h"

namespace prlc::linalg {
namespace {

template <typename F>
struct FuzzCase {
  std::size_t n;
  std::size_t payload;
  std::uint64_t seed;
  std::size_t steps;
};

template <typename F>
void run_fuzz(const FuzzCase<F>& fc) {
  using Symbol = typename F::Symbol;
  Rng rng(fc.seed);

  // Ground-truth solution: one random payload per unknown.
  std::vector<std::vector<Symbol>> x(fc.n);
  for (auto& blk : x) {
    blk.resize(fc.payload);
    for (auto& v : blk) v = static_cast<Symbol>(rng.uniform(F::order()));
  }

  ProgressiveDecoder<F> via_dense(fc.n, fc.payload);
  ProgressiveDecoder<F> via_sparse(fc.n, fc.payload);
  Matrix<F> reference;

  for (std::size_t step = 0; step < fc.steps; ++step) {
    // Draw one equation. Mix row shapes to hit every decoder path.
    std::vector<Symbol> coeffs(fc.n, Symbol{0});
    const std::size_t shape = rng.uniform(10);
    if (shape == 0) {
      // Singleton: peels immediately.
      coeffs[rng.uniform(fc.n)] = static_cast<Symbol>(1 + rng.uniform(F::order() - 1));
    } else if (shape <= 6) {
      // O(ln n)-sparse row.
      const std::size_t nnz = 1 + rng.uniform(7);
      for (std::size_t k = 0; k < nnz; ++k) {
        coeffs[rng.uniform(fc.n)] = static_cast<Symbol>(1 + rng.uniform(F::order() - 1));
      }
    } else if (shape <= 8) {
      // PLC-style prefix row: dense over [0, width).
      const std::size_t width = 1 + rng.uniform(fc.n);
      for (std::size_t j = 0; j < width; ++j) {
        coeffs[j] = static_cast<Symbol>(rng.uniform(F::order()));
      }
      coeffs[width - 1] = static_cast<Symbol>(1 + rng.uniform(F::order() - 1));
    } else {
      // Dense full-width row: forces the dense storage / batched paths.
      bool any = false;
      for (std::size_t j = 0; j < fc.n; ++j) {
        coeffs[j] = static_cast<Symbol>(rng.uniform(F::order()));
        any = any || coeffs[j] != 0;
      }
      if (!any) coeffs[0] = 1;
    }

    std::vector<Symbol> rhs(fc.payload, Symbol{0});
    for (std::size_t j = 0; j < fc.n; ++j) {
      if (coeffs[j] != 0) F::axpy(std::span<Symbol>(rhs), coeffs[j], x[j]);
    }
    std::vector<std::uint32_t> idx;
    std::vector<Symbol> val;
    for (std::size_t j = 0; j < fc.n; ++j) {
      if (coeffs[j] != 0) {
        idx.push_back(static_cast<std::uint32_t>(j));
        val.push_back(coeffs[j]);
      }
    }
    const bool zero_row = idx.empty();

    const bool a = via_dense.add(coeffs, rhs);
    const bool b = zero_row ? via_sparse.add(coeffs, rhs)
                            : via_sparse.add_sparse(idx, val, rhs);
    ASSERT_EQ(a, b) << "innovation verdict diverged at step " << step;
    ASSERT_EQ(via_dense.rank(), via_sparse.rank()) << "step " << step;
    ASSERT_EQ(via_dense.decoded_prefix(), via_sparse.decoded_prefix()) << "step " << step;

    reference.append_row(coeffs);
    Matrix<F> copy = reference;
    const auto info = rref(copy);
    ASSERT_EQ(via_dense.rank(), info.rank) << "step " << step;
    ASSERT_EQ(via_dense.decoded_prefix(), solved_prefix(copy, info)) << "step " << step;
  }

  // Decoded payloads must equal the ground truth byte for byte.
  for (std::size_t i = 0; i < fc.n; ++i) {
    ASSERT_EQ(via_dense.is_decoded(i), via_sparse.is_decoded(i)) << i;
    if (!via_dense.is_decoded(i) || fc.payload == 0) continue;
    const auto got_d = via_dense.solution(i);
    const auto got_s = via_sparse.solution(i);
    ASSERT_TRUE(std::equal(got_d.begin(), got_d.end(), x[i].begin(), x[i].end()))
        << "dense-fed payload wrong at unknown " << i;
    ASSERT_TRUE(std::equal(got_s.begin(), got_s.end(), x[i].begin(), x[i].end()))
        << "sparse-fed payload wrong at unknown " << i;
  }
  EXPECT_EQ(via_dense.rank(), fc.n) << "fuzz case should reach full rank";
}

TEST(HybridDecoderFuzz, Gf256UnalignedPayloads) {
  // Payload widths straddle SIMD lane boundaries (1, 7, 33 bytes).
  run_fuzz<gf::Gf256>({17, 1, 9001, 80});
  run_fuzz<gf::Gf256>({64, 7, 9002, 220});
  run_fuzz<gf::Gf256>({150, 33, 9003, 450});
}

TEST(HybridDecoderFuzz, Gf2Systems) {
  // GF(2): coefficients are bits, peeling degenerates to XOR chasing.
  run_fuzz<gf::Gf2>({17, 5, 9101, 120});
  run_fuzz<gf::Gf2>({64, 9, 9102, 400});
}

TEST(HybridDecoderFuzz, CoefficientOnlyDecoding) {
  // payload_size 0: the decoding-curve configuration.
  run_fuzz<gf::Gf256>({64, 0, 9201, 220});
  run_fuzz<gf::Gf2>({32, 0, 9202, 200});
}

TEST(HybridDecoderFuzz, StatsSeeBothRepresentations) {
  // The mixed-shape stream above must actually exercise both storage
  // kinds and the peeling counter — otherwise the fuzz is weaker than it
  // claims. (Densification depends on fill-in and is covered separately.)
  Rng rng(9301);
  const std::size_t n = 120;
  ProgressiveDecoder<gf::Gf256> d(n);
  std::vector<std::uint8_t> coeffs(n, 0);
  while (d.rank() < n) {
    std::fill(coeffs.begin(), coeffs.end(), 0);
    if (rng.bernoulli(0.7)) {
      const std::size_t nnz = 1 + rng.uniform(4);
      for (std::size_t k = 0; k < nnz; ++k) {
        coeffs[rng.uniform(n)] = static_cast<std::uint8_t>(1 + rng.uniform(255));
      }
    } else {
      for (auto& c : coeffs) c = static_cast<std::uint8_t>(rng.uniform(256));
      coeffs[0] = 1;
    }
    d.add(coeffs);
  }
  const auto s = d.stats();
  EXPECT_GT(s.peel_ops, 0u);
  EXPECT_GT(s.dense_rows, 0u);
  EXPECT_GT(s.coef_bytes, 0u);
}

}  // namespace
}  // namespace prlc::linalg
