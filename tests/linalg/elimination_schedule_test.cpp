#include "linalg/elimination_schedule.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "gf/gf256.h"
#include "linalg/progressive_decoder.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::linalg {
namespace {

using F = gf::Gf256;

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> out(n);
  for (auto& v : out) v = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

/// Apply a recorded schedule to the raw input payloads, scalar-wise.
void replay(const EliminationSchedule& schedule,
            std::vector<std::vector<std::uint8_t>>& payloads) {
  for (const auto& op : schedule.ops) {
    auto& target = payloads[op.target];
    switch (op.kind) {
      case EliminationSchedule::OpKind::kAxpy: {
        const auto& source = payloads[op.source];
        for (std::size_t k = 0; k < target.size(); ++k) {
          target[k] ^= F::mul(op.factor, source[k]);
        }
        break;
      }
      case EliminationSchedule::OpKind::kScale:
        for (auto& v : target) v = F::mul(op.factor, v);
        break;
    }
  }
}

TEST(EliminationSchedule, ReplayReproducesTheEagerDecoderSolutions) {
  Rng rng(41);
  const std::size_t n = 24;
  const std::size_t payload = 37;
  const std::size_t equations = n + 5;  // redundancy: dropped-op path covered

  std::vector<std::vector<std::uint8_t>> rows, payloads;
  for (std::size_t i = 0; i < equations; ++i) {
    rows.push_back(random_bytes(n, rng));
    payloads.push_back(random_bytes(payload, rng));
  }

  // Reference: eager decoder carrying the payloads itself.
  ProgressiveDecoder<F> eager(n, payload);
  // Subject: coefficient-only decoder recording the payload schedule.
  ProgressiveDecoder<F> recording(n);
  EliminationSchedule schedule;
  recording.set_schedule_recorder(&schedule);
  for (std::size_t i = 0; i < equations; ++i) {
    const bool a = eager.add(rows[i], payloads[i]);
    const bool b = recording.add(rows[i]);
    EXPECT_EQ(a, b) << "innovation verdicts diverged at row " << i;
  }
  ASSERT_EQ(recording.rank(), eager.rank());
  EXPECT_EQ(schedule.inputs, equations);

  auto replayed = payloads;
  replay(schedule, replayed);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(recording.is_decoded(i));
    const std::uint32_t input = schedule.pivot_input[i];
    ASSERT_NE(input, EliminationSchedule::kNoInput);
    const auto want = eager.solution(i);
    const auto& got = replayed[input];
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << "unknown " << i << " bound to input " << input;
  }
}

TEST(EliminationSchedule, PartialRankBindsOnlyDecodedPivots) {
  Rng rng(42);
  const std::size_t n = 12;
  ProgressiveDecoder<F> recording(n);
  EliminationSchedule schedule;
  recording.set_schedule_recorder(&schedule);
  // Only 5 equations over the first 6 unknowns.
  for (std::size_t i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> row(n, 0);
    for (std::size_t j = 0; j < 6; ++j) row[j] = static_cast<std::uint8_t>(rng.uniform(256));
    recording.add(row);
  }
  std::size_t bound = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (schedule.pivot_input[i] != EliminationSchedule::kNoInput) ++bound;
  }
  EXPECT_EQ(bound, recording.rank());
  for (std::size_t i = 6; i < n; ++i) {
    EXPECT_EQ(schedule.pivot_input[i], EliminationSchedule::kNoInput);
  }
}

TEST(EliminationSchedule, RecorderRequiresAFreshDecoder) {
  ProgressiveDecoder<F> decoder(4);
  decoder.add(std::vector<std::uint8_t>{1, 0, 0, 0});
  EliminationSchedule schedule;
  EXPECT_THROW(decoder.set_schedule_recorder(&schedule), PreconditionError);
}

}  // namespace
}  // namespace prlc::linalg
