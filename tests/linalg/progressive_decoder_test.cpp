#include "linalg/progressive_decoder.h"

#include <gtest/gtest.h>

#include "gf/gf2m.h"
#include "gf/gf256.h"
#include "linalg/gauss_jordan.h"
#include "linalg/matrix.h"
#include "util/random.h"

namespace prlc::linalg {
namespace {

using F = gf::Gf256;

std::vector<std::uint8_t> random_row(std::size_t n, Rng& rng, std::size_t width = 0) {
  std::vector<std::uint8_t> row(n, 0);
  const std::size_t w = width == 0 ? n : width;
  for (std::size_t i = 0; i < w; ++i) row[i] = static_cast<std::uint8_t>(rng.uniform(256));
  return row;
}

TEST(ProgressiveDecoder, RejectsZeroUnknowns) {
  EXPECT_THROW(ProgressiveDecoder<F>(0), PreconditionError);
}

TEST(ProgressiveDecoder, RankGrowsOnlyOnInnovativeRows) {
  Rng rng(71);
  ProgressiveDecoder<F> d(5);
  const auto r1 = random_row(5, rng);
  EXPECT_TRUE(d.add(r1));
  EXPECT_EQ(d.rank(), 1u);
  // The same row again is dependent.
  EXPECT_FALSE(d.add(r1));
  EXPECT_EQ(d.rank(), 1u);
  // A scalar multiple is dependent too.
  auto scaled = r1;
  F::scale(std::span<std::uint8_t>(scaled), 7);
  EXPECT_FALSE(d.add(scaled));
  EXPECT_EQ(d.rank(), 1u);
  EXPECT_EQ(d.equations_seen(), 3u);
}

TEST(ProgressiveDecoder, ZeroRowIsNotInnovative) {
  ProgressiveDecoder<F> d(4);
  const std::vector<std::uint8_t> zero(4, 0);
  EXPECT_FALSE(d.add(zero));
  EXPECT_EQ(d.rank(), 0u);
}

TEST(ProgressiveDecoder, WidthMismatchThrows) {
  ProgressiveDecoder<F> d(4);
  const std::vector<std::uint8_t> bad(3, 1);
  EXPECT_THROW(d.add(bad), PreconditionError);
}

TEST(ProgressiveDecoder, FullSystemDecodesAllUnknowns) {
  Rng rng(72);
  const std::size_t n = 30;
  ProgressiveDecoder<F> d(n);
  std::size_t added = 0;
  while (d.rank() < n) {
    d.add(random_row(n, rng));
    ++added;
    ASSERT_LT(added, 3 * n);  // random rows reach full rank quickly
  }
  EXPECT_EQ(d.decoded_prefix(), n);
  EXPECT_EQ(d.decoded_count(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_TRUE(d.is_decoded(i));
}

TEST(ProgressiveDecoder, PayloadRecoversSolution) {
  // Build a known solution x; feed rows (a_i, a_i . x); decoded payloads
  // must equal x_i for every solved unknown.
  Rng rng(73);
  const std::size_t n = 12;
  const std::size_t payload = 5;
  std::vector<std::vector<std::uint8_t>> x(n);
  for (auto& blk : x) {
    blk.resize(payload);
    for (auto& v : blk) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  ProgressiveDecoder<F> d(n, payload);
  while (d.rank() < n) {
    const auto coeffs = random_row(n, rng);
    std::vector<std::uint8_t> rhs(payload, 0);
    for (std::size_t j = 0; j < n; ++j) {
      F::axpy(std::span<std::uint8_t>(rhs), coeffs[j], x[j]);
    }
    d.add(coeffs, rhs);
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(d.is_decoded(i));
    const auto got = d.solution(i);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), x[i].begin(), x[i].end())) << i;
  }
}

TEST(ProgressiveDecoder, PartialPayloadRecoveryOnTriangularRows) {
  // Rows restricted to prefixes: width-1 row solves x0 immediately.
  Rng rng(74);
  const std::size_t n = 6;
  const std::size_t payload = 3;
  std::vector<std::vector<std::uint8_t>> x(n);
  for (auto& blk : x) {
    blk.resize(payload);
    for (auto& v : blk) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  auto make = [&](std::size_t width) {
    auto coeffs = random_row(n, rng, width);
    coeffs[width - 1] = static_cast<std::uint8_t>(1 + rng.uniform(255));  // ensure width
    std::vector<std::uint8_t> rhs(payload, 0);
    for (std::size_t j = 0; j < n; ++j) F::axpy(std::span<std::uint8_t>(rhs), coeffs[j], x[j]);
    return std::pair{coeffs, rhs};
  };
  ProgressiveDecoder<F> d(n, payload);
  auto [c1, r1] = make(1);
  d.add(c1, r1);
  EXPECT_EQ(d.decoded_prefix(), 1u);
  const auto got = d.solution(0);
  EXPECT_TRUE(std::equal(got.begin(), got.end(), x[0].begin(), x[0].end()));
  // A width-3 row alone cannot decode x1 or x2.
  auto [c3, r3] = make(3);
  d.add(c3, r3);
  EXPECT_EQ(d.decoded_prefix(), 1u);
  // Adding a width-2 row completes the 3x3 triangle: all of x0..x2 decode.
  auto [c2, r2] = make(2);
  d.add(c2, r2);
  EXPECT_EQ(d.decoded_prefix(), 3u);
}

TEST(ProgressiveDecoder, MatchesBatchRrefSolvedPrefix) {
  // Online and batch Gauss-Jordan must agree on the decoded prefix at
  // every step (RREF uniqueness).
  Rng rng(75);
  const std::size_t n = 15;
  for (int trial = 0; trial < 10; ++trial) {
    ProgressiveDecoder<F> online(n);
    Matrix<F> batch;
    for (std::size_t step = 0; step < 2 * n; ++step) {
      // Rows with random prefix widths exercise the triangular paths.
      const std::size_t width = 1 + rng.uniform(n);
      auto row = random_row(n, rng, width);
      row[width - 1] = static_cast<std::uint8_t>(1 + rng.uniform(255));
      online.add(row);
      batch.append_row(row);
      Matrix<F> copy = batch;
      const auto info = rref(copy);
      ASSERT_EQ(online.rank(), info.rank);
      ASSERT_EQ(online.decoded_prefix(), solved_prefix(copy, info))
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(ProgressiveDecoder, DecodedPrefixIsMonotone) {
  Rng rng(76);
  const std::size_t n = 20;
  ProgressiveDecoder<F> d(n);
  std::size_t last = 0;
  for (std::size_t step = 0; step < 3 * n; ++step) {
    const std::size_t width = 1 + rng.uniform(n);
    auto row = random_row(n, rng, width);
    d.add(row);
    EXPECT_GE(d.decoded_prefix(), last);
    last = d.decoded_prefix();
  }
}

TEST(ProgressiveDecoder, DecodedCountCanExceedPrefix) {
  // Solve unknown 2 without unknowns 0,1: prefix stays 0 but count is 1.
  ProgressiveDecoder<F> d(3);
  std::vector<std::uint8_t> row = {0, 0, 1};
  d.add(row);
  EXPECT_EQ(d.decoded_prefix(), 0u);
  EXPECT_EQ(d.decoded_count(), 1u);
  EXPECT_TRUE(d.is_decoded(2));
  EXPECT_FALSE(d.is_decoded(0));
}

TEST(ProgressiveDecoder, SolutionRequiresPayloadsAndDecodedState) {
  ProgressiveDecoder<F> no_payload(3);
  std::vector<std::uint8_t> row = {1, 0, 0};
  no_payload.add(row);
  EXPECT_THROW(no_payload.solution(0), PreconditionError);

  ProgressiveDecoder<F> with_payload(3, 2);
  EXPECT_THROW(with_payload.solution(0), PreconditionError);  // nothing decoded yet
}

TEST(ProgressiveDecoder, RrefInvariantHoldsAfterEveryInsertion) {
  // After every add() the stored rows must form a reduced row-echelon
  // form: each pivot row carries a unit pivot, and every *other* stored
  // row is zero at that pivot column. 500 randomized insertions with
  // payloads attached exercise the batched back-elimination path (the
  // payload batch included) far past full rank.
  Rng rng(78);
  const std::size_t n = 60;
  const std::size_t payload = 24;
  ProgressiveDecoder<F> d(n, payload);
  for (std::size_t step = 0; step < 500; ++step) {
    // Mix of PLC-style prefix-support rows and full-width rows.
    const std::size_t width = 1 + rng.uniform(n);
    const auto coeffs = random_row(n, rng, rng.bernoulli(0.5) ? width : n);
    std::vector<std::uint8_t> pay(payload);
    for (auto& v : pay) v = static_cast<std::uint8_t>(rng.uniform(256));
    d.add(coeffs, pay);

    for (std::size_t p = 0; p < n; ++p) {
      if (!d.has_pivot(p)) continue;
      ASSERT_EQ(d.row_coefficient(p, p), 1)
          << "step " << step << ": pivot " << p << " not normalized";
      // Support bound is tight: the last in-window coefficient is nonzero.
      const std::size_t end = d.row_support_end(p);
      ASSERT_GT(end, p);
      ASSERT_NE(d.row_coefficient(p, end - 1), 0)
          << "step " << step << ": pivot " << p << " stale support bound";
      for (std::size_t q = 0; q < n; ++q) {
        if (q == p || !d.has_pivot(q)) continue;
        ASSERT_EQ(d.row_coefficient(p, q), 0)
            << "step " << step << ": row " << p << " nonzero at pivot column " << q;
      }
    }
  }
  EXPECT_EQ(d.rank(), n);
  EXPECT_EQ(d.decoded_prefix(), n);
}

TEST(ProgressiveDecoder, SupportBoundTightensAfterBackElimination) {
  // Regression: Row::end used to only grow. [1,1,1,1] back-eliminated by
  // [0,1,1,1] collapses to the unit vector e0 — the support bound must
  // come back down to pivot+1 and the unknown must count as decoded.
  ProgressiveDecoder<F> d(4);
  EXPECT_TRUE(d.add(std::vector<std::uint8_t>{1, 1, 1, 1}));
  EXPECT_EQ(d.row_support_end(0), 4u);
  EXPECT_FALSE(d.is_decoded(0));
  EXPECT_TRUE(d.add(std::vector<std::uint8_t>{0, 1, 1, 1}));
  EXPECT_EQ(d.row_support_end(0), 1u);
  EXPECT_TRUE(d.is_decoded(0));
  EXPECT_EQ(d.decoded_prefix(), 1u);
}

TEST(ProgressiveDecoder, SparseAddValidatesInput) {
  ProgressiveDecoder<F> d(8);
  const std::vector<std::uint8_t> vals2 = {1, 2};
  // Length mismatch.
  EXPECT_THROW(d.add_sparse(std::vector<std::uint32_t>{0}, vals2), PreconditionError);
  // Out of range.
  EXPECT_THROW(d.add_sparse(std::vector<std::uint32_t>{3, 8}, vals2), PreconditionError);
  // Not strictly increasing (duplicates included).
  EXPECT_THROW(d.add_sparse(std::vector<std::uint32_t>{5, 5}, vals2), PreconditionError);
  EXPECT_THROW(d.add_sparse(std::vector<std::uint32_t>{5, 3}, vals2), PreconditionError);
  // Explicit zeros are not allowed in sparse form.
  EXPECT_THROW(d.add_sparse(std::vector<std::uint32_t>{1, 2},
                            std::vector<std::uint8_t>{1, 0}),
               PreconditionError);
  EXPECT_EQ(d.rank(), 0u);
}

TEST(ProgressiveDecoder, SparseAddMatchesDenseAdd) {
  // Feeding the same equations through add() and add_sparse() must give
  // identical state after every insertion (rank, prefix, verdicts).
  Rng rng(79);
  const std::size_t n = 40;
  const std::size_t payload = 9;
  ProgressiveDecoder<F> dense(n, payload);
  ProgressiveDecoder<F> sparse(n, payload);
  for (std::size_t step = 0; step < 4 * n; ++step) {
    std::vector<std::uint8_t> coeffs(n, 0);
    const std::size_t nnz = 1 + rng.uniform(6);
    for (std::size_t k = 0; k < nnz; ++k) {
      coeffs[rng.uniform(n)] = static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    std::vector<std::uint8_t> pay(payload);
    for (auto& v : pay) v = static_cast<std::uint8_t>(rng.uniform(256));
    std::vector<std::uint32_t> idx;
    std::vector<std::uint8_t> val;
    for (std::size_t j = 0; j < n; ++j) {
      if (coeffs[j] != 0) {
        idx.push_back(static_cast<std::uint32_t>(j));
        val.push_back(coeffs[j]);
      }
    }
    const bool a = dense.add(coeffs, pay);
    const bool b = sparse.add_sparse(idx, val, pay);
    ASSERT_EQ(a, b) << "step " << step;
    ASSERT_EQ(dense.rank(), sparse.rank());
    ASSERT_EQ(dense.decoded_prefix(), sparse.decoded_prefix());
  }
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(dense.is_decoded(i), sparse.is_decoded(i)) << i;
    if (!dense.is_decoded(i)) continue;
    const auto x = dense.solution(i);
    const auto y = sparse.solution(i);
    ASSERT_TRUE(std::equal(x.begin(), x.end(), y.begin(), y.end())) << i;
  }
}

TEST(ProgressiveDecoder, StatsTrackPeelAndStorage) {
  // Singleton equations decode unknowns directly; equations referencing
  // decoded unknowns peel in O(1). The stats surface both.
  ProgressiveDecoder<F> d(16);
  const std::vector<std::uint32_t> i0 = {0};
  const std::vector<std::uint8_t> v0 = {5};
  EXPECT_TRUE(d.add_sparse(i0, v0));
  const std::vector<std::uint32_t> i1 = {0, 1};
  const std::vector<std::uint8_t> v1 = {3, 7};
  EXPECT_TRUE(d.add_sparse(i1, v1));  // peels against the decoded x0
  const auto s = d.stats();
  EXPECT_GE(s.peel_ops, 1u);
  EXPECT_EQ(s.sparse_rows + s.dense_rows, 2u);
  EXPECT_EQ(d.decoded_prefix(), 2u);
}

TEST(ProgressiveDecoder, WorksOverGf16) {
  using F16 = gf::Gf16;
  Rng rng(77);
  const std::size_t n = 10;
  ProgressiveDecoder<F16> d(n);
  std::size_t added = 0;
  while (d.rank() < n && added < 200) {
    std::vector<std::uint16_t> row(n);
    for (auto& v : row) v = static_cast<std::uint16_t>(rng.uniform(F16::order()));
    d.add(row);
    ++added;
  }
  EXPECT_EQ(d.rank(), n);
  EXPECT_EQ(d.decoded_prefix(), n);
}

}  // namespace
}  // namespace prlc::linalg
