#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "gf/gf256.h"
#include "util/check.h"

namespace prlc::linalg {
namespace {

using F = gf::Gf256;
using M = Matrix<F>;

TEST(Matrix, ZeroInitialized) {
  M m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(m.at(r, c), 0);
  }
}

TEST(Matrix, IndexBoundsChecked) {
  M m(2, 2);
  EXPECT_THROW(m.at(2, 0), PreconditionError);
  EXPECT_THROW(m.at(0, 2), PreconditionError);
  EXPECT_THROW(m.row(2), PreconditionError);
}

TEST(Matrix, RowSpanWritesThrough) {
  M m(2, 3);
  auto row = m.row(1);
  row[2] = 9;
  EXPECT_EQ(m.at(1, 2), 9);
}

TEST(Matrix, IdentityProperties) {
  const M id = M::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_EQ(id.at(r, c), r == c ? 1 : 0);
  }
}

TEST(Matrix, IdentityIsMultiplicativeIdentity) {
  Rng rng(51);
  const M a = M::random(4, 4, rng);
  EXPECT_EQ(a.multiply(M::identity(4)), a);
  EXPECT_EQ(M::identity(4).multiply(a), a);
}

TEST(Matrix, MultiplyShapeChecked) {
  M a(2, 3);
  M b(4, 2);
  EXPECT_THROW(a.multiply(b), PreconditionError);
}

TEST(Matrix, MultiplyMatchesManualComputation) {
  M a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  M b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const M c = a.multiply(b);
  auto expect = [&](std::size_t i, std::size_t j) {
    return F::add(F::mul(a.at(i, 0), b.at(0, j)), F::mul(a.at(i, 1), b.at(1, j)));
  };
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) EXPECT_EQ(c.at(i, j), expect(i, j));
  }
}

TEST(Matrix, MultiplyAssociativeSampled) {
  Rng rng(52);
  const M a = M::random(3, 5, rng);
  const M b = M::random(5, 4, rng);
  const M c = M::random(4, 2, rng);
  EXPECT_EQ(a.multiply(b).multiply(c), a.multiply(b.multiply(c)));
}

TEST(Matrix, ApplyMatchesMultiply) {
  Rng rng(53);
  const M a = M::random(4, 6, rng);
  std::vector<std::uint8_t> x(6);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform(256));
  const auto y = a.apply(x);
  for (std::size_t i = 0; i < 4; ++i) {
    std::uint8_t expect = 0;
    for (std::size_t j = 0; j < 6; ++j) expect ^= F::mul(a.at(i, j), x[j]);
    EXPECT_EQ(y[i], expect);
  }
}

TEST(Matrix, AppendRowGrowsAndChecksWidth) {
  M m;
  const std::vector<std::uint8_t> r1 = {1, 2, 3};
  m.append_row(r1);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  const std::vector<std::uint8_t> bad = {1, 2};
  EXPECT_THROW(m.append_row(bad), PreconditionError);
  const std::vector<std::uint8_t> r2 = {4, 5, 6};
  m.append_row(r2);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.at(1, 2), 6);
}

TEST(Matrix, RandomIsDeterministicPerSeed) {
  Rng r1(99);
  Rng r2(99);
  EXPECT_EQ(M::random(5, 5, r1), M::random(5, 5, r2));
}

}  // namespace
}  // namespace prlc::linalg
