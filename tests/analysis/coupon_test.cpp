#include "analysis/coupon.h"

#include <gtest/gtest.h>

#include "util/check.h"
#include "util/random.h"

namespace prlc::analysis {
namespace {

TEST(Coupon, ExpectedDrawsHarmonic) {
  EXPECT_DOUBLE_EQ(coupon_expected_draws(1), 1.0);
  EXPECT_NEAR(coupon_expected_draws(2), 3.0, 1e-12);              // 2*(1+1/2)
  EXPECT_NEAR(coupon_expected_draws(3), 5.5, 1e-12);              // 3*(1+1/2+1/3)
  EXPECT_NEAR(coupon_expected_draws(100), 100 * 5.1873775, 1e-3); // H_100
}

TEST(Coupon, ExpectedDistinctExactFormula) {
  EXPECT_DOUBLE_EQ(coupon_expected_distinct(10, 0), 0.0);
  EXPECT_NEAR(coupon_expected_distinct(10, 1), 1.0, 1e-12);
  // Large M saturates at N.
  EXPECT_NEAR(coupon_expected_distinct(10, 10000), 10.0, 1e-9);
}

TEST(Coupon, ExpectedDistinctMatchesSimulation) {
  Rng rng(141);
  const std::size_t n = 20;
  const std::size_t m = 30;
  double total = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    std::vector<bool> seen(n, false);
    std::size_t distinct = 0;
    for (std::size_t d = 0; d < m; ++d) {
      const std::size_t c = rng.uniform(n);
      if (!seen[c]) {
        seen[c] = true;
        ++distinct;
      }
    }
    total += static_cast<double>(distinct);
  }
  EXPECT_NEAR(total / trials, coupon_expected_distinct(n, m), 0.05);
}

TEST(Coupon, ProbAllCollectedMonotoneAndBounded) {
  double last = 0;
  for (std::size_t m = 0; m <= 2000; m += 100) {
    const double p = coupon_prob_all_collected(50, m);
    EXPECT_GE(p, last - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    last = p;
  }
  EXPECT_LT(coupon_prob_all_collected(50, 50), 0.01);
  EXPECT_GT(coupon_prob_all_collected(50, 1000), 0.95);
}

TEST(Coupon, ExpectedPrefixBounds) {
  EXPECT_NEAR(coupon_expected_prefix(10, 0), 0.0, 1e-12);
  EXPECT_NEAR(coupon_expected_prefix(10, 100000), 10.0, 1e-6);
  const double mid = coupon_expected_prefix(10, 10);
  EXPECT_GT(mid, 0.5);
  EXPECT_LT(mid, 5.0);
}

TEST(Coupon, PrefixAtMostDistinct) {
  for (std::size_t m : {5u, 20u, 80u}) {
    EXPECT_LE(coupon_expected_prefix(30, m), coupon_expected_distinct(30, m) + 0.5);
  }
}

TEST(Coupon, RejectsZeroCoupons) {
  EXPECT_THROW(coupon_expected_draws(0), PreconditionError);
  EXPECT_THROW(coupon_expected_distinct(0, 5), PreconditionError);
  EXPECT_THROW(coupon_prob_all_collected(0, 5), PreconditionError);
  EXPECT_THROW(coupon_expected_prefix(0, 5), PreconditionError);
}

}  // namespace
}  // namespace prlc::analysis
