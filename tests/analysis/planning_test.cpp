#include "analysis/planning.h"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/count_model.h"
#include "analysis/plc_analysis.h"
#include "util/check.h"
#include "util/random.h"
#include "util/stats.h"

namespace prlc::analysis {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

TEST(Planning, BlocksNeededIsExactThreshold) {
  const PrioritySpec spec({5, 10});
  const auto dist = PriorityDistribution::uniform(2);
  PlcAnalysis plc(spec, dist);
  for (double conf : {0.5, 0.9, 0.99}) {
    const auto m = blocks_needed(Scheme::kPlc, spec, dist, 1, conf, 500);
    ASSERT_TRUE(m.has_value()) << conf;
    EXPECT_GE(plc.prob_at_least(1, *m), conf);
    if (*m > 1) {
      EXPECT_LT(plc.prob_at_least(1, *m - 1), conf);
    }
  }
}

TEST(Planning, BlocksNeededRespectsLowerBound) {
  // Fewer than b_k blocks can never decode k levels.
  const PrioritySpec spec({5, 10});
  const auto dist = PriorityDistribution::uniform(2);
  const auto m = blocks_needed(Scheme::kPlc, spec, dist, 2, 0.5, 500);
  ASSERT_TRUE(m.has_value());
  EXPECT_GE(*m, 15u);
}

TEST(Planning, BlocksNeededMonotoneInConfidenceAndLevel) {
  const PrioritySpec spec({5, 10, 15});
  const auto dist = PriorityDistribution::uniform(3);
  const auto m50 = blocks_needed(Scheme::kPlc, spec, dist, 1, 0.5, 1000);
  const auto m99 = blocks_needed(Scheme::kPlc, spec, dist, 1, 0.99, 1000);
  const auto m2 = blocks_needed(Scheme::kPlc, spec, dist, 2, 0.5, 1000);
  ASSERT_TRUE(m50 && m99 && m2);
  EXPECT_LE(*m50, *m99);
  EXPECT_LE(*m50, *m2);
}

TEST(Planning, UnreachableTargetReturnsNullopt) {
  const PrioritySpec spec({5, 10});
  // No level-1 coded blocks: level 1 of SLC can never decode.
  const PriorityDistribution dist({0.0, 1.0});
  EXPECT_EQ(blocks_needed(Scheme::kSlc, spec, dist, 1, 0.5, 2000), std::nullopt);
}

TEST(Planning, RlcNeedsExactlyN) {
  const PrioritySpec spec({5, 10});
  const auto dist = PriorityDistribution::uniform(2);
  const auto m = blocks_needed(Scheme::kRlc, spec, dist, 2, 0.9, 100);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 15u);
}

TEST(Planning, ValidatesArguments) {
  const PrioritySpec spec({5, 10});
  const auto dist = PriorityDistribution::uniform(2);
  EXPECT_THROW(blocks_needed(Scheme::kPlc, spec, dist, 0, 0.5, 100), PreconditionError);
  EXPECT_THROW(blocks_needed(Scheme::kPlc, spec, dist, 3, 0.5, 100), PreconditionError);
  EXPECT_THROW(blocks_needed(Scheme::kPlc, spec, dist, 1, 1.0, 100), PreconditionError);
  EXPECT_THROW(blocks_needed(Scheme::kPlc, spec, dist, 1, 0.5, 0), PreconditionError);
}

TEST(Planning, TolerableLossConsistentWithBlocksNeeded) {
  const PrioritySpec spec({5, 10});
  const auto dist = PriorityDistribution::uniform(2);
  const std::size_t stored = 60;
  const double f = tolerable_loss(Scheme::kPlc, spec, dist, 1, 0.9, stored);
  EXPECT_GT(f, 0.0);
  EXPECT_LT(f, 1.0);
  const auto needed = blocks_needed(Scheme::kPlc, spec, dist, 1, 0.9, stored);
  ASSERT_TRUE(needed.has_value());
  EXPECT_NEAR(f, 1.0 - static_cast<double>(*needed) / 60.0, 1e-12);
}

TEST(Planning, TolerableLossZeroWhenStoreTooSmall) {
  const PrioritySpec spec({5, 10});
  const auto dist = PriorityDistribution::uniform(2);
  // 10 stored blocks cannot decode both levels (b_2 = 15) at any loss.
  EXPECT_DOUBLE_EQ(tolerable_loss(Scheme::kPlc, spec, dist, 2, 0.9, 10), 0.0);
}

TEST(Planning, VarianceMatchesMonteCarlo) {
  const PrioritySpec spec({4, 6, 8});
  const PriorityDistribution dist({0.3, 0.3, 0.4});
  for (std::size_t m : {8u, 18u, 30u}) {
    const double analytic = variance_levels(Scheme::kPlc, spec, dist, m);
    // Monte-Carlo variance of the count model.
    Rng rng(91);
    RunningStats xs;
    for (int t = 0; t < 30000; ++t) {
      std::vector<std::size_t> counts(3, 0);
      for (std::size_t i = 0; i < m; ++i) ++counts[dist.sample_level(rng)];
      xs.add(static_cast<double>(plc_levels_from_counts(spec, counts)));
    }
    EXPECT_NEAR(analytic, xs.variance(), 0.05 + 0.05 * xs.variance()) << "M=" << m;
  }
}

TEST(Planning, VarianceZeroAtExtremes) {
  const PrioritySpec spec({4, 6});
  const auto dist = PriorityDistribution::uniform(2);
  EXPECT_NEAR(variance_levels(Scheme::kPlc, spec, dist, 0), 0.0, 1e-12);
  // Saturated: everything decodes almost surely -> variance ~ 0.
  EXPECT_LT(variance_levels(Scheme::kPlc, spec, dist, 200), 1e-3);
}

}  // namespace
}  // namespace prlc::analysis
