#include "analysis/plc_approx.h"

#include <gtest/gtest.h>

#include "analysis/plc_analysis.h"
#include "util/check.h"

namespace prlc::analysis {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;

TEST(PlcApprox, PmfIsNormalized) {
  const PrioritySpec spec({5, 10, 15});
  PlcApproxAnalysis approx(spec, PriorityDistribution::uniform(3));
  for (std::size_t m : {0u, 10u, 30u, 60u}) {
    const auto pmf = approx.level_pmf(m);
    double sum = 0;
    for (double p : pmf) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9) << m;
  }
}

TEST(PlcApprox, TrivialCasesExact) {
  const PrioritySpec spec({3, 5});
  PlcApproxAnalysis approx(spec, PriorityDistribution::uniform(2));
  EXPECT_DOUBLE_EQ(approx.prob_exactly(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(approx.prob_exactly(1, 2), 0.0);  // b_1 = 3 > 2
  EXPECT_DOUBLE_EQ(approx.prob_exactly(2, 7), 0.0);  // b_2 = 8 > 7
}

TEST(PlcApprox, CloseToExactAtFewLevels) {
  // The independence error is small for a handful of levels — the
  // regime where the paper's Fig. 4(a) shows agreement.
  const PrioritySpec spec({10, 10, 10});
  const auto dist = PriorityDistribution::uniform(3);
  PlcApproxAnalysis approx(spec, dist);
  PlcAnalysis exact(spec, dist);
  for (std::size_t m = 5; m <= 60; m += 5) {
    EXPECT_NEAR(approx.expected_levels(m), exact.expected_levels(m), 0.25) << "M=" << m;
  }
}

TEST(PlcApprox, DeviatesMoreWithManyLevels) {
  // The qualitative property of the paper's approximation: error grows
  // with the level count. Compare total absolute curve error at 3 vs 12
  // levels (same N).
  auto curve_error = [](std::size_t levels) {
    const std::size_t per = 36 / levels;
    const PrioritySpec spec(std::vector<std::size_t>(levels, per));
    const auto dist = PriorityDistribution::uniform(levels);
    PlcApproxAnalysis approx(spec, dist);
    PlcAnalysis exact(spec, dist);
    double err = 0;
    for (std::size_t m = 6; m <= 54; m += 6) {
      err += std::abs(approx.expected_levels(m) - exact.expected_levels(m)) /
             static_cast<double>(levels);
    }
    return err;
  };
  EXPECT_LT(curve_error(3), curve_error(12));
}

TEST(PlcApprox, MonotoneExpectedLevels) {
  const PrioritySpec spec({4, 8, 12});
  PlcApproxAnalysis approx(spec, PriorityDistribution::uniform(3));
  double last = 0;
  for (std::size_t m = 1; m <= 50; m += 4) {
    const double e = approx.expected_levels(m);
    EXPECT_GE(e, last - 0.02);  // approximation may wobble slightly
    last = e;
  }
}

TEST(PlcApprox, Validation) {
  EXPECT_THROW(PlcApproxAnalysis(PrioritySpec({2, 2}), PriorityDistribution::uniform(3)),
               PreconditionError);
  PlcApproxAnalysis approx(PrioritySpec({2, 2}), PriorityDistribution::uniform(2));
  EXPECT_THROW(approx.prob_exactly(3, 5), PreconditionError);
}

}  // namespace
}  // namespace prlc::analysis
