// Parameterized property sweeps over the analysis engine: invariants the
// exact backends must satisfy for arbitrary priority structures.
#include <gtest/gtest.h>

#include "analysis/count_model.h"
#include "analysis/plc_analysis.h"
#include "analysis/slc_analysis.h"

namespace prlc::analysis {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

struct AnalysisCase {
  const char* name;
  std::vector<std::size_t> levels;
  std::vector<double> dist;
};

std::ostream& operator<<(std::ostream& os, const AnalysisCase& c) { return os << c.name; }

class AnalysisProperties : public ::testing::TestWithParam<AnalysisCase> {
 protected:
  PrioritySpec spec() const { return PrioritySpec(std::vector<std::size_t>(GetParam().levels)); }
  PriorityDistribution dist() const {
    return PriorityDistribution(std::vector<double>(GetParam().dist));
  }
  std::vector<std::size_t> m_grid() const {
    const std::size_t n = spec().total();
    return {1, n / 2 + 1, n, 2 * n, 3 * n};
  }
};

TEST_P(AnalysisProperties, PlcPmfIsAProbabilityDistribution) {
  PlcAnalysis plc(spec(), dist());
  for (std::size_t m : m_grid()) {
    const auto pmf = plc.level_pmf(m);
    double sum = 0;
    for (double p : pmf) {
      ASSERT_GE(p, -1e-12);
      ASSERT_LE(p, 1 + 1e-12);
      sum += p;
    }
    ASSERT_NEAR(sum, 1.0, 1e-7) << "M=" << m;
  }
}

TEST_P(AnalysisProperties, ExpectedLevelsMonotoneInBlocks) {
  PlcAnalysis plc(spec(), dist());
  SlcAnalysis slc(spec(), dist());
  double last_plc = 0;
  double last_slc = 0;
  for (std::size_t m = 1; m <= 2 * spec().total(); m += std::max<std::size_t>(1, spec().total() / 6)) {
    const double e_plc = plc.expected_levels(m);
    const double e_slc = slc.expected_levels(m);
    ASSERT_GE(e_plc, last_plc - 1e-9);
    ASSERT_GE(e_slc, last_slc - 1e-9);
    last_plc = e_plc;
    last_slc = e_slc;
  }
}

TEST_P(AnalysisProperties, PlcDominatesSlcEverywhere) {
  PlcAnalysis plc(spec(), dist());
  SlcAnalysis slc(spec(), dist());
  for (std::size_t m : m_grid()) {
    ASSERT_GE(plc.expected_levels(m) + 1e-9, slc.expected_levels(m)) << "M=" << m;
  }
}

TEST_P(AnalysisProperties, PrefixProbabilitiesAgreeWithPmfTails) {
  PlcAnalysis plc(spec(), dist());
  for (std::size_t m : {spec().total(), 2 * spec().total()}) {
    const auto pmf = plc.level_pmf(m);
    for (std::size_t k = 1; k <= spec().levels(); ++k) {
      double tail = 0;
      for (std::size_t j = k; j < pmf.size(); ++j) tail += pmf[j];
      ASSERT_NEAR(plc.prob_at_least(k, m), std::min(tail, 1.0), 1e-7)
          << "M=" << m << " k=" << k;
    }
  }
}

TEST_P(AnalysisProperties, ExactMatchesCountModelMonteCarlo) {
  PlcAnalysis plc(spec(), dist());
  const std::size_t m = spec().total();
  const auto mc = mc_expected_levels(Scheme::kPlc, spec(), dist(), m, 20000, 17);
  ASSERT_NEAR(plc.expected_levels(m), mc.mean_levels, 4 * mc.ci95_levels + 0.02);
}

TEST_P(AnalysisProperties, SaturationReachesAllLevels) {
  // With every level positively weighted, enough blocks decode everything.
  bool all_positive = true;
  for (double p : GetParam().dist) all_positive = all_positive && p > 0;
  if (!all_positive) GTEST_SKIP() << "zero-weight level never decodes";
  PlcAnalysis plc(spec(), dist());
  ASSERT_NEAR(plc.expected_levels(20 * spec().total()),
              static_cast<double>(spec().levels()), 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AnalysisProperties,
    ::testing::Values(
        AnalysisCase{"uniform3", {4, 6, 10}, {1. / 3, 1. / 3, 1. / 3}},
        AnalysisCase{"two_levels", {5, 15}, {0.5, 0.5}},
        AnalysisCase{"one_level", {10}, {1.0}},
        AnalysisCase{"front_heavy", {4, 6, 10}, {0.7, 0.2, 0.1}},
        AnalysisCase{"tail_heavy", {4, 6, 10}, {0.1, 0.2, 0.7}},
        AnalysisCase{"zero_middle", {3, 3, 3}, {0.5, 0.0, 0.5}},
        AnalysisCase{"many_levels", {2, 2, 2, 2, 2, 2, 2, 2},
                     {.125, .125, .125, .125, .125, .125, .125, .125}},
        AnalysisCase{"uneven", {1, 9, 2, 8}, {0.3, 0.2, 0.3, 0.2}}),
    [](const ::testing::TestParamInfo<AnalysisCase>& info) { return info.param.name; });

}  // namespace
}  // namespace prlc::analysis
