#include "analysis/poisson_dp.h"

#include <gtest/gtest.h>

#include <cmath>

namespace prlc::analysis {
namespace {

TEST(SupportPoly, Delta0) {
  const auto d = SupportPoly::delta0();
  EXPECT_FALSE(d.is_zero());
  EXPECT_EQ(d.lo(), 0u);
  EXPECT_DOUBLE_EQ(d.at(0), 1.0);
  EXPECT_DOUBLE_EQ(d.at(1), 0.0);
  EXPECT_DOUBLE_EQ(d.sum(), 1.0);
}

TEST(SupportPoly, PoissonPmfSums) {
  LogFactorialTable lfact;
  for (double mu : {0.0, 0.3, 5.0, 100.0}) {
    const auto p = SupportPoly::poisson(mu, 500, lfact);
    EXPECT_NEAR(p.sum(), 1.0, 1e-9) << "mu=" << mu;
  }
}

TEST(SupportPoly, PoissonTrimsTails) {
  LogFactorialTable lfact;
  const auto p = SupportPoly::poisson(1000.0, 2000, lfact);
  // The pmf around 0 underflows; the window must not start at 0.
  EXPECT_GT(p.lo(), 100u);
  EXPECT_LT(p.lo(), 1000u);
  EXPECT_NEAR(p.sum(), 1.0, 1e-9);
  // Mode value ~ 1/sqrt(2 pi mu).
  EXPECT_NEAR(p.at(1000), 1.0 / std::sqrt(2 * M_PI * 1000.0), 1e-5);
}

TEST(SupportPoly, ZeroBelowMask) {
  LogFactorialTable lfact;
  auto p = SupportPoly::poisson(4.0, 100, lfact);
  double tail = 0;
  for (std::size_t k = 6; k <= 100; ++k) tail += p.at(k);
  p.zero_below(6);
  EXPECT_DOUBLE_EQ(p.at(5), 0.0);
  EXPECT_NEAR(p.sum(), tail, 1e-12);
  p.zero_below(1000);
  EXPECT_TRUE(p.is_zero());
}

TEST(SupportPoly, ZeroAboveMask) {
  LogFactorialTable lfact;
  auto p = SupportPoly::poisson(4.0, 100, lfact);
  double head = 0;
  for (std::size_t k = 0; k <= 3; ++k) head += p.at(k);
  p.zero_above(3);
  EXPECT_DOUBLE_EQ(p.at(4), 0.0);
  EXPECT_NEAR(p.sum(), head, 1e-12);
}

TEST(SupportPoly, ZeroAboveBelowLoEmpties) {
  LogFactorialTable lfact;
  // Poisson(1000) underflows near zero, so the trimmed window starts well
  // above degree 2; masking to <= 1 must empty the polynomial.
  auto p = SupportPoly::poisson(1000.0, 2000, lfact);
  ASSERT_GT(p.lo(), 2u);
  p.zero_above(1);
  EXPECT_TRUE(p.is_zero());
}

TEST(SupportPoly, ConvolutionIsPoissonAdditivity) {
  // Pois(a) * Pois(b) = Pois(a+b).
  LogFactorialTable lfact;
  const auto a = SupportPoly::poisson(3.0, 300, lfact);
  const auto b = SupportPoly::poisson(7.0, 300, lfact);
  const auto ab = SupportPoly::convolve(a, b, 300);
  const auto direct = SupportPoly::poisson(10.0, 300, lfact);
  for (std::size_t k = 0; k <= 60; ++k) {
    EXPECT_NEAR(ab.at(k), direct.at(k), 1e-10) << k;
  }
}

TEST(SupportPoly, ConvolveRespectsCap) {
  LogFactorialTable lfact;
  const auto a = SupportPoly::poisson(5.0, 100, lfact);
  const auto b = SupportPoly::poisson(5.0, 100, lfact);
  const auto ab = SupportPoly::convolve(a, b, 12);
  EXPECT_LE(ab.hi(), 13u);
}

TEST(SupportPoly, ConvolveWithZeroIsZero) {
  LogFactorialTable lfact;
  const auto a = SupportPoly::poisson(5.0, 100, lfact);
  const SupportPoly zero;
  EXPECT_TRUE(SupportPoly::convolve(a, zero, 100).is_zero());
  EXPECT_TRUE(SupportPoly::convolve(zero, a, 100).is_zero());
}

TEST(SupportPoly, ConvolveAtMatchesFullConvolution) {
  LogFactorialTable lfact;
  const auto a = SupportPoly::poisson(4.0, 200, lfact);
  const auto b = SupportPoly::poisson(9.0, 200, lfact);
  const auto full = SupportPoly::convolve(a, b, 200);
  for (std::size_t target : {0u, 5u, 13u, 40u, 200u}) {
    EXPECT_NEAR(SupportPoly::convolve_at(a, b, target), full.at(target), 1e-12) << target;
  }
}

TEST(Normalizer, MatchesPoissonIdentity) {
  // C(M) = 1 / Pr(Pois(M) = M).
  LogFactorialTable lfact;
  for (std::size_t m : {1u, 10u, 100u, 1000u}) {
    const auto p = SupportPoly::poisson(static_cast<double>(m), m + 1, lfact);
    EXPECT_NEAR(std::exp(log_multinomial_normalizer(m, lfact)) * p.at(m), 1.0, 1e-8)
        << "M=" << m;
  }
  EXPECT_DOUBLE_EQ(log_multinomial_normalizer(0, lfact), 0.0);
}

TEST(Normalizer, MultinomialSanityTwoLevels) {
  // Pr(D1 = k) for D ~ Multinomial(M, {p, 1-p}) must equal Binomial pmf
  // when computed through the Poissonization identity.
  LogFactorialTable lfact;
  const std::size_t M = 20;
  const double p = 0.3;
  const auto a = SupportPoly::poisson(M * p, M, lfact);
  const auto b = SupportPoly::poisson(M * (1 - p), M, lfact);
  const double c = std::exp(log_multinomial_normalizer(M, lfact));
  for (std::size_t k = 0; k <= M; ++k) {
    // Mask level 1 to exactly k.
    auto ak = a;
    ak.zero_below(k);
    ak.zero_above(k);
    const double prob = c * SupportPoly::convolve_at(ak, b, M);
    EXPECT_NEAR(prob, lfact.binomial_pmf(M, p, k), 1e-10) << k;
  }
}

}  // namespace
}  // namespace prlc::analysis
