#include "analysis/slc_analysis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "analysis/count_model.h"
#include "util/logprob.h"

namespace prlc::analysis {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;

/// Brute-force Pr(X >= k) by enumerating all multinomial count vectors
/// (tiny instances only).
double brute_force_at_least(const PrioritySpec& spec, const PriorityDistribution& dist,
                            std::size_t k, std::size_t M) {
  LogFactorialTable lfact;
  const std::size_t n = spec.levels();
  std::vector<std::size_t> counts(n, 0);
  double total = 0;
  // Odometer over compositions of M into n parts.
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t level,
                                                          std::size_t remaining) {
    if (level + 1 == n) {
      counts[level] = remaining;
      if (slc_levels_from_counts(spec, counts) >= k) {
        double logp = lfact(M);
        for (std::size_t i = 0; i < n; ++i) {
          if (counts[i] > 0 && dist.at(i) == 0.0) return;
          logp -= lfact(counts[i]);
          if (dist.at(i) > 0) logp += static_cast<double>(counts[i]) * std::log(dist.at(i));
        }
        total += std::exp(logp);
      }
      return;
    }
    for (std::size_t c = 0; c <= remaining; ++c) {
      counts[level] = c;
      rec(level + 1, remaining - c);
    }
  };
  rec(0, M);
  return total;
}

TEST(SlcAnalysis, MatchesBruteForceSmall) {
  const PrioritySpec spec({2, 3});
  const PriorityDistribution dist({0.4, 0.6});
  SlcAnalysis slc(spec, dist);
  for (std::size_t M : {1u, 3u, 5u, 9u, 14u}) {
    for (std::size_t k : {1u, 2u}) {
      EXPECT_NEAR(slc.prob_at_least(k, M), brute_force_at_least(spec, dist, k, M), 1e-9)
          << "M=" << M << " k=" << k;
    }
  }
}

TEST(SlcAnalysis, MatchesBruteForceThreeLevels) {
  const PrioritySpec spec({1, 2, 2});
  const PriorityDistribution dist({0.25, 0.3, 0.45});
  SlcAnalysis slc(spec, dist);
  for (std::size_t M : {2u, 6u, 12u}) {
    for (std::size_t k : {1u, 2u, 3u}) {
      EXPECT_NEAR(slc.prob_at_least(k, M), brute_force_at_least(spec, dist, k, M), 1e-9)
          << "M=" << M << " k=" << k;
    }
  }
}

TEST(SlcAnalysis, AgreesWithMonteCarlo) {
  const PrioritySpec spec({10, 20, 30});
  const PriorityDistribution dist({0.3, 0.3, 0.4});
  SlcAnalysis slc(spec, dist);
  for (std::size_t M : {30u, 60u, 120u}) {
    const auto mc =
        mc_expected_levels(codes::Scheme::kSlc, spec, dist, M, 40000, 7);
    EXPECT_NEAR(slc.expected_levels(M), mc.mean_levels, 4 * mc.ci95_levels + 0.01)
        << "M=" << M;
  }
}

TEST(SlcAnalysis, PrefixProbabilitiesMonotoneInK) {
  const PrioritySpec spec({5, 5, 5, 5});
  SlcAnalysis slc(spec, PriorityDistribution::uniform(4));
  const auto probs = slc.prefix_probabilities(30);
  for (std::size_t i = 1; i < probs.size(); ++i) EXPECT_LE(probs[i], probs[i - 1] + 1e-12);
  for (double p : probs) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(SlcAnalysis, MonotoneInBlocks) {
  const PrioritySpec spec({5, 10});
  SlcAnalysis slc(spec, PriorityDistribution::uniform(2));
  double last = 0;
  for (std::size_t M = 1; M <= 60; M += 5) {
    const double e = slc.expected_levels(M);
    EXPECT_GE(e, last - 1e-9);
    last = e;
  }
}

TEST(SlcAnalysis, EdgeCases) {
  const PrioritySpec spec({3, 4});
  SlcAnalysis slc(spec, PriorityDistribution::uniform(2));
  EXPECT_DOUBLE_EQ(slc.prob_at_least(0, 5), 1.0);
  EXPECT_DOUBLE_EQ(slc.expected_levels(0), 0.0);
  // Fewer blocks than the first level can never decode anything.
  EXPECT_DOUBLE_EQ(slc.expected_levels(2), 0.0);
  EXPECT_THROW(slc.prob_at_least(3, 5), PreconditionError);
}

TEST(SlcAnalysis, ZeroWeightLevelBlocksEverythingBehindIt) {
  const PrioritySpec spec({2, 2, 2});
  SlcAnalysis slc(spec, PriorityDistribution({0.0, 0.5, 0.5}));
  // Level 0 gets no coded blocks: Pr(X >= 1) = 0 at any M.
  EXPECT_DOUBLE_EQ(slc.prob_at_least(1, 100), 0.0);
  EXPECT_DOUBLE_EQ(slc.expected_levels(100), 0.0);
}

TEST(SlcAnalysis, ProbDecodeAllApproachesOne) {
  const PrioritySpec spec({5, 5});
  SlcAnalysis slc(spec, PriorityDistribution::uniform(2));
  EXPECT_LT(slc.prob_decode_all(10), 0.5);
  EXPECT_GT(slc.prob_decode_all(60), 0.99);
}

TEST(SlcAnalysis, SingleLevelIsRlcThreshold) {
  // One level of size 10 with all mass: decodes iff M >= 10 (idealized).
  const PrioritySpec spec({10});
  SlcAnalysis slc(spec, PriorityDistribution::uniform(1));
  EXPECT_NEAR(slc.expected_levels(9), 0.0, 1e-12);
  EXPECT_NEAR(slc.expected_levels(10), 1.0, 1e-9);
  EXPECT_NEAR(slc.expected_levels(25), 1.0, 1e-9);
}

TEST(SlcAnalysis, RejectsMismatchedDistribution) {
  EXPECT_THROW(SlcAnalysis(PrioritySpec({1, 2}), PriorityDistribution::uniform(3)),
               PreconditionError);
}

}  // namespace
}  // namespace prlc::analysis
