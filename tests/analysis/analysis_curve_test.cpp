#include "analysis/analysis_curve.h"

#include <gtest/gtest.h>

#include "analysis/plc_analysis.h"
#include "util/check.h"

namespace prlc::analysis {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

TEST(AnalysisCurve, RlcStepFunction) {
  const auto spec = PrioritySpec::uniform(3, 10);  // N = 30
  const auto dist = PriorityDistribution::uniform(3);
  const std::vector<std::size_t> ms = {10, 29, 30, 50};
  const auto curve = analysis_curve(Scheme::kRlc, spec, dist, ms);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[0].expected_levels, 0.0);
  EXPECT_DOUBLE_EQ(curve[1].expected_levels, 0.0);
  EXPECT_DOUBLE_EQ(curve[2].expected_levels, 3.0);
  EXPECT_DOUBLE_EQ(curve[3].expected_levels, 3.0);
  for (const auto& p : curve) EXPECT_TRUE(p.exact);
}

TEST(AnalysisCurve, PlcSmallUsesExactBackend) {
  const auto spec = PrioritySpec::uniform(4, 5);
  const auto dist = PriorityDistribution::uniform(4);
  const std::vector<std::size_t> ms = {5, 15, 25};
  const auto curve = analysis_curve(Scheme::kPlc, spec, dist, ms);
  PlcAnalysis exact(spec, dist);
  for (std::size_t i = 0; i < ms.size(); ++i) {
    EXPECT_TRUE(curve[i].exact);
    EXPECT_NEAR(curve[i].expected_levels, exact.expected_levels(ms[i]), 1e-12);
  }
}

TEST(AnalysisCurve, PlcManyLevelsFallsBackToMonteCarlo) {
  const auto spec = PrioritySpec::uniform(20, 2);
  const auto dist = PriorityDistribution::uniform(20);
  const std::vector<std::size_t> ms = {40, 80};
  AnalysisCurveOptions opt;
  opt.exact_level_limit = 10;
  opt.mc_trials = 3000;
  const auto curve = analysis_curve(Scheme::kPlc, spec, dist, ms, opt);
  for (const auto& p : curve) EXPECT_FALSE(p.exact);
  EXPECT_GE(curve[1].expected_levels, curve[0].expected_levels);
}

TEST(AnalysisCurve, SlcAlwaysExact) {
  const auto spec = PrioritySpec::uniform(30, 2);
  const auto dist = PriorityDistribution::uniform(30);
  const std::vector<std::size_t> ms = {30, 90, 200};
  const auto curve = analysis_curve(Scheme::kSlc, spec, dist, ms);
  for (const auto& p : curve) EXPECT_TRUE(p.exact);
  EXPECT_LE(curve[0].expected_levels, curve[2].expected_levels);
}

TEST(AnalysisCurve, RejectsEmptyGrid) {
  const auto spec = PrioritySpec::uniform(2, 2);
  const auto dist = PriorityDistribution::uniform(2);
  const std::vector<std::size_t> empty;
  EXPECT_THROW(analysis_curve(Scheme::kPlc, spec, dist, empty), PreconditionError);
}

}  // namespace
}  // namespace prlc::analysis
