#include "analysis/plc_analysis.h"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "analysis/count_model.h"
#include "analysis/slc_analysis.h"
#include "util/logprob.h"

namespace prlc::analysis {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;

/// Brute-force Pr(X = k) by enumerating all multinomial count vectors and
/// applying the Theorem-1 count model (tiny instances only).
double brute_force_exactly(const PrioritySpec& spec, const PriorityDistribution& dist,
                           std::size_t k, std::size_t M) {
  LogFactorialTable lfact;
  const std::size_t n = spec.levels();
  std::vector<std::size_t> counts(n, 0);
  double total = 0;
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t level,
                                                          std::size_t remaining) {
    if (level + 1 == n) {
      counts[level] = remaining;
      if (plc_levels_from_counts(spec, counts) == k) {
        double logp = lfact(M);
        for (std::size_t i = 0; i < n; ++i) {
          if (counts[i] > 0 && dist.at(i) == 0.0) return;
          logp -= lfact(counts[i]);
          if (dist.at(i) > 0) logp += static_cast<double>(counts[i]) * std::log(dist.at(i));
        }
        total += std::exp(logp);
      }
      return;
    }
    for (std::size_t c = 0; c <= remaining; ++c) {
      counts[level] = c;
      rec(level + 1, remaining - c);
    }
  };
  rec(0, M);
  return total;
}

TEST(PlcAnalysis, MatchesBruteForceTwoLevels) {
  const PrioritySpec spec({2, 3});
  const PriorityDistribution dist({0.35, 0.65});
  PlcAnalysis plc(spec, dist);
  for (std::size_t M : {1u, 2u, 4u, 6u, 10u}) {
    for (std::size_t k : {0u, 1u, 2u}) {
      EXPECT_NEAR(plc.prob_exactly(k, M), brute_force_exactly(spec, dist, k, M), 1e-9)
          << "M=" << M << " k=" << k;
    }
  }
}

TEST(PlcAnalysis, MatchesBruteForceThreeLevels) {
  const PrioritySpec spec({1, 2, 3});
  const PriorityDistribution dist({0.2, 0.35, 0.45});
  PlcAnalysis plc(spec, dist);
  for (std::size_t M : {1u, 3u, 6u, 9u, 12u}) {
    for (std::size_t k : {0u, 1u, 2u, 3u}) {
      EXPECT_NEAR(plc.prob_exactly(k, M), brute_force_exactly(spec, dist, k, M), 1e-9)
          << "M=" << M << " k=" << k;
    }
  }
}

TEST(PlcAnalysis, PmfSumsToOne) {
  const PrioritySpec spec({3, 5, 7, 9});
  const PriorityDistribution dist({0.1, 0.2, 0.3, 0.4});
  PlcAnalysis plc(spec, dist);
  for (std::size_t M : {0u, 5u, 12u, 24u, 48u}) {
    const auto pmf = plc.level_pmf(M);
    double sum = 0;
    for (double p : pmf) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-8) << "M=" << M;
  }
}

TEST(PlcAnalysis, AgreesWithMonteCarlo) {
  const PrioritySpec spec({10, 20, 30});
  const PriorityDistribution dist({0.3, 0.3, 0.4});
  PlcAnalysis plc(spec, dist);
  for (std::size_t M : {30u, 60u, 90u, 150u}) {
    const auto mc = mc_expected_levels(codes::Scheme::kPlc, spec, dist, M, 40000, 11);
    EXPECT_NEAR(plc.expected_levels(M), mc.mean_levels, 4 * mc.ci95_levels + 0.01)
        << "M=" << M;
  }
}

TEST(PlcAnalysis, DominatesSlc) {
  // Theorem 1 of the tech report: PLC needs no more blocks than SLC for
  // the same recovery, so E_PLC(X_M) >= E_SLC(X_M) everywhere.
  const PrioritySpec spec({5, 10, 15});
  const PriorityDistribution dist = PriorityDistribution::uniform(3);
  PlcAnalysis plc(spec, dist);
  SlcAnalysis slc(spec, dist);
  for (std::size_t M = 5; M <= 90; M += 5) {
    EXPECT_GE(plc.expected_levels(M) + 1e-9, slc.expected_levels(M)) << "M=" << M;
  }
}

TEST(PlcAnalysis, MonotoneInBlocks) {
  const PrioritySpec spec({4, 8});
  PlcAnalysis plc(spec, PriorityDistribution::uniform(2));
  double last = 0;
  for (std::size_t M = 1; M <= 40; M += 3) {
    const double e = plc.expected_levels(M);
    EXPECT_GE(e, last - 1e-9);
    last = e;
  }
}

TEST(PlcAnalysis, EdgeCases) {
  const PrioritySpec spec({2, 4});
  PlcAnalysis plc(spec, PriorityDistribution::uniform(2));
  EXPECT_DOUBLE_EQ(plc.prob_exactly(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(plc.prob_exactly(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(plc.prob_exactly(2, 5), 0.0);  // b_2 = 6 > 5
  EXPECT_DOUBLE_EQ(plc.prob_at_least(0, 3), 1.0);
  EXPECT_THROW(plc.prob_exactly(3, 5), PreconditionError);
}

TEST(PlcAnalysis, LastLevelOnlyDistributionStillDecodes) {
  // All coded blocks at the last level: PLC mixes everything, so decoding
  // is all-or-nothing at M >= N, like RLC.
  const PrioritySpec spec({2, 3});
  PlcAnalysis plc(spec, PriorityDistribution({0.0, 1.0}));
  EXPECT_NEAR(plc.expected_levels(4), 0.0, 1e-9);
  EXPECT_NEAR(plc.expected_levels(5), 2.0, 1e-9);
}

TEST(PlcAnalysis, FirstLevelOnlyDistributionCapsAtOneLevel) {
  const PrioritySpec spec({2, 3});
  PlcAnalysis plc(spec, PriorityDistribution({1.0, 0.0}));
  EXPECT_NEAR(plc.expected_levels(1), 0.0, 1e-9);
  EXPECT_NEAR(plc.expected_levels(2), 1.0, 1e-9);
  EXPECT_NEAR(plc.expected_levels(50), 1.0, 1e-9);
  EXPECT_NEAR(plc.prob_decode_all(50), 0.0, 1e-12);
}

TEST(PlcAnalysis, ProbDecodeAllGrowsWithBlocks) {
  const PrioritySpec spec({3, 3});
  PlcAnalysis plc(spec, PriorityDistribution::uniform(2));
  EXPECT_LT(plc.prob_decode_all(6), plc.prob_decode_all(12));
  EXPECT_GT(plc.prob_decode_all(30), 0.95);
}

}  // namespace
}  // namespace prlc::analysis
