#include "analysis/count_model.h"

#include <gtest/gtest.h>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "gf/gf256.h"
#include "util/check.h"

namespace prlc::analysis {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;
using F = gf::Gf256;

TEST(CountModel, SlcPrefixRule) {
  const PrioritySpec spec({2, 3, 4});
  using V = std::vector<std::size_t>;
  EXPECT_EQ(slc_levels_from_counts(spec, V{0, 0, 0}), 0u);
  EXPECT_EQ(slc_levels_from_counts(spec, V{2, 0, 0}), 1u);
  EXPECT_EQ(slc_levels_from_counts(spec, V{1, 3, 4}), 0u);  // gap at level 0
  EXPECT_EQ(slc_levels_from_counts(spec, V{2, 3, 3}), 2u);
  EXPECT_EQ(slc_levels_from_counts(spec, V{5, 9, 4}), 3u);
}

TEST(CountModel, PlcTheorem1Cases) {
  const PrioritySpec spec({2, 3, 4});  // b = 2, 5, 9
  using V = std::vector<std::size_t>;
  // Exactly level 1: two level-0 blocks.
  EXPECT_EQ(plc_levels_from_counts(spec, V{2, 0, 0}), 1u);
  // One level-0 block alone decodes nothing (needs b_1 = 2).
  EXPECT_EQ(plc_levels_from_counts(spec, V{1, 0, 0}), 0u);
  // D = (1,4,0): D_{1,2} = 5 >= 5, D_{2,2} = 4 >= 3 -> two levels.
  EXPECT_EQ(plc_levels_from_counts(spec, V{1, 4, 0}), 2u);
  // D = (0,5,0): D_{2,2} = 5 >= 3 but D_{1,2} = 5 >= 5 -> decodes both!
  EXPECT_EQ(plc_levels_from_counts(spec, V{0, 5, 0}), 2u);
  // D = (0,4,0): 4 < b_2 = 5 -> nothing.
  EXPECT_EQ(plc_levels_from_counts(spec, V{0, 4, 0}), 0u);
  // Level-2 blocks only: 9 of them decode everything.
  EXPECT_EQ(plc_levels_from_counts(spec, V{0, 0, 9}), 3u);
  EXPECT_EQ(plc_levels_from_counts(spec, V{0, 0, 8}), 0u);
  // Two-stage greedy: (2,0,7): level 0 decodes; then 7 level-2 blocks
  // must cover b_3 - b_1 = 7 unknowns -> all three levels.
  EXPECT_EQ(plc_levels_from_counts(spec, V{2, 0, 7}), 3u);
  // (2,0,6): level 0 only; 6 < 7 remaining unknowns.
  EXPECT_EQ(plc_levels_from_counts(spec, V{2, 0, 6}), 1u);
}

TEST(CountModel, RlcAllOrNothing) {
  const PrioritySpec spec({2, 3, 4});
  using V = std::vector<std::size_t>;
  EXPECT_EQ(rlc_levels_from_counts(spec, V{3, 3, 2}), 0u);
  EXPECT_EQ(rlc_levels_from_counts(spec, V{3, 3, 3}), 3u);
}

TEST(CountModel, DispatchMatchesSpecificFunctions) {
  const PrioritySpec spec({1, 2});
  const std::vector<std::size_t> counts = {1, 2};
  EXPECT_EQ(levels_from_counts(Scheme::kSlc, spec, counts),
            slc_levels_from_counts(spec, counts));
  EXPECT_EQ(levels_from_counts(Scheme::kPlc, spec, counts),
            plc_levels_from_counts(spec, counts));
  EXPECT_EQ(levels_from_counts(Scheme::kRlc, spec, counts),
            rlc_levels_from_counts(spec, counts));
}

TEST(CountModel, WidthChecked) {
  const PrioritySpec spec({1, 2});
  const std::vector<std::size_t> wrong = {1, 2, 3};
  EXPECT_THROW(slc_levels_from_counts(spec, wrong), PreconditionError);
  EXPECT_THROW(plc_levels_from_counts(spec, wrong), PreconditionError);
}

/// Ground truth: run the real GF(2^8) machinery on blocks with the given
/// per-level counts and report decoded levels.
std::size_t gf_levels(Scheme scheme, const PrioritySpec& spec,
                      const std::vector<std::size_t>& counts, Rng& rng) {
  const codes::PriorityEncoder<F> enc(scheme, spec);
  codes::PriorityDecoder<F> dec(scheme, spec);
  for (std::size_t level = 0; level < counts.size(); ++level) {
    for (std::size_t i = 0; i < counts[level]; ++i) dec.add(enc.encode(level, rng));
  }
  return dec.decoded_levels();
}

TEST(CountModel, AgreesWithGaloisFieldSimulationPlc) {
  // The count model must match real decoding except for O(1/256) rank
  // defects; across 300 random count vectors a handful of mismatches is
  // already generous.
  Rng rng(131);
  const PrioritySpec spec({3, 4, 5, 8});
  std::size_t mismatches = 0;
  for (int t = 0; t < 300; ++t) {
    std::vector<std::size_t> counts(4);
    for (auto& c : counts) c = rng.uniform(9);
    const std::size_t predicted = plc_levels_from_counts(spec, counts);
    const std::size_t actual = gf_levels(Scheme::kPlc, spec, counts, rng);
    EXPECT_LE(actual, predicted);  // field defects only lose information
    if (predicted != actual) ++mismatches;
  }
  EXPECT_LE(mismatches, 12u);
}

TEST(CountModel, AgreesWithGaloisFieldSimulationSlc) {
  Rng rng(132);
  const PrioritySpec spec({3, 4, 5});
  std::size_t mismatches = 0;
  for (int t = 0; t < 300; ++t) {
    std::vector<std::size_t> counts(3);
    for (auto& c : counts) c = rng.uniform(8);
    const std::size_t predicted = slc_levels_from_counts(spec, counts);
    const std::size_t actual = gf_levels(Scheme::kSlc, spec, counts, rng);
    EXPECT_LE(actual, predicted);
    if (predicted != actual) ++mismatches;
  }
  EXPECT_LE(mismatches, 12u);
}

TEST(CountModel, McCurveMatchesDirectAverage) {
  const PrioritySpec spec({2, 3});
  const auto dist = PriorityDistribution::uniform(2);
  const std::vector<std::size_t> ms = {4, 8, 16};
  const auto curve = mc_count_curve(Scheme::kPlc, spec, dist, ms, 5000, 9);
  ASSERT_EQ(curve.size(), 3u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].mean_levels, curve[i - 1].mean_levels);
  }
  // With 16 blocks for 5 unknowns decoding both levels is near-certain.
  EXPECT_GT(curve[2].mean_levels, 1.9);
  EXPECT_LE(curve[2].mean_levels, 2.0);
}

TEST(CountModel, McExpectedLevelsDeterministicPerSeed) {
  const PrioritySpec spec({2, 3});
  const auto dist = PriorityDistribution::uniform(2);
  const auto a = mc_expected_levels(Scheme::kSlc, spec, dist, 10, 2000, 5);
  const auto b = mc_expected_levels(Scheme::kSlc, spec, dist, 10, 2000, 5);
  EXPECT_DOUBLE_EQ(a.mean_levels, b.mean_levels);
}

TEST(CountModel, McValidatesArguments) {
  const PrioritySpec spec({2, 3});
  const auto dist = PriorityDistribution::uniform(2);
  const std::vector<std::size_t> empty;
  EXPECT_THROW(mc_count_curve(Scheme::kPlc, spec, dist, empty, 10, 1), PreconditionError);
  const std::vector<std::size_t> unsorted = {5, 5};
  EXPECT_THROW(mc_count_curve(Scheme::kPlc, spec, dist, unsorted, 10, 1), PreconditionError);
  const std::vector<std::size_t> ok = {5};
  EXPECT_THROW(mc_count_curve(Scheme::kPlc, spec, dist, ok, 0, 1), PreconditionError);
}

}  // namespace
}  // namespace prlc::analysis
