// Validates the discrete-event simulator against the closed-form
// no-repair persistency model (analysis/persistency_model.h): with
// exponential node lifetimes and no repair, every block independently
// survives to t with p(t) = exp(-lambda t), so E[decoded levels] has a
// closed form (SLC, replication) or a cheap count-model Monte Carlo
// (PLC). The simulator, run with RepairPolicy::kNone in the M << W
// regime the model assumes, must land on the same curve.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/persistency_model.h"
#include "sim/cluster_sim.h"

namespace prlc::sim {
namespace {

constexpr double kLambda = 0.05;
constexpr double kTolerance = 0.15;  // levels; sim MC noise + host collisions

ClusterParams no_repair_cluster(codes::Scheme scheme) {
  ClusterParams params;
  params.nodes = 5000;  // M = 96 << W: the model's independence regime
  params.max_time = 20.0;
  params.replacement_delay = 0.5;
  params.sample_times = {5.0, 10.0, 15.0, 20.0};
  params.experiment.trials = 200;
  params.experiment.root_seed = 1701;
  params.experiment.level_sizes = {8, 16, 24};
  params.experiment.scheme = scheme;
  params.experiment.failure.kind = FailureModelConfig::Kind::kPoisson;
  params.experiment.failure.churn_rate = kLambda;
  params.repair.policy = RepairPolicy::kNone;
  return params;
}

TEST(AnalyticValidation, SlcCurveMatchesClosedForm) {
  const ClusterParams params = no_repair_cluster(codes::Scheme::kSlc);
  const ClusterPoint point = run_cluster_lifetime(params);
  const auto spec = params.experiment.spec();
  const std::vector<std::size_t> level_blocks = {32, 32, 32};  // uniform apportionment
  for (std::size_t s = 0; s < params.sample_times.size(); ++s) {
    const double p = analysis::block_survival(kLambda, params.sample_times[s]);
    const double expected = analysis::slc_expected_levels(spec, level_blocks, p);
    EXPECT_NEAR(point.mean_levels_at[s], expected, kTolerance)
        << "t = " << params.sample_times[s] << ", survival = " << p;
  }
}

TEST(AnalyticValidation, PlcCurveMatchesCountModelMonteCarlo) {
  const ClusterParams params = no_repair_cluster(codes::Scheme::kPlc);
  const ClusterPoint point = run_cluster_lifetime(params);
  const auto spec = params.experiment.spec();
  const std::vector<std::size_t> level_blocks = {32, 32, 32};
  for (std::size_t s = 0; s < params.sample_times.size(); ++s) {
    const double p = analysis::block_survival(kLambda, params.sample_times[s]);
    const double expected = analysis::mc_expected_levels_at_survival(
        codes::Scheme::kPlc, spec, level_blocks, p, 20000, 8888);
    EXPECT_NEAR(point.mean_levels_at[s], expected, kTolerance)
        << "t = " << params.sample_times[s] << ", survival = " << p;
  }
}

TEST(AnalyticValidation, ReplicationCurveMatchesClosedForm) {
  ClusterParams params = no_repair_cluster(codes::Scheme::kPlc);
  params.replication = true;
  params.replication_factor = 3;
  const ClusterPoint point = run_cluster_lifetime(params);
  const auto spec = params.experiment.spec();
  for (std::size_t s = 0; s < params.sample_times.size(); ++s) {
    const double p = analysis::block_survival(kLambda, params.sample_times[s]);
    const double expected = analysis::replication_expected_levels(spec, 3, p);
    EXPECT_NEAR(point.mean_levels_at[s], expected, kTolerance)
        << "t = " << params.sample_times[s] << ", survival = " << p;
  }
}

TEST(AnalyticValidation, ClosedFormsAgreeWithTheirOwnMonteCarlo) {
  // Cross-check the closed forms against the count-model MC at a few
  // survival probabilities — independent of the simulator entirely.
  const codes::PrioritySpec spec({8, 16, 24});
  const std::vector<std::size_t> level_blocks = {32, 32, 32};
  for (const double p : {0.9, 0.6, 0.4, 0.25}) {
    const double closed = analysis::slc_expected_levels(spec, level_blocks, p);
    const double mc = analysis::mc_expected_levels_at_survival(
        codes::Scheme::kSlc, spec, level_blocks, p, 40000, 31337);
    EXPECT_NEAR(closed, mc, 0.05) << "survival = " << p;
  }
}

TEST(AnalyticValidation, BlockSurvivalIsExponentialDecay) {
  EXPECT_DOUBLE_EQ(analysis::block_survival(0.1, 0.0), 1.0);
  EXPECT_NEAR(analysis::block_survival(0.1, 10.0), std::exp(-1.0), 1e-12);
  EXPECT_THROW(analysis::block_survival(-0.1, 1.0), PreconditionError);
}

}  // namespace
}  // namespace prlc::sim
