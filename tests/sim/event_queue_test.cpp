#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace prlc::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue<int> q;
  q.push(3.0, 30);
  q.push(1.0, 10);
  q.push(2.0, 20);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.top().time, 1.0);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TieBreaksByInsertionSequence) {
  // Simultaneous events (every wave, lockstep repair completions) must pop
  // in push order — the tie-break that makes the order total.
  EventQueue<int> q;
  for (int i = 0; i < 64; ++i) q.push(7.5, i);
  for (int i = 0; i < 64; ++i) {
    const auto entry = q.pop();
    EXPECT_EQ(entry.payload, i);
    EXPECT_EQ(entry.seq, static_cast<std::uint64_t>(i));
  }
}

TEST(EventQueue, TotalOrderMatchesStableSort) {
  // Pop order is exactly the stable sort by time of the push sequence:
  // (time, seq) with seq = insertion index IS stability.
  Rng rng(123);
  EventQueue<int> q;
  std::vector<std::pair<double, int>> pushed;
  for (int i = 0; i < 500; ++i) {
    const double t = static_cast<double>(rng.uniform(20));  // many ties
    q.push(t, i);
    pushed.emplace_back(t, i);
  }
  std::stable_sort(pushed.begin(), pushed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  for (const auto& [t, id] : pushed) {
    const auto entry = q.pop();
    EXPECT_DOUBLE_EQ(entry.time, t);
    EXPECT_EQ(entry.payload, id);
  }
}

TEST(EventQueue, MaxSizeSeenAndClearKeepsSequenceCounting) {
  EventQueue<int> q;
  q.push(1.0, 1);
  q.push(2.0, 2);
  q.push(3.0, 3);
  (void)q.pop();
  EXPECT_EQ(q.max_size_seen(), 3u);
  q.clear();
  EXPECT_TRUE(q.empty());
  q.push(0.5, 4);
  // The sequence counter survives clear(): new entries order after
  // everything that ever existed.
  EXPECT_GE(q.top().seq, 3u);
  EXPECT_EQ(q.max_size_seen(), 3u);
}

TEST(EventQueue, EmptyAccessThrows) {
  EventQueue<int> q;
  EXPECT_THROW(q.top(), PreconditionError);
  EXPECT_THROW(q.pop(), PreconditionError);
}

}  // namespace
}  // namespace prlc::sim
