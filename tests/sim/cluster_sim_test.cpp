#include "sim/cluster_sim.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/random.h"

namespace prlc::sim {
namespace {

ClusterParams small_cluster(std::size_t trials, std::uint64_t seed) {
  ClusterParams params;
  params.nodes = 2000;
  params.max_time = 40.0;
  params.replacement_delay = 0.5;
  params.experiment.trials = trials;
  params.experiment.root_seed = seed;
  params.experiment.level_sizes = {8, 16, 24};
  params.experiment.scheme = codes::Scheme::kPlc;
  params.experiment.failure.kind = FailureModelConfig::Kind::kPoisson;
  params.experiment.failure.churn_rate = 0.1;
  return params;
}

TEST(ClusterSim, ThreadCountNeverChangesResults) {
  // The tentpole determinism contract: the whole ClusterPoint — every
  // mean, every censored TTFL — is a pure function of (params, seed).
  ClusterParams params = small_cluster(12, 321);
  params.sample_times = {5.0, 10.0, 20.0};

  std::vector<ClusterPoint> points;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    params.experiment.threads = threads;
    points.push_back(run_cluster_lifetime(params));
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_EQ(points[0].mean_first_loss, points[i].mean_first_loss);
    EXPECT_EQ(points[0].loss_fraction, points[i].loss_fraction);
    EXPECT_EQ(points[0].mean_ttfl_l1, points[i].mean_ttfl_l1);
    EXPECT_EQ(points[0].ci95_ttfl_l1, points[i].ci95_ttfl_l1);
    EXPECT_EQ(points[0].mean_levels_at, points[i].mean_levels_at);
    EXPECT_EQ(points[0].mean_failures, points[i].mean_failures);
    EXPECT_EQ(points[0].mean_joins, points[i].mean_joins);
    EXPECT_EQ(points[0].mean_repairs, points[i].mean_repairs);
    EXPECT_EQ(points[0].mean_repairs_dropped, points[i].mean_repairs_dropped);
    EXPECT_EQ(points[0].mean_repair_traffic, points[i].mean_repair_traffic);
    EXPECT_EQ(points[0].mean_events, points[i].mean_events);
    EXPECT_EQ(points[0].max_peak_queue, points[i].max_peak_queue);
  }
}

TEST(ClusterSim, SingleTrialReplaysFromItsSeed) {
  const ClusterParams params = small_cluster(1, 55);
  Rng r1(0xABCDEF), r2(0xABCDEF);
  const LifetimeOutcome a = run_cluster_trial(params, r1);
  const LifetimeOutcome b = run_cluster_trial(params, r2);
  EXPECT_EQ(a.first_loss, b.first_loss);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.repairs_completed, b.repairs_completed);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(r1(), r2());  // identical draw streams all the way through
}

TEST(ClusterSim, PriorityAwareRepairExtendsLevel1Lifetime) {
  // The headline ablation: equal storage redundancy per level (so PLC's
  // storage skew cannot carry the claim) and equal repair bandwidth; only
  // the repair ORDER differs. Blind FIFO queues level-1 losses behind the
  // far more numerous level-2/3 repairs and lets the level-1 margin
  // erode; aware always spends the next stream on the lowest lost level.
  ClusterParams params = small_cluster(12, 2026);
  params.experiment.priority_distribution = {8.0 / 48, 16.0 / 48, 24.0 / 48};
  params.repair.bandwidth = 10.0;

  params.repair.policy = RepairPolicy::kPriorityAware;
  const ClusterPoint aware = run_cluster_lifetime(params);
  params.repair.policy = RepairPolicy::kPriorityBlind;
  const ClusterPoint blind = run_cluster_lifetime(params);
  params.repair.policy = RepairPolicy::kNone;
  const ClusterPoint none = run_cluster_lifetime(params);

  EXPECT_GT(aware.mean_ttfl_l1, blind.mean_ttfl_l1 + 2.0);
  EXPECT_LE(aware.loss_fraction[0], blind.loss_fraction[0]);
  // Any repair beats the no-repair decay floor.
  EXPECT_GT(blind.mean_ttfl_l1, none.mean_ttfl_l1);
  EXPECT_EQ(none.mean_repairs, 0.0);
}

TEST(ClusterSim, DifferentiatedPersistenceAcrossLevels) {
  // With the paper's storage skew (uniform distribution = more redundancy
  // per source for higher-priority levels), level 1 outlives level 2
  // outlives level 3.
  ClusterParams params = small_cluster(8, 99);
  params.experiment.failure.churn_rate = 0.2;
  params.repair.policy = RepairPolicy::kNone;
  const ClusterPoint point = run_cluster_lifetime(params);
  EXPECT_GT(point.mean_first_loss[0], point.mean_first_loss[1]);
  EXPECT_GT(point.mean_first_loss[1], point.mean_first_loss[2]);
}

TEST(ClusterSim, ReplicationBaselineRunsAndDecays) {
  ClusterParams params = small_cluster(4, 7);
  params.replication = true;
  params.replication_factor = 3;
  params.experiment.failure.churn_rate = 0.2;
  params.sample_times = {1.0, 5.0, 20.0, 39.0};
  const ClusterPoint point = run_cluster_lifetime(params);
  // 3-way replication at churn 0.2 over 40 time units cannot hold level 3.
  EXPECT_GT(point.loss_fraction[2], 0.5);
  // Decoded levels start full and only decay without strong repair.
  EXPECT_GE(point.mean_levels_at.front(), point.mean_levels_at.back());
}

TEST(ClusterSim, MillionNodeClusterSustainsContinuousChurn) {
  // The scale headline: one 10^6-node lifetime under continuous churn,
  // short horizon. Lazily materialized state keeps this cheap — only the
  // ~200 hosts actually holding blocks get any per-node storage.
  ClusterParams params = small_cluster(1, 424242);
  params.nodes = 1000000;
  params.max_time = 2.0;
  params.experiment.failure.churn_rate = 0.02;
  Rng rng(424242);
  const LifetimeOutcome outcome = run_cluster_trial(params, rng);
  // E[failures] ~ alive * rate * time ~ 10^6 * 0.02 * 2 = 40000 (slightly
  // fewer: dead nodes wait replacement_delay before rejoining).
  EXPECT_GT(outcome.failures, 30000u);
  EXPECT_LT(outcome.failures, 50000u);
  EXPECT_GT(outcome.events, outcome.failures);  // joins ride along
  EXPECT_GT(outcome.peak_queue, 0u);
  // At M = 96 blocks over 10^6 nodes almost no block is even touched in
  // two time units; every level survives.
  for (const auto lost : outcome.lost) EXPECT_EQ(lost, 0u);
}

TEST(ClusterSim, IntegrityOffIsBitCompatibleWithTheBaseline) {
  // Default-constructed IntegrityConfig must not perturb a single draw:
  // the PR 9 numbers (and committed bench baselines) stay reproducible.
  const ClusterParams params = small_cluster(6, 321);
  ClusterParams with_cfg = params;
  with_cfg.integrity = IntegrityConfig{};  // explicit zeros
  const ClusterPoint a = run_cluster_lifetime(params);
  const ClusterPoint b = run_cluster_lifetime(with_cfg);
  EXPECT_EQ(a.mean_first_loss, b.mean_first_loss);
  EXPECT_EQ(a.mean_events, b.mean_events);
  EXPECT_EQ(a.mean_repairs, b.mean_repairs);
  EXPECT_EQ(b.mean_rot_events, 0.0);
  EXPECT_EQ(b.mean_scrub_scans, 0.0);
  EXPECT_EQ(b.mean_quarantined, 0.0);
}

TEST(ClusterSim, ScrubbingRecoversRottenBlocksUnscrubbedClustersDecay) {
  // Rot-only, zero loud churn: every loss is silent. Without scrubbing
  // the scheduler never learns and the cluster decays to level-1 death;
  // with scrubbing every rotten block is detected and re-encoded while
  // the level still stands.
  ClusterParams params = small_cluster(8, 1313);
  params.experiment.failure.kind = FailureModelConfig::Kind::kWave;
  params.experiment.failure.wave_fractions = {};  // zero loud failures
  params.integrity.rot_rate = 0.05;

  params.integrity.scrub_interval = 0.0;  // silent decay
  const ClusterPoint unscrubbed = run_cluster_lifetime(params);
  params.integrity.scrub_interval = 1.0;
  const ClusterPoint scrubbed = run_cluster_lifetime(params);

  EXPECT_GT(unscrubbed.mean_rot_events, 0.0);
  EXPECT_EQ(unscrubbed.mean_rot_detected, 0.0);
  EXPECT_EQ(unscrubbed.mean_repairs, 0.0);  // nothing loud ever surfaces the loss
  EXPECT_GT(scrubbed.mean_scrub_scans, 0.0);
  EXPECT_GT(scrubbed.mean_rot_detected, 0.0);
  EXPECT_GT(scrubbed.mean_repairs, 0.0);
  // The headline: detection turns silent decay back into repairable loss.
  EXPECT_GT(scrubbed.mean_ttfl_l1, unscrubbed.mean_ttfl_l1);
  EXPECT_LT(scrubbed.loss_fraction[0], unscrubbed.loss_fraction[0]);
}

TEST(ClusterSim, ByzantineHostsAreQuarantinedAndNeverRepairedInto) {
  ClusterParams params = small_cluster(1, 777);
  params.nodes = 400;
  params.experiment.failure.kind = FailureModelConfig::Kind::kWave;
  params.experiment.failure.wave_fractions = {};  // zero loud failures
  params.integrity.byzantine_fraction = 0.25;
  params.integrity.scrub_interval = 1.0;
  params.max_time = 20.0;
  Rng rng(9090);
  const LifetimeOutcome outcome = run_cluster_trial(params, rng);
  // Forged-at-birth blocks exist, are all detected, and their hosts end
  // up quarantined.
  EXPECT_GT(outcome.rot_events, 0u);
  EXPECT_GT(outcome.rot_detected, 0u);
  EXPECT_GT(outcome.quarantined_nodes, 0u);
  // Every detection event eventually drains: by the horizon no rotten
  // block can be sitting undetected longer than one scrub interval, and
  // repairs re-homed blocks onto honest nodes only (re-forged repairs
  // would show up as rot_events > detections + pending).
  EXPECT_GE(outcome.repairs_completed + outcome.repairs_dropped, outcome.rot_detected);
}

TEST(ClusterSim, RotTrialsReplayBitIdenticallyAtAnyThreadCount) {
  ClusterParams params = small_cluster(9, 4321);
  params.integrity.rot_rate = 0.04;
  params.integrity.byzantine_fraction = 0.1;
  params.integrity.scrub_interval = 2.0;
  params.sample_times = {5.0, 20.0};
  std::vector<ClusterPoint> points;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    params.experiment.threads = threads;
    points.push_back(run_cluster_lifetime(params));
  }
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_EQ(points[0].mean_first_loss, points[i].mean_first_loss);
    EXPECT_EQ(points[0].mean_levels_at, points[i].mean_levels_at);
    EXPECT_EQ(points[0].mean_repairs, points[i].mean_repairs);
    EXPECT_EQ(points[0].mean_rot_events, points[i].mean_rot_events);
    EXPECT_EQ(points[0].mean_rot_detected, points[i].mean_rot_detected);
    EXPECT_EQ(points[0].mean_scrub_scans, points[i].mean_scrub_scans);
    EXPECT_EQ(points[0].mean_quarantined, points[i].mean_quarantined);
  }
}

TEST(ClusterSim, ValidateRejectsBadParams) {
  ClusterParams params = small_cluster(1, 1);
  params.nodes = 0;
  EXPECT_THROW(params.validate(), PreconditionError);

  params = small_cluster(1, 1);
  params.repair.bandwidth = 0.0;
  EXPECT_THROW(params.validate(), PreconditionError);

  params = small_cluster(1, 1);
  params.replication = true;
  params.locations = 10;  // replication sizes storage from the factor
  EXPECT_THROW(params.validate(), PreconditionError);

  params = small_cluster(1, 1);
  params.sample_times = {2.0, 1.0};  // not nondecreasing
  EXPECT_THROW(params.validate(), PreconditionError);

  params = small_cluster(1, 1);
  params.integrity.rot_rate = -0.1;
  EXPECT_THROW(params.validate(), PreconditionError);

  params = small_cluster(1, 1);
  params.integrity.byzantine_fraction = 1.5;
  EXPECT_THROW(params.validate(), PreconditionError);

  params = small_cluster(1, 1);
  params.replication = true;
  params.integrity.rot_rate = 0.1;  // silent model needs coded storage
  EXPECT_THROW(params.validate(), PreconditionError);
}

}  // namespace
}  // namespace prlc::sim
