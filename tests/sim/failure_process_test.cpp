#include "sim/failure_process.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/random.h"

namespace prlc::sim {
namespace {

/// Minimal membership for driving processes without an overlay.
class FlatMembership final : public MembershipView {
 public:
  explicit FlatMembership(std::size_t nodes) : alive_(nodes, 1), alive_count_(nodes) {}

  std::size_t nodes() const override { return alive_.size(); }
  std::size_t alive_count() const override { return alive_count_; }
  bool alive(net::NodeId node) const override { return alive_[node] != 0; }

  void fail(net::NodeId node) {
    alive_[node] = 0;
    --alive_count_;
  }

 private:
  std::vector<std::uint8_t> alive_;
  std::size_t alive_count_;
};

TEST(WaveFailureProcess, MatchesHistoricalKillDraws) {
  // The wave process must make exactly the draws kill_uniform_fraction has
  // always made: alive ids in id order, one sample_without_replacement of
  // floor(fraction * alive) indices.
  FlatMembership view(40);
  view.fail(3);
  view.fail(17);  // 38 alive

  Rng process_rng(999), manual_rng(999);
  WaveFailureProcess process({{2.0, 0.25}});
  std::vector<net::NodeId> from_process;
  while (auto event = process.next(view, process_rng, 2.0)) {
    EXPECT_DOUBLE_EQ(event->time, 2.0);
    from_process.push_back(event->node);
  }

  std::vector<net::NodeId> alive_nodes;
  for (net::NodeId v = 0; v < 40; ++v) {
    if (view.alive(v)) alive_nodes.push_back(v);
  }
  const auto kills = static_cast<std::size_t>(0.25 * static_cast<double>(alive_nodes.size()));
  std::vector<net::NodeId> manual;
  for (std::size_t idx : manual_rng.sample_without_replacement(alive_nodes.size(), kills)) {
    manual.push_back(alive_nodes[idx]);
  }
  EXPECT_EQ(from_process, manual);
  // Both Rngs must have consumed the same draws.
  EXPECT_EQ(process_rng(), manual_rng());
}

TEST(WaveFailureProcess, HorizonFencesRandomness) {
  // Asking about a horizon before the wave consumes NO draws — the fence
  // that keeps interleaved work (collects between churn points) on a
  // reproducible draw stream.
  FlatMembership view(30);
  Rng rng(7), untouched(7);
  WaveFailureProcess process({{5.0, 0.5}});
  EXPECT_FALSE(process.next(view, rng, 4.999).has_value());
  EXPECT_EQ(rng(), untouched());  // no draw happened

  // Reaching the horizon releases the wave in full.
  Rng rng2(7);
  std::size_t killed = 0;
  while (process.next(view, rng2, 5.0)) ++killed;
  EXPECT_EQ(killed, 15u);
}

TEST(WaveFailureProcess, SequentialWavesSeeUpdatedMembership) {
  FlatMembership view(100);
  Rng rng(42);
  WaveFailureProcess process({{0.0, 0.5}, {1.0, 0.5}});
  std::size_t first = 0, second = 0;
  while (auto event = process.next(view, rng, 0.0)) {
    view.fail(event->node);
    ++first;
  }
  EXPECT_EQ(first, 50u);
  while (auto event = process.next(view, rng, 1.0)) {
    view.fail(event->node);
    ++second;
  }
  EXPECT_EQ(second, 25u);  // half of the 50 still alive
  EXPECT_FALSE(process.next(view, rng, 1e9).has_value());  // stream exhausted
}

TEST(PoissonFailureProcess, EventsAreOrderedAliveAndRoughlyPoisson) {
  const double rate = 0.1;
  const std::size_t nodes = 500;
  FlatMembership view(nodes);
  Rng rng(2024);
  PoissonFailureProcess process(rate);
  double last = 0;
  std::size_t count = 0;
  while (auto event = process.next(view, rng, 10.0)) {
    EXPECT_GE(event->time, last);
    EXPECT_LE(event->time, 10.0);
    EXPECT_TRUE(view.alive(event->node));
    view.fail(event->node);
    last = event->time;
    ++count;
    if (view.alive_count() == 0) break;
  }
  // Pure-death process starting from 500 at per-node rate 0.1 over 10 time
  // units: E[deaths] = 500 * (1 - e^-1) ~ 316. Allow a wide band.
  EXPECT_GT(count, 250u);
  EXPECT_LT(count, 400u);
}

TEST(PoissonFailureProcess, HorizonKeepsCachedGapWithoutRedrawing) {
  // A gap drawn past the horizon is cached, not redrawn: probing with
  // small horizons then releasing gives the same first event as asking
  // for a big horizon outright on a fresh same-seeded process.
  FlatMembership view(50);
  PoissonFailureProcess probed(0.01);
  Rng probed_rng(77);
  for (double until = 0.0; until < 0.5; until += 0.1) {
    (void)probed.next(view, probed_rng, until);  // likely nullopt; draws once
  }
  const auto released = probed.next(view, probed_rng, 1e9);

  PoissonFailureProcess direct(0.01);
  Rng direct_rng(77);
  const auto straight = direct.next(view, direct_rng, 1e9);
  ASSERT_TRUE(released.has_value());
  ASSERT_TRUE(straight.has_value());
  EXPECT_DOUBLE_EQ(released->time, straight->time);
  EXPECT_EQ(released->node, straight->node);
}

TEST(PoissonFailureProcess, EmptyClusterEndsTheStream) {
  FlatMembership view(3);
  view.fail(0);
  view.fail(1);
  view.fail(2);
  Rng rng(1);
  PoissonFailureProcess process(1.0);
  EXPECT_FALSE(process.next(view, rng, 1e9).has_value());
}

TEST(FailureModelConfig, ValidateRejectsBadConfigs) {
  FailureModelConfig bad_wave;
  bad_wave.kind = FailureModelConfig::Kind::kWave;
  bad_wave.wave_fractions = {0.5, 1.5};
  EXPECT_THROW(bad_wave.validate(), PreconditionError);

  FailureModelConfig bad_rate;
  bad_rate.kind = FailureModelConfig::Kind::kPoisson;
  bad_rate.churn_rate = 0.0;
  EXPECT_THROW(bad_rate.validate(), PreconditionError);

  FailureModelConfig ok;
  ok.kind = FailureModelConfig::Kind::kPoisson;
  ok.churn_rate = 0.25;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_STREQ(make_failure_process(ok)->name(), "poisson_churn");

  FailureModelConfig waves;
  waves.kind = FailureModelConfig::Kind::kWave;
  waves.wave_fractions = {0.1, 0.2};
  EXPECT_STREQ(make_failure_process(waves)->name(), "mass_failure");
}

}  // namespace
}  // namespace prlc::sim
