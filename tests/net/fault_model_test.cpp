#include "net/fault_model.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace prlc::net {
namespace {

TEST(FaultSpec, InactiveByDefault) {
  FaultSpec spec;
  EXPECT_FALSE(spec.active());
  spec.corrupt_rate = 0.1;
  EXPECT_TRUE(spec.active());
}

TEST(FaultSpec, ScaledMultipliesAndClamps) {
  FaultSpec spec;
  spec.timeout_rate = 0.2;
  spec.crash_rate = 0.4;
  spec.slow_fraction = 0.3;
  const FaultSpec doubled = spec.scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.timeout_rate, 0.4);
  EXPECT_DOUBLE_EQ(doubled.crash_rate, 0.8);
  EXPECT_DOUBLE_EQ(doubled.slow_fraction, 0.6);
  const FaultSpec saturated = spec.scaled(10.0);
  EXPECT_DOUBLE_EQ(saturated.crash_rate, 1.0);
  EXPECT_DOUBLE_EQ(saturated.timeout_rate, 1.0);
  const FaultSpec zeroed = spec.scaled(0.0);
  EXPECT_FALSE(zeroed.active());
  EXPECT_THROW(spec.scaled(-1.0), PreconditionError);
}

TEST(FaultSpec, ValidateRejectsBadRates) {
  FaultSpec spec;
  spec.corrupt_rate = 1.5;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.corrupt_rate = -0.1;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.corrupt_rate = 0.5;
  spec.slow_multiplier = 0.5;
  EXPECT_THROW(spec.validate(), PreconditionError);
}

TEST(FaultPlan, NullPlanDrawsNothing) {
  Rng rng(11);
  Rng untouched(11);
  FaultPlan plan;
  EXPECT_FALSE(plan.active());
  // 100 fetch-equivalents must not consume a single Rng draw: routing
  // fault-free collection through the channel leaves streams untouched.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(plan.draw_fault(0, rng), FaultClass::kNone);
    EXPECT_EQ(plan.draw_latency_us(0, rng), 0u);
  }
  EXPECT_EQ(rng(), untouched());
}

TEST(FaultPlan, DeterministicFromSeed) {
  FaultSpec spec;
  spec.timeout_rate = 0.2;
  spec.corrupt_rate = 0.2;
  spec.slow_fraction = 0.3;
  spec.flaky_fraction = 0.2;
  Rng a(42), b(42);
  const FaultPlan pa(spec, 50, a);
  const FaultPlan pb(spec, 50, b);
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_EQ(pa.profile(v).slow, pb.profile(v).slow);
    EXPECT_EQ(pa.profile(v).flaky, pb.profile(v).flaky);
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(pa.draw_fault(i % 50, a), pb.draw_fault(i % 50, b));
    EXPECT_EQ(pa.draw_latency_us(i % 50, a), pb.draw_latency_us(i % 50, b));
  }
}

TEST(FaultPlan, CertainCrashAlwaysCrashes) {
  FaultSpec spec;
  spec.crash_rate = 1.0;
  Rng rng(7);
  const FaultPlan plan(spec, 4, rng);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(plan.draw_fault(2, rng), FaultClass::kCrash);
}

TEST(FaultPlan, RatesRoughlyRespected) {
  FaultSpec spec;
  spec.timeout_rate = 0.25;
  Rng rng(13);
  const FaultPlan plan(spec, 1, rng);
  int timeouts = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const FaultClass f = plan.draw_fault(0, rng);
    if (f == FaultClass::kTimeout) ++timeouts;
    else EXPECT_EQ(f, FaultClass::kNone);
  }
  EXPECT_NEAR(static_cast<double>(timeouts) / draws, 0.25, 0.02);
}

TEST(FaultPlan, SlowNodesDrawLongerLatencies) {
  FaultSpec spec;
  spec.slow_fraction = 0.5;
  spec.slow_multiplier = 16.0;
  spec.mean_latency_us = 100;
  Rng rng(17);
  const FaultPlan plan(spec, 200, rng);
  NodeId slow = 0, fast = 0;
  bool found_slow = false, found_fast = false;
  for (NodeId v = 0; v < 200; ++v) {
    if (plan.profile(v).slow && !found_slow) { slow = v; found_slow = true; }
    if (!plan.profile(v).slow && !found_fast) { fast = v; found_fast = true; }
  }
  ASSERT_TRUE(found_slow && found_fast);
  double slow_sum = 0, fast_sum = 0;
  for (int i = 0; i < 4000; ++i) {
    slow_sum += static_cast<double>(plan.draw_latency_us(slow, rng));
    fast_sum += static_cast<double>(plan.draw_latency_us(fast, rng));
  }
  EXPECT_GT(slow_sum, 8.0 * fast_sum);  // mean ratio is 16x; 8x is safe
}

TEST(FaultSpec, SilentFaultsActivateAndScale) {
  FaultSpec spec;
  spec.bitrot_rate = 0.05;
  EXPECT_TRUE(spec.active());
  spec.bitrot_rate = 0;
  spec.byzantine_fraction = 0.1;
  EXPECT_TRUE(spec.active());
  spec.bitrot_rate = 0.3;
  const FaultSpec doubled = spec.scaled(2.0);
  EXPECT_DOUBLE_EQ(doubled.bitrot_rate, 0.6);
  EXPECT_DOUBLE_EQ(doubled.byzantine_fraction, 0.2);
  EXPECT_DOUBLE_EQ(spec.scaled(10.0).bitrot_rate, 1.0);
  spec.bitrot_rate = 1.2;
  EXPECT_THROW(spec.validate(), PreconditionError);
  spec.bitrot_rate = 0.1;
  spec.byzantine_fraction = -0.1;
  EXPECT_THROW(spec.validate(), PreconditionError);
}

TEST(FaultPlan, SilentFaultKnobsDoNotPerturbExistingStreams) {
  // A spec without the new knobs must draw the exact same stream it did
  // before they existed: same profiles, same fault sequence.
  FaultSpec spec;
  spec.timeout_rate = 0.2;
  spec.corrupt_rate = 0.2;
  spec.slow_fraction = 0.3;
  spec.flaky_fraction = 0.2;
  Rng a(42), b(42);
  const FaultPlan plain(spec, 50, a);
  FaultSpec with_byz = spec;
  with_byz.byzantine_fraction = 0.5;
  const FaultPlan byz(with_byz, 50, b);
  // The byzantine draws are appended *after* slow/flaky per node, so the
  // slow/flaky assignment itself diverges — what must hold is that the
  // knob-free plan consumed exactly the pre-existing number of draws.
  Rng c(42);
  const FaultPlan again(spec, 50, c);
  EXPECT_EQ(a(), c());
  for (NodeId v = 0; v < 50; ++v) {
    EXPECT_FALSE(plain.profile(v).byzantine);
  }
  std::size_t byzantine = 0;
  for (NodeId v = 0; v < 50; ++v) byzantine += byz.profile(v).byzantine ? 1 : 0;
  EXPECT_GT(byzantine, 10u);  // ~25 expected at fraction 0.5
  EXPECT_LT(byzantine, 40u);
}

TEST(FaultPlan, CertainBitRotAlwaysRots) {
  FaultSpec spec;
  spec.bitrot_rate = 1.0;
  Rng rng(23);
  const FaultPlan plan(spec, 4, rng);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(plan.draw_fault(1, rng), FaultClass::kBitRotAtRest);
  }
}

TEST(FaultPlan, BitRotSharesTheSingleUniformDraw) {
  // bitrot sits after truncation in the cumulative partition and is not
  // flaky-amplified; a mixed spec still costs exactly one draw per fault.
  FaultSpec spec;
  spec.crash_rate = 0.1;
  spec.bitrot_rate = 0.3;
  Rng rng(29);
  const FaultPlan plan(spec, 1, rng);
  int rot = 0, crash = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const FaultClass f = plan.draw_fault(0, rng);
    if (f == FaultClass::kBitRotAtRest) ++rot;
    else if (f == FaultClass::kCrash) ++crash;
    else EXPECT_EQ(f, FaultClass::kNone);
  }
  EXPECT_NEAR(static_cast<double>(rot) / draws, 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(crash) / draws, 0.1, 0.02);
}

TEST(FaultClassNames, CoverTheSilentClasses) {
  EXPECT_STREQ(to_string(FaultClass::kBitRotAtRest), "bitrot");
  EXPECT_STREQ(to_string(FaultClass::kByzantine), "byzantine");
}

TEST(FaultPlan, ProfileOutOfRangeRejected) {
  FaultSpec spec;
  spec.timeout_rate = 0.1;
  Rng rng(19);
  const FaultPlan plan(spec, 3, rng);
  EXPECT_THROW(plan.profile(3), PreconditionError);
  EXPECT_THROW(plan.draw_fault(7, rng), PreconditionError);
}

}  // namespace
}  // namespace prlc::net
