// Greedy-routing failure injection: carve a dead band through the sensor
// field so greedy forwarding hits local minima, and verify the
// perimeter-fallback (shortest-path detour) still delivers whenever the
// survivor graph is connected.
#include <gtest/gtest.h>

#include "net/sensor_network.h"
#include "util/random.h"

namespace prlc::net {
namespace {

SensorNetwork make_field(std::size_t nodes, std::uint64_t seed) {
  SensorParams p;
  p.nodes = nodes;
  p.locations = 40;
  p.seed = seed;
  return SensorNetwork(p);
}

/// Kill every node in a horizontal band, except keep a narrow corridor on
/// the left edge so the field stays connected.
void carve_band(SensorNetwork& net, double y_lo, double y_hi, double corridor_x) {
  for (NodeId v = 0; v < net.nodes(); ++v) {
    const auto& p = net.position(v);
    if (p.y >= y_lo && p.y < y_hi && p.x > corridor_x) net.fail_node(v);
  }
}

TEST(RoutingVoid, DetourDeliversAcrossTheBand) {
  auto net = make_field(800, 21);
  carve_band(net, 0.45, 0.55, 0.12);
  if (!net.alive_graph_connected()) GTEST_SKIP() << "corridor too narrow for this seed";

  Rng rng(22);
  std::size_t routes = 0;
  std::size_t detoured = 0;
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    // Source in the far bottom-right, so routes toward top targets must
    // cross (or circumnavigate) the band.
    NodeId from = 0;
    double best = -1;
    for (NodeId v = 0; v < net.nodes(); ++v) {
      if (!net.alive(v)) continue;
      const auto& p = net.position(v);
      const double score = p.x - p.y;
      if (score > best) {
        best = score;
        from = v;
      }
    }
    if (net.location_point(loc).y < 0.6) continue;  // target above the band
    const auto result = net.route(from, loc);
    ASSERT_TRUE(result.delivered) << "loc " << loc;
    EXPECT_EQ(result.owner, net.owner_of(loc));
    ++routes;
    // Straight-line lower bound on greedy hops; anything well beyond it
    // indicates the detour ran (cannot assert per-route, so just count).
    const double straight =
        distance(net.position(from), net.location_point(loc)) / net.radius();
    if (static_cast<double>(result.hops) > 2.5 * straight) ++detoured;
  }
  ASSERT_GT(routes, 5u);  // the seed must give some above-band targets
  EXPECT_GT(detoured, 0u);  // at least some routes had to go the long way
}

TEST(RoutingVoid, PartitionReportsUndelivered) {
  auto net = make_field(600, 23);
  // Full band, no corridor: the field splits in two.
  carve_band(net, 0.40, 0.62, -1.0);  // wider than the radio radius
  if (net.alive_graph_connected()) GTEST_SKIP() << "band did not partition this seed";

  // Find a bottom node and a location owned above the band.
  NodeId from = 0;
  double best_y = 2.0;
  for (NodeId v = 0; v < net.nodes(); ++v) {
    if (net.alive(v) && net.position(v).y < best_y) {
      best_y = net.position(v).y;
      from = v;
    }
  }
  std::size_t cross_attempts = 0;
  std::size_t undelivered = 0;
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    if (net.location_point(loc).y < 0.6) continue;
    const NodeId owner = net.owner_of(loc);
    if (net.position(owner).y < 0.62) continue;  // owner fell below the band
    ++cross_attempts;
    const auto result = net.route(from, loc);
    if (!result.delivered) ++undelivered;
  }
  if (cross_attempts == 0) GTEST_SKIP() << "no cross-band targets this seed";
  // Every cross-band route must be reported undelivered, not mis-delivered.
  EXPECT_EQ(undelivered, cross_attempts);
}

}  // namespace
}  // namespace prlc::net
