#include "net/churn.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "net/chord_network.h"
#include "net/sensor_network.h"
#include "util/check.h"

namespace prlc::net {
namespace {

TEST(Churn, UniformFractionKillsExactCount) {
  ChordParams p;
  p.nodes = 200;
  p.locations = 5;
  p.seed = 3;
  ChordNetwork net(p);
  Rng rng(91);
  const auto killed = kill_uniform_fraction(net, 0.25, rng);
  EXPECT_EQ(killed.size(), 50u);
  EXPECT_EQ(net.alive_count(), 150u);
  for (NodeId v : killed) EXPECT_FALSE(net.alive(v));
}

TEST(Churn, UniformFractionOnAlreadyChurnedNetwork) {
  ChordParams p;
  p.nodes = 100;
  p.locations = 5;
  p.seed = 4;
  ChordNetwork net(p);
  Rng rng(92);
  kill_uniform_fraction(net, 0.5, rng);
  EXPECT_EQ(net.alive_count(), 50u);
  // A second 50% kill applies to the *remaining* population.
  kill_uniform_fraction(net, 0.5, rng);
  EXPECT_EQ(net.alive_count(), 25u);
}

TEST(Churn, ZeroAndFullFraction) {
  ChordParams p;
  p.nodes = 60;
  p.locations = 5;
  p.seed = 5;
  ChordNetwork net(p);
  Rng rng(93);
  EXPECT_TRUE(kill_uniform_fraction(net, 0.0, rng).empty());
  EXPECT_EQ(net.alive_count(), 60u);
  kill_uniform_fraction(net, 1.0, rng);
  EXPECT_EQ(net.alive_count(), 0u);
}

TEST(Churn, FractionValidated) {
  ChordParams p;
  p.nodes = 10;
  p.locations = 2;
  ChordNetwork net(p);
  Rng rng(94);
  EXPECT_THROW(kill_uniform_fraction(net, -0.1, rng), PreconditionError);
  EXPECT_THROW(kill_uniform_fraction(net, 1.1, rng), PreconditionError);
}

TEST(Churn, ExponentialDeathProbability) {
  EXPECT_DOUBLE_EQ(exponential_death_probability(10.0, 0.0), 0.0);
  EXPECT_NEAR(exponential_death_probability(10.0, 10.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_NEAR(exponential_death_probability(10.0, 1000.0), 1.0, 1e-12);
  EXPECT_THROW(exponential_death_probability(0.0, 1.0), PreconditionError);
  EXPECT_THROW(exponential_death_probability(1.0, -1.0), PreconditionError);
}

TEST(Churn, ExponentialDeathProbabilityEdgeCases) {
  // The guards must reject every flavour of nonsense lifetime/elapsed,
  // not just the exact-zero case.
  EXPECT_THROW(exponential_death_probability(-5.0, 1.0), PreconditionError);
  EXPECT_THROW(exponential_death_probability(1.0, -1e-9), PreconditionError);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(exponential_death_probability(nan, 1.0), PreconditionError);
  EXPECT_THROW(exponential_death_probability(1.0, nan), PreconditionError);
  // Infinite inputs are legal limits with well-defined probabilities.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(exponential_death_probability(inf, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(exponential_death_probability(1.0, inf), 1.0);
  // Tiny lifetimes / huge elapsed stay clamped inside [0, 1].
  const double p = exponential_death_probability(1e-300, 1e300);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(Churn, ApplyExponentialChurnRejectsBadArgsWithoutKilling) {
  SensorParams p;
  p.nodes = 50;
  p.locations = 5;
  p.seed = 8;
  SensorNetwork net(p);
  Rng rng(97);
  EXPECT_THROW(apply_exponential_churn(net, 0.0, 1.0, rng), PreconditionError);
  EXPECT_THROW(apply_exponential_churn(net, -2.0, 1.0, rng), PreconditionError);
  EXPECT_THROW(apply_exponential_churn(net, 1.0, -1.0, rng), PreconditionError);
  // The precondition fires before any node is touched.
  EXPECT_EQ(net.alive_count(), 50u);
}

TEST(Churn, ZeroElapsedKillsNothing) {
  SensorParams p;
  p.nodes = 50;
  p.locations = 5;
  p.seed = 9;
  SensorNetwork net(p);
  Rng rng(98);
  EXPECT_TRUE(apply_exponential_churn(net, 10.0, 0.0, rng).empty());
  EXPECT_EQ(net.alive_count(), 50u);
}

TEST(Churn, ExponentialChurnMatchesExpectation) {
  SensorParams p;
  p.nodes = 2000;
  p.locations = 5;
  p.seed = 6;
  SensorNetwork net(p);
  Rng rng(95);
  const auto killed = apply_exponential_churn(net, 10.0, 5.0, rng);
  const double expect = 2000 * (1.0 - std::exp(-0.5));
  EXPECT_NEAR(static_cast<double>(killed.size()), expect, 4 * std::sqrt(expect));
  EXPECT_EQ(net.alive_count(), 2000u - killed.size());
}

TEST(Churn, ExponentialChurnSkipsDeadNodes) {
  SensorParams p;
  p.nodes = 100;
  p.locations = 5;
  p.seed = 7;
  SensorNetwork net(p);
  Rng rng(96);
  kill_uniform_fraction(net, 1.0, rng);
  const auto killed = apply_exponential_churn(net, 1.0, 100.0, rng);
  EXPECT_TRUE(killed.empty());
}

}  // namespace
}  // namespace prlc::net
