#include "net/geometry.h"

#include <gtest/gtest.h>

namespace prlc::net {
namespace {

TEST(Geometry, EuclideanDistance) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
}

TEST(Geometry, DistanceSymmetric) {
  const Point2D a{0.2, 0.7};
  const Point2D b{0.9, 0.1};
  EXPECT_DOUBLE_EQ(distance(a, b), distance(b, a));
}

TEST(Geometry, RingClockwiseWraps) {
  EXPECT_EQ(ring_clockwise(10, 15), 5u);
  EXPECT_EQ(ring_clockwise(15, 10), ~std::uint64_t{0} - 4);  // almost full circle
  EXPECT_EQ(ring_clockwise(7, 7), 0u);
}

TEST(Geometry, RingIntervalHalfOpen) {
  // (from, to] clockwise.
  EXPECT_TRUE(ring_in_interval(5, 3, 7));
  EXPECT_TRUE(ring_in_interval(7, 3, 7));   // inclusive right end
  EXPECT_FALSE(ring_in_interval(3, 3, 7));  // exclusive left end
  EXPECT_FALSE(ring_in_interval(8, 3, 7));
}

TEST(Geometry, RingIntervalAcrossWrap) {
  const std::uint64_t high = ~std::uint64_t{0} - 5;
  EXPECT_TRUE(ring_in_interval(2, high, 10));
  EXPECT_TRUE(ring_in_interval(high + 3, high, 10));
  EXPECT_FALSE(ring_in_interval(high - 1, high, 10));
  EXPECT_FALSE(ring_in_interval(11, high, 10));
}

TEST(Geometry, RingIntervalFullCircle) {
  // to == from means the whole ring is (from, from] = everything but from
  // ... which under the unsigned arithmetic is the empty/full edge case:
  // clockwise(from, from) == 0, so only keys with distance 0 match — none
  // besides from itself, which the left-exclusivity rejects.
  EXPECT_FALSE(ring_in_interval(5, 5, 5));
  EXPECT_FALSE(ring_in_interval(4, 5, 5));
}

}  // namespace
}  // namespace prlc::net
