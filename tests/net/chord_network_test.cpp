#include "net/chord_network.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.h"

namespace prlc::net {
namespace {

ChordParams make_params(std::size_t nodes = 200, std::size_t locations = 50,
                        std::uint64_t seed = 5) {
  ChordParams p;
  p.nodes = nodes;
  p.locations = locations;
  p.seed = seed;
  return p;
}

/// Reference owner rule: alive node with the minimal clockwise distance
/// from the key.
NodeId linear_successor(const ChordNetwork& net, std::uint64_t key) {
  NodeId best = 0;
  std::uint64_t best_d = std::numeric_limits<std::uint64_t>::max();
  for (NodeId v = 0; v < net.nodes(); ++v) {
    if (!net.alive(v)) continue;
    const std::uint64_t d = ring_clockwise(key, net.ring_id(v));
    if (d <= best_d) {
      // Prefer the node exactly at `key` (distance 0) then nearest cw.
      if (d < best_d) {
        best = v;
        best_d = d;
      }
    }
  }
  return best;
}

TEST(ChordNetwork, ConstructionBasics) {
  const ChordNetwork net(make_params());
  EXPECT_EQ(net.nodes(), 200u);
  EXPECT_EQ(net.locations(), 50u);
  EXPECT_EQ(net.alive_count(), 200u);
}

TEST(ChordNetwork, RingIdsAreUnique) {
  const ChordNetwork net(make_params(500, 10, 9));
  std::set<std::uint64_t> ids;
  for (NodeId v = 0; v < net.nodes(); ++v) ids.insert(net.ring_id(v));
  EXPECT_EQ(ids.size(), net.nodes());
}

TEST(ChordNetwork, SuccessorMatchesLinearScan) {
  const ChordNetwork net(make_params());
  Rng rng(81);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t key = rng();
    EXPECT_EQ(net.successor(key), linear_successor(net, key));
  }
}

TEST(ChordNetwork, SuccessorOfOwnIdIsSelf) {
  const ChordNetwork net(make_params());
  for (NodeId v = 0; v < 20; ++v) {
    EXPECT_EQ(net.successor(net.ring_id(v)), v);
  }
}

TEST(ChordNetwork, OwnerMatchesSuccessorOfKey) {
  const ChordNetwork net(make_params());
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    EXPECT_EQ(net.owner_of(loc), net.successor(net.location_key(loc)));
  }
}

TEST(ChordNetwork, RouteDeliversToOwner) {
  const ChordNetwork net(make_params(300, 40, 13));
  Rng rng(82);
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    const NodeId from = net.random_alive_node(rng);
    const auto result = net.route(from, loc);
    ASSERT_TRUE(result.delivered);
    EXPECT_EQ(result.owner, net.owner_of(loc));
  }
}

TEST(ChordNetwork, RouteHopsAreLogarithmic) {
  const ChordNetwork net(make_params(1000, 100, 17));
  Rng rng(83);
  std::size_t max_hops = 0;
  double total = 0;
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    const auto result = net.route(net.random_alive_node(rng), loc);
    ASSERT_TRUE(result.delivered);
    max_hops = std::max(max_hops, result.hops);
    total += static_cast<double>(result.hops);
  }
  // Chord: ~ (1/2) log2 W average, log2 W + O(1) whp. Generous bounds.
  EXPECT_LE(max_hops, 2 * static_cast<std::size_t>(std::log2(1000)) + 4);
  EXPECT_LE(total / static_cast<double>(net.locations()), std::log2(1000) + 1);
}

TEST(ChordNetwork, RouteFromOwnerIsZeroHops) {
  const ChordNetwork net(make_params());
  const NodeId owner = net.owner_of(0);
  const auto result = net.route(owner, 0);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.hops, 0u);
}

TEST(ChordNetwork, FailuresShiftOwnershipToNextSuccessor) {
  ChordNetwork net(make_params(100, 10, 19));
  const LocationId loc = 4;
  const NodeId owner = net.owner_of(loc);
  net.fail_node(owner);
  const NodeId next = net.owner_of(loc);
  EXPECT_NE(next, owner);
  EXPECT_TRUE(net.alive(next));
  EXPECT_EQ(next, linear_successor(net, net.location_key(loc)));
}

TEST(ChordNetwork, RoutingSurvivesHeavyChurn) {
  ChordNetwork net(make_params(400, 30, 23));
  Rng rng(84);
  for (NodeId v = 0; v < net.nodes(); v += 2) net.fail_node(v);  // 50% churn
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    const NodeId from = net.random_alive_node(rng);
    const auto result = net.route(from, loc);
    ASSERT_TRUE(result.delivered);
    EXPECT_TRUE(net.alive(result.owner));
    EXPECT_EQ(result.owner, net.owner_of(loc));
  }
}

TEST(ChordNetwork, RouteFromDeadNodeRejected) {
  ChordNetwork net(make_params());
  net.fail_node(3);
  EXPECT_THROW(net.route(3, 0), PreconditionError);
}

TEST(ChordNetwork, TwoChoicesReducesMaxLoad) {
  ChordParams one = make_params(150, 3000, 29);
  ChordParams two = one;
  two.two_choices = true;
  const ChordNetwork net1(one);
  const ChordNetwork net2(two);
  auto max_load = [](const ChordNetwork& net) {
    std::vector<std::size_t> load(net.nodes(), 0);
    for (LocationId loc = 0; loc < net.locations(); ++loc) ++load[net.owner_of(loc)];
    std::size_t mx = 0;
    for (std::size_t l : load) mx = std::max(mx, l);
    return mx;
  };
  EXPECT_LT(max_load(net2), max_load(net1));
}

TEST(ChordNetwork, DeterministicPerSeed) {
  const ChordNetwork a(make_params(80, 12, 31));
  const ChordNetwork b(make_params(80, 12, 31));
  for (NodeId v = 0; v < a.nodes(); ++v) EXPECT_EQ(a.ring_id(v), b.ring_id(v));
  for (LocationId loc = 0; loc < a.locations(); ++loc) {
    EXPECT_EQ(a.location_key(loc), b.location_key(loc));
  }
}

TEST(ChordNetwork, ValidatesParameters) {
  ChordParams p;
  p.nodes = 1;
  EXPECT_THROW(ChordNetwork{p}, PreconditionError);
  p.nodes = 5;
  p.locations = 0;
  EXPECT_THROW(ChordNetwork{p}, PreconditionError);
}

}  // namespace
}  // namespace prlc::net
