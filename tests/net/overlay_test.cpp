// Behaviour of the Overlay base contract shared by both overlay families.
#include <gtest/gtest.h>

#include "net/chord_network.h"
#include "net/churn.h"
#include "net/sensor_network.h"
#include "util/check.h"

namespace prlc::net {
namespace {

ChordNetwork small_ring() {
  ChordParams p;
  p.nodes = 12;
  p.locations = 4;
  p.seed = 3;
  return ChordNetwork(p);
}

TEST(Overlay, RandomAliveNodeOnlyReturnsAlive) {
  auto net = small_ring();
  for (NodeId v = 0; v < 6; ++v) net.fail_node(v);
  Rng rng(41);
  for (int t = 0; t < 200; ++t) {
    const NodeId v = net.random_alive_node(rng);
    EXPECT_TRUE(net.alive(v));
    EXPECT_GE(v, 6u);
  }
}

TEST(Overlay, RandomAliveNodeThrowsWhenAllDead) {
  auto net = small_ring();
  Rng rng(42);
  kill_uniform_fraction(net, 1.0, rng);
  EXPECT_THROW(net.random_alive_node(rng), PreconditionError);
}

TEST(Overlay, OwnershipThrowsWhenAllDead) {
  auto net = small_ring();
  Rng rng(43);
  kill_uniform_fraction(net, 1.0, rng);
  EXPECT_THROW(net.owner_of(0), PreconditionError);
}

TEST(Overlay, SensorOwnershipThrowsWhenAllDead) {
  SensorParams p;
  p.nodes = 10;
  p.locations = 3;
  p.seed = 5;
  SensorNetwork net(p);
  Rng rng(44);
  kill_uniform_fraction(net, 1.0, rng);
  EXPECT_THROW(net.owner_of(0), PreconditionError);
}

TEST(Overlay, NodeIdBoundsChecked) {
  auto net = small_ring();
  EXPECT_THROW(net.alive(12), PreconditionError);
  EXPECT_THROW(net.fail_node(12), PreconditionError);
  EXPECT_THROW(net.revive_node(12), PreconditionError);
  EXPECT_THROW(net.generation(12), PreconditionError);
}

TEST(Overlay, LastSurvivorOwnsEverything) {
  auto net = small_ring();
  for (NodeId v = 1; v < net.nodes(); ++v) net.fail_node(v);
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    EXPECT_EQ(net.owner_of(loc), 0u);
    const auto result = net.route(0, loc);
    EXPECT_TRUE(result.delivered);
    EXPECT_EQ(result.hops, 0u);
  }
}

TEST(Overlay, CandidatesAgreeWithOwnerAfterChurn) {
  auto net = small_ring();
  Rng rng(45);
  kill_uniform_fraction(net, 0.5, rng);
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    const auto cands = net.owner_candidates(loc, 3);
    ASSERT_FALSE(cands.empty());
    EXPECT_EQ(cands.front(), net.owner_of(loc));
  }
}

}  // namespace
}  // namespace prlc::net
