#include "net/sensor_network.h"

#include <gtest/gtest.h>

#include <limits>

#include "util/check.h"

namespace prlc::net {
namespace {

SensorParams make_params(std::size_t nodes = 300, std::size_t locations = 50,
                         std::uint64_t seed = 7) {
  SensorParams p;
  p.nodes = nodes;
  p.locations = locations;
  p.seed = seed;
  return p;
}

TEST(SensorNetwork, ConstructionBasics) {
  const SensorNetwork net(make_params());
  EXPECT_EQ(net.nodes(), 300u);
  EXPECT_EQ(net.locations(), 50u);
  EXPECT_EQ(net.alive_count(), 300u);
  EXPECT_GT(net.radius(), 0.0);
  for (NodeId v = 0; v < net.nodes(); ++v) {
    const auto& p = net.position(v);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
  }
}

TEST(SensorNetwork, DefaultRadiusYieldsConnectivity) {
  // The auto radius is 2x the connectivity threshold; a few hundred
  // uniform nodes should be connected for typical seeds.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const SensorNetwork net(make_params(300, 10, seed));
    EXPECT_TRUE(net.alive_graph_connected()) << "seed " << seed;
  }
}

TEST(SensorNetwork, AdjacencyIsSymmetricAndRadiusBounded) {
  const SensorNetwork net(make_params(200));
  for (NodeId v = 0; v < net.nodes(); ++v) {
    for (NodeId u : net.neighbors(v)) {
      EXPECT_LE(distance(net.position(v), net.position(u)), net.radius() + 1e-12);
      const auto& back = net.neighbors(u);
      EXPECT_NE(std::find(back.begin(), back.end(), v), back.end());
    }
  }
}

TEST(SensorNetwork, ClosestAliveIsExact) {
  const SensorNetwork net(make_params(250));
  Rng rng(71);
  for (int t = 0; t < 100; ++t) {
    const Point2D p{rng.uniform_double(), rng.uniform_double()};
    const NodeId got = net.closest_alive(p);
    double best = std::numeric_limits<double>::infinity();
    NodeId want = 0;
    for (NodeId v = 0; v < net.nodes(); ++v) {
      const double d = distance_sq(p, net.position(v));
      if (d < best) {
        best = d;
        want = v;
      }
    }
    EXPECT_EQ(got, want);
  }
}

TEST(SensorNetwork, OwnerIsClosestAliveToLocationPoint) {
  const SensorNetwork net(make_params());
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    EXPECT_EQ(net.owner_of(loc), net.closest_alive(net.location_point(loc)));
  }
}

TEST(SensorNetwork, RouteDeliversToOwner) {
  const SensorNetwork net(make_params(400, 30, 11));
  Rng rng(72);
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    const NodeId from = net.random_alive_node(rng);
    const auto result = net.route(from, loc);
    ASSERT_TRUE(result.delivered);
    EXPECT_EQ(result.owner, net.owner_of(loc));
    EXPECT_LT(result.hops, net.nodes());
  }
}

TEST(SensorNetwork, RouteFromOwnerIsZeroHops) {
  const SensorNetwork net(make_params());
  const NodeId owner = net.owner_of(0);
  const auto result = net.route(owner, 0);
  EXPECT_TRUE(result.delivered);
  EXPECT_EQ(result.hops, 0u);
}

TEST(SensorNetwork, GreedyHopsScaleWithDistance) {
  // A random route's hop count is at least the straight-line distance
  // divided by the radio radius (each hop covers at most one radius).
  const SensorNetwork net(make_params(500, 20, 13));
  Rng rng(73);
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    const NodeId from = net.random_alive_node(rng);
    const auto result = net.route(from, loc);
    ASSERT_TRUE(result.delivered);
    const double d = distance(net.position(from), net.position(result.owner));
    EXPECT_GE(static_cast<double>(result.hops) + 1e-9, d / net.radius() - 1.0);
  }
}

TEST(SensorNetwork, FailuresChangeOwnership) {
  SensorNetwork net(make_params(150, 20, 17));
  const NodeId owner = net.owner_of(3);
  net.fail_node(owner);
  EXPECT_FALSE(net.alive(owner));
  EXPECT_EQ(net.alive_count(), 149u);
  const NodeId new_owner = net.owner_of(3);
  EXPECT_NE(new_owner, owner);
  EXPECT_TRUE(net.alive(new_owner));
}

TEST(SensorNetwork, RoutingAvoidsFailedNodes) {
  SensorNetwork net(make_params(400, 10, 19));
  Rng rng(74);
  // Kill 30% of nodes; routes must still deliver to the *current* owner
  // whenever the survivor graph stays connected.
  std::size_t killed = 0;
  for (NodeId v = 0; v < net.nodes() && killed < 120; v += 3) {
    net.fail_node(v);
    ++killed;
  }
  if (!net.alive_graph_connected()) GTEST_SKIP() << "survivor graph partitioned";
  for (LocationId loc = 0; loc < net.locations(); ++loc) {
    const NodeId from = net.random_alive_node(rng);
    const auto result = net.route(from, loc);
    ASSERT_TRUE(result.delivered);
    EXPECT_TRUE(net.alive(result.owner));
    EXPECT_EQ(result.owner, net.owner_of(loc));
  }
}

TEST(SensorNetwork, RouteFromDeadNodeRejected) {
  SensorNetwork net(make_params());
  net.fail_node(5);
  EXPECT_THROW(net.route(5, 0), PreconditionError);
}

TEST(SensorNetwork, TwoChoicesReducesMaxLoad) {
  // Compare max locations-per-node with and without the two-choices rule.
  SensorParams one = make_params(200, 2000, 23);
  SensorParams two = one;
  two.two_choices = true;
  const SensorNetwork net1(one);
  const SensorNetwork net2(two);
  auto max_load = [](const SensorNetwork& net) {
    std::vector<std::size_t> load(net.nodes(), 0);
    for (LocationId loc = 0; loc < net.locations(); ++loc) ++load[net.owner_of(loc)];
    std::size_t mx = 0;
    for (std::size_t l : load) mx = std::max(mx, l);
    return mx;
  };
  EXPECT_LT(max_load(net2), max_load(net1));
}

TEST(SensorNetwork, DeterministicPerSeed) {
  const SensorNetwork a(make_params(100, 10, 31));
  const SensorNetwork b(make_params(100, 10, 31));
  for (NodeId v = 0; v < a.nodes(); ++v) {
    EXPECT_DOUBLE_EQ(a.position(v).x, b.position(v).x);
    EXPECT_DOUBLE_EQ(a.position(v).y, b.position(v).y);
  }
  for (LocationId loc = 0; loc < a.locations(); ++loc) {
    EXPECT_EQ(a.owner_of(loc), b.owner_of(loc));
  }
}

TEST(SensorNetwork, ValidatesParameters) {
  SensorParams p;
  p.nodes = 1;
  EXPECT_THROW(SensorNetwork{p}, PreconditionError);
  p.nodes = 10;
  p.locations = 0;
  EXPECT_THROW(SensorNetwork{p}, PreconditionError);
  p.locations = 5;
  p.radius = 7.0;
  EXPECT_THROW(SensorNetwork{p}, PreconditionError);
}

}  // namespace
}  // namespace prlc::net
