// Join/leave membership semantics: revival, incarnation generations, and
// the session-churn model.
#include <gtest/gtest.h>

#include "net/chord_network.h"
#include "net/churn.h"
#include "net/sensor_network.h"
#include "util/check.h"

namespace prlc::net {
namespace {

ChordNetwork make_ring(std::size_t nodes = 100) {
  ChordParams p;
  p.nodes = nodes;
  p.locations = 10;
  p.seed = 5;
  return ChordNetwork(p);
}

TEST(Membership, ReviveRestoresLiveness) {
  auto net = make_ring();
  net.fail_node(7);
  EXPECT_FALSE(net.alive(7));
  net.revive_node(7);
  EXPECT_TRUE(net.alive(7));
  EXPECT_EQ(net.alive_count(), 100u);
}

TEST(Membership, GenerationBumpsOncePerFailure) {
  auto net = make_ring();
  EXPECT_EQ(net.generation(3), 0u);
  net.fail_node(3);
  EXPECT_EQ(net.generation(3), 1u);
  net.fail_node(3);  // idempotent: still the same dead incarnation
  EXPECT_EQ(net.generation(3), 1u);
  net.revive_node(3);
  EXPECT_EQ(net.generation(3), 1u);  // revival is the new incarnation
  net.fail_node(3);
  EXPECT_EQ(net.generation(3), 2u);
}

TEST(Membership, ReviveIsIdempotent) {
  auto net = make_ring();
  net.revive_node(9);  // already alive
  EXPECT_TRUE(net.alive(9));
  EXPECT_EQ(net.generation(9), 0u);
}

TEST(Membership, RevivedNodeOwnsKeysAgain) {
  auto net = make_ring();
  const NodeId owner = net.owner_of(2);
  net.fail_node(owner);
  EXPECT_NE(net.owner_of(2), owner);
  net.revive_node(owner);
  EXPECT_EQ(net.owner_of(2), owner);
}

TEST(Membership, SessionChurnCountsMatch) {
  auto net = make_ring(1000);
  Rng rng(71);
  const auto [left, rejoined] = apply_session_churn(net, 0.3, 0.5, rng);
  EXPECT_EQ(rejoined, 0u);  // nobody was dead yet
  EXPECT_NEAR(static_cast<double>(left), 300.0, 60.0);
  EXPECT_EQ(net.alive_count(), 1000u - left);
  const auto [left2, rejoined2] = apply_session_churn(net, 0.0, 1.0, rng);
  EXPECT_EQ(left2, 0u);
  EXPECT_EQ(rejoined2, left);
  EXPECT_EQ(net.alive_count(), 1000u);
}

TEST(Membership, SessionChurnValidated) {
  auto net = make_ring();
  Rng rng(72);
  EXPECT_THROW(apply_session_churn(net, -0.1, 0.5, rng), PreconditionError);
  EXPECT_THROW(apply_session_churn(net, 0.5, 1.1, rng), PreconditionError);
}

TEST(Membership, SteadyStateTurnover) {
  // With symmetric leave/rejoin the alive population hovers around half.
  auto net = make_ring(2000);
  Rng rng(73);
  for (int step = 0; step < 50; ++step) apply_session_churn(net, 0.2, 0.2, rng);
  EXPECT_NEAR(static_cast<double>(net.alive_count()), 1000.0, 150.0);
}

TEST(Membership, SensorOverlayRevivalWorksToo) {
  SensorParams p;
  p.nodes = 80;
  p.locations = 5;
  p.seed = 9;
  SensorNetwork net(p);
  net.fail_node(11);
  EXPECT_EQ(net.generation(11), 1u);
  net.revive_node(11);
  EXPECT_TRUE(net.alive(11));
}

}  // namespace
}  // namespace prlc::net
