#include "bench_common.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace prlc::bench {
namespace {

/// Run parse_args over a copy of `args`; returns the parsed options and
/// the argv entries that survived stripping.
struct ParseResult {
  Options options;
  std::vector<std::string> leftover;
};

ParseResult parse(std::vector<std::string> args,
                  UnknownArgs unknown = UnknownArgs::kReject) {
  std::vector<char*> argv;
  std::string name = "bench_test";
  argv.push_back(name.data());
  for (auto& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  int argc = static_cast<int>(argv.size()) - 1;
  parse_args(argc, argv.data(), unknown);
  ParseResult out;
  out.options = options();
  for (int i = 1; i < argc; ++i) out.leftover.emplace_back(argv[i]);
  return out;
}

TEST(BenchCommonFlags, ParsesPayloadAndChunkBytes) {
  const auto r = parse({"--payload-bytes", "1048576", "--chunk-bytes", "32768"});
  ASSERT_TRUE(r.options.payload_bytes.has_value());
  ASSERT_TRUE(r.options.chunk_bytes.has_value());
  EXPECT_EQ(*r.options.payload_bytes, 1048576u);
  EXPECT_EQ(*r.options.chunk_bytes, 32768u);
  EXPECT_TRUE(r.leftover.empty());
}

TEST(BenchCommonFlags, ParsesBinarySuffixesAndEqualsForm) {
  const auto r = parse({"--payload-bytes=64m", "--chunk-bytes=128K"});
  EXPECT_EQ(*r.options.payload_bytes, std::size_t{64} << 20);
  EXPECT_EQ(*r.options.chunk_bytes, std::size_t{128} << 10);
  const auto g = parse({"--payload-bytes", "2g"});
  EXPECT_EQ(*g.options.payload_bytes, std::size_t{2} << 30);
}

TEST(BenchCommonFlags, UnsetByteFlagsStayNullopt) {
  const auto r = parse({"--trials", "5"});
  EXPECT_FALSE(r.options.payload_bytes.has_value());
  EXPECT_FALSE(r.options.chunk_bytes.has_value());
  EXPECT_EQ(*r.options.trials, 5u);
}

TEST(BenchCommonFlagsDeathTest, RejectsNonPositiveAndGarbageByteCounts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(parse({"--payload-bytes", "0"}), testing::ExitedWithCode(64),
              "--payload-bytes");
  EXPECT_EXIT(parse({"--chunk-bytes", "0"}), testing::ExitedWithCode(64), "--chunk-bytes");
  EXPECT_EXIT(parse({"--payload-bytes", "-4"}), testing::ExitedWithCode(64),
              "--payload-bytes");
  EXPECT_EXIT(parse({"--payload-bytes", "12q"}), testing::ExitedWithCode(64),
              "--payload-bytes");
  EXPECT_EXIT(parse({"--chunk-bytes", "kk"}), testing::ExitedWithCode(64), "--chunk-bytes");
  EXPECT_EXIT(parse({"--payload-bytes"}), testing::ExitedWithCode(64), "missing its value");
}

TEST(BenchCommonFlagsDeathTest, RejectsChunkLargerThanPayload) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(parse({"--payload-bytes", "4096", "--chunk-bytes", "8192"}),
              testing::ExitedWithCode(64), "--chunk-bytes must not exceed");
  // Equal is fine.
  const auto r = parse({"--payload-bytes", "4096", "--chunk-bytes", "4096"});
  EXPECT_EQ(*r.options.chunk_bytes, 4096u);
  // Chunk alone is fine at any size: no payload to compare against.
  const auto c = parse({"--chunk-bytes", "1g"});
  EXPECT_EQ(*c.options.chunk_bytes, std::size_t{1} << 30);
}

TEST(BenchCommonFlags, ParsesClusterSimFlags) {
  const auto r = parse({"--nodes", "1000000", "--churn-rate", "0.05", "--repair-bw=12.5"});
  ASSERT_TRUE(r.options.nodes.has_value());
  ASSERT_TRUE(r.options.churn_rate.has_value());
  ASSERT_TRUE(r.options.repair_bw.has_value());
  EXPECT_EQ(*r.options.nodes, 1000000u);
  EXPECT_DOUBLE_EQ(*r.options.churn_rate, 0.05);
  EXPECT_DOUBLE_EQ(*r.options.repair_bw, 12.5);
  EXPECT_TRUE(r.leftover.empty());
}

TEST(BenchCommonFlags, UnsetClusterSimFlagsStayNullopt) {
  const auto r = parse({"--trials", "3"});
  EXPECT_FALSE(r.options.nodes.has_value());
  EXPECT_FALSE(r.options.churn_rate.has_value());
  EXPECT_FALSE(r.options.repair_bw.has_value());
}

TEST(BenchCommonFlags, ScientificNotationRatesParse) {
  const auto r = parse({"--churn-rate", "2e-3"});
  EXPECT_DOUBLE_EQ(*r.options.churn_rate, 2e-3);
}

TEST(BenchCommonFlagsDeathTest, RejectsZeroNodesAndBadCounts) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(parse({"--nodes", "0"}), testing::ExitedWithCode(64), "--nodes");
  EXPECT_EXIT(parse({"--nodes", "-5"}), testing::ExitedWithCode(64), "--nodes");
  EXPECT_EXIT(parse({"--nodes", "many"}), testing::ExitedWithCode(64), "--nodes");
  EXPECT_EXIT(parse({"--nodes"}), testing::ExitedWithCode(64), "missing its value");
}

TEST(BenchCommonFlagsDeathTest, RejectsNonPositiveAndGarbageRates) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(parse({"--churn-rate", "-0.1"}), testing::ExitedWithCode(64), "--churn-rate");
  EXPECT_EXIT(parse({"--churn-rate", "0"}), testing::ExitedWithCode(64), "--churn-rate");
  EXPECT_EXIT(parse({"--churn-rate", "fast"}), testing::ExitedWithCode(64), "--churn-rate");
  EXPECT_EXIT(parse({"--churn-rate", "0.1x"}), testing::ExitedWithCode(64), "--churn-rate");
  EXPECT_EXIT(parse({"--churn-rate", "inf"}), testing::ExitedWithCode(64), "--churn-rate");
  EXPECT_EXIT(parse({"--repair-bw", "0"}), testing::ExitedWithCode(64), "--repair-bw");
  EXPECT_EXIT(parse({"--repair-bw", "-8"}), testing::ExitedWithCode(64), "--repair-bw");
  EXPECT_EXIT(parse({"--repair-bw", "nan"}), testing::ExitedWithCode(64), "--repair-bw");
}

TEST(BenchCommonFlags, ParsesIntegrityFlags) {
  const auto r =
      parse({"--rot-rate", "0.02", "--byzantine-rate=0.1", "--scrub-interval", "2.5"});
  ASSERT_TRUE(r.options.rot_rate.has_value());
  ASSERT_TRUE(r.options.byzantine_rate.has_value());
  ASSERT_TRUE(r.options.scrub_interval.has_value());
  EXPECT_DOUBLE_EQ(*r.options.rot_rate, 0.02);
  EXPECT_DOUBLE_EQ(*r.options.byzantine_rate, 0.1);
  EXPECT_DOUBLE_EQ(*r.options.scrub_interval, 2.5);
  EXPECT_TRUE(r.leftover.empty());
}

TEST(BenchCommonFlags, IntegrityFlagsAcceptZeroAndStayNulloptWhenUnset) {
  // Unlike --churn-rate, zero is meaningful for all three: rot off,
  // no Byzantine nodes, scrubbing disabled.
  const auto zero =
      parse({"--rot-rate", "0", "--byzantine-rate", "0", "--scrub-interval", "0"});
  EXPECT_DOUBLE_EQ(*zero.options.rot_rate, 0.0);
  EXPECT_DOUBLE_EQ(*zero.options.byzantine_rate, 0.0);
  EXPECT_DOUBLE_EQ(*zero.options.scrub_interval, 0.0);
  const auto unset = parse({"--trials", "3"});
  EXPECT_FALSE(unset.options.rot_rate.has_value());
  EXPECT_FALSE(unset.options.byzantine_rate.has_value());
  EXPECT_FALSE(unset.options.scrub_interval.has_value());
}

TEST(BenchCommonFlagsDeathTest, RejectsMalformedIntegrityFlags) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(parse({"--rot-rate", "-0.1"}), testing::ExitedWithCode(64), "--rot-rate");
  EXPECT_EXIT(parse({"--rot-rate", "fast"}), testing::ExitedWithCode(64), "--rot-rate");
  EXPECT_EXIT(parse({"--rot-rate", "inf"}), testing::ExitedWithCode(64), "--rot-rate");
  EXPECT_EXIT(parse({"--byzantine-rate", "1.5"}), testing::ExitedWithCode(64),
              "--byzantine-rate");
  EXPECT_EXIT(parse({"--byzantine-rate", "-0.2"}), testing::ExitedWithCode(64),
              "--byzantine-rate");
  EXPECT_EXIT(parse({"--byzantine-rate", "lots"}), testing::ExitedWithCode(64),
              "--byzantine-rate");
  EXPECT_EXIT(parse({"--scrub-interval", "-1"}), testing::ExitedWithCode(64),
              "--scrub-interval");
  EXPECT_EXIT(parse({"--scrub-interval", "nan"}), testing::ExitedWithCode(64),
              "--scrub-interval");
  EXPECT_EXIT(parse({"--scrub-interval"}), testing::ExitedWithCode(64),
              "missing its value");
}

TEST(BenchCommonFlagsDeathTest, RejectsUnknownArgumentsUnlessKept) {
  testing::GTEST_FLAG(death_test_style) = "threadsafe";
  EXPECT_EXIT(parse({"--frobnicate"}), testing::ExitedWithCode(64), "unknown argument");
  const auto kept = parse({"--benchmark_filter=BM_x", "--payload-bytes", "64k"},
                          UnknownArgs::kKeep);
  ASSERT_EQ(kept.leftover.size(), 1u);
  EXPECT_EQ(kept.leftover[0], "--benchmark_filter=BM_x");
  EXPECT_EQ(*kept.options.payload_bytes, std::size_t{64} << 10);
}

}  // namespace
}  // namespace prlc::bench
