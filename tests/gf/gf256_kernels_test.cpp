// Differential tests for the vectorized GF(2^8) kernels: every compiled
// variant must agree with the reference byte-wise product-table loop on
// randomized spans, including unaligned offsets and the lengths around
// every vector-width boundary where tail handling lives.
#include "gf/gf256_kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gf/gf256.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::gf {
namespace {

// Lengths straddling the 8-byte (scalar64), 16-byte (SSSE3) and 32/64-byte
// (AVX2) strides, plus 0/1 and a large one.
constexpr std::size_t kLengths[] = {0,  1,  7,  8,  9,   15,  16,  17,  31,   32,
                                    33, 63, 64, 65, 127, 128, 129, 257, 4096, 4097};
// Start offsets into the backing buffers — misaligns the spans relative to
// every vector width the kernels use.
constexpr std::size_t kOffsets[] = {0, 1, 3, 13};

std::vector<std::uint8_t> random_bytes(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> out(n);
  for (auto& v : out) v = static_cast<std::uint8_t>(rng.uniform(256));
  return out;
}

class Gf256KernelsTest : public ::testing::TestWithParam<Gf256Kernel> {};

TEST_P(Gf256KernelsTest, AxpyMatchesReference) {
  const Gf256Kernel kernel = GetParam();
  if (!gf256_kernel_runtime_ok(kernel)) {
    GTEST_SKIP() << gf256_kernel_name(kernel) << " not supported on this CPU";
  }
  const Gf256KernelOps& ops = gf256_kernel_ops(kernel);
  Rng rng(101);
  for (std::size_t offset : kOffsets) {
    for (std::size_t len : kLengths) {
      auto x = random_bytes(offset + len, rng);
      auto y = random_bytes(offset + len, rng);
      for (std::uint8_t a :
           {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{2}, std::uint8_t{0x1D},
            static_cast<std::uint8_t>(rng.uniform(256)), std::uint8_t{255}}) {
        auto expect = y;
        for (std::size_t i = 0; i < len; ++i) {
          expect[offset + i] ^= Gf256::mul(a, x[offset + i]);
        }
        auto got = y;
        ops.axpy(got.data() + offset, x.data() + offset, a, len);
        ASSERT_EQ(got, expect) << gf256_kernel_name(kernel) << " a=" << int(a)
                               << " len=" << len << " offset=" << offset;
      }
    }
  }
}

TEST_P(Gf256KernelsTest, MulRegionMatchesReferenceIncludingAliased) {
  const Gf256Kernel kernel = GetParam();
  if (!gf256_kernel_runtime_ok(kernel)) {
    GTEST_SKIP() << gf256_kernel_name(kernel) << " not supported on this CPU";
  }
  const Gf256KernelOps& ops = gf256_kernel_ops(kernel);
  Rng rng(102);
  for (std::size_t offset : kOffsets) {
    for (std::size_t len : kLengths) {
      const auto src = random_bytes(offset + len, rng);
      for (std::uint8_t a : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{0x53},
                             static_cast<std::uint8_t>(rng.uniform(256))}) {
        std::vector<std::uint8_t> expect(len);
        for (std::size_t i = 0; i < len; ++i) expect[i] = Gf256::mul(a, src[offset + i]);

        std::vector<std::uint8_t> dst(len, 0xEE);
        ops.mul_region(dst.data(), src.data() + offset, a, len);
        ASSERT_EQ(dst, expect) << gf256_kernel_name(kernel) << " a=" << int(a)
                               << " len=" << len << " offset=" << offset;

        // Aliased call (dst == src) is the scale() path.
        auto aliased = src;
        ops.mul_region(aliased.data() + offset, aliased.data() + offset, a, len);
        ASSERT_TRUE(std::equal(expect.begin(), expect.end(), aliased.begin() + offset))
            << gf256_kernel_name(kernel) << " aliased a=" << int(a) << " len=" << len;
      }
    }
  }
}

TEST_P(Gf256KernelsTest, DotMatchesReference) {
  const Gf256Kernel kernel = GetParam();
  if (!gf256_kernel_runtime_ok(kernel)) {
    GTEST_SKIP() << gf256_kernel_name(kernel) << " not supported on this CPU";
  }
  const Gf256KernelOps& ops = gf256_kernel_ops(kernel);
  Rng rng(103);
  for (std::size_t len : kLengths) {
    const auto a = random_bytes(len, rng);
    const auto b = random_bytes(len, rng);
    std::uint8_t expect = 0;
    for (std::size_t i = 0; i < len; ++i) expect ^= Gf256::mul(a[i], b[i]);
    EXPECT_EQ(ops.dot(a.data(), b.data(), len), expect)
        << gf256_kernel_name(kernel) << " len=" << len;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCompiledVariants, Gf256KernelsTest,
                         ::testing::ValuesIn(gf256_compiled_kernels()),
                         [](const ::testing::TestParamInfo<Gf256Kernel>& info) {
                           return gf256_kernel_name(info.param);
                         });

TEST(Gf256Kernels, DispatchPicksARuntimeSupportedVariant) {
  const Gf256Kernel active = gf256_active_kernel();
  EXPECT_TRUE(gf256_kernel_runtime_ok(active)) << gf256_kernel_name(active);
  EXPECT_STREQ(gf256_active_ops().name, gf256_kernel_name(active));
}

TEST(Gf256Kernels, ForceActiveKernelRedirectsGf256SpanOps) {
  const Gf256Kernel before = gf256_active_kernel();
  Rng rng(104);
  const auto x = random_bytes(1000, rng);
  const auto y0 = random_bytes(1000, rng);
  std::vector<std::vector<std::uint8_t>> results;
  for (Gf256Kernel k : gf256_compiled_kernels()) {
    if (!gf256_kernel_runtime_ok(k)) continue;
    gf256_force_active_kernel(k);
    EXPECT_EQ(gf256_active_kernel(), k);
    auto y = y0;
    Gf256::axpy(std::span<std::uint8_t>(y), 0x8F, std::span<const std::uint8_t>(x));
    results.push_back(std::move(y));
  }
  gf256_force_active_kernel(before);
  for (std::size_t i = 1; i < results.size(); ++i) EXPECT_EQ(results[i], results[0]);
}

TEST(Gf256Kernels, AxpyBatchMatchesPerRowAxpy) {
  Rng rng(105);
  const std::size_t n = 10000;  // > one 8 KiB tile, so tiling is exercised
  const std::size_t rows = 17;
  const auto x = random_bytes(n, rng);
  std::vector<std::vector<std::uint8_t>> targets;
  std::vector<std::uint8_t> coeffs;
  for (std::size_t r = 0; r < rows; ++r) {
    targets.push_back(random_bytes(n, rng));
    coeffs.push_back(static_cast<std::uint8_t>(r % 5 == 0 ? 0 : rng.uniform(256)));
  }
  auto expect = targets;
  for (std::size_t r = 0; r < rows; ++r) {
    Gf256::axpy(std::span<std::uint8_t>(expect[r]), coeffs[r],
                std::span<const std::uint8_t>(x));
  }
  std::vector<std::uint8_t*> ptrs;
  for (auto& t : targets) ptrs.push_back(t.data());
  Gf256::axpy_batch(std::span<std::uint8_t* const>(ptrs),
                    std::span<const std::uint8_t>(coeffs),
                    std::span<const std::uint8_t>(x));
  for (std::size_t r = 0; r < rows; ++r) EXPECT_EQ(targets[r], expect[r]) << "row " << r;
}

TEST(Gf256Kernels, ForcingUnsupportedVariantThrows) {
  for (Gf256Kernel k : {Gf256Kernel::kSsse3, Gf256Kernel::kAvx2}) {
    if (gf256_kernel_runtime_ok(k)) continue;
    EXPECT_THROW(gf256_force_active_kernel(k), PreconditionError);
  }
  SUCCEED();
}

}  // namespace
}  // namespace prlc::gf
