#include "gf/gf256.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace prlc::gf {
namespace {

/// Reference carry-less multiply mod 0x11D, bit by bit.
std::uint8_t slow_mul(std::uint8_t a, std::uint8_t b) {
  std::uint16_t acc = 0;
  std::uint16_t aa = a;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1 << bit)) acc ^= static_cast<std::uint16_t>(aa << bit);
  }
  for (int bit = 15; bit >= 8; --bit) {
    if (acc & (1 << bit)) acc ^= static_cast<std::uint16_t>(Gf256::modulus() << (bit - 8));
  }
  return static_cast<std::uint8_t>(acc);
}

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(Gf256::add(0x53, 0xCA), 0x53 ^ 0xCA);
  EXPECT_EQ(Gf256::sub(0x53, 0xCA), 0x53 ^ 0xCA);
}

TEST(Gf256, MulMatchesBitwiseReferenceExhaustively) {
  for (int a = 0; a < 256; ++a) {
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(Gf256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)),
                slow_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const auto s = static_cast<std::uint8_t>(a);
    EXPECT_EQ(Gf256::mul(s, 1), s);
    EXPECT_EQ(Gf256::mul(1, s), s);
    EXPECT_EQ(Gf256::mul(s, 0), 0);
    EXPECT_EQ(Gf256::mul(0, s), 0);
  }
}

TEST(Gf256, EveryNonzeroHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto s = static_cast<std::uint8_t>(a);
    EXPECT_EQ(Gf256::mul(s, Gf256::inv(s)), 1) << a;
  }
}

TEST(Gf256, InverseOfZeroThrows) { EXPECT_THROW(Gf256::inv(0), PreconditionError); }

TEST(Gf256, DivisionDefinition) {
  Rng rng(31);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(1 + rng.uniform(255));
    EXPECT_EQ(Gf256::mul(Gf256::div(a, b), b), a);
  }
  EXPECT_THROW(Gf256::div(5, 0), PreconditionError);
  EXPECT_EQ(Gf256::div(0, 7), 0);
}

TEST(Gf256, MulCommutativeAssociativeSampled) {
  Rng rng(32);
  for (int i = 0; i < 3000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(Gf256::mul(a, b), Gf256::mul(b, a));
    EXPECT_EQ(Gf256::mul(Gf256::mul(a, b), c), Gf256::mul(a, Gf256::mul(b, c)));
  }
}

TEST(Gf256, DistributivitySampled) {
  Rng rng(33);
  for (int i = 0; i < 3000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    const auto c = static_cast<std::uint8_t>(rng.uniform(256));
    EXPECT_EQ(Gf256::mul(a, Gf256::add(b, c)),
              Gf256::add(Gf256::mul(a, b), Gf256::mul(a, c)));
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  for (int a = 0; a < 256; ++a) {
    std::uint8_t acc = 1;
    for (std::uint32_t e = 0; e < 20; ++e) {
      EXPECT_EQ(Gf256::pow(static_cast<std::uint8_t>(a), e), acc) << a << "^" << e;
      acc = Gf256::mul(acc, static_cast<std::uint8_t>(a));
    }
  }
}

TEST(Gf256, PowZeroConventions) {
  EXPECT_EQ(Gf256::pow(0, 0), 1);
  EXPECT_EQ(Gf256::pow(0, 5), 0);
}

TEST(Gf256, PowLargeExponentMatchesSquareAndMultiply) {
  // Regression: log[a] * e used to be computed in uint32_t and wrapped for
  // e > UINT32_MAX / 254 (~16.9M), returning wrong powers for large
  // exponents. Square-and-multiply is the independent oracle.
  const auto pow_sm = [](std::uint8_t a, std::uint32_t e) {
    std::uint8_t result = 1;
    std::uint8_t base = a;
    while (e > 0) {
      if (e & 1) result = Gf256::mul(result, base);
      base = Gf256::mul(base, base);
      e >>= 1;
    }
    return result;
  };
  const std::uint32_t kExponents[] = {16'900'000u, (UINT32_MAX / 254u) + 1u, 0x87654321u,
                                      UINT32_MAX - 1, UINT32_MAX};
  for (std::uint32_t e : kExponents) {
    for (int a = 1; a < 256; ++a) {  // covers every log value 0..254
      ASSERT_EQ(Gf256::pow(static_cast<std::uint8_t>(a), e),
                pow_sm(static_cast<std::uint8_t>(a), e))
          << a << "^" << e;
    }
  }
}

TEST(Gf256, FermatOrder) {
  // a^255 == 1 for every nonzero a (multiplicative group order 255).
  for (int a = 1; a < 256; ++a) {
    EXPECT_EQ(Gf256::pow(static_cast<std::uint8_t>(a), 255), 1) << a;
  }
}

TEST(Gf256, AxpyMatchesScalarLoop) {
  Rng rng(34);
  std::vector<std::uint8_t> x(257);
  std::vector<std::uint8_t> y(257);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto& v : y) v = static_cast<std::uint8_t>(rng.uniform(256));
  for (std::uint8_t a : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{0x1D}, std::uint8_t{255}}) {
    auto expect = y;
    for (std::size_t i = 0; i < x.size(); ++i) {
      expect[i] = Gf256::add(expect[i], Gf256::mul(a, x[i]));
    }
    auto got = y;
    Gf256::axpy(std::span<std::uint8_t>(got), a, std::span<const std::uint8_t>(x));
    EXPECT_EQ(got, expect) << "a=" << int(a);
  }
}

TEST(Gf256, AxpyLengthMismatchThrows) {
  std::vector<std::uint8_t> x(4);
  std::vector<std::uint8_t> y(5);
  EXPECT_THROW(
      Gf256::axpy(std::span<std::uint8_t>(y), 3, std::span<const std::uint8_t>(x)),
      PreconditionError);
}

TEST(Gf256, ScaleMatchesScalarLoop) {
  Rng rng(35);
  std::vector<std::uint8_t> x(100);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform(256));
  for (std::uint8_t a : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{77}}) {
    auto expect = x;
    for (auto& v : expect) v = Gf256::mul(a, v);
    auto got = x;
    Gf256::scale(std::span<std::uint8_t>(got), a);
    EXPECT_EQ(got, expect);
  }
}

TEST(Gf256, DotMatchesScalarLoop) {
  Rng rng(36);
  std::vector<std::uint8_t> a(63);
  std::vector<std::uint8_t> b(63);
  for (auto& v : a) v = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.uniform(256));
  std::uint8_t expect = 0;
  for (std::size_t i = 0; i < a.size(); ++i) expect ^= Gf256::mul(a[i], b[i]);
  EXPECT_EQ(Gf256::dot(a, b), expect);
}

TEST(Gf256, MulRowConsistent) {
  for (int a = 0; a < 256; ++a) {
    const auto* row = Gf256::mul_row(static_cast<std::uint8_t>(a));
    for (int b = 0; b < 256; ++b) {
      ASSERT_EQ(row[b], Gf256::mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b)));
    }
  }
}

}  // namespace
}  // namespace prlc::gf
