#include "gf/gf2m.h"

#include <gtest/gtest.h>

#include <set>

#include "gf/field_concept.h"
#include "gf/gf256.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::gf {
namespace {

static_assert(FieldPolicy<Gf256>);
static_assert(FieldPolicy<Gf2m<1>>);
static_assert(FieldPolicy<Gf2m<4>>);
static_assert(FieldPolicy<Gf2m<16>>);

template <typename F>
class Gf2mTypedTest : public ::testing::Test {};

using SmallFields = ::testing::Types<Gf2m<1>, Gf2m<2>, Gf2m<4>, Gf2m<8>>;
TYPED_TEST_SUITE(Gf2mTypedTest, SmallFields);

TYPED_TEST(Gf2mTypedTest, AdditiveGroup) {
  using F = TypeParam;
  for (std::size_t a = 0; a < F::order(); ++a) {
    const auto sa = static_cast<typename F::Symbol>(a);
    EXPECT_EQ(F::add(sa, 0), sa);
    EXPECT_EQ(F::add(sa, sa), 0);  // characteristic 2
  }
}

TYPED_TEST(Gf2mTypedTest, MultiplicativeGroupExhaustive) {
  using F = TypeParam;
  for (std::size_t a = 1; a < F::order(); ++a) {
    const auto sa = static_cast<typename F::Symbol>(a);
    EXPECT_EQ(F::mul(sa, 1), sa);
    EXPECT_EQ(F::mul(sa, F::inv(sa)), 1) << "a=" << a;
  }
}

TYPED_TEST(Gf2mTypedTest, DistributivityExhaustiveOrSampled) {
  using F = TypeParam;
  const std::size_t n = F::order();
  const std::size_t stride = n <= 16 ? 1 : 7;  // full for tiny fields
  for (std::size_t a = 0; a < n; a += stride) {
    for (std::size_t b = 0; b < n; b += stride) {
      for (std::size_t c = 0; c < n; c += stride) {
        const auto sa = static_cast<typename F::Symbol>(a);
        const auto sb = static_cast<typename F::Symbol>(b);
        const auto sc = static_cast<typename F::Symbol>(c);
        ASSERT_EQ(F::mul(sa, F::add(sb, sc)), F::add(F::mul(sa, sb), F::mul(sa, sc)));
      }
    }
  }
}

TYPED_TEST(Gf2mTypedTest, MultiplicationClosedAndCommutative) {
  using F = TypeParam;
  for (std::size_t a = 0; a < F::order(); ++a) {
    for (std::size_t b = 0; b < F::order(); ++b) {
      const auto sa = static_cast<typename F::Symbol>(a);
      const auto sb = static_cast<typename F::Symbol>(b);
      const auto ab = F::mul(sa, sb);
      ASSERT_LT(ab, F::order());
      ASSERT_EQ(ab, F::mul(sb, sa));
    }
  }
}

TYPED_TEST(Gf2mTypedTest, GeneratorPowersCoverNonzeroElements) {
  using F = TypeParam;
  // 2 is the generator used to build the tables (for m=1 the generator is 1).
  const auto g = static_cast<typename F::Symbol>(F::order() > 2 ? 2 : 1);
  std::set<typename F::Symbol> seen;
  typename F::Symbol x = 1;
  for (std::size_t i = 0; i + 1 < F::order(); ++i) {
    seen.insert(x);
    x = F::mul(x, g);
  }
  EXPECT_EQ(x, 1);  // full multiplicative cycle
  EXPECT_EQ(seen.size(), F::order() - 1);
}

TYPED_TEST(Gf2mTypedTest, PowMatchesRepeatedMul) {
  using F = TypeParam;
  for (std::size_t a = 0; a < F::order(); ++a) {
    typename F::Symbol acc = 1;
    for (std::uint32_t e = 0; e < 8; ++e) {
      ASSERT_EQ(F::pow(static_cast<typename F::Symbol>(a), e), acc);
      acc = F::mul(acc, static_cast<typename F::Symbol>(a));
    }
  }
}

TEST(Gf2m, Gf2IsBooleanField) {
  EXPECT_EQ(Gf2::add(1, 1), 0);
  EXPECT_EQ(Gf2::mul(1, 1), 1);
  EXPECT_EQ(Gf2::mul(1, 0), 0);
  EXPECT_EQ(Gf2::inv(1), 1);
  EXPECT_THROW(Gf2::inv(0), PreconditionError);
}

TEST(Gf2m, Gf2m8MatchesGf256) {
  // Same primitive polynomial 0x11D, so arithmetic must agree exactly.
  Rng rng(41);
  for (int i = 0; i < 20000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.uniform(256));
    const auto b = static_cast<std::uint8_t>(rng.uniform(256));
    ASSERT_EQ(Gf2m<8>::mul(a, b), Gf256::mul(a, b));
  }
  for (int a = 1; a < 256; ++a) {
    ASSERT_EQ(Gf2m<8>::inv(static_cast<std::uint16_t>(a)),
              Gf256::inv(static_cast<std::uint8_t>(a)));
  }
}

TEST(Gf2m, LargeFieldInverses) {
  Rng rng(42);
  for (int i = 0; i < 5000; ++i) {
    const auto a = static_cast<std::uint16_t>(1 + rng.uniform(Gf2m<16>::order() - 1));
    ASSERT_EQ(Gf2m<16>::mul(a, Gf2m<16>::inv(a)), 1);
  }
}

TEST(Gf2m, AxpyAndDotGenericKernels) {
  using F = Gf16;
  Rng rng(43);
  std::vector<std::uint16_t> x(50);
  std::vector<std::uint16_t> y(50);
  for (auto& v : x) v = static_cast<std::uint16_t>(rng.uniform(F::order()));
  for (auto& v : y) v = static_cast<std::uint16_t>(rng.uniform(F::order()));
  const auto a = static_cast<std::uint16_t>(7);
  auto expect = y;
  for (std::size_t i = 0; i < x.size(); ++i) expect[i] ^= F::mul(a, x[i]);
  auto got = y;
  F::axpy(std::span<std::uint16_t>(got), a, std::span<const std::uint16_t>(x));
  EXPECT_EQ(got, expect);

  std::uint16_t dot_expect = 0;
  for (std::size_t i = 0; i < x.size(); ++i) dot_expect ^= F::mul(x[i], y[i]);
  EXPECT_EQ(F::dot(x, y), dot_expect);
}

TEST(Gf2m, PrimitivePolynomialBounds) {
  EXPECT_THROW(primitive_polynomial(0), PreconditionError);
  EXPECT_THROW(primitive_polynomial(17), PreconditionError);
  EXPECT_EQ(primitive_polynomial(8), 0x11Du);
}

}  // namespace
}  // namespace prlc::gf
