#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gf/gf256.h"
#include "gf/gf256_kernels.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::gf {
namespace {

/// Restores the process-wide tile size on scope exit so this test cannot
/// perturb the other kernel tests in the binary.
struct TileGuard {
  std::size_t saved = gf256_tile_bytes();
  ~TileGuard() { gf256_set_tile_bytes(saved); }
};

TEST(Gf256Tile, SetterRoundTripsAndValidates) {
  TileGuard guard;
  gf256_set_tile_bytes(32768);
  EXPECT_EQ(gf256_tile_bytes(), 32768u);
  gf256_set_tile_bytes(kGf256TileMin);
  EXPECT_EQ(gf256_tile_bytes(), kGf256TileMin);
  EXPECT_THROW(gf256_set_tile_bytes(0), PreconditionError);
  EXPECT_THROW(gf256_set_tile_bytes(kGf256TileMin - 1), PreconditionError);
  EXPECT_THROW(gf256_set_tile_bytes(kGf256TileMax + 1), PreconditionError);
}

TEST(Gf256Tile, AxpyBatchIsTileSizeInvariant) {
  TileGuard guard;
  Rng rng(31);
  const std::size_t n = 100000;  // several tiles at every candidate size
  const std::size_t rows = 7;
  std::vector<std::uint8_t> x(n);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform(256));
  std::vector<std::uint8_t> coeffs;
  for (std::size_t r = 0; r < rows; ++r) {
    coeffs.push_back(static_cast<std::uint8_t>(1 + rng.uniform(255)));
  }
  const std::vector<std::vector<std::uint8_t>> initial(rows, x);

  std::vector<std::vector<std::uint8_t>> want;
  for (const std::size_t tile : {std::size_t{64}, std::size_t{4096}, std::size_t{32768},
                                 std::size_t{131072}}) {
    gf256_set_tile_bytes(tile);
    auto targets = initial;
    std::vector<std::uint8_t*> ptrs;
    for (auto& t : targets) ptrs.push_back(t.data());
    Gf256::axpy_batch(std::span<std::uint8_t* const>(ptrs),
                      std::span<const std::uint8_t>(coeffs),
                      std::span<const std::uint8_t>(x));
    if (want.empty()) {
      want = targets;
    } else {
      EXPECT_EQ(targets, want) << "tile " << tile << " changed axpy_batch output";
    }
  }
}

TEST(Gf256Tile, AutotunePicksACandidateWithoutSettingIt) {
  TileGuard guard;
  gf256_set_tile_bytes(8192);
  const std::size_t candidates[] = {16384, 65536};
  const std::size_t best = gf256_autotune_tile_bytes(candidates);
  EXPECT_TRUE(best == 16384 || best == 65536);
  EXPECT_EQ(gf256_tile_bytes(), 8192u);  // autotune only measures
}

}  // namespace
}  // namespace prlc::gf
