// Differential fuzz for the GF(2^64) homomorphic fingerprint: field
// axioms against the reference multiply, the GF(2^8) embedding against
// gf::Gf256's own product table, and the coding homomorphism
// fp(sum gamma_j s_j) = sum embed(gamma_j) fp(s_j) over random payloads,
// random (GF(2) and GF(256)) coefficients, and unaligned sizes.
#include "util/gf64_fingerprint.h"

#include <gtest/gtest.h>

#include <vector>

#include "gf/gf256.h"
#include "util/random.h"

namespace prlc::util {
namespace {

TEST(Gf64, FieldAxiomsOnRandomElements) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t a = rng();
    const std::uint64_t b = rng();
    const std::uint64_t c = rng();
    EXPECT_EQ(gf64_mul(a, b), gf64_mul(b, a));
    EXPECT_EQ(gf64_mul(a, gf64_mul(b, c)), gf64_mul(gf64_mul(a, b), c));
    EXPECT_EQ(gf64_mul(a, b ^ c), gf64_mul(a, b) ^ gf64_mul(a, c));  // distributive
    EXPECT_EQ(gf64_mul(a, 1), a);
    EXPECT_EQ(gf64_mul(a, 0), 0u);
  }
}

TEST(Gf64, EveryNonzeroElementHasOrderDividingGroupOrder) {
  // a^(2^64-1) = 1 for a != 0 — catches any reduction-polynomial slip
  // (a non-irreducible modulus would yield zero divisors instead).
  Rng rng(11);
  for (int i = 0; i < 64; ++i) {
    std::uint64_t a = rng();
    if (a == 0) a = 1;
    EXPECT_EQ(gf64_pow(a, ~std::uint64_t{0}), 1u);
  }
}

TEST(Gf64, EmbeddingIsAFieldHomomorphism) {
  // Exhaustive over all 256x256 products: embed must carry gf::Gf256's
  // multiplication (modulus 0x11D) into GF(2^64) multiplication.
  EXPECT_EQ(gf64_embed(0), 0u);
  EXPECT_EQ(gf64_embed(1), 1u);
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      const auto prod = gf::Gf256::mul(static_cast<std::uint8_t>(a),
                                       static_cast<std::uint8_t>(b));
      ASSERT_EQ(gf64_embed(prod),
                gf64_mul(gf64_embed(static_cast<std::uint8_t>(a)),
                         gf64_embed(static_cast<std::uint8_t>(b))))
          << "a=" << a << " b=" << b;
    }
    // Additivity (embed is GF(2)-linear by construction, assert anyway).
    ASSERT_EQ(gf64_embed(static_cast<std::uint8_t>(a ^ 0x5b)),
              gf64_embed(static_cast<std::uint8_t>(a)) ^ gf64_embed(0x5b));
  }
}

TEST(Gf64, EmbeddingIsInjective) {
  std::vector<std::uint64_t> seen;
  for (unsigned a = 0; a < 256; ++a) seen.push_back(gf64_embed(static_cast<std::uint8_t>(a)));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(Gf64Fingerprint, TablesMatchReferenceMultiply) {
  const Fingerprinter fp(99);
  Rng rng(3);
  std::vector<std::uint8_t> payload(257);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  // Recompute the Horner evaluation with the slow reference multiply.
  std::uint64_t acc = 0;
  for (const std::uint8_t byte : payload) {
    acc = gf64_mul(acc, fp.point()) ^ gf64_embed(byte);
  }
  EXPECT_EQ(fp.fingerprint(payload), acc);
}

TEST(Gf64Fingerprint, SeedDeterminesPointDeterministically) {
  EXPECT_EQ(Fingerprinter(42).point(), Fingerprinter(42).point());
  EXPECT_NE(Fingerprinter(42).point(), Fingerprinter(43).point());
  EXPECT_NE(Fingerprinter(0).point(), 0u);  // the point is never zero
}

TEST(Gf64Fingerprint, DetectsSingleBitFlips) {
  const Fingerprinter fp(1234);
  Rng rng(5);
  std::vector<std::uint8_t> payload(100);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
  const std::uint64_t clean = fp.fingerprint(payload);
  for (int i = 0; i < 200; ++i) {
    const std::size_t at = rng.uniform(payload.size());
    const auto mask = static_cast<std::uint8_t>(1 + rng.uniform(255));
    payload[at] ^= mask;
    EXPECT_NE(fp.fingerprint(payload), clean);
    payload[at] ^= mask;
  }
}

/// The acceptance-criteria fuzz: random source blocks, random coefficient
/// vectors (dense GF(256), sparse, and GF(2)-only), unaligned payload
/// sizes — the combined source fingerprints must always predict the coded
/// payload's fingerprint exactly.
TEST(Gf64Fingerprint, HomomorphismFuzzAcrossSizesAndCoefficientFields) {
  Rng rng(0xF00D);
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + rng.uniform(24);               // source blocks
    const std::size_t size = 1 + rng.uniform(515);           // deliberately unaligned
    const Fingerprinter fp(rng());
    std::vector<std::vector<std::uint8_t>> sources(n, std::vector<std::uint8_t>(size));
    std::vector<std::uint64_t> fps(n);
    for (std::size_t j = 0; j < n; ++j) {
      for (auto& b : sources[j]) b = static_cast<std::uint8_t>(rng());
      fps[j] = fp.fingerprint(sources[j]);
    }
    for (int combo = 0; combo < 8; ++combo) {
      std::vector<std::uint8_t> coeffs(n);
      const int mode = combo % 3;  // 0: dense GF(256), 1: GF(2), 2: sparse
      for (auto& c : coeffs) {
        if (mode == 0) {
          c = static_cast<std::uint8_t>(rng());
        } else if (mode == 1) {
          c = static_cast<std::uint8_t>(rng() & 1);
        } else {
          c = rng.bernoulli(0.3) ? static_cast<std::uint8_t>(rng()) : 0;
        }
      }
      std::vector<std::uint8_t> coded(size, 0);
      for (std::size_t j = 0; j < n; ++j) {
        if (coeffs[j] != 0) gf::Gf256::axpy(coded, coeffs[j], sources[j]);
      }
      ASSERT_EQ(fp.fingerprint(coded), fp.combine(coeffs, fps))
          << "round=" << round << " combo=" << combo << " size=" << size;
    }
  }
}

TEST(Gf64Fingerprint, SparseCombineMatchesDense) {
  Rng rng(21);
  const Fingerprinter fp(77);
  const std::size_t n = 40;
  std::vector<std::uint64_t> fps(n);
  for (auto& f : fps) f = rng();
  std::vector<std::uint8_t> dense(n, 0);
  std::vector<std::uint32_t> indices;
  std::vector<std::uint8_t> values;
  for (std::size_t j = 0; j < n; ++j) {
    if (!rng.bernoulli(0.2)) continue;
    const auto v = static_cast<std::uint8_t>(1 + rng.uniform(255));
    dense[j] = v;
    indices.push_back(static_cast<std::uint32_t>(j));
    values.push_back(v);
  }
  EXPECT_EQ(fp.combine_sparse(indices, values, fps), fp.combine(dense, fps));
}

TEST(Gf64Fingerprint, BuildManifestCoversEveryBlock) {
  Rng rng(8);
  const std::size_t blocks = 7, size = 13;
  std::vector<std::uint8_t> source(blocks * size);
  for (auto& b : source) b = static_cast<std::uint8_t>(rng());
  const FingerprintManifest manifest = build_manifest(500, source, size);
  EXPECT_EQ(manifest.block_size, size);
  ASSERT_EQ(manifest.fingerprints.size(), blocks);
  const Fingerprinter fp(500);
  for (std::size_t j = 0; j < blocks; ++j) {
    EXPECT_EQ(manifest.fingerprints[j],
              fp.fingerprint(std::span<const std::uint8_t>(source).subspan(j * size, size)));
  }
}

}  // namespace
}  // namespace prlc::util
