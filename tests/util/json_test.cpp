#include "util/json.h"

#include <gtest/gtest.h>

#include <string>

#include "util/check.h"

namespace prlc::json {
namespace {

TEST(JsonValue, BuildAndDumpCompact) {
  Value root = Value::object();
  root.set("name", Value("prlc"));
  root.set("count", Value(3));
  root.set("ratio", Value(0.5));
  root.set("ok", Value(true));
  root.set("none", Value(nullptr));
  Value arr = Value::array();
  arr.push_back(Value(1));
  arr.push_back(Value(2));
  root.set("xs", std::move(arr));
  EXPECT_EQ(root.dump(),
            R"({"name":"prlc","count":3,"ratio":0.5,"ok":true,"none":null,"xs":[1,2]})");
}

TEST(JsonValue, ObjectKeysKeepInsertionOrderAndOverwriteInPlace) {
  Value v = Value::object();
  v.set("b", Value(1));
  v.set("a", Value(2));
  v.set("b", Value(3));  // overwrite keeps position
  EXPECT_EQ(v.dump(), R"({"b":3,"a":2})");
  EXPECT_EQ(v.size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("b").as_double(), 3.0);
}

TEST(JsonValue, PrettyPrint) {
  Value v = Value::object();
  v.set("a", Value(1));
  EXPECT_EQ(v.dump(2), "{\n  \"a\": 1\n}");
}

TEST(JsonValue, EscapesStrings) {
  EXPECT_EQ(escape("a\"b\\c\n\t\x01"), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  Value v = Value("tab\there");
  EXPECT_EQ(v.dump(), R"("tab\there")");
}

TEST(JsonValue, EscapePassesValidUtf8AndReplacesInvalidBytes) {
  // Well-formed multi-byte sequences pass through untouched.
  EXPECT_EQ(escape("lat\xC3\xADn \xE2\x82\xAC \xF0\x9F\x94\xA7"),
            "\"lat\xC3\xADn \xE2\x82\xAC \xF0\x9F\x94\xA7\"");
  // Each invalid byte becomes one U+FFFD, resynchronising afterwards.
  const std::string fffd = "\xEF\xBF\xBD";
  EXPECT_EQ(escape("a\x80z"), "\"a" + fffd + "z\"");                // stray continuation
  EXPECT_EQ(escape("a\xC3"), "\"a" + fffd + "\"");                  // truncated 2-byte
  EXPECT_EQ(escape("a\xC0\xAFz"), "\"a" + fffd + fffd + "z\"");     // overlong '/'
  EXPECT_EQ(escape("a\xED\xA0\x80z"),
            "\"a" + fffd + fffd + fffd + "z\"");                    // UTF-8 surrogate
  EXPECT_EQ(escape("a\xF4\x90\x80\x80z"),
            "\"a" + fffd + fffd + fffd + fffd + "z\"");             // > U+10FFFF
  // Escape output must always reparse — the writer's core guarantee.
  EXPECT_EQ(Value::parse(escape("k\x01\x80v")).as_string(),
            "k\x01" + fffd + "v");
}

TEST(JsonValue, ParseRejectsRawControlCharactersInStrings) {
  EXPECT_THROW(Value::parse("\"a\x01b\""), PreconditionError);
  EXPECT_THROW(Value::parse("\"a\nb\""), PreconditionError);
  EXPECT_THROW(Value::parse(std::string("\"a\0b\"", 5)), PreconditionError);
}

TEST(JsonValue, ParseRoundTrip) {
  const std::string text =
      R"({"name":"x","n":42,"neg":-1.5,"exp":2e3,"ok":false,"none":null,)"
      R"("xs":[1,[2,3],{"k":"v"}]})";
  const Value v = Value::parse(text);
  EXPECT_EQ(v.at("name").as_string(), "x");
  EXPECT_DOUBLE_EQ(v.at("n").as_double(), 42.0);
  EXPECT_DOUBLE_EQ(v.at("neg").as_double(), -1.5);
  EXPECT_DOUBLE_EQ(v.at("exp").as_double(), 2000.0);
  EXPECT_FALSE(v.at("ok").as_bool());
  EXPECT_TRUE(v.at("none").is_null());
  EXPECT_EQ(v.at("xs").size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("xs").at(1).at(0).as_double(), 2.0);
  EXPECT_EQ(v.at("xs").at(2).at("k").as_string(), "v");
  // Re-dump of a parse is itself parseable and equal.
  EXPECT_EQ(Value::parse(v.dump()).dump(), v.dump());
}

TEST(JsonValue, ParseStringEscapes) {
  const Value v = Value::parse(R"("a\"\\\/\nAé")");
  EXPECT_EQ(v.as_string(), "a\"\\/\nA\xC3\xA9");
}

TEST(JsonValue, ParseRejectsMalformedInput) {
  EXPECT_THROW(Value::parse(""), PreconditionError);
  EXPECT_THROW(Value::parse("{"), PreconditionError);
  EXPECT_THROW(Value::parse("[1,]"), PreconditionError);
  EXPECT_THROW(Value::parse("{'a':1}"), PreconditionError);
  EXPECT_THROW(Value::parse("01"), PreconditionError);
  EXPECT_THROW(Value::parse("1 2"), PreconditionError);          // trailing garbage
  EXPECT_THROW(Value::parse(R"({"a":1,"a":2})"), PreconditionError);  // dup key
  EXPECT_THROW(Value::parse("nul"), PreconditionError);
}

TEST(JsonValue, AccessorsRejectKindMismatch) {
  const Value v = Value(1.0);
  EXPECT_THROW(v.as_string(), PreconditionError);
  EXPECT_THROW(v.at("k"), PreconditionError);
  EXPECT_THROW(v.at(std::size_t{0}), PreconditionError);
  const Value obj = Value::object();
  EXPECT_THROW(obj.at("missing"), PreconditionError);
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonValue, IntegersDumpWithoutDecimalPoint) {
  EXPECT_EQ(Value(7).dump(), "7");
  EXPECT_EQ(Value(std::uint64_t{1} << 40).dump(), "1099511627776");
  EXPECT_EQ(Value(-3.25).dump(), "-3.25");
}

TEST(JsonFileIo, WriteThenReadRoundTrips) {
  const std::string path = ::testing::TempDir() + "json_test_io.json";
  write_file(path, R"({"a": 1})");
  EXPECT_EQ(read_file(path), "{\"a\": 1}\n");
  EXPECT_THROW(read_file(path + ".does-not-exist"), PreconditionError);
}

}  // namespace
}  // namespace prlc::json
