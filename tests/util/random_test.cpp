#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace prlc {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformStaysBelowBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversAllResidues) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformBoundOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformRejectsZeroBound) {
  Rng rng(5);
  EXPECT_THROW(rng.uniform(0), PreconditionError);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(6);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(8);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / 20000, 0.3, 0.02);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(10);
  const std::vector<double> w = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 30000; ++i) ++counts[rng.discrete(w)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 30000.0, 0.6, 0.02);
}

TEST(Rng, DiscreteRejectsBadWeights) {
  Rng rng(11);
  const std::vector<double> empty;
  EXPECT_THROW(rng.discrete(empty), PreconditionError);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(rng.discrete(zeros), PreconditionError);
  const std::vector<double> negative = {0.5, -0.1};
  EXPECT_THROW(rng.discrete(negative), PreconditionError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(12);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(std::span<int>(shuffled));
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));  // astronomically unlikely
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(13);
  for (std::size_t k : {0u, 1u, 5u, 50u, 99u, 100u}) {
    const auto sample = rng.sample_without_replacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (std::size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(14);
  EXPECT_THROW(rng.sample_without_replacement(5, 6), PreconditionError);
}

TEST(Rng, SampleWithoutReplacementIsUniform) {
  Rng rng(15);
  std::vector<int> counts(10, 0);
  for (int trial = 0; trial < 20000; ++trial) {
    for (std::size_t s : rng.sample_without_replacement(10, 3)) ++counts[s];
  }
  for (int c : counts) EXPECT_NEAR(c / 20000.0, 0.3, 0.03);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(16);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1() == child2()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(AliasTable, MatchesWeights) {
  Rng rng(17);
  const std::vector<double> w = {0.5, 0.0, 2.0, 1.5};
  AliasTable table{std::span<const double>(w)};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[table.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 40000.0, 0.125, 0.01);
  EXPECT_NEAR(counts[2] / 40000.0, 0.5, 0.015);
  EXPECT_NEAR(counts[3] / 40000.0, 0.375, 0.015);
}

TEST(AliasTable, SingleCategory) {
  Rng rng(18);
  const std::vector<double> w = {3.0};
  AliasTable table{std::span<const double>(w)};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.sample(rng), 0u);
}

TEST(AliasTable, RejectsAllZero) {
  const std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(AliasTable{std::span<const double>(w)}, PreconditionError);
}

TEST(SplitMix, KnownNonDegenerate) {
  std::uint64_t s = 0;
  const auto a = splitmix64_next(s);
  const auto b = splitmix64_next(s);
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

}  // namespace
}  // namespace prlc
