#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace prlc {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderr_mean(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  RunningStats s;
  for (double x : xs) s.add(x);
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-12);
  EXPECT_NEAR(s.variance(), var, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 32.0);
}

TEST(RunningStats, Ci95Formula) {
  RunningStats s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i % 10));
  EXPECT_NEAR(s.ci95_halfwidth(), 1.96 * s.stddev() / 10.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(21);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform_double() * 10 - 5;
    whole.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Quantile, OrderStatistics) {
  const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.35), 3.5);
}

TEST(Quantile, RejectsBadInput) {
  const std::vector<double> empty;
  EXPECT_THROW(quantile(empty, 0.5), PreconditionError);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(quantile(xs, 1.5), PreconditionError);
}

TEST(Quantile, IgnoresNaNs) {
  const double nan = std::nan("");
  const std::vector<double> xs = {nan, 5.0, 1.0, nan, 3.0, 2.0, 4.0, nan};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  const std::vector<double> all_nan = {nan, nan};
  EXPECT_THROW(quantile(all_nan, 0.5), PreconditionError);
}

TEST(RunningStats, EmptyExtremesThrow) {
  const RunningStats s;
  EXPECT_THROW(s.min(), PreconditionError);
  EXPECT_THROW(s.max(), PreconditionError);
}

TEST(Histogram, BinsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  h.add(10.0);  // overflow
  h.add(-0.1);  // underflow
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
}

TEST(Histogram, NanSamplesCountedSeparately) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(std::nan(""));
  h.add(std::nan(""));
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.nan(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.underflow(), 0u);
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

}  // namespace
}  // namespace prlc
