#include "util/check.h"

#include <gtest/gtest.h>

#include <string>

namespace prlc {
namespace {

TEST(Check, RequirePassesOnTrue) { EXPECT_NO_THROW(PRLC_REQUIRE(1 + 1 == 2, "fine")); }

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(PRLC_REQUIRE(false, "nope"), PreconditionError);
}

TEST(Check, AssertThrowsInvariantError) {
  EXPECT_THROW(PRLC_ASSERT(false, "bug"), InvariantError);
}

TEST(Check, MessageContainsExpressionAndDetail) {
  try {
    PRLC_REQUIRE(2 > 3, "two is not bigger");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("two is not bigger"), std::string::npos);
  }
}

TEST(Check, ErrorsAreLogicErrors) {
  EXPECT_THROW(PRLC_REQUIRE(false, ""), std::logic_error);
  EXPECT_THROW(PRLC_ASSERT(false, ""), std::logic_error);
}

}  // namespace
}  // namespace prlc
