#include "util/flags.h"

#include <gtest/gtest.h>

namespace prlc {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> v(args);
  return Flags::parse(static_cast<int>(v.size()), v.data());
}

TEST(Flags, SpaceAndEqualsForms) {
  const auto f = make({"--alpha", "2.5", "--name=plc"});
  EXPECT_DOUBLE_EQ(f.get_double("alpha", 0), 2.5);
  EXPECT_EQ(f.get_string("name", ""), "plc");
}

TEST(Flags, Defaults) {
  const auto f = make({});
  EXPECT_EQ(f.get_int("missing", 42), 42);
  EXPECT_EQ(f.get_string("missing", "x"), "x");
  EXPECT_TRUE(f.get_bool("missing", true));
}

TEST(Flags, BooleanStyles) {
  const auto f = make({"--verbose", "--flag1", "on", "--flag2=false"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  EXPECT_TRUE(f.get_bool("flag1", false));
  EXPECT_FALSE(f.get_bool("flag2", true));
  EXPECT_THROW(make({"--x", "maybe"}).get_bool("x", false), PreconditionError);
}

TEST(Flags, Positional) {
  const auto f = make({"pos1", "--k", "1", "pos2"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "pos1");
  EXPECT_EQ(f.positional()[1], "pos2");
}

TEST(Flags, Lists) {
  const auto f = make({"--dist", "0.5,0.3,0.2", "--levels=1,2,3"});
  EXPECT_EQ(f.get_double_list("dist", {}), (std::vector<double>{0.5, 0.3, 0.2}));
  EXPECT_EQ(f.get_size_list("levels", {}), (std::vector<std::size_t>{1, 2, 3}));
  EXPECT_THROW(make({"--l", "1,x"}).get_double_list("l", {}), PreconditionError);
  EXPECT_THROW(make({"--l", "1.5,2"}).get_size_list("l", {}), PreconditionError);
}

TEST(Flags, TypeErrors) {
  EXPECT_THROW(make({"--n", "abc"}).get_int("n", 0), PreconditionError);
  EXPECT_THROW(make({"--d", "1.2.3"}).get_double("d", 0), PreconditionError);
}

TEST(Flags, UnusedDetection) {
  const auto f = make({"--used", "1", "--typo", "2"});
  f.get_int("used", 0);
  const auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, BareDashesRejected) {
  EXPECT_THROW(make({"--"}), PreconditionError);
}

}  // namespace
}  // namespace prlc
