#include "util/table_printer.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace prlc {
namespace {

TEST(TablePrinter, AlignedTextOutput) {
  TablePrinter t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("| name  | value |"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 12345 |"), std::string::npos);
}

TEST(TablePrinter, RowWidthEnforced) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(TablePrinter, EmptyHeaderRejected) {
  EXPECT_THROW(TablePrinter{std::vector<std::string>{}}, PreconditionError);
}

TEST(TablePrinter, CsvEscaping) {
  TablePrinter t({"k", "v"});
  t.add_row({"with,comma", "with\"quote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(TablePrinter, CsvRoundTripPlainCells) {
  TablePrinter t({"x"});
  t.add_row({"plain"});
  EXPECT_EQ(t.to_csv(), "x\nplain\n");
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-0.5, 3), "-0.500");
}

TEST(FmtMeanCi, Layout) { EXPECT_EQ(fmt_mean_ci(1.5, 0.25, 2), "1.50 ± 0.25"); }

}  // namespace
}  // namespace prlc
