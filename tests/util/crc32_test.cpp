#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace prlc {
namespace {

std::vector<std::uint8_t> bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Crc32, KnownVectors) {
  // Standard CRC-32 (IEEE) test vectors.
  EXPECT_EQ(crc32(bytes("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(crc32(bytes("The quick brown fox jumps over the lazy dog")), 0x414FA339u);
}

TEST(Crc32, SensitiveToEveryBit) {
  auto data = bytes("hello, prlc");
  const auto base = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      auto copy = data;
      copy[i] ^= static_cast<std::uint8_t>(1 << bit);
      ASSERT_NE(crc32(copy), base) << "byte " << i << " bit " << bit;
    }
  }
}

TEST(Crc32, ChainingMatchesOneShot) {
  const auto whole = bytes("first-half|second-half");
  const auto left = bytes("first-half|");
  const auto right = bytes("second-half");
  EXPECT_EQ(crc32(right, crc32(left)), crc32(whole));
}

TEST(Crc32, OrderMatters) {
  EXPECT_NE(crc32(bytes("ab")), crc32(bytes("ba")));
}

}  // namespace
}  // namespace prlc
