#include "util/logprob.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace prlc {
namespace {

TEST(LogFactorial, SmallValuesExact) {
  LogFactorialTable lf(16);
  EXPECT_DOUBLE_EQ(lf(0), 0.0);
  EXPECT_DOUBLE_EQ(lf(1), 0.0);
  EXPECT_NEAR(lf(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(lf(5), std::log(120.0), 1e-12);
  EXPECT_NEAR(lf(10), std::log(3628800.0), 1e-9);
}

TEST(LogFactorial, GrowsOnDemand) {
  LogFactorialTable lf(4);
  EXPECT_NEAR(lf(100), 363.73937555556349, 1e-8);  // ln(100!)
}

TEST(LogFactorial, StirlingAgreement) {
  LogFactorialTable lf;
  const double n = 5000;
  const double stirling = n * std::log(n) - n + 0.5 * std::log(2 * M_PI * n);
  EXPECT_NEAR(lf(5000), stirling, 0.01);
}

TEST(LogBinomial, MatchesDirect) {
  LogFactorialTable lf;
  EXPECT_NEAR(std::exp(lf.log_binomial(10, 3)), 120.0, 1e-9);
  EXPECT_NEAR(std::exp(lf.log_binomial(52, 5)), 2598960.0, 1e-3);
  EXPECT_EQ(lf.log_binomial(3, 5), -std::numeric_limits<double>::infinity());
}

TEST(BinomialPmf, SumsToOne) {
  LogFactorialTable lf;
  for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    double total = 0;
    for (std::size_t k = 0; k <= 40; ++k) total += lf.binomial_pmf(40, p, k);
    EXPECT_NEAR(total, 1.0, 1e-10) << "p=" << p;
  }
}

TEST(BinomialPmf, EdgeCases) {
  LogFactorialTable lf;
  EXPECT_DOUBLE_EQ(lf.binomial_pmf(10, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(lf.binomial_pmf(10, 0.0, 1), 0.0);
  EXPECT_DOUBLE_EQ(lf.binomial_pmf(10, 1.0, 10), 1.0);
  EXPECT_DOUBLE_EQ(lf.binomial_pmf(10, 0.5, 11), 0.0);
  EXPECT_THROW(lf.binomial_pmf(10, 1.5, 3), PreconditionError);
}

TEST(BinomialTail, MatchesSummation) {
  LogFactorialTable lf;
  const std::size_t n = 30;
  const double p = 0.37;
  for (std::size_t k = 0; k <= n + 1; ++k) {
    double direct = 0;
    for (std::size_t j = k; j <= n; ++j) direct += lf.binomial_pmf(n, p, j);
    EXPECT_NEAR(lf.binomial_tail_ge(n, p, k), direct, 1e-10) << "k=" << k;
  }
}

TEST(PoissonPmf, SumsToOne) {
  LogFactorialTable lf;
  for (double mu : {0.001, 0.5, 3.0, 25.0}) {
    double total = 0;
    for (std::size_t k = 0; k < 200; ++k) total += lf.poisson_pmf(mu, k);
    EXPECT_NEAR(total, 1.0, 1e-9) << "mu=" << mu;
  }
}

TEST(PoissonPmf, ZeroMean) {
  LogFactorialTable lf;
  EXPECT_DOUBLE_EQ(lf.poisson_pmf(0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(lf.poisson_pmf(0.0, 3), 0.0);
}

TEST(PoissonPmf, LargeMeanStable) {
  LogFactorialTable lf;
  // Mode of Poisson(1000) is ~ 1/sqrt(2 pi 1000).
  EXPECT_NEAR(lf.poisson_pmf(1000.0, 1000), 1.0 / std::sqrt(2 * M_PI * 1000.0), 1e-5);
}

TEST(LogAdd, BasicIdentities) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(log_add(-inf, std::log(2.0)), std::log(2.0));
  EXPECT_DOUBLE_EQ(log_add(std::log(3.0), -inf), std::log(3.0));
  EXPECT_NEAR(log_add(std::log(2.0), std::log(3.0)), std::log(5.0), 1e-12);
  EXPECT_NEAR(log_add(std::log(1e-300), std::log(1e-300)), std::log(2e-300), 1e-9);
}

TEST(Normalize, ScalesToUnitSum) {
  std::vector<double> w = {1.0, 3.0, 0.0, 4.0};
  normalize(w);
  EXPECT_NEAR(w[0], 0.125, 1e-12);
  EXPECT_NEAR(w[1], 0.375, 1e-12);
  EXPECT_DOUBLE_EQ(w[2], 0.0);
  EXPECT_NEAR(w[3], 0.5, 1e-12);
}

TEST(Normalize, RejectsBadInput) {
  std::vector<double> zeros = {0.0, 0.0};
  EXPECT_THROW(normalize(zeros), PreconditionError);
  std::vector<double> negative = {1.0, -0.5};
  EXPECT_THROW(normalize(negative), PreconditionError);
}

}  // namespace
}  // namespace prlc
