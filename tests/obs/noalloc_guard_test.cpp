// Zero-allocation guard for the telemetry hot paths.
//
// Separate test binary: it replaces the global operator new/delete with
// counting versions, which must not leak into the other test targets.
// The counters only count while armed, so gtest's own allocations stay
// invisible; each probe is exercised inside an armed window and the
// window must close with zero allocations.
//
// Two contracts are asserted:
//   * disabled probes (the default in production) never allocate, and
//   * enabled emit/sample inside an open TrialScope never allocate —
//     the rings preallocate at scope open, the emit is stores only.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace {

std::atomic<bool> g_armed{false};
std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  if (g_armed.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace prlc::obs {
namespace {

/// Run `body` with the allocation counter armed; return allocations seen.
template <typename Body>
std::uint64_t allocations_during(Body&& body) {
  g_allocs.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_relaxed);
  body();
  g_armed.store(false, std::memory_order_relaxed);
  return g_allocs.load(std::memory_order_relaxed);
}

TEST(NoAllocGuard, DisabledProbesNeverAllocate) {
  // Resolve every handle before arming: registration itself allocates.
  Counter& ctr = counter("test.noalloc.counter");
  Gauge& gauge_ = gauge("test.noalloc.gauge");
  LatencyHistogram& hist = histogram("test.noalloc.hist");
  const SeriesId id = timeseries("test.noalloc.series");
  set_enabled(false);
  set_events_enabled(false);
  set_timeseries_enabled(false);

  const std::uint64_t allocs = allocations_during([&] {
    for (int i = 0; i < 1000; ++i) {
      ctr.add(1);
      gauge_.set(i);
      hist.record(17);
      { ScopedTimer timer(hist); }
      emit(EventType::kPeel, 1.0);
      emit(EventType::kFetchRetry, 1.0, 2.0);
      sample(id, 3.0);
      set_logical_time(static_cast<std::uint64_t>(i));
      TrialScope scope(0, 0);  // disabled: must not open or preallocate
    }
  });
  EXPECT_EQ(allocs, 0u);
}

TEST(NoAllocGuard, EnabledEmitAndSampleAreStoresOnly) {
  const SeriesId id = timeseries("test.noalloc.enabled.series");
  reset_telemetry();
  set_events_enabled(true);
  set_timeseries_enabled(true);
  {
    // Scope open preallocates the rings — outside the armed window.
    TrialScope scope(begin_telemetry_run(), 0);
    const std::uint64_t allocs = allocations_during([&] {
      for (int i = 0; i < 1000; ++i) {
        set_logical_time(static_cast<std::uint64_t>(i));
        emit(EventType::kPeel, static_cast<double>(i));
        emit(EventType::kWatermarkAdvance, 1.0, 2.0);
        sample(id, static_cast<double>(i));
      }
    });
    EXPECT_EQ(allocs, 0u);
  }
  set_events_enabled(false);
  set_timeseries_enabled(false);
  reset_telemetry();
}

}  // namespace
}  // namespace prlc::obs
