#include "obs/events.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <thread>
#include <vector>

namespace prlc::obs {
namespace {

// Every test arms the journal and tears the whole telemetry state down so
// test order (and the metrics/trace tests in this binary) never shows.
class EventsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_telemetry();
    set_events_enabled(true);
  }
  void TearDown() override {
    set_events_enabled(false);
    set_timeseries_enabled(false);
    EventJournal::global().set_trial_capacity(1u << 16);
    reset_telemetry();
  }
};

TEST_F(EventsTest, WireNamesAndArgNamesAreStable) {
  EXPECT_STREQ(to_string(EventType::kNodeFailed), "node_failed");
  EXPECT_STREQ(to_string(EventType::kRefreshRound), "refresh_round");
  EXPECT_STREQ(to_string(EventType::kFetchRetry), "fetch_retry");
  EXPECT_STREQ(to_string(EventType::kFetchHedged), "fetch_hedged");
  EXPECT_STREQ(to_string(EventType::kBudgetExhausted), "budget_exhausted");
  EXPECT_STREQ(to_string(EventType::kWatermarkAdvance), "watermark_advance");
  EXPECT_STREQ(to_string(EventType::kRowDensified), "row_densified");
  EXPECT_STREQ(to_string(EventType::kPeel), "peel");
  EXPECT_STREQ(event_arg_names(EventType::kFetchRetry).names[0], "node");
  EXPECT_STREQ(event_arg_names(EventType::kFetchRetry).names[1], "attempt");
  EXPECT_EQ(event_arg_names(EventType::kFetchHedged).names[1], nullptr);
}

TEST_F(EventsTest, EmitOutsideAnyScopeIsDropped) {
  emit(EventType::kPeel, 3.0);
  set_logical_time(9);
  EXPECT_EQ(EventJournal::global().events(), 0u);
}

TEST_F(EventsTest, DisabledJournalRecordsNothing) {
  set_events_enabled(false);
  {
    TrialScope scope(begin_telemetry_run(), 0);
    emit(EventType::kPeel, 1.0);
  }
  EXPECT_EQ(EventJournal::global().events(), 0u);
}

TEST_F(EventsTest, ScopeRecordsAndExportsTypedArgs) {
  {
    TrialScope scope(begin_telemetry_run(), 7);
    set_logical_time(2);
    emit(EventType::kFetchRetry, 17.0, 1.0);
    emit(EventType::kNodeFailed, 4.0);
  }
  EXPECT_EQ(EventJournal::global().events(), 2u);
  const std::string jsonl = EventJournal::global().to_jsonl();
  EXPECT_EQ(jsonl,
            "{\"run\":0,\"trial\":7,\"t\":2,\"seq\":0,\"event\":\"fetch_retry\","
            "\"node\":17,\"attempt\":1}\n"
            "{\"run\":0,\"trial\":7,\"t\":2,\"seq\":1,\"event\":\"node_failed\","
            "\"node\":4}\n");
}

TEST_F(EventsTest, ExportSortsByRunTrialTimeSeq) {
  // Flush trials in scrambled order; export must sort, not keep flush order.
  const std::uint64_t run = begin_telemetry_run();
  {
    TrialScope scope(run, 5);
    set_logical_time(1);
    emit(EventType::kPeel, 5.0);
  }
  {
    TrialScope scope(run, 0);
    set_logical_time(3);
    emit(EventType::kPeel, 0.0);
  }
  const std::string jsonl = EventJournal::global().to_jsonl();
  const std::size_t trial0 = jsonl.find("\"trial\":0");
  const std::size_t trial5 = jsonl.find("\"trial\":5");
  ASSERT_NE(trial0, std::string::npos);
  ASSERT_NE(trial5, std::string::npos);
  EXPECT_LT(trial0, trial5);
}

TEST_F(EventsTest, RingOverflowKeepsNewestAndCountsDrops) {
  EventJournal::global().set_trial_capacity(4);
  {
    TrialScope scope(begin_telemetry_run(), 0);
    for (int i = 0; i < 10; ++i) emit(EventType::kPeel, static_cast<double>(i));
  }
  EXPECT_EQ(EventJournal::global().events(), 4u);
  EXPECT_EQ(EventJournal::global().dropped(), 6u);
  const std::string jsonl = EventJournal::global().to_jsonl();
  // Oldest surviving event is pivot 6; seq numbers keep their emission index.
  EXPECT_NE(jsonl.find("\"seq\":6,\"event\":\"peel\",\"pivot\":6"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"pivot\":5"), std::string::npos);
}

TEST_F(EventsTest, NestedScopeRestoresEnclosingContext) {
  const std::uint64_t run = begin_telemetry_run();
  {
    TrialScope outer(run, 0);
    set_logical_time(1);
    emit(EventType::kPeel, 0.0);
    {
      TrialScope inner(run, 1);
      emit(EventType::kPeel, 100.0);
    }
    // Back in the outer trial: its clock and seq stream must be intact.
    emit(EventType::kPeel, 1.0);
  }
  const std::string jsonl = EventJournal::global().to_jsonl();
  EXPECT_NE(jsonl.find("\"trial\":0,\"t\":1,\"seq\":0,\"event\":\"peel\",\"pivot\":0"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"trial\":0,\"t\":1,\"seq\":1,\"event\":\"peel\",\"pivot\":1"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"trial\":1,\"t\":0,\"seq\":0,\"event\":\"peel\",\"pivot\":100"),
            std::string::npos);
}

TEST_F(EventsTest, MergeIsByteIdenticalAcrossThreadAssignments) {
  // The same trials journal the same bytes whether they run serially or
  // scattered across threads in reverse order.
  auto run_trials = [](std::size_t threads) {
    reset_telemetry();
    const std::uint64_t run = begin_telemetry_run();
    auto one_trial = [run](std::uint64_t trial) {
      TrialScope scope(run, trial);
      for (std::uint64_t t = 0; t < 3; ++t) {
        set_logical_time(t);
        emit(EventType::kFetchRetry, static_cast<double>(trial),
             static_cast<double>(t));
      }
    };
    if (threads <= 1) {
      for (std::uint64_t trial = 0; trial < 8; ++trial) one_trial(trial);
    } else {
      std::vector<std::thread> pool;
      for (std::size_t w = 0; w < threads; ++w) {
        pool.emplace_back([&, w] {
          for (std::uint64_t trial = 7; trial + 1 > 0; --trial) {
            if (trial % threads == w) one_trial(trial);
          }
        });
      }
      for (auto& th : pool) th.join();
    }
    return EventJournal::global().to_jsonl();
  };
  const std::string serial = run_trials(1);
  EXPECT_EQ(serial, run_trials(2));
  EXPECT_EQ(serial, run_trials(8));
}

}  // namespace
}  // namespace prlc::obs
