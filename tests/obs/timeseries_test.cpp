#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.h"
#include "util/json.h"

namespace prlc::obs {
namespace {

class TimeSeriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_telemetry();
    set_timeseries_enabled(true);
  }
  void TearDown() override {
    set_timeseries_enabled(false);
    set_enabled(false);
    TimeSeriesRecorder::global().set_trial_capacity(1u << 16);
    reset_telemetry();
  }
};

TEST_F(TimeSeriesTest, SeriesIdsAreStablePerName) {
  auto& rec = TimeSeriesRecorder::global();
  const SeriesId a = rec.series("test.ts.alpha");
  const SeriesId b = rec.series("test.ts.beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.series("test.ts.alpha"), a);
}

TEST_F(TimeSeriesTest, SampleOutsideScopeOrDisabledIsDropped) {
  auto& rec = TimeSeriesRecorder::global();
  const SeriesId id = rec.series("test.ts.dropped");
  rec.sample(id, 1.0);  // no scope open
  set_timeseries_enabled(false);
  {
    TrialScope scope(begin_telemetry_run(), 0);
    rec.sample(id, 2.0);  // disabled
  }
  EXPECT_EQ(rec.samples(), 0u);
}

TEST_F(TimeSeriesTest, SamplesExportSortedWithLogicalTime) {
  auto& rec = TimeSeriesRecorder::global();
  const SeriesId margin = rec.series("test.ts.margin");
  {
    TrialScope scope(begin_telemetry_run(), 2);
    set_logical_time(3);
    rec.sample(margin, -4.0);
    set_logical_time(4);
    rec.sample(margin, 1.5);
  }
  EXPECT_EQ(rec.samples(), 2u);
  EXPECT_EQ(rec.to_jsonl(),
            "{\"run\":0,\"trial\":2,\"t\":3,\"seq\":0,\"series\":\"test.ts.margin\","
            "\"value\":-4}\n"
            "{\"run\":0,\"trial\":2,\"t\":4,\"seq\":1,\"series\":\"test.ts.margin\","
            "\"value\":1.5}\n");
}

TEST_F(TimeSeriesTest, ToJsonGroupsPointsPerSeries) {
  auto& rec = TimeSeriesRecorder::global();
  const SeriesId a = rec.series("test.ts.group.a");
  const SeriesId b = rec.series("test.ts.group.b");
  {
    TrialScope scope(begin_telemetry_run(), 0);
    set_logical_time(0);
    rec.sample(a, 1.0);
    rec.sample(b, 2.0);
    set_logical_time(1);
    rec.sample(a, 3.0);
  }
  const json::Value doc = json::Value::parse(rec.to_json());
  const json::Value* series = doc.find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_TRUE(series->is_array());
  EXPECT_EQ(series->size(), 2u);
}

TEST_F(TimeSeriesTest, RingOverflowCountsDrops) {
  auto& rec = TimeSeriesRecorder::global();
  rec.set_trial_capacity(2);
  const SeriesId id = rec.series("test.ts.overflow");
  {
    TrialScope scope(begin_telemetry_run(), 0);
    for (int i = 0; i < 5; ++i) rec.sample(id, static_cast<double>(i));
  }
  EXPECT_EQ(rec.samples(), 2u);
  EXPECT_EQ(rec.dropped(), 3u);
  // The newest samples survive.
  EXPECT_NE(rec.to_jsonl().find("\"value\":4"), std::string::npos);
}

TEST_F(TimeSeriesTest, WatchTickSnapshotsRegistryMetrics) {
  set_enabled(true);
  auto& rec = TimeSeriesRecorder::global();
  Counter& rows = counter("test.ts.watch.rows");
  Gauge& mark = gauge("test.ts.watch.mark");
  rec.watch("test.ts.watch.rows");
  rec.watch("test.ts.watch.mark");
  rec.watch("test.ts.watch.missing");  // unregistered: silently skipped
  {
    TrialScope scope(begin_telemetry_run(), 0);
    rows.add(3);
    mark.set(7);
    rec.tick(0);
    rows.add(2);
    rec.tick(1);
  }
  Registry::global().reset_values();
  const std::string jsonl = rec.to_jsonl();
  EXPECT_NE(jsonl.find("\"t\":0,\"seq\":0,\"series\":\"test.ts.watch.rows\",\"value\":3"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"series\":\"test.ts.watch.mark\",\"value\":7"),
            std::string::npos);
  EXPECT_NE(jsonl.find("\"t\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"series\":\"test.ts.watch.rows\",\"value\":5"),
            std::string::npos);
  EXPECT_EQ(jsonl.find("missing"), std::string::npos);
}

TEST_F(TimeSeriesTest, RegistryCurrentValueReadsAllKinds) {
  set_enabled(true);
  counter("test.ts.cv.counter").add(11);
  gauge("test.ts.cv.gauge").set(-2);
  histogram("test.ts.cv.hist").record(100);
  histogram("test.ts.cv.hist").record(200);
  const auto& reg = Registry::global();
  EXPECT_EQ(reg.current_value("test.ts.cv.counter"), 11.0);
  EXPECT_EQ(reg.current_value("test.ts.cv.gauge"), -2.0);
  EXPECT_EQ(reg.current_value("test.ts.cv.hist"), 2.0);
  EXPECT_FALSE(reg.current_value("test.ts.cv.absent").has_value());
  Registry::global().reset_values();
}

}  // namespace
}  // namespace prlc::obs
