#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "util/check.h"
#include "util/json.h"
#include "util/random.h"
#include "util/stats.h"

namespace prlc::obs {
namespace {

// The probes no-op while disabled, so every test arms the subsystem (and
// restores the default afterwards to keep test order irrelevant).
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { set_enabled(true); }
  void TearDown() override {
    Registry::global().reset_values();
    set_enabled(false);
  }
};

TEST_F(MetricsTest, RegistryReturnsStableUniqueInstances) {
  Counter& a = counter("test.registry.counter");
  Counter& b = counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = gauge("test.registry.gauge");
  Gauge& g2 = gauge("test.registry.gauge");
  EXPECT_EQ(&g1, &g2);
  // Force a rehash-sized wave of inserts; earlier references must survive.
  for (int i = 0; i < 256; ++i) {
    counter("test.registry.filler." + std::to_string(i));
  }
  EXPECT_EQ(&counter("test.registry.counter"), &a);
}

TEST_F(MetricsTest, NamesAreUniqueAcrossKinds) {
  counter("test.kinds.name");
  EXPECT_THROW(gauge("test.kinds.name"), PreconditionError);
  EXPECT_THROW(histogram("test.kinds.name"), PreconditionError);
  EXPECT_THROW(counter(""), PreconditionError);
}

TEST_F(MetricsTest, DisabledProbesAreNoOps) {
  Counter& c = counter("test.disabled.counter");
  Gauge& g = gauge("test.disabled.gauge");
  LatencyHistogram& h = histogram("test.disabled.hist");
  set_enabled(false);
  c.add(5);
  g.set(7);
  g.set_max(9);
  h.record(100);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST_F(MetricsTest, ConcurrentCounterIncrementsAreLossless) {
  Counter& c = counter("test.concurrent.counter");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, GaugeSetMaxIsHighWatermark) {
  Gauge& g = gauge("test.gauge.watermark");
  g.set_max(10);
  g.set_max(3);
  EXPECT_EQ(g.value(), 10);
  g.set_max(42);
  EXPECT_EQ(g.value(), 42);
}

TEST_F(MetricsTest, HistogramQuantilesTrackExactWithinBucketBound) {
  LatencyHistogram& h = histogram("test.hist.accuracy");
  Rng rng(1234);
  std::vector<double> exact;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform samples spanning 1..2^20 — exercises many buckets.
    const double v = std::exp2(rng.uniform_double() * 20.0);
    const auto s = static_cast<std::uint64_t>(v);
    h.record(s);
    exact.push_back(static_cast<double>(s));
  }
  for (double q : {0.5, 0.9, 0.99}) {
    const double approx = h.quantile(q);
    const double truth = quantile(exact, q);
    // Log2 buckets guarantee a factor-of-two bound; allow small slack for
    // the interpolation at bucket edges.
    EXPECT_GE(approx, truth / 2.05) << "q=" << q;
    EXPECT_LE(approx, truth * 2.05) << "q=" << q;
  }
  EXPECT_EQ(h.count(), 20000u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), h.quantile(0.0));  // no NaN
}

TEST_F(MetricsTest, HistogramEmptyAndZeroSamples) {
  LatencyHistogram& h = histogram("test.hist.empty");
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.p50(), 0.0);
  EXPECT_EQ(h.max_value(), 0u);
  EXPECT_THROW(h.quantile(-0.1), PreconditionError);
}

TEST_F(MetricsTest, ExportsParseableJsonAndCsv) {
  counter("test.export.counter").add(3);
  gauge("test.export.gauge").set(-7);
  histogram("test.export.hist").record(1000);
  const json::Value root = json::Value::parse(Registry::global().to_json());
  EXPECT_DOUBLE_EQ(root.at("counters").at("test.export.counter").as_double(), 3.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test.export.gauge").as_double(), -7.0);
  const json::Value& h = root.at("histograms").at("test.export.hist");
  EXPECT_DOUBLE_EQ(h.at("count").as_double(), 1.0);
  EXPECT_DOUBLE_EQ(h.at("max").as_double(), 1000.0);

  const std::string csv = Registry::global().to_csv();
  EXPECT_NE(csv.find("kind,name,value,count,mean,p50,p90,p99,max"), std::string::npos);
  EXPECT_NE(csv.find("counter,test.export.counter,3"), std::string::npos);
}

TEST_F(MetricsTest, ResetValuesKeepsRegistrations) {
  Counter& c = counter("test.reset.counter");
  c.add(9);
  Registry::global().reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(&counter("test.reset.counter"), &c);
}

TEST_F(MetricsTest, ScopedTimerRecordsElapsed) {
  LatencyHistogram& h = histogram("test.timer.hist");
  {
    ScopedTimer timer(h);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) sink = sink + i;
  }
  EXPECT_EQ(h.count(), 1u);
  // A timed loop takes nonzero steady-clock time at nanosecond resolution.
  EXPECT_GT(h.sum(), 0u);
}

TEST_F(MetricsTest, ScopedTimerDisabledRecordsNothing) {
  LatencyHistogram& h = histogram("test.timer.disabled");
  set_enabled(false);
  {
    ScopedTimer timer(h);
  }
  set_enabled(true);
  EXPECT_EQ(h.count(), 0u);
}

}  // namespace
}  // namespace prlc::obs
