#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>

#include "util/json.h"

namespace prlc::obs {
namespace {

// Each test drives its own recorder instance; one test exercises the
// global() path used by the instrumented library code.
TEST(TraceRecorder, DisabledEmitsNothing) {
  TraceRecorder rec;
  rec.instant("x", "test");
  rec.begin("y", "test");
  rec.end("y", "test");
  EXPECT_EQ(rec.events(), 0u);
  EXPECT_FALSE(rec.capturing());
}

TEST(TraceRecorder, GoldenJsonShape) {
  TraceRecorder rec;
  rec.start();
  rec.begin("trial", "persistence", {{"trial", 3.0}});
  rec.instant("node_fail", "churn", {{"node", 17.0}});
  rec.count("alive_nodes", "churn", {{"alive", 42.0}});
  rec.end("trial", "persistence");
  rec.stop();
  EXPECT_EQ(rec.events(), 4u);

  const json::Value root = json::Value::parse(rec.to_json());
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  const json::Value& events = root.at("traceEvents");
  ASSERT_EQ(events.size(), 4u);

  // Every event carries the required Trace Event Format fields.
  for (std::size_t i = 0; i < events.size(); ++i) {
    const json::Value& e = events.at(i);
    EXPECT_TRUE(e.at("name").is_string());
    EXPECT_TRUE(e.at("cat").is_string());
    EXPECT_TRUE(e.at("ph").is_string());
    EXPECT_TRUE(e.at("ts").is_number());
    EXPECT_DOUBLE_EQ(e.at("pid").as_double(), 1.0);
    EXPECT_DOUBLE_EQ(e.at("tid").as_double(), 1.0);
  }

  EXPECT_EQ(events.at(0).at("ph").as_string(), "B");
  EXPECT_DOUBLE_EQ(events.at(0).at("args").at("trial").as_double(), 3.0);
  EXPECT_EQ(events.at(1).at("ph").as_string(), "i");
  EXPECT_EQ(events.at(1).at("s").as_string(), "p");  // instants carry scope
  EXPECT_DOUBLE_EQ(events.at(1).at("args").at("node").as_double(), 17.0);
  EXPECT_EQ(events.at(2).at("ph").as_string(), "C");
  EXPECT_DOUBLE_EQ(events.at(2).at("args").at("alive").as_double(), 42.0);
  EXPECT_EQ(events.at(3).at("ph").as_string(), "E");

  // Timestamps are monotone: events append under one lock on a steady
  // clock since start().
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events.at(i).at("ts").as_double(), events.at(i - 1).at("ts").as_double());
  }
}

TEST(TraceRecorder, BeginEndBalancedViaScopedSpan) {
  TraceRecorder& rec = TraceRecorder::global();
  rec.clear();
  rec.start();
  {
    ScopedSpan outer("outer", "test", {{"depth", 0.0}});
    { ScopedSpan inner("inner", "test"); }
  }
  rec.stop();
  const json::Value root = json::Value::parse(rec.to_json());
  const json::Value& events = root.at("traceEvents");
  ASSERT_EQ(events.size(), 4u);
  // Properly nested: B(outer) B(inner) E(inner) E(outer).
  EXPECT_EQ(events.at(0).at("ph").as_string(), "B");
  EXPECT_EQ(events.at(0).at("name").as_string(), "outer");
  EXPECT_EQ(events.at(1).at("name").as_string(), "inner");
  EXPECT_EQ(events.at(2).at("ph").as_string(), "E");
  EXPECT_EQ(events.at(2).at("name").as_string(), "inner");
  EXPECT_EQ(events.at(3).at("name").as_string(), "outer");
  int depth = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const std::string& ph = events.at(i).at("ph").as_string();
    if (ph == "B") ++depth;
    if (ph == "E") --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  rec.clear();
}

TEST(TraceRecorder, StopFreezesAndClearEmpties) {
  TraceRecorder rec;
  rec.start();
  rec.instant("a", "test");
  rec.stop();
  rec.instant("b", "test");  // dropped: not capturing
  EXPECT_EQ(rec.events(), 1u);
  rec.clear();
  EXPECT_EQ(rec.events(), 0u);
  const json::Value root = json::Value::parse(rec.to_json());
  EXPECT_EQ(root.at("traceEvents").size(), 0u);
}

TEST(TraceRecorder, WriteProducesLoadableFile) {
  TraceRecorder rec;
  rec.start();
  rec.instant("marker", "test", {{"v", 1.0}});
  rec.stop();
  const std::string path = ::testing::TempDir() + "trace_test_out.json";
  ASSERT_TRUE(rec.write(path));
  const json::Value root = json::Value::parse(json::read_file(path));
  EXPECT_EQ(root.at("traceEvents").at(0).at("name").as_string(), "marker");
}

}  // namespace
}  // namespace prlc::obs
