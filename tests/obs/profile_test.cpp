#include "obs/profile.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/json.h"

namespace prlc::obs {
namespace {

using Span = TraceRecorder::SpanEvent;

TEST(ProfileTest, EmptyTraceIsAnEmptyRoot) {
  const ProfileNode root = build_profile(std::vector<Span>{});
  EXPECT_EQ(root.name, "root");
  EXPECT_EQ(root.total_us, 0u);
  EXPECT_TRUE(root.children.empty());
}

TEST(ProfileTest, NestedSpansFoldIntoSelfAndTotal) {
  // trial [0,100] contains decode [10,40] and decode [50,90]: the two
  // same-named children merge into count 2 / total 70, leaving 30 self.
  const std::vector<Span> events = {
      {'B', 0, 1, "trial"},  {'B', 10, 1, "decode"}, {'E', 40, 1, "decode"},
      {'B', 50, 1, "decode"}, {'E', 90, 1, "decode"}, {'E', 100, 1, "trial"},
  };
  const ProfileNode root = build_profile(events);
  EXPECT_EQ(root.total_us, 100u);
  ASSERT_EQ(root.children.size(), 1u);
  const ProfileNode& trial = root.children[0];
  EXPECT_EQ(trial.name, "trial");
  EXPECT_EQ(trial.count, 1u);
  EXPECT_EQ(trial.total_us, 100u);
  EXPECT_EQ(trial.self_us, 30u);
  ASSERT_EQ(trial.children.size(), 1u);
  const ProfileNode& decode = trial.children[0];
  EXPECT_EQ(decode.count, 2u);
  EXPECT_EQ(decode.total_us, 70u);
  EXPECT_EQ(decode.self_us, 70u);
}

TEST(ProfileTest, ThreadsMergeAndChildrenSortByName) {
  // Two threads each run the same top-level span with differently named
  // children; the tree merges by name and orders children alphabetically.
  const std::vector<Span> events = {
      {'B', 0, 1, "work"},  {'B', 5, 1, "zeta"},  {'E', 15, 1, "zeta"},
      {'E', 20, 1, "work"}, {'B', 0, 2, "work"},  {'B', 2, 2, "alpha"},
      {'E', 12, 2, "alpha"}, {'E', 30, 2, "work"},
  };
  const ProfileNode root = build_profile(events);
  ASSERT_EQ(root.children.size(), 1u);
  const ProfileNode& work = root.children[0];
  EXPECT_EQ(work.count, 2u);
  EXPECT_EQ(work.total_us, 50u);
  ASSERT_EQ(work.children.size(), 2u);
  EXPECT_EQ(work.children[0].name, "alpha");
  EXPECT_EQ(work.children[1].name, "zeta");
  EXPECT_EQ(work.self_us, 50u - 10u - 10u);
}

TEST(ProfileTest, UnclosedSpansCloseAtLastTimestampAndStrayEndsIgnored) {
  const std::vector<Span> events = {
      {'E', 1, 1, "stray"},        // unmatched end: ignored
      {'B', 10, 1, "hung"},        // never closed: clipped to last ts
      {'B', 20, 1, "inner"}, {'E', 35, 1, "inner"},
  };
  const ProfileNode root = build_profile(events);
  ASSERT_EQ(root.children.size(), 1u);
  const ProfileNode& hung = root.children[0];
  EXPECT_EQ(hung.name, "hung");
  EXPECT_EQ(hung.total_us, 25u);  // 35 - 10
  ASSERT_EQ(hung.children.size(), 1u);
  EXPECT_EQ(hung.children[0].total_us, 15u);
}

TEST(ProfileTest, JsonRenderingParsesAndMirrorsTree) {
  const std::vector<Span> events = {
      {'B', 0, 1, "outer"}, {'B', 1, 1, "inner"}, {'E', 4, 1, "inner"},
      {'E', 10, 1, "outer"},
  };
  const json::Value doc =
      json::Value::parse(profile_to_json(build_profile(events)));
  EXPECT_EQ(doc.at("name").as_string(), "root");
  const json::Value& outer = doc.at("children").at(0);
  EXPECT_EQ(outer.at("name").as_string(), "outer");
  EXPECT_EQ(outer.at("total_us").as_double(), 10.0);
  EXPECT_EQ(outer.at("self_us").as_double(), 7.0);
  EXPECT_EQ(outer.at("children").at(0).at("name").as_string(), "inner");
}

TEST(ProfileTest, BuildsFromLiveRecorder) {
  TraceRecorder rec;
  rec.start();
  {
    rec.begin("outer", "test");
    rec.begin("inner", "test");
    rec.end("inner", "test");
    rec.end("outer", "test");
  }
  rec.stop();
  const ProfileNode root = build_profile(rec);
  ASSERT_EQ(root.children.size(), 1u);
  EXPECT_EQ(root.children[0].name, "outer");
  ASSERT_EQ(root.children[0].children.size(), 1u);
  EXPECT_EQ(root.children[0].children[0].name, "inner");
}

TEST(ProfileTest, TextRenderingNamesEverySpan) {
  const std::vector<Span> events = {
      {'B', 0, 1, "outer"}, {'B', 1, 1, "inner"}, {'E', 4, 1, "inner"},
      {'E', 10, 1, "outer"},
  };
  const std::string text = profile_to_text(build_profile(events));
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("inner"), std::string::npos);
}

}  // namespace
}  // namespace prlc::obs
