#include "codec/payload_codec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/wire_format.h"
#include "gf/gf256.h"
#include "net/chord_network.h"
#include "net/fault_model.h"
#include "proto/fault_channel.h"
#include "proto/predistribution.h"
#include "runtime/thread_pool.h"
#include "util/random.h"

namespace prlc::codec {
namespace {

using F = gf::Gf256;
using codes::PrioritySpec;
using codes::Scheme;

/// Byte-wise scalar reference: out = sum_j row[j] * source_j via F::mul,
/// no kernels, no tiling — the ground truth the graph must reproduce.
std::vector<std::uint8_t> scalar_encode_row(const std::vector<std::uint8_t>& row,
                                            const codes::SourceData<F>& source) {
  std::vector<std::uint8_t> out(source.block_size(), 0);
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (row[j] == 0) continue;
    const auto src = source.block(j);
    for (std::size_t k = 0; k < out.size(); ++k) {
      out[k] = static_cast<std::uint8_t>(out[k] ^ F::mul(row[j], src[k]));
    }
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> draw_rows(Scheme scheme, const PrioritySpec& spec,
                                                 std::size_t count, Rng& rng) {
  const codes::PriorityEncoder<F> enc(scheme, spec);
  std::vector<std::vector<std::uint8_t>> rows;
  for (std::size_t i = 0; i < count; ++i) {
    // Deepest level: full-support rows, so the system reaches full rank.
    rows.push_back(enc.encode(spec.levels() - 1, rng).coeffs);
  }
  return rows;
}

// --- differential fuzz: encode ---------------------------------------------

TEST(PayloadCodec, EncodeMatchesScalarReferenceAtUnalignedSizes) {
  // Object sizes chosen to straddle tile boundaries: 1 B (sub-tile),
  // 4 KiB +/- 1, 1 MiB + 17. Chunk sizes likewise unaligned.
  Rng rng(21);
  const auto spec = PrioritySpec::uniform(2, 4);  // N = 8
  const std::size_t n = spec.total();
  for (const std::size_t object_bytes :
       {std::size_t{1}, std::size_t{4095}, std::size_t{4097}, (std::size_t{1} << 20) + 17}) {
    const std::size_t block_size = std::max<std::size_t>(1, (object_bytes + n - 1) / n);
    const auto source = codes::SourceData<F>::random(n, block_size, rng);
    const auto rows = draw_rows(Scheme::kPlc, spec, n, rng);

    std::vector<std::vector<std::uint8_t>> want;
    for (const auto& row : rows) want.push_back(scalar_encode_row(row, source));

    for (const std::size_t chunk : {std::size_t{1024}, std::size_t{4096}, std::size_t{32768}}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
        runtime::ThreadPool pool(threads);
        const PayloadCodec codec(Scheme::kPlc, spec, {.chunk_bytes = chunk, .pool = &pool});
        const auto got = codec.encode(rows, source);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t b = 0; b < want.size(); ++b) {
          ASSERT_EQ(got[b], want[b])
              << "object " << object_bytes << " chunk " << chunk << " threads " << threads
              << " row " << b;
        }
      }
    }
  }
}

TEST(PayloadCodec, LargeObjectPooledEncodeDecodeIsByteIdenticalToSerial) {
  // 64 MiB - 1: too big for the scalar reference, so the serial graph
  // path (itself fuzz-verified above) is the oracle for the pooled runs.
  Rng rng(22);
  const auto spec = PrioritySpec::uniform(2, 4);  // N = 8
  const std::size_t n = spec.total();
  const std::size_t object_bytes = (std::size_t{64} << 20) - 1;
  const std::size_t block_size = (object_bytes + n - 1) / n;
  const auto source = codes::SourceData<F>::random(n, block_size, rng);
  const auto rows = draw_rows(Scheme::kPlc, spec, n, rng);

  const PayloadCodec serial(Scheme::kPlc, spec, {.chunk_bytes = std::size_t{128} << 10});
  const auto want_coded = serial.encode(rows, source);
  auto want_buffers = want_coded;
  const auto want_result = serial.decode(rows, want_buffers);

  runtime::ThreadPool pool(8);
  const PayloadCodec pooled(Scheme::kPlc, spec,
                            {.chunk_bytes = std::size_t{128} << 10, .pool = &pool});
  const auto got_coded = pooled.encode(rows, source);
  EXPECT_EQ(got_coded, want_coded);
  auto got_buffers = got_coded;
  const auto got_result = pooled.decode(rows, got_buffers);
  EXPECT_EQ(got_result.rank, want_result.rank);
  EXPECT_EQ(got_buffers, want_buffers);
}

// --- differential fuzz: decode ---------------------------------------------

TEST(PayloadCodec, DecodeMatchesEagerPriorityDecoder) {
  Rng rng(23);
  const auto spec = PrioritySpec::uniform(4, 4);  // N = 16
  const std::size_t n = spec.total();
  const std::size_t block_size = 4097;
  const auto source = codes::SourceData<F>::random(n, block_size, rng);
  const auto rows = draw_rows(Scheme::kPlc, spec, n + 2, rng);

  const PayloadCodec serial(Scheme::kPlc, spec, {.chunk_bytes = 1024});
  const auto coded = serial.encode(rows, source);

  // Eager reference: coefficient+payload Gauss-Jordan as the blocks land.
  codes::PriorityDecoder<F> eager(Scheme::kPlc, spec, block_size);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    codes::CodedBlock<F> block;
    block.level = spec.levels() - 1;
    block.coeffs = rows[i];
    block.payload = coded[i];
    eager.add(block);
  }

  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    runtime::ThreadPool pool(threads);
    const PayloadCodec codec(Scheme::kPlc, spec, {.chunk_bytes = 1024, .pool = &pool});
    auto buffers = coded;
    const auto result = codec.decode(rows, buffers);
    EXPECT_EQ(result.decoded_levels, eager.decoded_levels());
    EXPECT_EQ(result.decoded_prefix, eager.decoded_prefix_blocks());
    for (std::size_t j = 0; j < n; ++j) {
      ASSERT_TRUE(result.blocks[j].decoded);
      const auto got = result.blocks[j].payload;
      const auto want = eager.recovered(j);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
          << "block " << j << " at " << threads << " threads";
      const auto orig = source.block(j);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), orig.begin(), orig.end()));
    }
  }
}

TEST(PayloadCodec, PartialRankDecodesThePrefixOnly) {
  Rng rng(24);
  const auto spec = PrioritySpec::uniform(2, 4);  // N = 8, levels of 4
  const std::size_t n = spec.total();
  const auto source = codes::SourceData<F>::random(n, 257, rng);

  // Rows confined to the first level: rank can cover blocks [0, 4) only.
  const codes::PriorityEncoder<F> enc(Scheme::kPlc, spec);
  std::vector<std::vector<std::uint8_t>> rows;
  for (std::size_t i = 0; i < 6; ++i) rows.push_back(enc.encode(0, rng).coeffs);

  const PayloadCodec codec(Scheme::kPlc, spec, {.chunk_bytes = 64});
  const auto coded = codec.encode(rows, source);
  auto buffers = coded;
  const auto result = codec.decode(rows, buffers);
  EXPECT_EQ(result.rank, 4u);
  EXPECT_EQ(result.decoded_prefix, 4u);
  EXPECT_EQ(result.decoded_levels, 1u);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_EQ(result.blocks[j].decoded, j < 4);
    if (!result.blocks[j].decoded) continue;
    const auto got = result.blocks[j].payload;
    const auto want = source.block(j);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  }
}

// --- survivor recombination -------------------------------------------------

TEST(PayloadCodec, RecombineIsTheGammaLinearCombination) {
  Rng rng(25);
  const auto spec = PrioritySpec::uniform(2, 4);
  const std::size_t n = spec.total();
  const std::size_t block_size = 1000;
  const auto source = codes::SourceData<F>::random(n, block_size, rng);
  const auto rows = draw_rows(Scheme::kPlc, spec, 5, rng);
  const PayloadCodec codec(Scheme::kPlc, spec, {.chunk_bytes = 256});
  const auto coded = codec.encode(rows, source);

  std::vector<std::uint8_t> gamma;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    gamma.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
  }
  gamma[1] = 0;  // exercise the skip path

  std::vector<std::span<const std::uint8_t>> payload_views(coded.begin(), coded.end());
  const auto block = codec.recombine(rows, payload_views, gamma, 1);
  EXPECT_EQ(block.level, 1u);

  std::vector<std::uint8_t> want_coeffs(n, 0);
  std::vector<std::uint8_t> want_payload(block_size, 0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (gamma[i] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      want_coeffs[j] ^= F::mul(gamma[i], rows[i][j]);
    }
    for (std::size_t k = 0; k < block_size; ++k) {
      want_payload[k] ^= F::mul(gamma[i], coded[i][k]);
    }
  }
  EXPECT_EQ(block.coeffs, want_coeffs);
  EXPECT_EQ(block.payload, want_payload);
}

// --- decode after in-band corruption ----------------------------------------

TEST(PayloadCodec, DecodesLeadingLevelsFromCorruptedChannelFetches) {
  // Disseminate, fetch everything through a FaultyChannel that corrupts a
  // third of the frames in band, keep what the wire layer accepts, and
  // graph-decode the survivors. The graph decode must agree exactly with
  // the eager decoder on the same partial payload set, and the leading
  // priority levels must come back intact.
  PrioritySpec spec{std::vector<std::size_t>{4, 6, 10}};  // N = 20
  codes::PriorityDistribution dist{std::vector<double>{0.3, 0.3, 0.4}};
  net::ChordParams np;
  np.nodes = 80;
  np.locations = 120;
  np.seed = 23;
  net::ChordNetwork overlay(np);
  proto::ProtocolParams params;
  params.block_size = 513;
  Rng rng(77);
  proto::Predistribution pd(overlay, spec, dist, params);
  const auto source = codes::SourceData<proto::Field>::random(spec.total(), 513, rng);
  pd.disseminate(source, rng);

  net::FaultSpec fault;
  fault.corrupt_rate = 0.34;
  net::FaultPlan plan(fault, overlay.nodes(), rng);
  proto::FaultyChannel channel(pd, std::move(plan));

  std::vector<std::vector<std::uint8_t>> rows;
  std::vector<std::vector<std::uint8_t>> payloads;
  std::size_t rejected = 0;
  for (net::LocationId loc : channel.retrievable_locations()) {
    const proto::FetchReply reply = channel.fetch(loc, rng);
    if (reply.fault != net::FaultClass::kNone) continue;
    try {
      const codes::WireBlockView view = codes::decode_wire_view(reply.bytes);
      std::vector<std::uint8_t> coeffs(view.coeff_width);
      view.expand_coeffs(coeffs);
      rows.push_back(std::move(coeffs));
      payloads.emplace_back(view.payload.begin(), view.payload.end());
    } catch (const codes::WireFormatError&) {
      ++rejected;  // in-band corruption unmasked by the CRC
    }
  }
  EXPECT_EQ(rejected, channel.injected().corruptions);
  ASSERT_GE(rows.size(), spec.total());  // enough survivors to be interesting

  codes::PriorityDecoder<F> eager(Scheme::kPlc, spec, params.block_size);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    codes::CodedBlock<F> block;
    block.coeffs = rows[i];
    block.payload = payloads[i];
    eager.add(block);
  }

  runtime::ThreadPool pool(4);
  const PayloadCodec codec(Scheme::kPlc, spec, {.chunk_bytes = 128, .pool = &pool});
  const auto result = codec.decode(rows, payloads);
  EXPECT_EQ(result.decoded_levels, eager.decoded_levels());
  EXPECT_GE(result.decoded_levels, 1u);  // leading levels survive corruption
  for (std::size_t j = 0; j < result.decoded_prefix; ++j) {
    ASSERT_TRUE(result.blocks[j].decoded);
    const auto got = result.blocks[j].payload;
    const auto want = source.block(j);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << "source block " << j;
  }
}

}  // namespace
}  // namespace prlc::codec
