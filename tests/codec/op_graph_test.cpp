#include "codec/op_graph.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gf/gf256.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::codec {
namespace {

using F = gf::Gf256;

std::vector<std::uint8_t> random_row(std::size_t n, Rng& rng) {
  std::vector<std::uint8_t> row(n);
  for (auto& v : row) v = static_cast<std::uint8_t>(rng.uniform(256));
  return row;
}

/// Build a mixed workload over `rows` buffers of `n` bytes: mul_region /
/// axpy chains plus a scale and a copy, enough hazards of every kind to
/// exercise the scheduler.
struct Workload {
  std::vector<std::vector<std::uint8_t>> bufs;
  std::vector<std::uint8_t> input;

  Workload(std::size_t rows, std::size_t n, Rng& rng) : input(random_row(n, rng)) {
    for (std::size_t i = 0; i < rows; ++i) bufs.push_back(random_row(n, rng));
  }

  void build(OpGraph& graph) {
    const std::uint32_t src = graph.add_const_buffer(input.data(), input.size());
    std::vector<std::uint32_t> ids;
    for (auto& b : bufs) ids.push_back(graph.add_buffer(b.data(), b.size()));
    graph.mul_region(ids[0], src, 0x1D);
    for (std::size_t i = 1; i < ids.size(); ++i) {
      graph.axpy(ids[i], ids[i - 1], static_cast<std::uint8_t>(i));  // RAW chain
    }
    graph.scale(ids[0], 0x8F);                  // WAR against the chain's reads
    graph.copy(ids[1], ids[0]);                 // RAW on the scaled row
    graph.axpy(ids[0], src, 0x33);              // WAW on row 0
    if (ids.size() > 2) graph.zero(ids[2]);     // WAW after being read
  }
};

TEST(OpGraph, SerialAndPooledExecutionAreByteIdentical) {
  Rng rng(11);
  const std::size_t n = 4096 + 17;  // unaligned: last tile is a partial one
  Workload reference(4, n, rng);
  OpGraph ref_graph(256);
  reference.build(ref_graph);
  ref_graph.finalize();
  ref_graph.execute_serial();

  for (std::size_t threads : {2u, 8u}) {
    Rng replay(11);
    Workload subject(4, n, replay);
    OpGraph graph(256);
    subject.build(graph);
    graph.finalize();
    runtime::ThreadPool pool(threads);
    graph.execute(pool);
    for (std::size_t i = 0; i < subject.bufs.size(); ++i) {
      EXPECT_EQ(subject.bufs[i], reference.bufs[i]) << "buffer " << i << " diverged at "
                                                    << threads << " threads";
    }
  }
}

TEST(OpGraph, ReExecutionIsIdempotentForWriteOnlyGraphs) {
  // A graph whose every buffer is fully overwritten before being read
  // computes the same bytes when executed twice.
  Rng rng(12);
  std::vector<std::uint8_t> src = random_row(1024, rng);
  std::vector<std::uint8_t> dst(1024, 0xAA);
  OpGraph graph(128);
  const std::uint32_t s = graph.add_const_buffer(src.data(), src.size());
  const std::uint32_t d = graph.add_buffer(dst.data(), dst.size());
  graph.mul_region(d, s, 0x02);
  graph.axpy(d, s, 0x07);
  graph.finalize();
  runtime::ThreadPool pool(2);
  graph.execute(pool);
  const std::vector<std::uint8_t> first = dst;
  graph.execute(pool);
  EXPECT_EQ(dst, first);
}

TEST(OpGraph, TilingSplitsRowsAndCountsBytes) {
  std::vector<std::uint8_t> a(1000), b(1000);
  OpGraph graph(256);
  const std::uint32_t ia = graph.add_buffer(a.data(), a.size());
  const std::uint32_t ib = graph.add_buffer(b.data(), b.size());
  graph.zero(ia);
  graph.axpy(ib, ia, 1);
  graph.finalize();
  // 1000 bytes at 256-byte tiles = 4 tiles per row op.
  EXPECT_EQ(graph.node_count(), 8u);
  EXPECT_EQ(graph.bytes_scheduled(), 2000u);
  // Each axpy tile depends on the zero of the same tile: depth 2.
  EXPECT_EQ(graph.critical_path(), 2u);
}

TEST(OpGraph, CriticalPathTracksDependencyChains) {
  std::vector<std::uint8_t> a(64), b(64), c(64);
  OpGraph graph(64);
  const std::uint32_t ia = graph.add_buffer(a.data(), a.size());
  const std::uint32_t ib = graph.add_buffer(b.data(), b.size());
  const std::uint32_t ic = graph.add_buffer(c.data(), c.size());
  graph.zero(ia);
  graph.copy(ib, ia);
  graph.axpy(ic, ib, 3);   // needs ib's copy -> chain of 3
  graph.scale(ic, 5);      // WAW extends it to 4
  graph.finalize();
  EXPECT_EQ(graph.critical_path(), 4u);
}

TEST(OpGraph, IndependentRowsHaveUnitCriticalPath) {
  std::vector<std::vector<std::uint8_t>> rows(6, std::vector<std::uint8_t>(512));
  OpGraph graph(128);
  for (auto& r : rows) {
    graph.zero(graph.add_buffer(r.data(), r.size()));
  }
  graph.finalize();
  EXPECT_EQ(graph.critical_path(), 1u);
  EXPECT_EQ(graph.node_count(), 6u * 4u);
}

TEST(OpGraph, RejectsInvalidOps) {
  std::vector<std::uint8_t> a(64), b(32);
  OpGraph graph(64);
  const std::uint32_t ia = graph.add_buffer(a.data(), a.size());
  const std::uint32_t ib = graph.add_buffer(b.data(), b.size());
  const std::uint32_t ic = graph.add_const_buffer(a.data(), a.size());
  EXPECT_THROW(graph.axpy(ia, ib, 1), PreconditionError);   // size mismatch
  EXPECT_THROW(graph.axpy(ia, ia, 1), PreconditionError);   // aliased src/dst
  EXPECT_THROW(graph.zero(ic), PreconditionError);          // const dst
  EXPECT_THROW(OpGraph(0), PreconditionError);              // zero tile
}

TEST(OpGraph, MatchesDirectKernelComputation) {
  Rng rng(13);
  const std::size_t n = 777;
  std::vector<std::uint8_t> x = random_row(n, rng);
  std::vector<std::uint8_t> y = random_row(n, rng);
  std::vector<std::uint8_t> want = y;
  F::axpy(std::span<std::uint8_t>(want), 0x5A, std::span<const std::uint8_t>(x));

  OpGraph graph(100);
  const std::uint32_t ix = graph.add_const_buffer(x.data(), n);
  const std::uint32_t iy = graph.add_buffer(y.data(), n);
  graph.axpy(iy, ix, 0x5A);
  graph.finalize();
  graph.execute_serial();
  EXPECT_EQ(y, want);
}

}  // namespace
}  // namespace prlc::codec
