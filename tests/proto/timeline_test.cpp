#include "proto/timeline.h"

#include <gtest/gtest.h>

#include "net/chord_network.h"
#include "net/churn.h"
#include "util/check.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;

struct World {
  PrioritySpec spec{std::vector<std::size_t>{3, 5, 8}};  // N = 16
  PriorityDistribution dist{PriorityDistribution::uniform(3)};
  net::ChordNetwork overlay;
  Rng rng{101};

  explicit World(std::size_t locations = 160) : overlay(make_net(locations)) {}

  static net::ChordParams make_net(std::size_t locations) {
    net::ChordParams p;
    p.nodes = 100;
    p.locations = locations;
    p.seed = 51;
    return p;
  }

  codes::SourceData<Field> snapshot() {
    return codes::SourceData<Field>::random(spec.total(), 16, rng);
  }

  TimelineParams params(RetentionPolicy policy, std::size_t window = 4) {
    TimelineParams p;
    p.policy = policy;
    p.window = window;
    return p;
  }
};

TEST(Timeline, FirstRoundDecodesFully) {
  World w;
  TimelineStore store(w.overlay, w.spec, w.dist, w.params(RetentionPolicy::kSlidingWindow));
  const auto snap = w.snapshot();
  const auto stats = store.ingest(snap, w.rng);
  EXPECT_EQ(stats.round_id, 0u);
  EXPECT_EQ(stats.locations_assigned, 40u);  // 160 / window 4
  const auto q = store.query(0, w.rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->decoded_levels, 3u);
  EXPECT_EQ(q->blocks_retrievable, 40u);
}

TEST(Timeline, SlidingWindowSharesEqually) {
  World w;
  TimelineStore store(w.overlay, w.spec, w.dist, w.params(RetentionPolicy::kSlidingWindow));
  for (int r = 0; r < 4; ++r) store.ingest(w.snapshot(), w.rng);
  for (std::size_t r = 0; r < 4; ++r) {
    const auto q = store.query(r, w.rng);
    ASSERT_TRUE(q.has_value()) << r;
    EXPECT_EQ(q->locations_allotted, 40u) << r;
    EXPECT_EQ(q->decoded_levels, 3u) << r;  // 40 blocks for 16 unknowns
  }
}

TEST(Timeline, EvictionBeyondWindow) {
  World w;
  TimelineStore store(w.overlay, w.spec, w.dist,
                      w.params(RetentionPolicy::kSlidingWindow, 3));
  for (int r = 0; r < 5; ++r) store.ingest(w.snapshot(), w.rng);
  EXPECT_EQ(store.retained_rounds(), (std::vector<std::size_t>{4, 3, 2}));
  EXPECT_EQ(store.query(0, w.rng), std::nullopt);
  EXPECT_EQ(store.query(1, w.rng), std::nullopt);
  ASSERT_TRUE(store.query(2, w.rng).has_value());
}

TEST(Timeline, DecaySharesShrinkWithAge) {
  World w;
  TimelineStore store(w.overlay, w.spec, w.dist,
                      w.params(RetentionPolicy::kExponentialDecay, 4));
  for (int r = 0; r < 4; ++r) store.ingest(w.snapshot(), w.rng);
  std::vector<std::size_t> shares;
  for (std::size_t r = 0; r < 4; ++r) {
    const auto q = store.query(r, w.rng);
    ASSERT_TRUE(q.has_value());
    shares.push_back(q->locations_allotted);
  }
  // rounds 0..3 have ages 3..0: shares must decrease with age.
  EXPECT_LT(shares[0], shares[1]);
  EXPECT_LT(shares[1], shares[2]);
  EXPECT_LT(shares[2], shares[3]);
  // Newest ~ budget * 1/(1+.5+.25+.125) ~ 85 of 160.
  EXPECT_NEAR(static_cast<double>(shares[3]), 160 / 1.875, 3.0);
}

TEST(Timeline, DecayAgesGracefullyByPriority) {
  // With heavy churn, old rounds (small budgets) keep high levels only —
  // the partial-recovery property applied to aging.
  World w(240);
  w.dist = PriorityDistribution({0.5, 0.3, 0.2});
  TimelineStore store(w.overlay, w.spec, w.dist,
                      w.params(RetentionPolicy::kExponentialDecay, 4));
  for (int r = 0; r < 4; ++r) {
    store.ingest(w.snapshot(), w.rng);
    net::kill_uniform_fraction(w.overlay, 0.25, w.rng);
  }
  const auto oldest = store.query(0, w.rng);
  const auto newest = store.query(3, w.rng);
  ASSERT_TRUE(oldest.has_value());
  ASSERT_TRUE(newest.has_value());
  EXPECT_LE(oldest->decoded_levels, newest->decoded_levels);
  EXPECT_LE(oldest->blocks_retrievable, newest->blocks_retrievable);
}

TEST(Timeline, RecyclingAccountsLocations) {
  World w;
  TimelineStore store(w.overlay, w.spec, w.dist,
                      w.params(RetentionPolicy::kExponentialDecay, 4));
  store.ingest(w.snapshot(), w.rng);
  const auto s2 = store.ingest(w.snapshot(), w.rng);
  // Round 0 had the age-0 share (~85); as age 1 it keeps ~43: the rest is
  // recycled into round 1's budget.
  EXPECT_GT(s2.locations_recycled, 30u);
  EXPECT_GT(s2.locations_assigned, 60u);
}

TEST(Timeline, ShrinkingIsPriorityAware) {
  // After a decay shrink, the aged round must have kept its high-priority
  // blocks and shed the deep levels: its decodable prefix should still
  // cover level 1 even though most of its budget is gone.
  World w;
  TimelineStore store(w.overlay, w.spec, w.dist,
                      w.params(RetentionPolicy::kExponentialDecay, 4));
  store.ingest(w.snapshot(), w.rng);
  for (int r = 0; r < 3; ++r) store.ingest(w.snapshot(), w.rng);
  const auto aged = store.query(0, w.rng);
  ASSERT_TRUE(aged.has_value());
  EXPECT_EQ(aged->age, 3u);
  // Age-3 share is ~160/16 = 10 locations; level 1 (3 unknowns, ~1/3 of
  // the original partition's front) must still decode.
  EXPECT_GE(aged->decoded_levels, 1u);
  EXPECT_LT(aged->blocks_retrievable, 20u);
}

TEST(Timeline, QueryUnknownRound) {
  World w;
  TimelineStore store(w.overlay, w.spec, w.dist, w.params(RetentionPolicy::kSlidingWindow));
  EXPECT_EQ(store.query(0, w.rng), std::nullopt);
  store.ingest(w.snapshot(), w.rng);
  EXPECT_EQ(store.query(99, w.rng), std::nullopt);
}

TEST(Timeline, ValidatesConstructionAndInput) {
  World w;
  EXPECT_THROW(
      TimelineStore(w.overlay, w.spec, PriorityDistribution::uniform(2),
                    w.params(RetentionPolicy::kSlidingWindow)),
      PreconditionError);
  TimelineParams zero_window;
  zero_window.window = 0;
  EXPECT_THROW(TimelineStore(w.overlay, w.spec, w.dist, zero_window), PreconditionError);
  TimelineStore store(w.overlay, w.spec, w.dist, w.params(RetentionPolicy::kSlidingWindow));
  const auto wrong = codes::SourceData<Field>::random(5, 16, w.rng);
  EXPECT_THROW(store.ingest(wrong, w.rng), PreconditionError);
}

TEST(Timeline, EqualityOperators) {
  // QueryResult is compared via std::optional in tests above; make sure a
  // missing round compares equal to nullopt (compile-time sanity).
  World w;
  TimelineStore store(w.overlay, w.spec, w.dist, w.params(RetentionPolicy::kSlidingWindow));
  EXPECT_FALSE(store.query(7, w.rng).has_value());
}

}  // namespace
}  // namespace prlc::proto
