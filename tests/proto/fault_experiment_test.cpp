#include "proto/fault_experiment.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace prlc::proto {
namespace {

FaultSweepParams small_params() {
  FaultSweepParams p;
  p.overlay = OverlayKind::kSensor;
  p.nodes = 80;
  p.locations = 48;
  p.experiment.level_sizes = {4, 6, 10};  // N = 20
  p.experiment.trials = 12;
  p.experiment.root_seed = 2024;
  p.experiment.threads = 1;
  p.churn_fraction = 0.2;
  p.faults.timeout_rate = 0.05;
  p.faults.transient_rate = 0.05;
  p.faults.corrupt_rate = 0.05;
  p.faults.truncate_rate = 0.02;
  p.faults.crash_rate = 0.03;
  p.faults.slow_fraction = 0.2;
  p.fault_scales = {0.0, 1.0, 4.0};
  return p;
}

TEST(FaultExperiment, ThreadCountNeverChangesResults) {
  // The acceptance bar for the whole fault subsystem: with faults
  // enabled, --threads 1 and --threads 8 are bit-identical.
  auto serial = small_params();
  serial.experiment.threads = 1;
  auto parallel = small_params();
  parallel.experiment.threads = 8;
  const auto a = run_fault_experiment(serial);
  const auto b = run_fault_experiment(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].fault_scale, b[i].fault_scale);
    EXPECT_EQ(a[i].mean_decoded_levels, b[i].mean_decoded_levels);
    EXPECT_EQ(a[i].ci95_decoded_levels, b[i].ci95_decoded_levels);
    EXPECT_EQ(a[i].mean_decoded_blocks, b[i].mean_decoded_blocks);
    EXPECT_EQ(a[i].mean_blocks_retrieved, b[i].mean_blocks_retrieved);
    EXPECT_EQ(a[i].mean_blocks_lost, b[i].mean_blocks_lost);
    EXPECT_EQ(a[i].mean_retries, b[i].mean_retries);
    EXPECT_EQ(a[i].mean_hedges, b[i].mean_hedges);
    EXPECT_EQ(a[i].mean_wire_errors, b[i].mean_wire_errors);
    EXPECT_EQ(a[i].mean_timeouts, b[i].mean_timeouts);
    EXPECT_EQ(a[i].mean_crashes, b[i].mean_crashes);
    EXPECT_EQ(a[i].degraded_fraction, b[i].degraded_fraction);
  }
}

TEST(FaultExperiment, ZeroScaleIsFaultFreeAndDegradationGrows) {
  const auto points = run_fault_experiment(small_params());
  ASSERT_EQ(points.size(), 3u);
  // Scale 0: no faults at all — nothing retried, nothing lost, full decode
  // (48 locations, 20% churn, 20 unknowns leaves a wide margin).
  EXPECT_EQ(points[0].mean_retries, 0.0);
  EXPECT_EQ(points[0].mean_blocks_lost, 0.0);
  EXPECT_EQ(points[0].degraded_fraction, 0.0);
  EXPECT_EQ(points[0].mean_decoded_levels, 3.0);
  // Rising fault scale: the adversity ledger grows...
  EXPECT_GT(points[2].mean_blocks_lost, points[0].mean_blocks_lost);
  EXPECT_GT(points[2].mean_retries, points[1].mean_retries);
  EXPECT_GT(points[2].degraded_fraction, 0.0);
  // ...and decoded levels degrade monotonically (means, same trials).
  EXPECT_LE(points[1].mean_decoded_levels, points[0].mean_decoded_levels);
  EXPECT_LE(points[2].mean_decoded_levels, points[1].mean_decoded_levels);
}

TEST(FaultExperiment, PlcRetainsLeadingLevelsWhereRlcCliffs) {
  // Thin margin + heavy faults: RLC needs all N blocks and cliffs; PLC
  // keeps decoding leading levels from the surviving prefix-heavy blocks.
  auto params = small_params();
  params.experiment.trials = 16;
  params.locations = 30;  // only 1.5x N before churn and faults
  params.churn_fraction = 0.25;
  // Scale 3: the per-attempt fault mass is 0.6, so retries recover most
  // fetches but crashes and exhausted budgets still lose ~25% of the
  // blocks — enough to push RLC below its all-or-nothing threshold.
  params.fault_scales = {3.0};
  params.experiment.scheme = codes::Scheme::kPlc;
  const auto plc = run_fault_experiment(params);
  params.experiment.scheme = codes::Scheme::kRlc;
  const auto rlc = run_fault_experiment(params);
  EXPECT_GT(plc[0].mean_decoded_levels, rlc[0].mean_decoded_levels);
}

TEST(FaultExperiment, ParamsValidated) {
  auto p = small_params();
  p.fault_scales.clear();
  EXPECT_THROW(run_fault_experiment(p), PreconditionError);
  p = small_params();
  p.fault_scales = {2.0, 1.0};  // descending
  EXPECT_THROW(run_fault_experiment(p), PreconditionError);
  p = small_params();
  p.fault_scales = {-1.0};
  EXPECT_THROW(run_fault_experiment(p), PreconditionError);
  p = small_params();
  p.churn_fraction = 1.5;
  EXPECT_THROW(run_fault_experiment(p), PreconditionError);
  p = small_params();
  p.faults.corrupt_rate = 2.0;
  EXPECT_THROW(run_fault_experiment(p), PreconditionError);
  p = small_params();
  p.experiment.trials = 0;
  EXPECT_THROW(run_fault_experiment(p), PreconditionError);
}

}  // namespace
}  // namespace prlc::proto
