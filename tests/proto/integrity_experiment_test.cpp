#include "proto/integrity_experiment.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace prlc::proto {
namespace {

IntegritySweepParams small_params() {
  IntegritySweepParams p;
  p.overlay = OverlayKind::kSensor;
  p.nodes = 80;
  p.locations = 48;
  p.experiment.level_sizes = {4, 6, 10};  // N = 20
  // Weight the deep level so 48 locations always carry enough full-width
  // blocks for a clean full decode (uniform occasionally undersamples it).
  p.experiment.priority_distribution = {0.2, 0.3, 0.5};
  p.experiment.trials = 8;
  p.experiment.root_seed = 2024;
  p.experiment.threads = 1;
  p.mixes = {{0.0, 0.0}, {1.0, 0.0}, {0.0, 0.25}, {0.3, 0.15}};
  return p;
}

TEST(IntegrityExperiment, DetectsEverySilentFrameAndNeverDecodesWrongBytes) {
  // The acceptance bar of the integrity subsystem: across a grid of
  // silent-corruption mixes, every forged/rotten frame the channel served
  // is caught by the fingerprint and nothing wrong ever leaves the
  // decoder.
  const auto points = run_integrity_experiment(small_params());
  ASSERT_EQ(points.size(), 4u);
  for (const IntegrityPoint& pt : points) {
    EXPECT_EQ(pt.detection_ratio, 1.0)
        << "rot=" << pt.rot_rate << " byz=" << pt.byzantine_fraction;
    EXPECT_EQ(pt.wrong_decode_fraction, 0.0)
        << "rot=" << pt.rot_rate << " byz=" << pt.byzantine_fraction;
  }
  // Clean point: nothing flagged, nothing quarantined, full decode.
  EXPECT_EQ(points[0].mean_integrity_violations, 0.0);
  EXPECT_EQ(points[0].mean_quarantined_nodes, 0.0);
  EXPECT_EQ(points[0].mean_decoded_levels, 3.0);
  // Silent pressure leaves a ledger trail: violations detected and the
  // offending nodes quarantined.
  EXPECT_GT(points[1].mean_integrity_violations, 0.0);
  EXPECT_GT(points[1].mean_quarantined_nodes, 0.0);
  EXPECT_GT(points[2].mean_integrity_violations, 0.0);
  EXPECT_GT(points[2].mean_quarantined_nodes, 0.0);
}

TEST(IntegrityExperiment, SilentFaultsComposeWithLoudOnes) {
  // Wire-visible faults run underneath the silent mix; the integrity
  // guarantees are unchanged and the loud ledger still fills in.
  auto params = small_params();
  params.faults.timeout_rate = 0.05;
  params.faults.corrupt_rate = 0.08;
  params.faults.transient_rate = 0.05;
  const auto points = run_integrity_experiment(params);
  ASSERT_EQ(points.size(), 4u);
  for (const IntegrityPoint& pt : points) {
    EXPECT_EQ(pt.detection_ratio, 1.0);
    EXPECT_EQ(pt.wrong_decode_fraction, 0.0);
  }
  EXPECT_GT(points[0].mean_wire_errors, 0.0);
  EXPECT_GT(points[0].mean_retries, 0.0);
}

TEST(IntegrityExperiment, ThreadCountNeverChangesResults) {
  auto serial = small_params();
  serial.experiment.threads = 1;
  auto parallel = small_params();
  parallel.experiment.threads = 8;
  const auto a = run_integrity_experiment(serial);
  const auto b = run_integrity_experiment(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].rot_rate, b[i].rot_rate);
    EXPECT_EQ(a[i].byzantine_fraction, b[i].byzantine_fraction);
    EXPECT_EQ(a[i].mean_decoded_levels, b[i].mean_decoded_levels);
    EXPECT_EQ(a[i].ci95_decoded_levels, b[i].ci95_decoded_levels);
    EXPECT_EQ(a[i].mean_blocks_retrieved, b[i].mean_blocks_retrieved);
    EXPECT_EQ(a[i].mean_blocks_lost, b[i].mean_blocks_lost);
    EXPECT_EQ(a[i].mean_integrity_violations, b[i].mean_integrity_violations);
    EXPECT_EQ(a[i].mean_quarantined_nodes, b[i].mean_quarantined_nodes);
    EXPECT_EQ(a[i].mean_wire_errors, b[i].mean_wire_errors);
    EXPECT_EQ(a[i].mean_retries, b[i].mean_retries);
    EXPECT_EQ(a[i].detection_ratio, b[i].detection_ratio);
    EXPECT_EQ(a[i].wrong_decode_fraction, b[i].wrong_decode_fraction);
    EXPECT_EQ(a[i].degraded_fraction, b[i].degraded_fraction);
  }
}

TEST(IntegrityExperiment, RejectsMalformedSweeps) {
  auto no_mixes = small_params();
  no_mixes.mixes.clear();
  EXPECT_THROW(run_integrity_experiment(no_mixes), PreconditionError);
  auto bad_rate = small_params();
  bad_rate.mixes = {{1.5, 0.0}};
  EXPECT_THROW(run_integrity_experiment(bad_rate), PreconditionError);
  auto bad_fraction = small_params();
  bad_fraction.mixes = {{0.0, -0.1}};
  EXPECT_THROW(run_integrity_experiment(bad_fraction), PreconditionError);
}

}  // namespace
}  // namespace prlc::proto
