// In-process check of the telemetry determinism contract: the exported
// events and time-series JSONL are byte-identical at any thread count.
// The smoke suite re-checks the same property end to end through the
// bench binaries (see bench/CMakeLists.txt, smoke_telemetry_determinism);
// this test keeps the contract under the sanitizers and in plain ctest
// without spawning processes.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "net/fault_model.h"
#include "obs/events.h"
#include "obs/timeseries.h"
#include "proto/fault_experiment.h"
#include "proto/persistence_experiment.h"

namespace prlc::proto {
namespace {

/// Run `experiment` once per thread count with a clean telemetry slate;
/// return the (events, timeseries) JSONL pair per run.
template <typename Experiment>
std::vector<std::pair<std::string, std::string>> telemetry_across_threads(
    Experiment&& experiment) {
  obs::set_events_enabled(true);
  obs::set_timeseries_enabled(true);
  std::vector<std::pair<std::string, std::string>> exports;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    obs::reset_telemetry();
    experiment(threads);
    exports.emplace_back(obs::EventJournal::global().to_jsonl(),
                         obs::TimeSeriesRecorder::global().to_jsonl());
  }
  obs::set_events_enabled(false);
  obs::set_timeseries_enabled(false);
  obs::reset_telemetry();
  return exports;
}

TEST(TelemetryDeterminism, PersistenceExperimentJournalsIdenticallyAcrossThreads) {
  PersistenceParams params;
  params.nodes = 60;
  params.experiment.trials = 6;
  params.experiment.root_seed = 11;
  params.experiment.level_sizes = {4, 8, 12};
  params.failure_fractions = {0.2, 0.5};
  const auto exports = telemetry_across_threads([&](std::size_t threads) {
    params.experiment.threads = threads;
    run_persistence_experiment(params);
  });
  ASSERT_EQ(exports.size(), 3u);
  EXPECT_FALSE(exports[0].first.empty());   // churn must journal node_failed
  EXPECT_FALSE(exports[0].second.empty());  // sweep must record series
  EXPECT_EQ(exports[0].first, exports[1].first);
  EXPECT_EQ(exports[0].first, exports[2].first);
  EXPECT_EQ(exports[0].second, exports[1].second);
  EXPECT_EQ(exports[0].second, exports[2].second);
}

TEST(TelemetryDeterminism, FaultSweepJournalsIdenticallyAcrossThreads) {
  FaultSweepParams params;
  params.nodes = 50;
  params.experiment.trials = 6;
  params.experiment.root_seed = 3;
  params.experiment.level_sizes = {4, 8};
  params.churn_fraction = 0.2;
  params.faults.timeout_rate = 0.2;
  params.faults.transient_rate = 0.1;
  params.fault_scales = {0.5, 1.0, 1.5};
  params.retry.max_attempts = 3;
  const auto exports = telemetry_across_threads([&](std::size_t threads) {
    params.experiment.threads = threads;
    run_fault_experiment(params);
  });
  ASSERT_EQ(exports.size(), 3u);
  EXPECT_FALSE(exports[0].first.empty());
  EXPECT_FALSE(exports[0].second.empty());
  EXPECT_EQ(exports[0].first, exports[1].first);
  EXPECT_EQ(exports[0].first, exports[2].first);
  EXPECT_EQ(exports[0].second, exports[1].second);
  EXPECT_EQ(exports[0].second, exports[2].second);
}

}  // namespace
}  // namespace prlc::proto
