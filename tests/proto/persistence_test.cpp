#include "proto/persistence_experiment.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace prlc::proto {
namespace {

PersistenceParams base_params() {
  PersistenceParams p;
  p.overlay = OverlayKind::kChord;
  p.nodes = 80;
  p.locations = 60;
  p.level_sizes = {4, 6, 10};  // N = 20
  p.failure_fractions = {0.0, 0.3, 0.6, 0.9};
  p.trials = 6;
  p.seed = 33;
  return p;
}

TEST(Persistence, DecodedLevelsDegradeWithFailures) {
  const auto points = run_persistence_experiment(base_params());
  ASSERT_EQ(points.size(), 4u);
  EXPECT_NEAR(points[0].mean_decoded_levels, 3.0, 0.01);  // no failures: all data
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].mean_decoded_levels, points[i - 1].mean_decoded_levels + 1e-9);
    EXPECT_LE(points[i].mean_surviving_blocks, points[i - 1].mean_surviving_blocks + 1e-9);
  }
  EXPECT_LT(points.back().mean_decoded_levels, 1.5);  // 90% dead
}

TEST(Persistence, PlcBeatsRlcUnderChurn) {
  auto plc = base_params();
  plc.scheme = codes::Scheme::kPlc;
  auto rlc = base_params();
  rlc.scheme = codes::Scheme::kRlc;
  const auto p_plc = run_persistence_experiment(plc);
  const auto p_rlc = run_persistence_experiment(rlc);
  // At 60% failure the survivor count hovers near N: RLC collapses to
  // nothing while PLC still recovers leading levels.
  EXPECT_GT(p_plc[2].mean_decoded_levels, p_rlc[2].mean_decoded_levels - 1e-9);
  EXPECT_GT(p_plc[2].mean_decoded_levels, 0.3);
}

TEST(Persistence, SensorOverlayWorks) {
  auto params = base_params();
  params.overlay = OverlayKind::kSensor;
  params.nodes = 150;
  const auto points = run_persistence_experiment(params);
  EXPECT_NEAR(points[0].mean_decoded_levels, 3.0, 0.01);
  EXPECT_GT(points[0].mean_dissemination_hops, 0.0);
}

TEST(Persistence, CustomDistributionRespected) {
  auto params = base_params();
  params.priority_distribution = {0.6, 0.2, 0.2};
  const auto points = run_persistence_experiment(params);
  EXPECT_NEAR(points[0].mean_decoded_levels, 3.0, 0.01);
}

TEST(Persistence, Validation) {
  auto params = base_params();
  params.level_sizes.clear();
  EXPECT_THROW(run_persistence_experiment(params), PreconditionError);
  params = base_params();
  params.failure_fractions = {0.5, 0.2};
  EXPECT_THROW(run_persistence_experiment(params), PreconditionError);
  params = base_params();
  params.trials = 0;
  EXPECT_THROW(run_persistence_experiment(params), PreconditionError);
}

TEST(OverlayKindName, Strings) {
  EXPECT_STREQ(to_string(OverlayKind::kSensor), "sensor");
  EXPECT_STREQ(to_string(OverlayKind::kChord), "chord");
}

}  // namespace
}  // namespace prlc::proto
