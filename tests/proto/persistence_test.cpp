#include "proto/persistence_experiment.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace prlc::proto {
namespace {

PersistenceParams base_params() {
  PersistenceParams p;
  p.overlay = OverlayKind::kChord;
  p.nodes = 80;
  p.locations = 60;
  p.experiment.level_sizes = {4, 6, 10};  // N = 20
  p.failure_fractions = {0.0, 0.3, 0.6, 0.9};
  p.experiment.trials = 6;
  p.experiment.root_seed = 33;
  p.experiment.threads = 1;
  return p;
}

TEST(Persistence, DecodedLevelsDegradeWithFailures) {
  const auto points = run_persistence_experiment(base_params());
  ASSERT_EQ(points.size(), 4u);
  EXPECT_NEAR(points[0].mean_decoded_levels, 3.0, 0.01);  // no failures: all data
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].mean_decoded_levels, points[i - 1].mean_decoded_levels + 1e-9);
    EXPECT_LE(points[i].mean_surviving_blocks, points[i - 1].mean_surviving_blocks + 1e-9);
  }
  EXPECT_LT(points.back().mean_decoded_levels, 1.5);  // 90% dead
}

TEST(Persistence, PlcBeatsRlcUnderChurn) {
  // Past the survivors < N cliff (80% failure leaves ~12 blocks for
  // N = 20) RLC decodes nothing — rank can never reach 20 — while a
  // level-1-heavy PLC design still recovers the leading levels.
  auto plc = base_params();
  plc.failure_fractions = {0.8};
  plc.experiment.priority_distribution = {0.6, 0.2, 0.2};
  plc.experiment.trials = 10;
  auto rlc = plc;
  plc.experiment.scheme = codes::Scheme::kPlc;
  rlc.experiment.scheme = codes::Scheme::kRlc;
  const auto p_plc = run_persistence_experiment(plc);
  const auto p_rlc = run_persistence_experiment(rlc);
  EXPECT_GT(p_plc[0].mean_decoded_levels, p_rlc[0].mean_decoded_levels);
  EXPECT_GT(p_plc[0].mean_decoded_levels, 0.3);
  EXPECT_LT(p_rlc[0].mean_decoded_levels, 0.5);
}

TEST(Persistence, SensorOverlayWorks) {
  auto params = base_params();
  params.overlay = OverlayKind::kSensor;
  params.nodes = 150;
  const auto points = run_persistence_experiment(params);
  EXPECT_NEAR(points[0].mean_decoded_levels, 3.0, 0.01);
  EXPECT_GT(points[0].mean_dissemination_hops, 0.0);
}

TEST(Persistence, CustomDistributionRespected) {
  auto params = base_params();
  params.experiment.priority_distribution = {0.6, 0.2, 0.2};
  const auto points = run_persistence_experiment(params);
  EXPECT_NEAR(points[0].mean_decoded_levels, 3.0, 0.01);
}

TEST(Persistence, Validation) {
  auto params = base_params();
  params.experiment.level_sizes.clear();
  EXPECT_THROW(run_persistence_experiment(params), PreconditionError);
  params = base_params();
  params.failure_fractions = {0.5, 0.2};
  EXPECT_THROW(run_persistence_experiment(params), PreconditionError);
  params = base_params();
  params.experiment.trials = 0;
  EXPECT_THROW(run_persistence_experiment(params), PreconditionError);
}

TEST(Persistence, ThreadCountDoesNotChangeResults) {
  // The determinism contract (runtime/trial_runner.h): identical points,
  // bit for bit, at any thread count.
  auto serial = base_params();
  serial.experiment.threads = 1;
  auto parallel = base_params();
  parallel.experiment.threads = 4;
  const auto a = run_persistence_experiment(serial);
  const auto b = run_persistence_experiment(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean_surviving_blocks, b[i].mean_surviving_blocks);
    EXPECT_EQ(a[i].mean_decoded_levels, b[i].mean_decoded_levels);
    EXPECT_EQ(a[i].ci95_decoded_levels, b[i].ci95_decoded_levels);
    EXPECT_EQ(a[i].mean_decoded_blocks, b[i].mean_decoded_blocks);
    EXPECT_EQ(a[i].mean_dissemination_hops, b[i].mean_dissemination_hops);
  }
}

TEST(OverlayKindName, Strings) {
  EXPECT_STREQ(to_string(OverlayKind::kSensor), "sensor");
  EXPECT_STREQ(to_string(OverlayKind::kChord), "chord");
}

}  // namespace
}  // namespace prlc::proto
