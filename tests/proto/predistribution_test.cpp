#include "proto/predistribution.h"

#include <gtest/gtest.h>

#include <cmath>

#include "net/chord_network.h"
#include "net/sensor_network.h"
#include "util/check.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

TEST(Apportion, LargestRemainderExact) {
  const std::vector<double> w = {0.5, 0.25, 0.25};
  const auto parts = apportion_largest_remainder(8, w);
  EXPECT_EQ(parts, (std::vector<std::size_t>{4, 2, 2}));
}

TEST(Apportion, RoundsWithinOne) {
  const std::vector<double> w = {0.5138, 0.0768, 0.4094};  // Table 1, Case 1
  const auto parts = apportion_largest_remainder(1000, w);
  std::size_t total = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    total += parts[i];
    EXPECT_NEAR(static_cast<double>(parts[i]), 1000 * w[i], 1.0);
  }
  EXPECT_EQ(total, 1000u);
}

TEST(Apportion, ZeroWeightGetsZero) {
  const std::vector<double> w = {0.0, 0.6149, 0.3851};  // Table 1, Case 2
  const auto parts = apportion_largest_remainder(500, w);
  EXPECT_EQ(parts[0], 0u);
  EXPECT_EQ(parts[1] + parts[2], 500u);
}

TEST(Apportion, Validates) {
  const std::vector<double> zero = {0.0, 0.0};
  EXPECT_THROW(apportion_largest_remainder(5, zero), PreconditionError);
  const std::vector<double> neg = {1.0, -0.5};
  EXPECT_THROW(apportion_largest_remainder(5, neg), PreconditionError);
}

struct Fixture {
  PrioritySpec spec{std::vector<std::size_t>{4, 6, 10}};  // N = 20
  PriorityDistribution dist{std::vector<double>{0.3, 0.3, 0.4}};
  net::ChordParams net_params;
  Fixture() {
    net_params.nodes = 60;
    net_params.locations = 40;
    net_params.seed = 11;
  }
};

TEST(Predistribution, PartitionSizesFollowDistribution) {
  Fixture f;
  net::ChordNetwork overlay(f.net_params);
  ProtocolParams params;
  params.scheme = Scheme::kPlc;
  const Predistribution pd(overlay, f.spec, f.dist, params);
  std::vector<std::size_t> counts(3, 0);
  for (net::LocationId loc = 0; loc < overlay.locations(); ++loc) {
    ++counts[pd.level_of_location(loc)];
  }
  EXPECT_EQ(counts[0], 12u);
  EXPECT_EQ(counts[1], 12u);
  EXPECT_EQ(counts[2], 16u);
}

TEST(Predistribution, StoredBlocksMatchSchemeSupport) {
  for (Scheme scheme : {Scheme::kRlc, Scheme::kSlc, Scheme::kPlc}) {
    Fixture f;
    net::ChordNetwork overlay(f.net_params);
    ProtocolParams params;
    params.scheme = scheme;
    params.block_size = 8;
    Predistribution pd(overlay, f.spec, f.dist, params);
    Rng rng(101);
    const auto source = codes::SourceData<Field>::random(f.spec.total(), 8, rng);
    pd.disseminate(source, rng);
    for (net::LocationId loc = 0; loc < overlay.locations(); ++loc) {
      const StoredBlock* slot = pd.stored(loc);
      ASSERT_NE(slot, nullptr);
      const std::size_t level = pd.level_of_location(loc);
      EXPECT_EQ(slot->block.level, level);
      std::size_t begin = 0;
      std::size_t end = f.spec.total();
      if (scheme == Scheme::kSlc) {
        begin = f.spec.level_begin(level);
        end = f.spec.level_end(level);
      } else if (scheme == Scheme::kPlc) {
        end = f.spec.level_end(level);
      }
      for (std::size_t j = 0; j < f.spec.total(); ++j) {
        if (j < begin || j >= end) {
          ASSERT_EQ(slot->block.coeffs[j], 0)
              << codes::to_string(scheme) << " loc " << loc << " col " << j;
        } else {
          ASSERT_NE(slot->block.coeffs[j], 0);  // dense mode: every support
        }
      }
    }
  }
}

TEST(Predistribution, StoredPayloadIsLinearCombination) {
  Fixture f;
  net::ChordNetwork overlay(f.net_params);
  ProtocolParams params;
  params.scheme = Scheme::kPlc;
  params.block_size = 8;
  Predistribution pd(overlay, f.spec, f.dist, params);
  Rng rng(102);
  const auto source = codes::SourceData<Field>::random(f.spec.total(), 8, rng);
  pd.disseminate(source, rng);
  for (net::LocationId loc = 0; loc < overlay.locations(); ++loc) {
    const StoredBlock* slot = pd.stored(loc);
    ASSERT_NE(slot, nullptr);
    std::vector<Field::Symbol> expect(8, 0);
    for (std::size_t j = 0; j < f.spec.total(); ++j) {
      Field::axpy(std::span<Field::Symbol>(expect), slot->block.coeffs[j], source.block(j));
    }
    EXPECT_EQ(slot->block.payload, expect);
  }
}

TEST(Predistribution, DisseminationStatsAccounting) {
  Fixture f;
  net::ChordNetwork overlay(f.net_params);
  ProtocolParams params;
  params.scheme = Scheme::kSlc;
  params.block_size = 4;
  Predistribution pd(overlay, f.spec, f.dist, params);
  Rng rng(103);
  const auto source = codes::SourceData<Field>::random(f.spec.total(), 4, rng);
  const auto stats = pd.disseminate(source, rng);
  // Dense SLC: every location receives its whole level: messages =
  // sum_loc a_{level(loc)} = 12*4 + 12*6 + 16*10.
  EXPECT_EQ(stats.messages, 12u * 4 + 12u * 6 + 16u * 10);
  EXPECT_EQ(stats.failed_routes, 0u);
  EXPECT_GT(stats.max_node_load, 0u);
  EXPECT_GE(static_cast<double>(stats.max_node_load), stats.mean_node_load);
}

TEST(Predistribution, SparseModeReducesMessages) {
  Fixture f;
  net::ChordNetwork overlay(f.net_params);
  ProtocolParams dense;
  dense.scheme = Scheme::kPlc;
  ProtocolParams sparse = dense;
  sparse.sparse = true;
  sparse.sparsity_factor = 2.0;
  Rng rng(104);
  const auto source = codes::SourceData<Field>::random(f.spec.total(), dense.block_size, rng);
  Predistribution pd_dense(overlay, f.spec, f.dist, dense);
  Predistribution pd_sparse(overlay, f.spec, f.dist, sparse);
  const auto s1 = pd_dense.disseminate(source, rng);
  const auto s2 = pd_sparse.disseminate(source, rng);
  EXPECT_LT(s2.messages, s1.messages);
  // Sparse row weight: ceil(2 ln(width)), clamped.
  for (net::LocationId loc = 0; loc < overlay.locations(); ++loc) {
    const StoredBlock* slot = pd_sparse.stored(loc);
    ASSERT_NE(slot, nullptr);
    const std::size_t width = f.spec.level_end(pd_sparse.level_of_location(loc));
    const auto target = std::min<std::size_t>(
        width, static_cast<std::size_t>(std::ceil(2.0 * std::log(std::max<double>(2.0, width)))));
    EXPECT_EQ(slot->arrivals, target);
  }
}

TEST(Predistribution, WorksOnSensorOverlay) {
  Fixture f;
  net::SensorParams sp;
  sp.nodes = 120;
  sp.locations = 40;
  sp.seed = 13;
  net::SensorNetwork overlay(sp);
  ProtocolParams params;
  params.scheme = Scheme::kPlc;
  Predistribution pd(overlay, f.spec, f.dist, params);
  Rng rng(105);
  const auto source = codes::SourceData<Field>::random(f.spec.total(), params.block_size, rng);
  const auto stats = pd.disseminate(source, rng);
  EXPECT_EQ(stats.failed_routes, 0u);
  EXPECT_GT(stats.total_hops, 0u);
  EXPECT_EQ(pd.surviving_locations().size(), overlay.locations());
}

TEST(Predistribution, SurvivingLocationsShrinkWithFailures) {
  Fixture f;
  net::ChordNetwork overlay(f.net_params);
  ProtocolParams params;
  Predistribution pd(overlay, f.spec, f.dist, params);
  Rng rng(106);
  const auto source = codes::SourceData<Field>::random(f.spec.total(), params.block_size, rng);
  pd.disseminate(source, rng);
  const std::size_t before = pd.surviving_locations().size();
  // Kill every placement owner of the first five locations.
  for (net::LocationId loc = 0; loc < 5; ++loc) {
    overlay.fail_node(pd.stored(loc)->owner);
  }
  EXPECT_LT(pd.surviving_locations().size(), before);
}

TEST(Predistribution, ValidatesInputs) {
  Fixture f;
  net::ChordNetwork overlay(f.net_params);
  ProtocolParams params;
  EXPECT_THROW(Predistribution(overlay, f.spec, PriorityDistribution::uniform(2), params),
               PreconditionError);
  Predistribution pd(overlay, f.spec, f.dist, params);
  Rng rng(107);
  const auto wrong_count = codes::SourceData<Field>::random(5, params.block_size, rng);
  EXPECT_THROW(pd.disseminate(wrong_count, rng), PreconditionError);
  const auto wrong_size = codes::SourceData<Field>::random(f.spec.total(), 3, rng);
  EXPECT_THROW(pd.disseminate(wrong_size, rng), PreconditionError);
}

}  // namespace
}  // namespace prlc::proto
