// Cross-module integration: the decentralized protocol must reproduce the
// behaviour of the centralized coding model, and the analysis engine must
// predict what the network experiment measures.
#include <gtest/gtest.h>

#include "analysis/count_model.h"
#include "analysis/plc_analysis.h"
#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/collector.h"
#include "proto/predistribution.h"
#include "util/stats.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

TEST(Integration, ProtocolBlocksDecodeLikeCentralizedEncoding) {
  // Collect exactly M blocks from the network many times; the mean
  // decoded-level count must match the count-model prediction for M
  // blocks drawn with the location partition's level proportions.
  const PrioritySpec spec({3, 5, 8});  // N = 16
  const PriorityDistribution dist({0.25, 0.3, 0.45});
  net::ChordParams np;
  np.nodes = 60;
  np.locations = 40;
  np.seed = 41;

  const std::size_t m = 14;
  const std::size_t trials = 120;
  RunningStats network_levels;
  Rng rng(42);
  for (std::size_t t = 0; t < trials; ++t) {
    net::ChordNetwork overlay(np);
    ProtocolParams params;
    params.scheme = Scheme::kPlc;
    Predistribution pd(overlay, spec, dist, params);
    const auto source = codes::SourceData<Field>::random(spec.total(), params.block_size, rng);
    pd.disseminate(source, rng);
    codes::PriorityDecoder<Field> decoder(params.scheme, spec, params.block_size);
    CollectorOptions opt;
    opt.max_blocks = m;
    const auto result = collect(pd, decoder, opt, rng).result;
    network_levels.add(static_cast<double>(result.decoded_levels));
  }

  // Prediction: M blocks whose levels follow the *location partition*
  // proportions (hypergeometric ~ multinomial at these sizes). Use the
  // count-model MC with the partition's empirical distribution.
  const auto parts = apportion_largest_remainder(np.locations, dist.values());
  std::vector<double> part_dist;
  for (std::size_t c : parts) part_dist.push_back(static_cast<double>(c));
  normalize(std::span<double>(part_dist));
  const auto predicted = analysis::mc_expected_levels(
      Scheme::kPlc, spec, PriorityDistribution{std::move(part_dist)}, m, 30000, 43);

  EXPECT_NEAR(network_levels.mean(), predicted.mean_levels,
              3 * (network_levels.ci95_halfwidth() + predicted.ci95_levels) + 0.15);
}

TEST(Integration, SparseProtocolStillDecodesWithOverprovisioning) {
  const PrioritySpec spec({10, 20, 30});  // N = 60
  const PriorityDistribution dist = PriorityDistribution::uniform(3);
  net::ChordParams np;
  np.nodes = 100;
  np.locations = 180;  // 3x overprovisioning
  np.seed = 47;
  net::ChordNetwork overlay(np);
  ProtocolParams params;
  params.scheme = Scheme::kPlc;
  params.sparse = true;
  params.sparsity_factor = 4.0;
  Predistribution pd(overlay, spec, dist, params);
  Rng rng(48);
  const auto source = codes::SourceData<Field>::random(spec.total(), params.block_size, rng);
  const auto stats = pd.disseminate(source, rng);
  // Sparse mode must cost far fewer messages than dense (which would be
  // sum of supports ~ 180 * 30 on average).
  EXPECT_LT(stats.messages, 180u * 16u);
  const auto [result, verified] = collect_and_verify(pd, source, rng);
  EXPECT_EQ(result.decoded_levels, 3u);
  EXPECT_TRUE(verified);
}

TEST(Integration, PriorityOrderingUnderChurnMatchesAnalysis) {
  // After heavy churn the surviving-block count S determines (via the
  // analysis) how many levels should decode; verify the experiment
  // tracks the analysis prediction using the actual S of each trial.
  const PrioritySpec spec({3, 5, 8});
  const PriorityDistribution dist({0.4, 0.3, 0.3});
  analysis::PlcAnalysis plc(spec, dist);
  Rng rng(51);
  RunningStats diff;
  for (int t = 0; t < 40; ++t) {
    net::ChordParams np;
    np.nodes = 60;
    np.locations = 32;
    np.seed = rng();
    net::ChordNetwork overlay(np);
    ProtocolParams params;
    params.scheme = Scheme::kPlc;
    Predistribution pd(overlay, spec, dist, params);
    const auto source = codes::SourceData<Field>::random(spec.total(), params.block_size, rng);
    pd.disseminate(source, rng);
    net::kill_uniform_fraction(overlay, 0.5, rng);
    codes::PriorityDecoder<Field> decoder(params.scheme, spec, params.block_size);
    const auto result = collect(pd, decoder, {}, rng).result;
    // Analysis prediction conditioned on the surviving count. The
    // surviving blocks are a random subset of locations, whose levels are
    // close to multinomial(dist) again.
    const double predicted = plc.expected_levels(result.surviving_locations);
    diff.add(static_cast<double>(result.decoded_levels) - predicted);
  }
  EXPECT_NEAR(diff.mean(), 0.0, 0.35);
}

}  // namespace
}  // namespace prlc::proto
