// Storage-incarnation semantics: a rejoining node must not resurrect
// coded blocks that died with its previous incarnation.
#include <gtest/gtest.h>

#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/collector.h"
#include "proto/predistribution.h"
#include "proto/refresh.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;

struct World {
  PrioritySpec spec{std::vector<std::size_t>{3, 5}};  // N = 8
  PriorityDistribution dist{PriorityDistribution::uniform(2)};
  net::ChordNetwork overlay;
  ProtocolParams params;
  Rng rng{81};

  World() : overlay(make_net()) { params.block_size = 4; }

  static net::ChordParams make_net() {
    net::ChordParams p;
    p.nodes = 40;
    p.locations = 24;
    p.seed = 13;
    return p;
  }
};

TEST(Generation, RevivedOwnerDoesNotResurrectBlocks) {
  World w;
  Predistribution pd(w.overlay, w.spec, w.dist, w.params);
  const auto source = codes::SourceData<Field>::random(8, 4, w.rng);
  pd.disseminate(source, w.rng);
  ASSERT_EQ(pd.surviving_locations().size(), 24u);

  const net::NodeId victim = pd.stored(0)->owner;
  // Count how many locations the victim held.
  std::size_t held = 0;
  for (net::LocationId loc = 0; loc < 24; ++loc) {
    if (pd.stored(loc)->owner == victim) ++held;
  }
  w.overlay.fail_node(victim);
  EXPECT_EQ(pd.surviving_locations().size(), 24u - held);
  // The node rejoins — with empty storage: the blocks must stay lost.
  w.overlay.revive_node(victim);
  EXPECT_EQ(pd.surviving_locations().size(), 24u - held);
  EXPECT_EQ(pd.lost_locations().size(), held);
}

TEST(Generation, RefreshRepairsOntoRevivedNode) {
  World w;
  Predistribution pd(w.overlay, w.spec, w.dist, w.params);
  const auto source = codes::SourceData<Field>::random(8, 4, w.rng);
  pd.disseminate(source, w.rng);
  const net::NodeId victim = pd.stored(0)->owner;
  w.overlay.fail_node(victim);
  w.overlay.revive_node(victim);
  const auto result = refresh(pd, w.overlay.random_alive_node(w.rng), w.rng);
  EXPECT_GT(result.rebuilt_locations, 0u);
  EXPECT_TRUE(pd.lost_locations().empty());
  // Rebuilt entries carry the *current* incarnation, so they survive.
  EXPECT_EQ(pd.surviving_locations().size(), 24u);
}

TEST(Generation, SessionChurnWithRefreshKeepsDataAlive) {
  World w;
  Predistribution pd(w.overlay, w.spec, w.dist, w.params);
  const auto source = codes::SourceData<Field>::random(8, 4, w.rng);
  pd.disseminate(source, w.rng);
  for (int epoch = 0; epoch < 10; ++epoch) {
    net::apply_session_churn(w.overlay, 0.2, 0.5, w.rng);
    if (w.overlay.alive_count() == 0) break;
    refresh(pd, w.overlay.random_alive_node(w.rng), w.rng);
  }
  codes::PriorityDecoder<Field> dec(w.params.scheme, w.spec, w.params.block_size);
  const auto result = collect(pd, dec, {}, w.rng).result;
  EXPECT_EQ(result.decoded_levels, 2u);  // 3x redundancy + repair: data lives
}

}  // namespace
}  // namespace prlc::proto
