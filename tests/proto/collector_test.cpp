#include "proto/collector.h"

#include <gtest/gtest.h>

#include "net/chord_network.h"
#include "net/churn.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/gf64_fingerprint.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

struct TestHarness {
  PrioritySpec spec{std::vector<std::size_t>{4, 6, 10}};  // N = 20
  PriorityDistribution dist{std::vector<double>{0.3, 0.3, 0.4}};
  net::ChordNetwork overlay;
  ProtocolParams params;
  Rng rng{55};

  explicit TestHarness(Scheme scheme = Scheme::kPlc, std::size_t locations = 60)
      : overlay(make_net(locations)) {
    params.scheme = scheme;
    params.block_size = 6;
  }

  static net::ChordParams make_net(std::size_t locations) {
    net::ChordParams p;
    p.nodes = 80;
    p.locations = locations;
    p.seed = 21;
    return p;
  }
};

TEST(Collector, FullCollectionDecodesEverything) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  // 60 locations for 20 unknowns: decoding everything is near-certain.
  const auto [result, verified] = collect_and_verify(pd, source, s.rng);
  EXPECT_EQ(result.surviving_locations, 60u);
  EXPECT_EQ(result.decoded_levels, 3u);
  EXPECT_EQ(result.decoded_blocks, 20u);
  EXPECT_TRUE(verified);
  EXPECT_EQ(result.innovative_blocks, 20u);
}

TEST(Collector, TargetLevelsStopsEarly) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  codes::PriorityDecoder<Field> decoder(s.params.scheme, s.spec, s.params.block_size);
  CollectorOptions opt;
  opt.target_levels = 1;
  const auto result = collect(pd, decoder, opt, s.rng).result;
  EXPECT_TRUE(result.target_met);
  EXPECT_GE(result.decoded_levels, 1u);
  EXPECT_LT(result.blocks_retrieved, 60u);  // stopped before draining
}

TEST(Collector, MaxBlocksCapsRetrieval) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  codes::PriorityDecoder<Field> decoder(s.params.scheme, s.spec, s.params.block_size);
  CollectorOptions opt;
  opt.max_blocks = 7;
  const auto result = collect(pd, decoder, opt, s.rng).result;
  EXPECT_EQ(result.blocks_retrieved, 7u);
  EXPECT_FALSE(result.target_met);
}

TEST(Collector, TraceRecordsProgression) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  codes::PriorityDecoder<Field> decoder(s.params.scheme, s.spec, s.params.block_size);
  CollectorOptions opt;
  opt.trace = true;
  const auto result = collect(pd, decoder, opt, s.rng).result;
  ASSERT_EQ(result.level_trace.size(), result.blocks_retrieved);
  for (std::size_t i = 1; i < result.level_trace.size(); ++i) {
    EXPECT_GE(result.level_trace[i], result.level_trace[i - 1]);  // monotone
  }
  EXPECT_EQ(result.level_trace.back(), result.decoded_levels);
}

TEST(Collector, ChurnDegradesGracefully) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  net::kill_uniform_fraction(s.overlay, 0.9, s.rng);
  codes::PriorityDecoder<Field> decoder(s.params.scheme, s.spec, s.params.block_size);
  const auto result = collect(pd, decoder, {}, s.rng).result;
  EXPECT_LT(result.surviving_locations, 60u);
  EXPECT_LE(result.decoded_levels, 3u);
  // Whatever did decode must still verify against the original data.
  for (std::size_t j = 0; j < s.spec.total(); ++j) {
    if (decoder.is_block_decoded(j)) {
      const auto got = decoder.recovered(j);
      const auto want = source.block(j);
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
    }
  }
}

TEST(Collector, SlcSchemeEndToEnd) {
  TestHarness s(Scheme::kSlc);
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  const auto [result, verified] = collect_and_verify(pd, source, s.rng);
  EXPECT_EQ(result.decoded_levels, 3u);
  EXPECT_TRUE(verified);
}

TEST(Collector, OptionsValidated) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  codes::PriorityDecoder<Field> decoder(s.params.scheme, s.spec, s.params.block_size);
  CollectorOptions zero_blocks;
  zero_blocks.max_blocks = 0;  // previously silently collected nothing
  EXPECT_THROW(collect(pd, decoder, zero_blocks, s.rng), PreconditionError);
  CollectorOptions too_many_levels;
  too_many_levels.target_levels = s.spec.levels() + 1;  // previously never met
  EXPECT_THROW(collect(pd, decoder, too_many_levels, s.rng), PreconditionError);
  CollectorOptions bad_retry;
  bad_retry.retry.max_attempts = 0;
  EXPECT_THROW(collect(pd, decoder, bad_retry, s.rng), PreconditionError);
  CollectorOptions bad_jitter;
  bad_jitter.retry.jitter = 1.5;
  EXPECT_THROW(collect(pd, decoder, bad_jitter, s.rng), PreconditionError);
  // target_levels == levels() is the boundary and stays legal.
  CollectorOptions all_levels;
  all_levels.target_levels = s.spec.levels();
  const auto result = collect(pd, decoder, all_levels, s.rng).result;
  EXPECT_TRUE(result.target_met);
}

TEST(Collector, MismatchedDecoderRejected) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  codes::PriorityDecoder<Field> wrong_scheme(Scheme::kSlc, s.spec, s.params.block_size);
  EXPECT_THROW(collect(pd, wrong_scheme, {}, s.rng), PreconditionError);
  codes::PriorityDecoder<Field> wrong_spec(Scheme::kPlc, PrioritySpec({5, 5}),
                                           s.params.block_size);
  EXPECT_THROW(collect(pd, wrong_spec, {}, s.rng), PreconditionError);
}

// --- resilient collection over a FaultyChannel ---------------------------

namespace {

/// Deploy and hand back the pieces a resilient-collection test needs.
struct FaultHarness : TestHarness {
  Predistribution pd;
  codes::SourceData<Field> source;

  FaultHarness()
      : pd(overlay, spec, dist, params),
        source(codes::SourceData<Field>::random(spec.total(), 6, rng)) {
    pd.disseminate(source, rng);
  }

  FaultyChannel channel(const net::FaultSpec& fault_spec) {
    return FaultyChannel(pd, net::FaultPlan(fault_spec, overlay.nodes(), rng));
  }

  codes::PriorityDecoder<Field> decoder() {
    return codes::PriorityDecoder<Field>(params.scheme, spec, params.block_size);
  }

  /// Every decoded payload must match the original source data.
  void expect_verified(const codes::PriorityDecoder<Field>& d) {
    for (std::size_t j = 0; j < spec.total(); ++j) {
      if (!d.is_block_decoded(j)) continue;
      const auto got = d.recovered(j);
      const auto want = source.block(j);
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end())) << j;
    }
  }
};

}  // namespace

TEST(ResilientCollector, NullChannelMatchesPlainCollect) {
  FaultHarness h;
  auto d1 = h.decoder();
  Rng r1(9);
  const CollectionResult plain = collect(h.pd, d1, {}, r1).result;
  auto d2 = h.decoder();
  Rng r2(9);
  FaultyChannel channel(h.pd);
  const CollectionOutcome outcome = collect(channel, d2, {}, r2);
  EXPECT_EQ(outcome.result.decoded_levels, plain.decoded_levels);
  EXPECT_EQ(outcome.result.blocks_retrieved, plain.blocks_retrieved);
  EXPECT_EQ(outcome.result.innovative_blocks, plain.innovative_blocks);
  EXPECT_EQ(outcome.faults.total(), 0u);
  EXPECT_EQ(outcome.retries, 0u);
  EXPECT_EQ(outcome.hedges, 0u);
  EXPECT_FALSE(outcome.degraded);
  EXPECT_EQ(r1(), r2());  // identical draw streams
}

TEST(ResilientCollector, RetriesHealTransientCorruption) {
  FaultHarness h;
  net::FaultSpec faults;
  faults.corrupt_rate = 0.5;  // every attempt is a coin flip; 4 attempts
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  const CollectionOutcome outcome = collect(channel, decoder, {}, h.rng);
  // 60 locations for 20 unknowns and corruption heals on retry: still full.
  EXPECT_EQ(outcome.result.decoded_levels, 3u);
  EXPECT_GT(outcome.faults.wire_errors, 0u);
  EXPECT_GT(outcome.retries, 0u);
  h.expect_verified(decoder);
}

TEST(ResilientCollector, TotalCorruptionDegradesGracefullyNeverThrows) {
  FaultHarness h;
  net::FaultSpec faults;
  faults.corrupt_rate = 1.0;  // every attempt of every fetch is corrupt
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  CollectionOutcome outcome;
  ASSERT_NO_THROW(outcome = collect(channel, decoder, {}, h.rng));
  EXPECT_EQ(outcome.result.decoded_levels, 0u);
  EXPECT_EQ(outcome.result.blocks_retrieved, 0u);
  EXPECT_TRUE(outcome.degraded);
  EXPECT_GT(outcome.faults.wire_errors, 0u);
  // Nothing corrupt ever reached the decoder as a "good" block.
  h.expect_verified(decoder);
}

TEST(ResilientCollector, CorruptedPayloadsNeverVerifyAsCorrect) {
  FaultHarness h;
  net::FaultSpec faults;
  faults.corrupt_rate = 0.3;
  faults.truncate_rate = 0.2;
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  const CollectionOutcome outcome = collect(channel, decoder, {}, h.rng);
  EXPECT_GT(outcome.faults.wire_errors, 0u);
  // Whatever decoded must be byte-identical to the original source.
  h.expect_verified(decoder);
}

TEST(ResilientCollector, FailureBudgetBlacklistsHopelessNodes) {
  FaultHarness h;
  net::FaultSpec faults;
  faults.transient_rate = 1.0;  // every attempt on every node fails
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  const CollectionOutcome outcome = collect(channel, decoder, {}, h.rng);
  EXPECT_EQ(outcome.result.blocks_retrieved, 0u);
  EXPECT_GT(outcome.blacklisted_nodes, 0u);
  EXPECT_GT(outcome.retries, 0u);
  EXPECT_EQ(outcome.blocks_lost, outcome.result.surviving_locations);
  EXPECT_TRUE(outcome.degraded);
}

TEST(ResilientCollector, SlowNodesTriggerHedges) {
  FaultHarness h;
  net::FaultSpec faults;
  faults.slow_fraction = 0.5;
  faults.slow_multiplier = 64.0;
  faults.mean_latency_us = 1000;  // slow draws land far beyond the deadline
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  CollectorOptions options;
  options.retry.hedge_deadline_us = 2000;
  const CollectionOutcome outcome = collect(channel, decoder, options, h.rng);
  EXPECT_GT(outcome.hedges, 0u);
  EXPECT_GT(outcome.sim_elapsed_us, 0u);
  // Hedging costs nothing correctness-wise: everything still decodes.
  EXPECT_EQ(outcome.result.decoded_levels, 3u);
  h.expect_verified(decoder);
}

TEST(ResilientCollector, HedgingCanBeDisabled) {
  FaultHarness h;
  net::FaultSpec faults;
  faults.slow_fraction = 0.5;
  faults.slow_multiplier = 64.0;
  faults.mean_latency_us = 1000;
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  CollectorOptions options;
  options.retry.hedging = false;
  const CollectionOutcome outcome = collect(channel, decoder, options, h.rng);
  EXPECT_EQ(outcome.hedges, 0u);
}

TEST(ResilientCollector, MidCollectionCrashesLoseBlocksNotLevels) {
  FaultHarness h;
  net::FaultSpec faults;
  faults.crash_rate = 0.1;
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  const CollectionOutcome outcome = collect(channel, decoder, {}, h.rng);
  EXPECT_GT(outcome.faults.crashes, 0u);
  EXPECT_GT(outcome.blocks_lost, 0u);
  EXPECT_GT(channel.crashed_nodes(), 0u);
  // 60 locations for 20 unknowns: ~10% crash losses leave plenty of margin.
  EXPECT_EQ(outcome.result.decoded_levels, 3u);
  h.expect_verified(decoder);
}

TEST(ResilientCollector, TargetLevelsStillStopsEarlyUnderFaults) {
  FaultHarness h;
  net::FaultSpec faults;
  faults.corrupt_rate = 0.2;
  faults.timeout_rate = 0.1;
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  CollectorOptions options;
  options.target_levels = 1;
  const CollectionOutcome outcome = collect(channel, decoder, options, h.rng);
  EXPECT_TRUE(outcome.result.target_met);
  EXPECT_GE(outcome.result.decoded_levels, 1u);
  EXPECT_LT(outcome.result.blocks_retrieved, 60u);
}

// --- satellite regression: CRC rejection routes around the bad node ------

TEST(ResilientCollector, WireRejectedBlockRetriesAgainstADifferentNode) {
  FaultHarness h;
  obs::set_enabled(true);
  const std::uint64_t corrupt_before = obs::counter("collector.corrupt_blocks").value();
  net::FaultSpec faults;
  faults.corrupt_rate = 0.5;
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  CollectorOptions options;
  options.trace = true;
  const CollectionOutcome outcome = collect(channel, decoder, options, h.rng);
  ASSERT_GT(outcome.faults.wire_errors, 0u);
  // Every CRC rejection increments collector.corrupt_blocks...
  EXPECT_EQ(obs::counter("collector.corrupt_blocks").value() - corrupt_before,
            outcome.faults.wire_errors);
  // ...and the rejected frame never reached the decoder: only delivered
  // frames count as retrieved, and everything decoded verifies.
  std::size_t delivered = 0;
  for (const FetchAttempt& a : outcome.fetch_log) delivered += a.delivered ? 1 : 0;
  EXPECT_EQ(delivered, outcome.result.blocks_retrieved);
  h.expect_verified(decoder);
  // A wire rejection defers the location: the immediately following fetch
  // targets a *different* location — i.e. the collector routes around the
  // node that just served garbage instead of hammering it in place.
  std::size_t rejections_followed = 0, different_node = 0;
  for (std::size_t i = 0; i + 1 < outcome.fetch_log.size(); ++i) {
    if (!outcome.fetch_log[i].wire_rejected) continue;
    ++rejections_followed;
    EXPECT_NE(outcome.fetch_log[i + 1].location, outcome.fetch_log[i].location);
    different_node += outcome.fetch_log[i + 1].node != outcome.fetch_log[i].node ? 1 : 0;
  }
  ASSERT_GT(rejections_followed, 0u);
  EXPECT_GT(different_node, 0u);
}

// --- integrity: fingerprint manifest against silent corruption -----------

/// Flatten the harness's source data and fingerprint it.
util::FingerprintManifest make_manifest(const FaultHarness& h,
                                        std::uint64_t seed = 4242) {
  std::vector<std::uint8_t> flat;
  for (std::size_t j = 0; j < h.spec.total(); ++j) {
    const auto row = h.source.block(j);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  return util::build_manifest(seed, flat, h.params.block_size);
}

TEST(IntegrityCollector, CleanChannelWithManifestHasZeroViolations) {
  FaultHarness h;
  const auto manifest = make_manifest(h);
  FaultyChannel channel(h.pd);
  auto decoder = h.decoder();
  CollectorOptions options;
  options.manifest = &manifest;
  const CollectionOutcome outcome = collect(channel, decoder, options, h.rng);
  EXPECT_EQ(outcome.faults.integrity_violations, 0u);
  EXPECT_EQ(outcome.quarantined_nodes, 0u);
  EXPECT_EQ(outcome.result.decoded_levels, 3u);
  h.expect_verified(decoder);
}

TEST(IntegrityCollector, BitRotIsDetectedLocalizedAndQuarantined) {
  FaultHarness h;
  const auto manifest = make_manifest(h);
  net::FaultSpec faults;
  faults.bitrot_rate = 1.0;  // every stored replica rots on first touch
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  CollectorOptions options;
  options.manifest = &manifest;
  options.trace = true;
  CollectionOutcome outcome;
  ASSERT_NO_THROW(outcome = collect(channel, decoder, options, h.rng));
  // Every delivered frame was rotten; the fingerprint caught each one and
  // not a single wrong byte reached the decoder.
  EXPECT_GT(outcome.faults.integrity_violations, 0u);
  EXPECT_GT(outcome.quarantined_nodes, 0u);
  EXPECT_EQ(outcome.result.blocks_retrieved, 0u);
  EXPECT_EQ(outcome.result.decoded_levels, 0u);
  EXPECT_TRUE(outcome.degraded);
  // Localization: each violation names a location the channel really rotted.
  for (const FetchAttempt& a : outcome.fetch_log) {
    if (a.integrity_rejected) EXPECT_TRUE(channel.location_rotten(a.location));
    EXPECT_FALSE(a.delivered);
  }
  h.expect_verified(decoder);  // vacuous but proves no garbage decoded
}

TEST(IntegrityCollector, ByzantineMinorityIsLocalizedAndDecodingSurvives) {
  FaultHarness h;
  const auto manifest = make_manifest(h);
  net::FaultSpec faults;
  faults.byzantine_fraction = 0.2;
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  CollectorOptions options;
  options.manifest = &manifest;
  options.trace = true;
  const CollectionOutcome outcome = collect(channel, decoder, options, h.rng);
  // Violations localize exactly: only genuinely Byzantine nodes are ever
  // accused, and every quarantine followed a real forgery.
  std::size_t violations = 0;
  for (const FetchAttempt& a : outcome.fetch_log) {
    if (!a.integrity_rejected) continue;
    ++violations;
    EXPECT_TRUE(channel.plan().profile(a.node).byzantine) << a.node;
  }
  EXPECT_EQ(violations, outcome.faults.integrity_violations);
  EXPECT_GT(outcome.faults.integrity_violations, 0u);
  EXPECT_GT(outcome.quarantined_nodes, 0u);
  // 60 locations for 20 unknowns: the honest majority still decodes all
  // levels, and every decoded byte is correct.
  EXPECT_EQ(outcome.result.decoded_levels, 3u);
  h.expect_verified(decoder);
}

TEST(IntegrityCollector, WithoutAManifestForgedPayloadsPoisonTheDecode) {
  // The counterfactual that makes the manifest load-bearing: an all-
  // Byzantine channel serves CRC-valid forgeries, the decoder happily
  // solves the forged system, and the output is wrong.
  FaultHarness h;
  net::FaultSpec faults;
  faults.byzantine_fraction = 1.0;
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  const CollectionOutcome outcome = collect(channel, decoder, {}, h.rng);
  EXPECT_EQ(outcome.faults.integrity_violations, 0u);  // nothing to catch it
  ASSERT_EQ(outcome.result.decoded_levels, 3u);
  bool any_wrong = false;
  for (std::size_t j = 0; j < h.spec.total(); ++j) {
    if (!decoder.is_block_decoded(j)) continue;
    const auto got = decoder.recovered(j);
    const auto want = h.source.block(j);
    if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) any_wrong = true;
  }
  EXPECT_TRUE(any_wrong);
}

TEST(IntegrityCollector, MixedSilentAndLoudFaultsNeverYieldWrongBytes) {
  // The acceptance criterion: under any injected silent-corruption mix the
  // decoder must never return wrong source bytes.
  FaultHarness h;
  const auto manifest = make_manifest(h);
  net::FaultSpec faults;
  faults.bitrot_rate = 0.1;
  faults.byzantine_fraction = 0.15;
  faults.corrupt_rate = 0.1;
  faults.truncate_rate = 0.05;
  faults.timeout_rate = 0.1;
  auto channel = h.channel(faults);
  auto decoder = h.decoder();
  CollectorOptions options;
  options.manifest = &manifest;
  CollectionOutcome outcome;
  ASSERT_NO_THROW(outcome = collect(channel, decoder, options, h.rng));
  h.expect_verified(decoder);
  EXPECT_GT(outcome.faults.integrity_violations, 0u);
}

TEST(IntegrityCollector, ManifestMustMatchTheSpec) {
  FaultHarness h;
  util::FingerprintManifest wrong;
  wrong.seed = 1;
  wrong.block_size = h.params.block_size;
  wrong.fingerprints.resize(h.spec.total() + 1);
  auto decoder = h.decoder();
  CollectorOptions options;
  options.manifest = &wrong;
  EXPECT_THROW(collect(h.pd, decoder, options, h.rng), PreconditionError);
}

}  // namespace
}  // namespace prlc::proto
