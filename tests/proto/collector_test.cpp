#include "proto/collector.h"

#include <gtest/gtest.h>

#include "net/chord_network.h"
#include "net/churn.h"
#include "util/check.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

struct TestHarness {
  PrioritySpec spec{std::vector<std::size_t>{4, 6, 10}};  // N = 20
  PriorityDistribution dist{std::vector<double>{0.3, 0.3, 0.4}};
  net::ChordNetwork overlay;
  ProtocolParams params;
  Rng rng{55};

  explicit TestHarness(Scheme scheme = Scheme::kPlc, std::size_t locations = 60)
      : overlay(make_net(locations)) {
    params.scheme = scheme;
    params.block_size = 6;
  }

  static net::ChordParams make_net(std::size_t locations) {
    net::ChordParams p;
    p.nodes = 80;
    p.locations = locations;
    p.seed = 21;
    return p;
  }
};

TEST(Collector, FullCollectionDecodesEverything) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  // 60 locations for 20 unknowns: decoding everything is near-certain.
  const auto [result, verified] = collect_and_verify(pd, source, s.rng);
  EXPECT_EQ(result.surviving_locations, 60u);
  EXPECT_EQ(result.decoded_levels, 3u);
  EXPECT_EQ(result.decoded_blocks, 20u);
  EXPECT_TRUE(verified);
  EXPECT_EQ(result.innovative_blocks, 20u);
}

TEST(Collector, TargetLevelsStopsEarly) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  codes::PriorityDecoder<Field> decoder(s.params.scheme, s.spec, s.params.block_size);
  CollectorOptions opt;
  opt.target_levels = 1;
  const auto result = collect(pd, decoder, opt, s.rng);
  EXPECT_TRUE(result.target_met);
  EXPECT_GE(result.decoded_levels, 1u);
  EXPECT_LT(result.blocks_retrieved, 60u);  // stopped before draining
}

TEST(Collector, MaxBlocksCapsRetrieval) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  codes::PriorityDecoder<Field> decoder(s.params.scheme, s.spec, s.params.block_size);
  CollectorOptions opt;
  opt.max_blocks = 7;
  const auto result = collect(pd, decoder, opt, s.rng);
  EXPECT_EQ(result.blocks_retrieved, 7u);
  EXPECT_FALSE(result.target_met);
}

TEST(Collector, TraceRecordsProgression) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  codes::PriorityDecoder<Field> decoder(s.params.scheme, s.spec, s.params.block_size);
  const auto result = collect(pd, decoder, {}, s.rng, /*trace=*/true);
  ASSERT_EQ(result.level_trace.size(), result.blocks_retrieved);
  for (std::size_t i = 1; i < result.level_trace.size(); ++i) {
    EXPECT_GE(result.level_trace[i], result.level_trace[i - 1]);  // monotone
  }
  EXPECT_EQ(result.level_trace.back(), result.decoded_levels);
}

TEST(Collector, ChurnDegradesGracefully) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  net::kill_uniform_fraction(s.overlay, 0.9, s.rng);
  codes::PriorityDecoder<Field> decoder(s.params.scheme, s.spec, s.params.block_size);
  const auto result = collect(pd, decoder, {}, s.rng);
  EXPECT_LT(result.surviving_locations, 60u);
  EXPECT_LE(result.decoded_levels, 3u);
  // Whatever did decode must still verify against the original data.
  for (std::size_t j = 0; j < s.spec.total(); ++j) {
    if (decoder.is_block_decoded(j)) {
      const auto got = decoder.recovered(j);
      const auto want = source.block(j);
      EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
    }
  }
}

TEST(Collector, SlcSchemeEndToEnd) {
  TestHarness s(Scheme::kSlc);
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  const auto source = codes::SourceData<Field>::random(s.spec.total(), 6, s.rng);
  pd.disseminate(source, s.rng);
  const auto [result, verified] = collect_and_verify(pd, source, s.rng);
  EXPECT_EQ(result.decoded_levels, 3u);
  EXPECT_TRUE(verified);
}

TEST(Collector, MismatchedDecoderRejected) {
  TestHarness s;
  Predistribution pd(s.overlay, s.spec, s.dist, s.params);
  codes::PriorityDecoder<Field> wrong_scheme(Scheme::kSlc, s.spec, s.params.block_size);
  EXPECT_THROW(collect(pd, wrong_scheme, {}, s.rng), PreconditionError);
  codes::PriorityDecoder<Field> wrong_spec(Scheme::kPlc, PrioritySpec({5, 5}),
                                           s.params.block_size);
  EXPECT_THROW(collect(pd, wrong_spec, {}, s.rng), PreconditionError);
}

}  // namespace
}  // namespace prlc::proto
