#include "proto/fault_channel.h"

#include <gtest/gtest.h>

#include "codes/wire_format.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "util/check.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

struct TestHarness {
  PrioritySpec spec{std::vector<std::size_t>{4, 6, 10}};  // N = 20
  PriorityDistribution dist{std::vector<double>{0.3, 0.3, 0.4}};
  net::ChordNetwork overlay;
  ProtocolParams params;
  Rng rng{77};

  TestHarness() : overlay(make_net()) { params.block_size = 6; }

  static net::ChordParams make_net() {
    net::ChordParams p;
    p.nodes = 80;
    p.locations = 60;
    p.seed = 23;
    return p;
  }

  Predistribution deploy() {
    Predistribution pd(overlay, spec, dist, params);
    const auto source = codes::SourceData<Field>::random(spec.total(), 6, rng);
    pd.disseminate(source, rng);
    return pd;
  }
};

TEST(FaultyChannel, NullPlanRoundTripsPristineBytes) {
  TestHarness h;
  const Predistribution pd = h.deploy();
  FaultyChannel channel(pd);
  Rng probe(5), untouched(5);
  for (net::LocationId loc : channel.retrievable_locations()) {
    const FetchReply reply = channel.fetch(loc, probe);
    EXPECT_EQ(reply.fault, net::FaultClass::kNone);
    EXPECT_EQ(reply.latency_us, 0u);
    const codes::WireBlock wire = codes::decode_wire(reply.bytes);
    const StoredBlock* slot = pd.stored(loc);
    ASSERT_NE(slot, nullptr);
    EXPECT_EQ(wire.block.coeffs, slot->block.coeffs);
    EXPECT_EQ(wire.block.payload, slot->block.payload);
    EXPECT_EQ(wire.block.level, slot->block.level);
  }
  // The null plan must not consume a single Rng draw.
  EXPECT_EQ(probe(), untouched());
}

TEST(FaultyChannel, CertainCorruptionIsAlwaysCaughtByTheWire) {
  TestHarness h;
  const Predistribution pd = h.deploy();
  net::FaultSpec spec;
  spec.corrupt_rate = 1.0;
  net::FaultPlan plan(spec, h.overlay.nodes(), h.rng);
  FaultyChannel channel(pd, std::move(plan));
  for (net::LocationId loc : channel.retrievable_locations()) {
    const FetchReply reply = channel.fetch(loc, h.rng);
    ASSERT_EQ(reply.fault, net::FaultClass::kNone);  // corruption is in-band
    EXPECT_THROW(codes::decode_wire(reply.bytes), codes::WireFormatError);
  }
  EXPECT_EQ(channel.injected().corruptions, channel.retrievable_locations().size());
}

TEST(FaultyChannel, CertainTruncationIsAlwaysCaughtByTheWire) {
  TestHarness h;
  const Predistribution pd = h.deploy();
  net::FaultSpec spec;
  spec.truncate_rate = 1.0;
  net::FaultPlan plan(spec, h.overlay.nodes(), h.rng);
  FaultyChannel channel(pd, std::move(plan));
  const auto locs = channel.retrievable_locations();
  for (net::LocationId loc : locs) {
    const FetchReply reply = channel.fetch(loc, h.rng);
    ASSERT_EQ(reply.fault, net::FaultClass::kNone);
    EXPECT_THROW(codes::decode_wire(reply.bytes), codes::WireFormatError);
  }
  EXPECT_EQ(channel.injected().truncations, locs.size());
}

TEST(FaultyChannel, CrashRemovesTheNodeForTheRestOfTheCollection) {
  TestHarness h;
  const Predistribution pd = h.deploy();
  net::FaultSpec spec;
  spec.crash_rate = 1.0;
  net::FaultPlan plan(spec, h.overlay.nodes(), h.rng);
  FaultyChannel channel(pd, std::move(plan));
  const auto locs = channel.retrievable_locations();
  ASSERT_FALSE(locs.empty());
  const FetchReply first = channel.fetch(locs[0], h.rng);
  EXPECT_EQ(first.fault, net::FaultClass::kCrash);
  EXPECT_TRUE(channel.node_crashed(first.node));
  EXPECT_GE(channel.crashed_nodes(), 1u);
  // A re-fetch from the same location now hits a dead node, no new draw.
  const FetchReply again = channel.fetch(locs[0], h.rng);
  EXPECT_EQ(again.fault, net::FaultClass::kDeadNode);
  // And the location dropped out of the retrievable set.
  const auto remaining = channel.retrievable_locations();
  for (net::LocationId loc : remaining) {
    EXPECT_NE(pd.stored(loc)->owner, first.node);
  }
  EXPECT_LT(remaining.size(), locs.size());
}

TEST(FaultyChannel, ChurnedOwnerReportsDeadNode) {
  TestHarness h;
  const Predistribution pd = h.deploy();
  const auto locs = pd.surviving_locations();
  ASSERT_FALSE(locs.empty());
  const net::NodeId owner = pd.stored(locs[0])->owner;
  h.overlay.fail_node(owner);
  FaultyChannel channel(pd);
  const FetchReply reply = channel.fetch(locs[0], h.rng);
  EXPECT_EQ(reply.fault, net::FaultClass::kDeadNode);
  EXPECT_TRUE(reply.bytes.empty());
}

TEST(FaultyChannel, FetchRequiresAStoredBlock) {
  TestHarness h;
  Predistribution pd(h.overlay, h.spec, h.dist, h.params);  // never disseminated
  FaultyChannel channel(pd);
  EXPECT_THROW(channel.fetch(0, h.rng), PreconditionError);
  EXPECT_THROW(channel.owner_of(0), PreconditionError);
}

TEST(FaultyChannel, BitRotIsSilentStickyAndLocalized) {
  TestHarness h;
  const Predistribution pd = h.deploy();
  net::FaultSpec spec;
  spec.bitrot_rate = 1.0;
  net::FaultPlan plan(spec, h.overlay.nodes(), h.rng);
  FaultyChannel channel(pd, std::move(plan));
  const auto locs = channel.retrievable_locations();
  ASSERT_FALSE(locs.empty());
  for (net::LocationId loc : locs) {
    const FetchReply reply = channel.fetch(loc, h.rng);
    ASSERT_EQ(reply.fault, net::FaultClass::kNone);  // silent
    // The frame is well-formed: CRC and bounds all pass...
    const codes::WireBlock wire = codes::decode_wire(reply.bytes);
    const StoredBlock* slot = pd.stored(loc);
    // ...but exactly one payload byte differs from the stored truth.
    EXPECT_EQ(wire.block.coeffs, slot->block.coeffs);
    std::size_t diffs = 0;
    for (std::size_t i = 0; i < wire.block.payload.size(); ++i) {
      diffs += wire.block.payload[i] != slot->block.payload[i] ? 1 : 0;
    }
    EXPECT_EQ(diffs, 1u);
    EXPECT_TRUE(channel.location_rotten(loc));
    // Sticky: a refetch serves the identical rotten bytes.
    EXPECT_EQ(channel.fetch(loc, h.rng).bytes, reply.bytes);
  }
  EXPECT_EQ(channel.injected().rotted_locations, locs.size());
  EXPECT_EQ(channel.injected().bitrot_frames, 2 * locs.size());
}

TEST(FaultyChannel, ByzantineNodesForgeConsistentlyAndSilently) {
  TestHarness h;
  const Predistribution pd = h.deploy();
  net::FaultSpec spec;
  spec.byzantine_fraction = 1.0;  // every node lies
  net::FaultPlan plan(spec, h.overlay.nodes(), h.rng);
  FaultyChannel channel(pd, std::move(plan));
  Rng probe(5);
  std::size_t forged = 0;
  for (net::LocationId loc : channel.retrievable_locations()) {
    const FetchReply reply = channel.fetch(loc, probe);
    ASSERT_EQ(reply.fault, net::FaultClass::kNone);
    const codes::WireBlock wire = codes::decode_wire(reply.bytes);  // CRC passes
    const StoredBlock* slot = pd.stored(loc);
    EXPECT_EQ(wire.block.coeffs, slot->block.coeffs);
    EXPECT_NE(wire.block.payload, slot->block.payload);
    ++forged;
    // The lie is deterministic per (node, location): refetch matches.
    EXPECT_EQ(channel.fetch(loc, probe).bytes, reply.bytes);
  }
  EXPECT_EQ(channel.injected().byzantine_frames, 2 * forged);
  EXPECT_EQ(channel.injected().rotted_locations, 0u);
}

TEST(FaultyChannel, HonestNodesServePristineBytesUnderAByzantineMix) {
  TestHarness h;
  const Predistribution pd = h.deploy();
  net::FaultSpec spec;
  spec.byzantine_fraction = 0.3;
  net::FaultPlan plan(spec, h.overlay.nodes(), h.rng);
  FaultyChannel channel(pd, std::move(plan));
  std::size_t honest = 0, lying = 0;
  for (net::LocationId loc : channel.retrievable_locations()) {
    const FetchReply reply = channel.fetch(loc, h.rng);
    const codes::WireBlock wire = codes::decode_wire(reply.bytes);
    const StoredBlock* slot = pd.stored(loc);
    const bool byz = channel.plan().profile(slot->owner).byzantine;
    if (byz) {
      EXPECT_NE(wire.block.payload, slot->block.payload);
      ++lying;
    } else {
      EXPECT_EQ(wire.block.payload, slot->block.payload);
      ++honest;
    }
  }
  EXPECT_GT(honest, 0u);
  EXPECT_GT(lying, 0u);
  EXPECT_EQ(channel.injected().byzantine_frames, lying);
}

TEST(FaultyChannel, TimeoutAndTransientCarryNoBytes) {
  TestHarness h;
  const Predistribution pd = h.deploy();
  net::FaultSpec spec;
  spec.timeout_rate = 0.5;
  spec.transient_rate = 0.5;
  net::FaultPlan plan(spec, h.overlay.nodes(), h.rng);
  FaultyChannel channel(pd, std::move(plan));
  for (net::LocationId loc : channel.retrievable_locations()) {
    const FetchReply reply = channel.fetch(loc, h.rng);
    ASSERT_TRUE(reply.fault == net::FaultClass::kTimeout ||
                reply.fault == net::FaultClass::kTransient);
    EXPECT_TRUE(reply.bytes.empty());
  }
  EXPECT_GT(channel.injected().timeouts, 0u);
  EXPECT_GT(channel.injected().transient_errors, 0u);
}

}  // namespace
}  // namespace prlc::proto
