// Parameterized end-to-end sweeps: for every combination of overlay
// family, coding scheme, sparse mode, and capacity limit, the full
// pipeline (deploy -> disseminate -> churn -> collect -> decode ->
// verify payloads) must behave identically in its guarantees.
#include <gtest/gtest.h>

#include <memory>

#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "net/sensor_network.h"
#include "proto/collector.h"
#include "proto/persistence_experiment.h"
#include "proto/predistribution.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

struct E2eCase {
  const char* name;
  OverlayKind overlay;
  Scheme scheme;
  bool sparse;
  std::size_t capacity;  // 0 = unlimited
};

std::ostream& operator<<(std::ostream& os, const E2eCase& c) { return os << c.name; }

class EndToEnd : public ::testing::TestWithParam<E2eCase> {
 protected:
  static constexpr std::size_t kNodes = 120;
  static constexpr std::size_t kLocations = 72;  // 3x the data volume

  std::unique_ptr<net::Overlay> make_overlay(std::uint64_t seed) const {
    if (GetParam().overlay == OverlayKind::kSensor) {
      net::SensorParams p;
      p.nodes = kNodes;
      p.locations = kLocations;
      p.seed = seed;
      return std::make_unique<net::SensorNetwork>(p);
    }
    net::ChordParams p;
    p.nodes = kNodes;
    p.locations = kLocations;
    p.seed = seed;
    return std::make_unique<net::ChordNetwork>(p);
  }

  ProtocolParams make_params() const {
    ProtocolParams params;
    params.scheme = GetParam().scheme;
    params.block_size = 6;
    params.sparse = GetParam().sparse;
    params.sparsity_factor = 4.0;
    params.node_capacity = GetParam().capacity;
    return params;
  }
};

TEST_P(EndToEnd, CleanNetworkRecoversAndVerifiesEverything) {
  const PrioritySpec spec({4, 8, 12});  // N = 24
  const PriorityDistribution dist({0.3, 0.3, 0.4});
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam().overlay));
  auto overlay = make_overlay(rng());
  Predistribution pd(*overlay, spec, dist, make_params());
  const auto source = codes::SourceData<Field>::random(spec.total(), 6, rng);
  const auto stats = pd.disseminate(source, rng);
  ASSERT_EQ(stats.failed_routes, 0u);
  ASSERT_EQ(stats.capacity_overflows, 0u);
  if (GetParam().capacity > 0) {
    ASSERT_LE(stats.max_node_load, GetParam().capacity);
  }

  const auto [result, verified] = collect_and_verify(pd, source, rng);
  EXPECT_EQ(result.decoded_levels, 3u) << "3x overprovisioning must decode all";
  EXPECT_TRUE(verified);
}

TEST_P(EndToEnd, ChurnNeverProducesWrongData) {
  const PrioritySpec spec({4, 8, 12});
  const PriorityDistribution dist = PriorityDistribution::uniform(3);
  Rng rng(2000 + static_cast<std::uint64_t>(GetParam().scheme));
  auto overlay = make_overlay(rng());
  Predistribution pd(*overlay, spec, dist, make_params());
  const auto source = codes::SourceData<Field>::random(spec.total(), 6, rng);
  pd.disseminate(source, rng);
  net::kill_uniform_fraction(*overlay, 0.6, rng);

  codes::PriorityDecoder<Field> decoder(GetParam().scheme, spec, 6);
  collect(pd, decoder, {}, rng);
  // Whatever survives, every decoded block must be byte-exact.
  for (std::size_t j = 0; j < spec.total(); ++j) {
    if (!decoder.is_block_decoded(j)) continue;
    const auto got = decoder.recovered(j);
    const auto want = source.block(j);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end())) << "block " << j;
  }
}

TEST_P(EndToEnd, DecodedLevelsMonotoneUnderIncreasingChurn) {
  const PrioritySpec spec({4, 8, 12});
  const PriorityDistribution dist = PriorityDistribution::uniform(3);
  Rng rng(3000);
  auto overlay = make_overlay(rng());
  Predistribution pd(*overlay, spec, dist, make_params());
  const auto source = codes::SourceData<Field>::random(spec.total(), 6, rng);
  pd.disseminate(source, rng);

  std::size_t last_levels = spec.levels();
  std::size_t last_surviving = kLocations + 1;
  for (int wave = 0; wave < 5; ++wave) {
    net::kill_uniform_fraction(*overlay, 0.3, rng);
    codes::PriorityDecoder<Field> decoder(GetParam().scheme, spec, 6);
    const auto result = collect(pd, decoder, {}, rng).result;
    EXPECT_LT(result.surviving_locations, last_surviving);
    last_surviving = result.surviving_locations + 1;  // allow equality at 0
    // Not strictly monotone per-wave (collection order is irrelevant,
    // survivors only shrink) — levels can only stay or drop.
    EXPECT_LE(result.decoded_levels, last_levels);
    last_levels = result.decoded_levels;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EndToEnd,
    ::testing::Values(
        E2eCase{"chord_plc_dense", OverlayKind::kChord, Scheme::kPlc, false, 0},
        E2eCase{"chord_slc_dense", OverlayKind::kChord, Scheme::kSlc, false, 0},
        E2eCase{"chord_rlc_dense", OverlayKind::kChord, Scheme::kRlc, false, 0},
        E2eCase{"chord_plc_sparse", OverlayKind::kChord, Scheme::kPlc, true, 0},
        E2eCase{"chord_plc_capacity", OverlayKind::kChord, Scheme::kPlc, false, 2},
        E2eCase{"sensor_plc_dense", OverlayKind::kSensor, Scheme::kPlc, false, 0},
        E2eCase{"sensor_slc_dense", OverlayKind::kSensor, Scheme::kSlc, false, 0},
        E2eCase{"sensor_plc_sparse", OverlayKind::kSensor, Scheme::kPlc, true, 0},
        E2eCase{"sensor_plc_capacity", OverlayKind::kSensor, Scheme::kPlc, false, 2},
        E2eCase{"sensor_rlc_sparse", OverlayKind::kSensor, Scheme::kRlc, true, 0}),
    [](const ::testing::TestParamInfo<E2eCase>& info) { return info.param.name; });

}  // namespace
}  // namespace prlc::proto
