// Capacity-aware placement: the paper's "each node can store d coded
// blocks, M < W d" storage constraint.
#include <gtest/gtest.h>

#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/sensor_network.h"
#include "proto/collector.h"
#include "proto/predistribution.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;

struct World {
  PrioritySpec spec{std::vector<std::size_t>{3, 5}};  // N = 8
  PriorityDistribution dist{PriorityDistribution::uniform(2)};
  net::ChordNetwork overlay;
  Rng rng{111};

  explicit World(std::size_t nodes, std::size_t locations) : overlay(make_net(nodes, locations)) {}

  static net::ChordParams make_net(std::size_t nodes, std::size_t locations) {
    net::ChordParams p;
    p.nodes = nodes;
    p.locations = locations;
    p.seed = 77;
    return p;
  }
};

TEST(Capacity, EnforcesPerNodeLimit) {
  World w(50, 100);  // 100 locations over 50 nodes: loads of 2 on average
  ProtocolParams params;
  params.block_size = 4;
  params.node_capacity = 2;
  Predistribution pd(w.overlay, w.spec, w.dist, params);
  const auto source = codes::SourceData<Field>::random(8, 4, w.rng);
  const auto stats = pd.disseminate(source, w.rng);
  EXPECT_LE(stats.max_node_load, 2u);
  EXPECT_EQ(stats.capacity_overflows, 0u);  // M = W * d exactly
  EXPECT_GT(stats.capacity_spills, 0u);     // random placement must spill
  EXPECT_EQ(pd.surviving_locations().size(), 100u);
}

TEST(Capacity, UnlimitedByDefault) {
  World w(20, 200);
  ProtocolParams params;
  params.block_size = 4;
  Predistribution pd(w.overlay, w.spec, w.dist, params);
  const auto source = codes::SourceData<Field>::random(8, 4, w.rng);
  const auto stats = pd.disseminate(source, w.rng);
  EXPECT_EQ(stats.capacity_spills, 0u);
  EXPECT_EQ(stats.capacity_overflows, 0u);
  EXPECT_GT(stats.max_node_load, 10u);  // 200/20 = 10 mean: max above it
}

TEST(Capacity, OverflowWhenBudgetExceeded) {
  World w(10, 40);  // M = 40 > W*d = 20
  ProtocolParams params;
  params.block_size = 4;
  params.node_capacity = 2;
  Predistribution pd(w.overlay, w.spec, w.dist, params);
  const auto source = codes::SourceData<Field>::random(8, 4, w.rng);
  const auto stats = pd.disseminate(source, w.rng);
  EXPECT_EQ(stats.capacity_overflows, 20u);
  EXPECT_LE(stats.max_node_load, 2u);
  EXPECT_EQ(pd.surviving_locations().size(), 20u);
}

TEST(Capacity, DataStillDecodesWithTightCapacity) {
  World w(60, 48);
  ProtocolParams params;
  params.block_size = 4;
  params.node_capacity = 1;  // one block per node, 48 blocks on 60 nodes
  Predistribution pd(w.overlay, w.spec, w.dist, params);
  const auto source = codes::SourceData<Field>::random(8, 4, w.rng);
  const auto stats = pd.disseminate(source, w.rng);
  EXPECT_LE(stats.max_node_load, 1u);
  const auto [result, verified] = collect_and_verify(pd, source, w.rng);
  EXPECT_EQ(result.decoded_levels, 2u);
  EXPECT_TRUE(verified);
}

TEST(Capacity, SensorOverlaySpillsToNeighbors) {
  net::SensorParams sp;
  sp.nodes = 60;
  sp.locations = 60;
  sp.seed = 13;
  net::SensorNetwork overlay(sp);
  const PrioritySpec spec({3, 5});
  ProtocolParams params;
  params.block_size = 4;
  params.node_capacity = 1;
  Predistribution pd(overlay, spec, PriorityDistribution::uniform(2), params);
  Rng rng(112);
  const auto source = codes::SourceData<Field>::random(8, 4, rng);
  const auto stats = pd.disseminate(source, rng);
  EXPECT_LE(stats.max_node_load, 1u);
  EXPECT_EQ(stats.capacity_overflows, 0u);
}

TEST(Capacity, CandidateListsAreOrderedAndAlive) {
  World w(30, 10);
  for (net::LocationId loc = 0; loc < 10; ++loc) {
    const auto cands = w.overlay.owner_candidates(loc, 5);
    ASSERT_EQ(cands.size(), 5u);
    EXPECT_EQ(cands[0], w.overlay.owner_of(loc));
    for (net::NodeId v : cands) EXPECT_TRUE(w.overlay.alive(v));
    // Distinct candidates.
    std::set<net::NodeId> unique(cands.begin(), cands.end());
    EXPECT_EQ(unique.size(), cands.size());
  }
  // Request more candidates than alive nodes: get all of them.
  EXPECT_EQ(w.overlay.owner_candidates(0, 100).size(), 30u);
}

}  // namespace
}  // namespace prlc::proto
