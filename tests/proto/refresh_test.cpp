#include "proto/refresh.h"

#include <gtest/gtest.h>

#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/collector.h"
#include "util/check.h"

namespace prlc::proto {
namespace {

using codes::PriorityDistribution;
using codes::PrioritySpec;
using codes::Scheme;

struct World {
  PrioritySpec spec{std::vector<std::size_t>{4, 6, 10}};  // N = 20
  PriorityDistribution dist{std::vector<double>{0.3, 0.3, 0.4}};
  net::ChordNetwork overlay;
  ProtocolParams params;
  codes::SourceData<Field> source;
  Predistribution pd;
  Rng rng{61};

  World()
      : overlay(make_net()),
        params(make_params()),
        source(make_source()),
        pd(overlay, spec, dist, params) {
    pd.disseminate(source, rng);
  }

  static net::ChordParams make_net() {
    net::ChordParams p;
    p.nodes = 120;
    p.locations = 80;
    p.seed = 31;
    return p;
  }
  static ProtocolParams make_params() {
    ProtocolParams p;
    p.scheme = Scheme::kPlc;
    p.block_size = 6;
    return p;
  }
  codes::SourceData<Field> make_source() {
    Rng r(62);
    return codes::SourceData<Field>::random(20, 6, r);
  }
};

TEST(Refresh, NoFailuresNothingToRepair) {
  World w;
  const auto result = refresh(w.pd, w.overlay.random_alive_node(w.rng), w.rng);
  EXPECT_EQ(result.lost_locations, 0u);
  EXPECT_EQ(result.rebuilt_locations, 0u);
  EXPECT_EQ(result.decoded_levels, 3u);
}

TEST(Refresh, RepairsLostLocationsWhileDecodable) {
  World w;
  net::kill_uniform_fraction(w.overlay, 0.3, w.rng);
  const std::size_t lost_before = w.pd.lost_locations().size();
  ASSERT_GT(lost_before, 0u);
  const auto result = refresh(w.pd, w.overlay.random_alive_node(w.rng), w.rng);
  EXPECT_EQ(result.lost_locations, lost_before);
  // With 80 locations for 20 unknowns, 30% churn leaves everything
  // decodable: every lost location is repairable.
  EXPECT_EQ(result.decoded_levels, 3u);
  EXPECT_EQ(result.rebuilt_locations, lost_before);
  EXPECT_EQ(result.unrecoverable, 0u);
  EXPECT_TRUE(w.pd.lost_locations().empty());
}

TEST(Refresh, RebuiltBlocksDecodeCorrectData) {
  World w;
  net::kill_uniform_fraction(w.overlay, 0.4, w.rng);
  refresh(w.pd, w.overlay.random_alive_node(w.rng), w.rng);
  const auto [result, verified] = collect_and_verify(w.pd, w.source, w.rng);
  EXPECT_EQ(result.decoded_levels, 3u);
  EXPECT_TRUE(verified);
}

TEST(Refresh, SurvivesRepeatedChurnWavesBetterThanNoRefresh) {
  // Two worlds, identical churn fractions; one refreshes between waves.
  World with;
  World without;
  std::size_t waves_survived_with = 0;
  std::size_t waves_survived_without = 0;
  for (int wave = 0; wave < 6; ++wave) {
    net::kill_uniform_fraction(with.overlay, 0.35, with.rng);
    net::kill_uniform_fraction(without.overlay, 0.35, without.rng);
    if (with.overlay.alive_count() > 0) {
      refresh(with.pd, with.overlay.random_alive_node(with.rng), with.rng);
      codes::PriorityDecoder<Field> d1(with.params.scheme, with.spec, with.params.block_size);
      if (collect(with.pd, d1, {}, with.rng).result.decoded_levels == 3) ++waves_survived_with;
    }
    if (without.overlay.alive_count() > 0) {
      codes::PriorityDecoder<Field> d2(without.params.scheme, without.spec,
                                       without.params.block_size);
      if (collect(without.pd, d2, {}, without.rng).result.decoded_levels == 3) {
        ++waves_survived_without;
      }
    }
  }
  EXPECT_GE(waves_survived_with, waves_survived_without);
  EXPECT_GE(waves_survived_with, 3u);
}

TEST(Refresh, PartialDecodeRepairsOnlyCoveredLevels) {
  World w;
  // Kill until decoding degrades below 3 levels.
  std::size_t levels = 3;
  for (int i = 0; i < 30 && levels == 3; ++i) {
    net::kill_uniform_fraction(w.overlay, 0.15, w.rng);
    codes::PriorityDecoder<Field> probe(w.params.scheme, w.spec, w.params.block_size);
    levels = collect(w.pd, probe, {}, w.rng).result.decoded_levels;
  }
  if (w.overlay.alive_count() == 0) GTEST_SKIP() << "network died entirely";
  const auto result = refresh(w.pd, w.overlay.random_alive_node(w.rng), w.rng);
  EXPECT_EQ(result.decoded_levels, levels);
  if (levels < 3) {
    // Locations of deeper levels that were lost cannot be rebuilt.
    EXPECT_EQ(result.rebuilt_locations + result.unrecoverable, result.lost_locations);
    // Every rebuilt location's level is within the decoded prefix.
    for (net::LocationId loc = 0; loc < w.overlay.locations(); ++loc) {
      const StoredBlock* slot = w.pd.stored(loc);
      if (slot == nullptr) continue;
    }
  }
}

RefreshExperimentParams experiment_params() {
  RefreshExperimentParams p;
  p.nodes = 100;
  p.locations = 70;
  p.experiment.level_sizes = {4, 6, 10};
  p.experiment.trials = 4;
  p.experiment.root_seed = 19;
  p.experiment.threads = 1;
  p.protocol.block_size = 6;
  p.waves = 4;
  p.kill_fraction = 0.3;
  return p;
}

TEST(RefreshExperiment, ProducesOnePointPerWave) {
  const auto points = run_refresh_experiment(experiment_params());
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].wave, i + 1);
    EXPECT_GE(points[i].mean_decoded_levels, 0.0);
    EXPECT_LE(points[i].mean_decoded_levels, 3.0);
    EXPECT_LE(points[i].mean_surviving_locations, 70.0);
  }
  // Churn is cumulative: surviving locations cannot increase without refresh
  // adding more than churn removes, and decode quality only degrades.
  EXPECT_LE(points.back().mean_decoded_levels, points.front().mean_decoded_levels + 1e-9);
}

TEST(RefreshExperiment, NoRefreshMeansNoRebuilds) {
  auto params = experiment_params();
  params.use_refresh = false;
  const auto points = run_refresh_experiment(params);
  for (const auto& p : points) EXPECT_EQ(p.mean_rebuilt_locations, 0.0);
}

TEST(RefreshExperiment, ThreadCountDoesNotChangeResults) {
  auto serial = experiment_params();
  serial.experiment.threads = 1;
  auto parallel = experiment_params();
  parallel.experiment.threads = 4;
  const auto a = run_refresh_experiment(serial);
  const auto b = run_refresh_experiment(parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].mean_decoded_levels, b[i].mean_decoded_levels);
    EXPECT_EQ(a[i].ci95_decoded_levels, b[i].ci95_decoded_levels);
    EXPECT_EQ(a[i].mean_decoded_blocks, b[i].mean_decoded_blocks);
    EXPECT_EQ(a[i].mean_surviving_locations, b[i].mean_surviving_locations);
    EXPECT_EQ(a[i].mean_rebuilt_locations, b[i].mean_rebuilt_locations);
  }
}

TEST(RefreshExperiment, Validates) {
  auto params = experiment_params();
  params.experiment.trials = 0;
  EXPECT_THROW(run_refresh_experiment(params), PreconditionError);
  params = experiment_params();
  params.waves = 0;
  EXPECT_THROW(run_refresh_experiment(params), PreconditionError);
}

TEST(Refresh, ValidatesMaintainer) {
  World w;
  w.overlay.fail_node(3);
  EXPECT_THROW(refresh(w.pd, 3, w.rng), PreconditionError);
  EXPECT_THROW(refresh(w.pd, 100000, w.rng), PreconditionError);
}

}  // namespace
}  // namespace prlc::proto
