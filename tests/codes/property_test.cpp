// Parameterized property sweeps over (scheme x priority structure x
// priority distribution): the cross-cutting invariants every coding
// configuration must satisfy.
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/count_model.h"
#include "codes/decoder.h"
#include "codes/encoder.h"
#include "codes/wire_format.h"
#include "gf/gf256.h"
#include "util/random.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

struct PropertyCase {
  const char* name;
  Scheme scheme;
  std::vector<std::size_t> levels;
  std::vector<double> dist;
  std::uint64_t seed;
};

std::ostream& operator<<(std::ostream& os, const PropertyCase& c) { return os << c.name; }

class CodingProperties : public ::testing::TestWithParam<PropertyCase> {
 protected:
  PrioritySpec spec() const { return PrioritySpec(std::vector<std::size_t>(GetParam().levels)); }
  PriorityDistribution dist() const {
    return PriorityDistribution(std::vector<double>(GetParam().dist));
  }
};

TEST_P(CodingProperties, DecodedLevelsMonotoneInBlocks) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  const auto s = spec();
  const auto d = dist();
  const PriorityEncoder<F> enc(param.scheme, s);
  PriorityDecoder<F> dec(param.scheme, s);
  std::size_t last = 0;
  for (std::size_t m = 0; m < 2 * s.total() + 10; ++m) {
    dec.add(enc.encode_random(d, rng));
    const std::size_t now = dec.decoded_levels();
    ASSERT_GE(now, last) << "decoded levels went backwards at block " << m;
    last = now;
  }
  ASSERT_LE(last, s.levels());
  // Top up each level explicitly: decoding must then complete regardless
  // of how skewed the random stream was.
  for (std::size_t level = 0; level < s.levels(); ++level) {
    for (std::size_t i = 0; i < s.level_size(level) + 5; ++i) {
      dec.add(enc.encode(level, rng));
    }
  }
  ASSERT_EQ(dec.decoded_levels(), s.levels());
}

TEST_P(CodingProperties, PayloadRoundTripAtSaturation) {
  const auto& param = GetParam();
  Rng rng(param.seed + 1);
  const auto s = spec();
  const auto d = dist();
  const auto source = SourceData<F>::random(s.total(), 5, rng);
  const PriorityEncoder<F> enc(param.scheme, s, {}, &source);
  PriorityDecoder<F> dec(param.scheme, s, 5);
  // Per-level saturation: a_i + 5 blocks of every level decodes all
  // schemes deterministically (up to negligible GF(256) rank defects).
  for (std::size_t level = 0; level < s.levels(); ++level) {
    for (std::size_t i = 0; i < s.level_size(level) + 5; ++i) {
      dec.add(enc.encode(level, rng));
    }
  }
  (void)d;
  ASSERT_EQ(dec.decoded_levels(), s.levels());
  for (std::size_t j = 0; j < s.total(); ++j) {
    const auto got = dec.recovered(j);
    const auto want = source.block(j);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end())) << "block " << j;
  }
}

TEST_P(CodingProperties, CountModelNeverUnderestimatesRealDecoding) {
  // Field-rank defects can only make the real decoder do *worse* than the
  // idealized count model, never better.
  const auto& param = GetParam();
  Rng rng(param.seed + 2);
  const auto s = spec();
  const auto d = dist();
  const PriorityEncoder<F> enc(param.scheme, s);
  for (int trial = 0; trial < 10; ++trial) {
    PriorityDecoder<F> dec(param.scheme, s);
    std::vector<std::size_t> counts(s.levels(), 0);
    const std::size_t m = 1 + rng.uniform(2 * s.total());
    for (std::size_t i = 0; i < m; ++i) {
      const auto block = enc.encode_random(d, rng);
      ++counts[block.level];
      dec.add(block);
    }
    const std::size_t predicted =
        analysis::levels_from_counts(param.scheme, s, counts);
    ASSERT_LE(dec.decoded_levels(), predicted);
    // Over GF(256), defects are ~1/256 per opportunity: equality is the
    // overwhelmingly common case, but don't assert it per-trial.
  }
}

TEST_P(CodingProperties, RankNeverExceedsBlocksOrUnknowns) {
  const auto& param = GetParam();
  Rng rng(param.seed + 3);
  const auto s = spec();
  const auto d = dist();
  const PriorityEncoder<F> enc(param.scheme, s);
  PriorityDecoder<F> dec(param.scheme, s);
  for (std::size_t m = 1; m <= s.total() + 5; ++m) {
    dec.add(enc.encode_random(d, rng));
    ASSERT_LE(dec.rank(), std::min(m, s.total()));
  }
}

TEST_P(CodingProperties, WireFormatRoundTripsEveryBlock) {
  const auto& param = GetParam();
  Rng rng(param.seed + 4);
  const auto s = spec();
  const auto source = SourceData<F>::random(s.total(), 3, rng);
  const PriorityEncoder<F> enc(param.scheme, s, {}, &source);
  for (std::size_t level = 0; level < s.levels(); ++level) {
    const auto block = enc.encode(level, rng);
    const auto round = decode_wire(encode_wire(param.scheme, block));
    ASSERT_EQ(round.scheme, param.scheme);
    ASSERT_EQ(round.block.level, block.level);
    ASSERT_EQ(round.block.coeffs, block.coeffs);
    ASSERT_EQ(round.block.payload, block.payload);
  }
}

TEST_P(CodingProperties, SparseVariantDecodesWithOverprovisioning) {
  const auto& param = GetParam();
  Rng rng(param.seed + 5);
  const auto s = spec();
  const auto d = dist();
  EncoderOptions opt;
  opt.model = CoefficientModel::kSparse;
  opt.sparsity_factor = 4.0;
  const PriorityEncoder<F> enc(param.scheme, s, opt);
  PriorityDecoder<F> dec(param.scheme, s);
  // Sparse coding trades a little decodability for dissemination cost;
  // with 4x per-level overprovisioning everything must still come back.
  for (std::size_t level = 0; level < s.levels(); ++level) {
    for (std::size_t i = 0; i < 4 * s.level_size(level) + 12; ++i) {
      dec.add(enc.encode(level, rng));
    }
  }
  (void)d;
  ASSERT_EQ(dec.decoded_levels(), s.levels());
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndShapes, CodingProperties,
    ::testing::Values(
        PropertyCase{"rlc_uniform", Scheme::kRlc, {4, 6, 10}, {1. / 3, 1. / 3, 1. / 3}, 11},
        PropertyCase{"slc_uniform", Scheme::kSlc, {4, 6, 10}, {1. / 3, 1. / 3, 1. / 3}, 12},
        PropertyCase{"plc_uniform", Scheme::kPlc, {4, 6, 10}, {1. / 3, 1. / 3, 1. / 3}, 13},
        PropertyCase{"plc_two_levels", Scheme::kPlc, {5, 20}, {0.5, 0.5}, 14},
        PropertyCase{"slc_two_levels", Scheme::kSlc, {5, 20}, {0.5, 0.5}, 15},
        PropertyCase{"plc_single_level", Scheme::kPlc, {12}, {1.0}, 16},
        PropertyCase{"plc_many_tiny_levels", Scheme::kPlc, {1, 1, 1, 1, 1, 1, 1, 1},
                     {.125, .125, .125, .125, .125, .125, .125, .125}, 17},
        PropertyCase{"slc_many_tiny_levels", Scheme::kSlc, {2, 2, 2, 2, 2, 2},
                     {1. / 6, 1. / 6, 1. / 6, 1. / 6, 1. / 6, 1. / 6}, 18},
        PropertyCase{"plc_skewed_dist", Scheme::kPlc, {6, 6, 6}, {0.7, 0.2, 0.1}, 19},
        PropertyCase{"plc_tail_heavy", Scheme::kPlc, {3, 5, 30}, {0.1, 0.1, 0.8}, 20},
        PropertyCase{"slc_skewed_dist", Scheme::kSlc, {6, 6, 6}, {0.2, 0.3, 0.5}, 21},
        PropertyCase{"plc_wide_first", Scheme::kPlc, {30, 5, 3}, {0.6, 0.2, 0.2}, 22}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) { return info.param.name; });

}  // namespace
}  // namespace prlc::codes
