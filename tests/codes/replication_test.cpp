#include "codes/replication.h"

#include <gtest/gtest.h>

#include "analysis/coupon.h"
#include "gf/gf256.h"
#include "util/check.h"
#include "util/stats.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

TEST(Replication, ReplicaCarriesPayloadAndLevel) {
  Rng rng(211);
  const PrioritySpec spec({2, 3});
  const auto source = SourceData<F>::random(spec.total(), 4, rng);
  const ReplicationEncoder<F> enc(spec, &source);
  for (int t = 0; t < 50; ++t) {
    const auto r = enc.replicate(1, rng);
    EXPECT_EQ(r.level, 1u);
    EXPECT_GE(r.source_index, 2u);
    EXPECT_LT(r.source_index, 5u);
    const auto want = source.block(r.source_index);
    EXPECT_TRUE(std::equal(r.payload.begin(), r.payload.end(), want.begin(), want.end()));
  }
}

TEST(Replication, CollectorTracksPrefixAndDistinct) {
  const PrioritySpec spec({2, 3});
  ReplicationCollector<F> col(spec);
  auto add = [&](std::size_t idx) {
    ReplicaBlock<F> r;
    r.source_index = idx;
    r.level = spec.level_of_block(idx);
    return col.add(r);
  };
  EXPECT_TRUE(add(3));
  EXPECT_EQ(col.decoded_levels(), 0u);
  EXPECT_EQ(col.distinct_blocks(), 1u);
  EXPECT_FALSE(add(3));  // duplicate
  EXPECT_TRUE(add(0));
  EXPECT_EQ(col.decoded_prefix_blocks(), 1u);
  EXPECT_TRUE(add(1));
  EXPECT_EQ(col.decoded_levels(), 1u);
  EXPECT_TRUE(add(2));
  EXPECT_TRUE(add(4));
  EXPECT_EQ(col.decoded_levels(), 2u);
  EXPECT_EQ(col.blocks_seen(), 6u);
  EXPECT_TRUE(col.is_block_decoded(4));
}

TEST(Replication, MatchesCouponCollectorExpectation) {
  // Uniform replication over N blocks == coupon collection; compare the
  // mean distinct count to the closed form.
  Rng rng(212);
  const std::size_t n = 40;
  const PrioritySpec spec({n});
  const ReplicationEncoder<F> enc(spec);
  const auto dist = PriorityDistribution::uniform(1);
  const std::size_t draws = 50;
  RunningStats distinct;
  for (int t = 0; t < 400; ++t) {
    ReplicationCollector<F> col(spec);
    for (std::size_t d = 0; d < draws; ++d) col.add(enc.replicate_random(dist, rng));
    distinct.add(static_cast<double>(col.distinct_blocks()));
  }
  EXPECT_NEAR(distinct.mean(), analysis::coupon_expected_distinct(n, draws),
              4 * distinct.ci95_halfwidth() + 0.05);
}

TEST(Replication, NeedsFarMoreBlocksThanCodingForFullRecovery) {
  Rng rng(213);
  const std::size_t n = 50;
  const PrioritySpec spec({n});
  const ReplicationEncoder<F> enc(spec);
  const auto dist = PriorityDistribution::uniform(1);
  RunningStats draws_needed;
  for (int t = 0; t < 100; ++t) {
    ReplicationCollector<F> col(spec);
    std::size_t draws = 0;
    while (col.distinct_blocks() < n) {
      col.add(enc.replicate_random(dist, rng));
      ++draws;
    }
    draws_needed.add(static_cast<double>(draws));
  }
  // Coupon collector: ~ N H_N = 224.96 for N = 50; coding needs ~ 50.
  EXPECT_GT(draws_needed.mean(), 150.0);
  EXPECT_NEAR(draws_needed.mean(), analysis::coupon_expected_draws(n), 40.0);
}

TEST(Replication, ValidatesInputs) {
  const PrioritySpec spec({2, 3});
  Rng rng(214);
  const ReplicationEncoder<F> enc(spec);
  EXPECT_THROW(enc.replicate(2, rng), PreconditionError);
  EXPECT_THROW(enc.replicate_random(PriorityDistribution::uniform(3), rng),
               PreconditionError);
  ReplicationCollector<F> col(spec);
  ReplicaBlock<F> bad;
  bad.source_index = 5;
  EXPECT_THROW(col.add(bad), PreconditionError);
  const auto wrong_source = SourceData<F>::random(4, 2, rng);
  EXPECT_THROW(ReplicationEncoder<F>(spec, &wrong_source), PreconditionError);
}

}  // namespace
}  // namespace prlc::codes
