// Randomized corruption sweep for the wire format (the fault channel's
// safety net): under seeded byte flips, truncations, extensions and
// header scrambles, decode_wire must either throw WireFormatError or
// round-trip the *original* block exactly — it must never crash and
// never hand back a different block silently.
#include <gtest/gtest.h>

#include <algorithm>

#include "codes/encoder.h"
#include "codes/wire_format.h"
#include "util/random.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

bool same_block(const WireBlock& got, Scheme scheme, const CodedBlock<F>& want) {
  return got.scheme == scheme && got.block.level == want.level &&
         got.block.coeffs == want.coeffs && got.block.payload == want.payload;
}

/// Apply one seeded mutation of the given kind; returns the mutated copy.
std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& wire, int kind, Rng& rng) {
  auto buf = wire;
  switch (kind) {
    case 0: {  // byte flip anywhere in the frame
      buf[rng.uniform(buf.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
      break;
    }
    case 1: {  // truncate to a strictly shorter prefix
      buf.resize(rng.uniform(buf.size()));
      break;
    }
    case 2: {  // extend with 1-16 random trailing bytes
      const std::size_t extra = 1 + rng.uniform(16);
      for (std::size_t i = 0; i < extra; ++i) {
        buf.push_back(static_cast<std::uint8_t>(rng.uniform(256)));
      }
      break;
    }
    case 3: {  // header scramble: rewrite 1-8 bytes of the 24-byte header
      const std::size_t header = std::min<std::size_t>(24, buf.size());
      const std::size_t hits = 1 + rng.uniform(8);
      for (std::size_t i = 0; i < hits; ++i) {
        buf[rng.uniform(header)] = static_cast<std::uint8_t>(rng.uniform(256));
      }
      break;
    }
  }
  return buf;
}

TEST(WireCorruptionSweep, EveryMutationThrowsOrRoundTripsCleanly) {
  Rng rng(4001);
  const auto spec = PrioritySpec({4, 6, 10});
  const auto source = SourceData<F>::random(spec.total(), 8, rng);

  // One dense-ish frame (PLC level 2 spans all N) and one sparse frame
  // (level 0 support is 4 of 20), so both coefficient encodings sweep.
  const struct {
    Scheme scheme;
    std::size_t level;
  } variants[] = {{Scheme::kPlc, 2}, {Scheme::kPlc, 0}, {Scheme::kSlc, 1}};

  for (const auto& v : variants) {
    const PriorityEncoder<F> enc(v.scheme, spec, {}, &source);
    const CodedBlock<F> block = enc.encode(v.level, rng);
    const auto wire = encode_wire(v.scheme, block);

    std::size_t clean_roundtrips = 0;
    for (int t = 0; t < 4000; ++t) {
      const auto buf = mutate(wire, t % 4, rng);
      try {
        const WireBlock got = decode_wire(buf);
        // Decoding succeeded: the mutation must have reconstructed the
        // original frame bit-for-bit (e.g. a scramble writing the same
        // bytes back). Anything else is a silent wrong block.
        ASSERT_TRUE(same_block(got, v.scheme, block))
            << "mutation kind " << t % 4 << " produced a different block";
        ++clean_roundtrips;
      } catch (const WireFormatError&) {
        // expected for essentially every mutation
      }
    }
    // CRC-32 plus the structural checks must reject nearly everything;
    // identity-rewrites are the only survivors.
    EXPECT_LE(clean_roundtrips, 200u);
  }
}

TEST(WireCorruptionSweep, StackedMutationsNeverCrash) {
  Rng rng(4002);
  const auto spec = PrioritySpec({4, 6, 10});
  const PriorityEncoder<F> enc(Scheme::kPlc, spec);
  const auto wire = encode_wire(Scheme::kPlc, enc.encode(1, rng));
  for (int t = 0; t < 2000; ++t) {
    auto buf = wire;
    const std::size_t rounds = 1 + rng.uniform(3);
    for (std::size_t i = 0; i < rounds && !buf.empty(); ++i) {
      buf = mutate(buf, static_cast<int>(rng.uniform(4)), rng);
    }
    try {
      decode_wire(buf);
    } catch (const WireFormatError&) {
    }
  }
}

}  // namespace
}  // namespace prlc::codes
