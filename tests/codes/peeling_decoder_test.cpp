#include "codes/peeling_decoder.h"

#include <gtest/gtest.h>

#include "gf/gf256.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::codes {
namespace {

TEST(PeelingDecoder, DegreeOneDecodesImmediately) {
  PeelingDecoder dec(5);
  const std::size_t idx[] = {2};
  EXPECT_EQ(dec.add(idx), 1u);
  EXPECT_TRUE(dec.is_decoded(2));
  EXPECT_EQ(dec.decoded_count(), 1u);
}

TEST(PeelingDecoder, DegreeTwoWaitsThenCascades) {
  PeelingDecoder dec(4);
  const std::size_t pair[] = {0, 1};
  EXPECT_EQ(dec.add(pair), 0u);
  EXPECT_EQ(dec.buffered_symbols(), 1u);
  const std::size_t single[] = {0};
  // Decoding 0 releases the buffered pair -> also decodes 1.
  EXPECT_EQ(dec.add(single), 2u);
  EXPECT_TRUE(dec.is_decoded(0));
  EXPECT_TRUE(dec.is_decoded(1));
  EXPECT_EQ(dec.buffered_symbols(), 0u);
}

TEST(PeelingDecoder, LongCascade) {
  // Chain: {0,1}, {1,2}, {2,3}, {3,4} then {0} unlocks everything.
  PeelingDecoder dec(5);
  for (std::size_t i = 0; i + 1 < 5; ++i) {
    const std::size_t pair[] = {i, i + 1};
    EXPECT_EQ(dec.add(pair), 0u);
  }
  const std::size_t single[] = {0};
  EXPECT_EQ(dec.add(single), 5u);
  EXPECT_EQ(dec.decoded_count(), 5u);
  EXPECT_EQ(dec.decoded_prefix(), 5u);
}

TEST(PeelingDecoder, RedundantSymbolsAreIgnored) {
  PeelingDecoder dec(3);
  const std::size_t a[] = {0};
  const std::size_t b[] = {0, 1};
  dec.add(a);
  dec.add(b);  // now just "1", decodes
  EXPECT_EQ(dec.add(b), 0u);  // fully known: redundant
  EXPECT_EQ(dec.symbols_seen(), 3u);
  EXPECT_EQ(dec.decoded_count(), 2u);
}

TEST(PeelingDecoder, CannotSolveCoupledSystems) {
  // {0,1}, {1,2}, {0,2} has rank 2 over GF(2) but no degree-1 entry point:
  // peeling decodes nothing (Gauss-Jordan couldn't fully solve it either,
  // but would at least combine; peeling by design waits).
  PeelingDecoder dec(3);
  const std::size_t s1[] = {0, 1};
  const std::size_t s2[] = {1, 2};
  const std::size_t s3[] = {0, 2};
  dec.add(s1);
  dec.add(s2);
  dec.add(s3);
  EXPECT_EQ(dec.decoded_count(), 0u);
  EXPECT_EQ(dec.buffered_symbols(), 3u);
}

TEST(PeelingDecoder, PayloadXorRecoversData) {
  Rng rng(221);
  const std::size_t n = 8;
  const std::size_t width = 6;
  std::vector<std::vector<std::uint8_t>> x(n, std::vector<std::uint8_t>(width));
  for (auto& blk : x) {
    for (auto& v : blk) v = static_cast<std::uint8_t>(rng.uniform(256));
  }
  auto payload_of = [&](std::span<const std::size_t> idx) {
    std::vector<std::uint8_t> p(width, 0);
    for (std::size_t i : idx) {
      for (std::size_t b = 0; b < width; ++b) p[b] ^= x[i][b];
    }
    return p;
  };
  PeelingDecoder dec(n, width);
  // Triangular chain guarantees full decode.
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<std::size_t> idx;
    for (std::size_t j = 0; j <= i; ++j) idx.push_back(j);
    dec.add(idx, payload_of(idx));
  }
  EXPECT_EQ(dec.decoded_count(), n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto got = dec.solution(i);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), x[i].begin(), x[i].end())) << i;
  }
}

TEST(PeelingDecoder, ValidatesInput) {
  PeelingDecoder dec(3, 2);
  const std::vector<std::size_t> empty;
  const std::vector<std::uint8_t> payload = {1, 2};
  EXPECT_THROW(dec.add(empty, payload), PreconditionError);
  const std::size_t oob[] = {5};
  EXPECT_THROW(dec.add(oob, payload), PreconditionError);
  const std::size_t dup[] = {1, 1};
  EXPECT_THROW(dec.add(dup, payload), PreconditionError);
  const std::size_t ok[] = {1};
  const std::vector<std::uint8_t> short_payload = {1};
  EXPECT_THROW(dec.add(ok, short_payload), PreconditionError);
  EXPECT_THROW(dec.solution(1), PreconditionError);
  EXPECT_THROW(PeelingDecoder(0), PreconditionError);
}

TEST(PeelingDecoder, RejectsDuplicateOfDecodedIndex) {
  // Regression: duplicate validation used to run on the *pending* list
  // only, after decoded blocks were split off — {0, 0} with block 0
  // already decoded subtracted the solution twice (cancelling silently)
  // and accepted the corrupted symbol.
  PeelingDecoder dec(3, 2);
  const std::vector<std::uint8_t> p0 = {9, 9};
  const std::size_t single[] = {0};
  dec.add(single, p0);
  ASSERT_TRUE(dec.is_decoded(0));
  const std::size_t dup_decoded[] = {0, 0, 1};
  const std::vector<std::uint8_t> payload = {1, 2};
  EXPECT_THROW(dec.add(dup_decoded, payload), PreconditionError);
  // The rejected symbol must not count or buffer anything.
  EXPECT_EQ(dec.buffered_symbols(), 0u);
  EXPECT_EQ(dec.decoded_count(), 1u);
}

TEST(PeelingDecoder, Gf256CoefficientsDecodeByDivision) {
  // y0 = 3*x0, y1 = 5*x0 + 7*x1: peeling must divide out the lone
  // coefficient at each step to recover x0 then x1 exactly.
  Rng rng(223);
  const std::size_t width = 6;
  std::vector<std::uint8_t> x0(width), x1(width);
  for (auto& v : x0) v = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto& v : x1) v = static_cast<std::uint8_t>(rng.uniform(256));

  auto combine = [&](std::uint8_t a, std::uint8_t b) {
    std::vector<std::uint8_t> p(width, 0);
    gf::Gf256::axpy(std::span<std::uint8_t>(p), a, x0);
    gf::Gf256::axpy(std::span<std::uint8_t>(p), b, x1);
    return p;
  };

  PeelingDecoder dec(2, width);
  const std::size_t both[] = {0, 1};
  const std::vector<std::uint8_t> c_both = {5, 7};
  EXPECT_EQ(dec.add(both, c_both, combine(5, 7)), 0u);
  const std::size_t first[] = {0};
  const std::vector<std::uint8_t> c_first = {3};
  EXPECT_EQ(dec.add(first, c_first, combine(3, 0)), 2u);
  const auto got0 = dec.solution(0);
  const auto got1 = dec.solution(1);
  EXPECT_TRUE(std::equal(got0.begin(), got0.end(), x0.begin(), x0.end()));
  EXPECT_TRUE(std::equal(got1.begin(), got1.end(), x1.begin(), x1.end()));

  // Zero coefficients are not a valid sparse symbol.
  PeelingDecoder fresh(2, width);
  const std::vector<std::uint8_t> c_zero = {0, 7};
  EXPECT_THROW(fresh.add(both, c_zero, combine(0, 7)), PreconditionError);
}

TEST(PeelingDecoder, RetiredSymbolsReleaseBufferedPayloads) {
  // Regression: resolve() used to copy the payload into the cascade queue
  // and retired symbols kept their buffers alive forever. Buffered bytes
  // must track live symbols only and drop to zero after a full cascade.
  const std::size_t n = 16;
  const std::size_t width = 32;
  PeelingDecoder dec(n, width);
  const std::vector<std::uint8_t> zeros(width, 0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::size_t pair[] = {i, i + 1};
    dec.add(pair, zeros);
  }
  EXPECT_EQ(dec.buffered_symbols(), n - 1);
  EXPECT_EQ(dec.buffered_payload_bytes(), (n - 1) * width);
  const std::size_t single[] = {0};
  EXPECT_EQ(dec.add(single, zeros), n);
  EXPECT_EQ(dec.buffered_symbols(), 0u);
  EXPECT_EQ(dec.buffered_payload_bytes(), 0u);
}

TEST(PeelingDecoder, RandomizedAgainstReachability) {
  // Property: after adding random symbols, the decoded count equals what
  // iterating peeling to a fixed point on the full symbol set gives.
  Rng rng(222);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 12;
    std::vector<std::vector<std::size_t>> symbols;
    PeelingDecoder dec(n);
    for (int s = 0; s < 20; ++s) {
      const std::size_t d = 1 + rng.uniform(3);
      auto idx = rng.sample_without_replacement(n, d);
      symbols.push_back(idx);
      dec.add(idx);
    }
    // Reference fixed point.
    std::vector<bool> known(n, false);
    bool progress = true;
    while (progress) {
      progress = false;
      for (const auto& sym : symbols) {
        std::size_t unknowns = 0;
        std::size_t last = 0;
        for (std::size_t i : sym) {
          if (!known[i]) {
            ++unknowns;
            last = i;
          }
        }
        if (unknowns == 1) {
          known[last] = true;
          progress = true;
        }
      }
    }
    std::size_t expect = 0;
    for (bool k : known) expect += k ? 1 : 0;
    ASSERT_EQ(dec.decoded_count(), expect) << "trial " << trial;
  }
}

}  // namespace
}  // namespace prlc::codes
