#include "codes/growth_codes.h"

#include <gtest/gtest.h>

#include "codes/peeling_decoder.h"
#include "util/check.h"
#include "util/stats.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

TEST(GrowthCodes, DegreeSchedule) {
  // Switch points (d-1)/d: degree 1 until r = N/2, 2 until 2N/3, ...
  const GrowthEncoder enc(100);
  EXPECT_EQ(enc.degree_for(0), 1u);
  EXPECT_EQ(enc.degree_for(49), 1u);
  EXPECT_EQ(enc.degree_for(50), 2u);
  EXPECT_EQ(enc.degree_for(66), 2u);
  EXPECT_EQ(enc.degree_for(67), 3u);
  EXPECT_EQ(enc.degree_for(75), 4u);
  EXPECT_EQ(enc.degree_for(90), 10u);
  EXPECT_EQ(enc.degree_for(99), 100u);
  EXPECT_EQ(enc.degree_for(100), 100u);
  EXPECT_THROW(enc.degree_for(101), PreconditionError);
}

TEST(GrowthCodes, SymbolsHaveDistinctInRangeIndices) {
  Rng rng(231);
  const GrowthEncoder enc(50);
  for (std::size_t r : {0u, 25u, 40u, 49u}) {
    const auto sym = enc.encode(r, rng);
    EXPECT_EQ(sym.indices.size(), enc.degree_for(r));
    std::set<std::size_t> unique(sym.indices.begin(), sym.indices.end());
    EXPECT_EQ(unique.size(), sym.indices.size());
    for (std::size_t i : sym.indices) EXPECT_LT(i, 50u);
  }
}

TEST(GrowthCodes, PayloadIsXorOfSources) {
  Rng rng(232);
  const auto source = SourceData<F>::random(20, 8, rng);
  const GrowthEncoder enc(20, &source);
  const auto sym = enc.encode(10, rng);
  std::vector<std::uint8_t> expect(8, 0);
  for (std::size_t i : sym.indices) {
    const auto blk = source.block(i);
    for (std::size_t b = 0; b < 8; ++b) expect[b] ^= blk[b];
  }
  EXPECT_EQ(sym.payload, expect);
}

TEST(GrowthCodes, OracleFeedbackDecodesWithModestOverhead) {
  // With true-recovery feedback, Growth Codes stay near the "always
  // useful" operating point: full recovery within ~ 2.5 N symbols
  // (coupon effects dominate the tail).
  Rng rng(233);
  const std::size_t n = 100;
  const GrowthEncoder enc(n);
  RunningStats used;
  for (int t = 0; t < 20; ++t) {
    PeelingDecoder dec(n);
    std::size_t symbols = 0;
    while (dec.decoded_count() < n && symbols < 20 * n) {
      const auto sym = enc.encode(dec.decoded_count(), rng);
      dec.add(sym.indices);
      ++symbols;
    }
    ASSERT_EQ(dec.decoded_count(), n);
    used.add(static_cast<double>(symbols));
  }
  EXPECT_LT(used.mean(), 4.0 * n);
  EXPECT_GT(used.mean(), 1.0 * n);
}

TEST(GrowthCodes, EarlyRecoveryBeatsRlcStyleMixing) {
  // The design goal: after only N/2 symbols, Growth Codes have already
  // recovered a sizable fraction, whereas full-mixing codes have nothing.
  Rng rng(234);
  const std::size_t n = 200;
  const GrowthEncoder enc(n);
  RunningStats recovered;
  for (int t = 0; t < 20; ++t) {
    PeelingDecoder dec(n);
    for (std::size_t s = 0; s < n / 2; ++s) {
      dec.add(enc.encode(dec.decoded_count(), rng).indices);
    }
    recovered.add(static_cast<double>(dec.decoded_count()));
  }
  EXPECT_GT(recovered.mean(), 0.3 * static_cast<double>(n));
}

TEST(GrowthCodes, EstimateFeedbackTracksOracleLoosely) {
  Rng rng(235);
  const std::size_t n = 150;
  const GrowthEncoder enc(n);
  RunningStats oracle;
  RunningStats estimate;
  for (int t = 0; t < 15; ++t) {
    for (GrowthFeedback fb : {GrowthFeedback::kOracle, GrowthFeedback::kEstimate}) {
      PeelingDecoder dec(n);
      std::size_t emitted = 0;
      for (std::size_t s = 0; s < 2 * n; ++s) {
        const auto sym = enc.encode_auto(fb, dec.decoded_count(), emitted, rng);
        dec.add(sym.indices);
        ++emitted;
      }
      (fb == GrowthFeedback::kOracle ? oracle : estimate)
          .add(static_cast<double>(dec.decoded_count()));
    }
  }
  // The estimate variant is worse but in the same regime.
  EXPECT_GT(estimate.mean(), 0.5 * oracle.mean());
}

TEST(GrowthCodes, ValidatesConstruction) {
  EXPECT_THROW(GrowthEncoder(0), PreconditionError);
  Rng rng(236);
  const auto source = SourceData<F>::random(5, 2, rng);
  EXPECT_THROW(GrowthEncoder(6, &source), PreconditionError);
}

}  // namespace
}  // namespace prlc::codes
