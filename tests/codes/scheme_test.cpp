#include "codes/scheme.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace prlc::codes {
namespace {

TEST(Scheme, ToStringRoundTrip) {
  for (Scheme s : {Scheme::kRlc, Scheme::kSlc, Scheme::kPlc}) {
    EXPECT_EQ(scheme_from_string(to_string(s)), s);
  }
}

TEST(Scheme, ParsesLowercase) {
  EXPECT_EQ(scheme_from_string("rlc"), Scheme::kRlc);
  EXPECT_EQ(scheme_from_string("slc"), Scheme::kSlc);
  EXPECT_EQ(scheme_from_string("plc"), Scheme::kPlc);
}

TEST(Scheme, RejectsUnknownNames) {
  EXPECT_THROW(scheme_from_string(""), PreconditionError);
  EXPECT_THROW(scheme_from_string("ldpc"), PreconditionError);
  EXPECT_THROW(scheme_from_string("PLC "), PreconditionError);
}

TEST(Scheme, TryParseReturnsValue) {
  EXPECT_EQ(try_scheme_from_string("RLC"), Scheme::kRlc);
  EXPECT_EQ(try_scheme_from_string("slc"), Scheme::kSlc);
  EXPECT_EQ(try_scheme_from_string("plc"), Scheme::kPlc);
}

TEST(Scheme, TryParseReturnsNulloptInsteadOfThrowing) {
  EXPECT_EQ(try_scheme_from_string(""), std::nullopt);
  EXPECT_EQ(try_scheme_from_string("ldpc"), std::nullopt);
  EXPECT_EQ(try_scheme_from_string("PLC "), std::nullopt);
  EXPECT_EQ(try_scheme_from_string("pl"), std::nullopt);
}

}  // namespace
}  // namespace prlc::codes
