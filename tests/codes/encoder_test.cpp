#include "codes/encoder.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gf/gf256.h"
#include "gf/gf2m.h"
#include "util/check.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

PrioritySpec small_spec() { return PrioritySpec({2, 3, 4}); }

TEST(Encoder, SupportPerScheme) {
  const auto spec = small_spec();
  const PriorityEncoder<F> rlc(Scheme::kRlc, spec);
  const PriorityEncoder<F> slc(Scheme::kSlc, spec);
  const PriorityEncoder<F> plc(Scheme::kPlc, spec);
  EXPECT_EQ(rlc.support(0), (std::pair<std::size_t, std::size_t>{0, 9}));
  EXPECT_EQ(rlc.support(2), (std::pair<std::size_t, std::size_t>{0, 9}));
  EXPECT_EQ(slc.support(0), (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(slc.support(1), (std::pair<std::size_t, std::size_t>{2, 5}));
  EXPECT_EQ(slc.support(2), (std::pair<std::size_t, std::size_t>{5, 9}));
  EXPECT_EQ(plc.support(0), (std::pair<std::size_t, std::size_t>{0, 2}));
  EXPECT_EQ(plc.support(1), (std::pair<std::size_t, std::size_t>{0, 5}));
  EXPECT_EQ(plc.support(2), (std::pair<std::size_t, std::size_t>{0, 9}));
}

TEST(Encoder, CoefficientsStayInsideSupport) {
  Rng rng(91);
  const auto spec = small_spec();
  for (Scheme scheme : {Scheme::kRlc, Scheme::kSlc, Scheme::kPlc}) {
    const PriorityEncoder<F> enc(scheme, spec);
    for (std::size_t level = 0; level < spec.levels(); ++level) {
      for (int t = 0; t < 50; ++t) {
        const auto block = enc.encode(level, rng);
        EXPECT_EQ(block.level, level);
        ASSERT_EQ(block.coeffs.size(), spec.total());
        const auto [begin, end] = enc.support(level);
        for (std::size_t j = 0; j < spec.total(); ++j) {
          if (j < begin || j >= end) {
            ASSERT_EQ(block.coeffs[j], 0)
                << to_string(scheme) << " level " << level << " col " << j;
          }
        }
      }
    }
  }
}

TEST(Encoder, DenseUniformNeverAllZero) {
  Rng rng(92);
  const PriorityEncoder<F> enc(Scheme::kSlc, PrioritySpec({1, 1}));
  for (int t = 0; t < 2000; ++t) {
    const auto block = enc.encode(0, rng);
    // Support width 1: dense-uniform redraws until nonzero.
    EXPECT_NE(block.coeffs[0], 0);
  }
}

TEST(Encoder, DenseUniformRedrawLeavesNoStaleValues) {
  // Over GF(2) a 4-wide support draws all-zero with probability 1/16, so
  // the redraw loop runs constantly; every emitted row must still be
  // nonzero and contain only freshly drawn (field-valid) symbols.
  Rng rng(93);
  const PriorityEncoder<gf::Gf2> enc(Scheme::kRlc, PrioritySpec({2, 2}));
  for (int t = 0; t < 2000; ++t) {
    const auto block = enc.encode(1, rng);
    bool any = false;
    for (auto c : block.coeffs) {
      EXPECT_LT(c, gf::Gf2::order());
      any = any || c != 0;
    }
    EXPECT_TRUE(any);
  }
}

TEST(Encoder, DenseNonzeroModelHasNoZerosInSupport) {
  Rng rng(93);
  EncoderOptions opt;
  opt.model = CoefficientModel::kDenseNonzero;
  const auto spec = small_spec();
  const PriorityEncoder<F> enc(Scheme::kPlc, spec, opt);
  for (int t = 0; t < 100; ++t) {
    const auto block = enc.encode(2, rng);
    for (std::size_t j = 0; j < spec.total(); ++j) EXPECT_NE(block.coeffs[j], 0);
  }
}

TEST(Encoder, SparseModelRowWeight) {
  Rng rng(94);
  EncoderOptions opt;
  opt.model = CoefficientModel::kSparse;
  opt.sparsity_factor = 3.0;
  const auto spec = PrioritySpec::uniform(4, 100);  // N = 400
  const PriorityEncoder<F> enc(Scheme::kPlc, spec, opt);
  for (std::size_t level = 0; level < 4; ++level) {
    const std::size_t width = spec.level_end(level);
    const auto expected =
        std::min<std::size_t>(width, static_cast<std::size_t>(std::ceil(3.0 * std::log(width))));
    for (int t = 0; t < 20; ++t) {
      const auto block = enc.encode(level, rng);
      std::size_t nnz = 0;
      for (auto c : block.coeffs) nnz += c != 0 ? 1 : 0;
      EXPECT_EQ(nnz, expected) << "level " << level;
    }
  }
}

TEST(Encoder, SparseWeightClampedToSupport) {
  Rng rng(95);
  EncoderOptions opt;
  opt.model = CoefficientModel::kSparse;
  opt.sparsity_factor = 100.0;  // would exceed support
  const PriorityEncoder<F> enc(Scheme::kSlc, small_spec(), opt);
  const auto block = enc.encode(0, rng);
  std::size_t nnz = 0;
  for (auto c : block.coeffs) nnz += c != 0 ? 1 : 0;
  EXPECT_EQ(nnz, 2u);  // level-0 support is 2 wide
}

TEST(Encoder, PayloadIsLinearCombination) {
  Rng rng(96);
  const auto spec = small_spec();
  const auto source = SourceData<F>::random(spec.total(), 7, rng);
  const PriorityEncoder<F> enc(Scheme::kPlc, spec, {}, &source);
  for (std::size_t level = 0; level < spec.levels(); ++level) {
    const auto block = enc.encode(level, rng);
    ASSERT_EQ(block.payload.size(), 7u);
    std::vector<std::uint8_t> expect(7, 0);
    for (std::size_t j = 0; j < spec.total(); ++j) {
      F::axpy(std::span<std::uint8_t>(expect), block.coeffs[j], source.block(j));
    }
    EXPECT_EQ(block.payload, expect);
  }
}

TEST(Encoder, NoSourceMeansNoPayload) {
  Rng rng(97);
  const PriorityEncoder<F> enc(Scheme::kRlc, small_spec());
  EXPECT_TRUE(enc.encode(0, rng).payload.empty());
}

TEST(Encoder, EncodeRandomUsesDistribution) {
  Rng rng(98);
  const auto spec = small_spec();
  const PriorityEncoder<F> enc(Scheme::kSlc, spec);
  const PriorityDistribution dist({0.0, 1.0, 0.0});
  for (int t = 0; t < 100; ++t) EXPECT_EQ(enc.encode_random(dist, rng).level, 1u);
}

TEST(Encoder, RejectsMismatchedInputs) {
  Rng rng(99);
  const auto spec = small_spec();
  const auto wrong_source = SourceData<F>::random(spec.total() + 1, 4, rng);
  EXPECT_THROW(PriorityEncoder<F>(Scheme::kPlc, spec, {}, &wrong_source), PreconditionError);
  const PriorityEncoder<F> enc(Scheme::kPlc, spec);
  EXPECT_THROW(enc.encode(3, rng), PreconditionError);
  const PriorityDistribution bad = PriorityDistribution::uniform(4);
  EXPECT_THROW(enc.encode_random(bad, rng), PreconditionError);
}

TEST(Encoder, SparseEmitterMatchesDenseEmitter) {
  // encode() and encode_sparse() must consume the RNG identically and
  // describe the same equation: expanding the sparse block reproduces the
  // dense block's coefficients and payload bit for bit, for every
  // coefficient model, scheme, and the chunked-sparsity option.
  Rng seed_rng(101);
  const auto spec = small_spec();
  const auto source = SourceData<F>::random(spec.total(), 7, seed_rng);
  const EncoderOptions configs[] = {
      {CoefficientModel::kDenseUniform, 3.0, 0},
      {CoefficientModel::kDenseNonzero, 3.0, 0},
      {CoefficientModel::kSparse, 1.5, 0},
      {CoefficientModel::kSparse, 1.5, 4},  // chunked
  };
  for (const auto scheme : {Scheme::kRlc, Scheme::kSlc, Scheme::kPlc}) {
    for (const auto& opts : configs) {
      const PriorityEncoder<F> enc(scheme, spec, opts, &source);
      for (std::size_t level = 0; level < spec.levels(); ++level) {
        for (int t = 0; t < 20; ++t) {
          const std::uint64_t s = 5000 + 100 * t + level;
          Rng rng_dense(s);
          Rng rng_sparse(s);
          const auto dense = enc.encode(level, rng_dense);
          const auto sparse = enc.encode_sparse(level, rng_sparse);
          ASSERT_EQ(dense.level, sparse.level);
          std::vector<std::uint8_t> expanded(spec.total(), 0);
          for (std::size_t k = 0; k < sparse.indices.size(); ++k) {
            ASSERT_NE(sparse.values[k], 0);
            ASSERT_TRUE(k == 0 || sparse.indices[k - 1] < sparse.indices[k])
                << "sparse indices must be strictly increasing";
            expanded[sparse.indices[k]] = sparse.values[k];
          }
          ASSERT_EQ(expanded, dense.coeffs);
          ASSERT_EQ(sparse.payload, dense.payload);
        }
      }
    }
  }
}

TEST(Encoder, ChunkedSupportStaysInsideOneChunk) {
  const auto spec = PrioritySpec::uniform(1, 64);  // N = 64, one level
  EncoderOptions opts;
  opts.model = CoefficientModel::kSparse;
  opts.chunk_size = 16;
  const PriorityEncoder<F> enc(Scheme::kRlc, spec, opts);
  Rng rng(103);
  for (int t = 0; t < 200; ++t) {
    const auto block = enc.encode_sparse(0, rng);
    ASSERT_FALSE(block.indices.empty());
    const std::size_t chunk = block.indices.front() / 16;
    for (const auto j : block.indices) {
      ASSERT_EQ(j / 16, chunk) << "support crossed a chunk boundary";
    }
  }
}

TEST(SourceData, RandomAndAccessors) {
  Rng rng(100);
  auto d = SourceData<F>::random(5, 3, rng);
  EXPECT_EQ(d.blocks(), 5u);
  EXPECT_EQ(d.block_size(), 3u);
  d.block(2)[1] = 42;
  EXPECT_EQ(d.block(2)[1], 42);
  EXPECT_THROW(d.block(5), PreconditionError);
}

}  // namespace
}  // namespace prlc::codes
