#include "codes/decoder.h"

#include <gtest/gtest.h>

#include "codes/encoder.h"
#include "gf/gf2m.h"
#include "gf/gf256.h"
#include "util/check.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

PrioritySpec small_spec() { return PrioritySpec({2, 3, 4}); }

/// Feed random blocks of the given levels until `count` of them are in.
template <gf::FieldPolicy Field>
void feed(PriorityDecoder<Field>& dec, const PriorityEncoder<Field>& enc, std::size_t level,
          std::size_t count, Rng& rng) {
  for (std::size_t i = 0; i < count; ++i) dec.add(enc.encode(level, rng));
}

TEST(PriorityDecoder, RlcIsAllOrNothing) {
  Rng rng(111);
  const auto spec = small_spec();
  const PriorityEncoder<F> enc(Scheme::kRlc, spec);
  PriorityDecoder<F> dec(Scheme::kRlc, spec);
  feed(dec, enc, 0, spec.total() - 1, rng);
  EXPECT_EQ(dec.decoded_levels(), 0u);
  EXPECT_EQ(dec.decoded_prefix_blocks(), 0u);
  // One more independent block completes everything (whp over GF(256)).
  feed(dec, enc, 0, 3, rng);
  EXPECT_EQ(dec.decoded_levels(), 3u);
  EXPECT_EQ(dec.decoded_prefix_blocks(), spec.total());
}

TEST(PriorityDecoder, PlcDecodesLevelsProgressively) {
  Rng rng(112);
  const auto spec = small_spec();
  const PriorityEncoder<F> enc(Scheme::kPlc, spec);
  PriorityDecoder<F> dec(Scheme::kPlc, spec);
  // Two level-0 blocks decode level 0 (b_1 = 2).
  feed(dec, enc, 0, 2, rng);
  EXPECT_EQ(dec.decoded_levels(), 1u);
  EXPECT_TRUE(dec.is_level_decoded(0));
  EXPECT_FALSE(dec.is_level_decoded(1));
  // Three level-1 blocks extend the prefix to b_2 = 5.
  feed(dec, enc, 1, 3, rng);
  EXPECT_EQ(dec.decoded_levels(), 2u);
  // Four level-2 blocks finish everything.
  feed(dec, enc, 2, 4, rng);
  EXPECT_EQ(dec.decoded_levels(), 3u);
  EXPECT_EQ(dec.rank(), spec.total());
}

TEST(PriorityDecoder, PlcHigherLevelBlocksAloneDecodeEverything) {
  Rng rng(113);
  const auto spec = small_spec();
  const PriorityEncoder<F> enc(Scheme::kPlc, spec);
  PriorityDecoder<F> dec(Scheme::kPlc, spec);
  // Level-2 PLC blocks span all 9 unknowns; 9 of them decode all levels.
  feed(dec, enc, 2, 9, rng);
  EXPECT_EQ(dec.decoded_levels(), 3u);
}

TEST(PriorityDecoder, PlcMixedBlocksFollowTheorem1Counts) {
  Rng rng(114);
  const auto spec = small_spec();
  const PriorityEncoder<F> enc(Scheme::kPlc, spec);
  PriorityDecoder<F> dec(Scheme::kPlc, spec);
  // D = (1, 4, 0): D_{1,2} = 5 >= b_2 = 5 and D_{2,2} = 4 >= b_2-b_1 = 3,
  // so exactly two levels decode (Theorem 1).
  feed(dec, enc, 0, 1, rng);
  feed(dec, enc, 1, 4, rng);
  EXPECT_EQ(dec.decoded_levels(), 2u);
  EXPECT_EQ(dec.decoded_prefix_blocks(), 5u);
}

TEST(PriorityDecoder, SlcLevelsAreIndependent) {
  Rng rng(115);
  const auto spec = small_spec();
  const PriorityEncoder<F> enc(Scheme::kSlc, spec);
  PriorityDecoder<F> dec(Scheme::kSlc, spec);
  // Decode level 1 (3 blocks) without level 0: strict-priority X stays 0.
  feed(dec, enc, 1, 3, rng);
  EXPECT_TRUE(dec.is_level_decoded(1));
  EXPECT_FALSE(dec.is_level_decoded(0));
  EXPECT_EQ(dec.decoded_levels(), 0u);
  EXPECT_EQ(dec.decoded_prefix_blocks(), 0u);
  // Blocks 2..4 are individually decoded though.
  EXPECT_TRUE(dec.is_block_decoded(2));
  EXPECT_FALSE(dec.is_block_decoded(0));
  // Now decode level 0: prefix jumps to 2 levels.
  feed(dec, enc, 0, 2, rng);
  EXPECT_EQ(dec.decoded_levels(), 2u);
  EXPECT_EQ(dec.decoded_prefix_blocks(), 5u);
}

TEST(PriorityDecoder, SlcRejectsOutOfLevelSupport) {
  const auto spec = small_spec();
  PriorityDecoder<F> dec(Scheme::kSlc, spec);
  CodedBlock<F> bad;
  bad.level = 0;
  bad.coeffs.assign(spec.total(), 0);
  bad.coeffs[0] = 1;
  bad.coeffs[5] = 2;  // outside level 0
  EXPECT_THROW(dec.add(bad), PreconditionError);
}

TEST(PriorityDecoder, PayloadRoundTripAllSchemes) {
  Rng rng(116);
  const auto spec = small_spec();
  for (Scheme scheme : {Scheme::kRlc, Scheme::kSlc, Scheme::kPlc}) {
    const auto source = SourceData<F>::random(spec.total(), 6, rng);
    const PriorityEncoder<F> enc(scheme, spec, {}, &source);
    PriorityDecoder<F> dec(scheme, spec, 6);
    // Saturate every level with blocks.
    for (std::size_t level = 0; level < spec.levels(); ++level) {
      feed(dec, enc, level, spec.total() + 2, rng);
    }
    ASSERT_EQ(dec.decoded_levels(), spec.levels()) << to_string(scheme);
    for (std::size_t j = 0; j < spec.total(); ++j) {
      ASSERT_TRUE(dec.is_block_decoded(j));
      const auto got = dec.recovered(j);
      const auto want = source.block(j);
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
          << to_string(scheme) << " block " << j;
    }
  }
}

TEST(PriorityDecoder, SparsePlcStillDecodes) {
  Rng rng(117);
  const auto spec = PrioritySpec::uniform(4, 25);  // N = 100
  EncoderOptions opt;
  opt.model = CoefficientModel::kSparse;
  opt.sparsity_factor = 4.0;
  const PriorityEncoder<F> enc(Scheme::kPlc, spec, opt);
  PriorityDecoder<F> dec(Scheme::kPlc, spec);
  // Half again as many blocks as unknowns, all at the last level.
  feed(dec, enc, 3, 150, rng);
  EXPECT_EQ(dec.decoded_levels(), 4u);
}

TEST(PriorityDecoder, MismatchedBlockRejected) {
  const auto spec = small_spec();
  PriorityDecoder<F> dec(Scheme::kPlc, spec, 4);
  CodedBlock<F> b;
  b.level = 0;
  b.coeffs.assign(spec.total() + 1, 0);
  b.payload.assign(4, 0);
  EXPECT_THROW(dec.add(b), PreconditionError);
  b.coeffs.assign(spec.total(), 0);
  b.payload.assign(3, 0);
  EXPECT_THROW(dec.add(b), PreconditionError);
}

TEST(PriorityDecoder, BlocksSeenCountsEverything) {
  Rng rng(118);
  const auto spec = small_spec();
  const PriorityEncoder<F> enc(Scheme::kPlc, spec);
  PriorityDecoder<F> dec(Scheme::kPlc, spec);
  feed(dec, enc, 0, 10, rng);  // only 2 can be innovative
  EXPECT_EQ(dec.blocks_seen(), 10u);
  EXPECT_EQ(dec.rank(), 2u);
}

TEST(PriorityDecoder, WorksOverGf2) {
  // Small fields lose rank more often but the machinery must still work.
  using F2 = gf::Gf2;
  Rng rng(119);
  const auto spec = PrioritySpec({3, 3});
  const PriorityEncoder<F2> enc(Scheme::kPlc, spec);
  PriorityDecoder<F2> dec(Scheme::kPlc, spec);
  feed(dec, enc, 1, 60, rng);  // heavy overprovisioning beats GF(2) defects
  EXPECT_EQ(dec.decoded_levels(), 2u);
}

TEST(PriorityDecoder, RecoveredRequiresPayloadMode) {
  Rng rng(120);
  const auto spec = small_spec();
  const PriorityEncoder<F> enc(Scheme::kPlc, spec);
  PriorityDecoder<F> dec(Scheme::kPlc, spec);
  feed(dec, enc, 0, 2, rng);
  EXPECT_THROW(dec.recovered(0), PreconditionError);
}

}  // namespace
}  // namespace prlc::codes
