#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "codes/wire_format.h"
#include "util/random.h"

namespace prlc::codes {
namespace {

CodedBlock<gf::Gf256> make_block(std::size_t n, std::size_t nnz, std::size_t payload,
                                 Rng& rng) {
  CodedBlock<gf::Gf256> block;
  block.level = rng.uniform(4);
  block.coeffs.assign(n, 0);
  for (std::size_t i = 0; i < nnz; ++i) {
    block.coeffs[rng.uniform(n)] = static_cast<std::uint8_t>(1 + rng.uniform(255));
  }
  block.payload.resize(payload);
  for (auto& v : block.payload) v = static_cast<std::uint8_t>(rng.uniform(256));
  return block;
}

TEST(WireView, OwningAndViewSerializersProduceIdenticalBytes) {
  Rng rng(51);
  for (const auto& [n, nnz, payload] :
       {std::tuple<std::size_t, std::size_t, std::size_t>{16, 16, 64},   // dense
        std::tuple<std::size_t, std::size_t, std::size_t>{256, 3, 100},  // sparse
        std::tuple<std::size_t, std::size_t, std::size_t>{64, 1, 0}}) {  // empty payload
    const auto block = make_block(n, nnz, payload, rng);
    const auto owned = encode_wire(Scheme::kPlc, block);
    const auto viewed = encode_wire(
        Scheme::kPlc,
        CodedBlockView{.level = block.level, .coeffs = block.coeffs, .payload = block.payload});
    EXPECT_EQ(owned, viewed);
  }
}

TEST(WireView, ViewParseMatchesOwningParseAndAliasesTheInput) {
  Rng rng(52);
  for (const std::size_t nnz : {std::size_t{2}, std::size_t{200}}) {  // sparse + dense
    const auto block = make_block(200, nnz, 333, rng);
    const auto bytes = encode_wire(Scheme::kSlc, block);

    const WireBlock owned = decode_wire(bytes);
    const WireBlockView view = decode_wire_view(bytes);
    EXPECT_EQ(view.scheme, owned.scheme);
    EXPECT_EQ(view.level, owned.block.level);
    EXPECT_EQ(view.coeff_width, owned.block.coeffs.size());

    std::vector<std::uint8_t> coeffs(view.coeff_width);
    view.expand_coeffs(coeffs);
    EXPECT_EQ(coeffs, owned.block.coeffs);
    EXPECT_EQ(std::vector<std::uint8_t>(view.payload.begin(), view.payload.end()),
              owned.block.payload);

    // Zero-copy: the view's payload points into the frame itself.
    EXPECT_GE(view.payload.data(), bytes.data());
    EXPECT_LE(view.payload.data() + view.payload.size(), bytes.data() + bytes.size());
    if (view.dense()) {
      EXPECT_GE(view.dense_coeffs.data(), bytes.data());
    }
  }
}

TEST(WireView, ViewRejectsTheSameCorruptionsAsTheOwningParser) {
  Rng rng(53);
  const auto block = make_block(32, 32, 90, rng);
  const auto bytes = encode_wire(Scheme::kRlc, block);

  // Byte flips anywhere must be caught by both parsers identically.
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    auto damaged = bytes;
    damaged[pos] ^= 0x40;
    bool owned_threw = false, view_threw = false;
    try {
      decode_wire(damaged);
    } catch (const WireFormatError&) {
      owned_threw = true;
    }
    try {
      decode_wire_view(damaged);
    } catch (const WireFormatError&) {
      view_threw = true;
    }
    EXPECT_EQ(owned_threw, view_threw) << "divergence at byte " << pos;
    EXPECT_TRUE(view_threw);  // CRC covers every byte
  }

  // Truncations too.
  for (const std::size_t keep : {std::size_t{0}, std::size_t{10}, bytes.size() - 1}) {
    const std::vector<std::uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_THROW(decode_wire(cut), WireFormatError);
    EXPECT_THROW(decode_wire_view(cut), WireFormatError);
  }
}

TEST(WireView, SparseFrameWithDuplicateIndexKeepsLastWins) {
  // Hand-build nothing: round-trip is enough — duplicate indices cannot
  // be produced by encode_wire, but expand_coeffs scatters in order, so
  // behaviour matches the owning parser's sequential writes by
  // construction. This guards the invariant with a plain round-trip.
  Rng rng(54);
  const auto block = make_block(500, 4, 12, rng);
  const auto bytes = encode_wire(Scheme::kPlc, block);
  const WireBlockView view = decode_wire_view(bytes);
  ASSERT_FALSE(view.dense());
  std::vector<std::uint8_t> coeffs(view.coeff_width);
  view.expand_coeffs(coeffs);
  EXPECT_EQ(coeffs, block.coeffs);
}

}  // namespace
}  // namespace prlc::codes
