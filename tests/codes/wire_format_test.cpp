#include "codes/wire_format.h"

#include <gtest/gtest.h>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "util/random.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

CodedBlock<F> make_block(Scheme scheme, std::size_t level, bool with_payload, Rng& rng,
                         EncoderOptions opt = {}) {
  const auto spec = PrioritySpec({4, 6, 10});
  static SourceData<F>* source = nullptr;
  if (with_payload) {
    static SourceData<F> s = SourceData<F>::random(20, 16, rng);
    source = &s;
  }
  const PriorityEncoder<F> enc(scheme, spec, opt, with_payload ? source : nullptr);
  return enc.encode(level, rng);
}

TEST(WireFormat, RoundTripDense) {
  Rng rng(201);
  for (Scheme scheme : {Scheme::kRlc, Scheme::kSlc, Scheme::kPlc}) {
    for (std::size_t level : {0u, 1u, 2u}) {
      const auto block = make_block(scheme, level, true, rng);
      const auto wire = encode_wire(scheme, block);
      const auto decoded = decode_wire(wire);
      EXPECT_EQ(decoded.scheme, scheme);
      EXPECT_EQ(decoded.block.level, level);
      EXPECT_EQ(decoded.block.coeffs, block.coeffs);
      EXPECT_EQ(decoded.block.payload, block.payload);
    }
  }
}

TEST(WireFormat, RoundTripSparse) {
  Rng rng(202);
  EncoderOptions opt;
  opt.model = CoefficientModel::kSparse;
  const auto block = make_block(Scheme::kPlc, 2, true, rng, opt);
  const auto wire = encode_wire(Scheme::kPlc, block);
  // Sparse encoding should beat 20 dense coefficient bytes? Not at N=20 —
  // just verify the round trip; size economics are covered below.
  const auto decoded = decode_wire(wire);
  EXPECT_EQ(decoded.block.coeffs, block.coeffs);
  EXPECT_EQ(decoded.block.payload, block.payload);
}

TEST(WireFormat, SparseEncodingSavesSpaceForNarrowSupport) {
  Rng rng(203);
  // A level-0 SLC block over a large spec: 4 nonzeros out of 1000.
  const auto spec = PrioritySpec({4, 496, 500});
  const PriorityEncoder<F> enc(Scheme::kSlc, spec);
  const auto block = enc.encode(0, rng);
  const auto wire = encode_wire(Scheme::kSlc, block);
  EXPECT_LT(wire.size(), 28u + 4 + 4 * 5 + 8);  // header + count + entries + crc slack
  EXPECT_EQ(decode_wire(wire).block.coeffs, block.coeffs);
}

TEST(WireFormat, EmptyPayloadAllowed) {
  Rng rng(204);
  const auto block = make_block(Scheme::kPlc, 1, false, rng);
  const auto decoded = decode_wire(encode_wire(Scheme::kPlc, block));
  EXPECT_TRUE(decoded.block.payload.empty());
  EXPECT_EQ(decoded.block.coeffs, block.coeffs);
}

TEST(WireFormat, DetectsEveryByteFlip) {
  Rng rng(205);
  const auto block = make_block(Scheme::kPlc, 2, true, rng);
  const auto wire = encode_wire(Scheme::kPlc, block);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto corrupt = wire;
    corrupt[i] ^= 0x40;
    EXPECT_THROW(decode_wire(corrupt), WireFormatError) << "byte " << i;
  }
}

TEST(WireFormat, DetectsTruncation) {
  Rng rng(206);
  const auto block = make_block(Scheme::kSlc, 1, true, rng);
  const auto wire = encode_wire(Scheme::kSlc, block);
  for (std::size_t keep : {0u, 5u, 27u}) {
    const std::vector<std::uint8_t> cut(wire.begin(), wire.begin() + keep);
    EXPECT_THROW(decode_wire(cut), WireFormatError) << keep;
  }
  // Cutting a suffix (but keeping >= 28 bytes) must fail the CRC.
  const std::vector<std::uint8_t> cut(wire.begin(), wire.end() - 3);
  EXPECT_THROW(decode_wire(cut), WireFormatError);
}

TEST(WireFormat, DetectsTrailingGarbage) {
  Rng rng(207);
  const auto block = make_block(Scheme::kPlc, 0, true, rng);
  auto wire = encode_wire(Scheme::kPlc, block);
  wire.push_back(0xAB);
  EXPECT_THROW(decode_wire(wire), WireFormatError);
}

TEST(WireFormat, RejectsEmptyBlock) {
  CodedBlock<F> empty;
  EXPECT_THROW(encode_wire(Scheme::kPlc, empty), PreconditionError);
}

TEST(WireManifest, RoundTrip) {
  Rng rng(301);
  util::FingerprintManifest manifest;
  manifest.seed = 0xDEADBEEFCAFEF00DULL;
  manifest.block_size = 16;
  for (int j = 0; j < 20; ++j) manifest.fingerprints.push_back(rng());
  const auto wire = encode_manifest(manifest);
  EXPECT_EQ(decode_manifest(wire), manifest);
}

TEST(WireManifest, RoundTripEmptyAndSingle) {
  util::FingerprintManifest manifest;
  manifest.seed = 7;
  manifest.block_size = 1;
  EXPECT_EQ(decode_manifest(encode_manifest(manifest)), manifest);
  manifest.fingerprints.push_back(0);  // zero fingerprints must survive
  EXPECT_EQ(decode_manifest(encode_manifest(manifest)), manifest);
}

TEST(WireManifest, MatchesBuildManifest) {
  Rng rng(302);
  std::vector<std::uint8_t> source(10 * 16);
  for (auto& b : source) b = static_cast<std::uint8_t>(rng());
  const auto manifest = util::build_manifest(88, source, 16);
  EXPECT_EQ(decode_manifest(encode_manifest(manifest)), manifest);
}

TEST(WireManifest, DetectsEveryByteFlip) {
  Rng rng(303);
  util::FingerprintManifest manifest;
  manifest.seed = 99;
  manifest.block_size = 8;
  for (int j = 0; j < 5; ++j) manifest.fingerprints.push_back(rng());
  const auto wire = encode_manifest(manifest);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto corrupt = wire;
    corrupt[i] ^= 0x20;
    EXPECT_THROW(decode_manifest(corrupt), WireFormatError) << "byte " << i;
  }
}

TEST(WireManifest, DetectsTruncationAndTrailingGarbage) {
  util::FingerprintManifest manifest;
  manifest.seed = 4;
  manifest.block_size = 8;
  manifest.fingerprints = {1, 2, 3};
  auto wire = encode_manifest(manifest);
  for (std::size_t keep : {0u, 10u, 24u}) {
    const std::vector<std::uint8_t> cut(wire.begin(), wire.begin() + keep);
    EXPECT_THROW(decode_manifest(cut), WireFormatError) << keep;
  }
  const std::vector<std::uint8_t> cut(wire.begin(), wire.end() - 5);
  EXPECT_THROW(decode_manifest(cut), WireFormatError);
  wire.push_back(0x55);
  EXPECT_THROW(decode_manifest(wire), WireFormatError);
}

TEST(WireManifest, RejectsZeroBlockSize) {
  util::FingerprintManifest manifest;
  manifest.seed = 1;
  manifest.block_size = 0;
  EXPECT_THROW(encode_manifest(manifest), PreconditionError);
}

TEST(WireManifest, NotConfusableWithBlockFrames) {
  // A manifest frame must not parse as a coded block and vice versa:
  // distinct magics guarantee mutual rejection.
  Rng rng(304);
  util::FingerprintManifest manifest;
  manifest.seed = 12;
  manifest.block_size = 16;
  for (int j = 0; j < 6; ++j) manifest.fingerprints.push_back(rng());
  EXPECT_THROW(decode_wire(encode_manifest(manifest)), WireFormatError);
  const auto block = make_block(Scheme::kPlc, 1, true, rng);
  EXPECT_THROW(decode_manifest(encode_wire(Scheme::kPlc, block)), WireFormatError);
}

TEST(WireManifest, VerifiesCodedFramesWithoutDecode) {
  // The point of the manifest: a collector holding only the manifest can
  // check any coded frame it fetches — and catches a forged payload that
  // carries a perfectly valid CRC.
  Rng rng(305);
  const auto spec = PrioritySpec({4, 6, 10});
  const auto source = SourceData<F>::random(spec.total(), 16, rng);
  std::vector<std::uint8_t> flat;
  for (std::size_t j = 0; j < spec.total(); ++j) {
    const auto row = source.block(j);
    flat.insert(flat.end(), row.begin(), row.end());
  }
  const auto manifest = decode_manifest(encode_manifest(util::build_manifest(777, flat, 16)));
  const util::Fingerprinter fp(manifest.seed);
  const PriorityEncoder<F> enc(Scheme::kPlc, spec, {}, &source);
  for (int i = 0; i < 30; ++i) {
    auto block = enc.encode(rng.uniform(3), rng);
    EXPECT_EQ(fp.fingerprint(block.payload),
              fp.combine(block.coeffs, manifest.fingerprints));
    // Byzantine forgery: flip a payload byte and re-wrap with a fresh,
    // valid CRC. The CRC passes; the fingerprint must not.
    block.payload[rng.uniform(block.payload.size())] ^= 1 + rng.uniform(255);
    const auto forged = decode_wire(encode_wire(Scheme::kPlc, block));
    EXPECT_NE(fp.fingerprint(forged.block.payload),
              fp.combine(forged.block.coeffs, manifest.fingerprints));
  }
}

TEST(WireFormat, DecodedBlockFeedsDecoder) {
  // End-to-end: serialize, parse, decode data.
  Rng rng(208);
  const auto spec = PrioritySpec({4, 6, 10});
  const auto source = SourceData<F>::random(spec.total(), 16, rng);
  const PriorityEncoder<F> enc(Scheme::kPlc, spec, {}, &source);
  PriorityDecoder<F> dec(Scheme::kPlc, spec, 16);
  while (dec.decoded_levels() < 3) {
    const auto wire = encode_wire(Scheme::kPlc, enc.encode(2, rng));
    dec.add(decode_wire(wire).block);
  }
  for (std::size_t j = 0; j < spec.total(); ++j) {
    const auto got = dec.recovered(j);
    const auto want = source.block(j);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  }
}

}  // namespace
}  // namespace prlc::codes
