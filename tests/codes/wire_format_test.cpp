#include "codes/wire_format.h"

#include <gtest/gtest.h>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "util/random.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

CodedBlock<F> make_block(Scheme scheme, std::size_t level, bool with_payload, Rng& rng,
                         EncoderOptions opt = {}) {
  const auto spec = PrioritySpec({4, 6, 10});
  static SourceData<F>* source = nullptr;
  if (with_payload) {
    static SourceData<F> s = SourceData<F>::random(20, 16, rng);
    source = &s;
  }
  const PriorityEncoder<F> enc(scheme, spec, opt, with_payload ? source : nullptr);
  return enc.encode(level, rng);
}

TEST(WireFormat, RoundTripDense) {
  Rng rng(201);
  for (Scheme scheme : {Scheme::kRlc, Scheme::kSlc, Scheme::kPlc}) {
    for (std::size_t level : {0u, 1u, 2u}) {
      const auto block = make_block(scheme, level, true, rng);
      const auto wire = encode_wire(scheme, block);
      const auto decoded = decode_wire(wire);
      EXPECT_EQ(decoded.scheme, scheme);
      EXPECT_EQ(decoded.block.level, level);
      EXPECT_EQ(decoded.block.coeffs, block.coeffs);
      EXPECT_EQ(decoded.block.payload, block.payload);
    }
  }
}

TEST(WireFormat, RoundTripSparse) {
  Rng rng(202);
  EncoderOptions opt;
  opt.model = CoefficientModel::kSparse;
  const auto block = make_block(Scheme::kPlc, 2, true, rng, opt);
  const auto wire = encode_wire(Scheme::kPlc, block);
  // Sparse encoding should beat 20 dense coefficient bytes? Not at N=20 —
  // just verify the round trip; size economics are covered below.
  const auto decoded = decode_wire(wire);
  EXPECT_EQ(decoded.block.coeffs, block.coeffs);
  EXPECT_EQ(decoded.block.payload, block.payload);
}

TEST(WireFormat, SparseEncodingSavesSpaceForNarrowSupport) {
  Rng rng(203);
  // A level-0 SLC block over a large spec: 4 nonzeros out of 1000.
  const auto spec = PrioritySpec({4, 496, 500});
  const PriorityEncoder<F> enc(Scheme::kSlc, spec);
  const auto block = enc.encode(0, rng);
  const auto wire = encode_wire(Scheme::kSlc, block);
  EXPECT_LT(wire.size(), 28u + 4 + 4 * 5 + 8);  // header + count + entries + crc slack
  EXPECT_EQ(decode_wire(wire).block.coeffs, block.coeffs);
}

TEST(WireFormat, EmptyPayloadAllowed) {
  Rng rng(204);
  const auto block = make_block(Scheme::kPlc, 1, false, rng);
  const auto decoded = decode_wire(encode_wire(Scheme::kPlc, block));
  EXPECT_TRUE(decoded.block.payload.empty());
  EXPECT_EQ(decoded.block.coeffs, block.coeffs);
}

TEST(WireFormat, DetectsEveryByteFlip) {
  Rng rng(205);
  const auto block = make_block(Scheme::kPlc, 2, true, rng);
  const auto wire = encode_wire(Scheme::kPlc, block);
  for (std::size_t i = 0; i < wire.size(); ++i) {
    auto corrupt = wire;
    corrupt[i] ^= 0x40;
    EXPECT_THROW(decode_wire(corrupt), WireFormatError) << "byte " << i;
  }
}

TEST(WireFormat, DetectsTruncation) {
  Rng rng(206);
  const auto block = make_block(Scheme::kSlc, 1, true, rng);
  const auto wire = encode_wire(Scheme::kSlc, block);
  for (std::size_t keep : {0u, 5u, 27u}) {
    const std::vector<std::uint8_t> cut(wire.begin(), wire.begin() + keep);
    EXPECT_THROW(decode_wire(cut), WireFormatError) << keep;
  }
  // Cutting a suffix (but keeping >= 28 bytes) must fail the CRC.
  const std::vector<std::uint8_t> cut(wire.begin(), wire.end() - 3);
  EXPECT_THROW(decode_wire(cut), WireFormatError);
}

TEST(WireFormat, DetectsTrailingGarbage) {
  Rng rng(207);
  const auto block = make_block(Scheme::kPlc, 0, true, rng);
  auto wire = encode_wire(Scheme::kPlc, block);
  wire.push_back(0xAB);
  EXPECT_THROW(decode_wire(wire), WireFormatError);
}

TEST(WireFormat, RejectsEmptyBlock) {
  CodedBlock<F> empty;
  EXPECT_THROW(encode_wire(Scheme::kPlc, empty), PreconditionError);
}

TEST(WireFormat, DecodedBlockFeedsDecoder) {
  // End-to-end: serialize, parse, decode data.
  Rng rng(208);
  const auto spec = PrioritySpec({4, 6, 10});
  const auto source = SourceData<F>::random(spec.total(), 16, rng);
  const PriorityEncoder<F> enc(Scheme::kPlc, spec, {}, &source);
  PriorityDecoder<F> dec(Scheme::kPlc, spec, 16);
  while (dec.decoded_levels() < 3) {
    const auto wire = encode_wire(Scheme::kPlc, enc.encode(2, rng));
    dec.add(decode_wire(wire).block);
  }
  for (std::size_t j = 0; j < spec.total(); ++j) {
    const auto got = dec.recovered(j);
    const auto want = source.block(j);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  }
}

}  // namespace
}  // namespace prlc::codes
