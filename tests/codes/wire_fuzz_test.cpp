// Fuzz-style robustness battery for the wire format: arbitrary and
// mutated byte streams must either parse to a valid block or throw
// WireFormatError — never crash, hang, or return garbage silently.
#include <gtest/gtest.h>

#include "codes/encoder.h"
#include "codes/wire_format.h"
#include "util/random.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

TEST(WireFuzz, RandomBuffersNeverCrash) {
  Rng rng(301);
  for (int t = 0; t < 3000; ++t) {
    const std::size_t len = rng.uniform(200);
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.uniform(256));
    try {
      const auto block = decode_wire(buf);
      // A random buffer passing a CRC-32 is a ~2^-32 event per trial;
      // reaching here at all is effectively impossible, but if it ever
      // happens the result must still be structurally sound.
      EXPECT_FALSE(block.block.coeffs.empty());
    } catch (const WireFormatError&) {
      // expected
    }
  }
}

TEST(WireFuzz, MutatedValidFramesNeverCrash) {
  Rng rng(302);
  const auto spec = PrioritySpec({4, 6, 10});
  const auto source = SourceData<F>::random(spec.total(), 8, rng);
  const PriorityEncoder<F> enc(Scheme::kPlc, spec, {}, &source);
  const auto wire = encode_wire(Scheme::kPlc, enc.encode(2, rng));
  std::size_t parsed = 0;
  for (int t = 0; t < 3000; ++t) {
    auto buf = wire;
    // 1-4 random byte mutations.
    const std::size_t mutations = 1 + rng.uniform(4);
    for (std::size_t i = 0; i < mutations; ++i) {
      buf[rng.uniform(buf.size())] ^= static_cast<std::uint8_t>(1 + rng.uniform(255));
    }
    try {
      decode_wire(buf);
      ++parsed;  // mutations that cancel out (possible when an even
                 // number hit the same byte) re-create the original
    } catch (const WireFormatError&) {
    }
  }
  EXPECT_LE(parsed, 60);  // overwhelming majority must be rejected
}

TEST(WireFuzz, RandomTruncationsNeverCrash) {
  Rng rng(303);
  const auto spec = PrioritySpec({4, 6, 10});
  const PriorityEncoder<F> enc(Scheme::kSlc, spec);
  const auto wire = encode_wire(Scheme::kSlc, enc.encode(1, rng));
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    const std::vector<std::uint8_t> cut(wire.begin(),
                                        wire.begin() + static_cast<std::ptrdiff_t>(keep));
    EXPECT_THROW(decode_wire(cut), WireFormatError) << keep;
  }
}

TEST(WireFuzz, ConcatenatedFramesRejected) {
  // Two frames glued together must not silently parse as one.
  Rng rng(304);
  const auto spec = PrioritySpec({4, 6, 10});
  const PriorityEncoder<F> enc(Scheme::kPlc, spec);
  auto a = encode_wire(Scheme::kPlc, enc.encode(0, rng));
  const auto b = encode_wire(Scheme::kPlc, enc.encode(1, rng));
  a.insert(a.end(), b.begin(), b.end());
  EXPECT_THROW(decode_wire(a), WireFormatError);
}

}  // namespace
}  // namespace prlc::codes
