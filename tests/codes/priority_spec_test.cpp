#include "codes/priority_spec.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace prlc::codes {
namespace {

TEST(PrioritySpec, PrefixSums) {
  const PrioritySpec spec({50, 100, 350});
  EXPECT_EQ(spec.levels(), 3u);
  EXPECT_EQ(spec.level_size(0), 50u);
  EXPECT_EQ(spec.level_size(2), 350u);
  EXPECT_EQ(spec.prefix_size(0), 50u);
  EXPECT_EQ(spec.prefix_size(1), 150u);
  EXPECT_EQ(spec.prefix_size(2), 500u);
  EXPECT_EQ(spec.total(), 500u);
}

TEST(PrioritySpec, LevelRanges) {
  const PrioritySpec spec({2, 3, 4});
  EXPECT_EQ(spec.level_begin(0), 0u);
  EXPECT_EQ(spec.level_end(0), 2u);
  EXPECT_EQ(spec.level_begin(1), 2u);
  EXPECT_EQ(spec.level_end(1), 5u);
  EXPECT_EQ(spec.level_begin(2), 5u);
  EXPECT_EQ(spec.level_end(2), 9u);
}

TEST(PrioritySpec, LevelOfBlock) {
  const PrioritySpec spec({2, 3, 4});
  EXPECT_EQ(spec.level_of_block(0), 0u);
  EXPECT_EQ(spec.level_of_block(1), 0u);
  EXPECT_EQ(spec.level_of_block(2), 1u);
  EXPECT_EQ(spec.level_of_block(4), 1u);
  EXPECT_EQ(spec.level_of_block(5), 2u);
  EXPECT_EQ(spec.level_of_block(8), 2u);
  EXPECT_THROW(spec.level_of_block(9), PreconditionError);
}

TEST(PrioritySpec, LevelsCoveredByPrefix) {
  const PrioritySpec spec({2, 3, 4});
  EXPECT_EQ(spec.levels_covered_by_prefix(0), 0u);
  EXPECT_EQ(spec.levels_covered_by_prefix(1), 0u);
  EXPECT_EQ(spec.levels_covered_by_prefix(2), 1u);
  EXPECT_EQ(spec.levels_covered_by_prefix(4), 1u);
  EXPECT_EQ(spec.levels_covered_by_prefix(5), 2u);
  EXPECT_EQ(spec.levels_covered_by_prefix(9), 3u);
  EXPECT_EQ(spec.levels_covered_by_prefix(100), 3u);
}

TEST(PrioritySpec, UniformFactory) {
  const auto spec = PrioritySpec::uniform(5, 200);
  EXPECT_EQ(spec.levels(), 5u);
  EXPECT_EQ(spec.total(), 1000u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(spec.level_size(i), 200u);
}

TEST(PrioritySpec, RejectsDegenerateSpecs) {
  EXPECT_THROW(PrioritySpec({}), PreconditionError);
  EXPECT_THROW(PrioritySpec({3, 0, 2}), PreconditionError);
  EXPECT_THROW(PrioritySpec::uniform(0, 5), PreconditionError);
  EXPECT_THROW(PrioritySpec::uniform(5, 0), PreconditionError);
}

TEST(PrioritySpec, Equality) {
  EXPECT_EQ(PrioritySpec({1, 2}), PrioritySpec({1, 2}));
  EXPECT_FALSE(PrioritySpec({1, 2}) == PrioritySpec({2, 1}));
}

TEST(PrioritySpec, TryParseFromString) {
  const auto spec = try_spec_from_string("50,100,350");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(*spec, PrioritySpec({50, 100, 350}));
  const auto single = try_spec_from_string("7");
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->levels(), 1u);
}

TEST(PrioritySpec, TryParseRejectsMalformedText) {
  EXPECT_EQ(try_spec_from_string(""), std::nullopt);
  EXPECT_EQ(try_spec_from_string(","), std::nullopt);
  EXPECT_EQ(try_spec_from_string("5,"), std::nullopt);
  EXPECT_EQ(try_spec_from_string(",5"), std::nullopt);
  EXPECT_EQ(try_spec_from_string("5,,7"), std::nullopt);
  EXPECT_EQ(try_spec_from_string("5,0,7"), std::nullopt);  // zero level size
  EXPECT_EQ(try_spec_from_string("5,x"), std::nullopt);
  EXPECT_EQ(try_spec_from_string("5, 7"), std::nullopt);  // no spaces accepted
  EXPECT_EQ(try_spec_from_string("99999999999999999999999"), std::nullopt);  // overflow
}

TEST(PrioritySpec, ThrowingParserWrapsTryParse) {
  EXPECT_EQ(spec_from_string("2,3,4"), PrioritySpec({2, 3, 4}));
  EXPECT_THROW(spec_from_string("nope"), PreconditionError);
}

TEST(PrioritySpec, LevelSizesAccessor) {
  const PrioritySpec spec({2, 3, 4});
  const auto sizes = spec.level_sizes();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[2], 4u);
}

TEST(PriorityDistribution, ValidatesAndNormalizes) {
  const PriorityDistribution d({0.25, 0.25, 0.5});
  EXPECT_EQ(d.levels(), 3u);
  EXPECT_DOUBLE_EQ(d.at(2), 0.5);
  EXPECT_NEAR(d.range_sum(0, 2), 1.0, 1e-12);
  EXPECT_NEAR(d.range_sum(1, 2), 0.75, 1e-12);
}

TEST(PriorityDistribution, AllowsZeroEntries) {
  // Table 1, Case 2 of the paper has p1 = 0.
  const PriorityDistribution d({0.0, 0.6149, 0.3851});
  EXPECT_DOUBLE_EQ(d.at(0), 0.0);
  Rng rng(81);
  for (int i = 0; i < 1000; ++i) EXPECT_NE(d.sample_level(rng), 0u);
}

TEST(PriorityDistribution, RejectsBadDistributions) {
  EXPECT_THROW(PriorityDistribution({0.5, 0.4}), PreconditionError);       // sums to 0.9
  EXPECT_THROW(PriorityDistribution({0.7, -0.3, 0.6}), PreconditionError); // negative
  EXPECT_THROW(PriorityDistribution(std::vector<double>{}), PreconditionError);
}

TEST(PriorityDistribution, UniformFactory) {
  const auto d = PriorityDistribution::uniform(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(d.at(i), 0.25);
}

TEST(PriorityDistribution, SamplingMatchesWeights) {
  const PriorityDistribution d({0.1, 0.2, 0.7});
  Rng rng(82);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 30000; ++i) ++counts[d.sample_level(rng)];
  EXPECT_NEAR(counts[0] / 30000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 30000.0, 0.2, 0.02);
  EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.02);
}

TEST(PriorityDistribution, RangeSumBoundsChecked) {
  const auto d = PriorityDistribution::uniform(3);
  EXPECT_THROW(d.range_sum(2, 1), PreconditionError);
  EXPECT_THROW(d.range_sum(0, 3), PreconditionError);
}

}  // namespace
}  // namespace prlc::codes
