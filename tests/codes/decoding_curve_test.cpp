#include "codes/decoding_curve.h"

#include <gtest/gtest.h>

#include "gf/gf256.h"
#include "util/check.h"

namespace prlc::codes {
namespace {

using F = gf::Gf256;

TEST(MakeBlockCounts, EvenSpacingAndDedup) {
  const auto counts = make_block_counts(10, 100, 10);
  EXPECT_EQ(counts.front(), 10u);
  EXPECT_EQ(counts.back(), 100u);
  for (std::size_t i = 1; i < counts.size(); ++i) EXPECT_LT(counts[i - 1], counts[i]);
  const auto tight = make_block_counts(5, 7, 10);  // more points than range
  EXPECT_EQ(tight, (std::vector<std::size_t>{5, 6, 7}));
}

TEST(MakeBlockCounts, SinglePoint) {
  EXPECT_EQ(make_block_counts(42, 42, 1), (std::vector<std::size_t>{42}));
  EXPECT_EQ(make_block_counts(10, 50, 1), (std::vector<std::size_t>{50}));
}

TEST(MakeBlockCounts, RejectsBadRanges) {
  EXPECT_THROW(make_block_counts(0, 10, 3), PreconditionError);
  EXPECT_THROW(make_block_counts(10, 9, 3), PreconditionError);
  EXPECT_THROW(make_block_counts(1, 10, 0), PreconditionError);
}

TEST(DecodingCurve, MonotoneAndBounded) {
  const auto spec = PrioritySpec::uniform(4, 10);  // N = 40
  const auto dist = PriorityDistribution::uniform(4);
  CurveOptions opt;
  opt.block_counts = make_block_counts(5, 100, 8);
  opt.trials = 20;
  opt.seed = 3;
  const auto curve = simulate_decoding_curve<F>(Scheme::kPlc, spec, dist, opt);
  ASSERT_EQ(curve.size(), 8u);
  for (std::size_t i = 0; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].mean_levels, 0.0);
    EXPECT_LE(curve[i].mean_levels, 4.0);
    EXPECT_LE(curve[i].mean_blocks, 40.0);
    if (i > 0) {
      // Decoded prefix is monotone within each trial, hence in the mean.
      EXPECT_GE(curve[i].mean_levels, curve[i - 1].mean_levels - 1e-12);
      EXPECT_GE(curve[i].mean_blocks, curve[i - 1].mean_blocks - 1e-12);
    }
  }
  // With 100 blocks for 40 unknowns everything decodes.
  EXPECT_NEAR(curve.back().mean_levels, 4.0, 1e-9);
  EXPECT_NEAR(curve.back().mean_blocks, 40.0, 1e-9);
}

TEST(DecodingCurve, RlcIsAllOrNothingAroundN) {
  const auto spec = PrioritySpec::uniform(2, 15);  // N = 30
  const auto dist = PriorityDistribution::uniform(2);
  CurveOptions opt;
  opt.block_counts = {15, 29, 31, 60};
  opt.trials = 15;
  opt.seed = 4;
  const auto curve = simulate_decoding_curve<F>(Scheme::kRlc, spec, dist, opt);
  EXPECT_DOUBLE_EQ(curve[0].mean_levels, 0.0);
  EXPECT_DOUBLE_EQ(curve[1].mean_levels, 0.0);
  EXPECT_GT(curve[2].mean_levels, 1.5);   // 31 blocks: usually both levels
  EXPECT_NEAR(curve[3].mean_levels, 2.0, 1e-9);
}

TEST(DecodingCurve, PlcBeatsRlcOnFirstLevel) {
  const auto spec = PrioritySpec({5, 35});
  const auto dist = PriorityDistribution::uniform(2);
  CurveOptions opt;
  opt.block_counts = {12};
  opt.trials = 30;
  opt.seed = 5;
  const auto plc = simulate_decoding_curve<F>(Scheme::kPlc, spec, dist, opt);
  const auto rlc = simulate_decoding_curve<F>(Scheme::kRlc, spec, dist, opt);
  EXPECT_GT(plc[0].mean_levels, 0.3);
  EXPECT_DOUBLE_EQ(rlc[0].mean_levels, 0.0);
}

TEST(DecodingCurve, DeterministicPerSeed) {
  const auto spec = PrioritySpec::uniform(3, 5);
  const auto dist = PriorityDistribution::uniform(3);
  CurveOptions opt;
  opt.block_counts = {5, 15, 25};
  opt.trials = 10;
  opt.seed = 77;
  const auto a = simulate_decoding_curve<F>(Scheme::kSlc, spec, dist, opt);
  const auto b = simulate_decoding_curve<F>(Scheme::kSlc, spec, dist, opt);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].mean_levels, b[i].mean_levels);
    EXPECT_DOUBLE_EQ(a[i].ci95_levels, b[i].ci95_levels);
  }
}

TEST(DecodingCurve, ThreadCountDoesNotChangeResults) {
  const auto spec = PrioritySpec({5, 10, 25});
  const auto dist = PriorityDistribution::uniform(3);
  CurveOptions opt;
  opt.block_counts = {10, 25, 45, 80};
  opt.trials = 16;
  opt.seed = 91;
  opt.threads = 1;
  const auto serial = simulate_decoding_curve<F>(Scheme::kPlc, spec, dist, opt);
  opt.threads = 4;
  const auto wide = simulate_decoding_curve<F>(Scheme::kPlc, spec, dist, opt);
  ASSERT_EQ(serial.size(), wide.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].mean_levels, wide[i].mean_levels);
    EXPECT_EQ(serial[i].ci95_levels, wide[i].ci95_levels);
    EXPECT_EQ(serial[i].mean_blocks, wide[i].mean_blocks);
    EXPECT_EQ(serial[i].ci95_blocks, wide[i].ci95_blocks);
  }
}

TEST(DecodingCurve, SparseBlocksMatchDenseBlocksAcrossThreads) {
  // The sparse streaming path must reproduce the dense curve bit for bit
  // (same RNG consumption in the encoder, exactly equivalent decoder
  // arithmetic), at every thread count.
  const auto spec = PrioritySpec::uniform(4, 12);  // N = 48
  const auto dist = PriorityDistribution::uniform(4);
  for (const auto scheme : {Scheme::kRlc, Scheme::kSlc, Scheme::kPlc}) {
    CurveOptions opt;
    opt.block_counts = make_block_counts(10, 120, 6);
    opt.trials = 12;
    opt.seed = 77;
    opt.threads = 1;
    opt.encoder.model = CoefficientModel::kSparse;
    opt.encoder.sparsity_factor = 2.0;
    const auto dense = simulate_decoding_curve<F>(scheme, spec, dist, opt);
    opt.sparse_blocks = true;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      opt.threads = threads;
      const auto sparse = simulate_decoding_curve<F>(scheme, spec, dist, opt);
      ASSERT_EQ(dense.size(), sparse.size());
      for (std::size_t i = 0; i < dense.size(); ++i) {
        EXPECT_EQ(dense[i].mean_levels, sparse[i].mean_levels)
            << "scheme " << static_cast<int>(scheme) << " threads " << threads;
        EXPECT_EQ(dense[i].ci95_levels, sparse[i].ci95_levels);
        EXPECT_EQ(dense[i].mean_blocks, sparse[i].mean_blocks);
        EXPECT_EQ(dense[i].ci95_blocks, sparse[i].ci95_blocks);
      }
    }
  }
}

TEST(DecodingCurve, ChunkedSparsityStillDecodesEverything) {
  // Chunked supports cover every chunk with enough blocks, so the curve
  // still saturates — with far less decoder fill-in (the N = 1e5 regime's
  // enabling structure, asserted here at test scale).
  const auto spec = PrioritySpec::uniform(2, 32);  // N = 64
  const auto dist = PriorityDistribution::uniform(2);
  CurveOptions opt;
  opt.block_counts = {400};
  opt.trials = 6;
  opt.seed = 11;
  opt.threads = 1;
  opt.encoder.model = CoefficientModel::kSparse;
  opt.encoder.sparsity_factor = 3.0;
  opt.encoder.chunk_size = 16;
  opt.sparse_blocks = true;
  const auto curve = simulate_decoding_curve<F>(Scheme::kPlc, spec, dist, opt);
  EXPECT_NEAR(curve.back().mean_levels, 2.0, 1e-9);
  EXPECT_NEAR(curve.back().mean_blocks, 64.0, 1e-9);
}

TEST(DecodingCurve, ValidatesOptions) {
  const auto spec = PrioritySpec::uniform(2, 5);
  const auto dist = PriorityDistribution::uniform(2);
  CurveOptions opt;
  opt.trials = 5;
  EXPECT_THROW(simulate_decoding_curve<F>(Scheme::kPlc, spec, dist, opt), PreconditionError);
  opt.block_counts = {10, 10};
  EXPECT_THROW(simulate_decoding_curve<F>(Scheme::kPlc, spec, dist, opt), PreconditionError);
  opt.block_counts = {10};
  opt.trials = 0;
  EXPECT_THROW(simulate_decoding_curve<F>(Scheme::kPlc, spec, dist, opt), PreconditionError);
  opt.trials = 1;
  const auto wrong_dist = PriorityDistribution::uniform(3);
  EXPECT_THROW(simulate_decoding_curve<F>(Scheme::kPlc, spec, wrong_dist, opt),
               PreconditionError);
}

}  // namespace
}  // namespace prlc::codes
