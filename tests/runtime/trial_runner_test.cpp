#include "runtime/trial_runner.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/random.h"

namespace prlc::runtime {
namespace {

TEST(TrialSeed, DeterministicAndCounterBased) {
  EXPECT_EQ(trial_seed(7, 0), trial_seed(7, 0));
  EXPECT_NE(trial_seed(7, 0), trial_seed(7, 1));
  EXPECT_NE(trial_seed(7, 0), trial_seed(8, 0));
}

TEST(TrialSeed, DistinctAcrossManyTrialsAndRoots) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t root : {0ULL, 1ULL, 7ULL, 0xDEADBEEFULL}) {
    for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(trial_seed(root, i));
  }
  EXPECT_EQ(seen.size(), 4u * 1000u);  // no collisions in this small set
}

TEST(TrialRunner, ResultsInTrialOrder) {
  TrialRunner runner(4);
  const auto out = runner.run(100, 5, [](std::size_t i, Rng&) { return i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i);
}

TEST(TrialRunner, BitIdenticalAcrossThreadCounts) {
  // The core contract: the per-trial random streams and the returned
  // vector do not depend on the thread count.
  auto run = [](std::size_t threads) {
    TrialRunner runner(threads);
    return runner.run(64, 0xABCDEF, [](std::size_t i, Rng& rng) {
      double acc = static_cast<double>(i);
      for (int k = 0; k < 50; ++k) acc += rng.uniform_double();
      return acc;
    });
  };
  const auto serial = run(1);
  const auto four = run(4);
  const auto eight = run(8);
  EXPECT_EQ(serial, four);
  EXPECT_EQ(serial, eight);
}

TEST(TrialRunner, SeedChangesResults) {
  TrialRunner runner(1);
  auto sample = [&](std::uint64_t seed) {
    return runner.run(8, seed, [](std::size_t, Rng& rng) { return rng.uniform_double(); });
  };
  EXPECT_NE(sample(1), sample(2));
}

TEST(TrialRunner, ExceptionPropagates) {
  TrialRunner runner(4);
  EXPECT_THROW(runner.run(32, 9,
                          [](std::size_t i, Rng&) -> int {
                            if (i == 13) throw std::runtime_error("bad trial");
                            return 0;
                          }),
               std::runtime_error);
}

TEST(TrialRunner, ZeroTrialsReturnsEmpty) {
  TrialRunner runner(2);
  const auto out = runner.run(0, 1, [](std::size_t, Rng&) { return 1; });
  EXPECT_TRUE(out.empty());
}

TEST(TrialRunner, ZeroThreadsMeansHardware) {
  TrialRunner runner(0);
  EXPECT_GE(runner.threads(), 1u);
}

}  // namespace
}  // namespace prlc::runtime
