#include "runtime/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace prlc::runtime {
namespace {

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SubmitVoidCompletes) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  auto f = pool.submit([&] { ran.fetch_add(1); });
  f.get();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ForEachIndexCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.for_each_index(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ForEachIndexResultIndependentOfThreadCount) {
  // Slot-indexed writes give the same result vector whatever the pool size
  // or execution order — the property TrialRunner builds on.
  constexpr std::size_t kN = 257;
  auto run = [&](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<std::size_t> out(kN);
    pool.for_each_index(kN, [&](std::size_t i) { out[i] = i * i + 3; });
    return out;
  };
  const auto serial = run(1);
  const auto wide = run(8);
  EXPECT_EQ(serial, wide);
}

TEST(ThreadPool, ForEachIndexRethrowsFirstErrorAfterAllComplete) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  std::atomic<std::size_t> completed{0};
  EXPECT_THROW(pool.for_each_index(kN,
                                   [&](std::size_t i) {
                                     completed.fetch_add(1);
                                     if (i == 7) throw std::runtime_error("trial 7 failed");
                                   }),
               std::runtime_error);
  // The remaining calls still ran: slots stay consistent under errors.
  EXPECT_EQ(completed.load(), kN);
}

TEST(ThreadPool, NestedSubmitDoesNotDeadlock) {
  // A task submits a subtask and get()s it. Helping futures must keep the
  // pool moving even when the pool has a single worker.
  ThreadPool pool(1);
  auto outer = pool.submit([&] {
    auto inner = pool.submit([] { return 7; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 8);
}

TEST(ThreadPool, NestedForEachDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<std::size_t> total{0};
  pool.for_each_index(4, [&](std::size_t) {
    pool.for_each_index(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32u);
}

TEST(ThreadPool, ZeroTasksIsNoop) {
  ThreadPool pool(2);
  pool.for_each_index(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, ManySmallTasksAllComplete) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 5000;
  std::atomic<long long> sum{0};
  pool.for_each_index(kN, [&](std::size_t i) { sum.fetch_add(static_cast<long long>(i)); });
  const long long expect = static_cast<long long>(kN) * (kN - 1) / 2;
  EXPECT_EQ(sum.load(), expect);
}

TEST(ThreadPool, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::default_thread_count(), 1u);
}

}  // namespace
}  // namespace prlc::runtime
