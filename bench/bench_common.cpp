#include "bench_common.h"

#include <cstdlib>
#include <iostream>

namespace prlc::bench {

bool fast_mode() {
  const char* v = std::getenv("PRLC_BENCH_FAST");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::size_t trials(std::size_t full, std::size_t fast) { return fast_mode() ? fast : full; }

void banner(const std::string& title, const std::string& description) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << description << "\n";
  if (fast_mode()) std::cout << "(PRLC_BENCH_FAST: reduced trial counts)\n";
  std::cout << "==============================================================\n";
}

}  // namespace prlc::bench
