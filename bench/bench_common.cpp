#include "bench_common.h"

#include <cstdlib>
#include <iostream>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace prlc::bench {

bool fast_mode() {
  const char* v = std::getenv("PRLC_BENCH_FAST");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::size_t trials(std::size_t full, std::size_t fast) { return fast_mode() ? fast : full; }

void banner(const std::string& title, const std::string& description) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << description << "\n";
  if (fast_mode()) std::cout << "(PRLC_BENCH_FAST: reduced trial counts)\n";
  std::cout << "==============================================================\n";
}

namespace {

Options g_options;

/// Match `--name value` / `--name=value`; on a hit, store the value and
/// report how many argv slots were consumed (1 or 2).
std::size_t match_flag(std::string_view name, int argc, char** argv, int i,
                       std::string& out) {
  const std::string_view arg = argv[i];
  if (arg == name) {
    PRLC_REQUIRE(i + 1 < argc, "bench flag missing its value");
    out = argv[i + 1];
    return 2;
  }
  if (arg.size() > name.size() + 1 && arg.substr(0, name.size()) == name &&
      arg[name.size()] == '=') {
    out = std::string(arg.substr(name.size() + 1));
    return 1;
  }
  return 0;
}

}  // namespace

const Options& options() { return g_options; }

void parse_args(int& argc, char** argv) {
  g_options = Options{};
  int out = 1;
  for (int i = 1; i < argc;) {
    std::size_t used = match_flag("--json", argc, argv, i, g_options.json_path);
    if (used == 0) used = match_flag("--metrics-json", argc, argv, i, g_options.metrics_json_path);
    if (used == 0) used = match_flag("--trace-json", argc, argv, i, g_options.trace_json_path);
    if (used == 0) {
      argv[out++] = argv[i++];
    } else {
      i += static_cast<int>(used);
    }
  }
  argc = out;
  argv[argc] = nullptr;

  if (!g_options.metrics_json_path.empty() || !g_options.trace_json_path.empty()) {
    obs::set_enabled(true);
  }
  if (!g_options.trace_json_path.empty()) {
    obs::TraceRecorder::global().start();
  }
}

void BenchReport::set_config(const std::string& key, json::Value value) {
  config_.set(key, std::move(value));
}

void BenchReport::add_point(const std::string& series,
                            std::vector<std::pair<std::string, json::Value>> fields) {
  std::size_t idx = 0;
  while (idx < series_order_.size() && series_order_[idx] != series) ++idx;
  if (idx == series_order_.size()) {
    series_order_.push_back(series);
    series_points_.emplace_back();
  }
  json::Value point = json::Value::object();
  for (auto& [key, value] : fields) point.set(key, std::move(value));
  series_points_[idx].push_back(std::move(point));
}

json::Value BenchReport::to_value() const {
  json::Value root = json::Value::object();
  root.set("bench", json::Value(name_));
  root.set("fast_mode", json::Value(fast_mode()));
  root.set("config", config_);
  json::Value series = json::Value::array();
  for (std::size_t i = 0; i < series_order_.size(); ++i) {
    json::Value entry = json::Value::object();
    entry.set("name", json::Value(series_order_[i]));
    json::Value points = json::Value::array();
    for (const auto& p : series_points_[i]) points.push_back(p);
    entry.set("points", std::move(points));
    series.push_back(std::move(entry));
  }
  root.set("series", std::move(series));
  return root;
}

void BenchReport::write(const std::string& path) const {
  json::write_file(path, to_value().dump(2));
}

void finalize(const BenchReport* report) {
  if (report != nullptr && !g_options.json_path.empty()) {
    report->write(g_options.json_path);
    std::cout << "bench json: " << g_options.json_path << "\n";
  }
  if (!g_options.metrics_json_path.empty()) {
    obs::Registry::global().write_json(g_options.metrics_json_path);
    std::cout << "metrics json: " << g_options.metrics_json_path << "\n";
  }
  if (!g_options.trace_json_path.empty()) {
    obs::TraceRecorder::global().stop();
    obs::TraceRecorder::global().write(g_options.trace_json_path);
    std::cout << "trace json: " << g_options.trace_json_path << "\n";
  }
}

}  // namespace prlc::bench
