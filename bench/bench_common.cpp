#include "bench_common.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string_view>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace prlc::bench {

bool fast_mode() {
  const char* v = std::getenv("PRLC_BENCH_FAST");
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

std::size_t trials(std::size_t full, std::size_t fast) { return fast_mode() ? fast : full; }

void banner(const std::string& title, const std::string& description) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << description << "\n";
  if (fast_mode()) std::cout << "(PRLC_BENCH_FAST: reduced trial counts)\n";
  std::cout << "==============================================================\n";
}

namespace {

Options g_options;

constexpr int kUsageExit = 64;  // EX_USAGE

[[noreturn]] void usage_error(const std::string& message) {
  std::cerr << "error: " << message << "\n"
            << "bench flags: --trials <n> --seed <u64> --threads <n> "
               "--scheme <rlc|slc|plc>\n"
            << "             --payload-bytes <n[kmg]> --chunk-bytes <n[kmg]>\n"
            << "             --nodes <n> --churn-rate <x> --repair-bw <x>\n"
            << "             --rot-rate <x> --byzantine-rate <x> "
               "--scrub-interval <x>\n"
            << "             --json <path> --metrics-json <path> "
               "--trace-json <path>\n"
            << "             --events-jsonl <path> --timeseries-jsonl <path>\n";
  std::exit(kUsageExit);
}

/// Match `--name value` / `--name=value`; on a hit, store the value and
/// report how many argv slots were consumed (1 or 2).
std::size_t match_flag(std::string_view name, int argc, char** argv, int i,
                       std::string& out) {
  const std::string_view arg = argv[i];
  if (arg == name) {
    if (i + 1 >= argc) usage_error(std::string(name) + " is missing its value");
    out = argv[i + 1];
    return 2;
  }
  if (arg.size() > name.size() + 1 && arg.substr(0, name.size()) == name &&
      arg[name.size()] == '=') {
    out = std::string(arg.substr(name.size() + 1));
    return 1;
  }
  return 0;
}

/// Non-throwing decimal u64 parse; nullopt on garbage or overflow.
std::optional<std::uint64_t> try_parse_u64(std::string_view text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  return value;
}

/// Byte-count parse: decimal digits with an optional single k/m/g suffix
/// (case-insensitive, binary units). nullopt on garbage, overflow, or
/// zero — every byte-count flag wants a positive value.
std::optional<std::size_t> try_parse_bytes(std::string_view text) {
  std::uint64_t mult = 1;
  if (!text.empty()) {
    switch (text.back()) {
      case 'k': case 'K': mult = std::uint64_t{1} << 10; break;
      case 'm': case 'M': mult = std::uint64_t{1} << 20; break;
      case 'g': case 'G': mult = std::uint64_t{1} << 30; break;
      default: break;
    }
    if (mult != 1) text.remove_suffix(1);
  }
  const auto value = try_parse_u64(text);
  if (!value || *value == 0) return std::nullopt;
  if (*value > std::numeric_limits<std::uint64_t>::max() / mult) return std::nullopt;
  return static_cast<std::size_t>(*value * mult);
}

/// Non-throwing finite-double parse; nullopt on garbage, trailing junk,
/// or non-finite results ("inf", "nan", overflowing exponents).
std::optional<double> try_parse_double(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  if (errno == ERANGE || !std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace

const Options& options() { return g_options; }

void parse_args(int& argc, char** argv, UnknownArgs unknown) {
  g_options = Options{};
  std::string trials_text, seed_text, threads_text, scheme_text;
  std::string payload_text, chunk_text;
  std::string nodes_text, churn_text, repair_text;
  std::string rot_text, byzantine_text, scrub_text;
  int out = 1;
  for (int i = 1; i < argc;) {
    std::size_t used = match_flag("--trials", argc, argv, i, trials_text);
    if (used == 0) used = match_flag("--seed", argc, argv, i, seed_text);
    if (used == 0) used = match_flag("--threads", argc, argv, i, threads_text);
    if (used == 0) used = match_flag("--scheme", argc, argv, i, scheme_text);
    if (used == 0) used = match_flag("--payload-bytes", argc, argv, i, payload_text);
    if (used == 0) used = match_flag("--chunk-bytes", argc, argv, i, chunk_text);
    if (used == 0) used = match_flag("--nodes", argc, argv, i, nodes_text);
    if (used == 0) used = match_flag("--churn-rate", argc, argv, i, churn_text);
    if (used == 0) used = match_flag("--repair-bw", argc, argv, i, repair_text);
    if (used == 0) used = match_flag("--rot-rate", argc, argv, i, rot_text);
    if (used == 0) used = match_flag("--byzantine-rate", argc, argv, i, byzantine_text);
    if (used == 0) used = match_flag("--scrub-interval", argc, argv, i, scrub_text);
    if (used == 0) used = match_flag("--json", argc, argv, i, g_options.json_path);
    if (used == 0) used = match_flag("--metrics-json", argc, argv, i, g_options.metrics_json_path);
    if (used == 0) used = match_flag("--trace-json", argc, argv, i, g_options.trace_json_path);
    if (used == 0) used = match_flag("--events-jsonl", argc, argv, i, g_options.events_jsonl_path);
    if (used == 0) {
      used = match_flag("--timeseries-jsonl", argc, argv, i, g_options.timeseries_jsonl_path);
    }
    if (used == 0) {
      argv[out++] = argv[i++];
    } else {
      i += static_cast<int>(used);
    }
  }
  argc = out;
  argv[argc] = nullptr;

  if (unknown == UnknownArgs::kReject && argc > 1) {
    usage_error(std::string("unknown argument '") + argv[1] + "'");
  }
  if (!trials_text.empty()) {
    const auto trials = try_parse_u64(trials_text);
    if (!trials || *trials == 0) {
      usage_error("--trials wants a positive integer, got '" + trials_text + "'");
    }
    g_options.trials = static_cast<std::size_t>(*trials);
  }
  if (!seed_text.empty()) {
    const auto seed = try_parse_u64(seed_text);
    if (!seed) usage_error("--seed wants an unsigned integer, got '" + seed_text + "'");
    g_options.seed = *seed;
  }
  if (!threads_text.empty()) {
    const auto threads = try_parse_u64(threads_text);
    if (!threads) {
      usage_error("--threads wants a nonnegative integer, got '" + threads_text + "'");
    }
    g_options.threads = static_cast<std::size_t>(*threads);
  }
  if (!scheme_text.empty()) {
    const auto scheme = codes::try_scheme_from_string(scheme_text);
    if (!scheme) usage_error("--scheme wants rlc, slc or plc, got '" + scheme_text + "'");
    g_options.scheme = *scheme;
  }
  if (!payload_text.empty()) {
    const auto bytes = try_parse_bytes(payload_text);
    if (!bytes) {
      usage_error("--payload-bytes wants a positive byte count (k/m/g suffixes ok), got '" +
                  payload_text + "'");
    }
    g_options.payload_bytes = *bytes;
  }
  if (!chunk_text.empty()) {
    const auto bytes = try_parse_bytes(chunk_text);
    if (!bytes) {
      usage_error("--chunk-bytes wants a positive byte count (k/m/g suffixes ok), got '" +
                  chunk_text + "'");
    }
    g_options.chunk_bytes = *bytes;
  }
  if (!nodes_text.empty()) {
    const auto nodes = try_parse_u64(nodes_text);
    if (!nodes || *nodes == 0) {
      usage_error("--nodes wants a positive integer, got '" + nodes_text + "'");
    }
    g_options.nodes = static_cast<std::size_t>(*nodes);
  }
  if (!churn_text.empty()) {
    const auto rate = try_parse_double(churn_text);
    if (!rate || *rate <= 0.0) {
      usage_error("--churn-rate wants a positive rate, got '" + churn_text + "'");
    }
    g_options.churn_rate = *rate;
  }
  if (!repair_text.empty()) {
    const auto bw = try_parse_double(repair_text);
    if (!bw || *bw <= 0.0) {
      usage_error("--repair-bw wants a positive bandwidth, got '" + repair_text + "'");
    }
    g_options.repair_bw = *bw;
  }
  if (!rot_text.empty()) {
    const auto rate = try_parse_double(rot_text);
    if (!rate || *rate < 0.0) {
      usage_error("--rot-rate wants a nonnegative rate, got '" + rot_text + "'");
    }
    g_options.rot_rate = *rate;
  }
  if (!byzantine_text.empty()) {
    const auto fraction = try_parse_double(byzantine_text);
    if (!fraction || *fraction < 0.0 || *fraction > 1.0) {
      usage_error("--byzantine-rate wants a fraction in [0,1], got '" +
                  byzantine_text + "'");
    }
    g_options.byzantine_rate = *fraction;
  }
  if (!scrub_text.empty()) {
    const auto interval = try_parse_double(scrub_text);
    if (!interval || *interval < 0.0) {
      usage_error("--scrub-interval wants a nonnegative period, got '" + scrub_text +
                  "'");
    }
    g_options.scrub_interval = *interval;
  }
  if (g_options.payload_bytes && g_options.chunk_bytes &&
      *g_options.chunk_bytes > *g_options.payload_bytes) {
    usage_error("--chunk-bytes must not exceed --payload-bytes");
  }

  if (!g_options.metrics_json_path.empty() || !g_options.trace_json_path.empty()) {
    obs::set_enabled(true);
  }
  if (!g_options.trace_json_path.empty()) {
    obs::TraceRecorder::global().start();
  }
  if (!g_options.events_jsonl_path.empty()) obs::set_events_enabled(true);
  if (!g_options.timeseries_jsonl_path.empty()) obs::set_timeseries_enabled(true);
}

void BenchReport::set_config(const std::string& key, json::Value value) {
  config_.set(key, std::move(value));
}

void BenchReport::add_point(const std::string& series,
                            std::vector<std::pair<std::string, json::Value>> fields) {
  std::size_t idx = 0;
  while (idx < series_order_.size() && series_order_[idx] != series) ++idx;
  if (idx == series_order_.size()) {
    series_order_.push_back(series);
    series_points_.emplace_back();
  }
  json::Value point = json::Value::object();
  for (auto& [key, value] : fields) point.set(key, std::move(value));
  series_points_[idx].push_back(std::move(point));
}

void BenchReport::set_profile(json::Value profile) { profile_ = std::move(profile); }

json::Value BenchReport::to_value() const {
  json::Value root = json::Value::object();
  root.set("bench", json::Value(name_));
  root.set("fast_mode", json::Value(fast_mode()));
  root.set("config", config_);
  if (profile_.has_value()) root.set("profile", *profile_);
  json::Value series = json::Value::array();
  for (std::size_t i = 0; i < series_order_.size(); ++i) {
    json::Value entry = json::Value::object();
    entry.set("name", json::Value(series_order_[i]));
    json::Value points = json::Value::array();
    for (const auto& p : series_points_[i]) points.push_back(p);
    entry.set("points", std::move(points));
    series.push_back(std::move(entry));
  }
  root.set("series", std::move(series));
  return root;
}

void BenchReport::write(const std::string& path) const {
  json::write_file(path, to_value().dump(2));
}

void finalize(BenchReport* report) {
  // Stop the trace before anything reads it so the span profile and the
  // written timeline agree.
  if (!g_options.trace_json_path.empty()) obs::TraceRecorder::global().stop();
  if (report != nullptr && !g_options.json_path.empty() &&
      !g_options.trace_json_path.empty()) {
    const obs::ProfileNode profile = obs::build_profile(obs::TraceRecorder::global());
    report->set_profile(json::Value::parse(obs::profile_to_json(profile)));
  }
  if (report != nullptr && !g_options.json_path.empty()) {
    report->write(g_options.json_path);
    std::cout << "bench json: " << g_options.json_path << "\n";
  }
  if (!g_options.metrics_json_path.empty()) {
    obs::Registry::global().write_json(g_options.metrics_json_path);
    std::cout << "metrics json: " << g_options.metrics_json_path << "\n";
  }
  if (!g_options.trace_json_path.empty()) {
    obs::TraceRecorder::global().write(g_options.trace_json_path);
    std::cout << "trace json: " << g_options.trace_json_path << "\n";
  }
  if (!g_options.events_jsonl_path.empty()) {
    obs::EventJournal::global().write(g_options.events_jsonl_path);
    std::cout << "events jsonl: " << g_options.events_jsonl_path << "\n";
  }
  if (!g_options.timeseries_jsonl_path.empty()) {
    obs::TimeSeriesRecorder::global().write_jsonl(g_options.timeseries_jsonl_path);
    std::cout << "timeseries jsonl: " << g_options.timeseries_jsonl_path << "\n";
  }
}

}  // namespace prlc::bench
