// Figure 4 — "Analysis vs simulations for PLC".
//
// Paper setting: 1000 source blocks, uniform priority distribution, two
// panels: (a) 5 levels of 200 blocks, (b) 50 levels of 20 blocks. Each
// curve plots the expected number of decoded priority levels against the
// number of randomly accumulated coded blocks; the analysis curve must
// overlay the GF(2^8) simulation. Panel (b) is where the paper's own
// approximation deviates slightly; our analysis backend for many levels
// is a count-model Monte Carlo (see DESIGN.md), which deviates only by
// the O(1/q) field effects.
#include <iostream>

#include "analysis/analysis_curve.h"
#include "analysis/plc_approx.h"
#include "bench_common.h"
#include "codes/decoding_curve.h"
#include "gf/gf256.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;
using F = gf::Gf256;

void run_panel(const char* panel, std::size_t levels, std::size_t per_level,
               std::size_t trials) {
  const auto spec = codes::PrioritySpec::uniform(levels, per_level);
  const auto dist = codes::PriorityDistribution::uniform(levels);
  const auto block_counts = codes::make_block_counts(100, 1400, 14);

  codes::CurveOptions sim_opt;
  sim_opt.block_counts = block_counts;
  sim_opt.trials = trials;
  sim_opt.seed = bench::options().seed_or(0xF160A) + levels;
  sim_opt.threads = bench::options().threads;
  const auto sim = codes::simulate_decoding_curve<F>(codes::Scheme::kPlc, spec, dist, sim_opt);

  analysis::AnalysisCurveOptions ana_opt;
  ana_opt.mc_trials = 20000;
  const auto ana =
      analysis::analysis_curve(codes::Scheme::kPlc, spec, dist, block_counts, ana_opt);
  // The paper-style approximate analysis (independent Theorem-1 events):
  // its error grows with the level count, like the paper's own Fig. 4(b).
  analysis::PlcApproxAnalysis approx(spec, dist);

  TablePrinter table({"coded blocks", "E[levels] analysis", "E[levels] approx",
                      "E[levels] simulated (95% CI)", "analysis backend"});
  for (std::size_t i = 0; i < block_counts.size(); ++i) {
    table.add_row({std::to_string(block_counts[i]), fmt_double(ana[i].expected_levels, 3),
                   fmt_double(approx.expected_levels(block_counts[i]), 3),
                   fmt_mean_ci(sim[i].mean_levels, sim[i].ci95_levels),
                   ana[i].exact ? "exact DP" : "count-model MC"});
  }
  std::cout << "\nFig 4(" << panel << "): PLC, " << levels << " levels x " << per_level
            << " blocks, uniform priority distribution, " << trials << " trials\n";
  table.emit(std::string("fig4") + panel + "_plc_validation");
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Figure 4 — analysis vs simulation, PLC",
                "N = 1000 source blocks, uniform priority distribution.");
  const std::size_t t = bench::options().trials_or(60, 6);
  run_panel("a", 5, 200, t);
  run_panel("b", 50, 20, t);
  std::cout << "\nExpected shape: the analysis column overlays simulation at both\n"
               "level counts; the product-form approximation (the paper-style\n"
               "backend) tracks closely at 5 levels and visibly deviates at 50 —\n"
               "the paper's own Fig. 4(b) behaviour. The curve rises steeply once\n"
               "blocks approach N regardless of the level count.\n";
  bench::finalize(nullptr);
  return 0;
}
