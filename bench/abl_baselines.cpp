// Ablation — PLC vs the related-work baselines of Sec. 6.
//
// Four ways to persist N = 500 tiered source blocks, measured as symbols
// accumulate at the collector:
//   * PLC            — the paper's contribution (priority prefix first);
//   * RLC            — classic all-or-nothing mixing;
//   * replication    — no coding (coupon collector);
//   * Growth Codes   — Kamra et al.: maximize *any* recovered blocks,
//                      priorities ignored (oracle-feedback variant).
// Reported per checkpoint: total source blocks recovered, and whether the
// critical level (level 1, the 50 most important blocks) is complete.
// Expected shape (the paper's Sec.-6 argument): Growth Codes win on total
// early recovery, but PLC completes the critical level far earlier —
// "unimportant data may be recovered at the expense of failing to recover
// important data".
#include <iostream>

#include "bench_common.h"
#include "codes/decoder.h"
#include "codes/decoding_curve.h"
#include "codes/encoder.h"
#include "codes/growth_codes.h"
#include "codes/peeling_decoder.h"
#include "codes/replication.h"
#include "gf/gf256.h"
#include "runtime/trial_runner.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;
using F = gf::Gf256;

struct Series {
  std::vector<RunningStats> total;      // recovered source blocks
  std::vector<RunningStats> level1_ok;  // critical level complete (0/1)
};

enum { kPlcIdx, kRlcIdx, kReplIdx, kGrowthIdx, kSchemes };

/// Per-trial checkpoint samples for all four codecs, slotted by
/// (codec, checkpoint) so trials merge in trial order.
struct TrialOutcome {
  std::vector<std::vector<double>> total;      // [codec][checkpoint]
  std::vector<std::vector<double>> level1_ok;  // [codec][checkpoint]
};

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — PLC vs RLC vs replication vs Growth Codes",
                "N = 500 blocks in levels {50, 150, 300}; level 1 is critical.");
  const std::size_t trials = bench::options().trials_or(20, 4);
  const std::uint64_t seed = bench::options().seed_or(0xBA5E11);
  const auto spec = codes::PrioritySpec({50, 150, 300});
  const auto dist = codes::PriorityDistribution({0.3, 0.3, 0.4});
  const auto checkpoints = codes::make_block_counts(50, 1000, 12);

  // Shared immutable encoders (stateless per call).
  const codes::PriorityEncoder<F> plc_enc(codes::Scheme::kPlc, spec);
  const codes::PriorityEncoder<F> rlc_enc(codes::Scheme::kRlc, spec);
  const codes::ReplicationEncoder<F> repl_enc(spec);
  const codes::GrowthEncoder growth_enc(spec.total());

  runtime::TrialRunner runner(bench::options().threads);
  const auto outcomes = runner.run(trials, seed, [&](std::size_t, Rng& rng) {
    codes::PriorityDecoder<F> plc_dec(codes::Scheme::kPlc, spec);
    codes::PriorityDecoder<F> rlc_dec(codes::Scheme::kRlc, spec);
    codes::ReplicationCollector<F> repl_col(spec);
    codes::PeelingDecoder growth_dec(spec.total());

    TrialOutcome outcome;
    outcome.total.assign(kSchemes, std::vector<double>(checkpoints.size(), 0.0));
    outcome.level1_ok.assign(kSchemes, std::vector<double>(checkpoints.size(), 0.0));
    std::size_t next = 0;
    for (std::size_t m = 1; m <= checkpoints.back(); ++m) {
      plc_dec.add(plc_enc.encode_random(dist, rng));
      rlc_dec.add(rlc_enc.encode_random(dist, rng));
      repl_col.add(repl_enc.replicate_random(dist, rng));
      growth_dec.add(growth_enc.encode(growth_dec.decoded_count(), rng).indices);
      if (m == checkpoints[next]) {
        auto level1_complete = [&](std::size_t first_level_size, auto&& is_decoded) {
          for (std::size_t j = 0; j < first_level_size; ++j) {
            if (!is_decoded(j)) return 0.0;
          }
          return 1.0;
        };
        outcome.total[kPlcIdx][next] = static_cast<double>(plc_dec.decoded_prefix_blocks());
        outcome.level1_ok[kPlcIdx][next] = plc_dec.is_level_decoded(0) ? 1.0 : 0.0;
        outcome.total[kRlcIdx][next] = static_cast<double>(rlc_dec.decoded_prefix_blocks());
        outcome.level1_ok[kRlcIdx][next] = rlc_dec.is_level_decoded(0) ? 1.0 : 0.0;
        outcome.total[kReplIdx][next] = static_cast<double>(repl_col.distinct_blocks());
        outcome.level1_ok[kReplIdx][next] =
            level1_complete(50, [&](std::size_t j) { return repl_col.is_block_decoded(j); });
        outcome.total[kGrowthIdx][next] = static_cast<double>(growth_dec.decoded_count());
        outcome.level1_ok[kGrowthIdx][next] =
            level1_complete(50, [&](std::size_t j) { return growth_dec.is_decoded(j); });
        ++next;
      }
    }
    return outcome;
  });

  std::vector<Series> series(kSchemes);
  for (auto& s : series) {
    s.total.resize(checkpoints.size());
    s.level1_ok.resize(checkpoints.size());
  }
  for (const TrialOutcome& outcome : outcomes) {
    for (std::size_t s = 0; s < kSchemes; ++s) {
      for (std::size_t i = 0; i < checkpoints.size(); ++i) {
        series[s].total[i].add(outcome.total[s][i]);
        series[s].level1_ok[i].add(outcome.level1_ok[s][i]);
      }
    }
  }

  bench::BenchReport report("abl_baselines");
  report.set_config("trials", trials);
  report.set_config("seed", static_cast<double>(seed));
  const char* codec_names[] = {"plc", "rlc", "replication", "growth"};
  for (std::size_t s = 0; s < kSchemes; ++s) {
    for (std::size_t i = 0; i < checkpoints.size(); ++i) {
      report.add_point(codec_names[s],
                       {{"symbols", static_cast<double>(checkpoints[i])},
                        {"recovered_blocks", series[s].total[i].mean()},
                        {"level1_complete", series[s].level1_ok[i].mean()}});
    }
  }

  TablePrinter table({"symbols", "PLC blocks", "PLC lvl1", "RLC blocks", "RLC lvl1",
                      "repl blocks", "repl lvl1", "growth blocks", "growth lvl1"});
  for (std::size_t i = 0; i < checkpoints.size(); ++i) {
    table.add_row({std::to_string(checkpoints[i]),
                   fmt_double(series[kPlcIdx].total[i].mean(), 0),
                   fmt_double(series[kPlcIdx].level1_ok[i].mean(), 2),
                   fmt_double(series[kRlcIdx].total[i].mean(), 0),
                   fmt_double(series[kRlcIdx].level1_ok[i].mean(), 2),
                   fmt_double(series[kReplIdx].total[i].mean(), 0),
                   fmt_double(series[kReplIdx].level1_ok[i].mean(), 2),
                   fmt_double(series[kGrowthIdx].total[i].mean(), 0),
                   fmt_double(series[kGrowthIdx].level1_ok[i].mean(), 2)});
  }
  table.emit("abl_baselines");
  std::cout << "\n'lvl1' columns are the fraction of trials with the critical level\n"
               "fully recovered. Expected shape: growth/replication lead on raw\n"
               "block counts early; PLC is first to secure the critical level; RLC\n"
               "recovers nothing before ~N symbols.\n";
  bench::finalize(&report);
  return 0;
}
