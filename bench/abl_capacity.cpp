// Ablation — per-node storage capacity (Sec. 2/4: "each node can store d
// coded blocks", M < W d).
//
// W = 200 nodes host M = 800 coded blocks under capacities d = 4..64 and
// unlimited. Expected shape: placement respects d exactly (max load = d
// whenever d < the unconstrained max); tighter capacity costs more
// spills (placement walks past full nodes, one extra hop each) but
// decodability is untouched as long as M <= W d; at d = 4 the system is
// exactly full (spills everywhere, still zero overflow).
#include <iostream>

#include "bench_common.h"
#include "codes/decoder.h"
#include "net/chord_network.h"
#include "proto/collector.h"
#include "proto/predistribution.h"
#include "runtime/trial_runner.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

struct TrialOutcome {
  double max_load = 0;
  double spills = 0;
  double overflows = 0;
  double levels = 0;
};

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — per-node storage capacity",
                "W = 200 nodes, M = 800 locations, N = 200 source blocks.");
  const std::size_t trials = bench::options().trials_or(10, 3);
  const std::uint64_t seed = bench::options().seed_or(0xCA9);
  const auto spec = codes::PrioritySpec({40, 60, 100});
  const auto dist = codes::PriorityDistribution::uniform(3);

  runtime::TrialRunner runner(bench::options().threads);
  bench::BenchReport report("abl_capacity");
  report.set_config("trials", trials);
  report.set_config("seed", static_cast<double>(seed));

  TablePrinter table({"capacity d", "max load (95% CI)", "spills", "overflows",
                      "decoded levels", "W*d / M"});
  for (std::size_t d : {4u, 6u, 8u, 16u, 64u, 0u}) {
    // Each capacity gets its own decorrelated stream (offset by d).
    const auto outcomes = runner.run(trials, seed + d, [&](std::size_t, Rng& rng) {
      net::ChordParams np;
      np.nodes = 200;
      np.locations = 800;
      np.seed = rng();
      net::ChordNetwork overlay(np);
      proto::ProtocolParams params;
      params.block_size = 8;
      params.node_capacity = d;
      params.sparse = true;  // keep dissemination cost sane
      proto::Predistribution pd(overlay, spec, dist, params);
      const auto source =
          codes::SourceData<proto::Field>::random(spec.total(), params.block_size, rng);
      const auto stats = pd.disseminate(source, rng);
      TrialOutcome outcome;
      outcome.max_load = static_cast<double>(stats.max_node_load);
      outcome.spills = static_cast<double>(stats.capacity_spills);
      outcome.overflows = static_cast<double>(stats.capacity_overflows);
      codes::PriorityDecoder<proto::Field> dec(params.scheme, spec, params.block_size);
      outcome.levels = static_cast<double>(collect(pd, dec, {}, rng).result.decoded_levels);
      return outcome;
    });

    RunningStats max_load;
    RunningStats spills;
    RunningStats overflows;
    RunningStats levels;
    for (const TrialOutcome& outcome : outcomes) {
      max_load.add(outcome.max_load);
      spills.add(outcome.spills);
      overflows.add(outcome.overflows);
      levels.add(outcome.levels);
    }
    report.add_point("capacity", {{"d", static_cast<double>(d)},
                                  {"max_load", max_load.mean()},
                                  {"spills", spills.mean()},
                                  {"overflows", overflows.mean()},
                                  {"decoded_levels", levels.mean()}});
    table.add_row({d == 0 ? "unlimited" : std::to_string(d),
                   fmt_mean_ci(max_load.mean(), max_load.ci95_halfwidth(), 1),
                   fmt_double(spills.mean(), 0), fmt_double(overflows.mean(), 0),
                   fmt_double(levels.mean(), 2),
                   d == 0 ? "-" : fmt_double(static_cast<double>(200 * d) / 800.0, 2)});
  }
  table.emit("abl_capacity");
  std::cout << "\nExpected shape: max load pinned at d; spills explode as W*d/M -> 1;\n"
               "decodability untouched because every block still lands somewhere.\n";
  bench::finalize(&report);
  return 0;
}
