// Ablation — per-node storage capacity (Sec. 2/4: "each node can store d
// coded blocks", M < W d).
//
// W = 200 nodes host M = 800 coded blocks under capacities d = 4..64 and
// unlimited. Expected shape: placement respects d exactly (max load = d
// whenever d < the unconstrained max); tighter capacity costs more
// spills (placement walks past full nodes, one extra hop each) but
// decodability is untouched as long as M <= W d; at d = 4 the system is
// exactly full (spills everywhere, still zero overflow).
#include <iostream>

#include "bench_common.h"
#include "codes/decoder.h"
#include "net/chord_network.h"
#include "proto/collector.h"
#include "proto/predistribution.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

}  // namespace

int main() {
  bench::banner("Ablation — per-node storage capacity",
                "W = 200 nodes, M = 800 locations, N = 200 source blocks.");
  const std::size_t trials = bench::trials(10, 3);
  const auto spec = codes::PrioritySpec({40, 60, 100});
  const auto dist = codes::PriorityDistribution::uniform(3);

  TablePrinter table({"capacity d", "max load (95% CI)", "spills", "overflows",
                      "decoded levels", "W*d / M"});
  for (std::size_t d : {4u, 6u, 8u, 16u, 64u, 0u}) {
    RunningStats max_load;
    RunningStats spills;
    RunningStats overflows;
    RunningStats levels;
    Rng master(0xCA9 + d);
    for (std::size_t t = 0; t < trials; ++t) {
      Rng rng = master.split();
      net::ChordParams np;
      np.nodes = 200;
      np.locations = 800;
      np.seed = rng();
      net::ChordNetwork overlay(np);
      proto::ProtocolParams params;
      params.block_size = 8;
      params.node_capacity = d;
      params.sparse = true;  // keep dissemination cost sane
      proto::Predistribution pd(overlay, spec, dist, params);
      const auto source =
          codes::SourceData<proto::Field>::random(spec.total(), params.block_size, rng);
      const auto stats = pd.disseminate(source, rng);
      max_load.add(static_cast<double>(stats.max_node_load));
      spills.add(static_cast<double>(stats.capacity_spills));
      overflows.add(static_cast<double>(stats.capacity_overflows));
      codes::PriorityDecoder<proto::Field> dec(params.scheme, spec, params.block_size);
      levels.add(static_cast<double>(collect(pd, dec, {}, rng).decoded_levels));
    }
    table.add_row({d == 0 ? "unlimited" : std::to_string(d),
                   fmt_mean_ci(max_load.mean(), max_load.ci95_halfwidth(), 1),
                   fmt_double(spills.mean(), 0), fmt_double(overflows.mean(), 0),
                   fmt_double(levels.mean(), 2),
                   d == 0 ? "-" : fmt_double(static_cast<double>(200 * d) / 800.0, 2)});
  }
  table.emit("abl_capacity");
  std::cout << "\nExpected shape: max load pinned at d; spills explode as W*d/M -> 1;\n"
               "decodability untouched because every block still lands somewhere.\n";
  return 0;
}
