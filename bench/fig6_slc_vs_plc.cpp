// Figure 6 — "SLC vs. PLC".
//
// Paper setting (Sec. 5.2): N = 1000 source blocks, uniform priority
// distribution; (a) 10 levels of 100 blocks, (b) 50 levels of 20 blocks.
// Expected shape: PLC >= SLC everywhere; the gap is modest at 10 levels
// and large at 50; the level count barely affects PLC but strongly hurts
// SLC (less mixing -> the coupon-collector regime). We also print the
// no-coding coupon-collector reference the paper invokes.
#include <cmath>
#include <iostream>

#include "analysis/coupon.h"
#include "bench_common.h"
#include "codes/decoding_curve.h"
#include "gf/gf256.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;
using F = gf::Gf256;

void run_panel(const char* panel, std::size_t levels, std::size_t per_level,
               std::size_t trials) {
  const auto spec = codes::PrioritySpec::uniform(levels, per_level);
  const auto dist = codes::PriorityDistribution::uniform(levels);
  const auto block_counts = codes::make_block_counts(100, 2000, 14);

  codes::CurveOptions opt;
  opt.block_counts = block_counts;
  opt.trials = trials;
  opt.seed = bench::options().seed_or(0xF166) + levels;
  opt.threads = bench::options().threads;
  const auto plc = codes::simulate_decoding_curve<F>(codes::Scheme::kPlc, spec, dist, opt);
  const auto slc = codes::simulate_decoding_curve<F>(codes::Scheme::kSlc, spec, dist, opt);

  TablePrinter table({"coded blocks", "PLC E[levels] (95% CI)", "SLC E[levels] (95% CI)",
                      "PLC-SLC gap"});
  for (std::size_t i = 0; i < block_counts.size(); ++i) {
    table.add_row({std::to_string(block_counts[i]),
                   fmt_mean_ci(plc[i].mean_levels, plc[i].ci95_levels),
                   fmt_mean_ci(slc[i].mean_levels, slc[i].ci95_levels),
                   fmt_double(plc[i].mean_levels - slc[i].mean_levels, 3)});
  }
  std::cout << "\nFig 6(" << panel << "): " << levels << " levels x " << per_level
            << " blocks, uniform priority distribution, " << trials << " trials\n";
  table.emit(std::string("fig6") + panel + "_slc_vs_plc");
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Figure 6 — SLC vs PLC decoding curves",
                "N = 1000 source blocks; panels with 10 and 50 levels.");
  const std::size_t t = bench::options().trials_or(60, 6);
  run_panel("a", 10, 100, t);
  run_panel("b", 50, 20, t);

  // The degenerate-SLC reference the paper cites: one block per level is
  // plain replication, where full recovery needs ~ N ln N blocks.
  std::cout << "\nCoupon-collector reference (SLC degenerated to 1 block/level,"
            << " N = 1000):\n"
            << "  expected blocks to recover everything: "
            << fmt_double(analysis::coupon_expected_draws(1000), 0) << " (~ N ln N = "
            << fmt_double(1000 * std::log(1000.0), 0) << ")\n"
            << "  vs PLC/RLC which need ~ N = 1000.\n"
            << "\nExpected shape: PLC dominates SLC at every point; the gap grows\n"
               "with the level count while PLC's own curve barely moves.\n";
  bench::finalize(nullptr);
  return 0;
}
