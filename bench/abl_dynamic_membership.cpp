// Ablation — long-run persistence under join/leave turnover.
//
// The paper's motivating P2P setting has peers continuously arriving and
// departing, not just a one-shot failure wave. This bench runs a Chord
// ring through many session-churn epochs (each epoch: 15% of peers leave,
// 30% of departed peers rejoin *empty*) and measures how long the
// priority-coded archive stays decodable — with and without the refresh
// maintenance round between epochs. Expected shape: without maintenance
// the archive dies within a handful of epochs even though the *population*
// stays large (rejoined peers hold nothing); with refresh it persists
// indefinitely, at a bounded repair cost per epoch.
#include <iostream>

#include "bench_common.h"
#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/collector.h"
#include "proto/refresh.h"
#include "runtime/trial_runner.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

constexpr std::size_t kNodes = 400;
constexpr std::size_t kEpochs = 20;

/// Fixed-size per-trial epoch series (zeros past network death) so trials
/// merge slot-by-slot in trial order.
struct TrialOutcome {
  std::vector<double> levels;
  std::vector<double> repair_msgs;
  std::vector<double> alive_frac;
};

TrialOutcome run_trial(bool use_refresh, const codes::PrioritySpec& spec,
                       const codes::PriorityDistribution& dist, Rng& rng) {
  net::ChordParams np;
  np.nodes = kNodes;
  np.locations = 240;
  np.seed = rng();
  net::ChordNetwork overlay(np);
  proto::ProtocolParams params;
  params.scheme = codes::Scheme::kPlc;
  params.block_size = 8;
  proto::Predistribution pd(overlay, spec, dist, params);
  const auto source =
      codes::SourceData<proto::Field>::random(spec.total(), params.block_size, rng);
  pd.disseminate(source, rng);

  TrialOutcome outcome;
  outcome.levels.assign(kEpochs, 0.0);
  outcome.repair_msgs.assign(kEpochs, 0.0);
  outcome.alive_frac.assign(kEpochs, 0.0);
  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    net::apply_session_churn(overlay, 0.15, 0.30, rng);
    if (overlay.alive_count() == 0) break;
    std::size_t messages = 0;
    if (use_refresh) {
      messages = refresh(pd, overlay.random_alive_node(rng), rng).messages;
    }
    codes::PriorityDecoder<proto::Field> dec(params.scheme, spec, params.block_size);
    const auto result = collect(pd, dec, {}, rng).result;
    outcome.levels[epoch] = static_cast<double>(result.decoded_levels);
    outcome.repair_msgs[epoch] = static_cast<double>(messages);
    outcome.alive_frac[epoch] =
        static_cast<double>(overlay.alive_count()) / static_cast<double>(kNodes);
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — session churn (join/leave) over many epochs",
                "15% leave / 30% rejoin per epoch; refresh on/off.");
  const std::size_t trials = bench::options().trials_or(12, 3);
  const std::uint64_t seed = bench::options().seed_or(0xD1A51C);
  const auto spec = codes::PrioritySpec({20, 40, 60});  // N = 120
  const auto dist = codes::PriorityDistribution::uniform(3);

  // Same root seed for both arms: trial i sees the identical ring and
  // churn schedule with and without maintenance.
  runtime::TrialRunner runner(bench::options().threads);
  const auto with = runner.run(trials, seed, [&](std::size_t, Rng& rng) {
    return run_trial(true, spec, dist, rng);
  });
  const auto without = runner.run(trials, seed, [&](std::size_t, Rng& rng) {
    return run_trial(false, spec, dist, rng);
  });

  std::vector<RunningStats> alive_frac(kEpochs);
  std::vector<RunningStats> levels_with(kEpochs);
  std::vector<RunningStats> levels_without(kEpochs);
  std::vector<RunningStats> repair_msgs(kEpochs);
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t e = 0; e < kEpochs; ++e) {
      alive_frac[e].add(with[t].alive_frac[e]);
      levels_with[e].add(with[t].levels[e]);
      repair_msgs[e].add(with[t].repair_msgs[e]);
      levels_without[e].add(without[t].levels[e]);
    }
  }

  bench::BenchReport report("abl_dynamic_membership");
  report.set_config("trials", trials);
  report.set_config("seed", static_cast<double>(seed));
  for (std::size_t e = 0; e < kEpochs; ++e) {
    report.add_point("with_refresh", {{"epoch", static_cast<double>(e + 1)},
                                      {"alive_frac", alive_frac[e].mean()},
                                      {"decoded_levels", levels_with[e].mean()},
                                      {"repair_messages", repair_msgs[e].mean()}});
    report.add_point("without_refresh", {{"epoch", static_cast<double>(e + 1)},
                                         {"decoded_levels", levels_without[e].mean()}});
  }

  TablePrinter table({"epoch", "alive frac", "levels w/ refresh", "repairs/epoch",
                      "levels w/o refresh"});
  for (std::size_t e = 0; e < kEpochs; e += 2) {
    table.add_row({std::to_string(e + 1), fmt_double(alive_frac[e].mean(), 2),
                   fmt_mean_ci(levels_with[e].mean(), levels_with[e].ci95_halfwidth(), 2),
                   fmt_double(repair_msgs[e].mean(), 0),
                   fmt_mean_ci(levels_without[e].mean(), levels_without[e].ci95_halfwidth(),
                               2)});
  }
  table.emit("abl_dynamic_membership");
  std::cout << "\nExpected shape: the population equilibrates at ~2/3 alive, yet the\n"
               "unmaintained archive decays to zero levels (rejoined peers are\n"
               "empty); with a refresh round per epoch all three levels persist\n"
               "for the whole run at a steady repair cost.\n";
  bench::finalize(&report);
  return 0;
}
