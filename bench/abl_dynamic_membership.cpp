// Ablation — long-run persistence under join/leave turnover.
//
// The paper's motivating P2P setting has peers continuously arriving and
// departing, not just a one-shot failure wave. This bench runs a Chord
// ring through many session-churn epochs (each epoch: 15% of peers leave,
// 30% of departed peers rejoin *empty*) and measures how long the
// priority-coded archive stays decodable — with and without the refresh
// maintenance round between epochs. Expected shape: without maintenance
// the archive dies within a handful of epochs even though the *population*
// stays large (rejoined peers hold nothing); with refresh it persists
// indefinitely, at a bounded repair cost per epoch.
#include <iostream>

#include "bench_common.h"
#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/collector.h"
#include "proto/refresh.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

}  // namespace

int main() {
  bench::banner("Ablation — session churn (join/leave) over many epochs",
                "15% leave / 30% rejoin per epoch; refresh on/off.");
  const std::size_t trials = bench::trials(12, 3);
  const std::size_t epochs = 20;
  const auto spec = codes::PrioritySpec({20, 40, 60});  // N = 120
  const auto dist = codes::PriorityDistribution::uniform(3);

  std::vector<RunningStats> alive_frac(epochs);
  std::vector<RunningStats> levels_with(epochs);
  std::vector<RunningStats> levels_without(epochs);
  std::vector<RunningStats> repair_msgs(epochs);

  Rng master(0xD1A51C);
  for (std::size_t t = 0; t < trials; ++t) {
    for (bool use_refresh : {true, false}) {
      Rng rng = master.split();
      net::ChordParams np;
      np.nodes = 400;
      np.locations = 240;
      np.seed = rng();
      net::ChordNetwork overlay(np);
      proto::ProtocolParams params;
      params.scheme = codes::Scheme::kPlc;
      params.block_size = 8;
      proto::Predistribution pd(overlay, spec, dist, params);
      const auto source =
          codes::SourceData<proto::Field>::random(spec.total(), params.block_size, rng);
      pd.disseminate(source, rng);

      for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        net::apply_session_churn(overlay, 0.15, 0.30, rng);
        if (overlay.alive_count() == 0) break;
        std::size_t messages = 0;
        if (use_refresh) {
          messages = refresh(pd, overlay.random_alive_node(rng), rng).messages;
        }
        codes::PriorityDecoder<proto::Field> dec(params.scheme, spec, params.block_size);
        const auto result = collect(pd, dec, {}, rng);
        if (use_refresh) {
          levels_with[epoch].add(static_cast<double>(result.decoded_levels));
          repair_msgs[epoch].add(static_cast<double>(messages));
          alive_frac[epoch].add(static_cast<double>(overlay.alive_count()) / 400.0);
        } else {
          levels_without[epoch].add(static_cast<double>(result.decoded_levels));
        }
      }
    }
  }

  TablePrinter table({"epoch", "alive frac", "levels w/ refresh", "repairs/epoch",
                      "levels w/o refresh"});
  for (std::size_t e = 0; e < epochs; e += 2) {
    table.add_row({std::to_string(e + 1), fmt_double(alive_frac[e].mean(), 2),
                   fmt_mean_ci(levels_with[e].mean(), levels_with[e].ci95_halfwidth(), 2),
                   fmt_double(repair_msgs[e].mean(), 0),
                   fmt_mean_ci(levels_without[e].mean(), levels_without[e].ci95_halfwidth(),
                               2)});
  }
  table.emit("abl_dynamic_membership");
  std::cout << "\nExpected shape: the population equilibrates at ~2/3 alive, yet the\n"
               "unmaintained archive decays to zero levels (rejoined peers are\n"
               "empty); with a refresh round per epoch all three levels persist\n"
               "for the whole run at a steady repair cost.\n";
  return 0;
}
