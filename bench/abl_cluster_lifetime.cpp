// Ablation — cluster lifetimes under continuous churn with repair.
//
// The discrete-event cluster simulator (sim/cluster_sim.h) runs whole
// cluster lifetimes: Poisson node deaths, delayed empty rejoins, and a
// bandwidth-limited repair scheduler re-encoding lost blocks. This bench
// sweeps churn rate x repair bandwidth x scheme and reports when each
// priority level is first lost — the time-to-first-priority-loss curves
// behind the paper's differentiated-persistence claim, now in the
// continuous-churn regime rather than one-shot failure waves.
//
// Three sweeps:
//   * ttfl/<scheme>  — TTFL per level vs churn rate at fixed repair
//     bandwidth, for PLC/SLC/RLC and the replication baseline;
//   * policy/<name>  — level-1 TTFL vs repair bandwidth for the
//     priority-aware vs priority-blind scheduler (plus the no-repair
//     floor), at equal total bandwidth: only the repair ORDER differs;
//   * scale/plc      — event counts and peak queue depth as the cluster
//     grows to 10^6 nodes (full mode), the capacity headline.
//
// Flags: --nodes (cluster size for the churn/policy sweeps),
// --churn-rate (restrict the churn grid to one rate), --repair-bw
// (bandwidth for the churn sweep / restrict the policy grid). All series
// are bit-identical at any --threads.
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "sim/cluster_sim.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

constexpr std::size_t kLevels = 3;

sim::ClusterParams base_params(std::size_t nodes, double churn_rate,
                               std::size_t trials, std::uint64_t seed) {
  sim::ClusterParams params;
  params.nodes = nodes;
  params.max_time = 40.0;
  params.replacement_delay = 0.5;
  params.experiment.trials = trials;
  params.experiment.root_seed = seed;
  params.experiment.threads = bench::options().threads;
  params.experiment.level_sizes = {8, 16, 24};  // M = 2x48 = 96 coded blocks
  params.experiment.failure.kind = sim::FailureModelConfig::Kind::kPoisson;
  params.experiment.failure.churn_rate = churn_rate;
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — cluster lifetime under continuous churn",
                "Poisson node deaths, bandwidth-limited repair; "
                "time-to-first-priority-loss per level.");
  const std::size_t trials = bench::options().trials_or(16, 4);
  const std::uint64_t seed = bench::options().seed_or(0xC1A57E);
  const std::size_t nodes = bench::options().nodes.value_or(2000);
  const double repair_bw = bench::options().repair_bw.value_or(8.0);

  std::vector<double> churn_rates = {0.05, 0.1, 0.2};
  if (bench::options().churn_rate) churn_rates = {*bench::options().churn_rate};
  std::vector<double> policy_bws = {5.0, 10.0, 20.0, 40.0};
  if (bench::options().repair_bw) policy_bws = {repair_bw};

  bench::BenchReport report("abl_cluster_lifetime");
  report.set_config("trials", trials);
  report.set_config("seed", static_cast<double>(seed));
  report.set_config("nodes", static_cast<double>(nodes));
  report.set_config("levels", "8/16/24");

  // --- Sweep 1: TTFL per level vs churn rate, per scheme. Same root seed
  // everywhere: scheme arms see identical placements and death schedules.
  struct SchemeArm {
    std::string name;
    std::optional<codes::Scheme> scheme;  // nullopt = replication baseline
  };
  const std::vector<SchemeArm> arms = {{"plc", codes::Scheme::kPlc},
                                       {"slc", codes::Scheme::kSlc},
                                       {"rlc", codes::Scheme::kRlc},
                                       {"replication", std::nullopt}};
  TablePrinter churn_table({"scheme", "churn rate", "ttfl L1", "ttfl L2", "ttfl L3",
                            "lost L1 frac", "repairs"});
  for (const auto& arm : arms) {
    if (arm.scheme && !bench::options().scheme_enabled(*arm.scheme)) continue;
    if (!arm.scheme && bench::options().scheme) continue;
    for (const double rate : churn_rates) {
      sim::ClusterParams params = base_params(nodes, rate, trials, seed);
      params.repair.policy = sim::RepairPolicy::kPriorityAware;
      params.repair.bandwidth = repair_bw;
      if (arm.scheme) {
        params.experiment.scheme = *arm.scheme;
      } else {
        params.replication = true;
      }
      const sim::ClusterPoint point = sim::run_cluster_lifetime(params);
      report.add_point("ttfl/" + arm.name,
                       {{"churn_rate", rate},
                        {"ttfl_l1", point.mean_first_loss[0]},
                        {"ttfl_l2", point.mean_first_loss[1]},
                        {"ttfl_l3", point.mean_first_loss[2]},
                        {"ci95_ttfl_l1", point.ci95_ttfl_l1},
                        {"loss_frac_l1", point.loss_fraction[0]},
                        {"loss_frac_l3", point.loss_fraction[kLevels - 1]},
                        {"repairs", point.mean_repairs},
                        {"repairs_dropped", point.mean_repairs_dropped},
                        {"repair_traffic", point.mean_repair_traffic}});
      churn_table.add_row(
          {arm.name, fmt_double(rate, 2),
           fmt_mean_ci(point.mean_first_loss[0], point.ci95_ttfl_l1, 1),
           fmt_double(point.mean_first_loss[1], 1), fmt_double(point.mean_first_loss[2], 1),
           fmt_double(point.loss_fraction[0], 2), fmt_double(point.mean_repairs, 0)});
    }
  }
  churn_table.emit("abl_cluster_lifetime/ttfl_vs_churn");

  // --- Sweep 2: scheduler ablation at equal bandwidth. Priority-aware
  // spends every free stream on the lowest lost level; blind repairs in
  // plain loss order. The no-repair arm is the decay floor. Storage is
  // apportioned proportional to the level sizes — EQUAL redundancy per
  // level, unlike the paper's storage skew above — so any differentiated
  // persistence here comes from the repair order alone: blind queues
  // level-1 losses behind the (3x more numerous) level-2/3 repairs and
  // lets the small level-1 margin erode, aware never does.
  const std::vector<double> equal_redundancy = {8.0 / 48, 16.0 / 48, 24.0 / 48};
  TablePrinter policy_table({"policy", "repair bw", "ttfl L1", "lost L1 frac",
                             "repairs", "dropped"});
  const double policy_rate = bench::options().churn_rate.value_or(0.1);
  for (const char* policy_name : {"priority_aware", "priority_blind"}) {
    const auto policy = *sim::try_repair_policy_from_string(policy_name);
    for (const double bw : policy_bws) {
      sim::ClusterParams params = base_params(nodes, policy_rate, trials, seed);
      params.experiment.priority_distribution = equal_redundancy;
      params.repair.policy = policy;
      params.repair.bandwidth = bw;
      const sim::ClusterPoint point = sim::run_cluster_lifetime(params);
      report.add_point(std::string("policy/") + policy_name,
                       {{"repair_bw", bw},
                        {"ttfl_l1", point.mean_ttfl_l1},
                        {"ci95_ttfl_l1", point.ci95_ttfl_l1},
                        {"loss_frac_l1", point.loss_fraction[0]},
                        {"repairs", point.mean_repairs},
                        {"repairs_dropped", point.mean_repairs_dropped}});
      policy_table.add_row({policy_name, fmt_double(bw, 0),
                            fmt_mean_ci(point.mean_ttfl_l1, point.ci95_ttfl_l1, 1),
                            fmt_double(point.loss_fraction[0], 2),
                            fmt_double(point.mean_repairs, 0),
                            fmt_double(point.mean_repairs_dropped, 0)});
    }
  }
  {
    sim::ClusterParams params = base_params(nodes, policy_rate, trials, seed);
    params.experiment.priority_distribution = equal_redundancy;
    params.repair.policy = sim::RepairPolicy::kNone;
    const sim::ClusterPoint point = sim::run_cluster_lifetime(params);
    report.add_point("policy/none", {{"repair_bw", 0.0},
                                     {"ttfl_l1", point.mean_ttfl_l1},
                                     {"ci95_ttfl_l1", point.ci95_ttfl_l1},
                                     {"loss_frac_l1", point.loss_fraction[0]}});
    policy_table.add_row({"none", "-",
                          fmt_mean_ci(point.mean_ttfl_l1, point.ci95_ttfl_l1, 1),
                          fmt_double(point.loss_fraction[0], 2), "0", "0"});
  }
  policy_table.emit("abl_cluster_lifetime/repair_policy");

  // --- Sweep 3: scale. Short horizon, mild churn — the point is event
  // volume and queue depth staying sane as W grows, not TTFL.
  TablePrinter scale_table({"nodes", "failures", "events", "peak queue"});
  std::vector<std::size_t> scale_nodes = {10000, 100000};
  if (!bench::fast_mode()) scale_nodes.push_back(1000000);
  for (const std::size_t w : scale_nodes) {
    sim::ClusterParams params = base_params(w, 0.02, 2, seed);
    params.max_time = 5.0;
    params.repair.policy = sim::RepairPolicy::kPriorityAware;
    params.repair.bandwidth = repair_bw;
    const sim::ClusterPoint point = sim::run_cluster_lifetime(params);
    report.add_point("scale/plc", {{"nodes", static_cast<double>(w)},
                                   {"failures", point.mean_failures},
                                   {"joins", point.mean_joins},
                                   {"events", point.mean_events},
                                   {"peak_queue", point.max_peak_queue}});
    scale_table.add_row({std::to_string(w), fmt_double(point.mean_failures, 0),
                         fmt_double(point.mean_events, 0),
                         fmt_double(point.max_peak_queue, 0)});
  }
  scale_table.emit("abl_cluster_lifetime/scale");

  std::cout << "\nExpected shape: TTFL falls with churn rate and rises with level\n"
               "priority (L1 outlives L2 outlives L3); at equal bandwidth the\n"
               "priority-aware scheduler holds level 1 longer than the blind one,\n"
               "and both beat the no-repair floor. Event volume scales linearly\n"
               "with cluster size at bounded queue depth.\n";
  bench::finalize(&report);
  return 0;
}
