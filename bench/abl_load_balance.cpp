// Ablation — power-of-two-choices location placement (Sec. 4).
//
// Each node can store few coded blocks, so the M seed-derived locations
// must spread evenly. The paper invokes Byers et al.'s geometric
// power-of-two-choices: the heaviest node carries Theta(ln ln M) blocks
// instead of the one-choice Theta(ln M / ln ln M). This bench measures
// the maximum per-node load on both overlay families with and without
// the rule.
#include <iostream>

#include "bench_common.h"
#include "net/chord_network.h"
#include "net/sensor_network.h"
#include "runtime/trial_runner.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

template <typename Net, typename Params>
RunningStats max_load(runtime::TrialRunner& runner, Params params, std::size_t trials,
                      std::uint64_t seed) {
  const auto loads = runner.run(trials, seed, [&](std::size_t, Rng& rng) {
    params.seed = rng();
    const Net net(params);
    std::vector<std::size_t> load(net.nodes(), 0);
    for (net::LocationId loc = 0; loc < net.locations(); ++loc) ++load[net.owner_of(loc)];
    std::size_t mx = 0;
    for (std::size_t l : load) mx = std::max(mx, l);
    return static_cast<double>(mx);
  });
  RunningStats stats;
  for (double mx : loads) stats.add(mx);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — power of two choices for location placement",
                "Max coded blocks on any node; M locations over W nodes.");
  const std::size_t trials = bench::options().trials_or(20, 5);
  const std::uint64_t seed = bench::options().seed_or(100);

  runtime::TrialRunner runner(bench::options().threads);
  TablePrinter table({"overlay", "nodes W", "locations M", "one choice max (95% CI)",
                      "two choices max (95% CI)", "ln M", "ln ln M / ln 2"});
  for (std::size_t m : {500u, 2000u, 8000u}) {
    const std::size_t w = 400;
    net::ChordParams cp;
    cp.nodes = w;
    cp.locations = m;
    net::ChordParams cp2 = cp;
    cp2.two_choices = true;
    const auto one = max_load<net::ChordNetwork>(runner, cp, trials, seed + m);
    const auto two = max_load<net::ChordNetwork>(runner, cp2, trials, seed + m);
    table.add_row({"chord", std::to_string(w), std::to_string(m),
                   fmt_mean_ci(one.mean(), one.ci95_halfwidth(), 2),
                   fmt_mean_ci(two.mean(), two.ci95_halfwidth(), 2),
                   fmt_double(std::log(static_cast<double>(m)), 2),
                   fmt_double(std::log(std::log(static_cast<double>(m))) / std::log(2.0), 2)});

    net::SensorParams sp;
    sp.nodes = w;
    sp.locations = m;
    net::SensorParams sp2 = sp;
    sp2.two_choices = true;
    const auto sone = max_load<net::SensorNetwork>(runner, sp, trials, seed + m + 1);
    const auto stwo = max_load<net::SensorNetwork>(runner, sp2, trials, seed + m + 1);
    table.add_row({"sensor", std::to_string(w), std::to_string(m),
                   fmt_mean_ci(sone.mean(), sone.ci95_halfwidth(), 2),
                   fmt_mean_ci(stwo.mean(), stwo.ci95_halfwidth(), 2),
                   fmt_double(std::log(static_cast<double>(m)), 2),
                   fmt_double(std::log(std::log(static_cast<double>(m))) / std::log(2.0), 2)});
  }
  table.emit("abl_load_balance");
  std::cout << "\nExpected shape: two-choices max load sits well below one-choice and\n"
               "grows ~ ln ln M (plus the M/W average term), while one-choice grows\n"
               "faster; geometric cell-size skew makes sensor fields lumpier than\n"
               "the DHT ring.\n";
  bench::finalize(nullptr);
  return 0;
}
