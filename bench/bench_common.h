// Shared conventions for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md's experiment index): it prints the series as an aligned text
// table and, when PRLC_BENCH_CSV_DIR is set, mirrors it to CSV.
// PRLC_BENCH_FAST=1 shrinks trial counts for smoke runs.
#pragma once

#include <cstddef>
#include <string>

namespace prlc::bench {

/// True when PRLC_BENCH_FAST is set to a nonempty, non-"0" value.
bool fast_mode();

/// `full` normally, `fast` under PRLC_BENCH_FAST.
std::size_t trials(std::size_t full, std::size_t fast);

/// Print the bench banner: which figure/table of the paper this is.
void banner(const std::string& title, const std::string& description);

}  // namespace prlc::bench
