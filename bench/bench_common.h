// Shared conventions for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md's experiment index): it prints the series as an aligned text
// table and, when PRLC_BENCH_CSV_DIR is set, mirrors it to CSV.
// PRLC_BENCH_FAST=1 shrinks trial counts for smoke runs.
//
// Machine-readable output. Benches that call parse_args() additionally
// understand three flags (both `--flag path` and `--flag=path` forms):
//   --json <path>          structured bench results (BenchReport)
//   --metrics-json <path>  dump of the obs::Registry after the run
//   --trace-json <path>    Chrome-tracing timeline (chrome://tracing,
//                          Perfetto) of the run
// The metrics/trace flags force-enable the observability subsystem for
// the process regardless of PRLC_METRICS, so a plain bench invocation
// stays on the zero-overhead disabled path. finalize() writes whichever
// outputs were requested.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/json.h"

namespace prlc::bench {

/// True when PRLC_BENCH_FAST is set to a nonempty, non-"0" value.
bool fast_mode();

/// `full` normally, `fast` under PRLC_BENCH_FAST.
std::size_t trials(std::size_t full, std::size_t fast);

/// Print the bench banner: which figure/table of the paper this is.
void banner(const std::string& title, const std::string& description);

/// Output destinations stripped from argv by parse_args(). Empty string
/// means "not requested".
struct Options {
  std::string json_path;
  std::string metrics_json_path;
  std::string trace_json_path;
};

/// The options parsed by the most recent parse_args() call.
const Options& options();

/// Strip the output flags above out of argc/argv (so downstream parsers —
/// e.g. google-benchmark's — never see them) and arm the requested sinks:
/// metrics/trace paths enable obs metrics, the trace path also starts the
/// global TraceRecorder. Throws PreconditionError on a flag missing its
/// value. Safe to call before benchmark::Initialize().
void parse_args(int& argc, char** argv);

/// Accumulates one bench's structured results for --json.
///
///   BenchReport report("fig6_slc_vs_plc");
///   report.set_config("trials", trials);
///   report.add_point("plc/sensor", {{"failure_fraction", f},
///                                   {"decoded_levels", levels}});
///   bench::finalize(&report);
///
/// Serialized shape:
///   {"bench": name, "config": {...},
///    "series": [{"name": s, "points": [{...}, ...]}, ...]}
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void set_config(const std::string& key, json::Value value);
  void add_point(const std::string& series,
                 std::vector<std::pair<std::string, json::Value>> fields);

  json::Value to_value() const;
  void write(const std::string& path) const;

 private:
  std::string name_;
  json::Value config_ = json::Value::object();
  std::vector<std::string> series_order_;
  std::vector<std::vector<json::Value>> series_points_;
};

/// Write every output requested via parse_args(): the report (when
/// non-null and --json was given), the metrics registry, and the trace.
/// Call once at the end of main.
void finalize(const BenchReport* report = nullptr);

}  // namespace prlc::bench
