// Shared conventions for the reproduction benches.
//
// Every bench binary regenerates one table or figure of the paper (see
// DESIGN.md's experiment index): it prints the series as an aligned text
// table and, when PRLC_BENCH_CSV_DIR is set, mirrors it to CSV.
// PRLC_BENCH_FAST=1 shrinks trial counts for smoke runs.
//
// Flags. Every bench main calls parse_args(), which strips these flags
// out of argv (both `--flag value` and `--flag=value` forms) so
// downstream parsers — e.g. google-benchmark's — never see them:
//   --trials <n>           override the bench's trial count
//   --seed <u64>           override the bench's root seed
//   --threads <n>          Monte-Carlo thread budget (0 = hardware, 1 = serial)
//   --scheme <rlc|slc|plc> restrict a multi-scheme bench to one scheme
//   --payload-bytes <n>    payload size for throughput benches (positive;
//                          suffixes k/m/g = KiB/MiB/GiB accepted)
//   --chunk-bytes <n>      codec tile size (positive, same suffixes; must
//                          not exceed --payload-bytes when both are given)
//   --nodes <n>            cluster size for simulator benches (positive)
//   --churn-rate <x>       failures per node per unit time (positive)
//   --repair-bw <x>        repair bandwidth in blocks per unit time
//                          (positive)
//   --rot-rate <x>         per-block silent bit-rot hazard (nonnegative)
//   --byzantine-rate <x>   fraction of Byzantine nodes (in [0,1])
//   --scrub-interval <x>   integrity scrub period; 0 disables scrubbing
//                          (nonnegative)
//   --json <path>          structured bench results (BenchReport)
//   --metrics-json <path>  dump of the obs::Registry after the run
//   --trace-json <path>    Chrome-tracing timeline (chrome://tracing,
//                          Perfetto) of the run
//   --events-jsonl <path>  deterministic structured event journal
//   --timeseries-jsonl <path>  deterministic logical-time series
// A malformed value ("--trials zero", "--scheme xyz") is a usage error:
// parse_args prints a message to stderr and exits with code 64, it never
// aborts through PRLC_REQUIRE.
//
// The metrics/trace flags force-enable the observability subsystem for
// the process regardless of PRLC_METRICS, so a plain bench invocation
// stays on the zero-overhead disabled path. finalize() writes whichever
// outputs were requested.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "codes/scheme.h"
#include "util/json.h"

namespace prlc::bench {

/// True when PRLC_BENCH_FAST is set to a nonempty, non-"0" value.
bool fast_mode();

/// `full` normally, `fast` under PRLC_BENCH_FAST.
std::size_t trials(std::size_t full, std::size_t fast);

/// Print the bench banner: which figure/table of the paper this is.
void banner(const std::string& title, const std::string& description);

/// Everything parse_args() stripped from argv. Empty string / nullopt
/// means "not requested on the command line".
struct Options {
  std::optional<std::size_t> trials;     ///< --trials
  std::optional<std::uint64_t> seed;     ///< --seed
  std::size_t threads = 0;               ///< --threads (TrialRunner convention)
  std::optional<codes::Scheme> scheme;   ///< --scheme
  std::optional<std::size_t> payload_bytes;  ///< --payload-bytes
  std::optional<std::size_t> chunk_bytes;    ///< --chunk-bytes
  std::optional<std::size_t> nodes;          ///< --nodes
  std::optional<double> churn_rate;          ///< --churn-rate
  std::optional<double> repair_bw;           ///< --repair-bw
  std::optional<double> rot_rate;            ///< --rot-rate
  std::optional<double> byzantine_rate;      ///< --byzantine-rate
  std::optional<double> scrub_interval;      ///< --scrub-interval
  std::string json_path;
  std::string metrics_json_path;
  std::string trace_json_path;
  std::string events_jsonl_path;      ///< --events-jsonl
  std::string timeseries_jsonl_path;  ///< --timeseries-jsonl

  /// Trial count: the --trials override if given, else the fast/full pair.
  std::size_t trials_or(std::size_t full, std::size_t fast) const {
    return trials ? *trials : (fast_mode() ? fast : full);
  }

  /// Root seed: the --seed override if given, else the bench's default.
  std::uint64_t seed_or(std::uint64_t fallback) const {
    return seed ? *seed : fallback;
  }

  /// Whether a multi-scheme bench should run scheme `s` (--scheme filters).
  bool scheme_enabled(codes::Scheme s) const {
    return !scheme.has_value() || *scheme == s;
  }
};

/// The options parsed by the most recent parse_args() call.
const Options& options();

/// What to do with argv entries parse_args() does not recognize.
/// kReject (the default) treats any leftover argument as a usage error;
/// kKeep leaves them in argv for a downstream parser (perf_codec hands
/// --benchmark_* flags to google-benchmark this way).
enum class UnknownArgs { kReject, kKeep };

/// Strip the flags above out of argc/argv and arm the requested sinks:
/// metrics/trace paths enable obs metrics, the trace path also starts the
/// global TraceRecorder. A missing or malformed flag value — or, under
/// UnknownArgs::kReject, any unrecognized argument — prints a usage error
/// and exits 64. Safe to call before benchmark::Initialize().
void parse_args(int& argc, char** argv, UnknownArgs unknown = UnknownArgs::kReject);

/// Accumulates one bench's structured results for --json.
///
///   BenchReport report("fig6_slc_vs_plc");
///   report.set_config("trials", trials);
///   report.add_point("plc/sensor", {{"failure_fraction", f},
///                                   {"decoded_levels", levels}});
///   bench::finalize(&report);
///
/// Serialized shape:
///   {"bench": name, "config": {...},
///    "series": [{"name": s, "points": [{...}, ...]}, ...]}
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void set_config(const std::string& key, json::Value value);
  void add_point(const std::string& series,
                 std::vector<std::pair<std::string, json::Value>> fields);

  /// Attach a span-aggregation profile tree (see obs/profile.h); emitted
  /// as a top-level "profile" key. finalize() fills this in when both
  /// --json and --trace-json were requested.
  void set_profile(json::Value profile);

  json::Value to_value() const;
  void write(const std::string& path) const;

 private:
  std::string name_;
  json::Value config_ = json::Value::object();
  std::optional<json::Value> profile_;
  std::vector<std::string> series_order_;
  std::vector<std::vector<json::Value>> series_points_;
};

/// Write every output requested via parse_args(): the report (when
/// non-null and --json was given, with the span profile embedded when a
/// trace was captured too), the metrics registry, the trace, and the
/// event-journal / time-series JSONL files. Call once at the end of main.
void finalize(BenchReport* report = nullptr);

}  // namespace prlc::bench
