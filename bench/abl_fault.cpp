// Ablation — retrieval under fault injection: graceful degradation vs
// the RLC cliff.
//
// The persistence bench kills nodes *before* collection; this one breaks
// the retrieval itself. One deployment per trial plus a fixed churn wave,
// then the collector pulls every block through a FaultyChannel whose
// fault rates (timeouts, transient errors, CRC-caught corruption and
// truncation, mid-collection crashes, stragglers) sweep upward. Expected
// shape: decoded levels degrade monotonically as the fault scale rises;
// PLC sheds trailing levels first and keeps the leading ones deep into
// the sweep, while RLC — needing every one of the N unknowns — falls off
// a cliff as soon as crashes, blacklisting and retry exhaustion push the
// delivered-block count below N.
//
// Trials run through runtime::TrialRunner: `--threads N` changes only
// wall-clock, never the numbers — `--json` output is byte-identical for
// the same `--seed` at any thread count, faults included.
#include <iostream>

#include "bench_common.h"
#include "proto/fault_experiment.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

struct Shape {
  std::size_t nodes;
  std::vector<std::size_t> level_sizes;
  std::size_t locations;
  double churn_fraction;
  std::vector<double> fault_scales;
};

Shape shape() {
  if (bench::fast_mode()) {
    return {100, {5, 10, 15}, 60, 0.3, {0.0, 1.0, 2.0, 4.0}};
  }
  return {300, {20, 40, 60, 80}, 400, 0.4, {0.0, 0.5, 1.0, 2.0, 4.0, 8.0}};
}

/// Base profile at scale 1.0 — mild adversity; the sweep multiplies it.
net::FaultSpec base_faults() {
  net::FaultSpec f;
  f.timeout_rate = 0.03;
  f.transient_rate = 0.04;
  f.corrupt_rate = 0.04;
  f.truncate_rate = 0.01;
  f.crash_rate = 0.015;
  f.slow_fraction = 0.15;
  f.slow_multiplier = 8.0;
  f.flaky_fraction = 0.1;
  f.flaky_multiplier = 3.0;
  f.mean_latency_us = 300;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — collection under fault injection",
                "Timeouts, corruption, stragglers and crashes during retrieval; "
                "self-healing collector with retries, budgets and hedging.");
  const Shape s = shape();
  const std::size_t trials = bench::options().trials_or(12, 3);
  const std::uint64_t seed = bench::options().seed_or(131);
  bench::BenchReport report("abl_fault");
  report.set_config("trials", trials);
  report.set_config("seed", static_cast<double>(seed));
  report.set_config("churn_fraction", s.churn_fraction);
  report.set_config("levels", [&] {
    json::Value v = json::Value::array();
    for (std::size_t n : s.level_sizes) v.push_back(n);
    return v;
  }());

  proto::FaultSweepParams base;
  base.overlay = proto::OverlayKind::kSensor;
  base.nodes = s.nodes;
  base.locations = s.locations;
  base.experiment.level_sizes = s.level_sizes;
  base.experiment.trials = trials;
  base.experiment.root_seed = seed;
  base.experiment.threads = bench::options().threads;
  base.churn_fraction = s.churn_fraction;
  base.faults = base_faults();
  base.fault_scales = s.fault_scales;

  std::vector<std::vector<proto::FaultPoint>> rows;
  std::vector<const char*> names;
  std::vector<std::string> headers = {"fault scale"};
  const std::pair<codes::Scheme, const char*> schemes[] = {
      {codes::Scheme::kPlc, "plc"},
      {codes::Scheme::kSlc, "slc"},
      {codes::Scheme::kRlc, "rlc"}};
  for (const auto& [scheme, name] : schemes) {
    if (!bench::options().scheme_enabled(scheme)) continue;
    auto params = base;
    params.experiment.scheme = scheme;
    rows.push_back(run_fault_experiment(params));
    names.push_back(name);
    headers.push_back(std::string(name) + " levels (95% CI)");
  }
  headers.insert(headers.end(), {"retries", "hedges", "wire errs", "lost"});

  for (std::size_t sidx = 0; sidx < rows.size(); ++sidx) {
    for (const auto& point : rows[sidx]) {
      report.add_point(names[sidx],
                       {{"fault_scale", point.fault_scale},
                        {"decoded_levels", point.mean_decoded_levels},
                        {"decoded_levels_ci95", point.ci95_decoded_levels},
                        {"decoded_blocks", point.mean_decoded_blocks},
                        {"blocks_retrieved", point.mean_blocks_retrieved},
                        {"blocks_lost", point.mean_blocks_lost},
                        {"retries", point.mean_retries},
                        {"hedges", point.mean_hedges},
                        {"wire_errors", point.mean_wire_errors},
                        {"timeouts", point.mean_timeouts},
                        {"transient_errors", point.mean_transient_errors},
                        {"crashes", point.mean_crashes},
                        {"blacklisted_nodes", point.mean_blacklisted},
                        {"degraded_fraction", point.degraded_fraction}});
    }
  }

  TablePrinter table(headers);
  for (std::size_t i = 0; i < s.fault_scales.size(); ++i) {
    std::vector<std::string> row = {fmt_double(s.fault_scales[i], 1)};
    for (const auto& scheme_row : rows) {
      row.push_back(fmt_mean_ci(scheme_row[i].mean_decoded_levels,
                                scheme_row[i].ci95_decoded_levels, 2));
    }
    // The ledger columns summarize the first scheme's run (they track the
    // channel, not the code, and are near-identical across schemes).
    row.push_back(fmt_double(rows[0][i].mean_retries, 1));
    row.push_back(fmt_double(rows[0][i].mean_hedges, 1));
    row.push_back(fmt_double(rows[0][i].mean_wire_errors, 1));
    row.push_back(fmt_double(rows[0][i].mean_blocks_lost, 1));
    table.add_row(row);
  }
  std::size_t total = 0;
  for (std::size_t n : s.level_sizes) total += n;
  std::cout << "\nSensor overlay: " << s.nodes << " nodes, " << s.locations
            << " locations, N = " << total << ", churn " << s.churn_fraction << "\n";
  table.emit("abl_fault");
  std::cout << "\nExpected shape: levels fall monotonically with the fault scale. PLC\n"
               "retains its leading levels while RLC cliffs once delivered blocks < N;\n"
               "the collector never throws — losses land in the ledger columns.\n";
  bench::finalize(&report);
  return 0;
}
