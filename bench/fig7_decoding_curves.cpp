// Figure 7 — decoding curves for the Table-1 priority distributions.
//
// Paper setting (Sec. 5.3): the three PLC priority distributions of
// Table 1 over 500 source blocks in levels {50, 100, 350}; each curve
// plots E[decoded levels] vs accumulated coded blocks. Expected
// observations (quoted from the paper): Case 1 decodes level 1 with only
// ~130 blocks and Case 2 decodes level 2 with ~287 — both far below the
// 500 blocks plain RLC would need to decode anything; every curve meets
// its constraints; higher priority levels always decode first.
#include <iostream>

#include "analysis/plc_analysis.h"
#include "bench_common.h"
#include "codes/decoding_curve.h"
#include "gf/gf256.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;
using F = gf::Gf256;

struct Case {
  const char* name;
  std::vector<double> distribution;  // Table 1 (paper's published rows)
};

const Case kCases[] = {
    {"Case 1", {0.5138, 0.0768, 0.4094}},
    {"Case 2", {0.0, 0.6149, 0.3851}},
    {"Case 3", {0.2894, 0.3246, 0.3860}},
};

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Figure 7 — decoding curves of the Table-1 distributions",
                "PLC over N = 500 blocks in levels {50, 100, 350}.");
  const auto spec = codes::PrioritySpec({50, 100, 350});
  const auto block_counts = codes::make_block_counts(50, 1000, 14);
  const std::size_t trials = bench::options().trials_or(100, 10);

  std::vector<std::vector<codes::CurvePoint>> sims;
  std::vector<std::vector<double>> anas;
  for (const auto& c : kCases) {
    const codes::PriorityDistribution dist{std::vector<double>(c.distribution)};
    codes::CurveOptions opt;
    opt.block_counts = block_counts;
    opt.trials = trials;
    opt.seed = bench::options().seed_or(0xF167);
    opt.threads = bench::options().threads;
    sims.push_back(codes::simulate_decoding_curve<F>(codes::Scheme::kPlc, spec, dist, opt));
    analysis::PlcAnalysis plc(spec, dist);
    std::vector<double> curve;
    for (std::size_t m : block_counts) curve.push_back(plc.expected_levels(m));
    anas.push_back(std::move(curve));
  }

  TablePrinter table({"coded blocks", "Case 1 sim (95% CI)", "Case 1 ana",
                      "Case 2 sim (95% CI)", "Case 2 ana", "Case 3 sim (95% CI)",
                      "Case 3 ana"});
  for (std::size_t i = 0; i < block_counts.size(); ++i) {
    table.add_row({std::to_string(block_counts[i]),
                   fmt_mean_ci(sims[0][i].mean_levels, sims[0][i].ci95_levels, 2),
                   fmt_double(anas[0][i], 2),
                   fmt_mean_ci(sims[1][i].mean_levels, sims[1][i].ci95_levels, 2),
                   fmt_double(anas[1][i], 2),
                   fmt_mean_ci(sims[2][i].mean_levels, sims[2][i].ci95_levels, 2),
                   fmt_double(anas[2][i], 2)});
  }
  table.emit("fig7_decoding_curves");

  // The paper's two headline checkpoints.
  analysis::PlcAnalysis case1(spec, codes::PriorityDistribution{
                                        std::vector<double>(kCases[0].distribution)});
  analysis::PlcAnalysis case2(spec, codes::PriorityDistribution{
                                        std::vector<double>(kCases[1].distribution)});
  std::cout << "\nHeadline checkpoints (exact analysis):\n"
            << "  Case 1: E[X_130] = " << fmt_double(case1.expected_levels(130), 3)
            << "  (paper: level 1 decodable with ~130 blocks; RLC needs 500)\n"
            << "  Case 2: E[X_287] = " << fmt_double(case2.expected_levels(287), 3)
            << "  (paper: level 2 decodable with ~287 blocks)\n"
            << "\nExpected shape: curves are staircases through their constraint\n"
               "points; high-priority levels always decode before low-priority\n"
               "ones; the three distributions give visibly different curves.\n";
  bench::finalize(nullptr);
  return 0;
}
