// Ablation — strict-priority feasibility design vs utility maximization
// (the paper's stated open problem, Sec. 2).
//
// Same data, two design philosophies:
//  * feasibility (Sec. 3.4): hard constraints "M_i blocks must decode k_i
//    levels in expectation";
//  * expected-utility: marginal utilities per level, a probability mix of
//    survival scenarios, maximize E[U].
// Expected shape: when the utility is steep (critical tier worth 10x),
// the utility optimum shifts storage toward level 1 relative to both the
// uniform and the feasibility solutions, and wins on E[U] by
// construction; with flat utilities the two designs roughly agree.
#include <iostream>

#include "bench_common.h"
#include "design/feasibility.h"
#include "design/utility_optimizer.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

std::string dist_string(const std::vector<double>& p) {
  std::string out = "(";
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (i) out += ", ";
    out += fmt_double(p[i], 3);
  }
  return out + ")";
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — feasibility vs utility-based design",
                "N = 200 in levels {20, 60, 120}; scenarios 60/150/400 survivors.");

  const codes::PrioritySpec spec({20, 60, 120});
  const std::vector<design::SurvivalScenario> scenarios = {
      {60, 0.2}, {150, 0.4}, {400, 0.4}};

  // Baseline 1: uniform distribution.
  const std::vector<double> uniform = {1.0 / 3, 1.0 / 3, 1.0 / 3};

  // Baseline 2: feasibility design with matching hard constraints.
  design::FeasibilityProblem fp;
  fp.scheme = codes::Scheme::kPlc;
  fp.spec = spec;
  fp.decoding = {{60, 0.7}, {150, 1.0}};
  fp.full_recovery = design::FullRecoveryConstraint{2.0, 0.1};
  design::FeasibilityOptions fopt;
  if (bench::fast_mode()) {
    fopt.max_evaluations_per_start = 120;
    fopt.restarts = 2;
  }
  const auto feas = design::solve_feasibility(fp, fopt);

  TablePrinter table({"utility profile", "design", "distribution", "E[U]"});
  for (const auto& [name, utilities] :
       std::vector<std::pair<std::string, std::vector<double>>>{
           {"steep (10/3/1)", {10.0, 3.0, 1.0}},
           {"flat (1/1/1)", {1.0, 1.0, 1.0}}}) {
    design::UtilityProblem up;
    up.scheme = codes::Scheme::kPlc;
    up.spec = spec;
    up.marginal_utility = utilities;
    up.scenarios = scenarios;
    design::UtilityOptions uopt;
    if (bench::fast_mode()) {
      uopt.max_evaluations_per_start = 120;
      uopt.restarts = 1;
    }
    const auto opt = design::maximize_utility(up, uopt);
    table.add_row({name, "uniform", dist_string(uniform),
                   fmt_double(design::expected_utility(up, uniform), 3)});
    table.add_row({name, "feasibility", dist_string(feas.distribution),
                   fmt_double(design::expected_utility(up, feas.distribution), 3)});
    table.add_row({name, "utility-optimal", dist_string(opt.distribution),
                   fmt_double(opt.expected_utility, 3)});
  }
  table.emit("abl_utility");
  std::cout << "\n(feasibility design solved " << (feas.feasible ? "feasibly" : "INFEASIBLY")
            << " in " << feas.evaluations << " evaluations)\n"
            << "\nExpected shape: the utility-optimal rows dominate their column by\n"
               "construction; steep utilities pull p1 up, flat utilities favour the\n"
               "deep levels that unlock everything under generous scenarios.\n";
  bench::finalize(nullptr);
  return 0;
}
