// Ablation — temporal retention policies for periodic measurements.
//
// Ten measurement rounds are ingested into a fixed storage budget while
// the network churns between rounds; afterwards every retained round is
// queried. Compared: sliding-window (equal shares, hard eviction) vs
// exponential-decay (newest-heavy shares, graceful aging). Expected
// shape: the window policy keeps a flat recovery profile across retained
// ages and forgets everything older; the decay policy keeps the newest
// rounds at full recovery and sheds *low-priority levels first* as
// snapshots age — partial recovery turning shrinking redundancy into
// graceful degradation instead of cliff-edge loss.
#include <iostream>

#include "bench_common.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/timeline.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

}  // namespace

int main() {
  bench::banner("Ablation — timeline retention policies",
                "10 rounds, churn 12%/round, budget 480 locations, window 5.");
  const std::size_t trials = bench::trials(12, 3);
  const std::size_t rounds = 10;
  const std::size_t window = 5;
  const auto spec = codes::PrioritySpec({10, 20, 30});  // N = 60 per round
  const auto dist = codes::PriorityDistribution({0.4, 0.3, 0.3});

  // age -> stats, per policy
  std::vector<std::vector<RunningStats>> levels(2, std::vector<RunningStats>(window));
  std::vector<std::vector<RunningStats>> blocks(2, std::vector<RunningStats>(window));
  std::vector<std::vector<RunningStats>> allotted(2, std::vector<RunningStats>(window));

  Rng master(0x71EE);
  for (std::size_t t = 0; t < trials; ++t) {
    for (int policy_idx = 0; policy_idx < 2; ++policy_idx) {
      Rng rng = master.split();
      net::ChordParams np;
      np.nodes = 300;
      np.locations = 480;
      np.seed = rng();
      net::ChordNetwork overlay(np);
      proto::TimelineParams params;
      params.block_size = 8;
      params.window = window;
      params.policy = policy_idx == 0 ? proto::RetentionPolicy::kSlidingWindow
                                      : proto::RetentionPolicy::kExponentialDecay;
      proto::TimelineStore store(overlay, spec, dist, params);
      for (std::size_t r = 0; r < rounds; ++r) {
        const auto snap = codes::SourceData<proto::Field>::random(spec.total(), 8, rng);
        store.ingest(snap, rng);
        net::kill_uniform_fraction(overlay, 0.12, rng);
      }
      const auto retained = store.retained_rounds();
      for (std::size_t age = 0; age < retained.size(); ++age) {
        const auto q = store.query(retained[age], rng);
        if (!q.has_value()) continue;
        levels[static_cast<std::size_t>(policy_idx)][age].add(
            static_cast<double>(q->decoded_levels));
        blocks[static_cast<std::size_t>(policy_idx)][age].add(
            static_cast<double>(q->blocks_retrievable));
        allotted[static_cast<std::size_t>(policy_idx)][age].add(
            static_cast<double>(q->locations_allotted));
      }
    }
  }

  TablePrinter table({"round age", "window: share", "window: survivors", "window: levels",
                      "decay: share", "decay: survivors", "decay: levels"});
  for (std::size_t age = 0; age < window; ++age) {
    table.add_row({std::to_string(age), fmt_double(allotted[0][age].mean(), 0),
                   fmt_double(blocks[0][age].mean(), 0),
                   fmt_mean_ci(levels[0][age].mean(), levels[0][age].ci95_halfwidth(), 2),
                   fmt_double(allotted[1][age].mean(), 0),
                   fmt_double(blocks[1][age].mean(), 0),
                   fmt_mean_ci(levels[1][age].mean(), levels[1][age].ci95_halfwidth(), 2)});
  }
  table.emit("abl_timeline");
  std::cout << "\nExpected shape: equal shares decay uniformly with age (churn eats\n"
               "survivors); exponential decay trades old rounds' depth for newer\n"
               "rounds' safety, losing raw samples before aggregates before alarms.\n";
  return 0;
}
