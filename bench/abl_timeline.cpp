// Ablation — temporal retention policies for periodic measurements.
//
// Ten measurement rounds are ingested into a fixed storage budget while
// the network churns between rounds; afterwards every retained round is
// queried. Compared: sliding-window (equal shares, hard eviction) vs
// exponential-decay (newest-heavy shares, graceful aging). Expected
// shape: the window policy keeps a flat recovery profile across retained
// ages and forgets everything older; the decay policy keeps the newest
// rounds at full recovery and sheds *low-priority levels first* as
// snapshots age — partial recovery turning shrinking redundancy into
// graceful degradation instead of cliff-edge loss.
#include <iostream>

#include "bench_common.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/timeline.h"
#include "runtime/trial_runner.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

constexpr std::size_t kRounds = 10;
constexpr std::size_t kWindow = 5;

/// Per-trial query results for one policy, slotted by round age. Ages the
/// query could not answer stay at -1 and are skipped during the merge.
struct TrialOutcome {
  std::vector<double> levels;
  std::vector<double> blocks;
  std::vector<double> allotted;
};

TrialOutcome run_trial(proto::RetentionPolicy policy, const codes::PrioritySpec& spec,
                       const codes::PriorityDistribution& dist, Rng& rng) {
  net::ChordParams np;
  np.nodes = 300;
  np.locations = 480;
  np.seed = rng();
  net::ChordNetwork overlay(np);
  proto::TimelineParams params;
  params.block_size = 8;
  params.window = kWindow;
  params.policy = policy;
  proto::TimelineStore store(overlay, spec, dist, params);
  for (std::size_t r = 0; r < kRounds; ++r) {
    const auto snap = codes::SourceData<proto::Field>::random(spec.total(), 8, rng);
    store.ingest(snap, rng);
    net::kill_uniform_fraction(overlay, 0.12, rng);
  }

  TrialOutcome outcome;
  outcome.levels.assign(kWindow, -1.0);
  outcome.blocks.assign(kWindow, -1.0);
  outcome.allotted.assign(kWindow, -1.0);
  const auto retained = store.retained_rounds();
  for (std::size_t age = 0; age < retained.size() && age < kWindow; ++age) {
    const auto q = store.query(retained[age], rng);
    if (!q.has_value()) continue;
    outcome.levels[age] = static_cast<double>(q->decoded_levels);
    outcome.blocks[age] = static_cast<double>(q->blocks_retrievable);
    outcome.allotted[age] = static_cast<double>(q->locations_allotted);
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — timeline retention policies",
                "10 rounds, churn 12%/round, budget 480 locations, window 5.");
  const std::size_t trials = bench::options().trials_or(12, 3);
  const std::uint64_t seed = bench::options().seed_or(0x71EE);
  const auto spec = codes::PrioritySpec({10, 20, 30});  // N = 60 per round
  const auto dist = codes::PriorityDistribution({0.4, 0.3, 0.3});

  const proto::RetentionPolicy policies[] = {proto::RetentionPolicy::kSlidingWindow,
                                             proto::RetentionPolicy::kExponentialDecay};

  // age -> stats, per policy
  std::vector<std::vector<RunningStats>> levels(2, std::vector<RunningStats>(kWindow));
  std::vector<std::vector<RunningStats>> blocks(2, std::vector<RunningStats>(kWindow));
  std::vector<std::vector<RunningStats>> allotted(2, std::vector<RunningStats>(kWindow));

  runtime::TrialRunner runner(bench::options().threads);
  for (std::size_t p = 0; p < 2; ++p) {
    const auto outcomes = runner.run(trials, seed, [&, p](std::size_t, Rng& rng) {
      return run_trial(policies[p], spec, dist, rng);
    });
    for (const TrialOutcome& outcome : outcomes) {
      for (std::size_t age = 0; age < kWindow; ++age) {
        if (outcome.levels[age] < 0) continue;
        levels[p][age].add(outcome.levels[age]);
        blocks[p][age].add(outcome.blocks[age]);
        allotted[p][age].add(outcome.allotted[age]);
      }
    }
  }

  bench::BenchReport report("abl_timeline");
  report.set_config("trials", trials);
  report.set_config("seed", static_cast<double>(seed));
  const char* policy_names[] = {"sliding_window", "exponential_decay"};
  for (std::size_t p = 0; p < 2; ++p) {
    for (std::size_t age = 0; age < kWindow; ++age) {
      report.add_point(policy_names[p],
                       {{"round_age", static_cast<double>(age)},
                        {"locations_allotted", allotted[p][age].mean()},
                        {"blocks_retrievable", blocks[p][age].mean()},
                        {"decoded_levels", levels[p][age].mean()}});
    }
  }

  TablePrinter table({"round age", "window: share", "window: survivors", "window: levels",
                      "decay: share", "decay: survivors", "decay: levels"});
  for (std::size_t age = 0; age < kWindow; ++age) {
    table.add_row({std::to_string(age), fmt_double(allotted[0][age].mean(), 0),
                   fmt_double(blocks[0][age].mean(), 0),
                   fmt_mean_ci(levels[0][age].mean(), levels[0][age].ci95_halfwidth(), 2),
                   fmt_double(allotted[1][age].mean(), 0),
                   fmt_double(blocks[1][age].mean(), 0),
                   fmt_mean_ci(levels[1][age].mean(), levels[1][age].ci95_halfwidth(), 2)});
  }
  table.emit("abl_timeline");
  std::cout << "\nExpected shape: equal shares decay uniformly with age (churn eats\n"
               "survivors); exponential decay trades old rounds' depth for newer\n"
               "rounds' safety, losing raw samples before aggregates before alarms.\n";
  bench::finalize(&report);
  return 0;
}
