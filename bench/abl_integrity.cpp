// Ablation — end-to-end integrity: silent corruption, scrubbing, and
// quarantine-driven repair.
//
// Two layers of the integrity story (DESIGN §13):
//
//   * scrub/<scheme>, byzantine/plc — the cluster simulator under silent
//     at-rest bit rot and Byzantine hosts. Rot degrades ground-truth
//     decodability immediately; the repair scheduler only learns at the
//     periodic fingerprint scrub. Sweeping rot rate x scrub interval x
//     scheme shows the headline: scrubbing turns silent decay back into
//     repairable loss and extends level-1 time-to-first-loss, while
//     scrub_interval = 0 (never scrub) is the silent-decay floor.
//   * detection/<scheme> — the collector-level sweep
//     (proto/integrity_experiment.h): GF(2^64) homomorphic fingerprints
//     verify every fetched block against the manifest. detection_ratio
//     must print 1 and wrong_decode_fraction must print 0 on every row —
//     the decoder never returns wrong bytes under any silent mix.
//
// Flags: --rot-rate / --byzantine-rate / --scrub-interval restrict the
// grids to one value; --nodes, --churn-rate, --repair-bw, --scheme as in
// abl_cluster_lifetime. All series are bit-identical at any --threads.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "proto/integrity_experiment.h"
#include "sim/cluster_sim.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

sim::ClusterParams cluster_params(std::size_t nodes, std::size_t trials,
                                  std::uint64_t seed) {
  sim::ClusterParams params;
  params.nodes = nodes;
  params.max_time = 40.0;
  params.replacement_delay = 0.5;
  params.experiment.trials = trials;
  params.experiment.root_seed = seed;
  params.experiment.threads = bench::options().threads;
  params.experiment.level_sizes = {8, 16, 24};  // M = 2x48 = 96 coded blocks
  params.repair.policy = sim::RepairPolicy::kPriorityAware;
  return params;
}

/// Silent-only hazard: an empty wave schedule produces zero loud
/// failures, so rot is the only way blocks die. Loud churn would mask
/// the scrub-vs-no-scrub contrast — every host death reveals its rotten
/// blocks for free and the repair path fixes them regardless of
/// scrubbing.
void silent_only(sim::ClusterParams* params) {
  params->experiment.failure.kind = sim::FailureModelConfig::Kind::kWave;
  params->experiment.failure.wave_fractions = {};
}

void loud_churn(sim::ClusterParams* params, double churn_rate) {
  params->experiment.failure.kind = sim::FailureModelConfig::Kind::kPoisson;
  params->experiment.failure.churn_rate = churn_rate;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — integrity: rot, Byzantine hosts, scrubbing",
                "Silent corruption vs periodic fingerprint scrubbing; "
                "collector-level detection must be exact.");
  const std::size_t trials = bench::options().trials_or(16, 4);
  const std::uint64_t seed = bench::options().seed_or(0x1D7E6517);
  const std::size_t nodes = bench::options().nodes.value_or(2000);
  const double churn = bench::options().churn_rate.value_or(0.05);
  const double repair_bw = bench::options().repair_bw.value_or(8.0);

  std::vector<double> rot_rates = bench::fast_mode()
                                      ? std::vector<double>{0.05}
                                      : std::vector<double>{0.02, 0.05};
  if (bench::options().rot_rate) rot_rates = {*bench::options().rot_rate};
  std::vector<double> scrub_intervals = bench::fast_mode()
                                            ? std::vector<double>{0.0, 2.0}
                                            : std::vector<double>{0.0, 1.0, 4.0};
  if (bench::options().scrub_interval) {
    scrub_intervals = {*bench::options().scrub_interval};
  }
  std::vector<double> byzantine_fractions =
      bench::fast_mode() ? std::vector<double>{0.1}
                         : std::vector<double>{0.05, 0.1, 0.2};
  if (bench::options().byzantine_rate) {
    byzantine_fractions = {*bench::options().byzantine_rate};
  }

  bench::BenchReport report("abl_integrity");
  report.set_config("trials", trials);
  report.set_config("seed", static_cast<double>(seed));
  report.set_config("nodes", static_cast<double>(nodes));
  report.set_config("churn_rate", churn);
  report.set_config("repair_bw", repair_bw);
  report.set_config("levels", "8/16/24");

  // --- Sweep 1: rot rate x scrub interval x scheme, silent-only. Same
  // root seed everywhere: arms see identical placements; only the rot
  // clocks and the scrub cadence differ.
  const std::vector<codes::Scheme> schemes = {codes::Scheme::kPlc, codes::Scheme::kSlc,
                                              codes::Scheme::kRlc};
  TablePrinter scrub_table({"scheme", "rot rate", "scrub dt", "ttfl L1", "rotted",
                            "detected", "repairs", "lost L1 frac"});
  for (const codes::Scheme scheme : schemes) {
    if (!bench::options().scheme_enabled(scheme)) continue;
    for (const double rot : rot_rates) {
      for (const double interval : scrub_intervals) {
        sim::ClusterParams params = cluster_params(nodes, trials, seed);
        silent_only(&params);
        params.experiment.scheme = scheme;
        params.repair.bandwidth = repair_bw;
        params.integrity.rot_rate = rot;
        params.integrity.scrub_interval = interval;
        const sim::ClusterPoint point = sim::run_cluster_lifetime(params);
        report.add_point(std::string("scrub/") + codes::to_string(scheme),
                         {{"rot_rate", rot},
                          {"scrub_interval", interval},
                          {"ttfl_l1", point.mean_ttfl_l1},
                          {"ci95_ttfl_l1", point.ci95_ttfl_l1},
                          {"loss_frac_l1", point.loss_fraction[0]},
                          {"rot_events", point.mean_rot_events},
                          {"rot_detected", point.mean_rot_detected},
                          {"scrub_scans", point.mean_scrub_scans},
                          {"repairs", point.mean_repairs},
                          {"repairs_dropped", point.mean_repairs_dropped}});
        scrub_table.add_row(
            {codes::to_string(scheme), fmt_double(rot, 2),
             interval == 0.0 ? std::string("never") : fmt_double(interval, 1),
             fmt_mean_ci(point.mean_ttfl_l1, point.ci95_ttfl_l1, 1),
             fmt_double(point.mean_rot_events, 0),
             fmt_double(point.mean_rot_detected, 0), fmt_double(point.mean_repairs, 0),
             fmt_double(point.loss_fraction[0], 2)});
      }
    }
  }
  scrub_table.emit("abl_integrity/scrub_sweep");

  // --- Sweep 2: Byzantine fraction at a fixed scrub cadence (PLC),
  // composed with the loud Poisson churn backdrop. Forged-at-birth
  // blocks are detected at the first scan, their hosts quarantined, and
  // repairs re-home the blocks onto honest nodes.
  if (bench::options().scheme_enabled(codes::Scheme::kPlc)) {
    const double byz_interval = bench::options().scrub_interval.value_or(1.0);
    TablePrinter byz_table({"byz frac", "scrub dt", "ttfl L1", "quarantined",
                            "rotted", "detected", "repairs"});
    for (const double fraction : byzantine_fractions) {
      sim::ClusterParams params = cluster_params(nodes, trials, seed);
      loud_churn(&params, churn);
      params.experiment.scheme = codes::Scheme::kPlc;
      params.repair.bandwidth = repair_bw;
      params.integrity.byzantine_fraction = fraction;
      params.integrity.scrub_interval = byz_interval;
      const sim::ClusterPoint point = sim::run_cluster_lifetime(params);
      report.add_point("byzantine/plc",
                       {{"byzantine_fraction", fraction},
                        {"scrub_interval", byz_interval},
                        {"ttfl_l1", point.mean_ttfl_l1},
                        {"ci95_ttfl_l1", point.ci95_ttfl_l1},
                        {"quarantined", point.mean_quarantined},
                        {"rot_events", point.mean_rot_events},
                        {"rot_detected", point.mean_rot_detected},
                        {"repairs", point.mean_repairs}});
      byz_table.add_row({fmt_double(fraction, 2), fmt_double(byz_interval, 1),
                         fmt_mean_ci(point.mean_ttfl_l1, point.ci95_ttfl_l1, 1),
                         fmt_double(point.mean_quarantined, 1),
                         fmt_double(point.mean_rot_events, 0),
                         fmt_double(point.mean_rot_detected, 0),
                         fmt_double(point.mean_repairs, 0)});
    }
    byz_table.emit("abl_integrity/byzantine");
  }

  // --- Sweep 3: collector-level detection. Every fetched block is
  // verified against the GF(2^64) fingerprint manifest; forged frames are
  // localized to their serving node and the node is quarantined.
  // detection = 1 and wrong = 0 are correctness bars, not trends.
  TablePrinter detect_table({"scheme", "rot", "byz", "levels", "violations",
                             "quarantined", "detection", "wrong"});
  for (const codes::Scheme scheme : schemes) {
    if (!bench::options().scheme_enabled(scheme)) continue;
    proto::IntegritySweepParams params;
    params.nodes = 200;
    params.locations = 96;
    params.experiment.level_sizes = {8, 16, 24};
    params.experiment.scheme = scheme;
    params.experiment.trials = trials;
    params.experiment.root_seed = seed;
    params.experiment.threads = bench::options().threads;
    const double rot = bench::options().rot_rate.value_or(0.1);
    const double byz = bench::options().byzantine_rate.value_or(0.1);
    params.mixes = {{0.0, 0.0}, {rot, 0.0}, {0.0, byz}, {rot, byz}};
    const auto points = proto::run_integrity_experiment(params);
    for (const proto::IntegrityPoint& pt : points) {
      report.add_point(std::string("detection/") + codes::to_string(scheme),
                       {{"rot_rate", pt.rot_rate},
                        {"byzantine_fraction", pt.byzantine_fraction},
                        {"decoded_levels", pt.mean_decoded_levels},
                        {"violations", pt.mean_integrity_violations},
                        {"quarantined", pt.mean_quarantined_nodes},
                        {"detection_ratio", pt.detection_ratio},
                        {"wrong_decode_fraction", pt.wrong_decode_fraction}});
      detect_table.add_row(
          {codes::to_string(scheme), fmt_double(pt.rot_rate, 2),
           fmt_double(pt.byzantine_fraction, 2), fmt_double(pt.mean_decoded_levels, 2),
           fmt_double(pt.mean_integrity_violations, 1),
           fmt_double(pt.mean_quarantined_nodes, 1), fmt_double(pt.detection_ratio, 3),
           fmt_double(pt.wrong_decode_fraction, 3)});
    }
  }
  detect_table.emit("abl_integrity/detection");

  std::cout << "\nExpected shape: without scrubbing (scrub dt = never) rot decays\n"
               "level 1 silently and repairs stay near zero; any finite scrub\n"
               "interval detects the rot, feeds the priority-aware scheduler, and\n"
               "extends level-1 TTFL — more for shorter intervals. Byzantine hosts\n"
               "are quarantined within one scan. The detection table must read\n"
               "detection = 1.000 and wrong = 0.000 on every row.\n";
  bench::finalize(&report);
  return 0;
}
