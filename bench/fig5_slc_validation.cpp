// Figure 5 — "Analysis vs simulations for SLC".
//
// Same setting as Fig. 4 (N = 1000, uniform priority distribution, 5 and
// 50 levels) but for Stacked Linear Codes, where our analysis is exact at
// any level count (the per-level events are independent, eq. (6) of the
// paper) and should agree with simulation "very well" per Sec. 5.1.
#include <iostream>

#include "analysis/slc_analysis.h"
#include "bench_common.h"
#include "codes/decoding_curve.h"
#include "gf/gf256.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;
using F = gf::Gf256;

void run_panel(const char* panel, std::size_t levels, std::size_t per_level,
               std::size_t trials) {
  const auto spec = codes::PrioritySpec::uniform(levels, per_level);
  const auto dist = codes::PriorityDistribution::uniform(levels);
  const auto block_counts = codes::make_block_counts(100, 2000, 14);

  codes::CurveOptions sim_opt;
  sim_opt.block_counts = block_counts;
  sim_opt.trials = trials;
  sim_opt.seed = bench::options().seed_or(0xF165) + levels;
  sim_opt.threads = bench::options().threads;
  const auto sim = codes::simulate_decoding_curve<F>(codes::Scheme::kSlc, spec, dist, sim_opt);

  analysis::SlcAnalysis slc(spec, dist);

  TablePrinter table(
      {"coded blocks", "E[levels] analysis", "E[levels] simulated (95% CI)"});
  for (std::size_t i = 0; i < block_counts.size(); ++i) {
    table.add_row({std::to_string(block_counts[i]),
                   fmt_double(slc.expected_levels(block_counts[i]), 3),
                   fmt_mean_ci(sim[i].mean_levels, sim[i].ci95_levels)});
  }
  std::cout << "\nFig 5(" << panel << "): SLC, " << levels << " levels x " << per_level
            << " blocks, uniform priority distribution, " << trials << " trials\n";
  table.emit(std::string("fig5") + panel + "_slc_validation");
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Figure 5 — analysis vs simulation, SLC",
                "N = 1000 source blocks, uniform priority distribution.");
  const std::size_t t = bench::options().trials_or(100, 10);
  run_panel("a", 5, 200, t);
  run_panel("b", 50, 20, t);
  std::cout << "\nExpected shape: exact agreement within CI at both level counts;\n"
               "the 50-level SLC curve needs far more blocks for the same\n"
               "recovery (less mixing per level).\n";
  bench::finalize(nullptr);
  return 0;
}
