// Table 1 — priority distributions solved from the feasibility problem.
//
// Paper setting (Sec. 5.3): 500 source blocks in three levels of 50, 100
// and 350; three sets of decoding constraints (M_i, k_i); plus the
// full-recovery constraint Pr(X_{2N} = 3) > 0.99; PLC coding. The paper
// feeds this to MATLAB and reports the first feasible point found. Any
// feasible point is a valid solution, so we (a) run our own solver and
// report its distributions with the achieved constraint values, and (b)
// verify the paper's published Table-1 distributions against our exact
// analysis.
#include <iostream>

#include "bench_common.h"
#include "design/feasibility.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

struct Case {
  const char* name;
  std::vector<design::DecodingConstraint> constraints;
  std::vector<double> paper_distribution;
};

const Case kCases[] = {
    {"Case 1", {{130, 1.0}, {950, 2.0}}, {0.5138, 0.0768, 0.4094}},
    {"Case 2", {{265, 1.0}, {287, 2.0}}, {0.0, 0.6149, 0.3851}},
    {"Case 3", {{240, 1.0}, {450, 2.0}}, {0.2894, 0.3246, 0.3860}},
};

std::string constraint_string(const std::vector<design::DecodingConstraint>& cs) {
  std::string out;
  for (const auto& c : cs) {
    out += "(" + std::to_string(c.coded_blocks) + ", " + fmt_double(c.min_levels, 0) + ") ";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Table 1 — feasible priority distributions (PLC)",
                "N = 500 blocks in levels {50, 100, 350}; alpha = 2, eps = 0.01.");

  design::FeasibilityProblem base;
  base.scheme = codes::Scheme::kPlc;
  base.spec = codes::PrioritySpec({50, 100, 350});
  base.full_recovery = design::FullRecoveryConstraint{2.0, 0.01};

  design::FeasibilityOptions opt;
  if (bench::fast_mode()) {
    opt.max_evaluations_per_start = 150;
    opt.restarts = 2;
  }

  TablePrinter solved({"case", "constraints", "feasible", "p1", "p2", "p3",
                       "E[X_M1]", "E[X_M2]", "Pr[X_2N=3]", "evals"});
  TablePrinter verify({"case", "paper p1", "paper p2", "paper p3", "E[X_M1]", "E[X_M2]",
                       "Pr[X_2N=3]", "satisfies (9)?", "satisfies (10)?"});

  for (const auto& c : kCases) {
    design::FeasibilityProblem problem = base;
    problem.decoding = c.constraints;

    const auto result = design::solve_feasibility(problem, opt);
    solved.add_row({c.name, constraint_string(c.constraints),
                    result.feasible ? "yes" : "NO", fmt_double(result.distribution[0], 4),
                    fmt_double(result.distribution[1], 4),
                    fmt_double(result.distribution[2], 4),
                    fmt_double(result.report.achieved_levels[0], 3),
                    fmt_double(result.report.achieved_levels[1], 3),
                    fmt_double(result.report.achieved_full_recovery.value_or(-1), 4),
                    std::to_string(result.evaluations)});

    const auto paper = design::evaluate_constraints(problem, c.paper_distribution);
    const bool ok9 = paper.achieved_levels[0] + 5e-3 >= c.constraints[0].min_levels &&
                     paper.achieved_levels[1] + 5e-3 >= c.constraints[1].min_levels;
    const bool ok10 = paper.achieved_full_recovery.value_or(0) + 5e-3 >= 0.99;
    verify.add_row({c.name, fmt_double(c.paper_distribution[0], 4),
                    fmt_double(c.paper_distribution[1], 4),
                    fmt_double(c.paper_distribution[2], 4),
                    fmt_double(paper.achieved_levels[0], 3),
                    fmt_double(paper.achieved_levels[1], 3),
                    fmt_double(paper.achieved_full_recovery.value_or(-1), 4),
                    ok9 ? "yes" : "NO", ok10 ? "yes" : "NO"});
  }

  std::cout << "\nOur solver's feasible distributions (first feasible point from the\n"
               "uniform start, like the paper's MATLAB run):\n";
  solved.emit("table1_solved");
  std::cout << "\nVerification of the paper's published distributions under our exact\n"
               "Theorem-1 analysis:\n";
  verify.emit("table1_paper_verified");
  std::cout << "\nExpected shape: all three cases are feasible; the paper's published\n"
               "rows satisfy (or come within numerical tolerance of) their own\n"
               "constraints under the exact analysis.\n";
  bench::finalize(nullptr);
  return 0;
}
