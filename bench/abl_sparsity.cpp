// Ablation — sparse encoding with O(ln N) coefficients (Sec. 4 claim).
//
// The paper leans on Dimakis et al.: a coded block that mixes only
// O(ln N) randomly chosen source blocks still yields an invertible
// decoding matrix with high probability, which cuts the pre-distribution
// cost from N messages per coded block to O(ln N). This bench sweeps the
// sparsity factor c (row weight = ceil(c ln N)) and reports the decoded
// fraction from 1.25 N coded blocks, for PLC and RLC — the threshold
// behaviour around c ~ 1..3 is the expected shape.
#include <iostream>

#include "bench_common.h"
#include "codes/decoding_curve.h"
#include "gf/gf256.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;
using F = gf::Gf256;

double decoded_fraction(codes::Scheme scheme, const codes::PrioritySpec& spec,
                        const codes::EncoderOptions& enc, std::size_t coded_blocks,
                        std::size_t trials, std::uint64_t seed) {
  const auto dist = codes::PriorityDistribution::uniform(spec.levels());
  codes::CurveOptions opt;
  opt.block_counts = {coded_blocks};
  opt.trials = trials;
  opt.seed = seed;
  opt.threads = bench::options().threads;
  opt.encoder = enc;
  const auto curve = codes::simulate_decoding_curve<F>(scheme, spec, dist, opt);
  return curve[0].mean_blocks / static_cast<double>(spec.total());
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — O(ln N) sparse encoding",
                "Decoded fraction from 1.25N blocks vs sparsity factor c.");
  const std::size_t trials = bench::options().trials_or(30, 6);
  const std::uint64_t seed = bench::options().seed_or(0);
  const auto spec = codes::PrioritySpec::uniform(5, 100);  // N = 500
  const std::size_t m = 625;                               // 1.25 N

  TablePrinter table({"sparsity factor c", "row weight (last level)",
                      "PLC decoded fraction", "RLC decoded fraction"});
  for (double c : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0}) {
    codes::EncoderOptions enc;
    enc.model = codes::CoefficientModel::kSparse;
    enc.sparsity_factor = c;
    const auto weight = static_cast<std::size_t>(std::ceil(c * std::log(500.0)));
    table.add_row(
        {fmt_double(c, 1), std::to_string(weight),
         fmt_double(decoded_fraction(codes::Scheme::kPlc, spec, enc, m, trials, seed + 11), 3),
         fmt_double(decoded_fraction(codes::Scheme::kRlc, spec, enc, m, trials, seed + 13), 3)});
  }
  codes::EncoderOptions dense;
  table.add_row(
      {"dense", "500",
       fmt_double(decoded_fraction(codes::Scheme::kPlc, spec, dense, m, trials, seed + 17), 3),
       fmt_double(decoded_fraction(codes::Scheme::kRlc, spec, dense, m, trials, seed + 19), 3)});
  table.emit("abl_sparsity");
  std::cout << "\nExpected shape: decoded fraction jumps from ~0 to ~1 as c passes a\n"
               "small constant (the O(ln N) threshold); c >= 3 matches dense coding,\n"
               "at ~ c ln N / N of the dissemination cost.\n";
  bench::finalize(nullptr);
  return 0;
}
