// Ablation — sparse encoding + hybrid peeling/GE decoding at N up to 1e5.
//
// Two claims are measured, both in machine-readable form (--json):
//
//  1. Dense regime (N = 500): the hybrid decoder's routing machinery is
//     free when rows are dense — ns_per_equation for dense-model blocks
//     fed as full-width spans is the legacy Gauss-Jordan cost, and for
//     sparse-model blocks the sparse (index, value) feed is no slower
//     than expanding the same equations to dense spans.
//
//  2. Large N (1e4..1e5): with O(ln w)-sparse chunked coefficients
//     (EncoderOptions.chunk_size, after "Expander Chunked Codes") the
//     decode cost per equation stays near-flat as N grows 10x — fill-in
//     is bounded by the chunk width, so total decode cost is near-linear
//     in the number of equations. The decoded fraction and the decoder's
//     storage statistics (sparse vs dense rows, peel operations,
//     densifications, resident coefficient bytes) are reported per point.
//
// The curves themselves are unchanged by any of this: the sparse emitter
// consumes the RNG exactly like the dense one and the hybrid decoder is
// arithmetically identical to dense Gauss-Jordan (tests/linalg fuzz).
#include <chrono>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "codes/coded_block.h"
#include "codes/encoder.h"
#include "gf/gf256.h"
#include "linalg/progressive_decoder.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;
using F = gf::Gf256;

struct RunResult {
  std::size_t equations = 0;
  double decode_ns = 0;           ///< wall time of the add loop only
  std::size_t decoded_prefix = 0;
  std::size_t decoded_levels = 0;
  linalg::ProgressiveDecoder<F>::Stats stats;

  double ns_per_equation() const {
    return equations == 0 ? 0.0 : decode_ns / static_cast<double>(equations);
  }
};

/// Generate `m` coded blocks up front, then time only the decode loop.
/// `sparse_feed` routes blocks through add_sparse (the O(nnz) hybrid
/// entry); otherwise they are expanded to full-width spans first — the
/// legacy dense feed.
RunResult run_decode(codes::Scheme scheme, const codes::PrioritySpec& spec,
                     const codes::EncoderOptions& enc_opts, std::size_t m,
                     std::uint64_t seed, bool sparse_feed) {
  const codes::PriorityEncoder<F> encoder(scheme, spec, enc_opts, nullptr);
  const auto dist = codes::PriorityDistribution::uniform(spec.levels());
  Rng rng(seed);

  RunResult out;
  out.equations = m;
  linalg::ProgressiveDecoder<F> decoder(spec.total());
  if (sparse_feed) {
    std::vector<codes::SparseCodedBlock<F>> blocks;
    blocks.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      blocks.push_back(encoder.encode_sparse_random(dist, rng));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& b : blocks) decoder.add_sparse(b.indices, b.values);
    const auto t1 = std::chrono::steady_clock::now();
    out.decode_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  } else {
    std::vector<codes::CodedBlock<F>> blocks;
    blocks.reserve(m);
    for (std::size_t i = 0; i < m; ++i) {
      blocks.push_back(encoder.encode_random(dist, rng));
    }
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& b : blocks) decoder.add(b.coeffs);
    const auto t1 = std::chrono::steady_clock::now();
    out.decode_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  }
  out.decoded_prefix = decoder.decoded_prefix();
  out.decoded_levels = spec.levels_covered_by_prefix(out.decoded_prefix);
  out.stats = decoder.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — sparse coding x hybrid peeling/GE decoder",
                "Decode cost per equation: dense regime (N=500) and chunked "
                "sparse runs at N = 1e4..1e5.");
  const std::uint64_t seed = bench::options().seed_or(0);
  bench::BenchReport report("abl_sparsity");

  // ---- 1. Dense regime: hybrid overhead at small N ------------------------
  {
    const auto spec = codes::PrioritySpec::uniform(5, 100);  // N = 500
    const std::size_t m = bench::options().trials_or(625, 625);  // 1.25 N: decodes fully
    report.set_config("small_n", static_cast<double>(spec.total()));

    TablePrinter table({"model", "feed", "decode ms", "ns/equation", "decoded prefix"});
    struct Case {
      const char* model_name;
      codes::CoefficientModel model;
      bool sparse_feed;
    };
    const Case cases[] = {
        {"dense-uniform", codes::CoefficientModel::kDenseUniform, false},
        {"sparse c=3", codes::CoefficientModel::kSparse, false},
        {"sparse c=3", codes::CoefficientModel::kSparse, true},
    };
    for (const auto& c : cases) {
      codes::EncoderOptions enc;
      enc.model = c.model;
      enc.sparsity_factor = 3.0;
      // Same seed for both feeds of the sparse model: identical equations,
      // so the timing difference is purely the feed path.
      const auto r = run_decode(codes::Scheme::kPlc, spec, enc, m,
                                seed + (c.model == codes::CoefficientModel::kSparse ? 23 : 19),
                                c.sparse_feed);
      table.add_row({c.model_name, c.sparse_feed ? "sparse pairs" : "dense span",
                     fmt_double(r.decode_ns / 1e6, 3), fmt_double(r.ns_per_equation(), 0),
                     std::to_string(r.decoded_prefix)});
      report.add_point("small_n_overhead",
                       {{"model", std::string(c.model_name)},
                        {"feed", std::string(c.sparse_feed ? "sparse" : "dense")},
                        {"n", static_cast<double>(spec.total())},
                        {"equations", static_cast<double>(r.equations)},
                        {"decode_ns", r.decode_ns},
                        {"ns_per_equation", r.ns_per_equation()},
                        {"decoded_prefix", static_cast<double>(r.decoded_prefix)}});
    }
    table.emit("abl_sparsity_small_n");
  }

  // ---- 2. Chunked sparse decoding at N = 1e4 .. 1e5 -----------------------
  {
    const std::size_t chunk = 256;
    const double redundancy = 1.3;
    std::vector<std::size_t> sizes = {10000, 31623, 100000};
    std::vector<double> factors = {1.5, 3.0};
    if (bench::fast_mode()) {
      sizes = {10000};
      factors = {3.0};
    }
    report.set_config("chunk_size", static_cast<double>(chunk));
    report.set_config("redundancy", redundancy);

    TablePrinter table({"scheme", "N", "c", "decode ms", "ns/equation", "decoded frac",
                        "peel ops", "sparse rows", "dense rows", "coef MiB"});
    for (const auto scheme : {codes::Scheme::kRlc, codes::Scheme::kPlc}) {
      if (!bench::options().scheme_enabled(scheme)) continue;
      for (const std::size_t n : sizes) {
        for (const double c : factors) {
          const auto spec = codes::PrioritySpec::uniform(5, n / 5);
          codes::EncoderOptions enc;
          enc.model = codes::CoefficientModel::kSparse;
          enc.sparsity_factor = c;
          enc.chunk_size = chunk;
          const auto m = static_cast<std::size_t>(redundancy * static_cast<double>(n));
          const auto r = run_decode(scheme, spec, enc, m, seed + 31 + n + sizes.size(),
                                    /*sparse_feed=*/true);
          const double frac =
              static_cast<double>(r.decoded_prefix) / static_cast<double>(spec.total());
          table.add_row({std::string(codes::to_string(scheme)), std::to_string(n),
                         fmt_double(c, 1), fmt_double(r.decode_ns / 1e6, 1),
                         fmt_double(r.ns_per_equation(), 0), fmt_double(frac, 3),
                         std::to_string(r.stats.peel_ops),
                         std::to_string(r.stats.sparse_rows),
                         std::to_string(r.stats.dense_rows),
                         fmt_double(static_cast<double>(r.stats.coef_bytes) / (1024.0 * 1024.0), 1)});
          report.add_point(
              std::string("hybrid_large_n/") + codes::to_string(scheme),
              {{"n", static_cast<double>(n)},
               {"sparsity_factor", c},
               {"chunk_size", static_cast<double>(chunk)},
               {"equations", static_cast<double>(r.equations)},
               {"decode_ns", r.decode_ns},
               {"ns_per_equation", r.ns_per_equation()},
               {"decoded_fraction", frac},
               {"decoded_levels", static_cast<double>(r.decoded_levels)},
               {"peel_ops", static_cast<double>(r.stats.peel_ops)},
               {"sparse_rows", static_cast<double>(r.stats.sparse_rows)},
               {"dense_rows", static_cast<double>(r.stats.dense_rows)},
               {"densifications", static_cast<double>(r.stats.densifications)},
               {"coef_bytes", static_cast<double>(r.stats.coef_bytes)}});
        }
      }
    }
    table.emit("abl_sparsity_large_n");
  }

  std::cout << "\nExpected shape: ns/equation stays near-flat as N grows 10x\n"
               "(chunked fill-in is bounded by the chunk width, so decode cost is\n"
               "near-linear in equations), and the sparse feed at small N costs no\n"
               "more than expanding the same equations to dense spans.\n";
  bench::finalize(&report);
  return 0;
}
