// Ablation — end-to-end differentiated persistence under node failure.
//
// The paper's motivating scenario assembled from all substrates: deploy
// an overlay (sensor field / Chord ring), pre-distribute priority-coded
// measurement data per Sec. 4, kill a growing fraction of nodes, and let
// a collector decode what survives. Expected shape: decoded levels
// degrade gracefully for PLC (important levels die last), SLC sits below
// PLC, and RLC falls off a cliff once survivors < N.
#include <iostream>

#include "bench_common.h"
#include "proto/persistence_experiment.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

void run_overlay(proto::OverlayKind kind, std::size_t trials,
                 bench::BenchReport& report) {
  proto::PersistenceParams base;
  base.overlay = kind;
  base.nodes = kind == proto::OverlayKind::kSensor ? 400 : 250;
  base.level_sizes = {20, 40, 60, 80};  // N = 200
  base.locations = 400;                 // 2x overprovisioning
  base.failure_fractions = {0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  base.trials = trials;
  base.seed = 97;

  TablePrinter table({"failure fraction", "surviving blocks", "PLC levels (95% CI)",
                      "SLC levels (95% CI)", "RLC levels (95% CI)"});
  std::vector<std::vector<proto::PersistencePoint>> rows;
  for (codes::Scheme scheme :
       {codes::Scheme::kPlc, codes::Scheme::kSlc, codes::Scheme::kRlc}) {
    auto params = base;
    params.scheme = scheme;
    rows.push_back(run_persistence_experiment(params));
  }
  const char* scheme_names[] = {"plc", "slc", "rlc"};
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const std::string series = std::string(scheme_names[s]) + "/" + to_string(kind);
    for (const auto& point : rows[s]) {
      report.add_point(series,
                       {{"failure_fraction", point.failure_fraction},
                        {"surviving_blocks", point.mean_surviving_blocks},
                        {"decoded_levels", point.mean_decoded_levels},
                        {"decoded_levels_ci95", point.ci95_decoded_levels},
                        {"decoded_blocks", point.mean_decoded_blocks},
                        {"dissemination_hops", point.mean_dissemination_hops}});
    }
  }
  for (std::size_t i = 0; i < base.failure_fractions.size(); ++i) {
    table.add_row({fmt_double(base.failure_fractions[i], 1),
                   fmt_double(rows[0][i].mean_surviving_blocks, 1),
                   fmt_mean_ci(rows[0][i].mean_decoded_levels, rows[0][i].ci95_decoded_levels, 2),
                   fmt_mean_ci(rows[1][i].mean_decoded_levels, rows[1][i].ci95_decoded_levels, 2),
                   fmt_mean_ci(rows[2][i].mean_decoded_levels, rows[2][i].ci95_decoded_levels, 2)});
  }
  std::cout << "\nOverlay: " << to_string(kind) << " (" << base.nodes << " nodes, "
            << base.locations << " locations, N = 200 in levels {20,40,60,80})\n";
  table.emit(std::string("abl_persistence_") + to_string(kind));
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — end-to-end persistence under churn",
                "Pre-distribution protocol + uniform mass failures + collection.");
  const std::size_t trials = bench::trials(12, 3);
  bench::BenchReport report("abl_persistence_e2e");
  report.set_config("trials", trials);
  report.set_config("levels", [] {
    json::Value v = json::Value::array();
    for (std::size_t n : {20, 40, 60, 80}) v.push_back(n);
    return v;
  }());
  run_overlay(proto::OverlayKind::kChord, trials, report);
  run_overlay(proto::OverlayKind::kSensor, trials, report);
  std::cout << "\nExpected shape: all schemes hold until survivors ~ N; past that RLC\n"
               "drops to zero at once while PLC sheds low-priority levels first and\n"
               "keeps level 1 alive deep into the failure sweep; SLC between.\n";
  bench::finalize(&report);
  return 0;
}
