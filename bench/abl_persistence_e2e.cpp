// Ablation — end-to-end differentiated persistence under node failure.
//
// The paper's motivating scenario assembled from all substrates: deploy
// an overlay (sensor field / Chord ring), pre-distribute priority-coded
// measurement data per Sec. 4, kill a growing fraction of nodes, and let
// a collector decode what survives. Expected shape: decoded levels
// degrade gracefully for PLC (important levels die last), SLC sits below
// PLC, and RLC falls off a cliff once survivors < N.
//
// Trials run through runtime::TrialRunner: `--threads N` changes only
// wall-clock, never the numbers — `--json` output is byte-identical for
// the same `--seed` at any thread count.
#include <iostream>

#include "bench_common.h"
#include "proto/persistence_experiment.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

/// Problem size: full-size reproduces the paper's scale; fast mode (smoke
/// runs) shrinks the network and spec so even `--trials 64` finishes in
/// seconds.
struct Shape {
  std::size_t sensor_nodes;
  std::size_t chord_nodes;
  std::vector<std::size_t> level_sizes;
  std::size_t locations;
  std::vector<double> failure_fractions;
};

Shape shape() {
  if (bench::fast_mode()) {
    return {100, 80, {5, 10, 15}, 60, {0.0, 0.4, 0.7, 0.9}};
  }
  return {400, 250, {20, 40, 60, 80}, 400, {0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}};
}

void run_overlay(proto::OverlayKind kind, const Shape& shape, std::size_t trials,
                 std::uint64_t seed, bench::BenchReport& report) {
  proto::PersistenceParams base;
  base.overlay = kind;
  base.nodes = kind == proto::OverlayKind::kSensor ? shape.sensor_nodes : shape.chord_nodes;
  base.locations = shape.locations;
  base.failure_fractions = shape.failure_fractions;
  base.experiment.level_sizes = shape.level_sizes;
  base.experiment.trials = trials;
  base.experiment.root_seed = seed;
  base.experiment.threads = bench::options().threads;

  std::vector<std::string> headers = {"failure fraction", "surviving blocks"};
  std::vector<std::vector<proto::PersistencePoint>> rows;
  std::vector<const char*> names;
  const std::pair<codes::Scheme, const char*> schemes[] = {
      {codes::Scheme::kPlc, "plc"},
      {codes::Scheme::kSlc, "slc"},
      {codes::Scheme::kRlc, "rlc"}};
  for (const auto& [scheme, name] : schemes) {
    if (!bench::options().scheme_enabled(scheme)) continue;
    auto params = base;
    params.experiment.scheme = scheme;
    rows.push_back(run_persistence_experiment(params));
    names.push_back(name);
    headers.push_back(std::string(to_string(scheme)) + " levels (95% CI)");
  }
  for (std::size_t s = 0; s < rows.size(); ++s) {
    const std::string series = std::string(names[s]) + "/" + to_string(kind);
    for (const auto& point : rows[s]) {
      report.add_point(series,
                       {{"failure_fraction", point.failure_fraction},
                        {"surviving_blocks", point.mean_surviving_blocks},
                        {"decoded_levels", point.mean_decoded_levels},
                        {"decoded_levels_ci95", point.ci95_decoded_levels},
                        {"decoded_blocks", point.mean_decoded_blocks},
                        {"dissemination_hops", point.mean_dissemination_hops}});
    }
  }
  TablePrinter table(headers);
  for (std::size_t i = 0; i < base.failure_fractions.size(); ++i) {
    std::vector<std::string> row = {fmt_double(base.failure_fractions[i], 1),
                                    fmt_double(rows[0][i].mean_surviving_blocks, 1)};
    for (const auto& scheme_row : rows) {
      row.push_back(fmt_mean_ci(scheme_row[i].mean_decoded_levels,
                                scheme_row[i].ci95_decoded_levels, 2));
    }
    table.add_row(row);
  }
  std::size_t total = 0;
  for (std::size_t n : shape.level_sizes) total += n;
  std::cout << "\nOverlay: " << to_string(kind) << " (" << base.nodes << " nodes, "
            << base.locations << " locations, N = " << total << ")\n";
  table.emit(std::string("abl_persistence_") + to_string(kind));
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — end-to-end persistence under churn",
                "Pre-distribution protocol + uniform mass failures + collection.");
  const Shape s = shape();
  const std::size_t trials = bench::options().trials_or(12, 3);
  const std::uint64_t seed = bench::options().seed_or(97);
  bench::BenchReport report("abl_persistence_e2e");
  report.set_config("trials", trials);
  report.set_config("seed", static_cast<double>(seed));
  report.set_config("levels", [&] {
    json::Value v = json::Value::array();
    for (std::size_t n : s.level_sizes) v.push_back(n);
    return v;
  }());
  run_overlay(proto::OverlayKind::kChord, s, trials, seed, report);
  run_overlay(proto::OverlayKind::kSensor, s, trials, seed, report);
  std::cout << "\nExpected shape: all schemes hold until survivors ~ N; past that RLC\n"
               "drops to zero at once while PLC sheds low-priority levels first and\n"
               "keeps level 1 alive deep into the failure sweep; SLC between.\n";
  bench::finalize(&report);
  return 0;
}
