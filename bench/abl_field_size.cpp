// Ablation — Galois-field size (footnote 1 of Sec. 3.3).
//
// The analysis assumes "a sufficiently large Galois field such as
// GF(2^8)": with field order q, each extra coded block is innovative with
// probability ~ (1 - 1/q), so small fields need overhead blocks beyond N.
// This bench measures the decoding overhead (blocks consumed beyond the
// information-theoretic minimum N) for GF(2), GF(2^4) and GF(2^8) under
// RLC and PLC — expected shape: overhead ~ a couple of blocks at GF(2),
// shrinking toward zero as the field grows.
#include <iostream>

#include "bench_common.h"
#include "codes/decoder.h"
#include "codes/encoder.h"
#include "gf/gf2m.h"
#include "gf/gf256.h"
#include "runtime/trial_runner.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

/// Mean extra blocks beyond N needed to decode everything, feeding
/// last-level PLC blocks (which span all N unknowns, like RLC).
template <gf::FieldPolicy F>
RunningStats overhead(runtime::TrialRunner& runner, codes::Scheme scheme, std::size_t n,
                      std::size_t trials, std::uint64_t seed) {
  const auto spec = codes::PrioritySpec::uniform(4, n / 4);
  const codes::PriorityEncoder<F> enc(scheme, spec);
  const auto samples = runner.run(trials, seed, [&](std::size_t, Rng& rng) {
    codes::PriorityDecoder<F> dec(scheme, spec);
    std::size_t blocks = 0;
    while (dec.rank() < spec.total()) {
      dec.add(enc.encode(spec.levels() - 1, rng));
      ++blocks;
    }
    return static_cast<double>(blocks - spec.total());
  });
  RunningStats stats;
  for (double s : samples) stats.add(s);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — field size vs decoding overhead",
                "Extra blocks beyond N = 128 to reach full rank.");
  const std::size_t trials = bench::options().trials_or(200, 30);
  const std::uint64_t seed = bench::options().seed_or(1);
  const std::size_t n = 128;

  runtime::TrialRunner runner(bench::options().threads);
  TablePrinter table({"field", "scheme", "mean overhead blocks (95% CI)",
                      "theory ~ 1/(q-1) sum"});
  auto row = [&](const char* field, const char* scheme, const RunningStats& s, double theory) {
    table.add_row({field, scheme, fmt_mean_ci(s.mean(), s.ci95_halfwidth()),
                   fmt_double(theory, 3)});
  };
  // Expected overhead for an MDS-less random code: sum_{k>=1} q^-k ~ 1/(q-1).
  row("GF(2)", "RLC", overhead<gf::Gf2>(runner, codes::Scheme::kRlc, n, trials, seed + 3), 1.0);
  row("GF(2^4)", "RLC", overhead<gf::Gf16>(runner, codes::Scheme::kRlc, n, trials, seed + 5),
      1.0 / 15);
  row("GF(2^8)", "RLC", overhead<gf::Gf256>(runner, codes::Scheme::kRlc, n, trials, seed + 7),
      1.0 / 255);
  row("GF(2)", "PLC", overhead<gf::Gf2>(runner, codes::Scheme::kPlc, n, trials, seed + 11), 1.0);
  row("GF(2^4)", "PLC", overhead<gf::Gf16>(runner, codes::Scheme::kPlc, n, trials, seed + 13),
      1.0 / 15);
  row("GF(2^8)", "PLC", overhead<gf::Gf256>(runner, codes::Scheme::kPlc, n, trials, seed + 17),
      1.0 / 255);
  table.emit("abl_field_size");
  std::cout << "\nExpected shape: GF(2) costs ~1.6 extra blocks (sum of geometric rank\n"
               "misses), GF(2^4) a tenth of that, GF(2^8) nearly zero — confirming\n"
               "the paper's 'sufficiently large field' assumption is cheap to meet.\n";
  bench::finalize(nullptr);
  return 0;
}
