// Ablation — maintenance refresh across repeated churn waves.
//
// Extension experiment (see proto/refresh.h): after each churn wave a
// maintainer decodes the survivors and re-disseminates coded blocks to
// the locations that lost theirs. Expected shape: without refresh the
// retrievable-block pool only shrinks, and decoding collapses after a few
// waves; with refresh the pool snaps back to M after every wave and all
// levels survive until the node population itself is exhausted.
//
// Both arms share the same root seed, so trial i deploys the identical
// network and suffers the identical churn with and without refresh — the
// comparison is paired, not merely averaged.
#include <iostream>

#include "bench_common.h"
#include "proto/refresh.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner("Ablation — refresh protocol across churn waves",
                "25% of surviving nodes die each wave; refresh on/off.");
  proto::RefreshExperimentParams params;
  params.nodes = 500;
  params.locations = 240;
  params.waves = 8;
  params.kill_fraction = 0.25;
  params.experiment.level_sizes = {20, 40, 60};  // N = 120
  params.experiment.scheme = codes::Scheme::kPlc;
  params.experiment.trials = bench::options().trials_or(15, 4);
  params.experiment.root_seed = bench::options().seed_or(0x2EF2E5);
  params.experiment.threads = bench::options().threads;
  params.protocol.block_size = 8;

  params.use_refresh = true;
  const auto with = run_refresh_experiment(params);
  params.use_refresh = false;
  const auto without = run_refresh_experiment(params);

  bench::BenchReport report("abl_refresh");
  report.set_config("trials", params.experiment.trials);
  report.set_config("seed", static_cast<double>(params.experiment.root_seed));
  report.set_config("waves", params.waves);
  for (std::size_t wave = 0; wave < params.waves; ++wave) {
    report.add_point("with_refresh",
                     {{"wave", static_cast<double>(with[wave].wave)},
                      {"decoded_levels", with[wave].mean_decoded_levels},
                      {"decoded_levels_ci95", with[wave].ci95_decoded_levels},
                      {"surviving_locations", with[wave].mean_surviving_locations},
                      {"rebuilt_locations", with[wave].mean_rebuilt_locations}});
    report.add_point("without_refresh",
                     {{"wave", static_cast<double>(without[wave].wave)},
                      {"decoded_levels", without[wave].mean_decoded_levels},
                      {"decoded_levels_ci95", without[wave].ci95_decoded_levels},
                      {"surviving_locations", without[wave].mean_surviving_locations}});
  }

  TablePrinter table({"wave", "alive frac", "levels w/ refresh (95% CI)", "blocks w/",
                      "rebuilt/wave", "levels w/o refresh (95% CI)", "blocks w/o"});
  double alive = 1.0;
  for (std::size_t wave = 0; wave < params.waves; ++wave) {
    alive *= 1.0 - params.kill_fraction;
    table.add_row({std::to_string(wave + 1), fmt_double(alive, 3),
                   fmt_mean_ci(with[wave].mean_decoded_levels,
                               with[wave].ci95_decoded_levels, 2),
                   fmt_double(with[wave].mean_surviving_locations, 0),
                   fmt_double(with[wave].mean_rebuilt_locations, 0),
                   fmt_mean_ci(without[wave].mean_decoded_levels,
                               without[wave].ci95_decoded_levels, 2),
                   fmt_double(without[wave].mean_surviving_locations, 0)});
  }
  table.emit("abl_refresh");
  std::cout << "\nExpected shape: refreshed storage holds all 3 levels for many more\n"
               "waves (retrievable blocks reset to M each round) while the\n"
               "unmaintained network decays geometrically and loses deep levels\n"
               "first.\n";
  bench::finalize(&report);
  return 0;
}
