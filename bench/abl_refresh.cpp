// Ablation — maintenance refresh across repeated churn waves.
//
// Extension experiment (see proto/refresh.h): after each churn wave a
// maintainer decodes the survivors and re-disseminates coded blocks to
// the locations that lost theirs. Expected shape: without refresh the
// retrievable-block pool only shrinks, and decoding collapses after a few
// waves; with refresh the pool snaps back to M after every wave and all
// levels survive until the node population itself is exhausted.
#include <iostream>

#include "bench_common.h"
#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "proto/collector.h"
#include "proto/refresh.h"
#include "util/stats.h"
#include "util/table_printer.h"

namespace {

using namespace prlc;

struct WaveOutcome {
  RunningStats levels;
  RunningStats surviving;
  RunningStats rebuilt;
};

}  // namespace

int main() {
  bench::banner("Ablation — refresh protocol across churn waves",
                "25% of surviving nodes die each wave; refresh on/off.");
  const std::size_t trials = bench::trials(15, 4);
  const std::size_t waves = 8;
  const auto spec = codes::PrioritySpec({20, 40, 60});  // N = 120
  const auto dist = codes::PriorityDistribution::uniform(3);

  std::vector<WaveOutcome> with(waves);
  std::vector<WaveOutcome> without(waves);

  Rng master(0x2EF2E5);
  for (std::size_t t = 0; t < trials; ++t) {
    for (bool use_refresh : {true, false}) {
      Rng rng = master.split();
      net::ChordParams np;
      np.nodes = 500;
      np.locations = 240;
      np.seed = rng();
      net::ChordNetwork overlay(np);
      proto::ProtocolParams params;
      params.scheme = codes::Scheme::kPlc;
      params.block_size = 8;
      proto::Predistribution pd(overlay, spec, dist, params);
      const auto source =
          codes::SourceData<proto::Field>::random(spec.total(), params.block_size, rng);
      pd.disseminate(source, rng);

      for (std::size_t wave = 0; wave < waves; ++wave) {
        net::kill_uniform_fraction(overlay, 0.25, rng);
        std::size_t rebuilt = 0;
        if (use_refresh && overlay.alive_count() > 0) {
          rebuilt = refresh(pd, overlay.random_alive_node(rng), rng).rebuilt_locations;
        }
        codes::PriorityDecoder<proto::Field> dec(params.scheme, spec, params.block_size);
        const auto result = collect(pd, dec, {}, rng);
        auto& out = (use_refresh ? with : without)[wave];
        out.levels.add(static_cast<double>(result.decoded_levels));
        out.surviving.add(static_cast<double>(result.surviving_locations));
        out.rebuilt.add(static_cast<double>(rebuilt));
      }
    }
  }

  TablePrinter table({"wave", "alive frac", "levels w/ refresh (95% CI)", "blocks w/",
                      "rebuilt/wave", "levels w/o refresh (95% CI)", "blocks w/o"});
  double alive = 1.0;
  for (std::size_t wave = 0; wave < waves; ++wave) {
    alive *= 0.75;
    table.add_row({std::to_string(wave + 1), fmt_double(alive, 3),
                   fmt_mean_ci(with[wave].levels.mean(), with[wave].levels.ci95_halfwidth(), 2),
                   fmt_double(with[wave].surviving.mean(), 0),
                   fmt_double(with[wave].rebuilt.mean(), 0),
                   fmt_mean_ci(without[wave].levels.mean(),
                               without[wave].levels.ci95_halfwidth(), 2),
                   fmt_double(without[wave].surviving.mean(), 0)});
  }
  table.emit("abl_refresh");
  std::cout << "\nExpected shape: refreshed storage holds all 3 levels for many more\n"
               "waves (retrievable blocks reset to M each round) while the\n"
               "unmaintained network decays geometrically and loses deep levels\n"
               "first.\n";
  return 0;
}
