// Microbenchmarks — throughput of the coding substrate (google-benchmark).
//
// Not a paper figure; engineering numbers for the library itself: field
// kernels, encoder throughput, progressive-decoder cost at the paper's
// scales, and batch RREF.
#include <benchmark/benchmark.h>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "gf/gf256.h"
#include "linalg/gauss_jordan.h"
#include "linalg/progressive_decoder.h"
#include "util/random.h"

namespace {

using namespace prlc;
using F = gf::Gf256;

void BM_GfMul(benchmark::State& state) {
  Rng rng(1);
  std::uint8_t a = static_cast<std::uint8_t>(1 + rng.uniform(255));
  std::uint8_t x = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto _ : state) {
    x = F::mul(a, x ^ 1);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_GfMul);

void BM_GfAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<std::uint8_t> x(n);
  std::vector<std::uint8_t> y(n);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto _ : state) {
    F::axpy(std::span<std::uint8_t>(y), 0x1D, std::span<const std::uint8_t>(x));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfAxpy)->Arg(256)->Arg(1024)->Arg(16384);

void BM_EncodeBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto spec = codes::PrioritySpec::uniform(4, n / 4);
  const auto source = codes::SourceData<F>::random(n, 64, rng);
  const codes::PriorityEncoder<F> enc(codes::Scheme::kPlc, spec, {}, &source);
  for (auto _ : state) {
    auto block = enc.encode(3, rng);
    benchmark::DoNotOptimize(block.payload.data());
  }
}
BENCHMARK(BM_EncodeBlock)->Arg(256)->Arg(1024);

void BM_ProgressiveDecodeFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const auto spec = codes::PrioritySpec::uniform(4, n / 4);
  const codes::PriorityEncoder<F> enc(codes::Scheme::kPlc, spec);
  const auto dist = codes::PriorityDistribution::uniform(4);
  // Pre-generate blocks outside the timed region.
  std::vector<codes::CodedBlock<F>> blocks;
  for (std::size_t i = 0; i < n + 16; ++i) blocks.push_back(enc.encode_random(dist, rng));
  for (auto _ : state) {
    codes::PriorityDecoder<F> dec(codes::Scheme::kPlc, spec);
    for (const auto& b : blocks) {
      if (dec.rank() == n) break;
      dec.add(b);
    }
    benchmark::DoNotOptimize(dec.decoded_levels());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ProgressiveDecodeFull)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_BatchRref(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const auto m = linalg::Matrix<F>::random(n, n, rng);
  for (auto _ : state) {
    auto copy = m;
    const auto info = linalg::rref(copy);
    benchmark::DoNotOptimize(info.rank);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BatchRref)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SparseEncode(benchmark::State& state) {
  Rng rng(6);
  const auto spec = codes::PrioritySpec::uniform(4, 256);  // N = 1024
  codes::EncoderOptions opt;
  opt.model = codes::CoefficientModel::kSparse;
  const codes::PriorityEncoder<F> enc(codes::Scheme::kPlc, spec, opt);
  for (auto _ : state) {
    auto block = enc.encode(3, rng);
    benchmark::DoNotOptimize(block.coeffs.data());
  }
}
BENCHMARK(BM_SparseEncode);

}  // namespace

BENCHMARK_MAIN();
