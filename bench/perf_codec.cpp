// Microbenchmarks — throughput of the coding substrate (google-benchmark).
//
// Not a paper figure; engineering numbers for the library itself: field
// kernels, encoder throughput, progressive-decoder cost at the paper's
// scales, batch RREF — and the payload sweep: PayloadCodec encode/decode
// over real multi-MB objects across (payload, chunk, thread) grids, the
// numbers behind BENCH_codec.json. The sweep runs first (a custom timed
// loop, not google-benchmark) so its series is series[0] of --json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "codec/payload_codec.h"
#include "codes/decoder.h"
#include "codes/encoder.h"
#include "gf/gf256.h"
#include "gf/gf256_kernels.h"
#include "linalg/gauss_jordan.h"
#include "linalg/progressive_decoder.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/random.h"

namespace {

using namespace prlc;
using F = gf::Gf256;

// --- payload sweep ---------------------------------------------------------

double seconds_since(std::uint64_t start_ns) {
  return static_cast<double>(obs::ScopedTimer::now_ns() - start_ns) * 1e-9;
}

struct SweepMeasurement {
  double encode_s = 0;
  double decode_s = 0;
  std::vector<std::vector<std::uint8_t>> coded;      // encode outputs
  std::vector<std::vector<std::uint8_t>> eliminated; // decode-consumed buffers
};

/// One timed encode + decode pass of `codec` over the given rows/source.
SweepMeasurement run_codec_pass(const codec::PayloadCodec& codec,
                                std::span<const std::vector<std::uint8_t>> rows,
                                const codes::SourceData<F>& source) {
  SweepMeasurement m;
  const std::uint64_t t0 = obs::ScopedTimer::now_ns();
  m.coded = codec.encode(rows, source);
  m.encode_s = seconds_since(t0);

  m.eliminated = m.coded;  // decode eliminates in place; keep coded pristine
  const std::uint64_t t1 = obs::ScopedTimer::now_ns();
  const auto result = codec.decode(rows, m.eliminated);
  m.decode_s = seconds_since(t1);
  benchmark::DoNotOptimize(result.rank);
  return m;
}

bool same_buffers(const std::vector<std::vector<std::uint8_t>>& a,
                  const std::vector<std::vector<std::uint8_t>>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

/// PayloadCodec throughput grid: payload-size x chunk-size x threads, PLC
/// over 4 uniform levels. Reports bytes/s (object bytes per wall second)
/// and speedup against the serial single-threaded reference path, and
/// cross-checks that every multithreaded run produced bit-identical
/// encode outputs and eliminated payload buffers.
void run_payload_sweep(bench::BenchReport& report) {
  const bench::Options& opt = bench::options();
  const bool fast = bench::fast_mode();

  std::vector<std::size_t> payload_sizes;
  if (opt.payload_bytes) {
    payload_sizes = {*opt.payload_bytes};
  } else if (fast) {
    payload_sizes = {std::size_t{1} << 20};
  } else {
    payload_sizes = {std::size_t{4} << 20, std::size_t{64} << 20};
  }
  std::vector<std::size_t> chunk_sizes;
  if (opt.chunk_bytes) {
    chunk_sizes = {*opt.chunk_bytes};
  } else if (fast) {
    chunk_sizes = {std::size_t{32} << 10};
  } else {
    chunk_sizes = {std::size_t{32} << 10, std::size_t{128} << 10};
  }
  std::vector<std::size_t> thread_counts;
  if (opt.threads != 0) {
    thread_counts = {opt.threads};
  } else if (fast) {
    thread_counts = {1, 2};
  } else {
    thread_counts = {1, 2, 4, 8};
  }

  const std::size_t levels = 4;
  const std::size_t n = fast ? 16 : 64;  // source blocks (levels x n/levels)
  Rng rng(opt.seed_or(0x5eedc0dec));

  std::printf("payload sweep: PLC, %zu levels, N=%zu\n", levels, n);
  for (const std::size_t requested : payload_sizes) {
    const std::size_t block_size = std::max<std::size_t>(1, requested / n);
    const std::size_t object_bytes = block_size * n;
    const auto spec = codes::PrioritySpec::uniform(levels, n / levels);
    const auto source = codes::SourceData<F>::random(n, block_size, rng);
    // Lowest-priority PLC rows span all N source blocks: dense rows, the
    // worst-case (and steady-state) payload workload.
    const codes::PriorityEncoder<F> enc(codes::Scheme::kPlc, spec);
    std::vector<std::vector<std::uint8_t>> rows;
    for (std::size_t i = 0; i < n; ++i) {
      rows.push_back(enc.encode(levels - 1, rng).coeffs);
    }

    for (const std::size_t chunk : chunk_sizes) {
      const codec::PayloadCodec serial_codec(codes::Scheme::kPlc, spec,
                                             {.chunk_bytes = chunk});
      // Untimed warm-up so the timed serial baseline is not paying the
      // first-touch page faults the later pool runs avoid.
      run_codec_pass(serial_codec, rows, source);
      const SweepMeasurement serial = run_codec_pass(serial_codec, rows, source);

      for (const std::size_t threads : thread_counts) {
        runtime::ThreadPool pool(threads);
        const codec::PayloadCodec codec(codes::Scheme::kPlc, spec,
                                        {.chunk_bytes = chunk, .pool = &pool});
        const SweepMeasurement run = run_codec_pass(codec, rows, source);
        const bool identical = same_buffers(run.coded, serial.coded) &&
                               same_buffers(run.eliminated, serial.eliminated);
        PRLC_REQUIRE(identical, "multithreaded codec output diverged from serial");

        const double enc_bps = static_cast<double>(object_bytes) / run.encode_s;
        const double dec_bps = static_cast<double>(object_bytes) / run.decode_s;
        report.add_point("payload_sweep",
                         {{"payload_bytes", json::Value(static_cast<std::int64_t>(object_bytes))},
                          {"chunk_bytes", json::Value(static_cast<std::int64_t>(chunk))},
                          {"threads", json::Value(static_cast<std::int64_t>(threads))},
                          {"encode_bytes_per_s", json::Value(enc_bps)},
                          {"decode_bytes_per_s", json::Value(dec_bps)},
                          {"encode_speedup_vs_serial", json::Value(serial.encode_s / run.encode_s)},
                          {"decode_speedup_vs_serial", json::Value(serial.decode_s / run.decode_s)},
                          {"identical_to_serial", json::Value(identical)}});
        std::printf(
            "  payload %9zu  chunk %7zu  threads %zu  encode %8.1f MB/s (x%.2f)  "
            "decode %8.1f MB/s (x%.2f)\n",
            object_bytes, chunk, threads, enc_bps * 1e-6, serial.encode_s / run.encode_s,
            dec_bps * 1e-6, serial.decode_s / run.decode_s);
      }
    }
  }
}

void BM_GfMul(benchmark::State& state) {
  Rng rng(1);
  std::uint8_t a = static_cast<std::uint8_t>(1 + rng.uniform(255));
  std::uint8_t x = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto _ : state) {
    x = F::mul(a, x ^ 1);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_GfMul);

void BM_GfAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  std::vector<std::uint8_t> x(n);
  std::vector<std::uint8_t> y(n);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto _ : state) {
    F::axpy(std::span<std::uint8_t>(y), 0x1D, std::span<const std::uint8_t>(x));
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GfAxpy)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

// Per-variant kernel throughput (MB/s in the "bytes_per_second" counter).
// One row per compiled + runtime-supported variant, so BENCH output
// records both the dispatch decision and the speedup over the seed's
// byte-wise reference loop.
void BM_GfKernelAxpy(benchmark::State& state, gf::Gf256Kernel kernel) {
  const auto& ops = gf::gf256_kernel_ops(kernel);
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  std::vector<std::uint8_t> x(n);
  std::vector<std::uint8_t> y(n);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto _ : state) {
    ops.axpy(y.data(), x.data(), 0x1D, n);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_GfKernelMulRegion(benchmark::State& state, gf::Gf256Kernel kernel) {
  const auto& ops = gf::gf256_kernel_ops(kernel);
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  std::vector<std::uint8_t> src(n);
  std::vector<std::uint8_t> dst(n);
  for (auto& v : src) v = static_cast<std::uint8_t>(rng.uniform(256));
  for (auto _ : state) {
    ops.mul_region(dst.data(), src.data(), 0x8F, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_GfAxpyBatch(benchmark::State& state) {
  // The decoder back-elimination shape: one source row applied to many
  // target rows through the cache-tiled batch entry point.
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t rows = 32;
  Rng rng(9);
  std::vector<std::uint8_t> x(n);
  for (auto& v : x) v = static_cast<std::uint8_t>(rng.uniform(256));
  std::vector<std::vector<std::uint8_t>> targets(rows, std::vector<std::uint8_t>(n));
  std::vector<std::uint8_t*> ptrs;
  std::vector<std::uint8_t> coeffs;
  for (auto& t : targets) ptrs.push_back(t.data());
  for (std::size_t r = 0; r < rows; ++r) {
    coeffs.push_back(static_cast<std::uint8_t>(1 + rng.uniform(255)));
  }
  using F = gf::Gf256;
  for (auto _ : state) {
    F::axpy_batch(std::span<std::uint8_t* const>(ptrs),
                  std::span<const std::uint8_t>(coeffs), std::span<const std::uint8_t>(x));
    benchmark::DoNotOptimize(targets.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n * rows));
}
BENCHMARK(BM_GfAxpyBatch)->Arg(4096)->Arg(65536);

void register_kernel_benchmarks() {
  for (gf::Gf256Kernel k : gf::gf256_compiled_kernels()) {
    if (!gf256_kernel_runtime_ok(k)) continue;
    const std::string suffix = gf::gf256_kernel_name(k);
    for (long n : {4096L, 65536L}) {
      benchmark::RegisterBenchmark(("BM_GfKernelAxpy/" + suffix).c_str(), BM_GfKernelAxpy, k)
          ->Arg(n);
      benchmark::RegisterBenchmark(("BM_GfKernelMulRegion/" + suffix).c_str(),
                                   BM_GfKernelMulRegion, k)
          ->Arg(n);
    }
  }
}

void BM_EncodeBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto spec = codes::PrioritySpec::uniform(4, n / 4);
  const auto source = codes::SourceData<F>::random(n, 64, rng);
  const codes::PriorityEncoder<F> enc(codes::Scheme::kPlc, spec, {}, &source);
  for (auto _ : state) {
    auto block = enc.encode(3, rng);
    benchmark::DoNotOptimize(block.payload.data());
  }
}
BENCHMARK(BM_EncodeBlock)->Arg(256)->Arg(1024);

void BM_ProgressiveDecodeFull(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  const auto spec = codes::PrioritySpec::uniform(4, n / 4);
  const codes::PriorityEncoder<F> enc(codes::Scheme::kPlc, spec);
  const auto dist = codes::PriorityDistribution::uniform(4);
  // Pre-generate blocks outside the timed region.
  std::vector<codes::CodedBlock<F>> blocks;
  for (std::size_t i = 0; i < n + 16; ++i) blocks.push_back(enc.encode_random(dist, rng));
  for (auto _ : state) {
    codes::PriorityDecoder<F> dec(codes::Scheme::kPlc, spec);
    for (const auto& b : blocks) {
      if (dec.rank() == n) break;
      dec.add(b);
    }
    benchmark::DoNotOptimize(dec.decoded_levels());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ProgressiveDecodeFull)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_BatchRref(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  const auto m = linalg::Matrix<F>::random(n, n, rng);
  for (auto _ : state) {
    auto copy = m;
    const auto info = linalg::rref(copy);
    benchmark::DoNotOptimize(info.rank);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BatchRref)->Arg(128)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_SparseEncode(benchmark::State& state) {
  Rng rng(6);
  const auto spec = codes::PrioritySpec::uniform(4, 256);  // N = 1024
  codes::EncoderOptions opt;
  opt.model = codes::CoefficientModel::kSparse;
  const codes::PriorityEncoder<F> enc(codes::Scheme::kPlc, spec, opt);
  for (auto _ : state) {
    auto block = enc.encode(3, rng);
    benchmark::DoNotOptimize(block.coeffs.data());
  }
}
BENCHMARK(BM_SparseEncode);

// --- telemetry probe overhead ----------------------------------------------
//
// The disabled-path contract (obs/events.h): a metrics counter add, an
// event emit and a time-series sample each cost a relaxed load plus a
// predictable branch when the subsystem is off. The Disabled/Enabled pair
// is the regression row for that claim; tests/obs/noalloc_guard_test
// asserts the allocation half of it.

void BM_TelemetryProbesDisabled(benchmark::State& state) {
  const bool metrics_before = obs::enabled();
  const bool events_before = obs::events_enabled();
  const bool timeseries_before = obs::timeseries_enabled();
  obs::set_enabled(false);
  obs::set_events_enabled(false);
  obs::set_timeseries_enabled(false);
  static obs::Counter& ctr = obs::counter("perf.telemetry_probe");
  const obs::SeriesId series = obs::timeseries("perf.telemetry_probe");
  for (auto _ : state) {
    ctr.add();
    obs::emit(obs::EventType::kPeel, 1.0);
    obs::sample(series, 1.0);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  obs::set_enabled(metrics_before);
  obs::set_events_enabled(events_before);
  obs::set_timeseries_enabled(timeseries_before);
}
BENCHMARK(BM_TelemetryProbesDisabled);

void BM_TelemetryProbesEnabled(benchmark::State& state) {
  const bool metrics_before = obs::enabled();
  const bool events_before = obs::events_enabled();
  const bool timeseries_before = obs::timeseries_enabled();
  obs::set_enabled(true);
  obs::set_events_enabled(true);
  obs::set_timeseries_enabled(true);
  static obs::Counter& ctr = obs::counter("perf.telemetry_probe");
  const obs::SeriesId series = obs::timeseries("perf.telemetry_probe");
  {
    obs::TrialScope scope(obs::begin_telemetry_run(), 0);
    for (auto _ : state) {
      ctr.add();
      obs::emit(obs::EventType::kPeel, 1.0);
      obs::sample(series, 1.0);
      benchmark::ClobberMemory();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  obs::set_enabled(metrics_before);
  obs::set_events_enabled(events_before);
  obs::set_timeseries_enabled(timeseries_before);
  // Drop the rings this loop filled so a --events-jsonl run of the other
  // benches is not polluted with benchmark probes.
  obs::EventJournal::global().clear();
  obs::TimeSeriesRecorder::global().clear();
}
BENCHMARK(BM_TelemetryProbesEnabled);

// Console output as usual, plus every finished run mirrored into the
// BenchReport for --json (name, adjusted times, user counters such as
// bytes_per_second).
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(bench::BenchReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      std::vector<std::pair<std::string, json::Value>> fields;
      fields.emplace_back("name", json::Value(run.benchmark_name()));
      fields.emplace_back("iterations", json::Value(static_cast<std::int64_t>(run.iterations)));
      fields.emplace_back("real_time", json::Value(run.GetAdjustedRealTime()));
      fields.emplace_back("cpu_time", json::Value(run.GetAdjustedCPUTime()));
      fields.emplace_back("time_unit",
                          json::Value(benchmark::GetTimeUnitString(run.time_unit)));
      for (const auto& [name, counter] : run.counters) {
        fields.emplace_back(name, json::Value(counter.value));
      }
      report_.add_point("benchmarks", std::move(fields));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  // Strip --json/--metrics-json/--trace-json (and arm obs) before the
  // first field op below resolves kernel dispatch, so the dispatch-
  // decision gauges land in the metrics dump. Leftover --benchmark_*
  // flags belong to google-benchmark, so keep them.
  bench::parse_args(argc, argv, bench::UnknownArgs::kKeep);
  std::printf("gf256 kernel dispatch: %s (compiled:", gf::gf256_active_ops().name);
  for (gf::Gf256Kernel k : gf::gf256_compiled_kernels()) {
    std::printf(" %s%s", gf::gf256_kernel_name(k),
                gf::gf256_kernel_runtime_ok(k) ? "" : "[no-cpu]");
  }
  std::printf(")\n");
  register_kernel_benchmarks();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  bench::BenchReport report("perf_codec");
  report.set_config("dispatch", json::Value(gf::gf256_active_ops().name));
  report.set_config("gf_tile_bytes",
                    json::Value(static_cast<std::int64_t>(gf::gf256_tile_bytes())));
  // The payload sweep goes first so its series lands at series[0] of the
  // --json report (smoke_codec's prlc_json_check paths rely on that).
  run_payload_sweep(report);
  CaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  bench::finalize(&report);
  benchmark::Shutdown();
  return 0;
}
