#include "obs/timeseries.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/json.h"

namespace prlc::obs {

TimeSeriesRecorder& TimeSeriesRecorder::global() {
  static TimeSeriesRecorder* r = new TimeSeriesRecorder();  // leaked: see Registry::global
  return *r;
}

SeriesId TimeSeriesRecorder::series(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<SeriesId>(i);
  }
  names_.emplace_back(name);
  return static_cast<SeriesId>(names_.size() - 1);
}

void TimeSeriesRecorder::watch(std::string_view metric_name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& w : watched_) {
    if (w == metric_name) return;
  }
  watched_.emplace_back(metric_name);
}

void TimeSeriesRecorder::tick(std::uint64_t t) {
  if (!timeseries_enabled()) return;
  std::vector<std::string> watched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    watched = watched_;
  }
  set_logical_time(t);
  for (const std::string& name : watched) {
    const auto value = Registry::global().current_value(name);
    if (value.has_value()) sample(series(name), *value);
  }
}

void TimeSeriesRecorder::set_trial_capacity(std::size_t cap) {
  capacity_.store(cap, std::memory_order_relaxed);
}

std::size_t TimeSeriesRecorder::trial_capacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

std::size_t TimeSeriesRecorder::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const TrialRecord& r : records_) n += r.samples.size();
  return n;
}

std::uint64_t TimeSeriesRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TimeSeriesRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_ = 0;
  // names_ and watched_ survive: SeriesId handles held by callers (often
  // in function-local statics) must stay valid for the process lifetime.
}

void TimeSeriesRecorder::flush_trial(std::int64_t run, std::uint64_t trial,
                                     std::vector<detail::Sample>&& ring,
                                     std::uint64_t emitted) {
  std::lock_guard<std::mutex> lock(mu_);
  dropped_ += emitted - ring.size();
  records_.push_back(TrialRecord{run, trial, std::move(ring)});
}

std::vector<TimeSeriesRecorder::FlatSample> TimeSeriesRecorder::sorted_samples() const {
  std::vector<FlatSample> flat;
  for (const TrialRecord& r : records_) {
    for (const detail::Sample& s : r.samples) flat.push_back(FlatSample{r.run, r.trial, s});
  }
  std::stable_sort(flat.begin(), flat.end(), [](const FlatSample& a, const FlatSample& b) {
    if (a.run != b.run) return a.run < b.run;
    if (a.trial != b.trial) return a.trial < b.trial;
    if (a.s.t != b.s.t) return a.s.t < b.s.t;
    return a.s.seq < b.s.seq;
  });
  return flat;
}

std::string TimeSeriesRecorder::to_jsonl() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const FlatSample& f : sorted_samples()) {
    json::Value line = json::Value::object();
    line.set("run", json::Value(f.run));
    line.set("trial", json::Value(f.trial));
    line.set("t", json::Value(f.s.t));
    line.set("seq", json::Value(static_cast<std::uint64_t>(f.s.seq)));
    line.set("series", json::Value(f.s.series < names_.size() ? names_[f.s.series]
                                                              : std::string("unknown")));
    line.set("value", json::Value(f.s.value));
    out += line.dump(-1);
    out.push_back('\n');
  }
  return out;
}

std::string TimeSeriesRecorder::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto flat = sorted_samples();
  // Group by series name, names in sorted order for a stable document.
  std::vector<std::size_t> ids;
  for (std::size_t i = 0; i < names_.size(); ++i) ids.push_back(i);
  std::sort(ids.begin(), ids.end(),
            [&](std::size_t a, std::size_t b) { return names_[a] < names_[b]; });
  json::Value series = json::Value::array();
  for (const std::size_t id : ids) {
    json::Value points = json::Value::array();
    for (const FlatSample& f : flat) {
      if (f.s.series != id) continue;
      json::Value p = json::Value::object();
      p.set("run", json::Value(f.run));
      p.set("trial", json::Value(f.trial));
      p.set("t", json::Value(f.s.t));
      p.set("value", json::Value(f.s.value));
      points.push_back(std::move(p));
    }
    if (points.size() == 0) continue;
    json::Value entry = json::Value::object();
    entry.set("name", json::Value(names_[id]));
    entry.set("points", std::move(points));
    series.push_back(std::move(entry));
  }
  json::Value root = json::Value::object();
  root.set("series", std::move(series));
  return root.dump(1);
}

bool TimeSeriesRecorder::write_jsonl(const std::string& path) const {
  try {
    json::write_file(path, to_jsonl());
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace prlc::obs
