// Process-wide metrics: counters, gauges, log-bucketed latency histograms.
//
// Design contract — zero overhead when disabled:
//   * Every probe (Counter::add, Gauge::set, LatencyHistogram::record,
//     ScopedTimer) first branches on a single process-wide relaxed atomic
//     flag. When metrics are off the probe is a load + predictable branch
//     and touches no shared cache line, so instrumenting a hot loop does
//     not change its throughput (the perf_codec axpy numbers are the
//     regression check).
//   * The flag defaults to the PRLC_METRICS environment variable (unset
//     or "0" = disabled); binaries that export metrics (`--metrics-json`,
//     `prlc metrics`) call set_enabled(true) before doing work.
//
// Metrics live in a process-wide Registry keyed by hierarchical names
// ("decoder.rows_innovative", "gf256.axpy_bytes"). Lookup is find-or-
// create under a mutex and returns a stable reference, so hot paths
// resolve their metric once into a function-local static and pay only
// the atomic update afterwards:
//
//   static obs::Counter& rows = obs::counter("decoder.rows_received");
//   rows.add();
//
// All metric updates are relaxed atomics: safe under concurrent writers,
// no ordering guarantees between different metrics (readers see a
// near-consistent snapshot, which is all an exporter needs).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace prlc::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}

/// Master probe switch. Initialized from PRLC_METRICS (enabled iff set to
/// a nonempty value other than "0"); override with set_enabled().
inline bool enabled() { return detail::g_enabled.load(std::memory_order_relaxed); }
void set_enabled(bool on);

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value metric (survivor counts, watermark levels). Signed so it
/// can also track deltas via add().
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    if (enabled()) v_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// Raise to `v` if larger (high-watermark tracking).
  void set_max(std::int64_t v) noexcept {
    if (!enabled()) return;
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram of nonnegative integer samples (nanoseconds
/// from ScopedTimer, but any magnitude works: bytes, rows, survivors).
// Bucket i counts samples whose bit width is i, i.e. [2^(i-1), 2^i);
// quantiles interpolate linearly inside the bucket, so a reported
// quantile is within a factor of 2 of the exact order statistic (the
// metrics_test checks this against util/stats' exact quantile()).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width of uint64 ∈ [0, 64]

  void record(std::uint64_t v) noexcept {
    if (!enabled()) return;
    buckets_[std::bit_width(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max_value() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Approximate quantile (q in [0,1]); 0 when empty. Within 2x of the
  /// exact order statistic by the bucket-width bound.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Process-wide metric registry. Names are unique across kinds: asking
/// for counter("x") after gauge("x") exists is a precondition error —
/// exporters would otherwise emit ambiguous rows.
class Registry {
 public:
  /// The process-wide instance used by the free helpers below.
  static Registry& global();

  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHistogram& histogram(std::string_view name);

  /// Zero every metric's value; registrations (and references) survive.
  void reset_values();

  /// Scalar snapshot of a registered metric: counter value, gauge value,
  /// or histogram sample count. nullopt when `name` is not registered —
  /// lookup only, never creates (the time-series tick() snapshotter).
  std::optional<double> current_value(std::string_view name) const;

  /// {"counters": {name: value}, "gauges": {...},
  ///  "histograms": {name: {count, sum, mean, p50, p90, p99, max}}}
  /// Names sorted within each section; stable across runs.
  std::string to_json() const;

  /// One row per metric: kind,name,value,count,mean,p50,p90,p99,max
  /// (blank cells where a column does not apply to the kind).
  std::string to_csv() const;

  /// Write to_json() to `path`; false (with errno intact) on I/O failure.
  bool write_json(const std::string& path) const;

  std::vector<std::string> names() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry& find_or_create(std::string_view name, Kind kind);

  mutable std::mutex mu_;
  // std::map: node-based, so Entry addresses are stable across inserts.
  std::map<std::string, Entry, std::less<>> entries_;
};

/// Shorthands for Registry::global().
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
LatencyHistogram& histogram(std::string_view name);

/// RAII wall-clock probe recording elapsed nanoseconds into a histogram.
/// Reads the clock only when metrics are enabled at construction.
class ScopedTimer {
 public:
  explicit ScopedTimer(LatencyHistogram& h) noexcept
      : h_(enabled() ? &h : nullptr), start_(h_ != nullptr ? now_ns() : 0) {}
  ~ScopedTimer() {
    if (h_ != nullptr) h_->record(now_ns() - start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Monotonic nanoseconds (steady clock); exposed for the trace layer.
  static std::uint64_t now_ns() noexcept;

 private:
  LatencyHistogram* h_;
  std::uint64_t start_;
};

}  // namespace prlc::obs
