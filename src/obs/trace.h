// Chrome-tracing-format event recorder for simulation timelines.
//
// Simulation code (rounds, churn waves, block placement, refresh) emits
// events through the process-wide recorder; the output is the Trace Event
// Format JSON that chrome://tracing and Perfetto load directly:
//
//   {"traceEvents": [
//     {"name":"trial","cat":"persistence","ph":"B","ts":12,"pid":1,"tid":1},
//     {"name":"node_fail","cat":"churn","ph":"i","ts":40,"pid":1,"tid":1,
//      "s":"p","args":{"node":17}},
//     ...]}
//
// Capture is off by default: emit paths branch on a relaxed atomic and do
// nothing until start() — the same zero-overhead-when-disabled contract
// as the metrics probes. Timestamps are microseconds of steady-clock time
// since start(), appended under a mutex, so the event list is
// monotonically ordered (the trace_test golden check).
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prlc::obs {

/// One (key, numeric value) argument attached to a trace event.
using TraceArg = std::pair<std::string_view, double>;

class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// The process-wide recorder the instrumented library paths emit to.
  static TraceRecorder& global();

  /// Begin capturing; resets the clock epoch. Safe to call again (keeps
  /// already-captured events, keeps the original epoch).
  void start();
  /// Stop capturing; captured events remain until clear().
  void stop();
  void clear();
  bool capturing() const { return capturing_.load(std::memory_order_relaxed); }

  /// Instant event (phase "i", process scope).
  void instant(std::string_view name, std::string_view category,
               std::initializer_list<TraceArg> args = {});
  /// Duration events (phases "B"/"E"); must nest per thread, which the
  /// ScopedSpan RAII wrapper guarantees.
  void begin(std::string_view name, std::string_view category,
             std::initializer_list<TraceArg> args = {});
  void end(std::string_view name, std::string_view category);
  /// Counter event (phase "C") — Perfetto renders these as track graphs.
  void count(std::string_view name, std::string_view category,
             std::initializer_list<TraceArg> series);

  std::size_t events() const;

  /// Span-relevant slice of one captured event: just enough for the
  /// profile builder to replay per-thread B/E nesting.
  struct SpanEvent {
    char phase;
    std::uint64_t ts_us;
    std::uint32_t tid;
    std::string name;
  };
  /// Copy of every captured "B"/"E" event in capture order.
  std::vector<SpanEvent> span_events() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"}
  std::string to_json() const;
  /// Write to_json() to `path`; false on I/O failure.
  bool write(const std::string& path) const;

 private:
  struct Event {
    char phase;
    std::uint64_t ts_us;
    std::uint32_t tid;
    std::string name;
    std::string category;
    std::vector<std::pair<std::string, double>> args;
  };

  void push(char phase, std::string_view name, std::string_view category,
            std::initializer_list<TraceArg> args);

  std::atomic<bool> capturing_{false};
  mutable std::mutex mu_;
  std::uint64_t epoch_ns_ = 0;
  std::vector<Event> events_;
};

/// True when the global recorder is capturing — the cheap guard for emit
/// sites that would otherwise build argument lists for nothing.
inline bool trace_enabled() { return TraceRecorder::global().capturing(); }

/// RAII "B"/"E" pair on the global recorder.
class ScopedSpan {
 public:
  ScopedSpan(std::string_view name, std::string_view category,
             std::initializer_list<TraceArg> args = {})
      : active_(trace_enabled()), name_(name), category_(category) {
    if (active_) TraceRecorder::global().begin(name_, category_, args);
  }
  ~ScopedSpan() {
    if (active_) TraceRecorder::global().end(name_, category_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
  std::string name_;
  std::string category_;
};

}  // namespace prlc::obs
