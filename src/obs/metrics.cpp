#include "obs/metrics.h"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "util/check.h"
#include "util/json.h"

namespace prlc::obs {

namespace detail {

namespace {
bool env_enabled() {
  const char* v = std::getenv("PRLC_METRICS");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}
}  // namespace

std::atomic<bool> g_enabled{env_enabled()};

}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

double LatencyHistogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

double LatencyHistogram::quantile(double q) const {
  PRLC_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  // Snapshot the buckets once; concurrent writers may race individual
  // increments but each bucket read is atomic.
  std::uint64_t counts[kBuckets];
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  // Rank of the requested order statistic (nearest-rank, 1-based).
  const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] < rank) {
      seen += counts[i];
      continue;
    }
    // Interpolate linearly inside bucket i = [2^(i-1), 2^i) (bucket 0 is
    // the single value 0).
    if (i == 0) return 0.0;
    const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
    const double hi = lo * 2.0;
    const double within =
        static_cast<double>(rank - seen - 1) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * within;
  }
  return static_cast<double>(max_value());
}

void LatencyHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: usable during static destruction
  return *r;
}

Registry::Entry& Registry::find_or_create(std::string_view name, Kind kind) {
  PRLC_REQUIRE(!name.empty(), "metric name must be nonempty");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    PRLC_REQUIRE(it->second.kind == kind,
                 "metric '" + std::string(name) + "' already registered with another kind");
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<LatencyHistogram>();
      break;
  }
  return entries_.emplace(std::string(name), std::move(entry)).first->second;
}

Counter& Registry::counter(std::string_view name) {
  return *find_or_create(name, Kind::kCounter).counter;
}

Gauge& Registry::gauge(std::string_view name) {
  return *find_or_create(name, Kind::kGauge).gauge;
}

LatencyHistogram& Registry::histogram(std::string_view name) {
  return *find_or_create(name, Kind::kHistogram).histogram;
}

void Registry::reset_values() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->reset();
        break;
      case Kind::kGauge:
        entry.gauge->reset();
        break;
      case Kind::kHistogram:
        entry.histogram->reset();
        break;
    }
  }
}

std::optional<double> Registry::current_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  switch (it->second.kind) {
    case Kind::kCounter:
      return static_cast<double>(it->second.counter->value());
    case Kind::kGauge:
      return static_cast<double>(it->second.gauge->value());
    case Kind::kHistogram:
      return static_cast<double>(it->second.histogram->count());
  }
  return std::nullopt;
}

std::string Registry::to_json() const {
  json::Value counters = json::Value::object();
  json::Value gauges = json::Value::object();
  json::Value histograms = json::Value::object();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, entry] : entries_) {  // std::map: already sorted
      switch (entry.kind) {
        case Kind::kCounter:
          counters.set(name, entry.counter->value());
          break;
        case Kind::kGauge:
          gauges.set(name, entry.gauge->value());
          break;
        case Kind::kHistogram: {
          const LatencyHistogram& h = *entry.histogram;
          json::Value stats = json::Value::object();
          stats.set("count", h.count());
          stats.set("sum", h.sum());
          stats.set("mean", h.mean());
          stats.set("p50", h.p50());
          stats.set("p90", h.p90());
          stats.set("p99", h.p99());
          stats.set("max", h.max_value());
          histograms.set(name, std::move(stats));
          break;
        }
      }
    }
  }
  json::Value root = json::Value::object();
  root.set("counters", std::move(counters));
  root.set("gauges", std::move(gauges));
  root.set("histograms", std::move(histograms));
  return root.dump(2);
}

std::string Registry::to_csv() const {
  std::string out = "kind,name,value,count,mean,p50,p90,p99,max\n";
  auto num = [](double d) {
    std::string s = std::to_string(d);
    return s;
  };
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        out += "counter," + name + "," + std::to_string(entry.counter->value()) + ",,,,,,\n";
        break;
      case Kind::kGauge:
        out += "gauge," + name + "," + std::to_string(entry.gauge->value()) + ",,,,,,\n";
        break;
      case Kind::kHistogram: {
        const LatencyHistogram& h = *entry.histogram;
        out += "histogram," + name + ",," + std::to_string(h.count()) + "," + num(h.mean()) +
               "," + num(h.p50()) + "," + num(h.p90()) + "," + num(h.p99()) + "," +
               std::to_string(h.max_value()) + "\n";
        break;
      }
    }
  }
  return out;
}

bool Registry::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

std::vector<std::string> Registry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

Counter& counter(std::string_view name) { return Registry::global().counter(name); }
Gauge& gauge(std::string_view name) { return Registry::global().gauge(name); }
LatencyHistogram& histogram(std::string_view name) {
  return Registry::global().histogram(name);
}

std::uint64_t ScopedTimer::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace prlc::obs
