#include "obs/profile.h"

#include <algorithm>
#include <map>

#include "util/json.h"

namespace prlc::obs {

namespace {

/// Arena node used during folding: children keyed by name so repeated
/// spans merge, stored as arena indices so growth never invalidates the
/// per-thread stacks below.
struct RawNode {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t total_us = 0;
  std::map<std::string, std::size_t> children;
};

struct OpenSpan {
  std::size_t node;
  std::uint64_t begin_us;
};

std::size_t find_or_create_child(std::vector<RawNode>& arena, std::size_t parent,
                                 const std::string& name) {
  auto it = arena[parent].children.find(name);
  if (it != arena[parent].children.end()) return it->second;
  const std::size_t idx = arena.size();
  arena[parent].children.emplace(name, idx);
  arena.push_back(RawNode{name, 0, 0, {}});
  return idx;
}

ProfileNode materialize(const std::vector<RawNode>& arena, std::size_t idx) {
  const RawNode& raw = arena[idx];
  ProfileNode node;
  node.name = raw.name;
  node.count = raw.count;
  node.total_us = raw.total_us;
  std::uint64_t child_total = 0;
  for (const auto& [name, child_idx] : raw.children) {  // std::map: name order
    node.children.push_back(materialize(arena, child_idx));
    child_total += node.children.back().total_us;
  }
  // Clamp: overlapping child spans (or clock granularity) can make the
  // children sum past the parent; self time never goes negative.
  node.self_us = node.total_us > child_total ? node.total_us - child_total : 0;
  return node;
}

json::Value node_to_value(const ProfileNode& node) {
  json::Value v = json::Value::object();
  v.set("name", node.name);
  v.set("count", node.count);
  v.set("total_us", node.total_us);
  v.set("self_us", node.self_us);
  json::Value children = json::Value::array();
  for (const ProfileNode& c : node.children) children.push_back(node_to_value(c));
  v.set("children", std::move(children));
  return v;
}

void node_to_text(const ProfileNode& node, std::size_t depth, std::string& out) {
  out.append(depth * 2, ' ');
  out += node.name;
  if (node.count > 0) {
    out += " x";
    out += std::to_string(node.count);
  }
  out += "  total ";
  out += std::to_string(node.total_us);
  out += "us  self ";
  out += std::to_string(node.self_us);
  out += "us\n";
  for (const ProfileNode& c : node.children) node_to_text(c, depth + 1, out);
}

}  // namespace

ProfileNode build_profile(const std::vector<TraceRecorder::SpanEvent>& events) {
  std::vector<RawNode> arena;
  arena.push_back(RawNode{"root", 0, 0, {}});

  // Replay one B/E stack per tid; the event list is mutex-ordered, so a
  // single pass with per-tid stacks reconstructs every thread's nesting.
  std::map<std::uint32_t, std::vector<OpenSpan>> stacks;
  std::uint64_t last_ts = 0;
  for (const TraceRecorder::SpanEvent& e : events) {
    last_ts = std::max(last_ts, e.ts_us);
    std::vector<OpenSpan>& stack = stacks[e.tid];
    if (e.phase == 'B') {
      const std::size_t parent = stack.empty() ? 0 : stack.back().node;
      stack.push_back(OpenSpan{find_or_create_child(arena, parent, e.name), e.ts_us});
    } else if (e.phase == 'E') {
      // Tolerant close: pop whatever is open (name mismatches happen when
      // a trace was started mid-span); an E with nothing open is dropped.
      if (stack.empty()) continue;
      arena[stack.back().node].count += 1;
      arena[stack.back().node].total_us += e.ts_us - stack.back().begin_us;
      stack.pop_back();
    }
  }
  // Close spans still open when capture stopped at the last seen time.
  for (auto& [tid, stack] : stacks) {
    while (!stack.empty()) {
      arena[stack.back().node].count += 1;
      arena[stack.back().node].total_us += last_ts - stack.back().begin_us;
      stack.pop_back();
    }
  }

  for (const auto& [name, idx] : arena[0].children) {
    arena[0].total_us += arena[idx].total_us;
  }
  return materialize(arena, 0);
}

ProfileNode build_profile(const TraceRecorder& rec) {
  return build_profile(rec.span_events());
}

std::string profile_to_json(const ProfileNode& root) {
  return node_to_value(root).dump(1);
}

std::string profile_to_text(const ProfileNode& root) {
  std::string out;
  node_to_text(root, 0, out);
  return out;
}

}  // namespace prlc::obs
