// Deterministic logical-time series on top of the trial context.
//
// Two recording modes share one output format:
//
//   * sample(series, value) — the experiment hands over a value it
//     computed itself (per-level surviving blocks, decodability margin,
//     retry pressure). Samples are stamped with the trial context's
//     (run, trial, logical time) plus a per-trial sequence number and
//     ring-buffered exactly like journal events, so the exported JSONL is
//     byte-identical at any thread count. This is the only mode that is
//     safe inside parallel trials.
//   * watch(name) + tick(t) — snapshot selected Registry metrics
//     (counter value, gauge value, histogram count) at explicit ticks.
//     Registry metrics are process-global, so this mode is for serial
//     contexts only (`prlc metrics`, single-threaded timelines); under
//     parallel trials the snapshots would interleave arbitrarily.
//
// Hot-path contract matches the journal: sample() is a relaxed load plus
// a branch when disabled, allocation-free always (rings preallocate at
// TrialScope open), and a no-op outside a TrialScope.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/events.h"

namespace prlc::obs {

/// Stable handle for one named series; resolve once outside the trial
/// loop (resolution takes a mutex), then sample through the handle.
using SeriesId = std::uint32_t;

class TimeSeriesRecorder {
 public:
  static TimeSeriesRecorder& global();

  /// Find-or-create the id for `name`. Ids are process-local; the export
  /// is keyed by name, so id assignment order never shows in the output.
  SeriesId series(std::string_view name);

  /// Record `value` for `series` at the current trial's logical time.
  /// No-op when disabled or outside a TrialScope.
  void sample(SeriesId series, double value) {
    if (timeseries_enabled()) detail::sample_slow(series, value);
  }

  /// Registry-snapshot mode: watch a metric by name, then snapshot every
  /// watched metric at each tick(t). Serial contexts only (see header).
  void watch(std::string_view metric_name);
  void tick(std::uint64_t t);

  /// Ring capacity (samples per trial) for scopes opened after the call.
  void set_trial_capacity(std::size_t cap);
  std::size_t trial_capacity() const;

  std::size_t samples() const;    ///< flushed samples currently held
  std::uint64_t dropped() const;  ///< ring-overflow losses
  void clear();

  /// One JSON object per line, sorted by (run, trial, t, seq):
  ///   {"run":0,"trial":2,"t":3,"seq":1,"series":"persistence.margin.l1",
  ///    "value":-4}
  std::string to_jsonl() const;
  /// Same data grouped per series: {"series":[{"name":..,"points":[..]}]}.
  std::string to_json() const;
  bool write_jsonl(const std::string& path) const;

  // Internal: TrialScope::close() hands its ring over.
  void flush_trial(std::int64_t run, std::uint64_t trial,
                   std::vector<detail::Sample>&& ring, std::uint64_t emitted);

 private:
  struct TrialRecord {
    std::int64_t run;
    std::uint64_t trial;
    std::vector<detail::Sample> samples;
  };

  /// Sorted flat view of every sample, used by both exporters.
  struct FlatSample {
    std::int64_t run;
    std::uint64_t trial;
    detail::Sample s;
  };
  std::vector<FlatSample> sorted_samples() const;

  mutable std::mutex mu_;
  std::vector<std::string> names_;     ///< series id -> name
  std::vector<std::string> watched_;   ///< Registry metric names for tick()
  std::vector<TrialRecord> records_;
  std::uint64_t dropped_ = 0;
  std::atomic<std::size_t> capacity_{1u << 16};
};

/// Shorthand: resolve against the global recorder.
inline SeriesId timeseries(std::string_view name) {
  return TimeSeriesRecorder::global().series(name);
}
/// Shorthand: sample on the global recorder.
inline void sample(SeriesId series, double value) {
  TimeSeriesRecorder::global().sample(series, value);
}

}  // namespace prlc::obs
