#include "obs/trace.h"

#include <fstream>

#include "obs/metrics.h"
#include "util/json.h"

namespace prlc::obs {

namespace {

/// Per-thread trace ordinal, assigned on a thread's first push. The main
/// (first-emitting) thread gets tid 1, matching the historical constant.
std::atomic<std::uint32_t> g_next_tid{1};

std::uint32_t this_thread_tid() {
  thread_local std::uint32_t tid = 0;
  if (tid == 0) tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder* r = new TraceRecorder();  // leaked: see Registry::global
  return *r;
}

void TraceRecorder::start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_ns_ == 0) epoch_ns_ = ScopedTimer::now_ns();
  capturing_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::stop() { capturing_.store(false, std::memory_order_relaxed); }

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  epoch_ns_ = 0;
}

void TraceRecorder::push(char phase, std::string_view name, std::string_view category,
                         std::initializer_list<TraceArg> args) {
  if (!capturing()) return;
  const std::uint64_t now = ScopedTimer::now_ns();
  const std::uint32_t tid = this_thread_tid();
  std::lock_guard<std::mutex> lock(mu_);
  Event& e = events_.emplace_back();
  e.phase = phase;
  e.ts_us = (now - epoch_ns_) / 1000;
  e.tid = tid;
  e.name = name;
  e.category = category;
  e.args.reserve(args.size());
  for (const auto& [k, v] : args) e.args.emplace_back(std::string(k), v);
}

void TraceRecorder::instant(std::string_view name, std::string_view category,
                            std::initializer_list<TraceArg> args) {
  push('i', name, category, args);
}

void TraceRecorder::begin(std::string_view name, std::string_view category,
                          std::initializer_list<TraceArg> args) {
  push('B', name, category, args);
}

void TraceRecorder::end(std::string_view name, std::string_view category) {
  push('E', name, category, {});
}

void TraceRecorder::count(std::string_view name, std::string_view category,
                          std::initializer_list<TraceArg> series) {
  push('C', name, category, series);
}

std::size_t TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceRecorder::SpanEvent> TraceRecorder::span_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanEvent> out;
  for (const Event& e : events_) {
    if (e.phase != 'B' && e.phase != 'E') continue;
    out.push_back(SpanEvent{e.phase, e.ts_us, e.tid, e.name});
  }
  return out;
}

std::string TraceRecorder::to_json() const {
  json::Value list = json::Value::array();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const Event& e : events_) {
      json::Value ev = json::Value::object();
      ev.set("name", e.name);
      ev.set("cat", e.category);
      ev.set("ph", std::string(1, e.phase));
      ev.set("ts", e.ts_us);
      ev.set("pid", 1);
      ev.set("tid", static_cast<std::uint64_t>(e.tid));
      if (e.phase == 'i') ev.set("s", "p");  // process-scoped instant
      if (!e.args.empty()) {
        json::Value args = json::Value::object();
        for (const auto& [k, v] : e.args) args.set(k, v);
        ev.set("args", std::move(args));
      }
      list.push_back(std::move(ev));
    }
  }
  json::Value root = json::Value::object();
  root.set("traceEvents", std::move(list));
  root.set("displayTimeUnit", "ms");
  return root.dump(1);
}

bool TraceRecorder::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json() << "\n";
  return static_cast<bool>(out);
}

}  // namespace prlc::obs
