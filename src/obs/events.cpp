#include "obs/events.h"

#include <algorithm>
#include <cstdlib>

#include "obs/timeseries.h"
#include "util/check.h"
#include "util/json.h"

namespace prlc::obs {

namespace detail {

namespace {

bool env_telemetry_on() {
  const char* v = std::getenv("PRLC_TELEMETRY");
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

/// The currently recording trial, one per thread. Only TrialScope mutates
/// `active`; emit paths read it through current_context().
thread_local TrialContext t_ctx;

std::atomic<std::uint64_t> g_next_run{0};

/// Ring write shared by events and samples: overwrite-oldest once the
/// preallocated capacity is full. `emitted` counts every attempt, so the
/// chronological order can be reconstructed at flush time.
template <typename Rec>
void ring_push(std::vector<Rec>& ring, std::uint64_t emitted, std::size_t cap, Rec rec) {
  if (ring.size() < cap) {
    ring.push_back(rec);
  } else if (cap > 0) {
    ring[static_cast<std::size_t>(emitted % cap)] = rec;
  }
}

/// Unroll a ring into chronological order: when it overflowed, the oldest
/// surviving record sits at emitted % cap.
template <typename Rec>
void ring_unroll(std::vector<Rec>& ring, std::uint64_t emitted) {
  if (emitted > ring.size() && !ring.empty()) {
    std::rotate(ring.begin(),
                ring.begin() + static_cast<std::ptrdiff_t>(emitted % ring.size()),
                ring.end());
  }
}

}  // namespace

std::atomic<bool> g_events_enabled{env_telemetry_on()};
std::atomic<bool> g_timeseries_enabled{env_telemetry_on()};

void emit_slow(EventType type, std::uint8_t argc, double a0, double a1, double a2) {
  TrialContext& ctx = t_ctx;
  if (!ctx.active) return;
  const std::size_t cap = EventJournal::global().trial_capacity();
  if (ctx.events.capacity() == 0 && cap > 0) ctx.events.reserve(cap);
  ring_push(ctx.events, ctx.events_emitted, cap,
            Event{ctx.t, ctx.event_seq, type, argc, {a0, a1, a2}});
  ++ctx.events_emitted;
  ++ctx.event_seq;
}

void sample_slow(std::uint32_t series, double value) {
  TrialContext& ctx = t_ctx;
  if (!ctx.active) return;
  const std::size_t cap = TimeSeriesRecorder::global().trial_capacity();
  if (ctx.samples.capacity() == 0 && cap > 0) ctx.samples.reserve(cap);
  ring_push(ctx.samples, ctx.samples_emitted, cap,
            Sample{series, ctx.sample_seq, ctx.t, value});
  ++ctx.samples_emitted;
  ++ctx.sample_seq;
}

void set_logical_time_slow(std::uint64_t t) {
  if (t_ctx.active) t_ctx.t = t;
}

TrialContext* current_context() { return t_ctx.active ? &t_ctx : nullptr; }

}  // namespace detail

void set_events_enabled(bool on) {
  detail::g_events_enabled.store(on, std::memory_order_relaxed);
}

void set_timeseries_enabled(bool on) {
  detail::g_timeseries_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t begin_telemetry_run() {
  return detail::g_next_run.fetch_add(1, std::memory_order_relaxed);
}

void TrialScope::open(std::uint64_t run, std::uint64_t trial) {
  using detail::t_ctx;
  saved_ = std::move(t_ctx);
  t_ctx = detail::TrialContext{};
  t_ctx.active = true;
  t_ctx.run = static_cast<std::int64_t>(run);
  t_ctx.trial = trial;
  if (events_enabled()) t_ctx.events.reserve(EventJournal::global().trial_capacity());
  if (timeseries_enabled()) {
    t_ctx.samples.reserve(TimeSeriesRecorder::global().trial_capacity());
  }
  opened_ = true;
}

void TrialScope::close() {
  using detail::t_ctx;
  detail::ring_unroll(t_ctx.events, t_ctx.events_emitted);
  detail::ring_unroll(t_ctx.samples, t_ctx.samples_emitted);
  if (t_ctx.events_emitted > 0) {
    EventJournal::global().flush_trial(t_ctx.run, t_ctx.trial, std::move(t_ctx.events),
                                       t_ctx.events_emitted);
  }
  if (t_ctx.samples_emitted > 0) {
    TimeSeriesRecorder::global().flush_trial(t_ctx.run, t_ctx.trial,
                                             std::move(t_ctx.samples),
                                             t_ctx.samples_emitted);
  }
  t_ctx = std::move(saved_);
}

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kNodeFailed:
      return "node_failed";
    case EventType::kRefreshRound:
      return "refresh_round";
    case EventType::kFetchRetry:
      return "fetch_retry";
    case EventType::kFetchHedged:
      return "fetch_hedged";
    case EventType::kBudgetExhausted:
      return "budget_exhausted";
    case EventType::kWatermarkAdvance:
      return "watermark_advance";
    case EventType::kRowDensified:
      return "row_densified";
    case EventType::kPeel:
      return "peel";
    case EventType::kIntegrityViolation:
      return "integrity_violation";
    case EventType::kNodeQuarantined:
      return "node_quarantined";
  }
  PRLC_ASSERT(false, "unknown event type");
}

const EventArgNames& event_arg_names(EventType type) {
  static const EventArgNames kTables[kEventTypeCount] = {
      /* kNodeFailed       */ {{"node", nullptr, nullptr}},
      /* kRefreshRound     */ {{"rebuilt", "unrecoverable", "lost"}},
      /* kFetchRetry       */ {{"node", "attempt", nullptr}},
      /* kFetchHedged      */ {{"node", nullptr, nullptr}},
      /* kBudgetExhausted  */ {{"node", "faults", nullptr}},
      /* kWatermarkAdvance */ {{"prefix_blocks", "equations", nullptr}},
      /* kRowDensified     */ {{"pivot", "width", nullptr}},
      /* kPeel             */ {{"pivot", nullptr, nullptr}},
      /* kIntegrityViolation */ {{"node", "location", nullptr}},
      /* kNodeQuarantined    */ {{"node", nullptr, nullptr}},
  };
  const auto idx = static_cast<std::size_t>(type);
  PRLC_ASSERT(idx < kEventTypeCount, "unknown event type");
  return kTables[idx];
}

EventJournal& EventJournal::global() {
  static EventJournal* j = new EventJournal();  // leaked: see Registry::global
  return *j;
}

void EventJournal::set_trial_capacity(std::size_t cap) {
  capacity_.store(cap, std::memory_order_relaxed);
}

std::size_t EventJournal::trial_capacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

std::size_t EventJournal::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const TrialRecord& r : records_) n += r.events.size();
  return n;
}

std::uint64_t EventJournal::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void EventJournal::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_ = 0;
}

void EventJournal::flush_trial(std::int64_t run, std::uint64_t trial,
                               std::vector<detail::Event>&& ring, std::uint64_t emitted) {
  std::lock_guard<std::mutex> lock(mu_);
  dropped_ += emitted - ring.size();
  records_.push_back(TrialRecord{run, trial, std::move(ring)});
}

std::string EventJournal::to_jsonl() const {
  std::vector<const TrialRecord*> order;
  std::lock_guard<std::mutex> lock(mu_);
  order.reserve(records_.size());
  for (const TrialRecord& r : records_) order.push_back(&r);
  std::stable_sort(order.begin(), order.end(),
                   [](const TrialRecord* a, const TrialRecord* b) {
                     return a->run != b->run ? a->run < b->run : a->trial < b->trial;
                   });
  std::string out;
  std::vector<detail::Event> events;
  for (const TrialRecord* r : order) {
    // Emission order already equals seq order; the logical clock is
    // nondecreasing in every current emitter, but the documented merge
    // key is (run, trial, t, seq), so sort to keep the contract honest.
    events = r->events;
    std::stable_sort(events.begin(), events.end(),
                     [](const detail::Event& a, const detail::Event& b) {
                       return a.t != b.t ? a.t < b.t : a.seq < b.seq;
                     });
    for (const detail::Event& e : events) {
      json::Value line = json::Value::object();
      line.set("run", json::Value(r->run));
      line.set("trial", json::Value(r->trial));
      line.set("t", json::Value(e.t));
      line.set("seq", json::Value(static_cast<std::uint64_t>(e.seq)));
      line.set("event", json::Value(to_string(e.type)));
      const EventArgNames& names = event_arg_names(e.type);
      for (std::size_t a = 0; a < e.argc && names.names[a] != nullptr; ++a) {
        line.set(names.names[a], json::Value(e.args[a]));
      }
      out += line.dump(-1);
      out.push_back('\n');
    }
  }
  return out;
}

bool EventJournal::write(const std::string& path) const {
  try {
    json::write_file(path, to_jsonl());
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

void reset_telemetry() {
  EventJournal::global().clear();
  TimeSeriesRecorder::global().clear();
  detail::g_next_run.store(0, std::memory_order_relaxed);
}

}  // namespace prlc::obs
