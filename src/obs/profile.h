// Span aggregation: fold TraceRecorder "B"/"E" events into a self/total
// time profile tree.
//
// The trace is a flat, mutex-ordered event list; spans nest per thread
// (ScopedSpan guarantees LIFO within a thread). The builder replays one
// B/E stack per tid and merges same-named children at each level, so
// `decode` called 50 times under `trial` becomes one node with count 50.
// Threads merge into the same tree — a span name means the same work
// regardless of which pool thread ran it.
//
// Robustness over strictness: an unmatched "E" is ignored, and spans left
// open at the end of the trace are closed at the last observed timestamp,
// so a profile can be built from a trace that was stopped mid-run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace prlc::obs {

struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;     ///< times a span with this name+path closed
  std::uint64_t total_us = 0;  ///< wall time including children
  std::uint64_t self_us = 0;   ///< total minus time attributed to children
  std::vector<ProfileNode> children;  ///< sorted by name
};

/// Aggregate the recorder's captured spans into a forest under a synthetic
/// root named "root" (total = sum of top-level spans). Deterministic for a
/// fixed event list: children sorted by name at every level.
ProfileNode build_profile(const TraceRecorder& rec);
ProfileNode build_profile(const std::vector<TraceRecorder::SpanEvent>& events);

/// {"name","count","total_us","self_us","children":[...]} — children in
/// name order, matching the in-memory tree.
std::string profile_to_json(const ProfileNode& root);

/// Indented human-readable rendering for `prlc metrics`:
///   root                total 1234us
///     decode   x50      total 1000us  self 400us
std::string profile_to_text(const ProfileNode& root);

}  // namespace prlc::obs
