// Typed structured event journal with deterministic multi-thread merge.
//
// Experiments emit *typed* events (node_failed, fetch_retry, peel, ...)
// stamped with logical time — the experiment's own tick counter (churn
// wave, refresh round, fault-sweep step), never the wall clock — so the
// journal is a deterministic record of *what the simulation did*, not of
// how the host scheduled it.
//
// Determinism contract (the telemetry analogue of TrialRunner's
// counter-based seed streams):
//   * Events are recorded into a per-trial bounded ring buffer that lives
//     in thread-local storage while a TrialScope is open. A trial runs
//     entirely on one thread (TrialRunner invariant), so its events are
//     recorded in program order with a per-trial sequence number, no
//     cross-thread interleaving possible.
//   * TrialRunner::run() allocates one run id per invocation (on the
//     calling thread, so the id sequence is the program's experiment
//     order) and opens TrialScope(run, trial) around every trial.
//   * At scope exit the trial's ring is flushed into the process-wide
//     journal under a mutex; export sorts by (run, trial, time, seq).
//     The sort key contains nothing thread-dependent, so the JSONL bytes
//     are identical at any --threads value.
//   * Ring overflow overwrites the oldest events. Capacity is per trial,
//     so which events drop is a function of the trial alone.
//
// Zero overhead when disabled: emit() is a relaxed atomic load plus a
// predictable branch, no allocation, no shared cache line — the same
// contract as the metrics probes (asserted by tests/obs/noalloc_guard).
// Events emitted outside any TrialScope are dropped even when enabled:
// an ambient buffer shared by arbitrary threads could not merge
// deterministically, so there deliberately isn't one.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace prlc::obs {

/// The journal's closed event vocabulary. Typed (rather than free-form
/// strings) so emit sites stay allocation-free and downstream tooling can
/// switch on the kind.
enum class EventType : std::uint8_t {
  kNodeFailed,        ///< churn killed a node            (node)
  kRefreshRound,      ///< maintainer refresh completed   (rebuilt, unrecoverable, lost)
  kFetchRetry,        ///< collector retried a fetch      (node, attempt)
  kFetchHedged,       ///< collector issued a hedge fetch (node)
  kBudgetExhausted,   ///< node blacklisted by fault budget (node, faults)
  kWatermarkAdvance,  ///< decoder decoded-prefix grew    (prefix_blocks, equations)
  kRowDensified,      ///< sparse row crossed the density threshold (pivot, width)
  kPeel,              ///< degree-1 elimination fast path (pivot)
  kIntegrityViolation,  ///< fingerprint caught a forged/rotten frame (node, location)
  kNodeQuarantined,     ///< node removed after an integrity violation (node)
};
inline constexpr std::size_t kEventTypeCount = 10;

/// Stable wire name ("node_failed", "fetch_retry", ...).
const char* to_string(EventType type);

/// Per-type argument names; nullptr past the type's arity. Shared static
/// tables so emit sites pass bare doubles.
struct EventArgNames {
  const char* names[3];
};
const EventArgNames& event_arg_names(EventType type);

namespace detail {

extern std::atomic<bool> g_events_enabled;
extern std::atomic<bool> g_timeseries_enabled;

/// One journal record: fixed-size, no heap members, so the hot emit path
/// is a handful of stores into a preallocated ring slot.
struct Event {
  std::uint64_t t;    ///< logical time at emission
  std::uint32_t seq;  ///< per-trial emission index
  EventType type;
  std::uint8_t argc;
  double args[3];
};

/// One time-series sample (see obs/timeseries.h); recorded through the
/// same trial context so both outputs share (run, trial, t) coordinates.
struct Sample {
  std::uint32_t series;  ///< TimeSeriesRecorder id
  std::uint32_t seq;     ///< per-trial sample index
  std::uint64_t t;
  double value;
};

/// Thread-local recording state for the currently open TrialScope.
struct TrialContext {
  bool active = false;
  std::int64_t run = -1;
  std::uint64_t trial = 0;
  std::uint64_t t = 0;  ///< logical clock, set via set_logical_time()
  std::uint64_t events_emitted = 0;
  std::uint64_t samples_emitted = 0;
  std::uint32_t event_seq = 0;
  std::uint32_t sample_seq = 0;
  std::vector<Event> events;    ///< ring, capacity fixed at scope open
  std::vector<Sample> samples;  ///< ring, capacity fixed at scope open
};

void emit_slow(EventType type, std::uint8_t argc, double a0, double a1, double a2);
void sample_slow(std::uint32_t series, double value);
void set_logical_time_slow(std::uint64_t t);

}  // namespace detail

/// Journal probe switch. Defaults off (PRLC_TELEMETRY=1 preseeds it);
/// --events-jsonl and the tests arm it explicitly.
inline bool events_enabled() {
  return detail::g_events_enabled.load(std::memory_order_relaxed);
}
void set_events_enabled(bool on);

/// Time-series probe switch (see obs/timeseries.h), declared here because
/// TrialScope serves both recorders.
inline bool timeseries_enabled() {
  return detail::g_timeseries_enabled.load(std::memory_order_relaxed);
}
void set_timeseries_enabled(bool on);

/// Emit one event into the current trial's ring. No-op when the journal
/// is disabled or no TrialScope is open on this thread.
inline void emit(EventType type) {
  if (events_enabled()) detail::emit_slow(type, 0, 0, 0, 0);
}
inline void emit(EventType type, double a0) {
  if (events_enabled()) detail::emit_slow(type, 1, a0, 0, 0);
}
inline void emit(EventType type, double a0, double a1) {
  if (events_enabled()) detail::emit_slow(type, 2, a0, a1, 0);
}
inline void emit(EventType type, double a0, double a1, double a2) {
  if (events_enabled()) detail::emit_slow(type, 3, a0, a1, a2);
}

/// Set the trial-local logical clock; experiments call this once per
/// tick (churn point, refresh wave, fault scale). No-op without a scope.
inline void set_logical_time(std::uint64_t t) {
  if (events_enabled() || timeseries_enabled()) detail::set_logical_time_slow(t);
}

/// Next telemetry run id. TrialRunner::run() calls this once per
/// invocation *on the calling thread*, so ids follow the program's
/// experiment order regardless of worker count. reset_telemetry()
/// rewinds it for in-process determinism tests.
std::uint64_t begin_telemetry_run();

/// RAII trial recording scope: opens the thread-local context (saving any
/// enclosing scope — the serial TrialRunner path nests inside a manual
/// scope in tests) and flushes the rings to the process-wide journal /
/// time-series recorder on close. Construction is a no-op when both
/// recorders are disabled.
class TrialScope {
 public:
  TrialScope(std::uint64_t run, std::uint64_t trial) {
    if (events_enabled() || timeseries_enabled()) open(run, trial);
  }
  ~TrialScope() {
    if (opened_) close();
  }
  TrialScope(const TrialScope&) = delete;
  TrialScope& operator=(const TrialScope&) = delete;

 private:
  void open(std::uint64_t run, std::uint64_t trial);
  void close();

  bool opened_ = false;
  detail::TrialContext saved_;
};

/// Process-wide journal the trial rings flush into.
class EventJournal {
 public:
  static EventJournal& global();

  /// Ring capacity (events per trial) for scopes opened after the call.
  void set_trial_capacity(std::size_t cap);
  std::size_t trial_capacity() const;

  std::size_t events() const;   ///< flushed events currently held
  std::uint64_t dropped() const;  ///< ring-overflow losses across all trials
  void clear();

  /// One JSON object per line, sorted by (run, trial, t, seq):
  ///   {"run":0,"trial":3,"t":1,"seq":0,"event":"fetch_retry",
  ///    "node":17,"attempt":1}
  /// Byte-identical for byte-identical experiment configurations.
  std::string to_jsonl() const;
  bool write(const std::string& path) const;

  // Internal: TrialScope::close() hands its ring over.
  void flush_trial(std::int64_t run, std::uint64_t trial,
                   std::vector<detail::Event>&& ring, std::uint64_t emitted);

 private:
  struct TrialRecord {
    std::int64_t run;
    std::uint64_t trial;
    std::vector<detail::Event> events;  ///< in emission order
  };

  mutable std::mutex mu_;
  std::vector<TrialRecord> records_;
  std::uint64_t dropped_ = 0;
  std::atomic<std::size_t> capacity_{1u << 16};
};

/// Clear the journal, the time-series recorder, and the run-id counter —
/// the full telemetry reset the in-process determinism tests need
/// between repetitions of the same experiment.
void reset_telemetry();

}  // namespace prlc::obs
