// A coded block: one linear combination of source blocks (Sec. 3.1).
#pragma once

#include <cstddef>
#include <vector>

#include "gf/field_concept.h"

namespace prlc::codes {

/// Self-describing coded block. `coeffs` always spans all N source blocks
/// (entries outside the scheme's support are zero); `payload` is the coded
/// data itself and is empty in coefficient-only simulations, where only
/// decodability is measured.
template <gf::FieldPolicy F>
struct CodedBlock {
  using Symbol = typename F::Symbol;

  std::size_t level = 0;         ///< 0-indexed priority level of this block
  std::vector<Symbol> coeffs;    ///< beta_{i,1..N} in the paper's notation
  std::vector<Symbol> payload;   ///< c_i = sum_j beta_{i,j} x_j
};

}  // namespace prlc::codes
