// A coded block: one linear combination of source blocks (Sec. 3.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gf/field_concept.h"

namespace prlc::codes {

/// Self-describing coded block. `coeffs` always spans all N source blocks
/// (entries outside the scheme's support are zero); `payload` is the coded
/// data itself and is empty in coefficient-only simulations, where only
/// decodability is measured.
template <gf::FieldPolicy F>
struct CodedBlock {
  using Symbol = typename F::Symbol;

  std::size_t level = 0;         ///< 0-indexed priority level of this block
  std::vector<Symbol> coeffs;    ///< beta_{i,1..N} in the paper's notation
  std::vector<Symbol> payload;   ///< c_i = sum_j beta_{i,j} x_j
};

/// Sparse coded block: the same equation as CodedBlock, stored as sorted
/// (index, value) pairs over the nonzero support only. This is the native
/// currency of the O(ln N)-sparse encoders and the hybrid peeling/GE
/// decoder path — at N = 10^5 a dense coefficient vector would dwarf the
/// payload it describes. PriorityEncoder::encode_sparse() emits blocks
/// whose expansion is bit-identical to encode()'s dense output.
template <gf::FieldPolicy F>
struct SparseCodedBlock {
  using Symbol = typename F::Symbol;

  std::size_t level = 0;               ///< 0-indexed priority level
  std::vector<std::uint32_t> indices;  ///< strictly increasing support columns
  std::vector<Symbol> values;          ///< nonzero coefficients matching indices
  std::vector<Symbol> payload;         ///< c_i = sum_k values[k] x_{indices[k]}
};

}  // namespace prlc::codes
