#include "codes/wire_format.h"

#include <cstring>

#include "util/check.h"
#include "util/crc32.h"

namespace prlc::codes {

namespace {

constexpr std::uint8_t kMagic[4] = {'P', 'R', 'L', 'C'};
constexpr std::uint8_t kVersion = 1;
constexpr std::uint32_t kDense = 0;
constexpr std::uint32_t kSparse = 1;

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }

  std::uint32_t u32() {
    need(4);
    const std::uint32_t v = static_cast<std::uint32_t>(bytes_[pos_]) |
                            static_cast<std::uint32_t>(bytes_[pos_ + 1]) << 8 |
                            static_cast<std::uint32_t>(bytes_[pos_ + 2]) << 16 |
                            static_cast<std::uint32_t>(bytes_[pos_ + 3]) << 24;
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | static_cast<std::uint64_t>(u32()) << 32;
  }

  std::span<const std::uint8_t> raw(std::size_t n) {
    need(n);
    auto out = bytes_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::size_t position() const { return pos_; }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t n) {
    if (remaining() < n) throw WireFormatError("truncated coded block");
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

std::uint8_t scheme_byte(Scheme s) {
  switch (s) {
    case Scheme::kRlc:
      return 0;
    case Scheme::kSlc:
      return 1;
    case Scheme::kPlc:
      return 2;
  }
  PRLC_ASSERT(false, "unknown scheme");
}

Scheme scheme_from_byte(std::uint8_t b) {
  switch (b) {
    case 0:
      return Scheme::kRlc;
    case 1:
      return Scheme::kSlc;
    case 2:
      return Scheme::kPlc;
    default:
      throw WireFormatError("unknown scheme byte " + std::to_string(b));
  }
}

}  // namespace

std::vector<std::uint8_t> encode_wire(Scheme scheme, const CodedBlockView& block) {
  PRLC_REQUIRE(!block.coeffs.empty(), "cannot serialize a block with no coefficients");

  std::size_t nnz = 0;
  for (auto c : block.coeffs) nnz += c != 0 ? 1 : 0;
  // Sparse entry costs 5 bytes vs 1 for dense; plus a 4-byte count.
  const bool sparse = 4 + nnz * 5 < block.coeffs.size();

  std::vector<std::uint8_t> out;
  out.reserve(32 + (sparse ? 4 + nnz * 5 : block.coeffs.size()) + block.payload.size());
  for (std::uint8_t m : kMagic) out.push_back(m);
  out.push_back(kVersion);
  out.push_back(scheme_byte(scheme));
  out.push_back(0);
  out.push_back(0);
  put_u32(out, static_cast<std::uint32_t>(block.level));
  put_u32(out, static_cast<std::uint32_t>(block.coeffs.size()));
  put_u32(out, static_cast<std::uint32_t>(block.payload.size()));
  put_u32(out, sparse ? kSparse : kDense);
  if (sparse) {
    put_u32(out, static_cast<std::uint32_t>(nnz));
    for (std::size_t j = 0; j < block.coeffs.size(); ++j) {
      if (block.coeffs[j] != 0) {
        put_u32(out, static_cast<std::uint32_t>(j));
        out.push_back(block.coeffs[j]);
      }
    }
  } else {
    // memcpy instead of insert: sidesteps a GCC 12 -Wstringop-overflow
    // false positive on vector range-insert after reserve.
    const std::size_t base = out.size();
    out.resize(base + block.coeffs.size());
    std::memcpy(out.data() + base, block.coeffs.data(), block.coeffs.size());
  }
  if (!block.payload.empty()) {
    const std::size_t base = out.size();
    out.resize(base + block.payload.size());
    std::memcpy(out.data() + base, block.payload.data(), block.payload.size());
  }
  put_u32(out, crc32(std::span<const std::uint8_t>(out)));
  return out;
}

std::vector<std::uint8_t> encode_wire(Scheme scheme, const CodedBlock<gf::Gf256>& block) {
  return encode_wire(scheme, CodedBlockView{.level = block.level,
                                           .coeffs = block.coeffs,
                                           .payload = block.payload});
}

void WireBlockView::expand_coeffs(std::span<std::uint8_t> out) const {
  PRLC_REQUIRE(out.size() == coeff_width, "coefficient output span has the wrong width");
  if (!dense_coeffs.empty()) {
    std::memcpy(out.data(), dense_coeffs.data(), coeff_width);
    return;
  }
  std::memset(out.data(), 0, out.size());
  const std::uint8_t* p = sparse_entries.data();
  for (std::uint32_t i = 0; i < sparse_count; ++i, p += 5) {
    const std::uint32_t idx = static_cast<std::uint32_t>(p[0]) |
                              static_cast<std::uint32_t>(p[1]) << 8 |
                              static_cast<std::uint32_t>(p[2]) << 16 |
                              static_cast<std::uint32_t>(p[3]) << 24;
    out[idx] = p[4];  // indices were bounds-checked by decode_wire_view
  }
}

WireBlockView decode_wire_view(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 28) throw WireFormatError("shorter than the minimal frame");
  // CRC covers everything before the trailing 4 bytes.
  const auto body = bytes.subspan(0, bytes.size() - 4);
  Reader crc_reader(bytes.subspan(bytes.size() - 4));
  const std::uint32_t want_crc = crc_reader.u32();
  if (crc32(body) != want_crc) throw WireFormatError("CRC mismatch (corrupt block)");

  Reader r(body);
  for (std::uint8_t m : kMagic) {
    if (r.u8() != m) throw WireFormatError("bad magic");
  }
  if (r.u8() != kVersion) throw WireFormatError("unsupported version");
  WireBlockView out;
  out.scheme = scheme_from_byte(r.u8());
  r.u8();  // reserved
  r.u8();
  out.level = r.u32();
  const std::uint32_t n = r.u32();
  const std::uint32_t payload_size = r.u32();
  if (n == 0) throw WireFormatError("zero coefficient width");
  // Allocation guard only — sparse frames legitimately describe widths
  // far larger than the frame itself, and the CRC already vouches for
  // integrity.
  if (n > (1u << 24)) throw WireFormatError("implausible coefficient width");
  out.coeff_width = n;
  const std::uint32_t encoding = r.u32();

  if (encoding == kDense) {
    out.dense_coeffs = r.raw(n);
  } else if (encoding == kSparse) {
    const std::uint32_t count = r.u32();
    if (count > n) throw WireFormatError("sparse count exceeds width");
    out.sparse_count = count;
    out.sparse_entries = r.raw(static_cast<std::size_t>(count) * 5);
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint8_t* p = out.sparse_entries.data() + std::size_t{i} * 5;
      const std::uint32_t idx = static_cast<std::uint32_t>(p[0]) |
                                static_cast<std::uint32_t>(p[1]) << 8 |
                                static_cast<std::uint32_t>(p[2]) << 16 |
                                static_cast<std::uint32_t>(p[3]) << 24;
      if (idx >= n) throw WireFormatError("sparse index out of range");
    }
  } else {
    throw WireFormatError("unknown coefficient encoding");
  }

  out.payload = r.raw(payload_size);
  if (r.remaining() != 0) throw WireFormatError("trailing bytes after payload");
  return out;
}

WireBlock decode_wire(std::span<const std::uint8_t> bytes) {
  const WireBlockView view = decode_wire_view(bytes);
  WireBlock out;
  out.scheme = view.scheme;
  out.block.level = view.level;
  out.block.coeffs.resize(view.coeff_width);
  view.expand_coeffs(out.block.coeffs);
  out.block.payload.assign(view.payload.begin(), view.payload.end());
  return out;
}

namespace {
constexpr std::uint8_t kManifestMagic[4] = {'P', 'R', 'L', 'M'};
constexpr std::uint8_t kManifestVersion = 1;
}  // namespace

std::vector<std::uint8_t> encode_manifest(const util::FingerprintManifest& manifest) {
  PRLC_REQUIRE(manifest.block_size > 0, "manifest block size must be positive");
  std::vector<std::uint8_t> out;
  out.reserve(25 + manifest.fingerprints.size() * 8);
  for (std::uint8_t m : kManifestMagic) out.push_back(m);
  out.push_back(kManifestVersion);
  put_u64(out, manifest.seed);
  put_u32(out, static_cast<std::uint32_t>(manifest.block_size));
  put_u32(out, static_cast<std::uint32_t>(manifest.fingerprints.size()));
  for (const std::uint64_t fp : manifest.fingerprints) put_u64(out, fp);
  put_u32(out, crc32(std::span<const std::uint8_t>(out)));
  return out;
}

util::FingerprintManifest decode_manifest(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 25) throw WireFormatError("shorter than the minimal manifest");
  const auto body = bytes.subspan(0, bytes.size() - 4);
  Reader crc_reader(bytes.subspan(bytes.size() - 4));
  if (crc32(body) != crc_reader.u32()) {
    throw WireFormatError("manifest CRC mismatch (corrupt manifest)");
  }
  Reader r(body);
  for (std::uint8_t m : kManifestMagic) {
    if (r.u8() != m) throw WireFormatError("bad manifest magic");
  }
  if (r.u8() != kManifestVersion) throw WireFormatError("unsupported manifest version");
  util::FingerprintManifest out;
  out.seed = r.u64();
  out.block_size = r.u32();
  if (out.block_size == 0) throw WireFormatError("zero manifest block size");
  const std::uint32_t count = r.u32();
  if (static_cast<std::size_t>(count) * 8 != r.remaining()) {
    throw WireFormatError("manifest fingerprint count disagrees with frame size");
  }
  out.fingerprints.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) out.fingerprints.push_back(r.u64());
  return out;
}

}  // namespace prlc::codes
