// Monte-Carlo decoding-curve simulation (Sec. 5 methodology).
//
// The paper's figures plot "expected number of decoded priority levels"
// against "number of coded blocks processed", averaged over 100
// independent experiments with 95% confidence intervals. This driver
// reproduces that: per trial it streams randomly generated coded blocks
// (levels drawn from the priority distribution) into a fresh decoder and
// samples the decoded-level count at each requested block count. Within a
// trial the block counts share one stream — each prefix of an i.i.d.
// sequence is itself a valid random sample, and the decoder is exactly
// the "decode as blocks accumulate" process of Sec. 3.2.
#pragma once

#include <vector>

#include "codes/decoder.h"
#include "codes/encoder.h"
#include "gf/field_concept.h"
#include "runtime/trial_runner.h"
#include "util/check.h"
#include "util/random.h"
#include "util/stats.h"

namespace prlc::codes {

struct CurvePoint {
  std::size_t coded_blocks = 0;  ///< M — blocks processed
  double mean_levels = 0;        ///< average decoded priority levels
  double ci95_levels = 0;        ///< 95% CI half-width over trials
  double mean_blocks = 0;        ///< average decoded source-block prefix
  double ci95_blocks = 0;
};

struct CurveOptions {
  std::vector<std::size_t> block_counts;  ///< M values, strictly increasing
  std::size_t trials = 100;
  std::uint64_t seed = 1;
  std::size_t threads = 0;  ///< TrialRunner convention: 0 = hardware, 1 = serial
  EncoderOptions encoder;   ///< coefficient model (dense/sparse)
  /// Stream blocks in sparse (index, value) form through the decoder's
  /// O(nnz) hybrid path instead of expanding dense coefficient vectors.
  /// The encoder's sparse emitter consumes the RNG exactly like the dense
  /// one, so the curve itself is bit-identical either way — this flag only
  /// changes the cost model, and is what makes N = 10^5 runs practical.
  bool sparse_blocks = false;
};

/// Simulate the decoding curve for one (scheme, spec, distribution).
template <gf::FieldPolicy F>
std::vector<CurvePoint> simulate_decoding_curve(Scheme scheme, const PrioritySpec& spec,
                                                const PriorityDistribution& dist,
                                                const CurveOptions& options) {
  PRLC_REQUIRE(!options.block_counts.empty(), "need at least one block count");
  PRLC_REQUIRE(options.trials > 0, "need at least one trial");
  for (std::size_t i = 1; i < options.block_counts.size(); ++i) {
    PRLC_REQUIRE(options.block_counts[i - 1] < options.block_counts[i],
                 "block counts must be strictly increasing");
  }
  PRLC_REQUIRE(dist.levels() == spec.levels(), "distribution/spec level mismatch");

  const std::size_t points = options.block_counts.size();

  // One immutable encoder shared by all trials (stateless per call).
  const PriorityEncoder<F> encoder(scheme, spec, options.encoder, nullptr);

  struct TrialSample {
    std::vector<double> levels;
    std::vector<double> blocks;
  };
  runtime::TrialRunner runner(options.threads);
  const auto samples = runner.run(
      options.trials, options.seed, [&](std::size_t, Rng& rng) {
        PriorityDecoder<F> decoder(scheme, spec, 0);
        TrialSample sample;
        sample.levels.reserve(points);
        sample.blocks.reserve(points);
        std::size_t next_point = 0;
        const std::size_t max_blocks = options.block_counts.back();
        for (std::size_t m = 1; m <= max_blocks; ++m) {
          if (options.sparse_blocks) {
            decoder.add(encoder.encode_sparse_random(dist, rng));
          } else {
            decoder.add(encoder.encode_random(dist, rng));
          }
          if (m == options.block_counts[next_point]) {
            sample.levels.push_back(static_cast<double>(decoder.decoded_levels()));
            sample.blocks.push_back(static_cast<double>(decoder.decoded_prefix_blocks()));
            ++next_point;
          }
        }
        PRLC_ASSERT(next_point == points, "curve sampling missed a checkpoint");
        return sample;
      });

  // Ordered merge in trial order — keeps the curve bit-identical across
  // thread counts (see runtime/trial_runner.h).
  std::vector<RunningStats> level_stats(points);
  std::vector<RunningStats> block_stats(points);
  for (const TrialSample& sample : samples) {
    for (std::size_t i = 0; i < points; ++i) {
      level_stats[i].add(sample.levels[i]);
      block_stats[i].add(sample.blocks[i]);
    }
  }

  std::vector<CurvePoint> curve(points);
  for (std::size_t i = 0; i < points; ++i) {
    curve[i].coded_blocks = options.block_counts[i];
    curve[i].mean_levels = level_stats[i].mean();
    curve[i].ci95_levels = level_stats[i].ci95_halfwidth();
    curve[i].mean_blocks = block_stats[i].mean();
    curve[i].ci95_blocks = block_stats[i].ci95_halfwidth();
  }
  return curve;
}

/// Evenly spaced block counts from `lo` to `hi` (inclusive, deduplicated).
std::vector<std::size_t> make_block_counts(std::size_t lo, std::size_t hi, std::size_t points);

}  // namespace prlc::codes
