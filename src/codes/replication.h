// Replication baseline — storage without coding.
//
// Sec. 5.2 of the paper identifies plain replication as the degenerate
// case of SLC with one source block per level: recovering everything
// needs ~ N ln N random blocks (coupon collector). This module makes the
// baseline explicit so benches can plot it next to RLC/SLC/PLC: each
// "coded" block is a verbatim copy of one source block; the collector
// just tracks which originals it has seen.
#pragma once

#include <vector>

#include "codes/priority_spec.h"
#include "codes/source_data.h"
#include "gf/field_concept.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::codes {

/// A replica: one source block stored verbatim.
template <gf::FieldPolicy F>
struct ReplicaBlock {
  std::size_t source_index = 0;
  std::size_t level = 0;
  std::vector<typename F::Symbol> payload;  ///< empty in index-only mode
};

/// Emits replicas. The replica's level follows the priority distribution
/// (like coded blocks); the source block is uniform within that level.
template <gf::FieldPolicy F>
class ReplicationEncoder {
 public:
  ReplicationEncoder(PrioritySpec spec, const SourceData<F>* source = nullptr)
      : spec_(std::move(spec)), source_(source) {
    if (source_ != nullptr) {
      PRLC_REQUIRE(source_->blocks() == spec_.total(),
                   "source data size must match the priority spec");
    }
  }

  const PrioritySpec& spec() const { return spec_; }

  ReplicaBlock<F> replicate(std::size_t level, Rng& rng) const {
    PRLC_REQUIRE(level < spec_.levels(), "level out of range");
    ReplicaBlock<F> block;
    block.level = level;
    block.source_index =
        spec_.level_begin(level) + rng.uniform(spec_.level_size(level));
    if (source_ != nullptr) {
      const auto payload = source_->block(block.source_index);
      block.payload.assign(payload.begin(), payload.end());
    }
    return block;
  }

  ReplicaBlock<F> replicate_random(const PriorityDistribution& dist, Rng& rng) const {
    PRLC_REQUIRE(dist.levels() == spec_.levels(),
                 "priority distribution and spec disagree on level count");
    return replicate(dist.sample_level(rng), rng);
  }

 private:
  PrioritySpec spec_;
  const SourceData<F>* source_;
};

/// Tracks collected replicas; same reporting surface as PriorityDecoder.
template <gf::FieldPolicy F>
class ReplicationCollector {
 public:
  explicit ReplicationCollector(PrioritySpec spec)
      : spec_(std::move(spec)), seen_(spec_.total(), false) {}

  const PrioritySpec& spec() const { return spec_; }

  /// Returns true when this replica was new.
  bool add(const ReplicaBlock<F>& block) {
    PRLC_REQUIRE(block.source_index < spec_.total(), "replica index out of range");
    ++blocks_seen_;
    if (seen_[block.source_index]) return false;
    seen_[block.source_index] = true;
    ++distinct_;
    while (prefix_ < spec_.total() && seen_[prefix_]) ++prefix_;
    return true;
  }

  std::size_t blocks_seen() const { return blocks_seen_; }
  /// Number of distinct source blocks collected (any order).
  std::size_t distinct_blocks() const { return distinct_; }
  /// Longest collected prefix of source blocks.
  std::size_t decoded_prefix_blocks() const { return prefix_; }
  /// Strict-priority decoded levels (whole-level prefix).
  std::size_t decoded_levels() const { return spec_.levels_covered_by_prefix(prefix_); }
  bool is_block_decoded(std::size_t j) const {
    PRLC_REQUIRE(j < spec_.total(), "source block index out of range");
    return seen_[j];
  }

 private:
  PrioritySpec spec_;
  std::vector<bool> seen_;
  std::size_t blocks_seen_ = 0;
  std::size_t distinct_ = 0;
  std::size_t prefix_ = 0;
};

}  // namespace prlc::codes
