// Centralized encoders for RLC, SLC and PLC (Sec. 3.1).
//
// "Centralized" means the encoder sees all source payloads at once — the
// model used by the paper's coding analysis and simulations. The
// decentralized variant, where coded blocks accumulate c <- c + beta*x as
// source blocks arrive over the network, lives in src/proto; both produce
// identically distributed coded blocks.
//
// Support sets per scheme for a block of (0-indexed) level k:
//   RLC: all N source blocks            SLC: [b_{k-1}, b_k)
//   PLC: [0, b_k)
// Coefficients within the support are drawn per a CoefficientModel:
//   kDenseUniform  — uniform over the field (zeros allowed; all-zero rows
//                    are redrawn). The standard RLNC model.
//   kDenseNonzero  — uniform over nonzero elements, as the paper states
//                    for SLC.
//   kSparse        — ceil(factor * ln(support)) random positions get
//                    nonzero coefficients; the rest are zero. Models the
//                    O(ln N) pre-distribution result of Dimakis et al.
//                    cited in Sec. 4.
#pragma once

#include <algorithm>
#include <cmath>
#include <utility>

#include "codes/coded_block.h"
#include "codes/priority_spec.h"
#include "codes/scheme.h"
#include "codes/source_data.h"
#include "gf/field_concept.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::codes {

enum class CoefficientModel { kDenseUniform, kDenseNonzero, kSparse };

struct EncoderOptions {
  CoefficientModel model = CoefficientModel::kDenseUniform;
  /// Nonzeros per block = ceil(sparsity_factor * ln(support size)) under
  /// kSparse (clamped to [1, support size]).
  double sparsity_factor = 3.0;
};

template <gf::FieldPolicy F>
class PriorityEncoder {
 public:
  using Symbol = typename F::Symbol;

  /// `source` may be null for coefficient-only encoding (decoding-curve
  /// simulations); when non-null it must outlive the encoder and have
  /// spec.total() blocks.
  PriorityEncoder(Scheme scheme, PrioritySpec spec, EncoderOptions options = {},
                  const SourceData<F>* source = nullptr)
      : scheme_(scheme), spec_(std::move(spec)), options_(options), source_(source) {
    if (source_ != nullptr) {
      PRLC_REQUIRE(source_->blocks() == spec_.total(),
                   "source data size must match the priority spec");
    }
    PRLC_REQUIRE(options_.sparsity_factor > 0, "sparsity factor must be positive");
  }

  const PrioritySpec& spec() const { return spec_; }
  Scheme scheme() const { return scheme_; }

  /// Source-block index range [begin, end) a level-k coded block may mix.
  std::pair<std::size_t, std::size_t> support(std::size_t level) const {
    PRLC_REQUIRE(level < spec_.levels(), "level out of range");
    switch (scheme_) {
      case Scheme::kRlc:
        return {0, spec_.total()};
      case Scheme::kSlc:
        return {spec_.level_begin(level), spec_.level_end(level)};
      case Scheme::kPlc:
        return {0, spec_.level_end(level)};
    }
    PRLC_ASSERT(false, "unknown scheme");
  }

  /// Produce one coded block of the given level.
  CodedBlock<F> encode(std::size_t level, Rng& rng) const {
    const auto [begin, end] = support(level);
    static obs::Counter& blocks_encoded = obs::counter("encoder.blocks_encoded");
    blocks_encoded.add();
    CodedBlock<F> block;
    block.level = level;
    block.coeffs.assign(spec_.total(), Symbol{0});
    draw_coefficients(block.coeffs, begin, end, rng);
    if (source_ != nullptr) {
      block.payload.assign(source_->block_size(), Symbol{0});
      for (std::size_t j = begin; j < end; ++j) {
        if (block.coeffs[j] != 0) {
          F::axpy(std::span<Symbol>(block.payload), block.coeffs[j], source_->block(j));
        }
      }
    }
    return block;
  }

  /// Sample the block's level from `dist`, then encode.
  CodedBlock<F> encode_random(const PriorityDistribution& dist, Rng& rng) const {
    PRLC_REQUIRE(dist.levels() == spec_.levels(),
                 "priority distribution and spec disagree on level count");
    return encode(dist.sample_level(rng), rng);
  }

 private:
  void draw_coefficients(std::vector<Symbol>& coeffs, std::size_t begin, std::size_t end,
                         Rng& rng) const {
    const std::size_t width = end - begin;
    PRLC_ASSERT(width > 0, "empty coding support");
    static obs::Counter& symbols_drawn = obs::counter("encoder.symbols_drawn");
    static obs::Counter& redraws = obs::counter("encoder.redraws");
    switch (options_.model) {
      case CoefficientModel::kDenseUniform: {
        bool first_draw = true;
        bool any = false;
        do {
          if (!first_draw) redraws.add();
          first_draw = false;
          symbols_drawn.add(width);
          // Reset the support explicitly before each (re)draw. Today every
          // slot is overwritten below, but a sparse-support refactor that
          // skips slots must not inherit stale values from a rejected draw.
          std::fill(coeffs.begin() + static_cast<std::ptrdiff_t>(begin),
                    coeffs.begin() + static_cast<std::ptrdiff_t>(end), Symbol{0});
          any = false;
          for (std::size_t j = begin; j < end; ++j) {
            coeffs[j] = static_cast<Symbol>(rng.uniform(F::order()));
            any = any || coeffs[j] != 0;
          }
        } while (!any);
        PRLC_ASSERT(std::any_of(coeffs.begin() + static_cast<std::ptrdiff_t>(begin),
                                coeffs.begin() + static_cast<std::ptrdiff_t>(end),
                                [](Symbol c) { return c != 0; }),
                    "dense-uniform draw produced an all-zero row");
        return;
      }
      case CoefficientModel::kDenseNonzero: {
        symbols_drawn.add(width);
        for (std::size_t j = begin; j < end; ++j) {
          coeffs[j] = static_cast<Symbol>(1 + rng.uniform(F::order() - 1));
        }
        return;
      }
      case CoefficientModel::kSparse: {
        const double target =
            std::ceil(options_.sparsity_factor * std::log(std::max<double>(2.0, width)));
        const std::size_t nnz =
            std::clamp<std::size_t>(static_cast<std::size_t>(target), 1, width);
        symbols_drawn.add(nnz);
        for (std::size_t offset : rng.sample_without_replacement(width, nnz)) {
          coeffs[begin + offset] = static_cast<Symbol>(1 + rng.uniform(F::order() - 1));
        }
        return;
      }
    }
    PRLC_ASSERT(false, "unknown coefficient model");
  }

  Scheme scheme_;
  PrioritySpec spec_;
  EncoderOptions options_;
  const SourceData<F>* source_;
};

}  // namespace prlc::codes
