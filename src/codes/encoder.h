// Centralized encoders for RLC, SLC and PLC (Sec. 3.1).
//
// "Centralized" means the encoder sees all source payloads at once — the
// model used by the paper's coding analysis and simulations. The
// decentralized variant, where coded blocks accumulate c <- c + beta*x as
// source blocks arrive over the network, lives in src/proto; both produce
// identically distributed coded blocks.
//
// Support sets per scheme for a block of (0-indexed) level k:
//   RLC: all N source blocks            SLC: [b_{k-1}, b_k)
//   PLC: [0, b_k)
// Coefficients within the support are drawn per a CoefficientModel:
//   kDenseUniform  — uniform over the field (zeros allowed; all-zero rows
//                    are redrawn). The standard RLNC model.
//   kDenseNonzero  — uniform over nonzero elements, as the paper states
//                    for SLC.
//   kSparse        — ceil(factor * ln(support)) random positions get
//                    nonzero coefficients; the rest are zero. Models the
//                    O(ln N) pre-distribution result of Dimakis et al.
//                    cited in Sec. 4.
#pragma once

#include <algorithm>
#include <cmath>
#include <utility>

#include "codes/coded_block.h"
#include "codes/priority_spec.h"
#include "codes/scheme.h"
#include "codes/source_data.h"
#include "gf/field_concept.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::codes {

enum class CoefficientModel { kDenseUniform, kDenseNonzero, kSparse };

struct EncoderOptions {
  CoefficientModel model = CoefficientModel::kDenseUniform;
  /// Nonzeros per block = ceil(sparsity_factor * ln(support size)) under
  /// kSparse (clamped to [1, support size]).
  double sparsity_factor = 3.0;
  /// When nonzero, each block's support is further restricted to one
  /// randomly chosen chunk_size-aligned slice of the scheme support.
  /// Chunking bounds decoder fill-in by the chunk width — the structured
  /// sparsity of "Expander Chunked Codes" (PAPERS.md) that keeps hybrid
  /// decoding near-linear at N = 10^5 (bench/abl_sparsity). 0 disables.
  std::size_t chunk_size = 0;
};

template <gf::FieldPolicy F>
class PriorityEncoder {
 public:
  using Symbol = typename F::Symbol;

  /// `source` may be null for coefficient-only encoding (decoding-curve
  /// simulations); when non-null it must outlive the encoder and have
  /// spec.total() blocks.
  PriorityEncoder(Scheme scheme, PrioritySpec spec, EncoderOptions options = {},
                  const SourceData<F>* source = nullptr)
      : scheme_(scheme), spec_(std::move(spec)), options_(options), source_(source) {
    if (source_ != nullptr) {
      PRLC_REQUIRE(source_->blocks() == spec_.total(),
                   "source data size must match the priority spec");
    }
    PRLC_REQUIRE(options_.sparsity_factor > 0, "sparsity factor must be positive");
  }

  const PrioritySpec& spec() const { return spec_; }
  Scheme scheme() const { return scheme_; }

  /// Source-block index range [begin, end) a level-k coded block may mix.
  std::pair<std::size_t, std::size_t> support(std::size_t level) const {
    PRLC_REQUIRE(level < spec_.levels(), "level out of range");
    switch (scheme_) {
      case Scheme::kRlc:
        return {0, spec_.total()};
      case Scheme::kSlc:
        return {spec_.level_begin(level), spec_.level_end(level)};
      case Scheme::kPlc:
        return {0, spec_.level_end(level)};
    }
    PRLC_ASSERT(false, "unknown scheme");
  }

  /// Produce one coded block of the given level.
  CodedBlock<F> encode(std::size_t level, Rng& rng) const {
    const auto [begin, end] = support(level);
    static obs::Counter& blocks_encoded = obs::counter("encoder.blocks_encoded");
    blocks_encoded.add();
    CodedBlock<F> block;
    block.level = level;
    block.coeffs.assign(spec_.total(), Symbol{0});
    std::vector<std::uint32_t> idx;
    std::vector<Symbol> val;
    draw_support(begin, end, rng, idx, val);
    for (std::size_t k = 0; k < idx.size(); ++k) block.coeffs[idx[k]] = val[k];
    if (source_ != nullptr) {
      block.payload.assign(source_->block_size(), Symbol{0});
      for (std::size_t k = 0; k < idx.size(); ++k) {
        F::axpy(std::span<Symbol>(block.payload), val[k], source_->block(idx[k]));
      }
    }
    return block;
  }

  /// Produce one coded block of the given level in sparse form. Consumes
  /// the RNG exactly as encode() does, so from the same seed the dense and
  /// sparse emitters produce the same equation stream: expanding the
  /// returned (indices, values) pairs reproduces encode()'s coefficient
  /// vector and payload bit for bit.
  SparseCodedBlock<F> encode_sparse(std::size_t level, Rng& rng) const {
    const auto [begin, end] = support(level);
    static obs::Counter& blocks_encoded = obs::counter("encoder.blocks_encoded");
    blocks_encoded.add();
    SparseCodedBlock<F> block;
    block.level = level;
    draw_support(begin, end, rng, block.indices, block.values);
    sort_support(block.indices, block.values);
    if (source_ != nullptr) {
      block.payload.assign(source_->block_size(), Symbol{0});
      for (std::size_t k = 0; k < block.indices.size(); ++k) {
        F::axpy(std::span<Symbol>(block.payload), block.values[k],
                source_->block(block.indices[k]));
      }
    }
    return block;
  }

  /// Sample the block's level from `dist`, then encode.
  CodedBlock<F> encode_random(const PriorityDistribution& dist, Rng& rng) const {
    PRLC_REQUIRE(dist.levels() == spec_.levels(),
                 "priority distribution and spec disagree on level count");
    return encode(dist.sample_level(rng), rng);
  }

  /// Sample the block's level from `dist`, then encode in sparse form.
  SparseCodedBlock<F> encode_sparse_random(const PriorityDistribution& dist, Rng& rng) const {
    PRLC_REQUIRE(dist.levels() == spec_.levels(),
                 "priority distribution and spec disagree on level count");
    return encode_sparse(dist.sample_level(rng), rng);
  }

 private:
  /// Draw one block's nonzero support as (index, value) pairs, in *draw
  /// order* (kSparse pairs come out in sample order — sort_support makes
  /// them canonical). This is the single source of randomness for both
  /// emitters; any change here must keep the RNG consumption of the dense
  /// and sparse paths identical.
  void draw_support(std::size_t begin, std::size_t end, Rng& rng,
                    std::vector<std::uint32_t>& idx, std::vector<Symbol>& val) const {
    idx.clear();
    val.clear();
    // Chunked sparsity: restrict the block to one chunk_size-aligned slice
    // of the scheme support (see EncoderOptions.chunk_size).
    if (options_.chunk_size > 0 && end - begin > options_.chunk_size) {
      const std::size_t chunks = (end - begin + options_.chunk_size - 1) / options_.chunk_size;
      begin += rng.uniform(chunks) * options_.chunk_size;
      end = std::min(end, begin + options_.chunk_size);
    }
    const std::size_t width = end - begin;
    PRLC_ASSERT(width > 0, "empty coding support");
    static obs::Counter& symbols_drawn = obs::counter("encoder.symbols_drawn");
    static obs::Counter& redraws = obs::counter("encoder.redraws");
    switch (options_.model) {
      case CoefficientModel::kDenseUniform: {
        bool first_draw = true;
        do {
          if (!first_draw) redraws.add();
          first_draw = false;
          symbols_drawn.add(width);
          // Reset the pairs before each (re)draw: a rejected all-zero
          // attempt must not leak stale entries.
          idx.clear();
          val.clear();
          for (std::size_t j = begin; j < end; ++j) {
            const auto c = static_cast<Symbol>(rng.uniform(F::order()));
            if (c != 0) {
              idx.push_back(static_cast<std::uint32_t>(j));
              val.push_back(c);
            }
          }
        } while (idx.empty());
        PRLC_ASSERT(!idx.empty(), "dense-uniform draw produced an all-zero row");
        return;
      }
      case CoefficientModel::kDenseNonzero: {
        symbols_drawn.add(width);
        idx.reserve(width);
        val.reserve(width);
        for (std::size_t j = begin; j < end; ++j) {
          idx.push_back(static_cast<std::uint32_t>(j));
          val.push_back(static_cast<Symbol>(1 + rng.uniform(F::order() - 1)));
        }
        return;
      }
      case CoefficientModel::kSparse: {
        const double target =
            std::ceil(options_.sparsity_factor * std::log(std::max<double>(2.0, width)));
        const std::size_t nnz =
            std::clamp<std::size_t>(static_cast<std::size_t>(target), 1, width);
        symbols_drawn.add(nnz);
        idx.reserve(nnz);
        val.reserve(nnz);
        for (std::size_t offset : rng.sample_without_replacement(width, nnz)) {
          idx.push_back(static_cast<std::uint32_t>(begin + offset));
          val.push_back(static_cast<Symbol>(1 + rng.uniform(F::order() - 1)));
        }
        return;
      }
    }
    PRLC_ASSERT(false, "unknown coefficient model");
  }

  /// Put (index, value) pairs into strictly increasing index order.
  static void sort_support(std::vector<std::uint32_t>& idx, std::vector<Symbol>& val) {
    if (std::is_sorted(idx.begin(), idx.end())) return;
    std::vector<std::size_t> perm(idx.size());
    for (std::size_t k = 0; k < perm.size(); ++k) perm[k] = k;
    std::sort(perm.begin(), perm.end(),
              [&](std::size_t a, std::size_t b) { return idx[a] < idx[b]; });
    std::vector<std::uint32_t> sorted_idx(idx.size());
    std::vector<Symbol> sorted_val(val.size());
    for (std::size_t k = 0; k < perm.size(); ++k) {
      sorted_idx[k] = idx[perm[k]];
      sorted_val[k] = val[perm[k]];
    }
    idx.swap(sorted_idx);
    val.swap(sorted_val);
  }

  Scheme scheme_;
  PrioritySpec spec_;
  EncoderOptions options_;
  const SourceData<F>* source_;
};

}  // namespace prlc::codes
