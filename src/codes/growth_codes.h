// Growth Codes (Kamra, Feldman, Misra, Rubenstein — SIGCOMM 2006).
//
// The related-work baseline the paper argues against in Sec. 6: Growth
// Codes maximize the number of *any* source blocks recovered as symbols
// trickle in, treating all data as equally important. A symbol XORs `d`
// distinct source blocks; the degree grows with the sink's recovery
// progress so each new symbol is immediately decodable with good
// probability: with r of N blocks recovered, a degree-d symbol decodes a
// new block iff exactly one of its d blocks is still unknown, which is
// maximized at d ~ N/(N - r) — the schedule used here (the continuous
// relaxation of the paper's R_i switch points).
//
// Two feedback models:
//  * kOracle — the encoder knows the sink's true recovery count (upper
//    bound; in-network Growth Codes approximate this by symbol age).
//  * kEstimate — feedback-free: r is estimated from the number of symbols
//    already emitted via the coupon-coverage expectation
//    r_hat = N (1 - e^{-m/N}).
//
// The bench (abl_growth_codes) reproduces the paper's qualitative claim:
// Growth Codes recover more *total* blocks early, but spread recovery
// uniformly across priorities, so the critical prefix completes later
// than under PLC.
#pragma once

#include <vector>

#include "codes/priority_spec.h"
#include "codes/source_data.h"
#include "gf/gf256.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::codes {

enum class GrowthFeedback { kOracle, kEstimate };

/// One Growth-Codes symbol: XOR of the listed source blocks.
struct GrowthSymbol {
  std::vector<std::size_t> indices;
  std::vector<std::uint8_t> payload;  ///< empty in index-only mode
};

class GrowthEncoder {
 public:
  /// `source` may be null for coverage-only simulations.
  explicit GrowthEncoder(std::size_t total_blocks,
                         const SourceData<gf::Gf256>* source = nullptr);

  std::size_t total_blocks() const { return total_blocks_; }

  /// Degree the schedule picks when `recovered` blocks are known.
  std::size_t degree_for(std::size_t recovered) const;

  /// Emit one symbol given the sink's (true or estimated) recovery count.
  GrowthSymbol encode(std::size_t recovered, Rng& rng) const;

  /// Emit one symbol under the chosen feedback model; `emitted` is how
  /// many symbols were produced before this one (drives kEstimate).
  GrowthSymbol encode_auto(GrowthFeedback feedback, std::size_t true_recovered,
                           std::size_t emitted, Rng& rng) const;

 private:
  std::size_t total_blocks_;
  const SourceData<gf::Gf256>* source_;
};

}  // namespace prlc::codes
