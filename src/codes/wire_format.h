// Wire format for coded blocks — what actually travels between nodes.
//
// A production deployment of the Sec.-4 protocol ships coded blocks over
// the network and stores them on flash/disk; both need a self-describing,
// integrity-checked byte layout. Format (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "PRLC"
//   4       1     version (1)
//   5       1     scheme (0 = RLC, 1 = SLC, 2 = PLC)
//   6       2     reserved (0)
//   8       4     level (0-indexed)
//   12      4     N — total source blocks (coefficient vector width)
//   16      4     payload size in bytes
//   20      4     coefficient encoding: 0 = dense, 1 = sparse
//   24      ...   coefficients:
//                   dense:  N raw bytes
//                   sparse: u32 count, then count x (u32 index, u8 value)
//   ...     ...   payload bytes
//   end-4   4     CRC-32 of everything before it
//
// The sparse encoding is chosen automatically when it is smaller — high-
// priority PLC blocks and O(ln N) sparse blocks compress well. decode()
// validates magic/version/CRC/bounds and throws WireFormatError on any
// corruption (tested with byte-flip and truncation injection).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "codes/coded_block.h"
#include "codes/scheme.h"
#include "gf/gf256.h"
#include "util/gf64_fingerprint.h"

namespace prlc::codes {

class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what) : std::runtime_error(what) {}
};

struct WireBlock {
  Scheme scheme = Scheme::kPlc;
  CodedBlock<gf::Gf256> block;
};

/// Borrowed view of one coded block for serialization: coefficient and
/// payload storage is owned elsewhere (a SourceData row, a codec output
/// buffer, an arena). Serializing a view never copies the payload into an
/// intermediate CodedBlock.
struct CodedBlockView {
  std::size_t level = 0;
  std::span<const std::uint8_t> coeffs;
  std::span<const std::uint8_t> payload;
};

/// Serialize a coded block (GF(2^8) symbols are bytes on the wire).
std::vector<std::uint8_t> encode_wire(Scheme scheme, const CodedBlock<gf::Gf256>& block);

/// Span-based twin of encode_wire: byte-identical output for identical
/// logical content (regression-tested), no owning CodedBlock required.
std::vector<std::uint8_t> encode_wire(Scheme scheme, const CodedBlockView& block);

/// Parsed frame that *references* the caller's byte buffer instead of
/// copying out of it. `payload` (and `dense_coeffs`, for densely encoded
/// frames) are subspans of the bytes passed to decode_wire_view; they are
/// valid only while that buffer lives and is unmodified. Sparse frames
/// keep their entries raw — expand_coeffs() materializes the full-width
/// vector into caller storage when needed.
struct WireBlockView {
  Scheme scheme = Scheme::kPlc;
  std::size_t level = 0;
  std::size_t coeff_width = 0;  ///< N — full coefficient-vector width
  /// Dense frames: the N raw coefficient bytes. Sparse frames: empty.
  std::span<const std::uint8_t> dense_coeffs;
  /// Sparse frames: `sparse_count` raw (u32 index, u8 value) entries.
  std::span<const std::uint8_t> sparse_entries;
  std::uint32_t sparse_count = 0;
  std::span<const std::uint8_t> payload;

  bool dense() const { return dense_coeffs.size() == coeff_width; }

  /// Write the full-width coefficient vector into `out` (size
  /// coeff_width). For dense frames this is one memcpy; sparse frames
  /// scatter their entries over a zeroed vector.
  void expand_coeffs(std::span<std::uint8_t> out) const;
};

/// Validate (magic/version/CRC/bounds — identical checks to decode_wire)
/// and return a zero-copy view; throws WireFormatError on malformed
/// input. decode_wire is implemented on top of this, so the two paths
/// cannot diverge.
WireBlockView decode_wire_view(std::span<const std::uint8_t> bytes);

/// Parse and validate; throws WireFormatError on malformed input.
WireBlock decode_wire(std::span<const std::uint8_t> bytes);

/// Wire encoding of the source-block fingerprint manifest
/// (util/gf64_fingerprint.h) that travels beside the coded blocks, so a
/// collector can verify each fetched frame with no decode. Layout (all
/// little-endian): magic "PRLM", version 1, u64 fingerprint seed, u32
/// block size, u32 source-block count, count x u64 fingerprints, and the
/// same trailing CRC-32 the block frames carry. A manifest is tiny (8
/// bytes per source block) and independent of how many coded blocks
/// exist.
std::vector<std::uint8_t> encode_manifest(const util::FingerprintManifest& manifest);

/// Parse and validate a manifest frame; throws WireFormatError on any
/// corruption (magic/version/CRC/bounds — same discipline as the block
/// frames).
util::FingerprintManifest decode_manifest(std::span<const std::uint8_t> bytes);

}  // namespace prlc::codes
