// Wire format for coded blocks — what actually travels between nodes.
//
// A production deployment of the Sec.-4 protocol ships coded blocks over
// the network and stores them on flash/disk; both need a self-describing,
// integrity-checked byte layout. Format (all integers little-endian):
//
//   offset  size  field
//   0       4     magic "PRLC"
//   4       1     version (1)
//   5       1     scheme (0 = RLC, 1 = SLC, 2 = PLC)
//   6       2     reserved (0)
//   8       4     level (0-indexed)
//   12      4     N — total source blocks (coefficient vector width)
//   16      4     payload size in bytes
//   20      4     coefficient encoding: 0 = dense, 1 = sparse
//   24      ...   coefficients:
//                   dense:  N raw bytes
//                   sparse: u32 count, then count x (u32 index, u8 value)
//   ...     ...   payload bytes
//   end-4   4     CRC-32 of everything before it
//
// The sparse encoding is chosen automatically when it is smaller — high-
// priority PLC blocks and O(ln N) sparse blocks compress well. decode()
// validates magic/version/CRC/bounds and throws WireFormatError on any
// corruption (tested with byte-flip and truncation injection).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "codes/coded_block.h"
#include "codes/scheme.h"
#include "gf/gf256.h"

namespace prlc::codes {

class WireFormatError : public std::runtime_error {
 public:
  explicit WireFormatError(const std::string& what) : std::runtime_error(what) {}
};

struct WireBlock {
  Scheme scheme = Scheme::kPlc;
  CodedBlock<gf::Gf256> block;
};

/// Serialize a coded block (GF(2^8) symbols are bytes on the wire).
std::vector<std::uint8_t> encode_wire(Scheme scheme, const CodedBlock<gf::Gf256>& block);

/// Parse and validate; throws WireFormatError on malformed input.
WireBlock decode_wire(std::span<const std::uint8_t> bytes);

}  // namespace prlc::codes
