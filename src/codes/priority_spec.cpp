#include "codes/priority_spec.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace prlc::codes {

PrioritySpec::PrioritySpec(std::vector<std::size_t> level_sizes)
    : sizes_(std::move(level_sizes)) {
  PRLC_REQUIRE(!sizes_.empty(), "a priority spec needs at least one level");
  prefix_.reserve(sizes_.size());
  std::size_t acc = 0;
  for (std::size_t a : sizes_) {
    PRLC_REQUIRE(a > 0, "every priority level must contain at least one block");
    acc += a;
    prefix_.push_back(acc);
  }
}

PrioritySpec PrioritySpec::uniform(std::size_t levels, std::size_t per_level) {
  PRLC_REQUIRE(levels > 0, "need at least one level");
  PRLC_REQUIRE(per_level > 0, "need at least one block per level");
  return PrioritySpec(std::vector<std::size_t>(levels, per_level));
}

std::size_t PrioritySpec::level_of_block(std::size_t j) const {
  PRLC_REQUIRE(j < total(), "source block index out of range");
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), j);
  return static_cast<std::size_t>(it - prefix_.begin());
}

std::size_t PrioritySpec::levels_covered_by_prefix(std::size_t blocks) const {
  const auto it = std::upper_bound(prefix_.begin(), prefix_.end(), blocks);
  // it points at the first prefix sum strictly greater than `blocks`;
  // every level before it is fully covered.
  return static_cast<std::size_t>(it - prefix_.begin());
}

std::optional<PrioritySpec> try_spec_from_string(std::string_view text) {
  std::vector<std::size_t> sizes;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view field = text.substr(pos, end - pos);
    if (field.empty()) return std::nullopt;
    std::size_t value = 0;
    for (char c : field) {
      if (c < '0' || c > '9') return std::nullopt;
      const std::size_t digit = static_cast<std::size_t>(c - '0');
      if (value > (std::numeric_limits<std::size_t>::max() - digit) / 10) {
        return std::nullopt;
      }
      value = value * 10 + digit;
    }
    if (value == 0) return std::nullopt;
    sizes.push_back(value);
    pos = end + 1;
  }
  return PrioritySpec(std::move(sizes));
}

PrioritySpec spec_from_string(std::string_view text) {
  auto spec = try_spec_from_string(text);
  PRLC_REQUIRE(spec.has_value(),
               "malformed level-size list: " + std::string(text));
  return *std::move(spec);
}

PriorityDistribution::PriorityDistribution(std::vector<double> p)
    : p_(std::move(p)), alias_((validate(p_), std::span<const double>(p_))) {}

void PriorityDistribution::validate(std::vector<double>& p) {
  PRLC_REQUIRE(!p.empty(), "a priority distribution needs at least one level");
  double sum = 0.0;
  for (double v : p) {
    PRLC_REQUIRE(v >= -1e-12, "priority distribution entries must be nonnegative");
    if (v < 0) v = 0;
    sum += v;
  }
  PRLC_REQUIRE(std::abs(sum - 1.0) <= 1e-9, "priority distribution must sum to 1");
  for (double& v : p) v /= sum;
}

PriorityDistribution PriorityDistribution::uniform(std::size_t levels) {
  PRLC_REQUIRE(levels > 0, "need at least one level");
  return PriorityDistribution(std::vector<double>(levels, 1.0 / static_cast<double>(levels)));
}

double PriorityDistribution::range_sum(std::size_t first, std::size_t last) const {
  PRLC_REQUIRE(first <= last && last < p_.size(), "range out of bounds");
  double s = 0.0;
  for (std::size_t i = first; i <= last; ++i) s += p_[i];
  return s;
}

}  // namespace prlc::codes
