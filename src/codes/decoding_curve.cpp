#include "codes/decoding_curve.h"

namespace prlc::codes {

std::vector<std::size_t> make_block_counts(std::size_t lo, std::size_t hi, std::size_t points) {
  PRLC_REQUIRE(lo >= 1, "block counts start at 1");
  PRLC_REQUIRE(hi >= lo, "range must be nonempty");
  PRLC_REQUIRE(points >= 1, "need at least one point");
  std::vector<std::size_t> out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double frac = points == 1 ? 1.0 : static_cast<double>(i) / static_cast<double>(points - 1);
    const auto m = static_cast<std::size_t>(
        static_cast<double>(lo) + frac * static_cast<double>(hi - lo) + 0.5);
    if (out.empty() || out.back() < m) out.push_back(m);
  }
  return out;
}

}  // namespace prlc::codes
