// Iterative peeling decoder for sparse codes (Growth Codes, LT-style).
//
// Growth Codes (Kamra et al., SIGCOMM 2006 — the related work the paper
// contrasts against in Sec. 6) XOR small sets of source blocks. Decoding
// peels: any symbol whose unknowns reduce to one decodes that unknown,
// which may unlock buffered symbols, cascading. Unlike Gauss-Jordan this
// never solves coupled systems — degree-2 symbols over undecoded blocks
// just wait — which is exactly the behaviour the Growth-Codes degree
// schedule is designed around.
//
// Beyond plain XOR the decoder peels GF(256) combinations: a symbol of
// degree 1 with coefficient c decodes its unknown as payload / c, and
// cascade reductions subtract c_i * solution_i. This is the standalone
// peeling pass the hybrid ProgressiveDecoder subsumes (see
// linalg/progressive_decoder.h): singleton elimination there is exactly
// the operation here, so the two agree wherever peeling alone suffices.
//
// Memory discipline: buffered (undecoded) symbols own their payload
// buffers; a retired symbol's storage is released immediately, so
// resident bytes are bounded by the *live* symbol set, not by everything
// ever received (buffered_payload_bytes() exposes the watermark).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace prlc::codes {

class PeelingDecoder {
 public:
  /// `payload_size` may be 0 for index-only (coverage) simulations.
  explicit PeelingDecoder(std::size_t unknowns, std::size_t payload_size = 0);

  std::size_t unknowns() const { return decoded_.size(); }
  std::size_t payload_size() const { return payload_size_; }

  /// Add an XOR symbol: the XOR of the source blocks listed in `indices`
  /// (distinct, in range — duplicates are rejected even when the
  /// duplicated block is already decoded). Returns the number of source
  /// blocks newly decoded by the resulting cascade (0 if none).
  std::size_t add(std::span<const std::size_t> indices,
                  std::span<const std::uint8_t> payload = {});

  /// Add a GF(256) symbol: sum of coefficients[k] * block[indices[k]].
  /// Coefficients must be nonzero and indices distinct/in range.
  std::size_t add(std::span<const std::size_t> indices,
                  std::span<const std::uint8_t> coefficients,
                  std::span<const std::uint8_t> payload);

  std::size_t decoded_count() const { return decoded_count_; }
  bool is_decoded(std::size_t i) const {
    PRLC_REQUIRE(i < decoded_.size(), "unknown index out of range");
    return decoded_[i];
  }

  /// Longest decoded prefix (for priority comparisons).
  std::size_t decoded_prefix() const;

  /// Payload of a decoded unknown (payload mode only).
  std::span<const std::uint8_t> solution(std::size_t i) const;

  std::size_t symbols_seen() const { return symbols_seen_; }
  /// Symbols currently buffered undecoded (memory the sink holds).
  std::size_t buffered_symbols() const { return buffered_; }
  /// Payload bytes resident in buffered symbols. Retired symbols release
  /// their storage, so this tracks live memory, not history.
  std::size_t buffered_payload_bytes() const { return buffered_payload_bytes_; }

 private:
  struct Symbol {
    std::vector<std::size_t> pending;     ///< still-undecoded indices
    std::vector<std::uint8_t> coef;       ///< matching GF(256) coefficients
    std::vector<std::uint8_t> payload;
    bool retired = false;
  };

  std::size_t add_impl(std::span<const std::size_t> indices,
                       std::span<const std::uint8_t> coefficients,
                       std::span<const std::uint8_t> payload);

  /// Release a retired symbol's buffers (bounded-memory discipline).
  void retire(Symbol& sym);

  /// Mark unknown `i` decoded with `payload`; cascade through waiters.
  void resolve(std::size_t i, std::vector<std::uint8_t> payload, std::size_t& newly);

  std::size_t payload_size_;
  std::vector<bool> decoded_;
  std::vector<std::vector<std::uint8_t>> solutions_;
  std::vector<Symbol> symbols_;
  std::vector<std::vector<std::size_t>> waiters_;  ///< unknown -> symbol ids
  std::vector<std::size_t> scratch_;               ///< add-time dup check
  std::size_t decoded_count_ = 0;
  std::size_t symbols_seen_ = 0;
  std::size_t buffered_ = 0;
  std::size_t buffered_payload_bytes_ = 0;
};

}  // namespace prlc::codes
