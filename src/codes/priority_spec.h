// Priority structure of the source data (Sec. 2 of the paper).
//
// N source blocks are partitioned into n priority levels with sizes
// a_1..a_n (descending importance). PrioritySpec owns that structure and
// the derived prefix sums b_i = a_1 + ... + a_i; PriorityDistribution is
// the per-level fraction p_i of coded blocks (Sec. 3.3), i.e. the knob the
// design framework of Sec. 3.4 tunes.
//
// Everything here is 0-indexed: level i in code corresponds to level i+1
// in the paper's notation.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "util/check.h"
#include "util/random.h"

namespace prlc::codes {

class PrioritySpec {
 public:
  /// `level_sizes[i]` = a_{i+1} > 0 (number of source blocks in level i).
  explicit PrioritySpec(std::vector<std::size_t> level_sizes);

  /// Convenience: `levels` equal levels of `per_level` blocks each.
  static PrioritySpec uniform(std::size_t levels, std::size_t per_level);

  /// n — the number of priority levels.
  std::size_t levels() const { return sizes_.size(); }

  /// a_{i+1} — source blocks in level i.
  std::size_t level_size(std::size_t i) const {
    PRLC_REQUIRE(i < sizes_.size(), "level index out of range");
    return sizes_[i];
  }

  /// b_{i+1} — total source blocks in levels 0..i.
  std::size_t prefix_size(std::size_t i) const {
    PRLC_REQUIRE(i < prefix_.size(), "level index out of range");
    return prefix_[i];
  }

  /// First source-block index of level i (b_i in paper notation).
  std::size_t level_begin(std::size_t i) const {
    PRLC_REQUIRE(i < sizes_.size(), "level index out of range");
    return i == 0 ? 0 : prefix_[i - 1];
  }

  /// One-past-last source-block index of level i.
  std::size_t level_end(std::size_t i) const { return prefix_size(i); }

  /// N — total number of source blocks.
  std::size_t total() const { return prefix_.empty() ? 0 : prefix_.back(); }

  /// Level containing source block j (O(log n)).
  std::size_t level_of_block(std::size_t j) const;

  /// Largest k (block-prefix semantics): number of whole levels covered by
  /// a decoded prefix of `blocks` source blocks, i.e. max k with b_k <=
  /// blocks.
  std::size_t levels_covered_by_prefix(std::size_t blocks) const;

  bool operator==(const PrioritySpec& other) const { return sizes_ == other.sizes_; }

  std::span<const std::size_t> level_sizes() const { return sizes_; }

 private:
  std::vector<std::size_t> sizes_;
  std::vector<std::size_t> prefix_;
};

/// Non-throwing parse of a comma-separated level-size list ("50,100,350")
/// into a spec; nullopt on malformed text, a zero size, or overflow. The
/// CLI/bench counterpart of try_scheme_from_string — bad --levels values
/// become usage errors, not PRLC_REQUIRE aborts.
std::optional<PrioritySpec> try_spec_from_string(std::string_view text);

/// Throwing wrapper for callers with validated input.
PrioritySpec spec_from_string(std::string_view text);

/// Per-level coded-block fractions p_1..p_n: nonnegative, summing to 1.
class PriorityDistribution {
 public:
  /// Validates and renormalizes (tolerating |sum-1| <= 1e-9 drift).
  explicit PriorityDistribution(std::vector<double> p);

  /// Uniform distribution over `levels` levels.
  static PriorityDistribution uniform(std::size_t levels);

  std::size_t levels() const { return p_.size(); }
  double at(std::size_t i) const {
    PRLC_REQUIRE(i < p_.size(), "level index out of range");
    return p_[i];
  }
  std::span<const double> values() const { return p_; }

  /// Sum of p_i over levels [first, last] inclusive (paper's P_{i,j}).
  double range_sum(std::size_t first, std::size_t last) const;

  /// Sample a level index (multinomial draw of one coded block's level).
  std::size_t sample_level(Rng& rng) const { return alias_.sample(rng); }

 private:
  /// Clamps tiny negatives, checks the sum, renormalizes in place.
  static void validate(std::vector<double>& p);

  std::vector<double> p_;
  AliasTable alias_;
};

}  // namespace prlc::codes
