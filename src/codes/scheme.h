// Coding-scheme selector shared across encoders, decoders and benches.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "util/check.h"

namespace prlc::codes {

/// The three codes the paper compares (Fig. 1).
enum class Scheme {
  kRlc,  ///< classic random linear code: every block mixes all N sources
  kSlc,  ///< stacked: level-k blocks mix only level-k sources
  kPlc,  ///< progressive: level-k blocks mix all sources of levels 1..k
};

inline const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kRlc:
      return "RLC";
    case Scheme::kSlc:
      return "SLC";
    case Scheme::kPlc:
      return "PLC";
  }
  PRLC_ASSERT(false, "unknown scheme");
}

/// Non-throwing parse ("RLC"/"rlc", "SLC"/"slc", "PLC"/"plc"); nullopt on
/// anything else. The front door for CLI/bench flag handling, which turns
/// a bad value into a usage message instead of a PRLC_REQUIRE abort.
inline std::optional<Scheme> try_scheme_from_string(std::string_view name) {
  if (name == "RLC" || name == "rlc") return Scheme::kRlc;
  if (name == "SLC" || name == "slc") return Scheme::kSlc;
  if (name == "PLC" || name == "plc") return Scheme::kPlc;
  return std::nullopt;
}

/// Throwing wrapper for library-internal callers with validated input.
inline Scheme scheme_from_string(const std::string& name) {
  const auto scheme = try_scheme_from_string(name);
  PRLC_REQUIRE(scheme.has_value(), "unknown scheme name: " + name);
  return *scheme;
}

}  // namespace prlc::codes
