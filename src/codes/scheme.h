// Coding-scheme selector shared across encoders, decoders and benches.
#pragma once

#include <string>

#include "util/check.h"

namespace prlc::codes {

/// The three codes the paper compares (Fig. 1).
enum class Scheme {
  kRlc,  ///< classic random linear code: every block mixes all N sources
  kSlc,  ///< stacked: level-k blocks mix only level-k sources
  kPlc,  ///< progressive: level-k blocks mix all sources of levels 1..k
};

inline const char* to_string(Scheme s) {
  switch (s) {
    case Scheme::kRlc:
      return "RLC";
    case Scheme::kSlc:
      return "SLC";
    case Scheme::kPlc:
      return "PLC";
  }
  PRLC_ASSERT(false, "unknown scheme");
}

inline Scheme scheme_from_string(const std::string& name) {
  if (name == "RLC" || name == "rlc") return Scheme::kRlc;
  if (name == "SLC" || name == "slc") return Scheme::kSlc;
  if (name == "PLC" || name == "plc") return Scheme::kPlc;
  PRLC_REQUIRE(false, "unknown scheme name: " + name);
}

}  // namespace prlc::codes
