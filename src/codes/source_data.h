// Source-block payload storage.
//
// The measured data of Sec. 2: N source blocks of `block_size` field
// symbols each. Encoders read payloads from here; tests compare decoder
// output against it.
#pragma once

#include <span>
#include <vector>

#include "gf/field_concept.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::codes {

template <gf::FieldPolicy F>
class SourceData {
 public:
  using Symbol = typename F::Symbol;

  /// `blocks` payloads of `block_size` symbols each, zero-initialized.
  SourceData(std::size_t blocks, std::size_t block_size)
      : blocks_(blocks), block_size_(block_size), data_(blocks * block_size, Symbol{0}) {
    PRLC_REQUIRE(blocks > 0, "need at least one source block");
  }

  /// Random payloads — the usual test/benchmark workload.
  static SourceData random(std::size_t blocks, std::size_t block_size, Rng& rng) {
    SourceData d(blocks, block_size);
    for (auto& v : d.data_) v = static_cast<Symbol>(rng.uniform(F::order()));
    return d;
  }

  std::size_t blocks() const { return blocks_; }
  std::size_t block_size() const { return block_size_; }

  std::span<const Symbol> block(std::size_t i) const {
    PRLC_REQUIRE(i < blocks_, "source block index out of range");
    return {data_.data() + i * block_size_, block_size_};
  }

  std::span<Symbol> block(std::size_t i) {
    PRLC_REQUIRE(i < blocks_, "source block index out of range");
    return {data_.data() + i * block_size_, block_size_};
  }

 private:
  std::size_t blocks_;
  std::size_t block_size_;
  std::vector<Symbol> data_;
};

}  // namespace prlc::codes
