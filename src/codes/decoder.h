// Scheme-aware priority decoder with partial recovery (Sec. 3.2).
//
// RLC/PLC blocks feed one progressive Gauss-Jordan decoder over all N
// unknowns; the decoded *prefix* of source blocks determines how many
// whole priority levels are recovered. SLC blocks feed n independent
// per-level decoders (each level is its own RLC), and under the strict
// priority model the decoder reports the longest prefix of fully-decoded
// levels.
#pragma once

#include <memory>
#include <vector>

#include "codes/coded_block.h"
#include "codes/priority_spec.h"
#include "codes/scheme.h"
#include "gf/field_concept.h"
#include "linalg/progressive_decoder.h"
#include "util/check.h"

namespace prlc::codes {

template <gf::FieldPolicy F>
class PriorityDecoder {
 public:
  using Symbol = typename F::Symbol;

  /// `payload_size` 0 = coefficient-only decoding.
  PriorityDecoder(Scheme scheme, PrioritySpec spec, std::size_t payload_size = 0)
      : scheme_(scheme), spec_(std::move(spec)), payload_size_(payload_size) {
    if (scheme_ == Scheme::kSlc) {
      level_decoders_.reserve(spec_.levels());
      for (std::size_t i = 0; i < spec_.levels(); ++i) {
        level_decoders_.push_back(std::make_unique<linalg::ProgressiveDecoder<F>>(
            spec_.level_size(i), payload_size_));
      }
    } else {
      joint_decoder_ =
          std::make_unique<linalg::ProgressiveDecoder<F>>(spec_.total(), payload_size_);
    }
  }

  const PrioritySpec& spec() const { return spec_; }
  Scheme scheme() const { return scheme_; }

  /// Feed one coded block; returns true when it was innovative.
  bool add(const CodedBlock<F>& block) {
    return add(block.level, block.coeffs, block.payload);
  }

  /// Span-based twin of add(): feeds coefficient/payload views without
  /// materializing an owning CodedBlock (the zero-copy wire path — the
  /// decoder copies into its own work buffers, so the views only need to
  /// live for the call).
  bool add(std::size_t level, std::span<const Symbol> coeffs,
           std::span<const Symbol> payload) {
    PRLC_REQUIRE(coeffs.size() == spec_.total(), "coded block width mismatch");
    PRLC_REQUIRE(payload.size() == payload_size_, "coded block payload mismatch");
    ++blocks_seen_;
    if (scheme_ != Scheme::kSlc) {
      return joint_decoder_->add(coeffs, payload);
    }
    PRLC_REQUIRE(level < spec_.levels(), "coded block level out of range");
    const std::size_t begin = spec_.level_begin(level);
    const std::size_t len = spec_.level_size(level);
    // An SLC block must not reference blocks outside its level.
    for (std::size_t j = 0; j < spec_.total(); ++j) {
      const bool inside = j >= begin && j < begin + len;
      PRLC_REQUIRE(inside || coeffs[j] == 0,
                   "SLC coded block has support outside its level");
    }
    return level_decoders_[level]->add(coeffs.subspan(begin, len), payload);
  }

  /// Feed one sparse coded block; returns true when it was innovative.
  bool add(const SparseCodedBlock<F>& block) {
    return add_sparse(block.level, block.indices, block.values, block.payload);
  }

  /// Sparse twin of add(): the equation arrives as sorted (index, value)
  /// pairs and is routed straight into the hybrid peeling/GE path without
  /// ever materializing a dense coefficient vector — the only O(nnz) entry
  /// point, which is what makes N = 10^5 runs practical.
  bool add_sparse(std::size_t level, std::span<const std::uint32_t> indices,
                  std::span<const Symbol> values, std::span<const Symbol> payload) {
    PRLC_REQUIRE(payload.size() == payload_size_, "coded block payload mismatch");
    ++blocks_seen_;
    if (scheme_ != Scheme::kSlc) {
      return joint_decoder_->add_sparse(indices, values, payload);
    }
    PRLC_REQUIRE(level < spec_.levels(), "coded block level out of range");
    const std::size_t begin = spec_.level_begin(level);
    const std::size_t len = spec_.level_size(level);
    // An SLC block must not reference blocks outside its level; translate
    // indices into the per-level decoder's coordinate frame.
    slc_idx_.clear();
    slc_idx_.reserve(indices.size());
    for (const std::uint32_t j : indices) {
      PRLC_REQUIRE(j >= begin && j < begin + len,
                   "SLC coded block has support outside its level");
      slc_idx_.push_back(j - static_cast<std::uint32_t>(begin));
    }
    return level_decoders_[level]->add_sparse(slc_idx_, values, payload);
  }

  std::size_t blocks_seen() const { return blocks_seen_; }

  /// Total rank accumulated (across per-level decoders for SLC).
  std::size_t rank() const {
    if (scheme_ != Scheme::kSlc) return joint_decoder_->rank();
    std::size_t r = 0;
    for (const auto& d : level_decoders_) r += d->rank();
    return r;
  }

  /// Whether level i is completely recovered. For SLC this is the
  /// per-level decoder's completion, independent of other levels; for
  /// RLC/PLC it requires the decoded prefix to cover the level.
  bool is_level_decoded(std::size_t i) const {
    PRLC_REQUIRE(i < spec_.levels(), "level out of range");
    if (scheme_ == Scheme::kSlc) {
      return level_decoders_[i]->decoded_prefix() == spec_.level_size(i);
    }
    return joint_decoder_->decoded_prefix() >= spec_.prefix_size(i);
  }

  /// X in the paper's analysis: the number of *leading* priority levels
  /// recovered (strict priority model).
  std::size_t decoded_levels() const {
    if (scheme_ != Scheme::kSlc) {
      return spec_.levels_covered_by_prefix(joint_decoder_->decoded_prefix());
    }
    std::size_t k = 0;
    while (k < spec_.levels() && is_level_decoded(k)) ++k;
    return k;
  }

  /// Number of source blocks recovered in priority order (b_k for SLC's
  /// decoded level prefix; the raw decoded prefix for RLC/PLC).
  std::size_t decoded_prefix_blocks() const {
    if (scheme_ != Scheme::kSlc) return joint_decoder_->decoded_prefix();
    const std::size_t k = decoded_levels();
    return k == 0 ? 0 : spec_.prefix_size(k - 1);
  }

  /// Whether an individual source block is recovered (not restricted to
  /// the priority prefix — SLC can decode a later level while an earlier
  /// one is still missing).
  bool is_block_decoded(std::size_t j) const {
    PRLC_REQUIRE(j < spec_.total(), "source block index out of range");
    if (scheme_ != Scheme::kSlc) return joint_decoder_->is_decoded(j);
    const std::size_t level = spec_.level_of_block(j);
    return level_decoders_[level]->is_decoded(j - spec_.level_begin(level));
  }

  /// Recovered payload of a decoded source block.
  std::span<const Symbol> recovered(std::size_t j) const {
    PRLC_REQUIRE(payload_size_ > 0, "decoder was built without payloads");
    PRLC_REQUIRE(is_block_decoded(j), "source block is not decoded yet");
    if (scheme_ != Scheme::kSlc) return joint_decoder_->solution(j);
    const std::size_t level = spec_.level_of_block(j);
    return level_decoders_[level]->solution(j - spec_.level_begin(level));
  }

 private:
  Scheme scheme_;
  PrioritySpec spec_;
  std::size_t payload_size_;
  std::unique_ptr<linalg::ProgressiveDecoder<F>> joint_decoder_;
  std::vector<std::unique_ptr<linalg::ProgressiveDecoder<F>>> level_decoders_;
  std::vector<std::uint32_t> slc_idx_;  ///< add_sparse level-translation scratch
  std::size_t blocks_seen_ = 0;
};

}  // namespace prlc::codes
