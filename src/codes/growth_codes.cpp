#include "codes/growth_codes.h"

#include <algorithm>
#include <cmath>

namespace prlc::codes {

GrowthEncoder::GrowthEncoder(std::size_t total_blocks, const SourceData<gf::Gf256>* source)
    : total_blocks_(total_blocks), source_(source) {
  PRLC_REQUIRE(total_blocks > 0, "need at least one source block");
  if (source_ != nullptr) {
    PRLC_REQUIRE(source_->blocks() == total_blocks_, "source data size mismatch");
  }
}

std::size_t GrowthEncoder::degree_for(std::size_t recovered) const {
  PRLC_REQUIRE(recovered <= total_blocks_, "recovered count exceeds N");
  if (recovered >= total_blocks_) return total_blocks_;
  // Kamra et al.'s switch points: degree d is optimal while
  // (d-1)/d <= r/N < d/(d+1), i.e. d = floor(N / (N - r)) — degree 1
  // until half the data is recovered, then growing.
  const double n = static_cast<double>(total_blocks_);
  const double d = std::floor(n / (n - static_cast<double>(recovered)));
  return std::clamp<std::size_t>(static_cast<std::size_t>(d), 1, total_blocks_);
}

GrowthSymbol GrowthEncoder::encode(std::size_t recovered, Rng& rng) const {
  const std::size_t d = degree_for(recovered);
  GrowthSymbol sym;
  sym.indices = rng.sample_without_replacement(total_blocks_, d);
  if (source_ != nullptr) {
    sym.payload.assign(source_->block_size(), 0);
    for (std::size_t i : sym.indices) {
      const auto blk = source_->block(i);
      for (std::size_t b = 0; b < blk.size(); ++b) sym.payload[b] ^= blk[b];
    }
  }
  return sym;
}

GrowthSymbol GrowthEncoder::encode_auto(GrowthFeedback feedback, std::size_t true_recovered,
                                        std::size_t emitted, Rng& rng) const {
  if (feedback == GrowthFeedback::kOracle) return encode(true_recovered, rng);
  const double n = static_cast<double>(total_blocks_);
  const double r_hat = n * (1.0 - std::exp(-static_cast<double>(emitted) / n));
  return encode(std::min<std::size_t>(static_cast<std::size_t>(r_hat), total_blocks_ - 1),
                rng);
}

}  // namespace prlc::codes
