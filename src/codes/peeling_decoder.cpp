#include "codes/peeling_decoder.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "gf/gf256.h"

namespace prlc::codes {

PeelingDecoder::PeelingDecoder(std::size_t unknowns, std::size_t payload_size)
    : payload_size_(payload_size),
      decoded_(unknowns, false),
      solutions_(unknowns),
      waiters_(unknowns) {
  PRLC_REQUIRE(unknowns > 0, "decoder needs at least one unknown");
}

std::size_t PeelingDecoder::add(std::span<const std::size_t> indices,
                                std::span<const std::uint8_t> payload) {
  return add_impl(indices, {}, payload);
}

std::size_t PeelingDecoder::add(std::span<const std::size_t> indices,
                                std::span<const std::uint8_t> coefficients,
                                std::span<const std::uint8_t> payload) {
  PRLC_REQUIRE(coefficients.size() == indices.size(),
               "coefficient count must match index count");
  return add_impl(indices, coefficients, payload);
}

std::size_t PeelingDecoder::add_impl(std::span<const std::size_t> indices,
                                     std::span<const std::uint8_t> coefficients,
                                     std::span<const std::uint8_t> payload) {
  PRLC_REQUIRE(!indices.empty(), "a symbol must cover at least one source block");
  PRLC_REQUIRE(payload.size() == payload_size_, "payload width mismatch");
  // Validate the *raw* index span before splitting into decoded/pending:
  // a duplicated index whose block is already decoded would otherwise be
  // subtracted twice — cancelling silently — and corrupt the symbol.
  for (std::size_t i : indices) {
    PRLC_REQUIRE(i < decoded_.size(), "symbol index out of range");
  }
  scratch_.assign(indices.begin(), indices.end());
  std::sort(scratch_.begin(), scratch_.end());
  PRLC_REQUIRE(std::adjacent_find(scratch_.begin(), scratch_.end()) == scratch_.end(),
               "symbol indices must be distinct");
  for (std::uint8_t c : coefficients) {
    PRLC_REQUIRE(c != 0, "symbol coefficients must be nonzero");
  }
  ++symbols_seen_;

  // Coefficient of the k-th listed block (an XOR symbol is all ones).
  const auto coef_at = [&](std::size_t k) -> std::uint8_t {
    return coefficients.empty() ? std::uint8_t{1} : coefficients[k];
  };

  Symbol sym;
  sym.payload.assign(payload.begin(), payload.end());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t i = indices[k];
    if (decoded_[i]) {
      // Subtract the known block immediately: payload -= c * solution.
      gf::Gf256::axpy(std::span<std::uint8_t>(sym.payload), coef_at(k), solutions_[i]);
    } else {
      sym.pending.push_back(i);
      sym.coef.push_back(coef_at(k));
    }
  }

  std::size_t newly = 0;
  if (sym.pending.empty()) return 0;  // fully redundant
  if (sym.pending.size() == 1) {
    // Degree one decodes directly: divide out the lone coefficient.
    if (sym.coef[0] != 1) {
      gf::Gf256::scale(std::span<std::uint8_t>(sym.payload), gf::Gf256::inv(sym.coef[0]));
    }
    resolve(sym.pending[0], std::move(sym.payload), newly);
    return newly;
  }
  const std::size_t id = symbols_.size();
  for (std::size_t i : sym.pending) waiters_[i].push_back(id);
  symbols_.push_back(std::move(sym));
  ++buffered_;
  buffered_payload_bytes_ += payload_size_;
  return 0;
}

void PeelingDecoder::retire(Symbol& sym) {
  sym.retired = true;
  --buffered_;
  buffered_payload_bytes_ -= payload_size_;
  // Release the buffers outright (clear() keeps capacity): resident bytes
  // stay bounded by the live symbol set.
  std::vector<std::size_t>().swap(sym.pending);
  std::vector<std::uint8_t>().swap(sym.coef);
  std::vector<std::uint8_t>().swap(sym.payload);
}

void PeelingDecoder::resolve(std::size_t first, std::vector<std::uint8_t> first_payload,
                             std::size_t& newly) {
  std::deque<std::pair<std::size_t, std::vector<std::uint8_t>>> queue;
  queue.emplace_back(first, std::move(first_payload));
  while (!queue.empty()) {
    auto [i, payload] = std::move(queue.front());
    queue.pop_front();
    if (decoded_[i]) continue;
    decoded_[i] = true;
    solutions_[i] = std::move(payload);
    ++decoded_count_;
    ++newly;
    // Reduce every buffered symbol waiting on i.
    for (std::size_t id : waiters_[i]) {
      Symbol& sym = symbols_[id];
      if (sym.retired) continue;
      const auto it = std::find(sym.pending.begin(), sym.pending.end(), i);
      if (it == sym.pending.end()) continue;
      const std::size_t pos = static_cast<std::size_t>(it - sym.pending.begin());
      const std::uint8_t c = sym.coef[pos];
      sym.pending.erase(it);
      sym.coef.erase(sym.coef.begin() + static_cast<std::ptrdiff_t>(pos));
      gf::Gf256::axpy(std::span<std::uint8_t>(sym.payload), c, solutions_[i]);
      if (sym.pending.size() == 1) {
        const std::size_t last = sym.pending[0];
        if (!decoded_[last]) {
          if (sym.coef[0] != 1) {
            gf::Gf256::scale(std::span<std::uint8_t>(sym.payload),
                             gf::Gf256::inv(sym.coef[0]));
          }
          // Move — not copy — the retired symbol's payload into the work
          // queue; retire() below releases whatever storage remains.
          queue.emplace_back(last, std::move(sym.payload));
        }
        retire(sym);
      } else if (sym.pending.empty()) {
        retire(sym);
      }
    }
    waiters_[i].clear();
  }
}

std::size_t PeelingDecoder::decoded_prefix() const {
  std::size_t k = 0;
  while (k < decoded_.size() && decoded_[k]) ++k;
  return k;
}

std::span<const std::uint8_t> PeelingDecoder::solution(std::size_t i) const {
  PRLC_REQUIRE(payload_size_ > 0, "decoder was built without payloads");
  PRLC_REQUIRE(is_decoded(i), "unknown is not decoded yet");
  return solutions_[i];
}

}  // namespace prlc::codes
