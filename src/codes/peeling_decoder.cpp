#include "codes/peeling_decoder.h"

#include <algorithm>
#include <deque>

namespace prlc::codes {

PeelingDecoder::PeelingDecoder(std::size_t unknowns, std::size_t payload_size)
    : payload_size_(payload_size),
      decoded_(unknowns, false),
      solutions_(unknowns),
      waiters_(unknowns) {
  PRLC_REQUIRE(unknowns > 0, "decoder needs at least one unknown");
}

std::size_t PeelingDecoder::add(std::span<const std::size_t> indices,
                                std::span<const std::uint8_t> payload) {
  PRLC_REQUIRE(!indices.empty(), "a symbol must cover at least one source block");
  PRLC_REQUIRE(payload.size() == payload_size_, "payload width mismatch");
  ++symbols_seen_;

  Symbol sym;
  sym.payload.assign(payload.begin(), payload.end());
  for (std::size_t i : indices) {
    PRLC_REQUIRE(i < decoded_.size(), "symbol index out of range");
    if (decoded_[i]) {
      // Subtract the known block immediately.
      for (std::size_t b = 0; b < payload_size_; ++b) sym.payload[b] ^= solutions_[i][b];
    } else {
      sym.pending.push_back(i);
    }
  }
  std::sort(sym.pending.begin(), sym.pending.end());
  PRLC_REQUIRE(std::adjacent_find(sym.pending.begin(), sym.pending.end()) == sym.pending.end(),
               "symbol indices must be distinct");

  std::size_t newly = 0;
  if (sym.pending.empty()) return 0;  // fully redundant
  if (sym.pending.size() == 1) {
    resolve(sym.pending[0], std::move(sym.payload), newly);
    return newly;
  }
  const std::size_t id = symbols_.size();
  for (std::size_t i : sym.pending) waiters_[i].push_back(id);
  symbols_.push_back(std::move(sym));
  ++buffered_;
  return 0;
}

void PeelingDecoder::resolve(std::size_t first, std::vector<std::uint8_t> first_payload,
                             std::size_t& newly) {
  std::deque<std::pair<std::size_t, std::vector<std::uint8_t>>> queue;
  queue.emplace_back(first, std::move(first_payload));
  while (!queue.empty()) {
    auto [i, payload] = std::move(queue.front());
    queue.pop_front();
    if (decoded_[i]) continue;
    decoded_[i] = true;
    solutions_[i] = std::move(payload);
    ++decoded_count_;
    ++newly;
    // Reduce every buffered symbol waiting on i.
    for (std::size_t id : waiters_[i]) {
      Symbol& sym = symbols_[id];
      if (sym.retired) continue;
      const auto it = std::find(sym.pending.begin(), sym.pending.end(), i);
      if (it == sym.pending.end()) continue;
      sym.pending.erase(it);
      for (std::size_t b = 0; b < payload_size_; ++b) sym.payload[b] ^= solutions_[i][b];
      if (sym.pending.size() == 1) {
        const std::size_t last = sym.pending[0];
        sym.retired = true;
        --buffered_;
        if (!decoded_[last]) queue.emplace_back(last, sym.payload);
      } else if (sym.pending.empty()) {
        sym.retired = true;
        --buffered_;
      }
    }
    waiters_[i].clear();
  }
}

std::size_t PeelingDecoder::decoded_prefix() const {
  std::size_t k = 0;
  while (k < decoded_.size() && decoded_[k]) ++k;
  return k;
}

std::span<const std::uint8_t> PeelingDecoder::solution(std::size_t i) const {
  PRLC_REQUIRE(payload_size_ > 0, "decoder was built without payloads");
  PRLC_REQUIRE(is_decoded(i), "unknown is not decoded yet");
  return solutions_[i];
}

}  // namespace prlc::codes
