// Execution graph of GF(2^8) span primitives over payload tiles.
//
// The payload data plane (encode, progressive decode, survivor
// recombination) is a composition of four primitive operations over
// equal-length byte rows: copy, zero, mul_region (dst = a*src) and axpy
// (dst ^= a*src). An OpGraph expresses one such computation as a DAG:
//
//   * whole rows are registered as *buffers*;
//   * row-level ops are split into cache-tile-sized chunks (one node per
//     tile), so a 1 MiB axpy becomes 32 independent 32 KiB nodes;
//   * dependencies are inferred from data flow per (buffer, tile):
//     a node waits for the previous writer of every tile it touches and —
//     for writes — for all readers since that writer (RAW, WAW and WAR
//     hazards). Tiles never overlap, so two nodes on different tiles
//     never conflict.
//
// Execution is dependency-counting: every node carries the number of
// unsatisfied predecessors; finishing a node decrements its successors
// and pushes the newly-ready ones onto a shared ready queue, with the
// first successor executed inline ("continuation") so chains on one tile
// stay on one core with the tile hot in cache.
//
// Determinism: all hazard pairs on a tile are ordered by graph edges in
// program (build) order, so every schedule — serial, 2 threads, 16
// threads, work stealing or not — applies the same byte-level operations
// to each tile in the same order. Output bytes are identical to the
// serial path by construction; tests assert it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <vector>

#include "runtime/thread_pool.h"

namespace prlc::codec {

enum class OpKind : std::uint8_t {
  kZero,       ///< dst = 0
  kCopy,       ///< dst = src
  kMulRegion,  ///< dst = factor * src
  kAxpy,       ///< dst ^= factor * src
  kScale,      ///< dst = factor * dst
};

class OpGraph {
 public:
  static constexpr std::uint32_t kNoBuffer = 0xffffffffu;

  /// `tile_bytes` is the chunk size row ops are split into (>= 1).
  explicit OpGraph(std::size_t tile_bytes);

  /// Register a writable row. The memory must outlive execution.
  std::uint32_t add_buffer(std::uint8_t* data, std::size_t size);

  /// Register a read-only row (source payloads). Ops may only read it.
  std::uint32_t add_const_buffer(const std::uint8_t* data, std::size_t size);

  std::size_t tile_bytes() const { return tile_bytes_; }
  std::size_t buffer_count() const { return buffers_.size(); }
  std::size_t node_count() const { return kinds_.size(); }

  // Row-level ops, each split into per-tile nodes. Binary ops require the
  // two buffers to have equal size; src may equal dst only for scale.
  void zero(std::uint32_t dst);
  void copy(std::uint32_t dst, std::uint32_t src);
  void mul_region(std::uint32_t dst, std::uint32_t src, std::uint8_t factor);
  void axpy(std::uint32_t dst, std::uint32_t src, std::uint8_t factor);
  void scale(std::uint32_t dst, std::uint8_t factor);

  /// Freeze the graph: flatten the successor lists, compute the critical
  /// path, and collect the initial ready set. Required before execution;
  /// no ops may be added afterwards.
  void finalize();

  /// Longest dependency chain, in nodes (0 for an empty graph).
  std::size_t critical_path() const { return critical_path_; }

  /// Total payload bytes the graph's nodes touch as destinations.
  std::size_t bytes_scheduled() const { return bytes_scheduled_; }

  /// Run every node on the calling thread, in build order (a topological
  /// order by construction). The deterministic reference executor.
  void execute_serial();

  /// Run the graph across `pool` with dependency counting. Byte-identical
  /// to execute_serial() for any pool size. Re-executable: each call
  /// resets the dependency counters first.
  void execute(runtime::ThreadPool& pool);

  /// execute(pool) when a pool is given, execute_serial() otherwise.
  void run(runtime::ThreadPool* pool);

 private:
  struct Buffer {
    const std::uint8_t* read = nullptr;
    std::uint8_t* write = nullptr;  ///< null for const buffers
    std::size_t size = 0;
    std::uint32_t first_tile = 0;  ///< index into the per-tile hazard state
    std::uint32_t tiles = 0;
  };

  std::uint32_t register_buffer(const std::uint8_t* read, std::uint8_t* write,
                                std::size_t size);
  void add_op(OpKind kind, std::uint32_t dst, std::uint32_t src, std::uint8_t factor);
  void add_tile_node(OpKind kind, std::uint8_t factor, std::uint8_t* dst,
                     const std::uint8_t* src, std::uint32_t len, std::uint32_t dst_tile,
                     std::uint32_t src_tile);
  void run_node(std::uint32_t id);
  void release_successors(std::uint32_t id, std::vector<std::uint32_t>& local);
  void worker_drain();

  std::size_t tile_bytes_;
  std::vector<Buffer> buffers_;

  // Node storage (structure-of-arrays keeps the execute loop's working
  // set dense).
  std::vector<OpKind> kinds_;
  std::vector<std::uint8_t> factors_;
  std::vector<std::uint8_t*> dsts_;
  std::vector<const std::uint8_t*> srcs_;
  std::vector<std::uint32_t> lens_;
  std::vector<std::uint32_t> dep_counts_;

  // Per-(buffer, tile) hazard state during build.
  std::vector<std::uint32_t> last_writer_;            // kNoNode when unwritten
  std::vector<std::vector<std::uint32_t>> readers_;   // readers since last write

  // Successor edges: per-node vectors during build, flattened by
  // finalize() into succ_edges_ with [succ_begin_[i], succ_begin_[i+1]).
  std::vector<std::vector<std::uint32_t>> succ_build_;
  std::vector<std::uint32_t> succ_edges_;
  std::vector<std::uint32_t> succ_begin_;

  std::vector<std::uint32_t> roots_;
  std::size_t critical_path_ = 0;
  std::size_t bytes_scheduled_ = 0;
  bool finalized_ = false;

  // Execution state (valid during execute()).
  std::unique_ptr<std::atomic<std::uint32_t>[]> pending_;
  std::atomic<std::size_t> remaining_{0};
  std::mutex ready_mu_;
  std::condition_variable ready_cv_;
  std::vector<std::uint32_t> ready_;
};

}  // namespace prlc::codec
