// Payload-level codec: priority-RLC encode, progressive decode and
// survivor recombination as execution graphs.
//
// The coefficient-level machinery (PriorityEncoder, ProgressiveDecoder)
// answers *which* linear combinations exist and *whether* they decode;
// this front-end moves the actual multi-MB payloads at hardware speed.
// Every entry point follows the same shape:
//
//   1. a cheap coefficient phase on one thread (drawing rows is the
//      encoder's job; decode runs a coefficient-only ProgressiveDecoder
//      with a schedule recorder — see linalg/elimination_schedule.h);
//   2. an OpGraph over the payload rows, split into cache-tile-sized
//      chunks (CodecOptions::chunk_bytes, default the gf256 batch tile);
//   3. graph execution — serial (the reference path) or across the
//      work-stealing ThreadPool, byte-identical either way.
//
// Encode: coded payload b = sum_j beta_{b,j} * x_j becomes, per tile, a
// chain mul_region + axpy* — all (block, tile) chains independent, so a
// 64 MiB object saturates every core. Decode replays the recorded
// elimination schedule over the arriving payload buffers in place (no
// copies; the buffers that end up holding pivot rows *are* the decoded
// payloads). Recombination (repair) builds one combination chain over
// survivor payloads without ever reconstructing source data — the
// Dimakis-style "new coded block from coded blocks" primitive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "codec/op_graph.h"
#include "codes/coded_block.h"
#include "codes/priority_spec.h"
#include "codes/scheme.h"
#include "codes/source_data.h"
#include "gf/gf256.h"
#include "runtime/thread_pool.h"

namespace prlc::codec {

struct CodecOptions {
  /// Tile size for graph nodes; 0 = gf::gf256_tile_bytes() (PRLC_GF_TILE).
  std::size_t chunk_bytes = 0;
  /// Execution substrate; nullptr = serial reference path. The pool must
  /// outlive the codec.
  runtime::ThreadPool* pool = nullptr;
};

/// One recovered unknown: where its payload lives after decode().
struct DecodedPayload {
  bool decoded = false;
  /// View into the caller's payload buffer that holds the recovered
  /// payload (the buffer of the input equation bound to this pivot).
  std::span<const std::uint8_t> payload;
};

struct PayloadDecodeResult {
  std::size_t rank = 0;
  std::size_t decoded_prefix = 0;  ///< leading source blocks recovered
  std::size_t decoded_levels = 0;  ///< leading whole priority levels
  std::vector<DecodedPayload> blocks;  ///< per source block, size N
};

class PayloadCodec {
 public:
  using F = gf::Gf256;

  PayloadCodec(codes::Scheme scheme, codes::PrioritySpec spec, CodecOptions options = {});

  const codes::PrioritySpec& spec() const { return spec_; }
  codes::Scheme scheme() const { return scheme_; }
  std::size_t chunk_bytes() const { return chunk_bytes_; }

  /// --- encode -----------------------------------------------------------
  /// Append the graph computing out[b] = sum_j rows[b][j] * source_j to
  /// `graph`. Every row must be spec().total() wide; every out[b] must be
  /// source.block_size() bytes. The caller finalizes and runs the graph.
  void build_encode_graph(OpGraph& graph,
                          std::span<const std::vector<std::uint8_t>> coeff_rows,
                          const codes::SourceData<F>& source,
                          std::span<std::uint8_t* const> outs) const;

  /// Convenience: build, finalize and run the encode graph; returns the
  /// coded payloads in row order.
  std::vector<std::vector<std::uint8_t>> encode(
      std::span<const std::vector<std::uint8_t>> coeff_rows,
      const codes::SourceData<F>& source) const;

  /// --- progressive decode ----------------------------------------------
  /// Decode from coefficient rows plus matching payload buffers. The
  /// payload buffers are consumed: elimination happens *in* them, and the
  /// result's views point back into them. All payloads must share one
  /// size; rows[i] must be spec().total() wide.
  PayloadDecodeResult decode(std::span<const std::vector<std::uint8_t>> coeff_rows,
                             std::span<std::vector<std::uint8_t>> payloads) const;

  /// --- survivor recombination (repair) ---------------------------------
  /// New coded block from K survivors: coeffs = sum_i gamma[i]*rows[i],
  /// payload = sum_i gamma[i]*payloads[i]; `level` is assigned verbatim.
  /// Linearity makes the result distributed exactly like a fresh coded
  /// block re-encoded from source — without touching source data.
  codes::CodedBlock<F> recombine(std::span<const std::vector<std::uint8_t>> coeff_rows,
                                 std::span<const std::span<const std::uint8_t>> payloads,
                                 std::span<const std::uint8_t> gamma,
                                 std::size_t level) const;

 private:
  codes::Scheme scheme_;
  codes::PrioritySpec spec_;
  std::size_t chunk_bytes_;
  runtime::ThreadPool* pool_;
};

}  // namespace prlc::codec
