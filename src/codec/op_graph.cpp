#include "codec/op_graph.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "gf/gf256_kernels.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace prlc::codec {

namespace {

constexpr std::uint32_t kNoNode = 0xffffffffu;

obs::Counter& op_counter(OpKind kind) {
  static obs::Counter& zero = obs::counter("codec.ops.zero");
  static obs::Counter& copy = obs::counter("codec.ops.copy");
  static obs::Counter& mul = obs::counter("codec.ops.mul_region");
  static obs::Counter& axpy = obs::counter("codec.ops.axpy");
  static obs::Counter& scale = obs::counter("codec.ops.scale");
  switch (kind) {
    case OpKind::kZero:
      return zero;
    case OpKind::kCopy:
      return copy;
    case OpKind::kMulRegion:
      return mul;
    case OpKind::kAxpy:
      return axpy;
    case OpKind::kScale:
      return scale;
  }
  PRLC_ASSERT(false, "unknown op kind");
}

}  // namespace

OpGraph::OpGraph(std::size_t tile_bytes) : tile_bytes_(tile_bytes) {
  PRLC_REQUIRE(tile_bytes_ > 0, "tile size must be positive");
}

std::uint32_t OpGraph::register_buffer(const std::uint8_t* read, std::uint8_t* write,
                                       std::size_t size) {
  PRLC_REQUIRE(!finalized_, "graph is finalized");
  PRLC_REQUIRE(size > 0, "buffers must be non-empty");
  Buffer b;
  b.read = read;
  b.write = write;
  b.size = size;
  b.first_tile = static_cast<std::uint32_t>(last_writer_.size());
  b.tiles = static_cast<std::uint32_t>((size + tile_bytes_ - 1) / tile_bytes_);
  last_writer_.resize(last_writer_.size() + b.tiles, kNoNode);
  readers_.resize(readers_.size() + b.tiles);
  buffers_.push_back(b);
  return static_cast<std::uint32_t>(buffers_.size() - 1);
}

std::uint32_t OpGraph::add_buffer(std::uint8_t* data, std::size_t size) {
  return register_buffer(data, data, size);
}

std::uint32_t OpGraph::add_const_buffer(const std::uint8_t* data, std::size_t size) {
  return register_buffer(data, nullptr, size);
}

void OpGraph::add_tile_node(OpKind kind, std::uint8_t factor, std::uint8_t* dst,
                            const std::uint8_t* src, std::uint32_t len,
                            std::uint32_t dst_tile, std::uint32_t src_tile) {
  const auto id = static_cast<std::uint32_t>(kinds_.size());
  kinds_.push_back(kind);
  factors_.push_back(factor);
  dsts_.push_back(dst);
  srcs_.push_back(src);
  lens_.push_back(len);
  succ_build_.emplace_back();
  bytes_scheduled_ += len;

  // Predecessors: last writer of the source tile (RAW), last writer of the
  // destination tile (WAW — and RAW for the read-modify-write ops), and
  // every reader of the destination since its last write (WAR).
  std::uint32_t preds[2] = {kNoNode, kNoNode};
  std::size_t npreds = 0;
  if (src_tile != kNoNode && last_writer_[src_tile] != kNoNode) {
    preds[npreds++] = last_writer_[src_tile];
  }
  if (last_writer_[dst_tile] != kNoNode) preds[npreds++] = last_writer_[dst_tile];
  if (npreds == 2 && preds[0] == preds[1]) npreds = 1;

  std::uint32_t deps = 0;
  for (std::size_t i = 0; i < npreds; ++i) {
    succ_build_[preds[i]].push_back(id);
    ++deps;
  }
  for (std::uint32_t reader : readers_[dst_tile]) {
    if ((npreds > 0 && reader == preds[0]) || (npreds > 1 && reader == preds[1])) {
      continue;
    }
    succ_build_[reader].push_back(id);
    ++deps;
  }

  if (src_tile != kNoNode) readers_[src_tile].push_back(id);
  last_writer_[dst_tile] = id;
  readers_[dst_tile].clear();
  dep_counts_.push_back(deps);
}

void OpGraph::add_op(OpKind kind, std::uint32_t dst, std::uint32_t src,
                     std::uint8_t factor) {
  PRLC_REQUIRE(!finalized_, "graph is finalized");
  PRLC_REQUIRE(dst < buffers_.size(), "destination buffer out of range");
  const Buffer& d = buffers_[dst];
  PRLC_REQUIRE(d.write != nullptr, "destination buffer is read-only");
  const bool unary = src == kNoBuffer;
  const Buffer* s = nullptr;
  if (!unary) {
    PRLC_REQUIRE(src < buffers_.size(), "source buffer out of range");
    s = &buffers_[src];
    PRLC_REQUIRE(s->size == d.size, "source/destination size mismatch");
    PRLC_REQUIRE(s->read != d.read, "source must differ from destination");
  }
  for (std::uint32_t t = 0; t < d.tiles; ++t) {
    const std::size_t off = static_cast<std::size_t>(t) * tile_bytes_;
    const auto len = static_cast<std::uint32_t>(std::min(tile_bytes_, d.size - off));
    add_tile_node(kind, factor, d.write + off,
                  unary ? (kind == OpKind::kScale ? d.write + off : nullptr)
                        : s->read + off,
                  len, d.first_tile + t, unary ? kNoNode : s->first_tile + t);
  }
}

void OpGraph::zero(std::uint32_t dst) { add_op(OpKind::kZero, dst, kNoBuffer, 0); }

void OpGraph::copy(std::uint32_t dst, std::uint32_t src) {
  add_op(OpKind::kCopy, dst, src, 1);
}

void OpGraph::mul_region(std::uint32_t dst, std::uint32_t src, std::uint8_t factor) {
  add_op(OpKind::kMulRegion, dst, src, factor);
}

void OpGraph::axpy(std::uint32_t dst, std::uint32_t src, std::uint8_t factor) {
  add_op(OpKind::kAxpy, dst, src, factor);
}

void OpGraph::scale(std::uint32_t dst, std::uint8_t factor) {
  add_op(OpKind::kScale, dst, kNoBuffer, factor);
}

void OpGraph::finalize() {
  PRLC_REQUIRE(!finalized_, "graph is already finalized");
  finalized_ = true;
  const std::size_t n = kinds_.size();

  std::size_t edges = 0;
  for (const auto& s : succ_build_) edges += s.size();
  succ_begin_.resize(n + 1);
  succ_edges_.resize(edges);
  std::size_t at = 0;
  for (std::size_t i = 0; i < n; ++i) {
    succ_begin_[i] = static_cast<std::uint32_t>(at);
    std::copy(succ_build_[i].begin(), succ_build_[i].end(), succ_edges_.begin() + at);
    at += succ_build_[i].size();
  }
  succ_begin_[n] = static_cast<std::uint32_t>(at);
  succ_build_.clear();
  succ_build_.shrink_to_fit();
  last_writer_.clear();
  readers_.clear();

  // Build order is topological (every edge points forward), so one pass
  // computes the critical path.
  std::vector<std::uint32_t> depth(n, 1);
  for (std::size_t i = 0; i < n; ++i) {
    if (dep_counts_[i] == 0) roots_.push_back(static_cast<std::uint32_t>(i));
    for (std::uint32_t e = succ_begin_[i]; e < succ_begin_[i + 1]; ++e) {
      const std::uint32_t succ = succ_edges_[e];
      depth[succ] = std::max(depth[succ], depth[i] + 1);
    }
    critical_path_ = std::max<std::size_t>(critical_path_, depth[i]);
  }

  static obs::Counter& graphs = obs::counter("codec.graphs_finalized");
  static obs::Counter& nodes = obs::counter("codec.nodes_built");
  graphs.add();
  nodes.add(n);
  obs::gauge("codec.graph.nodes").set(static_cast<std::int64_t>(n));
  obs::gauge("codec.graph.critical_path").set(static_cast<std::int64_t>(critical_path_));
}

void OpGraph::run_node(std::uint32_t id) {
  const auto& ops = gf::gf256_active_ops();
  std::uint8_t* dst = dsts_[id];
  const std::uint8_t* src = srcs_[id];
  const std::uint32_t len = lens_[id];
  static obs::LatencyHistogram& tile_ns = obs::histogram("codec.tile_ns");
  static obs::Counter& bytes = obs::counter("codec.bytes_executed");
  static obs::Counter& executed = obs::counter("codec.nodes_executed");
  obs::ScopedTimer timer(tile_ns);
  switch (kinds_[id]) {
    case OpKind::kZero:
      std::memset(dst, 0, len);
      break;
    case OpKind::kCopy:
      std::memcpy(dst, src, len);
      break;
    case OpKind::kMulRegion:
    case OpKind::kScale:
      ops.mul_region(dst, src, factors_[id], len);
      break;
    case OpKind::kAxpy:
      ops.axpy(dst, src, factors_[id], len);
      break;
  }
  op_counter(kinds_[id]).add();
  bytes.add(len);
  executed.add();
}

void OpGraph::execute_serial() {
  PRLC_REQUIRE(finalized_, "finalize() the graph before executing");
  for (std::uint32_t id = 0; id < kinds_.size(); ++id) run_node(id);
}

void OpGraph::release_successors(std::uint32_t id, std::vector<std::uint32_t>& local) {
  // One newly-ready successor stays with this worker (continuation — a
  // tile's op chain runs back-to-back with the tile hot in cache); the
  // rest are published for other workers.
  std::size_t published = 0;
  for (std::uint32_t e = succ_begin_[id]; e < succ_begin_[id + 1]; ++e) {
    const std::uint32_t succ = succ_edges_[e];
    if (pending_[succ].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      local.push_back(succ);
    }
  }
  if (local.size() > 1) {
    std::lock_guard<std::mutex> lk(ready_mu_);
    while (local.size() > 1) {
      ready_.push_back(local.back());
      local.pop_back();
      ++published;
    }
  }
  if (published > 0) ready_cv_.notify_all();
}

void OpGraph::worker_drain() {
  std::vector<std::uint32_t> local;
  for (;;) {
    std::uint32_t id = kNoNode;
    if (!local.empty()) {
      id = local.back();
      local.pop_back();
    } else {
      std::unique_lock<std::mutex> lk(ready_mu_);
      if (!ready_.empty()) {
        id = ready_.back();
        ready_.pop_back();
      } else if (remaining_.load(std::memory_order_acquire) == 0) {
        return;
      } else {
        // Our pending nodes are being released by other workers; sleep
        // briefly, re-check (the timeout re-arms against lost wakeups).
        ready_cv_.wait_for(lk, std::chrono::milliseconds(1), [&] {
          return !ready_.empty() || remaining_.load(std::memory_order_acquire) == 0;
        });
        continue;
      }
    }
    run_node(id);
    release_successors(id, local);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lk(ready_mu_);
      ready_cv_.notify_all();
    }
  }
}

void OpGraph::execute(runtime::ThreadPool& pool) {
  PRLC_REQUIRE(finalized_, "finalize() the graph before executing");
  const std::size_t n = kinds_.size();
  if (n == 0) return;
  if (pending_ == nullptr) pending_ = std::make_unique<std::atomic<std::uint32_t>[]>(n);
  for (std::size_t i = 0; i < n; ++i) {
    pending_[i].store(dep_counts_[i], std::memory_order_relaxed);
  }
  remaining_.store(n, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(ready_mu_);
    ready_.assign(roots_.begin(), roots_.end());
  }
  const std::size_t workers = pool.thread_count();
  pool.for_each_index(workers, [this](std::size_t) { worker_drain(); });
  PRLC_ASSERT(remaining_.load(std::memory_order_acquire) == 0,
              "graph execution finished with unexecuted nodes");
}

void OpGraph::run(runtime::ThreadPool* pool) {
  if (pool != nullptr) {
    execute(*pool);
  } else {
    execute_serial();
  }
}

}  // namespace prlc::codec
