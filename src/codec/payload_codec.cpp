#include "codec/payload_codec.h"

#include <utility>

#include "gf/gf256_kernels.h"
#include "linalg/progressive_decoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace prlc::codec {

PayloadCodec::PayloadCodec(codes::Scheme scheme, codes::PrioritySpec spec,
                           CodecOptions options)
    : scheme_(scheme),
      spec_(std::move(spec)),
      chunk_bytes_(options.chunk_bytes != 0 ? options.chunk_bytes
                                            : gf::gf256_tile_bytes()),
      pool_(options.pool) {
  PRLC_REQUIRE(spec_.total() > 0, "priority spec has no source blocks");
  PRLC_REQUIRE(chunk_bytes_ > 0, "chunk size must be positive");
}

void PayloadCodec::build_encode_graph(OpGraph& graph,
                                      std::span<const std::vector<std::uint8_t>> coeff_rows,
                                      const codes::SourceData<F>& source,
                                      std::span<std::uint8_t* const> outs) const {
  PRLC_REQUIRE(source.blocks() == spec_.total(),
               "source data does not match the priority spec");
  PRLC_REQUIRE(coeff_rows.size() == outs.size(),
               "one output buffer per coefficient row required");
  const std::size_t n = spec_.total();
  const std::size_t payload = source.block_size();
  PRLC_REQUIRE(payload > 0, "source blocks are empty");

  std::vector<std::uint32_t> source_ids(n);
  for (std::size_t j = 0; j < n; ++j) {
    source_ids[j] = graph.add_const_buffer(source.block(j).data(), payload);
  }
  for (std::size_t b = 0; b < coeff_rows.size(); ++b) {
    const auto& row = coeff_rows[b];
    PRLC_REQUIRE(row.size() == n, "coefficient row width mismatch");
    const std::uint32_t out = graph.add_buffer(outs[b], payload);
    bool first = true;
    for (std::size_t j = 0; j < n; ++j) {
      if (row[j] == 0) continue;
      if (first) {
        graph.mul_region(out, source_ids[j], row[j]);
        first = false;
      } else {
        graph.axpy(out, source_ids[j], row[j]);
      }
    }
    // An all-zero row encodes the zero payload (the encoder never draws
    // one, but the graph must still define every output byte).
    if (first) graph.zero(out);
  }
}

std::vector<std::vector<std::uint8_t>> PayloadCodec::encode(
    std::span<const std::vector<std::uint8_t>> coeff_rows,
    const codes::SourceData<F>& source) const {
  obs::ScopedSpan span("codec.encode", "codec");
  std::vector<std::vector<std::uint8_t>> out(
      coeff_rows.size(), std::vector<std::uint8_t>(source.block_size()));
  std::vector<std::uint8_t*> ptrs;
  ptrs.reserve(out.size());
  for (auto& o : out) ptrs.push_back(o.data());

  OpGraph graph(chunk_bytes_);
  {
    obs::ScopedSpan build("codec.encode.build", "codec");
    build_encode_graph(graph, coeff_rows, source, ptrs);
    graph.finalize();
  }
  {
    obs::ScopedSpan exec("codec.encode.execute", "codec");
    graph.run(pool_);
  }
  return out;
}

PayloadDecodeResult PayloadCodec::decode(
    std::span<const std::vector<std::uint8_t>> coeff_rows,
    std::span<std::vector<std::uint8_t>> payloads) const {
  obs::ScopedSpan span("codec.decode", "codec");
  PRLC_REQUIRE(coeff_rows.size() == payloads.size(),
               "one payload buffer per coefficient row required");
  const std::size_t n = spec_.total();
  std::size_t payload_size = 0;
  for (const auto& p : payloads) {
    if (payload_size == 0) payload_size = p.size();
    PRLC_REQUIRE(p.size() == payload_size && !p.empty(),
                 "payload buffers must share one nonzero size");
  }

  // Phase 1: coefficient-only elimination, recording the payload-row
  // schedule instead of touching payload bytes.
  linalg::ProgressiveDecoder<F> coef_decoder(n);
  linalg::EliminationSchedule schedule;
  coef_decoder.set_schedule_recorder(&schedule);
  {
    obs::ScopedSpan coef("codec.decode.coefficients", "codec");
    for (const auto& row : coeff_rows) {
      PRLC_REQUIRE(row.size() == n, "coefficient row width mismatch");
      coef_decoder.add(row);
    }
  }

  // Phase 2: replay the schedule over the payload buffers as a graph.
  OpGraph graph(chunk_bytes_);
  {
    obs::ScopedSpan build("codec.decode.build", "codec");
    std::vector<std::uint32_t> buf_ids(payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i) {
      buf_ids[i] = graph.add_buffer(payloads[i].data(), payload_size);
    }
    using Sched = linalg::EliminationSchedule;
    for (const auto& op : schedule.ops) {
      switch (op.kind) {
        case Sched::OpKind::kAxpy:
          graph.axpy(buf_ids[op.target], buf_ids[op.source], op.factor);
          break;
        case Sched::OpKind::kScale:
          graph.scale(buf_ids[op.target], op.factor);
          break;
      }
    }
    graph.finalize();
  }
  {
    obs::ScopedSpan exec("codec.decode.execute", "codec");
    graph.run(pool_);
  }

  PayloadDecodeResult result;
  result.rank = coef_decoder.rank();
  result.decoded_prefix = coef_decoder.decoded_prefix();
  result.decoded_levels = spec_.levels_covered_by_prefix(result.decoded_prefix);
  result.blocks.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!coef_decoder.is_decoded(i)) continue;
    const std::uint32_t input = schedule.pivot_input[i];
    PRLC_ASSERT(input != linalg::EliminationSchedule::kNoInput,
                "decoded unknown without a bound input buffer");
    result.blocks[i].decoded = true;
    result.blocks[i].payload = payloads[input];
  }
  return result;
}

codes::CodedBlock<gf::Gf256> PayloadCodec::recombine(
    std::span<const std::vector<std::uint8_t>> coeff_rows,
    std::span<const std::span<const std::uint8_t>> payloads,
    std::span<const std::uint8_t> gamma, std::size_t level) const {
  obs::ScopedSpan span("codec.recombine", "codec");
  PRLC_REQUIRE(coeff_rows.size() == payloads.size() && coeff_rows.size() == gamma.size(),
               "survivor rows, payloads and gamma must align");
  PRLC_REQUIRE(!coeff_rows.empty(), "recombination needs at least one survivor");
  const std::size_t n = spec_.total();
  std::size_t payload_size = 0;
  for (const auto& p : payloads) {
    if (payload_size == 0) payload_size = p.size();
    PRLC_REQUIRE(p.size() == payload_size && !p.empty(),
                 "survivor payloads must share one nonzero size");
  }

  codes::CodedBlock<F> block;
  block.level = level;
  block.coeffs.assign(n, 0);
  for (std::size_t i = 0; i < coeff_rows.size(); ++i) {
    PRLC_REQUIRE(coeff_rows[i].size() == n, "survivor row width mismatch");
    if (gamma[i] == 0) continue;
    F::axpy(std::span<std::uint8_t>(block.coeffs), gamma[i],
            std::span<const std::uint8_t>(coeff_rows[i]));
  }
  block.payload.assign(payload_size, 0);

  OpGraph graph(chunk_bytes_);
  const std::uint32_t out = graph.add_buffer(block.payload.data(), payload_size);
  bool first = true;
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    if (gamma[i] == 0) continue;
    const std::uint32_t src = graph.add_const_buffer(payloads[i].data(), payload_size);
    if (first) {
      graph.mul_region(out, src, gamma[i]);
      first = false;
    } else {
      graph.axpy(out, src, gamma[i]);
    }
  }
  if (first) graph.zero(out);
  graph.finalize();
  graph.run(pool_);
  return block;
}

}  // namespace prlc::codec
