// Compile-time interface for finite fields of characteristic 2.
//
// All coding/linear-algebra code in this library is generic over a field
// policy type so that the field-size ablation (GF(2), GF(16), GF(256)) can
// exercise identical code paths. A field policy exposes static arithmetic
// on an unsigned Symbol type; addition is XOR in every GF(2^m).
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

namespace prlc::gf {

/// Field policy concept: static arithmetic over an unsigned symbol type.
template <typename F>
concept FieldPolicy = requires(typename F::Symbol a, typename F::Symbol b) {
  requires std::unsigned_integral<typename F::Symbol>;
  { F::add(a, b) } -> std::same_as<typename F::Symbol>;
  { F::sub(a, b) } -> std::same_as<typename F::Symbol>;
  { F::mul(a, b) } -> std::same_as<typename F::Symbol>;
  { F::div(a, b) } -> std::same_as<typename F::Symbol>;
  { F::inv(a) } -> std::same_as<typename F::Symbol>;
  { F::order() } -> std::convertible_to<std::size_t>;
  { F::name() } -> std::convertible_to<const char*>;
};

}  // namespace prlc::gf
