// Compile-time interface for finite fields of characteristic 2.
//
// All coding/linear-algebra code in this library is generic over a field
// policy type so that the field-size ablation (GF(2), GF(16), GF(256)) can
// exercise identical code paths. A field policy exposes static arithmetic
// on an unsigned Symbol type; addition is XOR in every GF(2^m).
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <span>

namespace prlc::gf {

/// Field policy concept: static arithmetic over an unsigned symbol type,
/// plus the bulk span operations every decoder hot path reduces to. The
/// span operations are part of the concept (not derived from mul) so a
/// policy can back them with vectorized kernels — see gf256_kernels.h.
template <typename F>
concept FieldPolicy = requires(typename F::Symbol a, typename F::Symbol b,
                               std::span<typename F::Symbol> y,
                               std::span<const typename F::Symbol> x) {
  requires std::unsigned_integral<typename F::Symbol>;
  { F::add(a, b) } -> std::same_as<typename F::Symbol>;
  { F::sub(a, b) } -> std::same_as<typename F::Symbol>;
  { F::mul(a, b) } -> std::same_as<typename F::Symbol>;
  { F::div(a, b) } -> std::same_as<typename F::Symbol>;
  { F::inv(a) } -> std::same_as<typename F::Symbol>;
  { F::order() } -> std::convertible_to<std::size_t>;
  { F::name() } -> std::convertible_to<const char*>;
  { F::axpy(y, a, x) } -> std::same_as<void>;
  { F::scale(y, a) } -> std::same_as<void>;
  { F::dot(x, x) } -> std::same_as<typename F::Symbol>;
};

/// Extension of FieldPolicy for fields that also provide a batched
/// multi-row axpy (ys[r] ^= coeffs[r] * x). Decoders use it for the
/// back-elimination step when available and fall back to per-row axpy
/// otherwise; Gf256 routes it through the cache-tiled kernel dispatch.
template <typename F>
concept BatchedFieldPolicy =
    FieldPolicy<F> &&
    requires(std::span<typename F::Symbol* const> ys,
             std::span<const typename F::Symbol> coeffs,
             std::span<const typename F::Symbol> x) {
      { F::axpy_batch(ys, coeffs, x) } -> std::same_as<void>;
    };

}  // namespace prlc::gf
