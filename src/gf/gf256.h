// GF(2^8) arithmetic — the field the paper's simulations use.
//
// Implementation: exponential/logarithm tables over the primitive
// polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11D, the classic Rijndael-
// adjacent choice used by most RLNC implementations), plus a full
// 256x256 product table for scalar lookups. The span operations (axpy,
// scale, dot, mul_region) route through the vectorized kernel table in
// gf256_kernels.h, which is dispatched once at runtime to the widest
// SIMD unit the CPU offers. Tables are built once at first use and are
// immutable afterwards.
#pragma once

#include <cstdint>
#include <span>

#include "util/check.h"

namespace prlc::gf {

/// Field policy for GF(2^8). All operations are total except division by
/// zero / inversion of zero, which throw PreconditionError.
class Gf256 {
 public:
  using Symbol = std::uint8_t;

  static constexpr std::size_t order() { return 256; }
  static constexpr const char* name() { return "GF(2^8)"; }
  /// The primitive (irreducible) polynomial, including the x^8 term.
  static constexpr std::uint16_t modulus() { return 0x11D; }

  static Symbol add(Symbol a, Symbol b) { return a ^ b; }
  /// Subtraction equals addition in characteristic 2.
  static Symbol sub(Symbol a, Symbol b) { return a ^ b; }

  static Symbol mul(Symbol a, Symbol b) { return tables().mul[a][b]; }

  static Symbol inv(Symbol a) {
    PRLC_REQUIRE(a != 0, "inverse of zero in GF(2^8)");
    return tables().inv[a];
  }

  static Symbol div(Symbol a, Symbol b) {
    PRLC_REQUIRE(b != 0, "division by zero in GF(2^8)");
    if (a == 0) return 0;
    return tables().mul[a][tables().inv[b]];
  }

  /// a^e by log/exp lookup; 0^0 == 1 by convention.
  static Symbol pow(Symbol a, std::uint32_t e);

  /// Row of the multiplication table for a fixed left factor — the basis
  /// of the vectorized axpy kernel (y[i] ^= row[x[i]]).
  static const Symbol* mul_row(Symbol a) { return tables().mul[a]; }

  /// y ^= a * x element-wise over equal-length spans.
  static void axpy(std::span<Symbol> y, Symbol a, std::span<const Symbol> x);

  /// x *= a element-wise.
  static void scale(std::span<Symbol> x, Symbol a);

  /// dst = a * src element-wise; dst may equal src (then this is scale).
  static void mul_region(std::span<Symbol> dst, Symbol a, std::span<const Symbol> src);

  /// Dot product sum_i a[i]*b[i].
  static Symbol dot(std::span<const Symbol> a, std::span<const Symbol> b);

  /// Batched multi-row axpy: ys[r] ^= coeffs[r] * x for every r, all rows
  /// x.size() symbols long. One cache-tiled pass over the shared source —
  /// the shape of Gauss-Jordan back-elimination, where a new pivot row
  /// updates many stored rows at once.
  static void axpy_batch(std::span<Symbol* const> ys, std::span<const Symbol> coeffs,
                         std::span<const Symbol> x);

 private:
  struct Tables {
    Symbol exp[512];       // exp[i] = g^i, doubled so mul avoids a mod
    Symbol log[256];       // log[0] unused
    Symbol inv[256];       // inv[0] unused
    Symbol mul[256][256];  // full product table (64 KiB)
    Tables();
  };
  static const Tables& tables();
};

}  // namespace prlc::gf
