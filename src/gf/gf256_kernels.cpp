#include "gf/gf256_kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gf/gf256.h"
#include "obs/metrics.h"
#include "util/check.h"

#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
#define PRLC_GF256_X86 1
#include <immintrin.h>
#else
#define PRLC_GF256_X86 0
#endif

namespace prlc::gf {
namespace {

// ---------------------------------------------------------------------------
// Split-nibble product tables: lo[a][n] = a * n, hi[a][n] = a * (n << 4), so
// a * x == lo[a][x & 15] ^ hi[a][x >> 4]. 16-byte alignment lets the SIMD
// variants load each table with one aligned 128-bit load. Built bit-by-bit
// so the kernels are independent of the Gf256 product table they are
// differential-tested against.
// ---------------------------------------------------------------------------

std::uint8_t bitwise_mul(std::uint8_t a, std::uint8_t b) {
  std::uint16_t acc = 0;
  for (int bit = 0; bit < 8; ++bit) {
    if (b & (1 << bit)) acc ^= static_cast<std::uint16_t>(a) << bit;
  }
  for (int bit = 15; bit >= 8; --bit) {
    if (acc & (1 << bit)) acc ^= static_cast<std::uint16_t>(Gf256::modulus()) << (bit - 8);
  }
  return static_cast<std::uint8_t>(acc);
}

struct NibbleTables {
  alignas(64) std::uint8_t lo[256][16];
  alignas(64) std::uint8_t hi[256][16];
  NibbleTables() {
    for (int a = 0; a < 256; ++a) {
      for (int n = 0; n < 16; ++n) {
        lo[a][n] = bitwise_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(n));
        hi[a][n] = bitwise_mul(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(n << 4));
      }
    }
  }
};

const NibbleTables& nib() {
  static const NibbleTables t;
  return t;
}

// ---------------------------------------------------------------------------
// dot — shared across variants. It only runs over coefficient vectors (the
// matrix-vector products in linalg), never payload spans, and a variable ×
// variable SIMD multiply would need a different decomposition entirely, so
// the product-table loop is kept for every variant.
// ---------------------------------------------------------------------------

std::uint8_t dot_table(const std::uint8_t* a, const std::uint8_t* b, std::size_t n) {
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc ^= Gf256::mul(a[i], b[i]);
  return acc;
}

// ---------------------------------------------------------------------------
// kReference — the seed implementation: one lookup per byte in the 64 KiB
// product table. Kept verbatim as the baseline the other variants are
// differential-tested (and benchmarked) against.
// ---------------------------------------------------------------------------

void axpy_reference(std::uint8_t* y, const std::uint8_t* x, std::uint8_t a, std::size_t n) {
  if (a == 0) return;
  if (a == 1) {
    for (std::size_t i = 0; i < n; ++i) y[i] ^= x[i];
    return;
  }
  const std::uint8_t* row = Gf256::mul_row(a);
  for (std::size_t i = 0; i < n; ++i) y[i] ^= row[x[i]];
}

void mul_region_reference(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t a,
                          std::size_t n) {
  if (n == 0) return;
  if (a == 0) {
    std::memset(dst, 0, n);
    return;
  }
  if (a == 1) {
    if (dst != src) std::memcpy(dst, src, n);
    return;
  }
  const std::uint8_t* row = Gf256::mul_row(a);
  for (std::size_t i = 0; i < n; ++i) dst[i] = row[src[i]];
}

// ---------------------------------------------------------------------------
// kScalar64 — portable split-nibble kernel, 8 bytes per iteration. The two
// 16-entry tables (32 bytes per multiplier) replace the 256-byte product
// row, so the working set stays in L1 even when every row operation uses a
// different multiplier, as in Gauss-Jordan elimination.
// ---------------------------------------------------------------------------

void axpy_scalar64(std::uint8_t* y, const std::uint8_t* x, std::uint8_t a, std::size_t n) {
  if (a == 0) return;
  const std::uint8_t* lo = nib().lo[a];
  const std::uint8_t* hi = nib().hi[a];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t xw;
    std::uint64_t yw;
    std::memcpy(&xw, x + i, 8);
    std::memcpy(&yw, y + i, 8);
    std::uint64_t prod = 0;
    for (int b = 0; b < 8; ++b) {
      const auto xb = static_cast<std::uint8_t>(xw >> (8 * b));
      prod |= static_cast<std::uint64_t>(lo[xb & 15] ^ hi[xb >> 4]) << (8 * b);
    }
    yw ^= prod;
    std::memcpy(y + i, &yw, 8);
  }
  for (; i < n; ++i) y[i] ^= lo[x[i] & 15] ^ hi[x[i] >> 4];
}

void mul_region_scalar64(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t a,
                         std::size_t n) {
  if (n == 0) return;
  if (a == 0) {
    std::memset(dst, 0, n);
    return;
  }
  const std::uint8_t* lo = nib().lo[a];
  const std::uint8_t* hi = nib().hi[a];
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t xw;
    std::memcpy(&xw, src + i, 8);
    std::uint64_t prod = 0;
    for (int b = 0; b < 8; ++b) {
      const auto xb = static_cast<std::uint8_t>(xw >> (8 * b));
      prod |= static_cast<std::uint64_t>(lo[xb & 15] ^ hi[xb >> 4]) << (8 * b);
    }
    std::memcpy(dst + i, &prod, 8);
  }
  for (; i < n; ++i) dst[i] = lo[src[i] & 15] ^ hi[src[i] >> 4];
}

// ---------------------------------------------------------------------------
// kSsse3 / kAvx2 — pshufb split-nibble kernels. Both nibble tables fit in
// one vector register each; shuffle_epi8 then performs a full 16-way table
// lookup per lane per instruction. Compiled with `target` attributes so no
// global -mssse3/-mavx2 flags are needed and the rest of the binary stays
// baseline-ISA; only ever called after a __builtin_cpu_supports check.
// ---------------------------------------------------------------------------

#if PRLC_GF256_X86

__attribute__((target("ssse3"))) void axpy_ssse3(std::uint8_t* y, const std::uint8_t* x,
                                                 std::uint8_t a, std::size_t n) {
  if (a == 0) return;
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(nib().lo[a]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(nib().hi[a]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i xv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(x + i));
    const __m128i lo_prod = _mm_shuffle_epi8(lo, _mm_and_si128(xv, mask));
    const __m128i hi_prod =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(xv, 4), mask));
    const __m128i yv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(y + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(y + i),
                     _mm_xor_si128(yv, _mm_xor_si128(lo_prod, hi_prod)));
  }
  const std::uint8_t* tlo = nib().lo[a];
  const std::uint8_t* thi = nib().hi[a];
  for (; i < n; ++i) y[i] ^= tlo[x[i] & 15] ^ thi[x[i] >> 4];
}

__attribute__((target("ssse3"))) void mul_region_ssse3(std::uint8_t* dst,
                                                       const std::uint8_t* src,
                                                       std::uint8_t a, std::size_t n) {
  if (n == 0) return;
  if (a == 0) {
    std::memset(dst, 0, n);
    return;
  }
  const __m128i lo = _mm_load_si128(reinterpret_cast<const __m128i*>(nib().lo[a]));
  const __m128i hi = _mm_load_si128(reinterpret_cast<const __m128i*>(nib().hi[a]));
  const __m128i mask = _mm_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m128i xv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    const __m128i lo_prod = _mm_shuffle_epi8(lo, _mm_and_si128(xv, mask));
    const __m128i hi_prod =
        _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi64(xv, 4), mask));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), _mm_xor_si128(lo_prod, hi_prod));
  }
  const std::uint8_t* tlo = nib().lo[a];
  const std::uint8_t* thi = nib().hi[a];
  for (; i < n; ++i) dst[i] = tlo[src[i] & 15] ^ thi[src[i] >> 4];
}

__attribute__((target("avx2"))) void axpy_avx2(std::uint8_t* y, const std::uint8_t* x,
                                               std::uint8_t a, std::size_t n) {
  if (a == 0) return;
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib().lo[a])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib().hi[a])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m256i x0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i x1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i + 32));
    const __m256i p0 = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo, _mm256_and_si256(x0, mask)),
        _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(x0, 4), mask)));
    const __m256i p1 = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo, _mm256_and_si256(x1, mask)),
        _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(x1, 4), mask)));
    const __m256i y0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    const __m256i y1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i + 32));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), _mm256_xor_si256(y0, p0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i + 32), _mm256_xor_si256(y1, p1));
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i xv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(x + i));
    const __m256i prod = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo, _mm256_and_si256(xv, mask)),
        _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(xv, 4), mask)));
    const __m256i yv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(y + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + i), _mm256_xor_si256(yv, prod));
  }
  const std::uint8_t* tlo = nib().lo[a];
  const std::uint8_t* thi = nib().hi[a];
  for (; i < n; ++i) y[i] ^= tlo[x[i] & 15] ^ thi[x[i] >> 4];
}

__attribute__((target("avx2"))) void mul_region_avx2(std::uint8_t* dst,
                                                     const std::uint8_t* src,
                                                     std::uint8_t a, std::size_t n) {
  if (n == 0) return;
  if (a == 0) {
    std::memset(dst, 0, n);
    return;
  }
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib().lo[a])));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_load_si128(reinterpret_cast<const __m128i*>(nib().hi[a])));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i xv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i prod = _mm256_xor_si256(
        _mm256_shuffle_epi8(lo, _mm256_and_si256(xv, mask)),
        _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi64(xv, 4), mask)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), prod);
  }
  const std::uint8_t* tlo = nib().lo[a];
  const std::uint8_t* thi = nib().hi[a];
  for (; i < n; ++i) dst[i] = tlo[src[i] & 15] ^ thi[src[i] >> 4];
}

#endif  // PRLC_GF256_X86

// ---------------------------------------------------------------------------
// Variant registry + one-time dispatch.
// ---------------------------------------------------------------------------

constexpr Gf256KernelOps kReferenceOps = {"reference", axpy_reference, mul_region_reference,
                                          dot_table};
constexpr Gf256KernelOps kScalar64Ops = {"scalar64", axpy_scalar64, mul_region_scalar64,
                                         dot_table};
#if PRLC_GF256_X86
constexpr Gf256KernelOps kSsse3Ops = {"ssse3", axpy_ssse3, mul_region_ssse3, dot_table};
constexpr Gf256KernelOps kAvx2Ops = {"avx2", axpy_avx2, mul_region_avx2, dot_table};
#endif

/// Best runtime-supported variant, before any env override.
Gf256Kernel pick_auto() {
#if PRLC_GF256_X86
  if (__builtin_cpu_supports("avx2")) return Gf256Kernel::kAvx2;
  if (__builtin_cpu_supports("ssse3")) return Gf256Kernel::kSsse3;
#endif
  return Gf256Kernel::kScalar64;
}

Gf256Kernel resolve_dispatch() {
  const char* want = std::getenv("PRLC_GF_KERNEL");
  if (want == nullptr || *want == '\0' || std::strcmp(want, "auto") == 0) {
    return pick_auto();
  }
  for (Gf256Kernel k : {Gf256Kernel::kReference, Gf256Kernel::kScalar64, Gf256Kernel::kSsse3,
                        Gf256Kernel::kAvx2}) {
    if (std::strcmp(want, gf256_kernel_name(k)) != 0) continue;
    if (gf256_kernel_runtime_ok(k)) return k;
    std::fprintf(stderr,
                 "prlc: PRLC_GF_KERNEL=%s is not supported on this build/CPU; "
                 "falling back to auto dispatch\n",
                 want);
    return pick_auto();
  }
  std::fprintf(stderr,
               "prlc: unknown PRLC_GF_KERNEL=%s (expected reference|scalar64|ssse3|avx2|"
               "auto); falling back to auto dispatch\n",
               want);
  return pick_auto();
}

std::atomic<int> g_active_kernel{-1};

}  // namespace

const char* gf256_kernel_name(Gf256Kernel k) {
  switch (k) {
    case Gf256Kernel::kReference:
      return "reference";
    case Gf256Kernel::kScalar64:
      return "scalar64";
    case Gf256Kernel::kSsse3:
      return "ssse3";
    case Gf256Kernel::kAvx2:
      return "avx2";
  }
  PRLC_ASSERT(false, "unknown GF(256) kernel variant");
}

bool gf256_kernel_compiled(Gf256Kernel k) {
  switch (k) {
    case Gf256Kernel::kReference:
    case Gf256Kernel::kScalar64:
      return true;
    case Gf256Kernel::kSsse3:
    case Gf256Kernel::kAvx2:
      return PRLC_GF256_X86 != 0;
  }
  PRLC_ASSERT(false, "unknown GF(256) kernel variant");
}

bool gf256_kernel_runtime_ok(Gf256Kernel k) {
  if (!gf256_kernel_compiled(k)) return false;
#if PRLC_GF256_X86
  if (k == Gf256Kernel::kSsse3) return __builtin_cpu_supports("ssse3");
  if (k == Gf256Kernel::kAvx2) return __builtin_cpu_supports("avx2");
#endif
  return true;
}

std::vector<Gf256Kernel> gf256_compiled_kernels() {
  std::vector<Gf256Kernel> out;
  for (Gf256Kernel k : {Gf256Kernel::kReference, Gf256Kernel::kScalar64, Gf256Kernel::kSsse3,
                        Gf256Kernel::kAvx2}) {
    if (gf256_kernel_compiled(k)) out.push_back(k);
  }
  return out;
}

const Gf256KernelOps& gf256_kernel_ops(Gf256Kernel k) {
  PRLC_REQUIRE(gf256_kernel_compiled(k), "GF(256) kernel variant not compiled in");
  switch (k) {
    case Gf256Kernel::kReference:
      return kReferenceOps;
    case Gf256Kernel::kScalar64:
      return kScalar64Ops;
#if PRLC_GF256_X86
    case Gf256Kernel::kSsse3:
      return kSsse3Ops;
    case Gf256Kernel::kAvx2:
      return kAvx2Ops;
#else
    case Gf256Kernel::kSsse3:
    case Gf256Kernel::kAvx2:
      break;
#endif
  }
  PRLC_ASSERT(false, "unknown GF(256) kernel variant");
}

namespace {

/// Export which variant won the dispatch (and whether an env override was
/// in play) — set every time the active kernel changes, so the registry
/// reflects the variant actually used by the most recent field ops.
void record_dispatch(Gf256Kernel k) {
  obs::gauge(std::string("gf256.dispatch.") + gf256_kernel_name(k)).set(1);
  obs::gauge("gf256.dispatch_variant").set(static_cast<int>(k));
}

}  // namespace

Gf256Kernel gf256_active_kernel() {
  int k = g_active_kernel.load(std::memory_order_acquire);
  if (k < 0) {
    const Gf256Kernel resolved = resolve_dispatch();
    int expected = -1;
    // On a race, first resolver wins; both compute the same value anyway
    // unless a concurrent force intervened, in which case the force wins.
    g_active_kernel.compare_exchange_strong(expected, static_cast<int>(resolved),
                                            std::memory_order_acq_rel);
    k = g_active_kernel.load(std::memory_order_acquire);
    record_dispatch(static_cast<Gf256Kernel>(k));
  }
  return static_cast<Gf256Kernel>(k);
}

const Gf256KernelOps& gf256_active_ops() { return gf256_kernel_ops(gf256_active_kernel()); }

void gf256_force_active_kernel(Gf256Kernel k) {
  PRLC_REQUIRE(gf256_kernel_runtime_ok(k),
               "cannot force a GF(256) kernel this build/CPU does not support");
  g_active_kernel.store(static_cast<int>(k), std::memory_order_release);
  record_dispatch(k);
}

namespace {

/// Default batch tile: 8 KiB leaves room in L1 for the target chunk.
constexpr std::size_t kDefaultTileBytes = 8192;

std::size_t measure_batch_ns(std::size_t tile, std::uint8_t* const* ys,
                             const std::uint8_t* coeffs, const std::uint8_t* x,
                             std::size_t rows, std::size_t n) {
  const Gf256KernelOps& ops = gf256_kernel_ops(gf256_active_kernel());
  const std::uint64_t start = obs::ScopedTimer::now_ns();
  for (std::size_t off = 0; off < n; off += tile) {
    const std::size_t len = n - off < tile ? n - off : tile;
    for (std::size_t r = 0; r < rows; ++r) {
      if (coeffs[r] == 0) continue;
      ops.axpy(ys[r] + off, x + off, coeffs[r], len);
    }
  }
  return obs::ScopedTimer::now_ns() - start;
}

void record_tile(std::size_t bytes) {
  obs::gauge("gf256.tile_bytes").set(static_cast<std::int64_t>(bytes));
}

/// Resolve the initial tile size from PRLC_GF_TILE, once.
std::size_t resolve_tile_bytes() {
  const char* want = std::getenv("PRLC_GF_TILE");
  if (want == nullptr || *want == '\0') return kDefaultTileBytes;
  if (std::strcmp(want, "auto") == 0) return gf256_autotune_tile_bytes();
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(want, &end, 10);
  if (end == want || *end != '\0' || parsed < kGf256TileMin || parsed > kGf256TileMax) {
    std::fprintf(stderr,
                 "prlc: PRLC_GF_TILE=%s is not a byte count in [%zu, %zu] or "
                 "\"auto\"; keeping the default tile of %zu bytes\n",
                 want, kGf256TileMin, kGf256TileMax, kDefaultTileBytes);
    return kDefaultTileBytes;
  }
  return static_cast<std::size_t>(parsed);
}

std::atomic<std::size_t> g_tile_bytes{0};  // 0 = not resolved yet

}  // namespace

std::size_t gf256_tile_bytes() {
  std::size_t t = g_tile_bytes.load(std::memory_order_acquire);
  if (t == 0) {
    const std::size_t resolved = resolve_tile_bytes();
    std::size_t expected = 0;
    // First resolver wins; a concurrent gf256_set_tile_bytes also wins.
    g_tile_bytes.compare_exchange_strong(expected, resolved, std::memory_order_acq_rel);
    t = g_tile_bytes.load(std::memory_order_acquire);
    record_tile(t);
  }
  return t;
}

void gf256_set_tile_bytes(std::size_t bytes) {
  PRLC_REQUIRE(bytes >= kGf256TileMin && bytes <= kGf256TileMax,
               "GF(256) batch tile size out of range");
  g_tile_bytes.store(bytes, std::memory_order_release);
  record_tile(bytes);
}

std::size_t gf256_autotune_tile_bytes(std::span<const std::size_t> candidates) {
  static constexpr std::size_t kDefaultCandidates[] = {8192, 16384, 32768, 65536, 131072};
  if (candidates.empty()) candidates = kDefaultCandidates;
  constexpr std::size_t kRows = 32;
  constexpr std::size_t kBytes = 256 * 1024;
  std::vector<std::uint8_t> x(kBytes, 0x5A);
  std::vector<std::vector<std::uint8_t>> targets(kRows, std::vector<std::uint8_t>(kBytes));
  std::vector<std::uint8_t*> ys;
  std::vector<std::uint8_t> coeffs;
  for (std::size_t r = 0; r < kRows; ++r) {
    ys.push_back(targets[r].data());
    coeffs.push_back(static_cast<std::uint8_t>(1 + r));
  }
  std::size_t best = candidates[0];
  std::uint64_t best_ns = ~std::uint64_t{0};
  for (std::size_t tile : candidates) {
    PRLC_REQUIRE(tile >= kGf256TileMin && tile <= kGf256TileMax,
                 "autotune candidate tile size out of range");
    measure_batch_ns(tile, ys.data(), coeffs.data(), x.data(), kRows, kBytes);  // warm-up
    const std::uint64_t ns =
        measure_batch_ns(tile, ys.data(), coeffs.data(), x.data(), kRows, kBytes);
    if (ns < best_ns) {
      best_ns = ns;
      best = tile;
    }
  }
  return best;
}

void gf256_axpy_batch(std::uint8_t* const* ys, const std::uint8_t* coeffs,
                      const std::uint8_t* x, std::size_t rows, std::size_t n) {
  const Gf256KernelOps& ops = gf256_active_ops();
  static obs::Counter& batch_calls = obs::counter("gf256.axpy_batch_calls");
  static obs::Counter& batch_rows = obs::counter("gf256.axpy_batch_rows");
  static obs::Counter& batch_bytes = obs::counter("gf256.axpy_batch_bytes");
  batch_calls.add();
  batch_rows.add(rows);
  batch_bytes.add(rows * n);
  // Tile the shared source row so each chunk is applied to every target
  // while still L1/L2-resident.
  const std::size_t tile = gf256_tile_bytes();
  for (std::size_t off = 0; off < n; off += tile) {
    const std::size_t len = n - off < tile ? n - off : tile;
    for (std::size_t r = 0; r < rows; ++r) {
      if (coeffs[r] == 0) continue;
      ops.axpy(ys[r] + off, x + off, coeffs[r], len);
    }
  }
}

}  // namespace prlc::gf
