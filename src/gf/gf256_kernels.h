// Vectorized GF(2^8) span kernels with one-time runtime dispatch.
//
// Every hot path of the library — encoding, progressive decoding, batch
// RREF — reduces to a handful of span operations over GF(2^8): axpy
// (y ^= a*x), mul_region (dst = a*src), scale (x *= a) and dot. This
// module provides several implementations of those kernels and picks the
// fastest one the running CPU supports, once, at first use:
//
//   kReference — byte-at-a-time lookups in the 64 KiB product table; the
//                seed implementation, kept as the correctness baseline.
//   kScalar64  — portable split-nibble kernel: two 16-entry tables per
//                multiplier (products of the low and high nibble), eight
//                bytes per iteration through 64-bit loads/stores. Touches
//                32 bytes of table per multiplier instead of 256, so it
//                stays fast when many distinct multipliers are in flight.
//   kSsse3     — the classic pshufb kernel: both nibble tables live in
//                XMM registers and _mm_shuffle_epi8 performs 16 table
//                lookups per instruction (32 bytes of state, 16 B/iter).
//   kAvx2      — same split-nibble trick on 32-byte vectors, unrolled to
//                64 bytes per iteration.
//
// SIMD variants are compiled behind __x86_64__/__i386__ guards using GCC/
// Clang `target` attributes (no special -m flags needed) and selected at
// runtime via __builtin_cpu_supports, so one binary runs everywhere and
// still uses the widest unit available. Set PRLC_GF_KERNEL=reference|
// scalar64|ssse3|avx2|auto (read once, at first dispatch) to force a
// variant when debugging; an unsupported request falls back to auto with
// a one-time warning on stderr.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace prlc::gf {

enum class Gf256Kernel {
  kReference = 0,  ///< byte-wise 64 KiB-table loop (seed behaviour)
  kScalar64,       ///< portable split-nibble, 8 bytes per iteration
  kSsse3,          ///< pshufb split-nibble, 16 bytes per iteration
  kAvx2,           ///< vpshufb split-nibble, 64 bytes per iteration
};

/// Function-pointer table for one kernel variant. All pointers are always
/// non-null. Spans may be empty (n == 0); `a` may be 0 or 1 — variants
/// must handle every multiplier correctly, callers need not special-case.
struct Gf256KernelOps {
  const char* name;
  /// y[i] ^= a * x[i] for i in [0, n). y and x must not overlap.
  void (*axpy)(std::uint8_t* y, const std::uint8_t* x, std::uint8_t a, std::size_t n);
  /// dst[i] = a * src[i] for i in [0, n). dst == src is allowed (scale);
  /// partial overlap is not.
  void (*mul_region)(std::uint8_t* dst, const std::uint8_t* src, std::uint8_t a,
                     std::size_t n);
  /// sum_i a[i] * b[i].
  std::uint8_t (*dot)(const std::uint8_t* a, const std::uint8_t* b, std::size_t n);
};

/// Human-readable variant name ("reference", "scalar64", ...).
const char* gf256_kernel_name(Gf256Kernel k);

/// True when the variant was compiled into this binary.
bool gf256_kernel_compiled(Gf256Kernel k);

/// True when the variant is compiled AND the running CPU can execute it.
bool gf256_kernel_runtime_ok(Gf256Kernel k);

/// Every variant compiled into this binary, in ascending preference order.
std::vector<Gf256Kernel> gf256_compiled_kernels();

/// Ops table of a specific variant. Requires gf256_kernel_runtime_ok(k)
/// for the SIMD variants — calling an unsupported kernel is undefined.
const Gf256KernelOps& gf256_kernel_ops(Gf256Kernel k);

/// Ops table selected by the one-time runtime dispatch (best supported
/// variant, or the PRLC_GF_KERNEL override). Stable for process lifetime
/// unless gf256_force_active_kernel intervenes.
const Gf256KernelOps& gf256_active_ops();

/// Variant behind gf256_active_ops().
Gf256Kernel gf256_active_kernel();

/// Override the dispatched variant (tests, benchmarks, debugging).
/// Requires gf256_kernel_runtime_ok(k).
void gf256_force_active_kernel(Gf256Kernel k);

/// Batched multi-row axpy: ys[r] ^= coeffs[r] * x for r in [0, rows),
/// all rows n bytes long. Tiles x so one cache-resident chunk of the
/// source row is applied to every target before moving on — the decoder's
/// back-elimination step, where one new pivot row updates many stored
/// rows, is exactly this shape. Rows with coeffs[r] == 0 are skipped.
/// The tile size is gf256_tile_bytes().
void gf256_axpy_batch(std::uint8_t* const* ys, const std::uint8_t* coeffs,
                      const std::uint8_t* x, std::size_t rows, std::size_t n);

/// Cache-tile size (bytes) used by gf256_axpy_batch and, by default, the
/// payload codec's execution graphs. Resolution order, decided once at
/// first call: PRLC_GF_TILE=<bytes> (validated; a malformed or
/// out-of-range value warns on stderr and is ignored), PRLC_GF_TILE=auto
/// (runs gf256_autotune_tile_bytes()), else the built-in default of
/// 8 KiB. Later gf256_set_tile_bytes() calls override it. The current
/// value is mirrored into the obs gauge "gf256.tile_bytes".
std::size_t gf256_tile_bytes();

/// Legal tile range for gf256_set_tile_bytes / PRLC_GF_TILE.
inline constexpr std::size_t kGf256TileMin = 64;
inline constexpr std::size_t kGf256TileMax = std::size_t{1} << 30;

/// Programmatic override of the batch tile size (benchmarks, tuning).
/// Requires kGf256TileMin <= bytes <= kGf256TileMax.
void gf256_set_tile_bytes(std::size_t bytes);

/// Measure gf256_axpy_batch over a small synthetic workload (32 rows,
/// 256 KiB each) at every candidate size and return the fastest. Does not
/// change the active tile size; pass the result to gf256_set_tile_bytes
/// to adopt it. An empty candidate list uses {8, 16, 32, 64, 128} KiB.
std::size_t gf256_autotune_tile_bytes(std::span<const std::size_t> candidates = {});

}  // namespace prlc::gf
