#include "gf/gf2m.h"

#include <string>

namespace prlc::gf {

std::uint32_t primitive_polynomial(unsigned m) {
  // Standard primitive polynomials over GF(2), lowest-weight choices.
  // Entry m includes the leading x^m bit.
  static constexpr std::uint32_t kPolys[17] = {
      0,        // m = 0 unused
      0x3,      // x + 1
      0x7,      // x^2 + x + 1
      0xB,      // x^3 + x + 1
      0x13,     // x^4 + x + 1
      0x25,     // x^5 + x^2 + 1
      0x43,     // x^6 + x + 1
      0x89,     // x^7 + x^3 + 1
      0x11D,    // x^8 + x^4 + x^3 + x^2 + 1
      0x211,    // x^9 + x^4 + 1
      0x409,    // x^10 + x^3 + 1
      0x805,    // x^11 + x^2 + 1
      0x1053,   // x^12 + x^6 + x^4 + x + 1
      0x201B,   // x^13 + x^4 + x^3 + x + 1
      0x4443,   // x^14 + x^10 + x^6 + x + 1
      0x8003,   // x^15 + x + 1
      0x1100B,  // x^16 + x^12 + x^3 + x + 1
  };
  PRLC_REQUIRE(m >= 1 && m <= 16, "primitive_polynomial supports m in [1,16]");
  return kPolys[m];
}

template <unsigned M>
Gf2m<M>::Tables::Tables() {
  const std::size_t n = Gf2m<M>::order();
  const std::uint32_t poly = primitive_polynomial(M);
  exp.assign(2 * (n - 1), 0);
  log.assign(n, 0);
  std::uint32_t x = 1;
  for (std::size_t i = 0; i < n - 1; ++i) {
    exp[i] = static_cast<Symbol>(x);
    log[x] = static_cast<Symbol>(i);
    x <<= 1;
    if (x & n) x ^= poly;
  }
  PRLC_ASSERT(x == 1, "polynomial is not primitive: generator cycle != 2^m - 1");
  for (std::size_t i = n - 1; i < exp.size(); ++i) exp[i] = exp[i - (n - 1)];
}

template <unsigned M>
const char* Gf2m<M>::name() {
  static const std::string n = "GF(2^" + std::to_string(M) + ")";
  return n.c_str();
}

template class Gf2m<1>;
template class Gf2m<2>;
template class Gf2m<4>;
template class Gf2m<8>;
template class Gf2m<12>;
template class Gf2m<16>;

}  // namespace prlc::gf
