#include "gf/gf256.h"

namespace prlc::gf {

Gf256::Tables::Tables() {
  // Build exp/log from the generator g = 2 over modulus 0x11D.
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[i] = static_cast<Symbol>(x);
    log[x] = static_cast<Symbol>(i);
    x <<= 1;
    if (x & 0x100) x ^= modulus();
  }
  for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // never read; defined for determinism

  inv[0] = 0;  // never read
  for (int a = 1; a < 256; ++a) {
    inv[a] = exp[255 - log[a]];
  }

  for (int a = 0; a < 256; ++a) {
    mul[0][a] = 0;
    mul[a][0] = 0;
  }
  for (int a = 1; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      mul[a][b] = exp[log[a] + log[b]];
    }
  }
}

const Gf256::Tables& Gf256::tables() {
  static const Tables t;
  return t;
}

Gf256::Symbol Gf256::pow(Symbol a, std::uint32_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  const std::uint32_t le = (static_cast<std::uint32_t>(t.log[a]) * e) % 255u;
  return t.exp[le];
}

void Gf256::axpy(std::span<Symbol> y, Symbol a, std::span<const Symbol> x) {
  PRLC_REQUIRE(y.size() == x.size(), "axpy spans must have equal length");
  if (a == 0) return;
  const Symbol* row = mul_row(a);
  if (a == 1) {
    for (std::size_t i = 0; i < y.size(); ++i) y[i] ^= x[i];
    return;
  }
  for (std::size_t i = 0; i < y.size(); ++i) y[i] ^= row[x[i]];
}

void Gf256::scale(std::span<Symbol> x, Symbol a) {
  if (a == 1) return;
  if (a == 0) {
    for (Symbol& v : x) v = 0;
    return;
  }
  const Symbol* row = mul_row(a);
  for (Symbol& v : x) v = row[v];
}

Gf256::Symbol Gf256::dot(std::span<const Symbol> a, std::span<const Symbol> b) {
  PRLC_REQUIRE(a.size() == b.size(), "dot spans must have equal length");
  Symbol acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc ^= mul(a[i], b[i]);
  return acc;
}

}  // namespace prlc::gf
