#include "gf/gf256.h"

#include "gf/gf256_kernels.h"
#include "obs/metrics.h"

namespace prlc::gf {

Gf256::Tables::Tables() {
  // Build exp/log from the generator g = 2 over modulus 0x11D.
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[i] = static_cast<Symbol>(x);
    log[x] = static_cast<Symbol>(i);
    x <<= 1;
    if (x & 0x100) x ^= modulus();
  }
  for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // never read; defined for determinism

  inv[0] = 0;  // never read
  for (int a = 1; a < 256; ++a) {
    inv[a] = exp[255 - log[a]];
  }

  for (int a = 0; a < 256; ++a) {
    mul[0][a] = 0;
    mul[a][0] = 0;
  }
  for (int a = 1; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      mul[a][b] = exp[log[a] + log[b]];
    }
  }
}

const Gf256::Tables& Gf256::tables() {
  static const Tables t;
  return t;
}

Gf256::Symbol Gf256::pow(Symbol a, std::uint32_t e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = tables();
  // Widen before the product: log[a] * e can reach 254 * (2^32 - 1),
  // which wraps uint32_t for e > UINT32_MAX / 254 (~16.9M).
  const auto le =
      static_cast<std::size_t>((static_cast<std::uint64_t>(t.log[a]) * e) % 255u);
  return t.exp[le];
}

void Gf256::axpy(std::span<Symbol> y, Symbol a, std::span<const Symbol> x) {
  PRLC_REQUIRE(y.size() == x.size(), "axpy spans must have equal length");
  if (a == 0 || y.empty()) return;
  static obs::Counter& calls = obs::counter("gf256.axpy_calls");
  static obs::Counter& bytes = obs::counter("gf256.axpy_bytes");
  calls.add();
  bytes.add(y.size());
  gf256_active_ops().axpy(y.data(), x.data(), a, y.size());
}

void Gf256::scale(std::span<Symbol> x, Symbol a) {
  if (a == 1 || x.empty()) return;
  static obs::Counter& bytes = obs::counter("gf256.scale_bytes");
  bytes.add(x.size());
  gf256_active_ops().mul_region(x.data(), x.data(), a, x.size());
}

void Gf256::mul_region(std::span<Symbol> dst, Symbol a, std::span<const Symbol> src) {
  PRLC_REQUIRE(dst.size() == src.size(), "mul_region spans must have equal length");
  if (dst.empty()) return;
  static obs::Counter& bytes = obs::counter("gf256.mul_region_bytes");
  bytes.add(dst.size());
  gf256_active_ops().mul_region(dst.data(), src.data(), a, dst.size());
}

Gf256::Symbol Gf256::dot(std::span<const Symbol> a, std::span<const Symbol> b) {
  PRLC_REQUIRE(a.size() == b.size(), "dot spans must have equal length");
  if (a.empty()) return 0;
  static obs::Counter& bytes = obs::counter("gf256.dot_bytes");
  bytes.add(a.size());
  return gf256_active_ops().dot(a.data(), b.data(), a.size());
}

void Gf256::axpy_batch(std::span<Symbol* const> ys, std::span<const Symbol> coeffs,
                       std::span<const Symbol> x) {
  PRLC_REQUIRE(ys.size() == coeffs.size(), "axpy_batch needs one coefficient per row");
  if (ys.empty() || x.empty()) return;
  gf256_axpy_batch(ys.data(), coeffs.data(), x.data(), ys.size(), x.size());
}

}  // namespace prlc::gf
