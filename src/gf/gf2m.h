// Generic GF(2^m) arithmetic for 1 <= m <= 16.
//
// Used by the field-size ablation: the paper fixes GF(2^8), and footnote 1
// of Sec. 3.3 notes the analysis assumes "a sufficiently large Galois
// field"; the ablation quantifies how small fields (down to GF(2)) degrade
// decodability. Table-based exp/log arithmetic over standard primitive
// polynomials; symbols are uint16_t regardless of m for a uniform API.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace prlc::gf {

/// Primitive polynomial (including the x^m term) used for GF(2^m).
std::uint32_t primitive_polynomial(unsigned m);

/// Field policy template for GF(2^m). Instantiated for small m in tests
/// and ablations; the production path uses Gf256 (see gf256.h).
template <unsigned M>
class Gf2m {
  static_assert(M >= 1 && M <= 16, "Gf2m supports GF(2^1) .. GF(2^16)");

 public:
  using Symbol = std::uint16_t;

  static constexpr std::size_t order() { return std::size_t{1} << M; }
  static const char* name();

  static Symbol add(Symbol a, Symbol b) { return check_sym(a) ^ check_sym(b); }
  static Symbol sub(Symbol a, Symbol b) { return add(a, b); }

  static Symbol mul(Symbol a, Symbol b) {
    check_sym(a);
    check_sym(b);
    if (a == 0 || b == 0) return 0;
    const auto& t = tables();
    return t.exp[t.log[a] + t.log[b]];
  }

  static Symbol inv(Symbol a) {
    PRLC_REQUIRE(a != 0, "inverse of zero in GF(2^m)");
    check_sym(a);
    const auto& t = tables();
    return t.exp[(order() - 1) - t.log[a]];
  }

  static Symbol div(Symbol a, Symbol b) {
    PRLC_REQUIRE(b != 0, "division by zero in GF(2^m)");
    if (a == 0) return 0;
    return mul(a, inv(b));
  }

  /// a^e; 0^0 == 1 by convention.
  static Symbol pow(Symbol a, std::uint32_t e) {
    if (e == 0) return 1;
    if (a == 0) return 0;
    const auto& t = tables();
    const std::uint32_t group = static_cast<std::uint32_t>(order() - 1);
    // 64-bit product: log[a] * (e % group) approaches 2^32 for m = 16.
    return t.exp[(static_cast<std::uint64_t>(t.log[a]) * (e % group)) % group];
  }

  /// y ^= a * x element-wise (generic kernel; Gf256 has a faster one).
  static void axpy(std::span<Symbol> y, Symbol a, std::span<const Symbol> x) {
    PRLC_REQUIRE(y.size() == x.size(), "axpy spans must have equal length");
    if (a == 0) return;
    for (std::size_t i = 0; i < y.size(); ++i) y[i] ^= mul(a, x[i]);
  }

  static void scale(std::span<Symbol> x, Symbol a) {
    for (Symbol& v : x) v = mul(a, v);
  }

  static Symbol dot(std::span<const Symbol> a, std::span<const Symbol> b) {
    PRLC_REQUIRE(a.size() == b.size(), "dot spans must have equal length");
    Symbol acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) acc ^= mul(a[i], b[i]);
    return acc;
  }

 private:
  static Symbol check_sym(Symbol a) {
    PRLC_ASSERT(a < order(), "symbol out of field range");
    return a;
  }

  struct Tables {
    std::vector<Symbol> exp;  // size 2*(order-1), doubled to skip the mod
    std::vector<Symbol> log;  // size order
    Tables();
  };
  static const Tables& tables() {
    static const Tables t;
    return t;
  }
};

/// Convenience aliases used by tests and the ablation bench.
using Gf2 = Gf2m<1>;
using Gf16 = Gf2m<4>;

extern template class Gf2m<1>;
extern template class Gf2m<2>;
extern template class Gf2m<4>;
extern template class Gf2m<8>;
extern template class Gf2m<12>;
extern template class Gf2m<16>;

}  // namespace prlc::gf
