// Cache-line-aligned byte buffers for payload tiles.
//
// The SIMD kernels accept unaligned spans, but aligned rows keep every
// tile boundary off a straddled cache line and let the AVX2 loop run its
// full-width path from byte 0. The payload codec allocates all working
// rows (coded payloads, decode buffers) through this helper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <utility>

namespace prlc::gf {

/// Movable owner of `size` bytes aligned to `alignment` (a power of two,
/// default one cache line). Contents start zero-initialized.
class AlignedBuffer {
 public:
  static constexpr std::size_t kDefaultAlignment = 64;

  AlignedBuffer() = default;

  explicit AlignedBuffer(std::size_t size, std::size_t alignment = kDefaultAlignment)
      : size_(size), alignment_(alignment) {
    if (size_ == 0) return;
    data_ = static_cast<std::uint8_t*>(
        ::operator new[](size_, std::align_val_t{alignment_}));
    for (std::size_t i = 0; i < size_; ++i) data_[i] = 0;
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        alignment_(other.alignment_) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      alignment_ = other.alignment_;
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { release(); }

  std::uint8_t* data() { return data_; }
  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::size_t alignment() const { return alignment_; }
  bool empty() const { return size_ == 0; }

  std::span<std::uint8_t> span() { return {data_, size_}; }
  std::span<const std::uint8_t> span() const { return {data_, size_}; }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t{alignment_});
      data_ = nullptr;
    }
  }

  std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t alignment_ = kDefaultAlignment;
};

}  // namespace prlc::gf
