// 2-D sensor-field overlay with GPSR-style geographic routing (Sec. 2).
//
// W sensors are placed uniformly at random in the unit square and can
// talk to every node within `radius`. Messages addressed to a *location*
// (a point derived from the common seed) are forwarded greedily to the
// neighbor closest to the target point; when greedy forwarding reaches a
// local minimum, the implementation falls back to a shortest-path detour
// over the connectivity graph — the role GPSR's perimeter mode plays,
// with the same delivery guarantee (reaches the globally closest alive
// node whenever the graph is connected) and a conservative hop count.
//
// "Power of two choices" placement (Sec. 4, citing Byers et al.): each
// location derives two candidate points; the candidate whose closest node
// carries the lighter deterministic load replay is chosen. Because the
// replay depends only on the common seed, every node computes the same
// assignment with no coordination — the property the protocol needs.
#pragma once

#include <vector>

#include "net/geometry.h"
#include "net/overlay.h"

namespace prlc::net {

struct SensorParams {
  std::size_t nodes = 500;
  /// Communication radius; 0 = auto (2 * sqrt(ln W / (pi W)), comfortably
  /// above the connectivity threshold for uniform deployments).
  double radius = 0;
  std::size_t locations = 100;  ///< M seed-derived storage locations
  std::uint64_t seed = 1;
  bool two_choices = false;  ///< power-of-two-choices load balancing
};

class SensorNetwork final : public Overlay {
 public:
  explicit SensorNetwork(const SensorParams& params);

  std::size_t locations() const override { return location_points_.size(); }
  NodeId owner_of(LocationId loc) const override;
  std::vector<NodeId> owner_candidates(LocationId loc, std::size_t count) const override;
  RouteResult route(NodeId from, LocationId loc) const override;

  /// Geometric position of a node.
  const Point2D& position(NodeId node) const;

  /// The point a location resolved to (post two-choices selection).
  const Point2D& location_point(LocationId loc) const;

  double radius() const { return radius_; }

  /// Neighbors within the radio radius (alive or not — callers filter).
  const std::vector<NodeId>& neighbors(NodeId node) const;

  /// True when the alive subgraph is connected (test/diagnostic helper).
  bool alive_graph_connected() const;

  /// Closest alive node to an arbitrary point.
  NodeId closest_alive(const Point2D& p) const;

  /// The `count` alive nodes nearest to a point, closest first.
  std::vector<NodeId> nearest_alive(const Point2D& p, std::size_t count) const;

 private:
  void build_grid();
  void build_adjacency();

  /// Grid cell index for a point.
  std::size_t cell_of(const Point2D& p) const;

  /// Shortest alive-graph path length from `from` to `to`; SIZE_MAX when
  /// disconnected.
  std::size_t bfs_hops(NodeId from, NodeId to) const;

  double radius_ = 0;
  std::vector<Point2D> positions_;
  std::vector<std::vector<NodeId>> adjacency_;
  std::vector<Point2D> location_points_;

  // Uniform grid for nearest-node queries: cells_ x cells_ buckets.
  std::size_t cells_ = 1;
  std::vector<std::vector<NodeId>> grid_;
};

}  // namespace prlc::net
