#include "net/fault_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace prlc::net {

const char* to_string(FaultClass c) {
  switch (c) {
    case FaultClass::kNone:
      return "none";
    case FaultClass::kTimeout:
      return "timeout";
    case FaultClass::kTransient:
      return "transient";
    case FaultClass::kCorruption:
      return "corruption";
    case FaultClass::kTruncation:
      return "truncation";
    case FaultClass::kBitRotAtRest:
      return "bitrot";
    case FaultClass::kByzantine:
      return "byzantine";
    case FaultClass::kCrash:
      return "crash";
    case FaultClass::kDeadNode:
      return "dead_node";
  }
  PRLC_ASSERT(false, "unknown fault class");
}

bool FaultSpec::active() const {
  return timeout_rate > 0 || transient_rate > 0 || corrupt_rate > 0 || truncate_rate > 0 ||
         crash_rate > 0 || bitrot_rate > 0 || byzantine_fraction > 0 || slow_fraction > 0 ||
         flaky_fraction > 0;
}

FaultSpec FaultSpec::scaled(double factor) const {
  PRLC_REQUIRE(factor >= 0.0, "fault scale factor must be nonnegative");
  const auto clamp01 = [factor](double rate) { return std::min(rate * factor, 1.0); };
  FaultSpec out = *this;
  out.timeout_rate = clamp01(timeout_rate);
  out.transient_rate = clamp01(transient_rate);
  out.corrupt_rate = clamp01(corrupt_rate);
  out.truncate_rate = clamp01(truncate_rate);
  out.crash_rate = clamp01(crash_rate);
  out.bitrot_rate = clamp01(bitrot_rate);
  out.byzantine_fraction = clamp01(byzantine_fraction);
  out.slow_fraction = clamp01(slow_fraction);
  out.flaky_fraction = clamp01(flaky_fraction);
  return out;
}

void FaultSpec::validate() const {
  const auto in01 = [](double v) { return v >= 0.0 && v <= 1.0; };
  PRLC_REQUIRE(in01(timeout_rate) && in01(transient_rate) && in01(corrupt_rate) &&
                   in01(truncate_rate) && in01(crash_rate) && in01(bitrot_rate),
               "fault rates must be probabilities in [0,1]");
  PRLC_REQUIRE(in01(slow_fraction) && in01(flaky_fraction) && in01(byzantine_fraction),
               "slow/flaky/byzantine fractions must be in [0,1]");
  PRLC_REQUIRE(slow_multiplier >= 1.0 && flaky_multiplier >= 1.0,
               "slow/flaky multipliers must be >= 1");
}

FaultPlan::FaultPlan(const FaultSpec& spec, std::size_t nodes, Rng& rng)
    : spec_(spec), active_(spec.active()) {
  spec_.validate();
  profiles_.resize(nodes);
  if (!active_) return;
  for (auto& p : profiles_) {
    p.slow = rng.bernoulli(spec_.slow_fraction);
    p.flaky = rng.bernoulli(spec_.flaky_fraction);
    // Guarded: bernoulli consumes a draw even at p = 0, and plans built
    // before byzantine_fraction existed must keep their exact streams.
    p.byzantine =
        spec_.byzantine_fraction > 0 && rng.bernoulli(spec_.byzantine_fraction);
  }
}

const NodeFaultProfile& FaultPlan::profile(NodeId node) const {
  PRLC_REQUIRE(node < profiles_.size(), "node id outside the fault plan");
  return profiles_[node];
}

FaultClass FaultPlan::draw_fault(NodeId node, Rng& rng) const {
  if (!active_) return FaultClass::kNone;
  const NodeFaultProfile& p = profile(node);
  const double mult = p.flaky ? spec_.flaky_multiplier : 1.0;
  // One uniform draw partitioned by the (saturating) cumulative rates.
  const double u = rng.uniform_double();
  double cum = spec_.crash_rate;
  if (u < cum) return FaultClass::kCrash;
  cum += spec_.timeout_rate * mult;
  if (u < cum) return FaultClass::kTimeout;
  cum += spec_.transient_rate * mult;
  if (u < cum) return FaultClass::kTransient;
  cum += spec_.corrupt_rate * mult;
  if (u < cum) return FaultClass::kCorruption;
  cum += spec_.truncate_rate * mult;
  if (u < cum) return FaultClass::kTruncation;
  // At-rest rot is a storage property: appended after the in-flight
  // classes and not flaky-amplified. Costs no extra draw, so specs with
  // bitrot_rate == 0 keep their exact pre-existing partition of u.
  cum += spec_.bitrot_rate;
  if (u < cum) return FaultClass::kBitRotAtRest;
  return FaultClass::kNone;
}

std::uint64_t FaultPlan::draw_latency_us(NodeId node, Rng& rng) const {
  if (!active_) return 0;
  // Inverse-CDF exponential; 1 - u avoids log(0).
  const double u = rng.uniform_double();
  double latency = -static_cast<double>(spec_.mean_latency_us) * std::log(1.0 - u);
  if (profile(node).slow) latency *= spec_.slow_multiplier;
  return static_cast<std::uint64_t>(latency);
}

}  // namespace prlc::net
