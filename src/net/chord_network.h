// Chord-style DHT overlay (Sec. 2: "each node has a unique ID in a
// one-dimensional geometric space"), used as the P2P instantiation of the
// pre-distribution protocol.
//
// Node IDs are 64-bit points on a ring; a key is owned by its alive
// successor (first node clockwise). Lookup routing follows the classic
// finger rule: each hop jumps to the latest node the current node knows
// of that still precedes the key, halving the remaining ring distance, so
// lookups take O(log W) hops. Fingers are resolved against the current
// alive set, modelling a DHT whose stabilization has caught up with the
// churn — the standard assumption for persistence analysis.
#pragma once

#include <vector>

#include "net/geometry.h"
#include "net/overlay.h"

namespace prlc::net {

struct ChordParams {
  std::size_t nodes = 500;
  std::size_t locations = 100;  ///< M seed-derived storage keys
  std::uint64_t seed = 1;
  bool two_choices = false;  ///< power-of-two-choices key selection
};

class ChordNetwork final : public Overlay {
 public:
  explicit ChordNetwork(const ChordParams& params);

  std::size_t locations() const override { return location_keys_.size(); }
  NodeId owner_of(LocationId loc) const override;
  std::vector<NodeId> owner_candidates(LocationId loc, std::size_t count) const override;
  RouteResult route(NodeId from, LocationId loc) const override;

  /// Ring identifier of a node.
  std::uint64_t ring_id(NodeId node) const;

  /// Ring key a location resolved to (post two-choices selection).
  std::uint64_t location_key(LocationId loc) const;

  /// Alive successor of an arbitrary key (the owner rule).
  NodeId successor(std::uint64_t key) const;

  /// The `count` alive successors of a key, clockwise order.
  std::vector<NodeId> successors(std::uint64_t key, std::size_t count) const;

 private:
  /// Index into sorted_ of the first ring id >= key (mod wrap), ignoring
  /// liveness.
  std::size_t successor_index(std::uint64_t key) const;

  std::vector<std::uint64_t> ring_ids_;          // by NodeId
  std::vector<NodeId> sorted_;                   // NodeIds sorted by ring id
  std::vector<std::uint64_t> sorted_ids_;        // ring ids, sorted
  std::vector<std::uint64_t> location_keys_;     // by LocationId
};

}  // namespace prlc::net
