#include "net/sensor_network.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <numbers>

namespace prlc::net {

namespace {

Point2D point_from_hash(std::uint64_t h) {
  std::uint64_t state = h;
  const double x = static_cast<double>(splitmix64_next(state) >> 11) * 0x1.0p-53;
  const double y = static_cast<double>(splitmix64_next(state) >> 11) * 0x1.0p-53;
  return {x, y};
}

}  // namespace

SensorNetwork::SensorNetwork(const SensorParams& params) {
  PRLC_REQUIRE(params.nodes >= 2, "a sensor field needs at least two nodes");
  PRLC_REQUIRE(params.locations >= 1, "need at least one storage location");

  const auto w = static_cast<double>(params.nodes);
  radius_ = params.radius > 0
                ? params.radius
                : 2.0 * std::sqrt(std::log(w) / (std::numbers::pi * w));
  PRLC_REQUIRE(radius_ > 0 && radius_ <= 1.5, "radio radius out of range");

  Rng rng(params.seed);
  positions_.resize(params.nodes);
  for (auto& p : positions_) p = {rng.uniform_double(), rng.uniform_double()};
  init_membership(params.nodes);

  build_grid();
  build_adjacency();

  // Derive location points from the common seed (Sec. 4): candidate h-th
  // point of location i hashes (seed', i, h). Under two-choices, replay
  // the deterministic assignment and keep the lighter candidate.
  std::uint64_t loc_seed = params.seed ^ 0xa5a5a5a5deadbeefULL;
  const std::uint64_t base = splitmix64_next(loc_seed);
  std::vector<std::size_t> load(params.nodes, 0);
  location_points_.reserve(params.locations);
  for (std::uint32_t i = 0; i < params.locations; ++i) {
    std::uint64_t h1 = base + 0x9e3779b97f4a7c15ULL * (2ULL * i + 1);
    const Point2D c1 = point_from_hash(h1);
    if (!params.two_choices) {
      location_points_.push_back(c1);
      ++load[closest_alive(c1)];
      continue;
    }
    std::uint64_t h2 = base + 0x9e3779b97f4a7c15ULL * (2ULL * i + 2);
    const Point2D c2 = point_from_hash(h2);
    const NodeId n1 = closest_alive(c1);
    const NodeId n2 = closest_alive(c2);
    const Point2D chosen = load[n2] < load[n1] ? c2 : c1;
    ++load[load[n2] < load[n1] ? n2 : n1];
    location_points_.push_back(chosen);
  }
}

void SensorNetwork::build_grid() {
  cells_ = std::max<std::size_t>(1, static_cast<std::size_t>(1.0 / radius_));
  grid_.assign(cells_ * cells_, {});
  for (NodeId v = 0; v < positions_.size(); ++v) {
    grid_[cell_of(positions_[v])].push_back(v);
  }
}

std::size_t SensorNetwork::cell_of(const Point2D& p) const {
  auto clamp_cell = [&](double coord) {
    auto c = static_cast<std::size_t>(coord * static_cast<double>(cells_));
    return std::min(c, cells_ - 1);
  };
  return clamp_cell(p.y) * cells_ + clamp_cell(p.x);
}

void SensorNetwork::build_adjacency() {
  adjacency_.assign(positions_.size(), {});
  const double r_sq = radius_ * radius_;
  for (NodeId v = 0; v < positions_.size(); ++v) {
    const Point2D& p = positions_[v];
    const auto cx = static_cast<std::ptrdiff_t>(std::min(
        static_cast<std::size_t>(p.x * static_cast<double>(cells_)), cells_ - 1));
    const auto cy = static_cast<std::ptrdiff_t>(std::min(
        static_cast<std::size_t>(p.y * static_cast<double>(cells_)), cells_ - 1));
    for (std::ptrdiff_t dy = -1; dy <= 1; ++dy) {
      for (std::ptrdiff_t dx = -1; dx <= 1; ++dx) {
        const std::ptrdiff_t nx = cx + dx;
        const std::ptrdiff_t ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<std::ptrdiff_t>(cells_) ||
            ny >= static_cast<std::ptrdiff_t>(cells_)) {
          continue;
        }
        for (NodeId u : grid_[static_cast<std::size_t>(ny) * cells_ + static_cast<std::size_t>(nx)]) {
          if (u != v && distance_sq(p, positions_[u]) <= r_sq) adjacency_[v].push_back(u);
        }
      }
    }
  }
}

const Point2D& SensorNetwork::position(NodeId node) const {
  PRLC_REQUIRE(node < positions_.size(), "node id out of range");
  return positions_[node];
}

const Point2D& SensorNetwork::location_point(LocationId loc) const {
  PRLC_REQUIRE(loc < location_points_.size(), "location id out of range");
  return location_points_[loc];
}

const std::vector<NodeId>& SensorNetwork::neighbors(NodeId node) const {
  PRLC_REQUIRE(node < adjacency_.size(), "node id out of range");
  return adjacency_[node];
}

NodeId SensorNetwork::closest_alive(const Point2D& p) const {
  // Expanding ring search over grid cells; terminates once the closest
  // found node is nearer than the next unexplored ring can offer.
  const auto cells = static_cast<std::ptrdiff_t>(cells_);
  const auto cx = static_cast<std::ptrdiff_t>(std::min(
      static_cast<std::size_t>(p.x * static_cast<double>(cells_)), cells_ - 1));
  const auto cy = static_cast<std::ptrdiff_t>(std::min(
      static_cast<std::size_t>(p.y * static_cast<double>(cells_)), cells_ - 1));
  const double cell_width = 1.0 / static_cast<double>(cells_);

  NodeId best = std::numeric_limits<NodeId>::max();
  double best_sq = std::numeric_limits<double>::infinity();
  for (std::ptrdiff_t ring = 0; ring < 2 * cells; ++ring) {
    // Scan the square ring at Chebyshev distance `ring`.
    bool any_cell = false;
    for (std::ptrdiff_t dy = -ring; dy <= ring; ++dy) {
      for (std::ptrdiff_t dx = -ring; dx <= ring; ++dx) {
        if (std::max(std::abs(dx), std::abs(dy)) != ring) continue;
        const std::ptrdiff_t nx = cx + dx;
        const std::ptrdiff_t ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= cells || ny >= cells) continue;
        any_cell = true;
        for (NodeId u : grid_[static_cast<std::size_t>(ny) * cells_ + static_cast<std::size_t>(nx)]) {
          if (!alive(u)) continue;
          const double d_sq = distance_sq(p, positions_[u]);
          if (d_sq < best_sq) {
            best_sq = d_sq;
            best = u;
          }
        }
      }
    }
    // A node found at ring k dominates anything at ring >= k+2; one extra
    // ring is enough to be exact.
    if (best != std::numeric_limits<NodeId>::max()) {
      const double safe = static_cast<double>(ring) * cell_width;
      if (best_sq <= safe * safe || ring == 2 * cells - 1) break;
    }
    if (!any_cell && ring > cells) break;
  }
  PRLC_REQUIRE(best != std::numeric_limits<NodeId>::max(), "no alive node in the field");
  return best;
}

NodeId SensorNetwork::owner_of(LocationId loc) const {
  return closest_alive(location_point(loc));
}

std::vector<NodeId> SensorNetwork::nearest_alive(const Point2D& p, std::size_t count) const {
  // Collect alive nodes with distances and partial-sort; W is a few
  // thousand at most in these simulations, so the linear scan is fine and
  // exact (the grid only accelerates the single-nearest query).
  std::vector<std::pair<double, NodeId>> alive_nodes;
  alive_nodes.reserve(positions_.size());
  for (NodeId v = 0; v < positions_.size(); ++v) {
    if (alive(v)) alive_nodes.emplace_back(distance_sq(p, positions_[v]), v);
  }
  const std::size_t take = std::min(count, alive_nodes.size());
  std::partial_sort(alive_nodes.begin(), alive_nodes.begin() + static_cast<std::ptrdiff_t>(take),
                    alive_nodes.end());
  std::vector<NodeId> out;
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(alive_nodes[i].second);
  return out;
}

std::vector<NodeId> SensorNetwork::owner_candidates(LocationId loc, std::size_t count) const {
  return nearest_alive(location_point(loc), count);
}

std::size_t SensorNetwork::bfs_hops(NodeId from, NodeId to) const {
  if (from == to) return 0;
  std::vector<std::size_t> dist(positions_.size(), std::numeric_limits<std::size_t>::max());
  std::deque<NodeId> queue;
  dist[from] = 0;
  queue.push_back(from);
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId u : adjacency_[v]) {
      if (!alive(u) || dist[u] != std::numeric_limits<std::size_t>::max()) continue;
      dist[u] = dist[v] + 1;
      if (u == to) return dist[u];
      queue.push_back(u);
    }
  }
  return std::numeric_limits<std::size_t>::max();
}

RouteResult SensorNetwork::route(NodeId from, LocationId loc) const {
  PRLC_REQUIRE(from < positions_.size(), "node id out of range");
  PRLC_REQUIRE(alive(from), "routing from a failed node");
  const Point2D target = location_point(loc);
  const NodeId owner = owner_of(loc);

  RouteResult result;
  NodeId current = from;
  while (current != owner) {
    // Greedy step: alive neighbor strictly closest to the target point.
    const double here = distance_sq(positions_[current], target);
    NodeId next = current;
    double next_d = here;
    for (NodeId u : adjacency_[current]) {
      if (!alive(u)) continue;
      const double d = distance_sq(positions_[u], target);
      if (d < next_d) {
        next_d = d;
        next = u;
      }
    }
    if (next == current) {
      // Local minimum: perimeter-mode stand-in — shortest-path detour.
      const std::size_t detour = bfs_hops(current, owner);
      if (detour == std::numeric_limits<std::size_t>::max()) return result;  // partitioned
      result.hops += detour;
      current = owner;
      break;
    }
    current = next;
    ++result.hops;
    if (result.hops > positions_.size()) return result;  // safety net
  }
  result.delivered = true;
  result.owner = owner;
  return result;
}

bool SensorNetwork::alive_graph_connected() const {
  NodeId start = std::numeric_limits<NodeId>::max();
  std::size_t alive_total = 0;
  for (NodeId v = 0; v < positions_.size(); ++v) {
    if (alive(v)) {
      ++alive_total;
      if (start == std::numeric_limits<NodeId>::max()) start = v;
    }
  }
  if (alive_total <= 1) return true;
  std::vector<bool> seen(positions_.size(), false);
  std::deque<NodeId> queue{start};
  seen[start] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const NodeId v = queue.front();
    queue.pop_front();
    for (NodeId u : adjacency_[v]) {
      if (!alive(u) || seen[u]) continue;
      seen[u] = true;
      ++reached;
      queue.push_back(u);
    }
  }
  return reached == alive_total;
}

}  // namespace prlc::net
