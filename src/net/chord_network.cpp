#include "net/chord_network.h"

#include <algorithm>

namespace prlc::net {

ChordNetwork::ChordNetwork(const ChordParams& params) {
  PRLC_REQUIRE(params.nodes >= 2, "a DHT needs at least two nodes");
  PRLC_REQUIRE(params.locations >= 1, "need at least one storage location");

  Rng rng(params.seed);
  ring_ids_.resize(params.nodes);
  for (auto& id : ring_ids_) id = rng();
  // Regenerate on (astronomically unlikely) duplicates to keep ownership
  // unambiguous.
  std::sort(ring_ids_.begin(), ring_ids_.end());
  for (std::size_t i = 1; i < ring_ids_.size(); ++i) {
    while (ring_ids_[i] == ring_ids_[i - 1]) ring_ids_[i] = rng();
  }
  Rng shuffle_rng(params.seed ^ 0x1234abcdULL);
  shuffle_rng.shuffle(std::span<std::uint64_t>(ring_ids_));

  init_membership(params.nodes);
  sorted_.resize(params.nodes);
  for (NodeId v = 0; v < params.nodes; ++v) sorted_[v] = v;
  std::sort(sorted_.begin(), sorted_.end(),
            [&](NodeId a, NodeId b) { return ring_ids_[a] < ring_ids_[b]; });
  sorted_ids_.resize(params.nodes);
  for (std::size_t i = 0; i < params.nodes; ++i) sorted_ids_[i] = ring_ids_[sorted_[i]];

  // Location keys from the common seed; two-choices picks the candidate
  // whose successor carries the lighter deterministic load replay.
  std::uint64_t loc_seed = params.seed ^ 0x0badc0ffee123456ULL;
  const std::uint64_t base = splitmix64_next(loc_seed);
  std::vector<std::size_t> load(params.nodes, 0);
  location_keys_.reserve(params.locations);
  for (std::uint32_t i = 0; i < params.locations; ++i) {
    std::uint64_t s1 = base + 0x9e3779b97f4a7c15ULL * (2ULL * i + 1);
    const std::uint64_t k1 = splitmix64_next(s1);
    if (!params.two_choices) {
      location_keys_.push_back(k1);
      ++load[successor(k1)];
      continue;
    }
    std::uint64_t s2 = base + 0x9e3779b97f4a7c15ULL * (2ULL * i + 2);
    const std::uint64_t k2 = splitmix64_next(s2);
    const NodeId n1 = successor(k1);
    const NodeId n2 = successor(k2);
    const bool second = load[n2] < load[n1];
    location_keys_.push_back(second ? k2 : k1);
    ++load[second ? n2 : n1];
  }
}

std::uint64_t ChordNetwork::ring_id(NodeId node) const {
  PRLC_REQUIRE(node < ring_ids_.size(), "node id out of range");
  return ring_ids_[node];
}

std::uint64_t ChordNetwork::location_key(LocationId loc) const {
  PRLC_REQUIRE(loc < location_keys_.size(), "location id out of range");
  return location_keys_[loc];
}

std::size_t ChordNetwork::successor_index(std::uint64_t key) const {
  const auto it = std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), key);
  const auto idx = static_cast<std::size_t>(it - sorted_ids_.begin());
  return idx == sorted_ids_.size() ? 0 : idx;  // wrap past the top of the ring
}

NodeId ChordNetwork::successor(std::uint64_t key) const {
  const std::size_t start = successor_index(key);
  for (std::size_t step = 0; step < sorted_.size(); ++step) {
    const NodeId v = sorted_[(start + step) % sorted_.size()];
    if (alive(v)) return v;
  }
  PRLC_REQUIRE(false, "no alive node in the ring");
}

std::vector<NodeId> ChordNetwork::successors(std::uint64_t key, std::size_t count) const {
  std::vector<NodeId> out;
  const std::size_t start = successor_index(key);
  for (std::size_t step = 0; step < sorted_.size() && out.size() < count; ++step) {
    const NodeId v = sorted_[(start + step) % sorted_.size()];
    if (alive(v)) out.push_back(v);
  }
  return out;
}

NodeId ChordNetwork::owner_of(LocationId loc) const {
  return successor(location_key(loc));
}

std::vector<NodeId> ChordNetwork::owner_candidates(LocationId loc, std::size_t count) const {
  return successors(location_key(loc), count);
}

RouteResult ChordNetwork::route(NodeId from, LocationId loc) const {
  PRLC_REQUIRE(from < ring_ids_.size(), "node id out of range");
  PRLC_REQUIRE(alive(from), "routing from a failed node");
  const std::uint64_t key = location_key(loc);
  const NodeId owner = successor(key);

  RouteResult result;
  NodeId current = from;
  while (current != owner) {
    const std::uint64_t cur_id = ring_ids_[current];
    const NodeId succ = successor(cur_id + 1);
    // Chord delivery rule: when the key falls between current and its
    // alive successor, that successor owns it — one final hop.
    if (ring_in_interval(key, cur_id, ring_ids_[succ])) {
      PRLC_ASSERT(succ == owner, "successor delivery disagrees with ownership");
      ++result.hops;
      current = succ;
      break;
    }
    // Finger rule: the farthest power-of-two finger whose alive successor
    // still lies strictly within (current, key); fall back to the plain
    // successor when no finger qualifies.
    NodeId next = succ;
    for (int b = 63; b >= 0; --b) {
      const std::uint64_t target = cur_id + (std::uint64_t{1} << b);
      if (!ring_in_interval(target, cur_id, key)) continue;
      const NodeId cand = successor(target);
      if (cand != current && ring_in_interval(ring_ids_[cand], cur_id, key) &&
          ring_ids_[cand] != key) {
        next = cand;
        break;
      }
    }
    current = next;
    ++result.hops;
    if (result.hops > ring_ids_.size()) return result;  // safety net
  }
  result.delivered = true;
  result.owner = owner;
  return result;
}

}  // namespace prlc::net
