// Shared identifiers and small result types for the network substrate.
#pragma once

#include <cstddef>
#include <cstdint>

namespace prlc::net {

/// Dense node index within one overlay instance.
using NodeId = std::uint32_t;

/// Index into the common-seed location sequence (Sec. 4: "each node can
/// use this random seed to generate the same set of M random points").
using LocationId = std::uint32_t;

/// Outcome of routing one message toward a location's owner.
struct RouteResult {
  bool delivered = false;
  NodeId owner = 0;      ///< valid when delivered
  std::size_t hops = 0;  ///< overlay hops traversed (0 = already at owner)
};

}  // namespace prlc::net
