// Node churn and failure models (Sec. 2: "all nodes in the network may
// depart or fail unpredictably").
//
// Two standard models cover the persistence experiments:
//  * uniform mass failure — a fraction f of nodes dies simultaneously
//    (battery exhaustion waves, correlated crashes, snapshot churn);
//  * exponential lifetimes — each node dies independently by elapsed time
//    t with probability 1 - exp(-t / mean_lifetime) (memoryless session
//    lengths, the classic P2P churn model).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "net/overlay.h"
#include "util/random.h"

namespace prlc::net {

/// Kill floor(fraction * alive_count) alive nodes chosen uniformly at
/// random; returns the killed node ids. One wave of the unified
/// sim::FailureProcess event-stream API — the continuous-churn cluster
/// simulator consumes the same streams (see sim/failure_process.h).
std::vector<NodeId> kill_uniform_fraction(Overlay& overlay, double fraction, Rng& rng);

/// Kill each currently-alive node independently with probability
/// 1 - exp(-elapsed / mean_lifetime); returns the killed node ids.
std::vector<NodeId> apply_exponential_churn(Overlay& overlay, double mean_lifetime,
                                            double elapsed, Rng& rng);

/// Death probability of the exponential-lifetime model.
double exponential_death_probability(double mean_lifetime, double elapsed);

/// One step of a join/leave session model (P2P churn is turnover, not
/// just decay): every alive node departs with `leave_prob`; every failed
/// node rejoins with `rejoin_prob` — as a *new* incarnation with empty
/// storage (see Overlay::generation). Returns {left, rejoined} counts.
std::pair<std::size_t, std::size_t> apply_session_churn(Overlay& overlay, double leave_prob,
                                                        double rejoin_prob, Rng& rng);

}  // namespace prlc::net
