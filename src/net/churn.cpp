#include "net/churn.h"

#include <cmath>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/failure_process.h"
#include "util/check.h"

namespace prlc::net {

namespace {

/// Count the wave and leave a timeline marker; per-node instants would
/// swamp a trace at simulation scale, so one event summarizes the batch.
void note_failures(const char* model, std::size_t killed, std::size_t alive_after) {
  static obs::Counter& total = obs::counter("churn.nodes_killed");
  static obs::Counter& waves = obs::counter("churn.waves");
  total.add(killed);
  waves.add();
  obs::gauge("churn.last_alive").set(static_cast<std::int64_t>(alive_after));
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().instant(model, "churn",
                                         {{"killed", static_cast<double>(killed)},
                                          {"alive_after", static_cast<double>(alive_after)}});
    obs::TraceRecorder::global().count("alive_nodes", "churn",
                                       {{"alive", static_cast<double>(alive_after)}});
  }
}

/// Journal every death individually — unlike the trace (see note_failures
/// above), the event journal is bounded per trial and meant for per-node
/// failure-timeline reconstruction.
void journal_failures(const std::vector<NodeId>& killed) {
  if (!obs::events_enabled()) return;
  for (const NodeId v : killed) {
    obs::emit(obs::EventType::kNodeFailed, static_cast<double>(v));
  }
}

}  // namespace

std::vector<NodeId> kill_uniform_fraction(Overlay& overlay, double fraction, Rng& rng) {
  PRLC_REQUIRE(fraction >= 0.0 && fraction <= 1.0, "failure fraction must be in [0,1]");
  // One single-wave FailureProcess behind the unified event-stream API
  // (sim/failure_process.h). The process makes byte-identical Rng draws to
  // the historical in-place implementation, and FailureDriver emits the
  // same churn telemetry — committed experiment baselines are unchanged.
  sim::WaveFailureProcess process({{0.0, fraction}});
  sim::FailureDriver driver(process, overlay);
  return driver.advance_to(0.0, rng);
}

double exponential_death_probability(double mean_lifetime, double elapsed) {
  PRLC_REQUIRE(mean_lifetime > 0.0, "mean lifetime must be positive");
  PRLC_REQUIRE(elapsed >= 0.0, "elapsed time must be nonnegative");
  return 1.0 - std::exp(-elapsed / mean_lifetime);
}

std::vector<NodeId> apply_exponential_churn(Overlay& overlay, double mean_lifetime,
                                            double elapsed, Rng& rng) {
  const double p = exponential_death_probability(mean_lifetime, elapsed);
  std::vector<NodeId> killed;
  for (NodeId v = 0; v < overlay.nodes(); ++v) {
    if (overlay.alive(v) && rng.bernoulli(p)) {
      overlay.fail_node(v);
      killed.push_back(v);
    }
  }
  note_failures("exponential_churn", killed.size(), overlay.alive_count());
  journal_failures(killed);
  return killed;
}

std::pair<std::size_t, std::size_t> apply_session_churn(Overlay& overlay, double leave_prob,
                                                        double rejoin_prob, Rng& rng) {
  PRLC_REQUIRE(leave_prob >= 0.0 && leave_prob <= 1.0, "leave probability must be in [0,1]");
  PRLC_REQUIRE(rejoin_prob >= 0.0 && rejoin_prob <= 1.0, "rejoin probability must be in [0,1]");
  std::size_t left = 0;
  std::size_t rejoined = 0;
  for (NodeId v = 0; v < overlay.nodes(); ++v) {
    if (overlay.alive(v)) {
      if (rng.bernoulli(leave_prob)) {
        overlay.fail_node(v);
        obs::emit(obs::EventType::kNodeFailed, static_cast<double>(v));
        ++left;
      }
    } else if (rng.bernoulli(rejoin_prob)) {
      overlay.revive_node(v);
      ++rejoined;
    }
  }
  static obs::Counter& rejoin_counter = obs::counter("churn.nodes_rejoined");
  rejoin_counter.add(rejoined);
  note_failures("session_churn", left, overlay.alive_count());
  if (rejoined > 0 && obs::trace_enabled()) {
    obs::TraceRecorder::global().instant("node_join_wave", "churn",
                                         {{"rejoined", static_cast<double>(rejoined)}});
  }
  return {left, rejoined};
}

}  // namespace prlc::net
