// Abstract overlay network — the substrate the Sec. 4 pre-distribution
// protocol runs on.
//
// An overlay owns W nodes in some geometric space and can (a) resolve the
// node "in charge of" any of the M seed-derived random locations, and (b)
// simulate routing a message from a node toward a location, counting
// overlay hops. Node failures are first-class: after fail_node(), routing
// and ownership resolve among the surviving nodes only, which is what the
// persistence experiments exercise.
//
// Ownership is resolved against the *current* alive set, so a location's
// owner can change across failures; the pre-distribution layer records
// the owner at placement time, exactly like a real deployment where the
// blocks physically sit on the node that held the location when data was
// disseminated.
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::net {

class Overlay {
 public:
  virtual ~Overlay() = default;

  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  /// Total nodes (alive + failed).
  std::size_t nodes() const { return alive_.size(); }

  /// Number of seed-derived random locations (M of Sec. 4).
  virtual std::size_t locations() const = 0;

  bool alive(NodeId node) const {
    PRLC_REQUIRE(node < alive_.size(), "node id out of range");
    return alive_[node];
  }

  /// Incarnation counter: bumped every time the node fails. A revived
  /// node is a *new* incarnation — state stored on a previous one (e.g.
  /// coded blocks) is gone, which is how the storage layer distinguishes
  /// "still holding the block" from "rejoined empty".
  std::uint32_t generation(NodeId node) const {
    PRLC_REQUIRE(node < generation_.size(), "node id out of range");
    return generation_[node];
  }

  /// Mark a node failed; idempotent (re-failing does not bump again).
  void fail_node(NodeId node) {
    PRLC_REQUIRE(node < alive_.size(), "node id out of range");
    if (!alive_[node]) return;
    alive_[node] = false;
    ++generation_[node];
  }

  /// Bring a failed node back (a peer rejoining the session / a sensor
  /// waking from hibernation) with empty storage. Idempotent.
  void revive_node(NodeId node) {
    PRLC_REQUIRE(node < alive_.size(), "node id out of range");
    alive_[node] = true;
  }

  std::size_t alive_count() const {
    std::size_t count = 0;
    for (NodeId v = 0; v < nodes(); ++v) {
      if (alive(v)) ++count;
    }
    return count;
  }

  /// Node currently in charge of location `loc` (closest alive node /
  /// alive successor). Requires at least one alive node.
  virtual NodeId owner_of(LocationId loc) const = 0;

  /// The first `count` alive candidates for hosting `loc`, best first
  /// (k nearest in the plane / k successors on the ring). Capacity-aware
  /// placement walks this list until it finds a node with spare storage
  /// (Sec. 2: "each node only has a limited amount of storage space").
  /// Returns fewer than `count` when the alive population is smaller.
  virtual std::vector<NodeId> owner_candidates(LocationId loc, std::size_t count) const = 0;

  /// Route a message from `from` (must be alive) toward location `loc`;
  /// returns the owner reached and the hop count, or delivered = false if
  /// the overlay is partitioned between them.
  virtual RouteResult route(NodeId from, LocationId loc) const = 0;

  /// Uniformly random alive node; requires at least one alive.
  NodeId random_alive_node(Rng& rng) const {
    const std::size_t alive_total = alive_count();
    PRLC_REQUIRE(alive_total > 0, "no alive nodes left in the overlay");
    std::size_t pick = rng.uniform(alive_total);
    for (NodeId v = 0; v < nodes(); ++v) {
      if (alive(v)) {
        if (pick == 0) return v;
        --pick;
      }
    }
    PRLC_ASSERT(false, "alive node scan failed");
  }

 protected:
  Overlay() = default;

  /// Called once by concrete overlays after they know their node count.
  void init_membership(std::size_t node_count) {
    alive_.assign(node_count, true);
    generation_.assign(node_count, 0);
  }

 private:
  std::vector<bool> alive_;
  std::vector<std::uint32_t> generation_;
};

}  // namespace prlc::net
