// Deterministic retrieval-fault model (the adversity of Sec. 2 applied
// *during* collection, not just before it).
//
// Churn (net/churn.h) removes nodes between dissemination and collection;
// this module models what goes wrong while the collector is actively
// fetching: request timeouts, transient connection errors, payload
// corruption and mid-transfer truncation, straggler ("slow") nodes, and
// nodes that crash mid-collection. A FaultPlan is drawn once per trial
// from the trial's Rng — per-node profiles (slow/flaky) plus per-attempt
// fault draws — so a fault-injected experiment stays bit-identical under
// runtime::TrialRunner at any thread count: no wall clock, no global
// state, every random choice flows from the trial seed.
//
// A default-constructed FaultPlan is the *null plan*: inactive, and
// guaranteed to consume no Rng draws, so routing fault-free collection
// through the channel leaves existing experiment streams untouched.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/types.h"
#include "util/random.h"

namespace prlc::net {

/// What happened to one fetch attempt.
enum class FaultClass {
  kNone,          ///< attempt delivered its bytes (possibly corrupted in-band)
  kTimeout,       ///< no reply within the deadline; retryable
  kTransient,     ///< connection refused / reset; retryable
  kCorruption,    ///< payload bit-flip in flight (caught by the wire CRC)
  kTruncation,    ///< transfer cut short (caught by the wire bounds checks)
  kBitRotAtRest,  ///< stored payload rotted on disk; the frame's CRC is
                  ///< recomputed over the rotten bytes at send time, so the
                  ///< wire checks pass — only a fingerprint can unmask it
  kByzantine,     ///< node serves well-formed frames with forged payloads;
                  ///< never produced by draw_fault (it is a per-node
                  ///< character, NodeFaultProfile::byzantine)
  kCrash,         ///< serving node died mid-collection; its blocks are gone
  kDeadNode,      ///< owner was already gone when the fetch was issued
};

const char* to_string(FaultClass c);

/// Per-attempt fault rates and latency shape. Rates are probabilities of
/// mutually exclusive outcomes per fetch attempt; when their (flaky-
/// multiplied) sum exceeds 1 the classes saturate in the order crash >
/// timeout > transient > corruption > truncation.
struct FaultSpec {
  double timeout_rate = 0.0;
  double transient_rate = 0.0;
  double corrupt_rate = 0.0;
  double truncate_rate = 0.0;
  double crash_rate = 0.0;
  /// Probability per fetch that the *stored* replica behind the location
  /// has silently rotted at rest. Rot is sticky: once a location rots the
  /// channel keeps serving the same rotten bytes, under a valid CRC.
  /// Unlike the in-flight rates, rot is a storage property and is not
  /// amplified for flaky nodes.
  double bitrot_rate = 0.0;
  /// Fraction of nodes that are Byzantine: every frame they serve is
  /// well-formed (valid CRC) but carries a deterministically forged
  /// payload, inconsistent with its claimed coefficients.
  double byzantine_fraction = 0.0;
  /// Fraction of nodes that are stragglers; their latency draws are
  /// multiplied by slow_multiplier.
  double slow_fraction = 0.0;
  double slow_multiplier = 8.0;
  /// Fraction of nodes that are flaky; their timeout/transient/corrupt/
  /// truncate rates are multiplied by flaky_multiplier (crash is not).
  double flaky_fraction = 0.0;
  double flaky_multiplier = 3.0;
  /// Mean of the exponential per-attempt latency draw.
  std::uint64_t mean_latency_us = 300;

  /// Whether any stochastic behaviour is configured. Inactive specs make
  /// FaultPlan the null plan (zero Rng draws anywhere).
  bool active() const;

  /// Copy with every rate (and the slow/flaky fractions) multiplied by
  /// `factor` and clamped to [0, 1] — the knob fault-sweep benches turn.
  FaultSpec scaled(double factor) const;

  /// All rates/fractions in [0, 1], multipliers >= 1, factor sanity.
  void validate() const;
};

/// Static per-node character, drawn once when the plan is built.
struct NodeFaultProfile {
  bool slow = false;
  bool flaky = false;
  bool byzantine = false;
};

/// A seeded, immutable-per-trial assignment of fault behaviour to nodes.
class FaultPlan {
 public:
  /// Null plan: inactive, draws nothing, injects nothing.
  FaultPlan() = default;

  /// Draw per-node profiles for `nodes` nodes from `rng`. Consumes Rng
  /// draws only when `spec.active()`.
  FaultPlan(const FaultSpec& spec, std::size_t nodes, Rng& rng);

  bool active() const { return active_; }
  const FaultSpec& spec() const { return spec_; }
  const NodeFaultProfile& profile(NodeId node) const;

  /// Outcome of one fetch attempt against `node`. One uniform draw when
  /// active; kNone (and no draw) when not.
  FaultClass draw_fault(NodeId node, Rng& rng) const;

  /// Latency of one fetch attempt against `node` (exponential around
  /// mean_latency_us, times slow_multiplier for slow nodes). One uniform
  /// draw when active; 0 when not.
  std::uint64_t draw_latency_us(NodeId node, Rng& rng) const;

 private:
  FaultSpec spec_{};
  bool active_ = false;
  std::vector<NodeFaultProfile> profiles_;
};

}  // namespace prlc::net
