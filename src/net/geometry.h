// Geometric primitives for the two overlay families of Sec. 2:
// a 2-D unit square (sensor fields, GPSR-style routing) and a 1-D
// circular key space (DHT overlays, Chord-style routing).
#pragma once

#include <cmath>
#include <cstdint>

namespace prlc::net {

struct Point2D {
  double x = 0;
  double y = 0;
};

/// Euclidean distance in the plane.
inline double distance(const Point2D& a, const Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Squared distance (comparison-only paths avoid the sqrt).
inline double distance_sq(const Point2D& a, const Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Clockwise distance from `from` to `to` on the 2^64 ring: the number of
/// steps forward (wrapping) to reach `to`. Chord's key-ownership metric.
inline std::uint64_t ring_clockwise(std::uint64_t from, std::uint64_t to) {
  return to - from;  // unsigned wrap-around is exactly the ring metric
}

/// True when `key` lies in the half-open clockwise interval (from, to].
inline bool ring_in_interval(std::uint64_t key, std::uint64_t from, std::uint64_t to) {
  return ring_clockwise(from, key) != 0 && ring_clockwise(from, key) <= ring_clockwise(from, to);
}

}  // namespace prlc::net
