#include "design/utility_optimizer.h"

#include <algorithm>
#include <cmath>

#include "analysis/plc_analysis.h"
#include "analysis/slc_analysis.h"
#include "design/nelder_mead.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::design {

namespace {

std::vector<double> softmax_to_simplex(const std::vector<double>& theta) {
  std::vector<double> p(theta.size() + 1);
  double max_t = 0.0;
  for (double t : theta) max_t = std::max(max_t, t);
  double sum = 0.0;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    p[i] = std::exp(theta[i] - max_t);
    sum += p[i];
  }
  p.back() = std::exp(-max_t);
  sum += p.back();
  for (double& v : p) v /= sum;
  return p;
}

void validate(const UtilityProblem& problem) {
  PRLC_REQUIRE(problem.marginal_utility.size() == problem.spec.levels(),
               "one marginal utility per priority level is required");
  for (double u : problem.marginal_utility) {
    PRLC_REQUIRE(u >= 0.0, "marginal utilities must be nonnegative");
  }
  PRLC_REQUIRE(!problem.scenarios.empty(), "at least one survival scenario is required");
  double total_weight = 0;
  for (const auto& s : problem.scenarios) {
    PRLC_REQUIRE(s.weight >= 0.0, "scenario weights must be nonnegative");
    total_weight += s.weight;
  }
  PRLC_REQUIRE(total_weight > 0.0, "scenario weights must not all be zero");
}

/// Pr(X_M >= k) for k = 1..n under the problem's scheme.
std::vector<double> prefix_probabilities(const UtilityProblem& problem,
                                         const codes::PriorityDistribution& dist,
                                         std::size_t coded_blocks) {
  const std::size_t n = problem.spec.levels();
  switch (problem.scheme) {
    case codes::Scheme::kSlc: {
      analysis::SlcAnalysis slc(problem.spec, dist);
      return slc.prefix_probabilities(coded_blocks);
    }
    case codes::Scheme::kPlc: {
      analysis::PlcAnalysis plc(problem.spec, dist);
      const auto pmf = plc.level_pmf(coded_blocks);
      std::vector<double> probs(n, 0.0);
      double tail = 0.0;
      for (std::size_t k = n; k >= 1; --k) {
        tail += pmf[k];
        probs[k - 1] = std::min(tail, 1.0);
      }
      return probs;
    }
    case codes::Scheme::kRlc: {
      std::vector<double> probs(n, coded_blocks >= problem.spec.total() ? 1.0 : 0.0);
      return probs;
    }
  }
  PRLC_ASSERT(false, "unknown scheme");
}

}  // namespace

double expected_utility(const UtilityProblem& problem, const std::vector<double>& distribution) {
  validate(problem);
  PRLC_REQUIRE(distribution.size() == problem.spec.levels(),
               "distribution width must match the spec");
  const codes::PriorityDistribution dist{std::vector<double>(distribution)};

  double total_weight = 0;
  for (const auto& s : problem.scenarios) total_weight += s.weight;

  double utility = 0.0;
  for (const auto& scenario : problem.scenarios) {
    if (scenario.weight == 0) continue;
    const auto probs = prefix_probabilities(problem, dist, scenario.coded_blocks);
    double scenario_utility = 0.0;
    for (std::size_t k = 0; k < probs.size(); ++k) {
      scenario_utility += problem.marginal_utility[k] * probs[k];
    }
    utility += scenario.weight / total_weight * scenario_utility;
  }
  return utility;
}

UtilityResult maximize_utility(const UtilityProblem& problem, const UtilityOptions& options) {
  validate(problem);
  const std::size_t n = problem.spec.levels();
  UtilityResult result;

  auto objective = [&](const std::vector<double>& theta) {
    return -expected_utility(problem, softmax_to_simplex(theta));
  };

  if (n == 1) {
    result.distribution = {1.0};
    result.expected_utility = expected_utility(problem, result.distribution);
    result.evaluations = 1;
    return result;
  }

  Rng rng(options.seed);
  std::vector<double> best_theta(n - 1, 0.0);
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t start = 0; start <= options.restarts; ++start) {
    std::vector<double> theta(n - 1, 0.0);
    if (start > 0) {
      for (double& t : theta) t = (rng.uniform_double() - 0.5) * 4.0;
    }
    NelderMeadOptions nm;
    nm.max_evaluations = options.max_evaluations_per_start;
    const auto run = nelder_mead(objective, theta, nm);
    result.evaluations += run.evaluations;
    if (run.value < best) {
      best = run.value;
      best_theta = run.x;
    }
  }
  result.distribution = softmax_to_simplex(best_theta);
  result.expected_utility = expected_utility(problem, result.distribution);
  return result;
}

}  // namespace prlc::design
