#include "design/feasibility.h"

#include <algorithm>
#include <limits>
#include <cmath>

#include "analysis/plc_analysis.h"
#include "analysis/slc_analysis.h"
#include "design/nelder_mead.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::design {

namespace {

/// softmax over (theta_1..theta_{n-1}, 0) — an unconstrained chart of the
/// open probability simplex.
std::vector<double> softmax_to_simplex(const std::vector<double>& theta) {
  std::vector<double> p(theta.size() + 1);
  double max_t = 0.0;  // the pinned last coordinate is 0
  for (double t : theta) max_t = std::max(max_t, t);
  double sum = 0.0;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    p[i] = std::exp(theta[i] - max_t);
    sum += p[i];
  }
  p.back() = std::exp(-max_t);
  sum += p.back();
  for (double& v : p) v /= sum;
  return p;
}

double expected_levels(const FeasibilityProblem& problem, const codes::PriorityDistribution& dist,
                       std::size_t coded_blocks) {
  switch (problem.scheme) {
    case codes::Scheme::kSlc: {
      analysis::SlcAnalysis slc(problem.spec, dist);
      return slc.expected_levels(coded_blocks);
    }
    case codes::Scheme::kPlc: {
      analysis::PlcAnalysis plc(problem.spec, dist);
      return plc.expected_levels(coded_blocks);
    }
    case codes::Scheme::kRlc:
      return coded_blocks >= problem.spec.total() ? static_cast<double>(problem.spec.levels())
                                                  : 0.0;
  }
  PRLC_ASSERT(false, "unknown scheme");
}

double full_recovery_probability(const FeasibilityProblem& problem,
                                 const codes::PriorityDistribution& dist,
                                 std::size_t coded_blocks) {
  switch (problem.scheme) {
    case codes::Scheme::kSlc: {
      analysis::SlcAnalysis slc(problem.spec, dist);
      return slc.prob_decode_all(coded_blocks);
    }
    case codes::Scheme::kPlc: {
      analysis::PlcAnalysis plc(problem.spec, dist);
      return plc.prob_decode_all(coded_blocks);
    }
    case codes::Scheme::kRlc:
      return coded_blocks >= problem.spec.total() ? 1.0 : 0.0;
  }
  PRLC_ASSERT(false, "unknown scheme");
}

}  // namespace

ConstraintReport evaluate_constraints(const FeasibilityProblem& problem,
                                      const std::vector<double>& distribution) {
  PRLC_REQUIRE(distribution.size() == problem.spec.levels(),
               "distribution width must match the spec");
  const codes::PriorityDistribution dist{std::vector<double>(distribution)};

  ConstraintReport report;
  double violation = 0.0;
  double max_shortfall = 0.0;
  for (const auto& c : problem.decoding) {
    const double achieved = expected_levels(problem, dist, c.coded_blocks);
    report.achieved_levels.push_back(achieved);
    const double shortfall = std::max(0.0, c.min_levels - achieved);
    violation += shortfall * shortfall;
    max_shortfall = std::max(max_shortfall, shortfall);
  }
  if (problem.full_recovery.has_value()) {
    const auto& fr = *problem.full_recovery;
    const auto m = static_cast<std::size_t>(
        std::ceil(fr.alpha * static_cast<double>(problem.spec.total())));
    const double achieved = full_recovery_probability(problem, dist, m);
    report.achieved_full_recovery = achieved;
    const double shortfall = std::max(0.0, (1.0 - fr.epsilon) - achieved);
    violation += shortfall * shortfall;
    max_shortfall = std::max(max_shortfall, shortfall);
  }
  report.violation = violation;
  report.max_shortfall = max_shortfall;
  return report;
}

FeasibilityResult solve_feasibility(const FeasibilityProblem& problem,
                                    const FeasibilityOptions& options) {
  PRLC_REQUIRE(!problem.decoding.empty() || problem.full_recovery.has_value(),
               "feasibility problem has no constraints");
  for (const auto& c : problem.decoding) {
    PRLC_REQUIRE(c.min_levels <= static_cast<double>(problem.spec.levels()),
                 "a constraint requires more levels than exist");
  }

  const std::size_t n = problem.spec.levels();
  FeasibilityResult result;

  const double constraint_count =
      static_cast<double>(problem.decoding.size() + (problem.full_recovery ? 1 : 0));
  const double stop_threshold =
      constraint_count * options.value_tolerance * options.value_tolerance;
  auto objective = [&](const std::vector<double>& theta) {
    return evaluate_constraints(problem, softmax_to_simplex(theta)).violation;
  };

  Rng rng(options.seed);
  std::vector<double> best_theta(n > 1 ? n - 1 : 0, 0.0);
  double best_violation = std::numeric_limits<double>::infinity();

  for (std::size_t start = 0; start <= options.restarts; ++start) {
    std::vector<double> theta(n > 1 ? n - 1 : 0, 0.0);
    if (start > 0) {
      for (double& t : theta) t = (rng.uniform_double() - 0.5) * 4.0;
    }
    if (theta.empty()) {
      // Single-level problems have a unique distribution.
      const double v = objective(theta);
      ++result.evaluations;
      best_theta = theta;
      best_violation = v;
      result.starts_used = 1;
      break;
    }
    NelderMeadOptions nm;
    nm.max_evaluations = options.max_evaluations_per_start;
    const auto run = nelder_mead(objective, theta, nm,
                                 [&](double best) { return best <= stop_threshold; });
    result.evaluations += run.evaluations;
    ++result.starts_used;
    if (run.value < best_violation) {
      best_violation = run.value;
      best_theta = run.x;
    }
    if (best_violation <= stop_threshold) break;
  }

  result.distribution = softmax_to_simplex(best_theta);
  result.report = evaluate_constraints(problem, result.distribution);
  result.feasible = result.report.max_shortfall <= options.value_tolerance;
  return result;
}

}  // namespace prlc::design
