// Utility-based priority-distribution design — the paper's stated open
// problem (Sec. 2: "a less stringent priority model ... requires the
// specification of an application-specific utility function over the
// priority levels ... outside the scope of this paper").
//
// Instead of hard feasibility constraints, the application assigns a
// marginal utility u_i >= 0 to each priority level (the value of getting
// level i back, given levels 1..i-1 are back; strict-priority decoding
// makes the cumulative utility U(k) = sum_{i<=k} u_i). Survival severity
// is a distribution over scenarios (M_s surviving coded blocks with
// probability w_s), and the optimizer picks the priority distribution
// maximizing expected utility
//
//   E[U] = sum_s w_s sum_{k>=1} u_k Pr(X_{M_s} >= k | p).
//
// Built on the same exact analysis + Nelder-Mead machinery as the
// feasibility solver; with a single scenario and 0/1 utilities this
// degenerates to soft feasibility.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/priority_spec.h"
#include "codes/scheme.h"

namespace prlc::design {

/// One survival scenario: `coded_blocks` survive with weight `weight`.
struct SurvivalScenario {
  std::size_t coded_blocks = 0;
  double weight = 1.0;
};

struct UtilityProblem {
  codes::Scheme scheme = codes::Scheme::kPlc;
  /// Placeholder single-level spec; callers must overwrite.
  codes::PrioritySpec spec{std::vector<std::size_t>{1}};
  /// u_i per level (size = spec.levels()), nonnegative.
  std::vector<double> marginal_utility;
  /// Scenario mix; weights need not sum to 1 (normalized internally).
  std::vector<SurvivalScenario> scenarios;
};

struct UtilityOptions {
  std::size_t max_evaluations_per_start = 400;
  std::size_t restarts = 4;
  std::uint64_t seed = 0x071117ULL;
};

struct UtilityResult {
  std::vector<double> distribution;
  double expected_utility = 0;
  std::size_t evaluations = 0;
};

/// Expected utility of a given distribution under the problem.
double expected_utility(const UtilityProblem& problem, const std::vector<double>& distribution);

/// Maximize expected utility over the simplex (uniform start + restarts).
UtilityResult maximize_utility(const UtilityProblem& problem, const UtilityOptions& options = {});

}  // namespace prlc::design
