// Derivative-free simplex minimizer (Nelder–Mead).
//
// Used by the feasibility solver of Sec. 3.4: the constraint functions
// E(X_M) come out of the analysis DP, so no gradients exist and the
// dimension is tiny (n-1 for n priority levels). Standard reflection /
// expansion / contraction / shrink rules with an early-stop predicate so
// the feasibility search can halt at the first zero-violation point,
// mirroring the paper's "MATLAB terminates at the first feasible
// solution" behaviour.
#pragma once

#include <functional>
#include <vector>

namespace prlc::design {

struct NelderMeadOptions {
  std::size_t max_evaluations = 2000;
  /// Stop when the simplex's objective spread falls below this.
  double f_tolerance = 1e-10;
  /// Stop when the simplex's coordinate spread falls below this.
  double x_tolerance = 1e-10;
  /// Initial simplex edge length around the starting point.
  double initial_step = 0.5;
};

struct NelderMeadResult {
  std::vector<double> x;
  double value = 0;
  std::size_t evaluations = 0;
  bool early_stopped = false;  ///< the stop predicate fired
};

/// Minimize `f` from `start`. If `stop` is provided it is consulted after
/// every evaluation with the best value so far; returning true ends the
/// search immediately (used for "first feasible point" searches).
NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> start, const NelderMeadOptions& options = {},
                             const std::function<bool(double)>& stop = nullptr);

}  // namespace prlc::design
