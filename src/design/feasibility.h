// Priority-distribution design by constrained feasibility search
// (Sec. 3.4; Table 1 of the paper).
//
// Given decoding constraints (M_i, k_i) — "M_i randomly accumulated coded
// blocks must decode k_i levels in expectation", equation (9) — plus the
// optional full-recovery constraint Pr(X_{alpha N} = n) > 1 - epsilon,
// equation (10), and the simplex constraints (11), find a feasible
// priority distribution p.
//
// The paper hands this to MATLAB starting from the uniform distribution
// and keeps the first feasible point. We reproduce that with Nelder–Mead
// on a softmax-parameterised simplex, minimizing total constraint
// violation and stopping at the first zero; deterministic multi-starts
// cover the (rare) case where the uniform start stalls in a flat spot.
// Any feasible point is a valid solution, so matching the paper's exact
// Table-1 numbers is not expected — verifying that the paper's published
// distributions satisfy the constraints is (see bench/table1).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "codes/priority_spec.h"
#include "codes/scheme.h"

namespace prlc::design {

/// Equation (9): E(X_{coded_blocks}) >= min_levels.
struct DecodingConstraint {
  std::size_t coded_blocks = 0;
  double min_levels = 0;
};

/// Equation (10): Pr(X_{ceil(alpha*N)} = n) > 1 - epsilon.
struct FullRecoveryConstraint {
  double alpha = 2.0;
  double epsilon = 0.01;
};

struct FeasibilityProblem {
  codes::Scheme scheme = codes::Scheme::kPlc;
  /// Placeholder single-level spec; callers must overwrite.
  codes::PrioritySpec spec{std::vector<std::size_t>{1}};
  std::vector<DecodingConstraint> decoding;
  std::optional<FullRecoveryConstraint> full_recovery;
};

struct FeasibilityOptions {
  /// A constraint counts as satisfied when its shortfall (required minus
  /// achieved, in levels / probability) is at most this. The paper's
  /// Table-1 problems are *tight* — their published solutions sit within
  /// ~1e-3 of the constraint boundaries under the exact analysis (MATLAB
  /// declared them feasible under its own tolerances) — so the default
  /// mirrors that behaviour.
  double value_tolerance = 5e-3;
  std::size_t max_evaluations_per_start = 600;
  std::size_t restarts = 8;  ///< deterministic extra starts after uniform
  std::uint64_t seed = 0x5eedf00dULL;
};

/// Per-constraint achieved-vs-required values, for reporting.
struct ConstraintReport {
  std::vector<double> achieved_levels;        ///< E(X_{M_i}) per constraint
  std::optional<double> achieved_full_recovery;  ///< Pr(X_{alpha N} = n)
  double violation = 0;                       ///< total squared shortfall
  double max_shortfall = 0;                   ///< worst single-constraint gap
};

struct FeasibilityResult {
  bool feasible = false;
  std::vector<double> distribution;  ///< best p found (always a valid pmf)
  ConstraintReport report;           ///< evaluated at `distribution`
  std::size_t evaluations = 0;
  std::size_t starts_used = 0;
};

/// Evaluate a candidate distribution against the problem's constraints.
ConstraintReport evaluate_constraints(const FeasibilityProblem& problem,
                                      const std::vector<double>& distribution);

/// Search for a feasible priority distribution (uniform start first).
FeasibilityResult solve_feasibility(const FeasibilityProblem& problem,
                                    const FeasibilityOptions& options = {});

}  // namespace prlc::design
