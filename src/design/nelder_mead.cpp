#include "design/nelder_mead.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace prlc::design {

namespace {

struct Vertex {
  std::vector<double> x;
  double f = 0;
};

}  // namespace

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> start, const NelderMeadOptions& options,
                             const std::function<bool(double)>& stop) {
  PRLC_REQUIRE(static_cast<bool>(f), "objective function is required");
  PRLC_REQUIRE(!start.empty(), "starting point must be nonempty");
  const std::size_t d = start.size();

  NelderMeadResult result;
  result.x = start;

  auto evaluate = [&](const std::vector<double>& x) {
    const double v = f(x);
    ++result.evaluations;
    if (result.evaluations == 1 || v < result.value) {
      result.value = v;
      result.x = x;
    }
    if (stop && stop(result.value)) result.early_stopped = true;
    return v;
  };

  // Initial simplex: start plus a step along each axis.
  std::vector<Vertex> simplex(d + 1);
  simplex[0].x = start;
  simplex[0].f = evaluate(start);
  for (std::size_t i = 0; i < d && !result.early_stopped; ++i) {
    simplex[i + 1].x = start;
    simplex[i + 1].x[i] += options.initial_step;
    simplex[i + 1].f = evaluate(simplex[i + 1].x);
  }

  constexpr double kReflect = 1.0;
  constexpr double kExpand = 2.0;
  constexpr double kContract = 0.5;
  constexpr double kShrink = 0.5;

  while (!result.early_stopped && result.evaluations < options.max_evaluations) {
    std::sort(simplex.begin(), simplex.end(),
              [](const Vertex& a, const Vertex& b) { return a.f < b.f; });

    // Convergence checks.
    const double f_spread = std::abs(simplex.back().f - simplex.front().f);
    double x_spread = 0;
    for (std::size_t i = 0; i < d; ++i) {
      double lo = simplex[0].x[i];
      double hi = lo;
      for (const auto& v : simplex) {
        lo = std::min(lo, v.x[i]);
        hi = std::max(hi, v.x[i]);
      }
      x_spread = std::max(x_spread, hi - lo);
    }
    if (f_spread < options.f_tolerance && x_spread < options.x_tolerance) break;

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(d, 0.0);
    for (std::size_t v = 0; v < d; ++v) {
      for (std::size_t i = 0; i < d; ++i) centroid[i] += simplex[v].x[i];
    }
    for (double& c : centroid) c /= static_cast<double>(d);

    auto blend = [&](double t, const std::vector<double>& away) {
      std::vector<double> out(d);
      for (std::size_t i = 0; i < d; ++i) out[i] = centroid[i] + t * (centroid[i] - away[i]);
      return out;
    };

    Vertex& worst = simplex.back();
    const std::vector<double> reflected = blend(kReflect, worst.x);
    const double f_reflected = evaluate(reflected);
    if (result.early_stopped) break;

    if (f_reflected < simplex[0].f) {
      const std::vector<double> expanded = blend(kExpand, worst.x);
      const double f_expanded = evaluate(expanded);
      if (result.early_stopped) break;
      if (f_expanded < f_reflected) {
        worst = {expanded, f_expanded};
      } else {
        worst = {reflected, f_reflected};
      }
      continue;
    }
    if (f_reflected < simplex[d - 1].f) {
      worst = {reflected, f_reflected};
      continue;
    }
    // Contraction (outside if the reflection improved on the worst).
    const bool outside = f_reflected < worst.f;
    const std::vector<double> contracted =
        outside ? blend(kReflect * kContract, worst.x) : blend(-kContract, worst.x);
    const double f_contracted = evaluate(contracted);
    if (result.early_stopped) break;
    if (f_contracted < std::min(f_reflected, worst.f)) {
      worst = {contracted, f_contracted};
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t v = 1; v <= d && !result.early_stopped; ++v) {
      for (std::size_t i = 0; i < d; ++i) {
        simplex[v].x[i] = simplex[0].x[i] + kShrink * (simplex[v].x[i] - simplex[0].x[i]);
      }
      simplex[v].f = evaluate(simplex[v].x);
    }
  }
  return result;
}

}  // namespace prlc::design
