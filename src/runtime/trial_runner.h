// Deterministic parallel Monte-Carlo trial engine.
//
// Every figure in the paper is an average over independent experiments;
// TrialRunner shards those trials across a work-stealing ThreadPool while
// keeping the results bit-identical at any thread count. Two rules make
// that hold:
//
//   * Counter-based seed streams. Trial i always draws from
//     Rng(trial_seed(root_seed, i)) — a stateless hash of (root_seed, i)
//     — never from a generator advanced trial-by-trial. Which thread runs
//     the trial, and in what order, cannot influence its random stream.
//   * Ordered merge at a single barrier. Each trial writes its result
//     into slot i of a pre-sized vector; aggregation (Welford stats,
//     histograms — both order-sensitive in floating point) happens after
//     the join barrier, by walking the slots in trial order on one
//     thread.
//
// Contract: run(trials, root_seed, fn) returns exactly the same bytes for
// threads = 1 and threads = N. The experiment drivers
// (proto/persistence_experiment, proto/refresh, codes/decoding_curve)
// and their tests rely on this.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "obs/events.h"
#include "runtime/thread_pool.h"
#include "util/check.h"
#include "util/random.h"

namespace prlc::runtime {

/// Stateless per-trial seed: a SplitMix64 hash of (root_seed, trial).
/// Changing either input decorrelates the whole stream; equal inputs give
/// equal seeds on every platform, thread count and call order.
inline std::uint64_t trial_seed(std::uint64_t root_seed, std::uint64_t trial) {
  // Offset the counter by one golden-ratio step so trial_seed(s, 0) is not
  // the plain SplitMix64 of s (which Rng::reseed would correlate with).
  std::uint64_t state = root_seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1));
  const std::uint64_t a = splitmix64_next(state);
  return a ^ splitmix64_next(state);
}

/// Shards independent trials over a ThreadPool; see the header comment
/// for the determinism contract.
class TrialRunner {
 public:
  /// `threads` = 0: one per hardware thread; 1: inline on the calling
  /// thread (no pool spun up — the serial baseline for speedup numbers).
  explicit TrialRunner(std::size_t threads = 0)
      : threads_(threads == 0 ? ThreadPool::default_thread_count() : threads) {}

  std::size_t threads() const { return threads_; }

  /// Run fn(trial_index, rng) for every trial, each with its own
  /// counter-seeded Rng, and return the per-trial results in trial order.
  /// Exceptions from trials propagate after all trials finished.
  template <typename Fn>
  auto run(std::size_t trials, std::uint64_t root_seed, Fn&& fn)
      -> std::vector<std::invoke_result_t<Fn&, std::size_t, Rng&>> {
    using Result = std::invoke_result_t<Fn&, std::size_t, Rng&>;
    static_assert(std::is_default_constructible_v<Result>,
                  "per-trial results are slotted into a pre-sized vector");
    std::vector<Result> results(trials);
    // One telemetry run id per run() invocation, allocated here on the
    // calling thread so ids follow the program's experiment order; each
    // trial journals under (run, trial), thread count invisible.
    const std::uint64_t telemetry_run = obs::begin_telemetry_run();
    auto one_trial = [&](std::size_t i) {
      obs::TrialScope telemetry(telemetry_run, i);
      record_trial_start();
      const std::uint64_t t0 = trial_clock_ns();
      Rng rng(trial_seed(root_seed, i));
      results[i] = fn(i, rng);
      record_trial_done(trial_clock_ns() - t0);
    };
    if (threads_ <= 1 || trials <= 1) {
      for (std::size_t i = 0; i < trials; ++i) one_trial(i);
    } else {
      ThreadPool pool(std::min(threads_, trials));
      pool.for_each_index(trials, one_trial);
    }
    return results;
  }

 private:
  // obs probes, out-of-line so this header does not pull in the registry.
  static std::uint64_t trial_clock_ns();
  static void record_trial_start();
  static void record_trial_done(std::uint64_t elapsed_ns);

  std::size_t threads_;
};

}  // namespace prlc::runtime
