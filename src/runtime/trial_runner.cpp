#include "runtime/trial_runner.h"

#include "obs/metrics.h"

namespace prlc::runtime {

std::uint64_t TrialRunner::trial_clock_ns() {
  return obs::enabled() ? obs::ScopedTimer::now_ns() : 0;
}

void TrialRunner::record_trial_start() {
  static obs::Counter& started = obs::counter("runtime.trials_started");
  started.add();
}

void TrialRunner::record_trial_done(std::uint64_t elapsed_ns) {
  static obs::Counter& done = obs::counter("runtime.trials_done");
  static obs::LatencyHistogram& latency = obs::histogram("runtime.trial_ns");
  done.add();
  if (obs::enabled()) latency.record(elapsed_ns);
}

}  // namespace prlc::runtime
