#include "runtime/thread_pool.h"

#include <string>

#include "obs/metrics.h"

namespace prlc::runtime {

namespace {

// Which pool (if any) owns the current thread. Lets submit() push onto
// the owning worker's deque and lets nested pools coexist: a worker of
// pool A creating pool B is an external client of B.
thread_local ThreadPool* t_pool = nullptr;
thread_local std::size_t t_index = 0;

}  // namespace

std::size_t ThreadPool::default_thread_count() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = threads == 0 ? default_thread_count() : threads;
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<Queue>());
  obs::gauge("runtime.pool.threads").set(static_cast<std::int64_t>(n));
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(wake_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(std::size_t index) {
  t_pool = this;
  t_index = index;
  // Resolved once per worker: registry lookups are mutex-guarded.
  obs::Counter& busy_ns = obs::counter("runtime.pool.t" + std::to_string(index) + ".busy_ns");
  obs::Counter& tasks_run = obs::counter("runtime.pool.t" + std::to_string(index) + ".tasks");
  for (;;) {
    auto task = take_task();
    if (task.has_value()) {
      const bool timed = obs::enabled();
      const std::uint64_t t0 = timed ? obs::ScopedTimer::now_ns() : 0;
      run_task(*task);
      if (timed) {
        busy_ns.add(obs::ScopedTimer::now_ns() - t0);
        tasks_run.add();
      }
      continue;
    }
    std::unique_lock<std::mutex> lk(wake_mu_);
    if (stop_) return;  // queues drained (the take above failed)
    wake_cv_.wait(lk, [&] {
      return stop_ || pending_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t target;
  if (t_pool == this) {
    target = t_index;  // depth-first on the owning worker, thieves take FIFO
  } else {
    target = next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Empty critical section: a worker between its predicate check and the
  // cv block holds wake_mu_, so taking it here makes the notify visible.
  { std::lock_guard<std::mutex> lk(wake_mu_); }
  wake_cv_.notify_one();
}

std::optional<std::function<void()>> ThreadPool::take_task() {
  static obs::Counter& taken = obs::counter("runtime.pool.tasks");
  static obs::Counter& steals = obs::counter("runtime.pool.steals");
  const std::size_t n = queues_.size();
  const bool local = t_pool == this;
  const std::size_t home = local ? t_index : 0;
  if (local) {
    Queue& q = *queues_[home];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      auto task = std::move(q.tasks.back());
      q.tasks.pop_back();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      taken.add();
      return task;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t idx = (home + 1 + k) % n;
    if (local && idx == home) continue;
    Queue& q = *queues_[idx];
    std::lock_guard<std::mutex> lk(q.mu);
    if (!q.tasks.empty()) {
      auto task = std::move(q.tasks.front());
      q.tasks.pop_front();
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      taken.add();
      if (local) steals.add();
      return task;
    }
  }
  return std::nullopt;
}

bool ThreadPool::try_run_one() {
  auto task = take_task();
  if (!task.has_value()) return false;
  static obs::Counter& helper_runs = obs::counter("runtime.pool.helper_runs");
  helper_runs.add();
  run_task(*task);
  return true;
}

void ThreadPool::run_task(std::function<void()>& task) {
  // submit()/for_each_index() wrappers capture exceptions themselves, so
  // a throw escaping here is an internal-enqueue bug; let it terminate
  // loudly rather than vanish.
  task();
}

}  // namespace prlc::runtime
