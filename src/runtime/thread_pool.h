// Work-stealing thread pool — the library's parallelism substrate.
//
// Design goals, in order:
//   1. No deadlocks under nesting. A pool task may submit subtasks and
//      wait for them: every wait primitive here (TaskFuture::get,
//      for_each_index) *helps* — it executes pending pool tasks instead
//      of blocking the thread — so the pool makes progress even when all
//      workers are waiting on child work.
//   2. Load balance, not microseconds. Tasks in this library are whole
//      Monte-Carlo trials (milliseconds to seconds), so the queues are
//      plain mutex-protected deques: each worker pushes/pops its own
//      deque LIFO and steals FIFO from its siblings when dry. Lock cost
//      is irrelevant at this granularity; steal-based balance is what
//      keeps 16 threads busy when trial latencies vary 10x.
//   3. Observability. Workers surface per-thread utilization through the
//      obs registry ("runtime.pool.t<i>.busy_ns" / ".tasks") plus
//      pool-wide task/steal counters, so a bench's --metrics-json shows
//      exactly how evenly the trial load spread.
//
// The deterministic seed-stream discipline that makes parallel
// Monte-Carlo runs reproducible lives one layer up, in TrialRunner.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace prlc::runtime {

class ThreadPool;

namespace detail {

/// Shared completion state behind a TaskFuture.
template <typename T>
struct FutureState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
  // Result storage; absent for void (the partial specialization below).
  std::optional<T> value;
};

template <>
struct FutureState<void> {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::exception_ptr error;
};

}  // namespace detail

/// Handle to a submitted task's result. get() blocks until the task ran
/// and rethrows any exception it threw. While waiting, the calling thread
/// executes other pending pool tasks ("helping"), so a pool task can
/// submit subtasks and get() them without deadlocking even on a
/// single-thread pool.
template <typename T>
class TaskFuture {
 public:
  /// True once the task has finished (normally or with an exception).
  bool ready() const {
    std::lock_guard<std::mutex> lk(state_->mu);
    return state_->done;
  }

  /// Wait (helping), then return the result or rethrow the task's error.
  /// Single-shot: moves the value out.
  T get();

 private:
  friend class ThreadPool;
  TaskFuture(ThreadPool* pool, std::shared_ptr<detail::FutureState<T>> state)
      : pool_(pool), state_(std::move(state)) {}

  ThreadPool* pool_;
  std::shared_ptr<detail::FutureState<T>> state_;
};

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 = one per hardware thread.
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains nothing: outstanding futures must be get() before destruction
  /// (for_each_index always satisfies this). Remaining queued tasks are
  /// still executed by the exiting workers so no future is abandoned.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static std::size_t default_thread_count();

  /// Schedule `fn()` and return a helping future for its result. Calls
  /// from inside a worker push onto that worker's own deque (LIFO —
  /// depth-first, cache-warm); external calls round-robin across workers.
  template <typename F>
  auto submit(F&& fn) -> TaskFuture<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto state = std::make_shared<detail::FutureState<R>>();
    enqueue([state, task = std::forward<F>(fn)]() mutable {
      try {
        if constexpr (std::is_void_v<R>) {
          task();
        } else {
          state->value.emplace(task());
        }
      } catch (...) {
        state->error = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lk(state->mu);
        state->done = true;
      }
      state->cv.notify_all();
    });
    return TaskFuture<R>(this, std::move(state));
  }

  /// Run fn(i) for every i in [0, n), distributing across the pool; the
  /// calling thread participates. Returns when all n calls finished;
  /// rethrows the first exception any call threw (the remaining calls
  /// still run to completion — trial slots stay consistent). Safe to
  /// call from inside a pool task (nested parallelism).
  template <typename F>
  void for_each_index(std::size_t n, F&& fn) {
    if (n == 0) return;
    struct Job {
      std::atomic<std::size_t> remaining;
      std::mutex mu;
      std::condition_variable cv;
      std::once_flag first_error;
      std::exception_ptr error;
    };
    auto job = std::make_shared<Job>();
    job->remaining.store(n, std::memory_order_relaxed);
    for (std::size_t i = 0; i < n; ++i) {
      enqueue([job, &fn, i] {
        try {
          fn(i);
        } catch (...) {
          std::call_once(job->first_error,
                         [&] { job->error = std::current_exception(); });
        }
        if (job->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          std::lock_guard<std::mutex> lk(job->mu);
          job->cv.notify_all();
        }
      });
    }
    while (job->remaining.load(std::memory_order_acquire) > 0) {
      if (!try_run_one()) {
        // Nothing runnable right now (our tasks are in flight elsewhere):
        // sleep until the job finishes. The timeout re-arms helping in
        // case new stealable work appears meanwhile.
        std::unique_lock<std::mutex> lk(job->mu);
        job->cv.wait_for(lk, std::chrono::milliseconds(1), [&] {
          return job->remaining.load(std::memory_order_acquire) == 0;
        });
      }
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  template <typename>
  friend class TaskFuture;

  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t index);
  void enqueue(std::function<void()> task);

  /// Pop one task (own deque back first, then steal siblings' fronts) and
  /// run it. False when every queue is empty.
  bool try_run_one();
  std::optional<std::function<void()>> take_task();
  static void run_task(std::function<void()>& task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool stop_ = false;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
};

template <typename T>
T TaskFuture<T>::get() {
  for (;;) {
    {
      std::lock_guard<std::mutex> lk(state_->mu);
      if (state_->done) break;
    }
    if (!pool_->try_run_one()) {
      std::unique_lock<std::mutex> lk(state_->mu);
      state_->cv.wait_for(lk, std::chrono::milliseconds(1),
                          [&] { return state_->done; });
    }
  }
  if (state_->error) std::rethrow_exception(state_->error);
  if constexpr (!std::is_void_v<T>) {
    return std::move(*state_->value);
  }
}

}  // namespace prlc::runtime
