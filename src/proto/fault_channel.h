// The retrieval channel between Predistribution storage and the
// collector — every fetched block travels the CRC-checked wire format,
// and a FaultPlan can break things on the way.
//
// Before this layer the collector read StoredBlocks straight out of
// memory: intact, instant, and bypassing codes/wire_format entirely. A
// FaultyChannel makes retrieval honest. Each fetch:
//
//   1. resolves the location's placement-time owner and refuses if that
//      incarnation is gone (churn, rejoin, or an injected mid-collection
//      crash) — FaultClass::kDeadNode;
//   2. consults the FaultPlan for the attempt's outcome: crash (the node
//      dies for the rest of the collection), timeout, or transient error;
//   3. serializes the stored block via codes::encode_wire and, for
//      corruption/truncation draws, damages the frame *in band* — the
//      reply still claims success, and only decode_wire's CRC/bounds
//      checks can unmask it downstream, exactly like a real wire.
//
// Two fault classes are *silent*: the frame they produce is well-formed
// and carries a valid CRC, so nothing below a fingerprint check can see
// them. kBitRotAtRest damages the stored payload before serialization
// (sticky per location — refetches serve the same rotten bytes), and
// Byzantine nodes (NodeFaultProfile::byzantine) forge one payload byte of
// every frame they serve, deterministically per (node, location), so the
// lie is consistent across retries and costs no Rng draws.
//
// A channel built with the default (null) FaultPlan is a pure
// serialization hop: no Rng draws, pristine bytes — which is how the
// ordinary collect() path exercises the wire format on every fetch
// without perturbing existing experiment streams.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/fault_model.h"
#include "proto/predistribution.h"

namespace prlc::proto {

/// What one fetch attempt returned to the collector.
struct FetchReply {
  /// kNone means bytes were delivered — possibly damaged in-band; the
  /// caller must validate them via codes::decode_wire. Corruption and
  /// truncation are deliberately *not* reported here.
  net::FaultClass fault = net::FaultClass::kNone;
  std::vector<std::uint8_t> bytes;  ///< wire frame (empty on failed fetches)
  std::uint64_t latency_us = 0;     ///< simulated attempt latency
  net::NodeId node = 0;             ///< serving (placement-time) node
};

/// Tally of what the channel actually injected, by class. The collector
/// keeps its own *detected* counts; comparing the two is how tests prove
/// nothing slips through the CRC.
struct InjectedFaults {
  std::size_t timeouts = 0;
  std::size_t transient_errors = 0;
  std::size_t corruptions = 0;
  std::size_t truncations = 0;
  std::size_t crashes = 0;
  /// Frames delivered with at-rest rot under a fresh, valid CRC — the
  /// wire checks pass, only a fingerprint can unmask them. Counted only
  /// when the frame is not additionally wire-damaged in the same attempt
  /// (a rotten-then-truncated frame never reaches the fingerprint check).
  std::size_t bitrot_frames = 0;
  /// Well-formed frames served by Byzantine nodes with a forged payload;
  /// same not-additionally-wire-damaged accounting as bitrot_frames.
  std::size_t byzantine_frames = 0;
  /// Distinct stored locations that have rotted so far.
  std::size_t rotted_locations = 0;
};

class FaultyChannel {
 public:
  /// `plan` defaults to the null plan (fault-free serialization hop).
  /// The channel keeps a reference to `dist`; it must outlive the channel.
  explicit FaultyChannel(const Predistribution& dist, net::FaultPlan plan = {});

  const Predistribution& dist() const { return dist_; }
  const net::FaultPlan& plan() const { return plan_; }

  /// Locations retrievable right now: the predistribution's surviving
  /// locations minus those on nodes crashed mid-collection.
  std::vector<net::LocationId> retrievable_locations() const;

  /// Placement-time owner of a stored location (fetch routing target).
  net::NodeId owner_of(net::LocationId loc) const;

  bool node_crashed(net::NodeId node) const { return crashed_.contains(node); }
  std::size_t crashed_nodes() const { return crashed_.size(); }
  const InjectedFaults& injected() const { return injected_; }

  /// One fetch attempt. Requires a block to ever have been stored at
  /// `loc`. All randomness comes from `rng`; a null-plan fetch draws
  /// nothing.
  FetchReply fetch(net::LocationId loc, Rng& rng);

  /// Whether the stored replica at `loc` has rotted (sticky — survives
  /// refetches). Tests compare this ground truth against the collector's
  /// localization.
  bool location_rotten(net::LocationId loc) const { return rot_.contains(loc); }

 private:
  /// Sticky at-rest damage: one payload byte offset and a nonzero xor
  /// mask, drawn once when the location first rots.
  struct RotDamage {
    std::size_t offset = 0;
    std::uint8_t mask = 0;
  };

  std::vector<std::uint8_t> serve_damaged(const StoredBlock& slot,
                                          std::size_t offset, std::uint8_t mask) const;

  const Predistribution& dist_;
  net::FaultPlan plan_;
  std::unordered_set<net::NodeId> crashed_;
  std::unordered_map<net::LocationId, RotDamage> rot_;
  InjectedFaults injected_;
};

}  // namespace prlc::proto
