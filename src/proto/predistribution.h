// Decentralized pre-distribution and in-network encoding (Sec. 4).
//
// The protocol, as the paper specifies it:
//  1. All nodes share a common random seed, from which everyone derives
//     the same M random locations in the geometric space (the overlay
//     does this — see SensorNetwork / ChordNetwork).
//  2. The M locations are partitioned into n parts, part i holding
//     round(M * p_i) locations — the priority distribution made physical.
//  3. A source block of level i is disseminated to the locations that
//     will encode it: part i only under SLC; parts i..n under PLC; all
//     locations under RLC. Each delivery is geometric routing from the
//     measuring node to the location's owner.
//  4. Each location stores exactly one coded block, accumulated online as
//     c <- c + beta * x with beta drawn fresh per arrival — no node ever
//     sees all the data (distributed encoding).
//
// Sparse mode implements the O(ln N) row-weight result cited from
// Dimakis et al.: a location's coded block combines only
// ceil(factor * ln(support)) randomly chosen source blocks of its support
// set, so each source block travels to only O(ln N) locations instead of
// all of them. (We sample the selection location-side; the per-source
// destination lists of the paper's narration are the same bipartite graph
// read from the other side.)
#pragma once

#include <optional>
#include <vector>

#include "codes/coded_block.h"
#include "codes/priority_spec.h"
#include "codes/scheme.h"
#include "codes/source_data.h"
#include "gf/gf256.h"
#include "net/overlay.h"
#include "util/random.h"

namespace prlc::proto {

/// The protocol works over the paper's field.
using Field = gf::Gf256;

struct ProtocolParams {
  codes::Scheme scheme = codes::Scheme::kPlc;
  std::size_t block_size = 16;  ///< payload symbols per source block
  bool sparse = false;          ///< O(ln N) selections per coded block
  double sparsity_factor = 3.0;
  /// Max coded blocks a node will store (Sec. 2/4: "each node can store d
  /// coded blocks, M should be smaller than W d"). 0 = unlimited. When a
  /// location's primary owner is full, placement spills to the next owner
  /// candidate (next-nearest node / next ring successor).
  std::size_t node_capacity = 0;
};

/// Cost and load accounting for one dissemination run.
struct DisseminationStats {
  std::size_t messages = 0;        ///< source-block deliveries routed
  std::size_t total_hops = 0;      ///< overlay hops across all deliveries
  std::size_t failed_routes = 0;   ///< deliveries lost to partitions
  std::size_t max_node_load = 0;   ///< max coded blocks on any node
  double mean_node_load = 0;       ///< mean over nodes owning >= 1 block
  std::size_t capacity_spills = 0;     ///< locations placed off their primary owner
  std::size_t capacity_overflows = 0;  ///< locations dropped: every node full
};

/// One stored coded block: where it lives and what it contains.
struct StoredBlock {
  net::NodeId owner = 0;  ///< node that held the location at placement
  std::uint32_t owner_generation = 0;  ///< owner's incarnation at placement
  codes::CodedBlock<Field> block;
  std::size_t arrivals = 0;  ///< source blocks accumulated into it
};

class Predistribution {
 public:
  /// Partitions the overlay's locations per `dist` (largest-remainder
  /// rounding, so every part size is within one block of M * p_i).
  Predistribution(net::Overlay& overlay, codes::PrioritySpec spec,
                  codes::PriorityDistribution dist, ProtocolParams params);

  /// Run the full dissemination of `source` (must match the spec and the
  /// params' block size). Each source block originates at a random alive
  /// node — its "measuring" node. Repeatable: clears previous contents.
  DisseminationStats disseminate(const codes::SourceData<Field>& source, Rng& rng);

  /// Level a location's coded block belongs to (the partition of step 2).
  std::size_t level_of_location(net::LocationId loc) const;

  /// Stored block at a location; nullopt when nothing ever arrived there
  /// (possible under sparse mode) or dissemination has not run.
  const StoredBlock* stored(net::LocationId loc) const;

  /// Locations whose placement-time owner is still alive — the blocks a
  /// collector can still retrieve.
  std::vector<net::LocationId> surviving_locations() const;

  /// Locations whose block is gone (owner failed) or was never written —
  /// the candidates for a maintenance refresh (see proto/refresh.h).
  std::vector<net::LocationId> lost_locations() const;

  /// Replace a lost location's content with a freshly rebuilt coded block
  /// owned by the location's *current* owner. Used by the refresh
  /// protocol; the block must match the location's level and the spec.
  void store_rebuilt(net::LocationId loc, codes::CodedBlock<Field> block);

  const codes::PrioritySpec& spec() const { return spec_; }
  const codes::PriorityDistribution& dist() const { return dist_; }
  const ProtocolParams& params() const { return params_; }
  net::Overlay& overlay() const { return overlay_; }

 private:
  /// Support set [begin, end) of source-block indices for a coded block
  /// in partition level k (scheme-dependent).
  std::pair<std::size_t, std::size_t> support_of_level(std::size_t level) const;

  net::Overlay& overlay_;
  codes::PrioritySpec spec_;
  codes::PriorityDistribution dist_;
  ProtocolParams params_;
  std::vector<std::size_t> location_level_;  ///< partition: level per location
  std::vector<std::optional<StoredBlock>> storage_;
};

/// Largest-remainder apportionment of `total` items to `weights`.
std::vector<std::size_t> apportion_largest_remainder(std::size_t total,
                                                     std::span<const double> weights);

}  // namespace prlc::proto
