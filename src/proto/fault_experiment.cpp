#include "proto/fault_experiment.h"

#include <memory>

#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/churn.h"
#include "net/sensor_network.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/trial_runner.h"
#include "util/check.h"
#include "util/stats.h"

namespace prlc::proto {

namespace {

std::unique_ptr<net::Overlay> make_overlay(const FaultSweepParams& params,
                                           std::size_t locations, std::uint64_t seed) {
  switch (params.overlay) {
    case OverlayKind::kSensor: {
      net::SensorParams sp;
      sp.nodes = params.nodes;
      sp.locations = locations;
      sp.seed = seed;
      sp.two_choices = params.two_choices;
      return std::make_unique<net::SensorNetwork>(sp);
    }
    case OverlayKind::kChord: {
      net::ChordParams cp;
      cp.nodes = params.nodes;
      cp.locations = locations;
      cp.seed = seed;
      cp.two_choices = params.two_choices;
      return std::make_unique<net::ChordNetwork>(cp);
    }
  }
  PRLC_ASSERT(false, "unknown overlay kind");
}

/// One trial's contribution, slotted by trial index for the ordered
/// merge (see runtime/trial_runner.h).
struct TrialOutcome {
  std::vector<double> levels;  ///< per fault-scale point
  std::vector<double> blocks;
  std::vector<double> retrieved;
  std::vector<double> lost;
  std::vector<double> retries;
  std::vector<double> hedges;
  std::vector<double> wire_errors;
  std::vector<double> timeouts;
  std::vector<double> transients;
  std::vector<double> crashes;
  std::vector<double> blacklisted;
  std::vector<double> degraded;
};

}  // namespace

std::vector<FaultPoint> run_fault_experiment(const FaultSweepParams& params) {
  params.experiment.validate();
  params.faults.validate();
  params.retry.validate();
  PRLC_REQUIRE(params.churn_fraction >= 0.0 && params.churn_fraction <= 1.0,
               "churn fraction must be in [0,1]");
  PRLC_REQUIRE(!params.fault_scales.empty(), "need at least one fault scale");
  for (std::size_t i = 0; i < params.fault_scales.size(); ++i) {
    PRLC_REQUIRE(params.fault_scales[i] >= 0.0, "fault scales must be nonnegative");
    PRLC_REQUIRE(i == 0 || params.fault_scales[i - 1] <= params.fault_scales[i],
                 "fault scales must be ascending");
  }

  const codes::PrioritySpec spec = params.experiment.spec();
  const codes::PriorityDistribution dist = params.experiment.distribution();
  const std::size_t locations =
      params.locations > 0 ? params.locations : 2 * spec.total();

  ProtocolParams proto = params.protocol;
  proto.scheme = params.experiment.scheme;

  const std::size_t points = params.fault_scales.size();

  static obs::Counter& trials_run = obs::counter("fault_experiment.trials");

  // Retry/hedge pressure and decode outcome per fault-scale step; logical
  // time is the step index of the sweep.
  struct SeriesIds {
    obs::SeriesId decoded_levels;
    obs::SeriesId blocks_lost;
    obs::SeriesId retries;
    obs::SeriesId hedges;
  };
  SeriesIds ts{};
  const bool want_timeseries = obs::timeseries_enabled();
  if (want_timeseries) {
    ts.decoded_levels = obs::timeseries("fault.decoded_levels");
    ts.blocks_lost = obs::timeseries("fault.blocks_lost");
    ts.retries = obs::timeseries("fault.retries");
    ts.hedges = obs::timeseries("fault.hedges");
  }

  runtime::TrialRunner runner(params.experiment.threads);
  const auto outcomes = runner.run(
      params.experiment.trials, params.experiment.root_seed,
      [&](std::size_t t, Rng& rng) {
        trials_run.add();
        obs::ScopedSpan trial_span("trial", "fault_experiment",
                                   {{"trial", static_cast<double>(t)}});
        auto overlay = make_overlay(params, locations, rng());
        Predistribution predist(*overlay, spec, dist, proto);
        const auto source =
            codes::SourceData<Field>::random(spec.total(), proto.block_size, rng);
        predist.disseminate(source, rng);
        if (params.churn_fraction > 0) {
          net::kill_uniform_fraction(*overlay, params.churn_fraction, rng);
        }

        TrialOutcome outcome;
        for (std::size_t point = 0; point < points; ++point) {
          const double scale = params.fault_scales[point];
          obs::set_logical_time(point);
          net::FaultPlan plan(params.faults.scaled(scale), overlay->nodes(), rng);
          FaultyChannel channel(predist, std::move(plan));
          codes::PriorityDecoder<Field> decoder(proto.scheme, spec, proto.block_size);
          CollectorOptions options;
          options.retry = params.retry;
          const CollectionOutcome c = collect(channel, decoder, options, rng);
          outcome.levels.push_back(static_cast<double>(c.result.decoded_levels));
          outcome.blocks.push_back(static_cast<double>(c.result.decoded_blocks));
          outcome.retrieved.push_back(static_cast<double>(c.result.blocks_retrieved));
          outcome.lost.push_back(static_cast<double>(c.blocks_lost));
          outcome.retries.push_back(static_cast<double>(c.retries));
          outcome.hedges.push_back(static_cast<double>(c.hedges));
          outcome.wire_errors.push_back(static_cast<double>(c.faults.wire_errors));
          outcome.timeouts.push_back(static_cast<double>(c.faults.timeouts));
          outcome.transients.push_back(static_cast<double>(c.faults.transient_errors));
          outcome.crashes.push_back(static_cast<double>(c.faults.crashes));
          outcome.blacklisted.push_back(static_cast<double>(c.blacklisted_nodes));
          outcome.degraded.push_back(c.degraded ? 1.0 : 0.0);
          if (want_timeseries) {
            obs::sample(ts.decoded_levels, static_cast<double>(c.result.decoded_levels));
            obs::sample(ts.blocks_lost, static_cast<double>(c.blocks_lost));
            obs::sample(ts.retries, static_cast<double>(c.retries));
            obs::sample(ts.hedges, static_cast<double>(c.hedges));
          }
          if (obs::trace_enabled()) {
            obs::TraceRecorder::global().instant(
                "fault_point", "fault_experiment",
                {{"fault_scale", scale},
                 {"decoded_levels", static_cast<double>(c.result.decoded_levels)},
                 {"blocks_lost", static_cast<double>(c.blocks_lost)}});
          }
        }
        return outcome;
      });

  // Ordered merge: accumulate in trial order so the floating-point sums
  // are identical regardless of how many threads ran the trials.
  std::vector<RunningStats> levels(points), blocks(points), retrieved(points), lost(points),
      retries(points), hedges(points), wire_errors(points), timeouts(points),
      transients(points), crashes(points), blacklisted(points), degraded(points);
  for (const TrialOutcome& outcome : outcomes) {
    for (std::size_t point = 0; point < points; ++point) {
      levels[point].add(outcome.levels[point]);
      blocks[point].add(outcome.blocks[point]);
      retrieved[point].add(outcome.retrieved[point]);
      lost[point].add(outcome.lost[point]);
      retries[point].add(outcome.retries[point]);
      hedges[point].add(outcome.hedges[point]);
      wire_errors[point].add(outcome.wire_errors[point]);
      timeouts[point].add(outcome.timeouts[point]);
      transients[point].add(outcome.transients[point]);
      crashes[point].add(outcome.crashes[point]);
      blacklisted[point].add(outcome.blacklisted[point]);
      degraded[point].add(outcome.degraded[point]);
    }
  }

  std::vector<FaultPoint> out(points);
  for (std::size_t i = 0; i < points; ++i) {
    out[i].fault_scale = params.fault_scales[i];
    out[i].mean_decoded_levels = levels[i].mean();
    out[i].ci95_decoded_levels = levels[i].ci95_halfwidth();
    out[i].mean_decoded_blocks = blocks[i].mean();
    out[i].mean_blocks_retrieved = retrieved[i].mean();
    out[i].mean_blocks_lost = lost[i].mean();
    out[i].mean_retries = retries[i].mean();
    out[i].mean_hedges = hedges[i].mean();
    out[i].mean_wire_errors = wire_errors[i].mean();
    out[i].mean_timeouts = timeouts[i].mean();
    out[i].mean_transient_errors = transients[i].mean();
    out[i].mean_crashes = crashes[i].mean();
    out[i].mean_blacklisted = blacklisted[i].mean();
    out[i].degraded_fraction = degraded[i].mean();
  }
  return out;
}

}  // namespace prlc::proto
