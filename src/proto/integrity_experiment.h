// Silent-corruption sweep: end-to-end integrity verification under bit
// rot and Byzantine nodes.
//
// The fault experiment (proto/fault_experiment.h) sweeps *loud* faults —
// timeouts, CRC-caught corruption, crashes. This driver sweeps the silent
// ones the wire checks cannot see: at-rest bit rot served under a
// re-covered CRC and Byzantine nodes forging well-formed frames. One
// deployment per trial builds the GF(2^64) fingerprint manifest of the
// source blocks; for each (rot_rate, byzantine_fraction) point an
// independent FaultyChannel injects the mix and a fresh decoder collects
// with CollectorOptions::manifest set. Reported per point: decode
// outcome, the integrity ledger (violations, quarantined nodes), the
// detection ratio (violations detected / silent frames actually served —
// must be 1), and the wrong-decode fraction (decoded blocks that differ
// from the source — must be 0: the acceptance criterion that the decoder
// never returns wrong bytes under any injected silent-corruption mix).
//
// Trials run through runtime::TrialRunner with counter-based seed
// streams; results are bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "net/fault_model.h"
#include "proto/collector.h"
#include "proto/experiment_config.h"
#include "proto/persistence_experiment.h"
#include "proto/predistribution.h"

namespace prlc::proto {

/// One silent-corruption sweep point.
struct IntegrityMix {
  double rot_rate = 0.0;            ///< FaultSpec::bitrot_rate
  double byzantine_fraction = 0.0;  ///< FaultSpec::byzantine_fraction
};

struct IntegritySweepParams {
  OverlayKind overlay = OverlayKind::kSensor;
  std::size_t nodes = 200;
  std::size_t locations = 0;  ///< 0 = auto: 2x the source-block count
  bool two_choices = false;
  /// Monte-Carlo execution: trials, root seed, threads, scheme, spec.
  ExperimentConfig experiment;
  ProtocolParams protocol;  ///< scheme field is overwritten from experiment.scheme
  /// Loud-fault backdrop applied at every point (timeouts, CRC-caught
  /// corruption, ...); the silent knobs inside it are overwritten per
  /// point from `mixes`.
  net::FaultSpec faults;
  std::vector<IntegrityMix> mixes;  ///< at least one point
  RetryPolicy retry;
};

struct IntegrityPoint {
  double rot_rate = 0;
  double byzantine_fraction = 0;
  double mean_decoded_levels = 0;
  double ci95_decoded_levels = 0;
  double mean_blocks_retrieved = 0;
  double mean_blocks_lost = 0;
  double mean_integrity_violations = 0;
  double mean_quarantined_nodes = 0;
  double mean_wire_errors = 0;
  double mean_retries = 0;
  /// Detected violations / silent frames the channel actually served
  /// (1 when nothing silent was served). Anything below 1 means a forged
  /// frame slipped past the fingerprint.
  double detection_ratio = 1.0;
  /// Fraction of decoded source blocks that differ from the original —
  /// the zero-wrong-bytes acceptance criterion.
  double wrong_decode_fraction = 0;
  double degraded_fraction = 0;
};

/// Run the sweep; one deployment + manifest per trial, one independent
/// channel and decoder per (trial, mix) point.
std::vector<IntegrityPoint> run_integrity_experiment(const IntegritySweepParams& params);

}  // namespace prlc::proto
