#include "proto/fault_channel.h"

#include <algorithm>

#include "codes/wire_format.h"
#include "util/check.h"

namespace prlc::proto {

FaultyChannel::FaultyChannel(const Predistribution& dist, net::FaultPlan plan)
    : dist_(dist), plan_(std::move(plan)) {}

std::vector<std::uint8_t> FaultyChannel::serve_damaged(const StoredBlock& slot,
                                                       std::size_t offset,
                                                       std::uint8_t mask) const {
  // The damage lives in the payload *before* serialization, so the frame
  // carries a fresh CRC computed over the rotten/forged bytes: the wire
  // checks pass and only a fingerprint can tell.
  std::vector<std::uint8_t> payload(slot.block.payload);
  payload[offset] ^= mask;
  return codes::encode_wire(dist_.params().scheme,
                            codes::CodedBlockView{.level = slot.block.level,
                                                  .coeffs = slot.block.coeffs,
                                                  .payload = payload});
}

std::vector<net::LocationId> FaultyChannel::retrievable_locations() const {
  std::vector<net::LocationId> out = dist_.surviving_locations();
  if (!crashed_.empty()) {
    std::erase_if(out, [this](net::LocationId loc) {
      const StoredBlock* slot = dist_.stored(loc);
      return slot != nullptr && crashed_.contains(slot->owner);
    });
  }
  return out;
}

net::NodeId FaultyChannel::owner_of(net::LocationId loc) const {
  const StoredBlock* slot = dist_.stored(loc);
  PRLC_REQUIRE(slot != nullptr, "no block was ever stored at this location");
  return slot->owner;
}

FetchReply FaultyChannel::fetch(net::LocationId loc, Rng& rng) {
  const StoredBlock* slot = dist_.stored(loc);
  PRLC_REQUIRE(slot != nullptr, "no block was ever stored at this location");

  FetchReply reply;
  reply.node = slot->owner;
  const net::Overlay& overlay = dist_.overlay();
  if (!overlay.alive(slot->owner) ||
      overlay.generation(slot->owner) != slot->owner_generation ||
      crashed_.contains(slot->owner)) {
    reply.fault = net::FaultClass::kDeadNode;
    return reply;
  }

  net::FaultClass drawn = net::FaultClass::kNone;
  if (plan_.active()) {
    drawn = plan_.draw_fault(slot->owner, rng);
    reply.latency_us = plan_.draw_latency_us(slot->owner, rng);
    switch (drawn) {
      case net::FaultClass::kCrash:
        crashed_.insert(slot->owner);
        ++injected_.crashes;
        reply.fault = net::FaultClass::kCrash;
        return reply;
      case net::FaultClass::kTimeout:
        ++injected_.timeouts;
        reply.fault = net::FaultClass::kTimeout;
        return reply;
      case net::FaultClass::kTransient:
        ++injected_.transient_errors;
        reply.fault = net::FaultClass::kTransient;
        return reply;
      default:
        break;
    }
  }

  const bool wire_damage_follows = drawn == net::FaultClass::kCorruption ||
                                   drawn == net::FaultClass::kTruncation;
  if (plan_.active() && !slot->block.payload.empty() &&
      plan_.profile(slot->owner).byzantine) {
    // Deterministic forgery keyed on (node, location): the node tells the
    // same lie on every refetch, and being Byzantine costs no Rng draws.
    std::uint64_t sm = (static_cast<std::uint64_t>(slot->owner) << 32) ^
                       static_cast<std::uint64_t>(loc) ^ 0x5D43C0DEBAD0B10CULL;
    const std::uint64_t h = splitmix64_next(sm);
    reply.bytes = serve_damaged(*slot, h % slot->block.payload.size(),
                                static_cast<std::uint8_t>(1 + (h >> 32) % 255));
    if (!wire_damage_follows) ++injected_.byzantine_frames;
  } else {
    if (drawn == net::FaultClass::kBitRotAtRest && !slot->block.payload.empty() &&
        !rot_.contains(loc)) {
      RotDamage dmg;
      dmg.offset = rng.uniform(slot->block.payload.size());
      dmg.mask = static_cast<std::uint8_t>(1 + rng.uniform(255));
      rot_.emplace(loc, dmg);
      ++injected_.rotted_locations;
    }
    if (const auto it = rot_.find(loc); it != rot_.end()) {
      reply.bytes = serve_damaged(*slot, it->second.offset, it->second.mask);
      if (!wire_damage_follows) ++injected_.bitrot_frames;
    } else {
      reply.bytes = codes::encode_wire(dist_.params().scheme, slot->block);
    }
  }
  if (drawn == net::FaultClass::kCorruption) {
    // Flip 1-3 bits inside one random byte: a <32-bit burst, so CRC-32
    // detection is guaranteed, never probabilistic.
    ++injected_.corruptions;
    const std::size_t at = rng.uniform(reply.bytes.size());
    reply.bytes[at] ^= static_cast<std::uint8_t>(1 + rng.uniform(7));
  } else if (drawn == net::FaultClass::kTruncation) {
    // Transfer cut short: keep a strictly shorter prefix.
    ++injected_.truncations;
    reply.bytes.resize(rng.uniform(reply.bytes.size()));
  }
  return reply;
}

}  // namespace prlc::proto
