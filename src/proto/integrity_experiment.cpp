#include "proto/integrity_experiment.h"

#include <algorithm>
#include <memory>

#include "codes/decoder.h"
#include "net/chord_network.h"
#include "net/sensor_network.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "runtime/trial_runner.h"
#include "util/check.h"
#include "util/stats.h"

namespace prlc::proto {

namespace {

std::unique_ptr<net::Overlay> make_overlay(const IntegritySweepParams& params,
                                           std::size_t locations, std::uint64_t seed) {
  switch (params.overlay) {
    case OverlayKind::kSensor: {
      net::SensorParams sp;
      sp.nodes = params.nodes;
      sp.locations = locations;
      sp.seed = seed;
      sp.two_choices = params.two_choices;
      return std::make_unique<net::SensorNetwork>(sp);
    }
    case OverlayKind::kChord: {
      net::ChordParams cp;
      cp.nodes = params.nodes;
      cp.locations = locations;
      cp.seed = seed;
      cp.two_choices = params.two_choices;
      return std::make_unique<net::ChordNetwork>(cp);
    }
  }
  PRLC_ASSERT(false, "unknown overlay kind");
}

/// One trial's contribution, slotted by trial index for the ordered
/// merge (see runtime/trial_runner.h).
struct TrialOutcome {
  std::vector<double> levels;  ///< per mix point
  std::vector<double> retrieved;
  std::vector<double> lost;
  std::vector<double> violations;
  std::vector<double> quarantined;
  std::vector<double> wire_errors;
  std::vector<double> retries;
  std::vector<double> detection;
  std::vector<double> wrong;
  std::vector<double> degraded;
};

}  // namespace

std::vector<IntegrityPoint> run_integrity_experiment(const IntegritySweepParams& params) {
  params.experiment.validate();
  params.faults.validate();
  params.retry.validate();
  PRLC_REQUIRE(!params.mixes.empty(), "need at least one silent-corruption mix");
  for (const IntegrityMix& mix : params.mixes) {
    PRLC_REQUIRE(mix.rot_rate >= 0.0 && mix.rot_rate <= 1.0,
                 "rot rate must be a probability in [0,1]");
    PRLC_REQUIRE(mix.byzantine_fraction >= 0.0 && mix.byzantine_fraction <= 1.0,
                 "byzantine fraction must be in [0,1]");
  }

  const codes::PrioritySpec spec = params.experiment.spec();
  const codes::PriorityDistribution dist = params.experiment.distribution();
  const std::size_t locations =
      params.locations > 0 ? params.locations : 2 * spec.total();

  ProtocolParams proto = params.protocol;
  proto.scheme = params.experiment.scheme;

  const std::size_t points = params.mixes.size();

  static obs::Counter& trials_run = obs::counter("integrity_experiment.trials");

  // Detection pressure and decode outcome per mix step; logical time is
  // the step index of the sweep.
  struct SeriesIds {
    obs::SeriesId decoded_levels;
    obs::SeriesId violations;
    obs::SeriesId quarantined;
  };
  SeriesIds ts{};
  const bool want_timeseries = obs::timeseries_enabled();
  if (want_timeseries) {
    ts.decoded_levels = obs::timeseries("integrity.decoded_levels");
    ts.violations = obs::timeseries("integrity.violations");
    ts.quarantined = obs::timeseries("integrity.quarantined_nodes");
  }

  runtime::TrialRunner runner(params.experiment.threads);
  const auto outcomes = runner.run(
      params.experiment.trials, params.experiment.root_seed,
      [&](std::size_t t, Rng& rng) {
        trials_run.add();
        obs::ScopedSpan trial_span("trial", "integrity_experiment",
                                   {{"trial", static_cast<double>(t)}});
        auto overlay = make_overlay(params, locations, rng());
        Predistribution predist(*overlay, spec, dist, proto);
        const auto source =
            codes::SourceData<Field>::random(spec.total(), proto.block_size, rng);
        predist.disseminate(source, rng);

        // The manifest travels beside the data: 8 bytes per source block,
        // built once per deployment from a trial-seeded fingerprint point.
        std::vector<std::uint8_t> flat;
        flat.reserve(spec.total() * proto.block_size);
        for (std::size_t j = 0; j < spec.total(); ++j) {
          const auto row = source.block(j);
          flat.insert(flat.end(), row.begin(), row.end());
        }
        const util::FingerprintManifest manifest =
            util::build_manifest(rng(), flat, proto.block_size);

        TrialOutcome outcome;
        for (std::size_t point = 0; point < points; ++point) {
          const IntegrityMix& mix = params.mixes[point];
          obs::set_logical_time(point);
          net::FaultSpec faults = params.faults;
          faults.bitrot_rate = mix.rot_rate;
          faults.byzantine_fraction = mix.byzantine_fraction;
          net::FaultPlan plan(faults, overlay->nodes(), rng);
          FaultyChannel channel(predist, std::move(plan));
          codes::PriorityDecoder<Field> decoder(proto.scheme, spec, proto.block_size);
          CollectorOptions options;
          options.retry = params.retry;
          options.manifest = &manifest;
          const CollectionOutcome c = collect(channel, decoder, options, rng);

          // Silent frames the channel actually served vs violations the
          // fingerprint caught: every served forgery parses cleanly, so
          // detection below 1 means a forged frame reached the decoder.
          const std::size_t injected_silent =
              channel.injected().bitrot_frames + channel.injected().byzantine_frames;
          const double detection =
              injected_silent == 0
                  ? 1.0
                  : static_cast<double>(c.faults.integrity_violations) /
                        static_cast<double>(injected_silent);

          // Zero-wrong-bytes criterion: everything decoded must be
          // byte-identical to the source.
          std::size_t decoded = 0, wrong = 0;
          for (std::size_t j = 0; j < spec.total(); ++j) {
            if (!decoder.is_block_decoded(j)) continue;
            ++decoded;
            const auto got = decoder.recovered(j);
            const auto want = source.block(j);
            if (!std::equal(got.begin(), got.end(), want.begin(), want.end())) ++wrong;
          }

          outcome.levels.push_back(static_cast<double>(c.result.decoded_levels));
          outcome.retrieved.push_back(static_cast<double>(c.result.blocks_retrieved));
          outcome.lost.push_back(static_cast<double>(c.blocks_lost));
          outcome.violations.push_back(static_cast<double>(c.faults.integrity_violations));
          outcome.quarantined.push_back(static_cast<double>(c.quarantined_nodes));
          outcome.wire_errors.push_back(static_cast<double>(c.faults.wire_errors));
          outcome.retries.push_back(static_cast<double>(c.retries));
          outcome.detection.push_back(detection);
          outcome.wrong.push_back(
              decoded == 0 ? 0.0
                           : static_cast<double>(wrong) / static_cast<double>(decoded));
          outcome.degraded.push_back(c.degraded ? 1.0 : 0.0);
          if (want_timeseries) {
            obs::sample(ts.decoded_levels, static_cast<double>(c.result.decoded_levels));
            obs::sample(ts.violations, static_cast<double>(c.faults.integrity_violations));
            obs::sample(ts.quarantined, static_cast<double>(c.quarantined_nodes));
          }
          if (obs::trace_enabled()) {
            obs::TraceRecorder::global().instant(
                "integrity_point", "integrity_experiment",
                {{"rot_rate", mix.rot_rate},
                 {"byzantine_fraction", mix.byzantine_fraction},
                 {"violations", static_cast<double>(c.faults.integrity_violations)}});
          }
        }
        return outcome;
      });

  // Ordered merge: accumulate in trial order so the floating-point sums
  // are identical regardless of how many threads ran the trials.
  std::vector<RunningStats> levels(points), retrieved(points), lost(points),
      violations(points), quarantined(points), wire_errors(points), retries(points),
      detection(points), wrong(points), degraded(points);
  for (const TrialOutcome& outcome : outcomes) {
    for (std::size_t point = 0; point < points; ++point) {
      levels[point].add(outcome.levels[point]);
      retrieved[point].add(outcome.retrieved[point]);
      lost[point].add(outcome.lost[point]);
      violations[point].add(outcome.violations[point]);
      quarantined[point].add(outcome.quarantined[point]);
      wire_errors[point].add(outcome.wire_errors[point]);
      retries[point].add(outcome.retries[point]);
      detection[point].add(outcome.detection[point]);
      wrong[point].add(outcome.wrong[point]);
      degraded[point].add(outcome.degraded[point]);
    }
  }

  std::vector<IntegrityPoint> out(points);
  for (std::size_t i = 0; i < points; ++i) {
    out[i].rot_rate = params.mixes[i].rot_rate;
    out[i].byzantine_fraction = params.mixes[i].byzantine_fraction;
    out[i].mean_decoded_levels = levels[i].mean();
    out[i].ci95_decoded_levels = levels[i].ci95_halfwidth();
    out[i].mean_blocks_retrieved = retrieved[i].mean();
    out[i].mean_blocks_lost = lost[i].mean();
    out[i].mean_integrity_violations = violations[i].mean();
    out[i].mean_quarantined_nodes = quarantined[i].mean();
    out[i].mean_wire_errors = wire_errors[i].mean();
    out[i].mean_retries = retries[i].mean();
    out[i].detection_ratio = detection[i].mean();
    out[i].wrong_decode_fraction = wrong[i].mean();
    out[i].degraded_fraction = degraded[i].mean();
  }
  return out;
}

}  // namespace prlc::proto
