// Data-collecting server (Sec. 3.2 / Sec. 5 retrieval model).
//
// At analysis time a collector contacts the network and retrieves coded
// blocks from surviving locations in random order, feeding each into the
// progressive decoder as it arrives and stopping early once the
// application's requirement (a number of priority levels) is met — the
// paper's "the data collecting server can stop collecting coded data once
// the partially decoded data fulfill the application requirement".
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "codes/decoder.h"
#include "proto/predistribution.h"

namespace prlc::proto {

struct CollectorOptions {
  /// Stop after decoding this many leading levels (nullopt = drain all).
  std::optional<std::size_t> target_levels;
  /// Retrieve at most this many blocks (nullopt = all surviving).
  std::optional<std::size_t> max_blocks;
};

struct CollectionResult {
  std::size_t surviving_locations = 0;  ///< retrievable blocks after churn
  std::size_t blocks_retrieved = 0;     ///< blocks actually pulled
  std::size_t innovative_blocks = 0;    ///< rank achieved
  std::size_t decoded_levels = 0;       ///< X — leading levels recovered
  std::size_t decoded_blocks = 0;       ///< leading source blocks recovered
  bool target_met = false;              ///< target_levels reached
  /// decoded-levels trajectory: entry i = levels after i+1 retrievals
  /// (only filled when `trace` is set in collect()).
  std::vector<std::size_t> level_trace;
};

/// Retrieve and decode. `decoder` must match the predistribution's scheme
/// and spec; pass `trace=true` to record the per-retrieval progression.
CollectionResult collect(const Predistribution& dist, codes::PriorityDecoder<Field>& decoder,
                         const CollectorOptions& options, Rng& rng, bool trace = false);

/// Convenience: build a payload decoder, collect everything retrievable,
/// and verify every decoded payload against `original`. Returns the
/// result plus the verification verdict (all decoded payloads correct).
std::pair<CollectionResult, bool> collect_and_verify(const Predistribution& dist,
                                                     const codes::SourceData<Field>& original,
                                                     Rng& rng);

}  // namespace prlc::proto
