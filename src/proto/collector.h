// Data-collecting server (Sec. 3.2 / Sec. 5 retrieval model), hardened
// for retrieval under adversity.
//
// At analysis time a collector contacts the network and retrieves coded
// blocks from surviving locations in random order, feeding each into the
// progressive decoder as it arrives and stopping early once the
// application's requirement (a number of priority levels) is met — the
// paper's "the data collecting server can stop collecting coded data once
// the partially decoded data fulfill the application requirement".
//
// Every fetch travels the CRC-checked wire format through a FaultyChannel
// (proto/fault_channel.h); the fault-free path is simply a channel with a
// null plan, so there is ONE entry point — collect(channel, decoder,
// options, rng) — not separate plain/resilient ones. The collector
// survives the channel's injected adversity with:
//   * a per-block retry loop under capped exponential backoff with
//     deterministic (Rng-drawn) jitter;
//   * per-node failure budgets — a node that keeps failing is
//     blacklisted and its remaining blocks written off;
//   * hedged re-fetch: when a reply is slower than the hedge deadline the
//     collector opportunistically pulls the next pending location too;
//   * end-to-end integrity — with a fingerprint manifest
//     (CollectorOptions::manifest) every delivered frame is verified
//     against the homomorphic GF(2^64) fingerprints of the source blocks
//     before it reaches the decoder; a mismatch localizes the forgery to
//     the exact block and quarantines the serving node, so silent
//     corruption (bit rot under a re-covered CRC, Byzantine payloads)
//     never produces wrong decoded bytes;
//   * graceful degradation — faults never throw; the collector returns
//     the best decodable prefix plus a structured CollectionOutcome with
//     per-fault-class counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "codes/decoder.h"
#include "proto/fault_channel.h"
#include "proto/predistribution.h"
#include "util/gf64_fingerprint.h"

namespace prlc::proto {

/// Self-healing knobs for collect(). Attempt k (0-based) of a block
/// backs off min(base * multiplier^k, max) microseconds, jittered by
/// +-jitter (a fraction, drawn deterministically from the trial Rng).
struct RetryPolicy {
  std::size_t max_attempts = 4;         ///< fetch attempts per block
  std::uint64_t base_backoff_us = 200;  ///< first retry delay
  double backoff_multiplier = 2.0;
  std::uint64_t max_backoff_us = 5000;  ///< backoff cap
  double jitter = 0.25;                 ///< +- fraction of the delay
  /// Retryable faults (timeout/transient/wire error) tolerated per node
  /// before it is blacklisted and its remaining blocks written off.
  std::size_t node_fault_budget = 8;
  /// A delivered reply slower than this triggers a hedged fetch of the
  /// next pending location (when hedging is on and one exists).
  std::uint64_t hedge_deadline_us = 2000;
  bool hedging = true;

  void validate() const;
};

struct CollectorOptions {
  /// Stop after decoding this many leading levels (nullopt = drain all).
  /// Must be <= the spec's level count.
  std::optional<std::size_t> target_levels;
  /// Retrieve at most this many blocks (nullopt = all surviving).
  /// Must be positive when set.
  std::optional<std::size_t> max_blocks;
  /// Record the per-retrieval decoded-levels progression in
  /// CollectionResult::level_trace, and the per-attempt fetch log in
  /// CollectionOutcome::fetch_log.
  bool trace = false;
  /// Self-healing knobs, used when collecting over a faulty channel.
  RetryPolicy retry;
  /// Source-block fingerprint manifest (util/gf64_fingerprint.h). When
  /// set, every delivered frame is verified — fingerprint(payload) must
  /// equal the coefficient-combination of the manifest fingerprints —
  /// before it reaches the decoder. A mismatch is an integrity violation:
  /// the frame is dropped, the block written off (the lie is sticky; a
  /// refetch serves the same bytes), and the serving node quarantined via
  /// the blacklist. Must cover exactly the decoder spec's source blocks.
  /// The manifest must outlive the collect() call.
  const util::FingerprintManifest* manifest = nullptr;
};

struct CollectionResult {
  std::size_t surviving_locations = 0;  ///< retrievable blocks after churn
  std::size_t blocks_retrieved = 0;     ///< blocks delivered and decoded on the wire
  std::size_t innovative_blocks = 0;    ///< rank achieved
  std::size_t decoded_levels = 0;       ///< X — leading levels recovered
  std::size_t decoded_blocks = 0;       ///< leading source blocks recovered
  bool target_met = false;              ///< target_levels reached
  /// decoded-levels trajectory: entry i = levels after i+1 retrievals
  /// (only filled when `trace` is set in collect()).
  std::vector<std::size_t> level_trace;
};

/// Faults the collector *detected*, by class. wire_errors counts frames
/// decode_wire rejected (injected corruption/truncation, or any real
/// serialization bug) — the collector never sees the channel's injection
/// tally, only what the CRC/bounds checks catch.
struct DetectedFaults {
  std::size_t dead_nodes = 0;        ///< fetches that hit a gone owner
  std::size_t crashes = 0;           ///< nodes that died mid-collection
  std::size_t timeouts = 0;
  std::size_t transient_errors = 0;
  std::size_t wire_errors = 0;       ///< decode_wire rejections
  /// Well-formed frames (CRC passed) whose payload contradicted the
  /// fingerprint manifest — silent corruption (bit rot, Byzantine nodes)
  /// the wire checks cannot see. Zero unless a manifest was supplied.
  std::size_t integrity_violations = 0;

  std::size_t total() const {
    return dead_nodes + crashes + timeouts + transient_errors + wire_errors +
           integrity_violations;
  }
};

/// One fetch attempt as the collector saw it, recorded into
/// CollectionOutcome::fetch_log when CollectorOptions::trace is set.
struct FetchAttempt {
  net::LocationId location = 0;
  net::NodeId node = 0;
  net::FaultClass fault = net::FaultClass::kNone;  ///< channel-visible class
  bool wire_rejected = false;       ///< CRC/bounds rejected the frame
  bool integrity_rejected = false;  ///< fingerprint contradicted the manifest
  bool delivered = false;           ///< frame fed to the decoder
};

/// Everything collect() can report: the classic result plus the
/// adversity ledger. Faults never throw — degradation is data.
struct CollectionOutcome {
  CollectionResult result;
  DetectedFaults faults;
  std::size_t retries = 0;            ///< extra attempts after a retryable fault
  std::size_t hedges = 0;             ///< hedged fetches issued
  std::size_t blacklisted_nodes = 0;  ///< nodes that exhausted their budget
  /// Nodes removed for serving a frame that contradicted the fingerprint
  /// manifest (disjoint from blacklisted_nodes' budget exhaustion).
  std::size_t quarantined_nodes = 0;
  /// Locations retrievable at the start that were written off: their node
  /// died/was blacklisted or every attempt failed. Untried locations
  /// (early stop via target/max_blocks) are not "lost".
  std::size_t blocks_lost = 0;
  bool degraded = false;              ///< blocks_lost > 0
  std::uint64_t sim_elapsed_us = 0;   ///< simulated retrieval time
  /// Per-attempt log (only filled when CollectorOptions::trace is set).
  std::vector<FetchAttempt> fetch_log;
};

/// THE collection entry point: retrieve over `channel` and decode,
/// surviving whatever the channel's FaultPlan injects (a null-plan
/// channel makes this the plain fault-free path — same code, zero extra
/// Rng draws). `decoder` must match the channel's predistribution. Never
/// throws on faults (only on precondition violations).
CollectionOutcome collect(FaultyChannel& channel, codes::PriorityDecoder<Field>& decoder,
                          const CollectorOptions& options, Rng& rng);

/// Convenience overload: collect over a fault-free (null-plan) channel
/// built on the spot. Every block still round-trips the wire format
/// (encode_wire -> decode_wire), so the CRC path is exercised by all
/// callers; a frame the wire layer rejects is counted
/// (collector.corrupt_blocks) and skipped, never propagated.
CollectionOutcome collect(const Predistribution& dist, codes::PriorityDecoder<Field>& decoder,
                          const CollectorOptions& options, Rng& rng);

/// Convenience: build a payload decoder, collect everything retrievable,
/// and verify every decoded payload against `original`. Returns the
/// result plus the verification verdict (all decoded payloads correct).
std::pair<CollectionResult, bool> collect_and_verify(const Predistribution& dist,
                                                     const codes::SourceData<Field>& original,
                                                     Rng& rng);

}  // namespace prlc::proto
