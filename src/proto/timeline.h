// Temporal storage: rounds of periodically measured data under a fixed
// storage budget.
//
// The paper's data model is *periodic* measurement (Sec. 1: data "may
// grow to substantial volumes over time") with strictly limited per-node
// storage — so a deployment cannot keep every snapshot at full
// redundancy forever. TimelineStore manages the overlay's M locations
// across measurement rounds:
//
//  * every ingest() stores a fresh N-block snapshot, priority-coded like
//    a standalone Sec.-4 pre-distribution but over only the locations
//    allotted to that round;
//  * a retention policy reallocates the location budget as rounds age:
//      - kSlidingWindow: the most recent `window` rounds share the budget
//        equally; older rounds are evicted outright;
//      - kExponentialDecay: a round of age a keeps a share proportional
//        to 2^-a (within the window) — snapshots fade gracefully;
//  * shrinking is *priority-aware*: a round's locations are ordered by
//    ascending priority level, and surplus is recycled from the back, so
//    an aging round gives up its lowest-priority coded blocks first and
//    its decodable prefix shrinks level by level instead of collapsing
//    (the priority code's partial-recovery property is exactly what makes
//    shrinking redundancy useful);
//  * query() decodes any retained round from whatever blocks survive
//    churn and reallocation.
#pragma once

#include <deque>
#include <optional>

#include "codes/decoder.h"
#include "proto/predistribution.h"

namespace prlc::proto {

enum class RetentionPolicy { kSlidingWindow, kExponentialDecay };

const char* to_string(RetentionPolicy policy);

struct TimelineParams {
  codes::Scheme scheme = codes::Scheme::kPlc;
  std::size_t block_size = 16;
  RetentionPolicy policy = RetentionPolicy::kSlidingWindow;
  std::size_t window = 4;  ///< rounds retained
};

struct IngestStats {
  std::size_t round_id = 0;
  std::size_t locations_assigned = 0;  ///< budget given to the new round
  std::size_t locations_recycled = 0;  ///< taken from older rounds
  std::size_t rounds_evicted = 0;
  std::size_t messages = 0;
  std::size_t total_hops = 0;
};

struct QueryResult {
  std::size_t round_id = 0;
  std::size_t age = 0;                  ///< 0 = newest retained round
  std::size_t locations_allotted = 0;   ///< current budget of the round
  std::size_t blocks_retrievable = 0;   ///< surviving, post-churn
  std::size_t decoded_levels = 0;
  std::size_t decoded_blocks = 0;
};

class TimelineStore {
 public:
  /// The store owns all of the overlay's locations as its budget.
  TimelineStore(net::Overlay& overlay, codes::PrioritySpec spec,
                codes::PriorityDistribution dist, TimelineParams params);

  /// Store a new round's snapshot (source must match spec/block_size).
  IngestStats ingest(const codes::SourceData<Field>& source, Rng& rng);

  /// Rounds currently retained (newest first).
  std::vector<std::size_t> retained_rounds() const;

  /// Decode a retained round; nullopt if it was evicted / never existed.
  std::optional<QueryResult> query(std::size_t round_id, Rng& rng) const;

  const codes::PrioritySpec& spec() const { return spec_; }
  const TimelineParams& params() const { return params_; }

 private:
  struct Slot {
    std::size_t level = 0;  ///< priority level assigned to this location
    std::optional<StoredBlock> stored;
  };

  struct Round {
    std::size_t id = 0;
    std::vector<net::LocationId> locations;
  };

  /// Target location share per age under the policy (sums to <= budget).
  std::vector<std::size_t> target_allocation(std::size_t active_rounds) const;

  /// Encode-and-store one location's coded block for `round`'s data.
  void fill_location(net::LocationId loc, const codes::SourceData<Field>& source,
                     net::NodeId origin, Rng& rng, IngestStats& stats);

  net::Overlay& overlay_;
  codes::PrioritySpec spec_;
  codes::PriorityDistribution dist_;
  TimelineParams params_;
  std::deque<Round> rounds_;           ///< newest at front
  std::vector<Slot> slots_;            ///< by LocationId
  std::vector<net::LocationId> free_;  ///< unassigned budget
  std::size_t next_round_id_ = 0;
};

}  // namespace prlc::proto
