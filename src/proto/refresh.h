// Maintenance refresh — restoring redundancy after churn.
//
// The paper stores data once and measures what survives; a deployed
// system would periodically *repair*: some maintainer (a collector node,
// or the operator's gateway) decodes whatever the surviving blocks still
// determine, then re-disseminates fresh coded blocks to the storage
// locations whose owners died, so the redundancy level recovers before
// the next churn wave. This module implements that natural extension:
//
//   1. collect all surviving coded blocks and run the progressive decoder;
//   2. for every lost location whose coding support lies inside the
//      decoded prefix (PLC: level <= X; SLC: its level decoded), draw a
//      fresh random coded block from the recovered payloads and ship it
//      to the location's current owner;
//   3. locations above the decoded prefix stay lost — data the network
//      already forgot cannot be repaired, only its redundancy protected
//      while it still decodes.
//
// The abl_refresh bench shows the resulting survivability gap across
// repeated churn epochs.
#pragma once

#include <vector>

#include "proto/experiment_config.h"
#include "proto/predistribution.h"

namespace prlc::proto {

struct RefreshResult {
  std::size_t decoded_levels = 0;     ///< what the maintainer could decode
  std::size_t decoded_blocks = 0;     ///< decoded source-block prefix
  std::size_t lost_locations = 0;     ///< locations without a live block
  std::size_t rebuilt_locations = 0;  ///< lost locations repaired
  std::size_t unrecoverable = 0;      ///< lost locations above the prefix
  std::size_t messages = 0;           ///< re-dissemination deliveries
  std::size_t total_hops = 0;         ///< overlay hops for those deliveries
};

/// Run one refresh round. `maintainer` must be an alive node (the
/// collector/gateway that performs the decode and re-dissemination).
RefreshResult refresh(Predistribution& dist, net::NodeId maintainer, Rng& rng);

/// Multi-wave churn experiment around refresh(): deploy a Chord overlay,
/// then repeat `waves` rounds of "kill a fraction of the survivors,
/// optionally refresh, decode what's left". The abl_refresh bench runs it
/// twice (refresh on/off) to show the survivability gap.
struct RefreshExperimentParams {
  std::size_t nodes = 500;
  std::size_t locations = 240;
  /// Monte-Carlo execution: trials, root seed, threads, scheme, spec.
  ExperimentConfig experiment;
  ProtocolParams protocol;  ///< scheme field is overwritten from experiment.scheme
  std::size_t waves = 8;
  double kill_fraction = 0.25;  ///< of *surviving* nodes, per wave
  bool use_refresh = true;
};

struct RefreshWavePoint {
  std::size_t wave = 0;  ///< 1-based wave number
  double mean_decoded_levels = 0;
  double ci95_decoded_levels = 0;
  double mean_decoded_blocks = 0;
  double mean_surviving_locations = 0;
  double mean_rebuilt_locations = 0;  ///< 0 when use_refresh is false
};

/// Run the experiment; one point per wave, averaged over the trials.
/// Trials shard across experiment.threads with counter-based seed streams
/// (bit-identical results at any thread count).
std::vector<RefreshWavePoint> run_refresh_experiment(const RefreshExperimentParams& params);

}  // namespace prlc::proto
