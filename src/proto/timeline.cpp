#include "proto/timeline.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/collector.h"
#include "util/check.h"

namespace prlc::proto {

const char* to_string(RetentionPolicy policy) {
  switch (policy) {
    case RetentionPolicy::kSlidingWindow:
      return "sliding-window";
    case RetentionPolicy::kExponentialDecay:
      return "exponential-decay";
  }
  PRLC_ASSERT(false, "unknown retention policy");
}

TimelineStore::TimelineStore(net::Overlay& overlay, codes::PrioritySpec spec,
                             codes::PriorityDistribution dist, TimelineParams params)
    : overlay_(overlay), spec_(std::move(spec)), dist_(std::move(dist)), params_(params) {
  PRLC_REQUIRE(spec_.levels() == dist_.levels(), "spec/distribution level mismatch");
  PRLC_REQUIRE(params_.window >= 1, "retention window must be at least one round");
  PRLC_REQUIRE(overlay_.locations() >= params_.window * spec_.levels(),
               "storage budget too small for the retention window");
  slots_.resize(overlay_.locations());
  free_.reserve(overlay_.locations());
  for (net::LocationId loc = 0; loc < overlay_.locations(); ++loc) free_.push_back(loc);
}

std::vector<std::size_t> TimelineStore::target_allocation(std::size_t active_rounds) const {
  const std::size_t budget = overlay_.locations();
  PRLC_ASSERT(active_rounds >= 1 && active_rounds <= params_.window,
              "active round count out of range");
  std::vector<std::size_t> target(active_rounds, 0);
  switch (params_.policy) {
    case RetentionPolicy::kSlidingWindow: {
      // Equal shares over the *window* (not just active rounds), so early
      // rounds don't balloon and then shrink: steady-state from round 1.
      const std::size_t share = budget / params_.window;
      for (auto& t : target) t = share;
      target[0] += budget - share * params_.window;  // remainder to newest
      return target;
    }
    case RetentionPolicy::kExponentialDecay: {
      // share(age) ~ 2^-age, normalized over the full window.
      double total = 0;
      for (std::size_t a = 0; a < params_.window; ++a) total += std::pow(0.5, a);
      std::size_t assigned = 0;
      for (std::size_t a = 0; a < active_rounds; ++a) {
        target[a] = static_cast<std::size_t>(
            std::floor(static_cast<double>(budget) * std::pow(0.5, a) / total));
        assigned += target[a];
      }
      if (active_rounds == params_.window) target[0] += budget - assigned;
      return target;
    }
  }
  PRLC_ASSERT(false, "unknown retention policy");
}

void TimelineStore::fill_location(net::LocationId loc, const codes::SourceData<Field>& source,
                                  net::NodeId /*origin_hint*/, Rng& rng, IngestStats& stats) {
  Slot& slot = slots_[loc];
  const std::size_t level = slot.level;

  std::size_t begin = 0;
  std::size_t end = spec_.total();
  if (params_.scheme == codes::Scheme::kSlc) {
    begin = spec_.level_begin(level);
    end = spec_.level_end(level);
  } else if (params_.scheme == codes::Scheme::kPlc) {
    end = spec_.level_end(level);
  }

  StoredBlock entry;
  entry.block.level = level;
  entry.block.coeffs.assign(spec_.total(), 0);
  entry.block.payload.assign(params_.block_size, 0);
  bool placed = false;
  for (std::size_t j = begin; j < end; ++j) {
    // Each arriving source block is routed from its measuring node.
    const auto route = overlay_.route(overlay_.random_alive_node(rng), loc);
    ++stats.messages;
    if (!route.delivered) continue;
    stats.total_hops += route.hops;
    if (!placed) {
      entry.owner = route.owner;
      entry.owner_generation = overlay_.generation(route.owner);
      placed = true;
    }
    const auto beta = static_cast<Field::Symbol>(1 + rng.uniform(Field::order() - 1));
    entry.block.coeffs[j] = beta;
    Field::axpy(std::span<Field::Symbol>(entry.block.payload), beta, source.block(j));
    ++entry.arrivals;
  }
  if (placed) slot.stored = std::move(entry);
}

IngestStats TimelineStore::ingest(const codes::SourceData<Field>& source, Rng& rng) {
  PRLC_REQUIRE(source.blocks() == spec_.total(), "snapshot does not match the spec");
  PRLC_REQUIRE(source.block_size() == params_.block_size, "snapshot block size mismatch");

  IngestStats stats;
  stats.round_id = next_round_id_++;
  static obs::Counter& rounds_ingested = obs::counter("timeline.rounds");
  rounds_ingested.add();
  obs::ScopedSpan span("ingest_round", "timeline",
                       {{"round", static_cast<double>(stats.round_id)}});

  // Evict rounds beyond the window (before the new one joins).
  while (rounds_.size() >= params_.window) {
    for (net::LocationId loc : rounds_.back().locations) {
      slots_[loc].stored.reset();
      free_.push_back(loc);
    }
    rounds_.pop_back();
    ++stats.rounds_evicted;
  }

  rounds_.push_front(Round{stats.round_id, {}});
  const auto target = target_allocation(rounds_.size());

  // Shrink older rounds to their new (smaller) shares; their surplus
  // locations are recycled into the new round's budget.
  for (std::size_t age = 1; age < rounds_.size(); ++age) {
    auto& round = rounds_[age];
    while (round.locations.size() > target[age]) {
      const net::LocationId loc = round.locations.back();
      round.locations.pop_back();
      slots_[loc].stored.reset();
      free_.push_back(loc);
      ++stats.locations_recycled;
    }
  }

  // Claim the newest round's share.
  auto& fresh = rounds_.front();
  while (fresh.locations.size() < target[0] && !free_.empty()) {
    fresh.locations.push_back(free_.back());
    free_.pop_back();
  }
  stats.locations_assigned = fresh.locations.size();
  PRLC_ASSERT(stats.locations_assigned >= spec_.levels(),
              "round received fewer locations than priority levels");

  // Partition the round's locations across levels in ascending-priority
  // order; future shrinks pop from the back, so the round sheds its
  // lowest-priority blocks first (priority-aware aging — see header).
  const auto parts =
      apportion_largest_remainder(fresh.locations.size(), dist_.values());
  std::size_t cursor = 0;
  for (std::size_t level = 0; level < parts.size(); ++level) {
    for (std::size_t i = 0; i < parts[level]; ++i) {
      slots_[fresh.locations[cursor++]].level = level;
    }
  }
  for (net::LocationId loc : fresh.locations) {
    fill_location(loc, source, 0, rng, stats);
  }
  return stats;
}

std::vector<std::size_t> TimelineStore::retained_rounds() const {
  std::vector<std::size_t> out;
  for (const auto& round : rounds_) out.push_back(round.id);
  return out;
}

std::optional<QueryResult> TimelineStore::query(std::size_t round_id, Rng& rng) const {
  for (std::size_t age = 0; age < rounds_.size(); ++age) {
    const auto& round = rounds_[age];
    if (round.id != round_id) continue;

    QueryResult result;
    result.round_id = round_id;
    result.age = age;
    result.locations_allotted = round.locations.size();

    std::vector<net::LocationId> alive_locs;
    for (net::LocationId loc : round.locations) {
      const auto& slot = slots_[loc];
      if (slot.stored.has_value() && overlay_.alive(slot.stored->owner) &&
          overlay_.generation(slot.stored->owner) == slot.stored->owner_generation) {
        alive_locs.push_back(loc);
      }
    }
    result.blocks_retrievable = alive_locs.size();
    rng.shuffle(std::span<net::LocationId>(alive_locs));

    codes::PriorityDecoder<Field> decoder(params_.scheme, spec_, params_.block_size);
    for (net::LocationId loc : alive_locs) decoder.add(slots_[loc].stored->block);
    result.decoded_levels = decoder.decoded_levels();
    result.decoded_blocks = decoder.decoded_prefix_blocks();
    return result;
  }
  return std::nullopt;
}

}  // namespace prlc::proto
