// End-to-end persistence experiment: overlay + pre-distribution + churn +
// collection, swept over failure fractions.
//
// This is the system-level experiment the paper motivates (data surviving
// node failure) assembled from the substrates: deploy an overlay,
// disseminate priority-coded data per Sec. 4, kill a fraction of the
// nodes, let a collector decode what survives, and report how many
// priority levels each scheme still recovers. Used by the examples and
// the abl_persistence_e2e bench.
#pragma once

#include <cstdint>
#include <vector>

#include "proto/experiment_config.h"
#include "proto/predistribution.h"
#include "util/stats.h"

namespace prlc::proto {

enum class OverlayKind { kSensor, kChord };

const char* to_string(OverlayKind kind);

struct PersistenceParams {
  OverlayKind overlay = OverlayKind::kSensor;
  std::size_t nodes = 300;
  std::size_t locations = 0;  ///< 0 = auto: 2x the source-block count
  bool two_choices = false;
  /// Monte-Carlo execution: trials, root seed, threads, scheme, spec.
  ExperimentConfig experiment;
  ProtocolParams protocol;  ///< scheme field is overwritten from experiment.scheme
  std::vector<double> failure_fractions;  ///< ascending sweep
};

struct PersistencePoint {
  double failure_fraction = 0;
  double mean_surviving_blocks = 0;
  double mean_decoded_levels = 0;
  double ci95_decoded_levels = 0;
  double mean_decoded_blocks = 0;
  double mean_dissemination_hops = 0;  ///< per delivered message
};

/// Run the sweep; one fresh deployment per trial, failures applied
/// cumulatively along the ascending fraction grid within a trial.
///
/// Trials are sharded across `params.experiment.threads` threads with
/// counter-based seed streams; results are bit-identical at any thread
/// count (see runtime/trial_runner.h).
std::vector<PersistencePoint> run_persistence_experiment(const PersistenceParams& params);

}  // namespace prlc::proto
