#include "proto/predistribution.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace prlc::proto {

std::vector<std::size_t> apportion_largest_remainder(std::size_t total,
                                                     std::span<const double> weights) {
  PRLC_REQUIRE(!weights.empty(), "apportionment needs at least one weight");
  double weight_sum = 0;
  for (double w : weights) {
    PRLC_REQUIRE(w >= 0, "weights must be nonnegative");
    weight_sum += w;
  }
  PRLC_REQUIRE(weight_sum > 0, "weights must not all be zero");

  std::vector<std::size_t> out(weights.size(), 0);
  std::vector<std::pair<double, std::size_t>> remainders;  // (-remainder, index)
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double exact = static_cast<double>(total) * weights[i] / weight_sum;
    out[i] = static_cast<std::size_t>(exact);
    assigned += out[i];
    remainders.emplace_back(-(exact - std::floor(exact)), i);
  }
  std::sort(remainders.begin(), remainders.end());
  for (std::size_t j = 0; assigned < total; ++j) {
    ++out[remainders[j % remainders.size()].second];
    ++assigned;
  }
  return out;
}

Predistribution::Predistribution(net::Overlay& overlay, codes::PrioritySpec spec,
                                 codes::PriorityDistribution dist, ProtocolParams params)
    : overlay_(overlay), spec_(std::move(spec)), dist_(std::move(dist)), params_(params) {
  PRLC_REQUIRE(spec_.levels() == dist_.levels(), "spec/distribution level mismatch");
  PRLC_REQUIRE(overlay_.locations() >= spec_.levels(),
               "need at least one storage location per priority level");
  PRLC_REQUIRE(params_.sparsity_factor > 0, "sparsity factor must be positive");

  // Step 2: partition the M locations into n parts sized ~ M * p_i.
  // Zero-weight levels legitimately get zero locations (Table 1, Case 2).
  const auto part_sizes = apportion_largest_remainder(overlay_.locations(), dist_.values());
  location_level_.reserve(overlay_.locations());
  for (std::size_t level = 0; level < part_sizes.size(); ++level) {
    location_level_.insert(location_level_.end(), part_sizes[level], level);
  }
  PRLC_ASSERT(location_level_.size() == overlay_.locations(), "partition size mismatch");
  storage_.assign(overlay_.locations(), std::nullopt);
}

std::pair<std::size_t, std::size_t> Predistribution::support_of_level(std::size_t level) const {
  switch (params_.scheme) {
    case codes::Scheme::kRlc:
      return {0, spec_.total()};
    case codes::Scheme::kSlc:
      return {spec_.level_begin(level), spec_.level_end(level)};
    case codes::Scheme::kPlc:
      return {0, spec_.level_end(level)};
  }
  PRLC_ASSERT(false, "unknown scheme");
}

std::size_t Predistribution::level_of_location(net::LocationId loc) const {
  PRLC_REQUIRE(loc < location_level_.size(), "location id out of range");
  return location_level_[loc];
}

const StoredBlock* Predistribution::stored(net::LocationId loc) const {
  PRLC_REQUIRE(loc < storage_.size(), "location id out of range");
  return storage_[loc].has_value() ? &*storage_[loc] : nullptr;
}

DisseminationStats Predistribution::disseminate(const codes::SourceData<Field>& source,
                                                Rng& rng) {
  PRLC_REQUIRE(source.blocks() == spec_.total(), "source data does not match the spec");
  PRLC_REQUIRE(source.block_size() == params_.block_size, "source block size mismatch");

  storage_.assign(storage_.size(), std::nullopt);
  DisseminationStats stats;
  obs::ScopedSpan span("disseminate", "predist",
                       {{"locations", static_cast<double>(storage_.size())},
                        {"sources", static_cast<double>(spec_.total())}});

  // Step 3 origin assignment: each source block is "measured" at a random
  // alive node.
  std::vector<net::NodeId> origin(spec_.total());
  for (auto& node : origin) node = overlay_.random_alive_node(rng);

  // Capacity-aware placement: resolve each location's hosting node up
  // front, spilling past full nodes (paper: each node stores d blocks).
  std::vector<std::size_t> node_load(overlay_.nodes(), 0);
  std::vector<std::optional<net::NodeId>> host(storage_.size());
  for (net::LocationId loc = 0; loc < storage_.size(); ++loc) {
    if (params_.node_capacity == 0) {
      host[loc] = overlay_.owner_of(loc);
      continue;
    }
    // Geometric growth of the candidate window keeps this O(alive) total.
    for (std::size_t window = 4; !host[loc].has_value(); window *= 2) {
      const auto candidates = overlay_.owner_candidates(loc, window);
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (node_load[candidates[i]] < params_.node_capacity) {
          host[loc] = candidates[i];
          if (i > 0) ++stats.capacity_spills;
          // Walking past full candidates costs one extra hop each.
          stats.total_hops += i;
          break;
        }
      }
      if (candidates.size() < window) break;  // scanned every alive node
    }
    if (host[loc].has_value()) {
      ++node_load[*host[loc]];
    } else {
      ++stats.capacity_overflows;  // M > W*d misconfiguration
    }
  }

  // Per-location accumulation (step 4). For each location, decide which
  // source blocks of its support arrive (all of them, or the sparse
  // O(ln .) selection), then route each arrival and fold it in.
  for (net::LocationId loc = 0; loc < storage_.size(); ++loc) {
    if (!host[loc].has_value()) continue;  // dropped by capacity overflow
    const std::size_t level = location_level_[loc];
    const auto [begin, end] = support_of_level(level);
    const std::size_t width = end - begin;
    PRLC_ASSERT(width > 0, "empty support for a location");

    std::vector<std::size_t> selected;
    if (!params_.sparse) {
      selected.resize(width);
      std::iota(selected.begin(), selected.end(), begin);
    } else {
      const double target =
          std::ceil(params_.sparsity_factor * std::log(std::max<double>(2.0, width)));
      const std::size_t take =
          std::clamp<std::size_t>(static_cast<std::size_t>(target), 1, width);
      for (std::size_t offset : rng.sample_without_replacement(width, take)) {
        selected.push_back(begin + offset);
      }
    }

    StoredBlock entry;
    entry.block.level = level;
    entry.block.coeffs.assign(spec_.total(), 0);
    entry.block.payload.assign(params_.block_size, 0);

    bool placed = false;
    for (std::size_t j : selected) {
      const auto route = overlay_.route(origin[j], loc);
      ++stats.messages;
      if (!route.delivered) {
        ++stats.failed_routes;
        continue;
      }
      stats.total_hops += route.hops;
      if (!placed) {
        entry.owner = *host[loc];
        entry.owner_generation = overlay_.generation(entry.owner);
        placed = true;
      }
      // c <- c + beta * x with beta nonzero (a zero draw would waste the
      // delivery; the paper's footnote-1 field-size assumption).
      const auto beta = static_cast<Field::Symbol>(1 + rng.uniform(Field::order() - 1));
      entry.block.coeffs[j] = Field::add(entry.block.coeffs[j], beta);
      Field::axpy(std::span<Field::Symbol>(entry.block.payload), beta, source.block(j));
      ++entry.arrivals;
    }
    if (placed) {
      if (obs::trace_enabled()) {
        obs::TraceRecorder::global().instant(
            "block_placed", "predist",
            {{"location", static_cast<double>(loc)},
             {"owner", static_cast<double>(entry.owner)},
             {"level", static_cast<double>(level)},
             {"arrivals", static_cast<double>(entry.arrivals)}});
      }
      storage_[loc] = std::move(entry);
    }
  }
  static obs::Counter& messages = obs::counter("predist.messages");
  static obs::Counter& hops = obs::counter("predist.hops");
  static obs::Counter& failed = obs::counter("predist.failed_routes");
  messages.add(stats.messages);
  hops.add(stats.total_hops);
  failed.add(stats.failed_routes);

  // Load accounting over placement-time owners.
  std::vector<std::size_t> load(overlay_.nodes(), 0);
  for (const auto& slot : storage_) {
    if (slot.has_value()) ++load[slot->owner];
  }
  std::size_t loaded_nodes = 0;
  std::size_t loaded_total = 0;
  for (std::size_t l : load) {
    stats.max_node_load = std::max(stats.max_node_load, l);
    if (l > 0) {
      ++loaded_nodes;
      loaded_total += l;
    }
  }
  stats.mean_node_load =
      loaded_nodes == 0 ? 0.0
                        : static_cast<double>(loaded_total) / static_cast<double>(loaded_nodes);
  return stats;
}

std::vector<net::LocationId> Predistribution::lost_locations() const {
  std::vector<net::LocationId> out;
  for (net::LocationId loc = 0; loc < storage_.size(); ++loc) {
    const auto& slot = storage_[loc];
    if (!slot.has_value() || !overlay_.alive(slot->owner) ||
        overlay_.generation(slot->owner) != slot->owner_generation) {
      out.push_back(loc);
    }
  }
  return out;
}

void Predistribution::store_rebuilt(net::LocationId loc, codes::CodedBlock<Field> block) {
  PRLC_REQUIRE(loc < storage_.size(), "location id out of range");
  PRLC_REQUIRE(block.level == location_level_[loc], "rebuilt block level mismatch");
  PRLC_REQUIRE(block.coeffs.size() == spec_.total(), "rebuilt block width mismatch");
  PRLC_REQUIRE(block.payload.size() == params_.block_size, "rebuilt block payload mismatch");
  StoredBlock entry;
  entry.owner = overlay_.owner_of(loc);
  entry.owner_generation = overlay_.generation(entry.owner);
  std::size_t nnz = 0;
  for (auto c : block.coeffs) nnz += c != 0 ? 1 : 0;
  entry.arrivals = nnz;
  entry.block = std::move(block);
  storage_[loc] = std::move(entry);
}

std::vector<net::LocationId> Predistribution::surviving_locations() const {
  std::vector<net::LocationId> out;
  for (net::LocationId loc = 0; loc < storage_.size(); ++loc) {
    const auto& slot = storage_[loc];
    if (slot.has_value() && overlay_.alive(slot->owner) &&
        overlay_.generation(slot->owner) == slot->owner_generation) {
      out.push_back(loc);
    }
  }
  return out;
}

}  // namespace prlc::proto
