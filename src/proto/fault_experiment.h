// Fault-rate sweep experiment: retrieval under adversity, end to end.
//
// The persistence experiment (proto/persistence_experiment.h) sweeps how
// much data survives churn that happens *before* collection; this driver
// sweeps how much survives faults that happen *during* collection. One
// deployment per trial (overlay + dissemination + an optional mass-
// failure wave), then for each fault scale an independent FaultyChannel
// is built from the scaled FaultSpec and a fresh decoder collects through
// collect(channel, ...). Reported per point: decoded levels plus the
// self-healing ledger (retries, hedges, per-class fault counts, blocks
// written off).
//
// Trials run through runtime::TrialRunner with counter-based seed
// streams; results are bit-identical at any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "net/fault_model.h"
#include "proto/collector.h"
#include "proto/experiment_config.h"
#include "proto/persistence_experiment.h"
#include "proto/predistribution.h"

namespace prlc::proto {

struct FaultSweepParams {
  OverlayKind overlay = OverlayKind::kSensor;
  std::size_t nodes = 200;
  std::size_t locations = 0;  ///< 0 = auto: 2x the source-block count
  bool two_choices = false;
  /// Monte-Carlo execution: trials, root seed, threads, scheme, spec.
  ExperimentConfig experiment;
  ProtocolParams protocol;  ///< scheme field is overwritten from experiment.scheme
  /// Mass-failure fraction applied once, before collection starts.
  double churn_fraction = 0.0;
  /// Base fault profile; each sweep point collects under
  /// faults.scaled(fault_scales[i]).
  net::FaultSpec faults;
  std::vector<double> fault_scales;  ///< ascending, nonnegative
  RetryPolicy retry;
};

struct FaultPoint {
  double fault_scale = 0;
  double mean_decoded_levels = 0;
  double ci95_decoded_levels = 0;
  double mean_decoded_blocks = 0;
  double mean_blocks_retrieved = 0;
  double mean_blocks_lost = 0;
  double mean_retries = 0;
  double mean_hedges = 0;
  double mean_wire_errors = 0;
  double mean_timeouts = 0;
  double mean_transient_errors = 0;
  double mean_crashes = 0;
  double mean_blacklisted = 0;
  double degraded_fraction = 0;  ///< trials that lost at least one block
};

/// Run the sweep; one deployment per trial, one independent channel and
/// decoder per (trial, fault scale).
std::vector<FaultPoint> run_fault_experiment(const FaultSweepParams& params);

}  // namespace prlc::proto
