#include "proto/persistence_experiment.h"

#include <memory>

#include "codes/decoder.h"
#include "net/chord_network.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "proto/collector.h"
#include "net/sensor_network.h"
#include "sim/failure_process.h"
#include "runtime/trial_runner.h"
#include "util/check.h"

namespace prlc::proto {

const char* to_string(OverlayKind kind) {
  switch (kind) {
    case OverlayKind::kSensor:
      return "sensor";
    case OverlayKind::kChord:
      return "chord";
  }
  PRLC_ASSERT(false, "unknown overlay kind");
}

namespace {

std::unique_ptr<net::Overlay> make_overlay(const PersistenceParams& params,
                                           std::size_t locations, std::uint64_t seed) {
  switch (params.overlay) {
    case OverlayKind::kSensor: {
      net::SensorParams sp;
      sp.nodes = params.nodes;
      sp.locations = locations;
      sp.seed = seed;
      sp.two_choices = params.two_choices;
      return std::make_unique<net::SensorNetwork>(sp);
    }
    case OverlayKind::kChord: {
      net::ChordParams cp;
      cp.nodes = params.nodes;
      cp.locations = locations;
      cp.seed = seed;
      cp.two_choices = params.two_choices;
      return std::make_unique<net::ChordNetwork>(cp);
    }
  }
  PRLC_ASSERT(false, "unknown overlay kind");
}

/// Everything one trial contributes to the sweep, slotted by trial index
/// so aggregation can happen in trial order after the parallel section.
struct TrialOutcome {
  double hops_per_msg = 0;
  std::vector<double> survivors;  ///< per failure-fraction point
  std::vector<double> levels;
  std::vector<double> blocks;
};

}  // namespace

std::vector<PersistencePoint> run_persistence_experiment(const PersistenceParams& params) {
  params.experiment.validate();
  PRLC_REQUIRE(!params.failure_fractions.empty(), "need at least one failure fraction");
  for (std::size_t i = 1; i < params.failure_fractions.size(); ++i) {
    PRLC_REQUIRE(params.failure_fractions[i - 1] <= params.failure_fractions[i],
                 "failure fractions must be ascending");
  }

  const codes::PrioritySpec spec = params.experiment.spec();
  const codes::PriorityDistribution dist = params.experiment.distribution();
  const std::size_t locations =
      params.locations > 0 ? params.locations : 2 * spec.total();

  ProtocolParams proto = params.protocol;
  proto.scheme = params.experiment.scheme;

  const std::size_t points = params.failure_fractions.size();

  // Translate the cumulative failure-fraction sweep into a wave schedule
  // on the unified failure-stream API (sim/failure_process.h): to reach
  // fraction f of the *original* nodes at point t, the wave at time t
  // kills the increment relative to what previous waves already killed.
  // The schedule is churn only — no randomness — so it is shared by every
  // trial; each trial materializes its own process over it. Points whose
  // fraction does not increase get no wave at all (not a zero-size one),
  // preserving the historical Rng draw and telemetry sequence exactly.
  std::vector<sim::WaveFailureProcess::Wave> waves;
  std::vector<bool> wave_fires(points, false);
  {
    double killed_so_far = 0.0;
    for (std::size_t point = 0; point < points; ++point) {
      const double f = params.failure_fractions[point];
      const double remaining = 1.0 - killed_so_far;
      if (f > killed_so_far && remaining > 0) {
        waves.push_back({static_cast<double>(point), (f - killed_so_far) / remaining});
        wave_fires[point] = true;
        killed_so_far = f;
      }
    }
  }

  static obs::Counter& trials_run = obs::counter("persistence.trials");
  static obs::Gauge& survivors_gauge = obs::gauge("persistence.last_survivors");
  static obs::LatencyHistogram& survivors_hist = obs::histogram("persistence.survivors");

  // Time-series handles, resolved once outside the trial loop (resolution
  // takes a mutex; sampling through the id is lock-free). Logical time is
  // the churn-point index of the failure-fraction sweep.
  struct SeriesIds {
    obs::SeriesId survivors;
    obs::SeriesId decoded_levels;
    std::vector<obs::SeriesId> level_survivors;  ///< per priority level
    std::vector<obs::SeriesId> margin;           ///< decodability margin per level
  };
  SeriesIds ts{};
  const bool want_timeseries = obs::timeseries_enabled();
  if (want_timeseries) {
    ts.survivors = obs::timeseries("persistence.survivors");
    ts.decoded_levels = obs::timeseries("persistence.decoded_levels");
    for (std::size_t l = 0; l < spec.levels(); ++l) {
      const std::string suffix = ".l" + std::to_string(l + 1);
      ts.level_survivors.push_back(obs::timeseries("persistence.level_survivors" + suffix));
      ts.margin.push_back(obs::timeseries("persistence.margin" + suffix));
    }
  }

  runtime::TrialRunner runner(params.experiment.threads);
  const auto outcomes = runner.run(
      params.experiment.trials, params.experiment.root_seed,
      [&](std::size_t t, Rng& rng) {
        trials_run.add();
        obs::ScopedSpan trial_span(
            "trial", "persistence",
            {{"trial", static_cast<double>(t)},
             {"scheme",
              static_cast<double>(static_cast<int>(params.experiment.scheme))}});
        auto overlay = make_overlay(params, locations, rng());
        Predistribution predist(*overlay, spec, dist, proto);
        const auto source =
            codes::SourceData<Field>::random(spec.total(), proto.block_size, rng);
        const auto stats = predist.disseminate(source, rng);

        TrialOutcome outcome;
        outcome.hops_per_msg =
            stats.messages > stats.failed_routes
                ? static_cast<double>(stats.total_hops) /
                      static_cast<double>(stats.messages - stats.failed_routes)
                : 0.0;
        outcome.survivors.reserve(points);
        outcome.levels.reserve(points);
        outcome.blocks.reserve(points);

        sim::WaveFailureProcess churn(waves);
        sim::FailureDriver churn_driver(churn, *overlay);
        for (std::size_t point = 0; point < points; ++point) {
          // Logical time for telemetry = churn-point index of the sweep.
          obs::set_logical_time(point);
          const double f = params.failure_fractions[point];
          if (wave_fires[point]) {
            churn_driver.advance_to(static_cast<double>(point), rng);
          }
          codes::PriorityDecoder<Field> decoder(proto.scheme, spec, proto.block_size);
          const auto result = collect(predist, decoder, {}, rng).result;
          survivors_gauge.set(static_cast<std::int64_t>(result.surviving_locations));
          survivors_hist.record(result.surviving_locations);
          if (obs::trace_enabled()) {
            obs::TraceRecorder::global().instant(
                "churn_point", "persistence",
                {{"failure_fraction", f},
                 {"survivors", static_cast<double>(result.surviving_locations)},
                 {"decoded_levels", static_cast<double>(result.decoded_levels)}});
          }
          if (want_timeseries) {
            obs::sample(ts.survivors, static_cast<double>(result.surviving_locations));
            obs::sample(ts.decoded_levels, static_cast<double>(result.decoded_levels));
            // Per-level surviving blocks and the decodability margin: the
            // priority-l prefix (level_end(l) source blocks) needs at least
            // that many surviving blocks of levels <= l to be decodable, so
            // margin = cumulative survivors - prefix size. Negative margin
            // at point t is the telemetry signature of losing level l.
            std::vector<std::size_t> per_level(spec.levels(), 0);
            for (const net::LocationId loc : predist.surviving_locations()) {
              ++per_level[predist.level_of_location(loc)];
            }
            std::size_t cumulative = 0;
            for (std::size_t l = 0; l < spec.levels(); ++l) {
              cumulative += per_level[l];
              obs::sample(ts.level_survivors[l], static_cast<double>(per_level[l]));
              obs::sample(ts.margin[l], static_cast<double>(cumulative) -
                                            static_cast<double>(spec.level_end(l)));
            }
          }
          outcome.survivors.push_back(static_cast<double>(result.surviving_locations));
          outcome.levels.push_back(static_cast<double>(result.decoded_levels));
          outcome.blocks.push_back(static_cast<double>(result.decoded_blocks));
        }
        return outcome;
      });

  // Ordered merge: accumulate in trial order so the floating-point sums
  // are identical regardless of how many threads ran the trials.
  std::vector<RunningStats> surviving(points);
  std::vector<RunningStats> levels(points);
  std::vector<RunningStats> blocks(points);
  std::vector<RunningStats> hops(points);
  for (const TrialOutcome& outcome : outcomes) {
    for (std::size_t point = 0; point < points; ++point) {
      surviving[point].add(outcome.survivors[point]);
      levels[point].add(outcome.levels[point]);
      blocks[point].add(outcome.blocks[point]);
      hops[point].add(outcome.hops_per_msg);
    }
  }

  std::vector<PersistencePoint> out(points);
  for (std::size_t i = 0; i < points; ++i) {
    out[i].failure_fraction = params.failure_fractions[i];
    out[i].mean_surviving_blocks = surviving[i].mean();
    out[i].mean_decoded_levels = levels[i].mean();
    out[i].ci95_decoded_levels = levels[i].ci95_halfwidth();
    out[i].mean_decoded_blocks = blocks[i].mean();
    out[i].mean_dissemination_hops = hops[i].mean();
  }
  return out;
}

}  // namespace prlc::proto
