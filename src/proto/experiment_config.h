// Shared Monte-Carlo execution config for experiment entry points.
//
// Every system-level experiment (persistence sweep, refresh epochs,
// decoding curves) repeats independent trials and averages; before this
// struct each entry point grew its own loose (trials, seed, scheme, ...)
// parameter tail. ExperimentConfig bundles the knobs that describe *how*
// the Monte-Carlo run executes — trial count, root seed, thread budget,
// coding scheme and priority structure — so drivers pass one value and
// CLI/bench flag parsing targets one shape.
//
// `threads` feeds runtime::TrialRunner: 0 means one per hardware thread,
// 1 forces the serial baseline. Thanks to the counter-based seed streams
// (see runtime/trial_runner.h) the thread count never changes results,
// only wall-clock.
#pragma once

#include <cstdint>
#include <vector>

#include "codes/priority_spec.h"
#include "codes/scheme.h"
#include "sim/failure_process.h"
#include "util/check.h"

namespace prlc::proto {

struct ExperimentConfig {
  std::size_t trials = 20;
  std::uint64_t root_seed = 7;
  std::size_t threads = 0;  ///< TrialRunner convention: 0 = hardware, 1 = serial
  codes::Scheme scheme = codes::Scheme::kPlc;
  std::vector<std::size_t> level_sizes;       ///< priority spec (required)
  std::vector<double> priority_distribution;  ///< empty = uniform
  /// Churn model, as a value so trials can shard across threads: every
  /// trial materializes its own sim::FailureProcess from this shared
  /// description (wave churn and Poisson lifetimes are the two built-in
  /// implementations — see sim/failure_process.h).
  sim::FailureModelConfig failure;

  /// Materialize the priority spec (throws if level_sizes is empty).
  codes::PrioritySpec spec() const {
    PRLC_REQUIRE(!level_sizes.empty(), "experiment config needs a priority spec");
    return codes::PrioritySpec{std::vector<std::size_t>(level_sizes)};
  }

  /// Materialize the distribution, defaulting to uniform over the levels.
  codes::PriorityDistribution distribution() const {
    return priority_distribution.empty()
               ? codes::PriorityDistribution::uniform(level_sizes.size())
               : codes::PriorityDistribution{std::vector<double>(priority_distribution)};
  }

  /// Fail fast on configs no experiment can run.
  void validate() const {
    PRLC_REQUIRE(trials > 0, "need at least one trial");
    PRLC_REQUIRE(!level_sizes.empty(), "experiment config needs a priority spec");
    PRLC_REQUIRE(priority_distribution.empty() ||
                     priority_distribution.size() == level_sizes.size(),
                 "priority distribution must match the level count");
    failure.validate();
  }
};

}  // namespace prlc::proto
