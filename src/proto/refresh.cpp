#include "proto/refresh.h"

#include "codes/decoder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/collector.h"
#include "util/check.h"

namespace prlc::proto {

RefreshResult refresh(Predistribution& dist, net::NodeId maintainer, Rng& rng) {
  net::Overlay& overlay = dist.overlay();
  PRLC_REQUIRE(maintainer < overlay.nodes() && overlay.alive(maintainer),
               "maintainer must be an alive node");

  RefreshResult result;
  obs::ScopedSpan span("refresh", "refresh");

  // 1. Decode everything the surviving blocks determine.
  codes::PriorityDecoder<Field> decoder(dist.params().scheme, dist.spec(),
                                        dist.params().block_size);
  collect(dist, decoder, {}, rng);
  result.decoded_levels = decoder.decoded_levels();
  result.decoded_blocks = decoder.decoded_prefix_blocks();

  // 2. Rebuild repairable lost locations from the recovered payloads.
  const auto& spec = dist.spec();
  for (net::LocationId loc : dist.lost_locations()) {
    ++result.lost_locations;
    const std::size_t level = dist.level_of_location(loc);

    // Support of this location's coded block under the scheme.
    std::size_t begin = 0;
    std::size_t end = spec.total();
    if (dist.params().scheme == codes::Scheme::kSlc) {
      begin = spec.level_begin(level);
      end = spec.level_end(level);
    } else if (dist.params().scheme == codes::Scheme::kPlc) {
      end = spec.level_end(level);
    }
    // Repairable only when every supported source block is decoded. For
    // SLC that means the whole level; for PLC/RLC the prefix covers it.
    bool repairable = true;
    for (std::size_t j = begin; j < end && repairable; ++j) {
      repairable = decoder.is_block_decoded(j);
    }
    if (!repairable) {
      ++result.unrecoverable;
      continue;
    }

    // Fresh random combination over the support — identically distributed
    // to an original dense coded block.
    codes::CodedBlock<Field> block;
    block.level = level;
    block.coeffs.assign(spec.total(), 0);
    block.payload.assign(dist.params().block_size, 0);
    bool any = false;
    for (std::size_t j = begin; j < end; ++j) {
      const auto beta = static_cast<Field::Symbol>(rng.uniform(Field::order()));
      if (beta == 0) continue;
      any = true;
      block.coeffs[j] = beta;
      Field::axpy(std::span<Field::Symbol>(block.payload), beta, decoder.recovered(j));
    }
    if (!any) {
      // All-zero draw (possible only for width-1 supports): force one.
      const auto beta = static_cast<Field::Symbol>(1 + rng.uniform(Field::order() - 1));
      block.coeffs[begin] = beta;
      Field::axpy(std::span<Field::Symbol>(block.payload), beta, decoder.recovered(begin));
    }

    // Ship it from the maintainer to the location's current owner.
    const auto route = overlay.route(maintainer, loc);
    ++result.messages;
    if (!route.delivered) continue;  // partitioned; stays lost this round
    result.total_hops += route.hops;
    dist.store_rebuilt(loc, std::move(block));
    ++result.rebuilt_locations;
  }

  static obs::Counter& rounds = obs::counter("refresh.rounds");
  static obs::Counter& rebuilt = obs::counter("refresh.rebuilt_locations");
  static obs::Counter& unrecoverable = obs::counter("refresh.unrecoverable");
  static obs::Counter& repair_messages = obs::counter("refresh.repair_messages");
  static obs::Counter& repair_hops = obs::counter("refresh.repair_hops");
  rounds.add();
  rebuilt.add(result.rebuilt_locations);
  unrecoverable.add(result.unrecoverable);
  repair_messages.add(result.messages);
  repair_hops.add(result.total_hops);
  if (obs::trace_enabled()) {
    obs::TraceRecorder::global().instant(
        "refresh_done", "refresh",
        {{"lost", static_cast<double>(result.lost_locations)},
         {"rebuilt", static_cast<double>(result.rebuilt_locations)},
         {"unrecoverable", static_cast<double>(result.unrecoverable)}});
  }
  return result;
}

}  // namespace prlc::proto
